// Tests for the HyperAlloc monitor: install-on-allocate, hard/soft
// reclamation, return, DMA safety, and the auto-reclamation daemon —
// the protocol of paper §3.2/§3.3 end to end against a simulated guest.
#include <gtest/gtest.h>

#include "src/core/hyperalloc.h"
#include "src/guest/guest_vm.h"

namespace hyperalloc::core {
namespace {

constexpr uint64_t kVmBytes = 256 * kMiB;

class HyperAllocTest : public ::testing::Test {
 protected:
  void Init(bool vfio = false) {
    sim_ = std::make_unique<sim::Simulation>();
    host_ = std::make_unique<hv::HostMemory>(FramesForBytes(kGiB));
    guest::GuestConfig config;
    config.memory_bytes = kVmBytes;
    config.vcpus = 4;
    config.dma32_bytes = 64 * kMiB;
    config.allocator = guest::AllocatorKind::kLLFree;
    config.vfio = vfio;
    vm_ = std::make_unique<guest::GuestVm>(sim_.get(), host_.get(), config);
    monitor_ = std::make_unique<HyperAllocMonitor>(vm_.get(),
                                                   HyperAllocConfig{});
  }

  // Synchronously runs a limit change to completion.
  void SetLimit(uint64_t bytes) {
    bool done = false;
    monitor_->Request({.target_bytes = bytes, .done = [&] { done = true; }});
    while (!done) {
      ASSERT_TRUE(sim_->Step());
    }
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<hv::HostMemory> host_;
  std::unique_ptr<guest::GuestVm> vm_;
  std::unique_ptr<HyperAllocMonitor> monitor_;
};

TEST_F(HyperAllocTest, BootStateAllSoftReclaimed) {
  Init();
  EXPECT_EQ(monitor_->limit_bytes(), kVmBytes);
  EXPECT_EQ(vm_->rss_bytes(), 0u);
  for (HugeId h = 0; h < HugesForFrames(vm_->total_frames()); ++h) {
    EXPECT_EQ(monitor_->StateOf(h), ReclaimState::kSoft);
  }
  // Every area carries the evicted hint.
  for (guest::Zone& zone : vm_->zones()) {
    EXPECT_EQ(zone.llfree->EvictedAreas(), zone.frames / kFramesPerHuge);
  }
}

TEST_F(HyperAllocTest, AllocationInstallsHugeFrame) {
  Init();
  const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(monitor_->installs(), 1u);
  // The whole covering huge frame is now backed (install granularity).
  EXPECT_EQ(vm_->rss_bytes(), kHugeSize);
  EXPECT_EQ(monitor_->StateOf(FrameToHuge(*r)), ReclaimState::kInstalled);
  // The install happened before the allocation returned: no EPT faults.
  vm_->Touch(*r, 1);
  EXPECT_EQ(vm_->ept_faults_2m(), 0u);
  EXPECT_EQ(vm_->ept_faults_4k(), 0u);
}

TEST_F(HyperAllocTest, SecondAllocationInSameAreaNoInstall) {
  Init();
  ASSERT_TRUE(vm_->Alloc(0, AllocType::kMovable).ok());
  ASSERT_TRUE(vm_->Alloc(0, AllocType::kMovable).ok());
  EXPECT_EQ(monitor_->installs(), 1u);
}

TEST_F(HyperAllocTest, InstallAdvancesVirtualTime) {
  Init();
  const sim::Time before = sim_->now();
  ASSERT_TRUE(vm_->Alloc(kHugeOrder, AllocType::kHuge).ok());
  // install hypercall + 512 * populate.
  const sim::Time cost = sim_->now() - before;
  EXPECT_GE(cost, vm_->costs().install_hypercall_2m_ns +
                      kFramesPerHuge * vm_->costs().populate_4k_ns);
}

TEST_F(HyperAllocTest, HardShrinkReducesLimitAndRss) {
  Init();
  // Populate and free 128 MiB so there is mapped, reclaimable memory.
  std::vector<FrameId> frames;
  for (int i = 0; i < 64; ++i) {
    const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
    ASSERT_TRUE(r.ok());
    vm_->Touch(*r, kFramesPerHuge);
    frames.push_back(*r);
  }
  for (const FrameId f : frames) {
    vm_->Free(f, kHugeOrder);
  }
  EXPECT_EQ(vm_->rss_bytes(), 128 * kMiB);

  vm_->PurgeAllocatorCaches();  // hypervisor-requested cache purge (§3.3)
  // Shrink to zero: every free huge frame — including the 128 MiB of
  // host-backed ones — must be reclaimed and unmapped.
  SetLimit(0);
  EXPECT_EQ(monitor_->limit_bytes(), 0u);
  EXPECT_EQ(monitor_->hard_reclaimed_bytes(), kVmBytes);
  EXPECT_EQ(vm_->rss_bytes(), 0u);
  EXPECT_EQ(host_->used_frames(), 0u);
}

TEST_F(HyperAllocTest, ShrinkLimitsGuestAllocations) {
  Init();
  SetLimit(64 * kMiB);
  // The guest can now allocate at most 64 MiB.
  uint64_t allocated = 0;
  while (vm_->Alloc(kHugeOrder, AllocType::kHuge).ok()) {
    allocated += kHugeSize;
  }
  EXPECT_EQ(allocated, 64 * kMiB);
}

TEST_F(HyperAllocTest, GrowReturnsMemoryLazily) {
  Init();
  SetLimit(64 * kMiB);
  const uint64_t rss_before = vm_->rss_bytes();
  SetLimit(kVmBytes);
  EXPECT_EQ(monitor_->limit_bytes(), kVmBytes);
  // Return is pure state work: no host memory was populated.
  EXPECT_EQ(vm_->rss_bytes(), rss_before);
  // The guest can use the full memory again (installs on demand).
  uint64_t allocated = 0;
  while (vm_->Alloc(kHugeOrder, AllocType::kHuge).ok()) {
    allocated += kHugeSize;
  }
  EXPECT_EQ(allocated, kVmBytes);
  EXPECT_EQ(vm_->rss_bytes(), kVmBytes);
}

TEST_F(HyperAllocTest, ReclaimUntouchedSkipsUnmap) {
  Init();
  // Nothing was ever touched: shrinking must not issue any EPT unmaps.
  const uint64_t unmaps_before = vm_->ept().total_unmapped_ops();
  SetLimit(64 * kMiB);
  EXPECT_EQ(vm_->ept().total_unmapped_ops(), unmaps_before);
  // And it is fast: only state transitions were charged.
  EXPECT_GT(monitor_->hard_reclaimed_bytes(), 0u);
}

TEST_F(HyperAllocTest, ShrinkEscalatesThroughGuestCaches) {
  Init();
  // Fill everything with page cache; a hard shrink must still succeed by
  // inducing pressure (cache purge + page-cache eviction, §3.3).
  vm_->CacheAdd(kVmBytes);
  ASSERT_GT(vm_->cache_bytes(), 200 * kMiB);
  SetLimit(64 * kMiB);
  EXPECT_EQ(monitor_->limit_bytes(), 64 * kMiB);
  EXPECT_LE(vm_->rss_bytes(), 64 * kMiB);
  EXPECT_LE(vm_->cache_bytes(), 64 * kMiB);
}

TEST_F(HyperAllocTest, AutoReclaimShrinksFreedMemory) {
  Init();
  // Allocate + touch 64 MiB, then free it: RSS stays until the daemon
  // runs.
  std::vector<FrameId> frames;
  for (int i = 0; i < 32; ++i) {
    const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
    ASSERT_TRUE(r.ok());
    frames.push_back(*r);
  }
  for (const FrameId f : frames) {
    vm_->Free(f, kHugeOrder);
  }
  EXPECT_EQ(vm_->rss_bytes(), 64 * kMiB);
  const uint64_t reclaimed = monitor_->AutoReclaimPass();
  EXPECT_EQ(reclaimed, 32u);
  EXPECT_EQ(vm_->rss_bytes(), 0u);
  // Soft: the memory stays available to the guest.
  EXPECT_EQ(monitor_->limit_bytes(), kVmBytes);
  EXPECT_TRUE(vm_->Alloc(kHugeOrder, AllocType::kHuge).ok());
}

TEST_F(HyperAllocTest, AutoReclaimSkipsUsedMemory) {
  Init();
  const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(monitor_->AutoReclaimPass(), 0u);
  EXPECT_EQ(vm_->rss_bytes(), kHugeSize);
}

TEST_F(HyperAllocTest, AutoReclaimPartiallyUsedAreasStay) {
  Init();
  // One 4 KiB allocation keeps its whole huge frame installed.
  const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(monitor_->AutoReclaimPass(), 0u);
  // Free it: now the area is reclaimable.
  vm_->Free(*r, 0);
  vm_->PurgeAllocatorCaches();
  EXPECT_EQ(monitor_->AutoReclaimPass(), 1u);
}

TEST_F(HyperAllocTest, AutoDaemonRunsPeriodically) {
  Init();
  const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(r.ok());
  vm_->Free(*r, kHugeOrder);
  monitor_->StartAuto();
  sim_->RunUntil(6 * sim::kSec);  // one 5 s period elapsed
  EXPECT_EQ(monitor_->soft_reclaims(), 1u);
  EXPECT_EQ(vm_->rss_bytes(), 0u);
  monitor_->StopAuto();
}

TEST_F(HyperAllocTest, ScanCostMatchesPaperFormula) {
  Init();
  monitor_->AutoReclaimPass();
  // §3.3: 18 cache lines per GiB => 256 MiB of guest memory costs
  // 18 * 256/1024 = 4.5 lines, rounded up per zone.
  const uint64_t lines = monitor_->scan_cache_lines_total();
  EXPECT_GE(lines, 4u);
  EXPECT_LE(lines, 8u);  // rounding per zone array
}

// ---------------------------------------------------------------------
// DMA safety (VFIO device passthrough)
// ---------------------------------------------------------------------

TEST_F(HyperAllocTest, InstallPinsIommu) {
  Init(/*vfio=*/true);
  const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(r.ok());
  // The frame was pinned during install, *before* the allocation
  // returned: DMA is safe immediately.
  EXPECT_TRUE(vm_->DmaWrite(*r, kFramesPerHuge));
  EXPECT_EQ(vm_->iommu()->pinned_huge(), 1u);
}

TEST_F(HyperAllocTest, ReclaimUnpinsIommu) {
  Init(/*vfio=*/true);
  const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(r.ok());
  vm_->Free(*r, kHugeOrder);
  vm_->PurgeAllocatorCaches();
  ASSERT_EQ(monitor_->AutoReclaimPass(), 1u);
  EXPECT_EQ(vm_->iommu()->pinned_huge(), 0u);
  // A non-conforming guest that DMAs into the reclaimed (free) frame
  // fails — but only hurts itself (§3.2 "Invalid Guest States").
  EXPECT_FALSE(vm_->DmaWrite(*r, 1));
}

TEST_F(HyperAllocTest, ReinstallAfterSoftReclaimRestoresDma) {
  Init(/*vfio=*/true);
  const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(r.ok());
  vm_->Free(*r, kHugeOrder);
  vm_->PurgeAllocatorCaches();
  ASSERT_EQ(monitor_->AutoReclaimPass(), 1u);
  // Allocate again: install must re-pin before the allocation returns.
  const Result<FrameId> r2 = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(vm_->DmaWrite(*r2, kFramesPerHuge));
}

TEST_F(HyperAllocTest, EveryAllocatedFrameIsDmaSafe) {
  // Property: under VFIO, any frame the guest allocator hands out is
  // immediately DMA-safe — the paper's core safety claim.
  Init(/*vfio=*/true);
  for (int i = 0; i < 200; ++i) {
    const unsigned order = (i % 4 == 0) ? kHugeOrder : 0;
    const Result<FrameId> r = vm_->Alloc(order, AllocType::kMovable);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(vm_->DmaWrite(*r, 1ull << order)) << "frame " << *r;
  }
}

TEST_F(HyperAllocTest, StateTransitionsFollowFig2) {
  Init();
  guest::Zone& zone = vm_->zones()[1];  // Normal zone
  const HugeId global0 = FrameToHuge(zone.start);
  // Boot: Soft (E=1, A=0).
  EXPECT_EQ(monitor_->StateOf(global0), ReclaimState::kSoft);
  // Guest allocates: install => Installed, E=0, A=1.
  const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(r.ok());
  const HugeId local = FrameToHuge(*r - zone.start);
  EXPECT_EQ(monitor_->StateOf(FrameToHuge(*r)), ReclaimState::kInstalled);
  EXPECT_FALSE(zone.llfree->ReadArea(local).evicted);
  EXPECT_TRUE(zone.llfree->ReadArea(local).allocated);
  // Guest frees: still Installed (M=1), A=0.
  vm_->Free(*r, kHugeOrder);
  EXPECT_FALSE(zone.llfree->ReadArea(local).allocated);
  // Hard reclaim (shrink everything so this frame is covered):
  // Hard, A=1, E=1.
  vm_->PurgeAllocatorCaches();
  SetLimit(0);
  EXPECT_EQ(monitor_->StateOf(FrameToHuge(*r)), ReclaimState::kHard);
  EXPECT_TRUE(zone.llfree->ReadArea(local).allocated);
  EXPECT_TRUE(zone.llfree->ReadArea(local).evicted);
  // Return: Soft, A=0, E=1.
  SetLimit(kVmBytes);
  EXPECT_EQ(monitor_->StateOf(FrameToHuge(*r)), ReclaimState::kSoft);
  EXPECT_FALSE(zone.llfree->ReadArea(local).allocated);
  EXPECT_TRUE(zone.llfree->ReadArea(local).evicted);
}

TEST_F(HyperAllocTest, InitialLimitBootsSmallGrowsLater) {
  // 6 "Beyond Memory Reclamation": a VM boots with a 64 MiB hard limit
  // on 256 MiB of guest-physical memory and later grows beyond its
  // boot-time allotment.
  sim_ = std::make_unique<sim::Simulation>();
  host_ = std::make_unique<hv::HostMemory>(FramesForBytes(kGiB));
  guest::GuestConfig config;
  config.memory_bytes = kVmBytes;
  config.vcpus = 4;
  config.dma32_bytes = 64 * kMiB;
  config.allocator = guest::AllocatorKind::kLLFree;
  vm_ = std::make_unique<guest::GuestVm>(sim_.get(), host_.get(), config);
  HyperAllocConfig ha;
  ha.initial_limit_bytes = 64 * kMiB;
  monitor_ = std::make_unique<HyperAllocMonitor>(vm_.get(), ha);

  EXPECT_EQ(monitor_->limit_bytes(), 64 * kMiB);
  uint64_t allocated = 0;
  while (vm_->Alloc(kHugeOrder, AllocType::kHuge).ok()) {
    allocated += kHugeSize;
  }
  EXPECT_EQ(allocated, 64 * kMiB);

  // Grow beyond the boot allotment.
  SetLimit(kVmBytes);
  while (vm_->Alloc(kHugeOrder, AllocType::kHuge).ok()) {
    allocated += kHugeSize;
  }
  EXPECT_EQ(allocated, kVmBytes);
}

TEST_F(HyperAllocTest, TreeTypesVisibleToHost) {
  // 6 swap-strategy hook: the host can read each tree's allocation type
  // from the shared state without guest interaction.
  Init();
  const Result<FrameId> movable = vm_->Alloc(0, AllocType::kMovable);
  const Result<FrameId> unmovable = vm_->Alloc(0, AllocType::kUnmovable);
  ASSERT_TRUE(movable.ok());
  ASSERT_TRUE(unmovable.ok());
  EXPECT_EQ(monitor_->TreeTypeOf(FrameToHuge(*movable)),
            AllocType::kMovable);
  EXPECT_EQ(monitor_->TreeTypeOf(FrameToHuge(*unmovable)),
            AllocType::kUnmovable);
}

}  // namespace
}  // namespace hyperalloc::core
