// Unit and property tests for the Linux-style buddy allocator baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/base/rng.h"
#include "src/buddy/buddy.h"

namespace hyperalloc::buddy {
namespace {

constexpr uint64_t kFrames = 16384;  // 64 MiB

Buddy::Config NoPcp() {
  Buddy::Config config;
  config.pcp_enabled = false;
  return config;
}

TEST(Buddy, InitialStateFullyFree) {
  Buddy buddy(kFrames, NoPcp());
  EXPECT_EQ(buddy.FreeFrames(), kFrames);
  EXPECT_EQ(buddy.FreeBlocksOfOrder(kMaxBuddyOrder),
            kFrames >> kMaxBuddyOrder);
  EXPECT_EQ(buddy.FreeHugeFrames(), kFrames);
  EXPECT_TRUE(buddy.Validate());
}

TEST(Buddy, AllocFreeRoundTrip) {
  Buddy buddy(kFrames, NoPcp());
  const Result<FrameId> frame = buddy.Alloc(0, 0, AllocType::kMovable);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(buddy.FreeFrames(), kFrames - 1);
  EXPECT_FALSE(buddy.Free(0, *frame, 0).has_value());
  EXPECT_EQ(buddy.FreeFrames(), kFrames);
  // Buddies merged all the way back to max order.
  EXPECT_EQ(buddy.FreeBlocksOfOrder(kMaxBuddyOrder),
            kFrames >> kMaxBuddyOrder);
  EXPECT_TRUE(buddy.Validate());
}

TEST(Buddy, SplitProducesAlignedBlocks) {
  Buddy buddy(kFrames, NoPcp());
  for (unsigned order = 0; order <= kMaxBuddyOrder; ++order) {
    const Result<FrameId> frame = buddy.Alloc(0, order, AllocType::kMovable);
    ASSERT_TRUE(frame.ok()) << "order " << order;
    EXPECT_EQ(*frame % (1ull << order), 0u) << "order " << order;
    EXPECT_FALSE(buddy.Free(0, *frame, order).has_value());
  }
  EXPECT_EQ(buddy.FreeFrames(), kFrames);
  EXPECT_TRUE(buddy.Validate());
}

TEST(Buddy, DoubleFreeDetected) {
  Buddy buddy(kFrames, NoPcp());
  const Result<FrameId> frame = buddy.Alloc(0, 3, AllocType::kMovable);
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(buddy.Free(0, *frame, 3).has_value());
  const auto err = buddy.Free(0, *frame, 3);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, AllocError::kInvalid);
}

TEST(Buddy, InvalidFreesRejected) {
  Buddy buddy(kFrames, NoPcp());
  EXPECT_EQ(buddy.Free(0, kFrames, 0), AllocError::kInvalid);
  EXPECT_EQ(buddy.Free(0, 1, 3), AllocError::kInvalid);  // misaligned
  EXPECT_EQ(buddy.Free(0, 0, kMaxBuddyOrder + 1), AllocError::kInvalid);
}

TEST(Buddy, InvalidOrderAllocRejected) {
  Buddy buddy(kFrames, NoPcp());
  const Result<FrameId> r = buddy.Alloc(0, kMaxBuddyOrder + 1,
                                        AllocType::kMovable);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), AllocError::kInvalid);
}

TEST(Buddy, ExhaustionReturnsNoMemory) {
  Buddy buddy(1024, NoPcp());
  std::vector<FrameId> held;
  for (;;) {
    const Result<FrameId> r = buddy.Alloc(0, 0, AllocType::kMovable);
    if (!r.ok()) {
      EXPECT_EQ(r.error(), AllocError::kNoMemory);
      break;
    }
    held.push_back(*r);
  }
  EXPECT_EQ(held.size(), 1024u);
  std::set<FrameId> unique(held.begin(), held.end());
  EXPECT_EQ(unique.size(), held.size());
}

TEST(Buddy, MergeRequiresBuddyNotJustNeighbor) {
  Buddy buddy(1024, NoPcp());
  // Allocate the whole space as order-0, then free frames 1 and 2:
  // neighbors but not buddies (1^1=0, 2^1=3) — must remain two order-0
  // blocks, not merge into an order-1.
  std::vector<FrameId> held;
  for (int i = 0; i < 1024; ++i) {
    const Result<FrameId> r = buddy.Alloc(0, 0, AllocType::kMovable);
    ASSERT_TRUE(r.ok());
    held.push_back(*r);
  }
  std::sort(held.begin(), held.end());
  ASSERT_FALSE(buddy.Free(0, 1, 0).has_value());
  ASSERT_FALSE(buddy.Free(0, 2, 0).has_value());
  EXPECT_EQ(buddy.FreeBlocksOfOrder(0), 2u);
  EXPECT_EQ(buddy.FreeBlocksOfOrder(1), 0u);
  // Freeing frame 3 merges {2,3} to an order-1 block.
  ASSERT_FALSE(buddy.Free(0, 3, 0).has_value());
  EXPECT_EQ(buddy.FreeBlocksOfOrder(0), 1u);
  EXPECT_EQ(buddy.FreeBlocksOfOrder(1), 1u);
  // Freeing frame 0 merges {0,1}, then {0..3} to order-2.
  ASSERT_FALSE(buddy.Free(0, 0, 0).has_value());
  EXPECT_EQ(buddy.FreeBlocksOfOrder(0), 0u);
  EXPECT_EQ(buddy.FreeBlocksOfOrder(1), 0u);
  EXPECT_EQ(buddy.FreeBlocksOfOrder(2), 1u);
  EXPECT_TRUE(buddy.Validate());
}

TEST(Buddy, PcpCachesOrderZero) {
  Buddy::Config config;
  config.cores = 2;
  config.pcp_batch = 8;
  Buddy buddy(kFrames, config);
  const Result<FrameId> a = buddy.Alloc(0, 0, AllocType::kMovable);
  ASSERT_TRUE(a.ok());
  // The refill pulled a batch into the core-0 cache.
  EXPECT_EQ(buddy.FreeFrames(), kFrames - 1);
  EXPECT_EQ(buddy.FreeFramesInLists(), kFrames - 8);
  // Freeing goes back to the cache, not the lists.
  EXPECT_FALSE(buddy.Free(0, *a, 0).has_value());
  EXPECT_EQ(buddy.FreeFrames(), kFrames);
  EXPECT_LT(buddy.FreeFramesInLists(), kFrames);
  // LIFO: the next allocation returns the just-freed frame (the PCP
  // behaviour that defeats VProbe-style reclamation, §2).
  const Result<FrameId> b = buddy.Alloc(0, 0, AllocType::kMovable);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, *a);
  EXPECT_FALSE(buddy.Free(0, *b, 0).has_value());
  buddy.DrainPcp();
  EXPECT_EQ(buddy.FreeFramesInLists(), kFrames);
  EXPECT_TRUE(buddy.Validate());
}

TEST(Buddy, PcpSpillsWhenOverfull) {
  Buddy::Config config;
  config.pcp_batch = 4;
  Buddy buddy(1024, config);
  std::vector<FrameId> held;
  for (int i = 0; i < 16; ++i) {
    const Result<FrameId> r = buddy.Alloc(0, 0, AllocType::kMovable);
    ASSERT_TRUE(r.ok());
    held.push_back(*r);
  }
  for (const FrameId f : held) {
    ASSERT_FALSE(buddy.Free(0, f, 0).has_value());
  }
  // Cache is bounded at 2*batch; the rest spilled back to the lists.
  EXPECT_GE(buddy.FreeFramesInLists(), 1024u - 2 * 4);
  EXPECT_EQ(buddy.FreeFrames(), 1024u);
}

TEST(Buddy, ClaimRangeRemovesSpecificFrames) {
  Buddy buddy(kFrames, NoPcp());
  ASSERT_TRUE(buddy.ClaimRange(512, 512));
  EXPECT_EQ(buddy.FreeFrames(), kFrames - 512);
  for (FrameId f = 512; f < 1024; ++f) {
    EXPECT_FALSE(buddy.IsFree(f));
  }
  // Claimed frames cannot be allocated.
  std::set<FrameId> seen;
  for (;;) {
    const Result<FrameId> r = buddy.Alloc(0, 0, AllocType::kMovable);
    if (!r.ok()) {
      break;
    }
    seen.insert(*r);
  }
  for (FrameId f = 512; f < 1024; ++f) {
    EXPECT_EQ(seen.count(f), 0u);
  }
  buddy.ReleaseRange(512, 512);
  EXPECT_EQ(buddy.FreeHugeFrames(), 512u);  // merged back
  EXPECT_TRUE(buddy.Validate());
}

TEST(Buddy, ClaimRangeFailsOnAllocatedFrames) {
  Buddy buddy(kFrames, NoPcp());
  const Result<FrameId> f = buddy.Alloc(0, 0, AllocType::kMovable);
  ASSERT_TRUE(f.ok());
  const uint64_t before = buddy.FreeFrames();
  EXPECT_FALSE(buddy.ClaimRange(AlignDown(*f, 512), 512));
  EXPECT_EQ(buddy.FreeFrames(), before);  // nothing changed
  EXPECT_TRUE(buddy.Validate());
}

TEST(Buddy, ClaimRangeSplitsStraddlingBlocks) {
  Buddy buddy(kFrames, NoPcp());
  // The initial order-10 block covering [0,1024) straddles [256, 768).
  ASSERT_TRUE(buddy.ClaimRange(256, 512));
  EXPECT_EQ(buddy.FreeFrames(), kFrames - 512);
  EXPECT_TRUE(buddy.IsFree(0));
  EXPECT_TRUE(buddy.IsFree(255));
  EXPECT_FALSE(buddy.IsFree(256));
  EXPECT_FALSE(buddy.IsFree(767));
  EXPECT_TRUE(buddy.IsFree(768));
  EXPECT_TRUE(buddy.Validate());
  buddy.ReleaseRange(256, 512);
  EXPECT_EQ(buddy.FreeBlocksOfOrder(kMaxBuddyOrder),
            kFrames >> kMaxBuddyOrder);
}

TEST(Buddy, AllocatedInRangeFindsMigrationTargets) {
  Buddy buddy(kFrames, NoPcp());
  const Result<FrameId> a = buddy.Alloc(0, 0, AllocType::kMovable);
  ASSERT_TRUE(a.ok());
  const FrameId block = AlignDown(*a, 512);
  const std::vector<FrameId> used = buddy.AllocatedInRange(block, 512);
  ASSERT_EQ(used.size(), 1u);
  EXPECT_EQ(used[0], *a);
}

TEST(Buddy, FallbackStealsFromOtherMigrateType) {
  Buddy buddy(1024, NoPcp());
  // Exhaust via movable, free one frame, then allocate unmovable: the
  // allocator must steal it rather than fail.
  std::vector<FrameId> held;
  for (int i = 0; i < 1024; ++i) {
    const Result<FrameId> r = buddy.Alloc(0, 0, AllocType::kMovable);
    ASSERT_TRUE(r.ok());
    held.push_back(*r);
  }
  ASSERT_FALSE(buddy.Free(0, held.back(), 0).has_value());
  const Result<FrameId> um = buddy.Alloc(0, 0, AllocType::kUnmovable);
  ASSERT_TRUE(um.ok());
  EXPECT_EQ(*um, held.back());
}

TEST(Buddy, LargeFallbackStealConvertsPageblock) {
  Buddy buddy(kFrames, NoPcp());
  // First unmovable allocation steals from the (all-movable) free lists;
  // since the stolen block is >= a pageblock, the pageblock converts.
  const Result<FrameId> um = buddy.Alloc(0, 0, AllocType::kUnmovable);
  ASSERT_TRUE(um.ok());
  ASSERT_FALSE(buddy.Free(0, *um, 0).has_value());
  // Subsequent unmovable allocations are served from the converted
  // pageblock without further stealing: same huge frame.
  const Result<FrameId> um2 = buddy.Alloc(0, 0, AllocType::kUnmovable);
  ASSERT_TRUE(um2.ok());
  EXPECT_EQ(FrameToHuge(*um2), FrameToHuge(*um));
}

TEST(Buddy, ReportingPopSkipsReported) {
  Buddy buddy(kFrames, NoPcp());
  const std::optional<FrameId> first = buddy.PopUnreported(kHugeOrder);
  ASSERT_TRUE(first.has_value());
  buddy.MarkReported(*first, kHugeOrder);
  ASSERT_FALSE(buddy.Free(0, *first, kHugeOrder).has_value());
  EXPECT_TRUE(buddy.IsReported(*first));
  const std::optional<FrameId> second = buddy.PopUnreported(kHugeOrder);
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*second, *first);
  ASSERT_FALSE(buddy.Free(0, *second, kHugeOrder).has_value());
}

TEST(Buddy, AllocationClearsReportedFlag) {
  Buddy buddy(kFrames, NoPcp());
  const std::optional<FrameId> block = buddy.PopUnreported(kHugeOrder);
  ASSERT_TRUE(block.has_value());
  buddy.MarkReported(*block, kHugeOrder);
  ASSERT_FALSE(buddy.Free(0, *block, kHugeOrder).has_value());
  // Normal allocation reuses the reported block (LIFO) and clears it:
  // the host must be told again before it can be reclaimed.
  const Result<FrameId> again = buddy.Alloc(0, kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *block);
  EXPECT_FALSE(buddy.IsReported(*again));
}

TEST(Buddy, FragmentationBlocksHugeReclaim) {
  // The paper's core buddy weakness (Fig. 8): scattered long-lived
  // allocations destroy huge-page availability even when most memory is
  // free.
  Buddy buddy(kFrames, NoPcp());
  std::vector<FrameId> held;
  for (uint64_t i = 0; i < kFrames; ++i) {
    const Result<FrameId> r = buddy.Alloc(0, 0, AllocType::kMovable);
    ASSERT_TRUE(r.ok());
    held.push_back(*r);
  }
  // Free all but one frame per huge range.
  std::sort(held.begin(), held.end());
  for (const FrameId f : held) {
    if (f % kFramesPerHuge != 0) {
      ASSERT_FALSE(buddy.Free(0, f, 0).has_value());
    }
  }
  EXPECT_EQ(buddy.FreeFrames(), kFrames - kFrames / kFramesPerHuge);
  EXPECT_EQ(buddy.FreeHugeFrames(), 0u) << "no order-9 blocks can form";
  EXPECT_EQ(buddy.FreeAlignedHugeRanges(), 0u);
  EXPECT_TRUE(buddy.Validate());
}

TEST(Buddy, RandomOpsPreserveInvariants) {
  Buddy::Config config;
  config.cores = 2;
  Buddy buddy(kFrames, config);
  Rng rng(555);
  std::vector<std::pair<FrameId, unsigned>> live;
  uint64_t allocated = 0;

  for (int step = 0; step < 30000; ++step) {
    const unsigned core = static_cast<unsigned>(rng.Below(2));
    if (rng.Chance(0.55)) {
      static constexpr unsigned kOrders[] = {0, 0, 0, 0, 1, 2, 3, 4, 9, 10};
      const unsigned order = kOrders[rng.Below(10)];
      const AllocType type = static_cast<AllocType>(rng.Below(3));
      const Result<FrameId> r = buddy.Alloc(core, order, type);
      if (r.ok()) {
        EXPECT_EQ(*r % (1ull << order), 0u);
        live.emplace_back(*r, order);
        allocated += 1ull << order;
      }
    } else if (!live.empty()) {
      const size_t idx = rng.Below(live.size());
      const auto [frame, order] = live[idx];
      live[idx] = live.back();
      live.pop_back();
      ASSERT_FALSE(buddy.Free(core, frame, order).has_value());
      allocated -= 1ull << order;
    }
  }
  EXPECT_EQ(buddy.FreeFrames(), kFrames - allocated);
  EXPECT_TRUE(buddy.Validate());

  for (const auto& [frame, order] : live) {
    ASSERT_FALSE(buddy.Free(0, frame, order).has_value());
  }
  buddy.DrainPcp();
  EXPECT_EQ(buddy.FreeFramesInLists(), kFrames);
  // Everything must have merged back to pristine max-order blocks.
  EXPECT_EQ(buddy.FreeBlocksOfOrder(kMaxBuddyOrder),
            kFrames >> kMaxBuddyOrder);
  EXPECT_TRUE(buddy.Validate());
}

TEST(Buddy, RandomClaimReleaseInvariants) {
  Buddy buddy(kFrames, NoPcp());
  Rng rng(777);
  std::vector<std::pair<FrameId, uint64_t>> claimed;
  std::vector<std::pair<FrameId, unsigned>> live;

  for (int step = 0; step < 4000; ++step) {
    const uint64_t dice = rng.Below(100);
    if (dice < 30) {
      const HugeId h = rng.Below(kFrames / kFramesPerHuge);
      if (buddy.ClaimRange(HugeToFrame(h), kFramesPerHuge)) {
        claimed.emplace_back(HugeToFrame(h), kFramesPerHuge);
      }
    } else if (dice < 55 && !claimed.empty()) {
      const size_t idx = rng.Below(claimed.size());
      buddy.ReleaseRange(claimed[idx].first, claimed[idx].second);
      claimed[idx] = claimed.back();
      claimed.pop_back();
    } else if (dice < 80) {
      const unsigned order = static_cast<unsigned>(rng.Below(4));
      const Result<FrameId> r = buddy.Alloc(0, order, AllocType::kMovable);
      if (r.ok()) {
        live.emplace_back(*r, order);
      }
    } else if (!live.empty()) {
      const size_t idx = rng.Below(live.size());
      ASSERT_FALSE(
          buddy.Free(0, live[idx].first, live[idx].second).has_value());
      live[idx] = live.back();
      live.pop_back();
    }
  }
  EXPECT_TRUE(buddy.Validate());
}

}  // namespace
}  // namespace hyperalloc::buddy
