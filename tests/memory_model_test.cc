// Unit tests for the memory-model layer (src/check/memory_model.h,
// DESIGN.md §4.11): vector-clock algebra, the bounded modification-order
// history, the fetch_xor shim operation, stale-read determinism, and
// the stale-trace diagnosis of ReplayTrace / the trace-cross-checking
// ReplaySeed overload. Pure harness tests — no allocator state — so the
// binary links only ha_check.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/memory_model.h"
#include "src/check/scheduler.h"
#include "src/check/shim.h"

namespace hyperalloc::check {
namespace {

// --------------------------------------------------------------------
// VectorClock algebra.
// --------------------------------------------------------------------
TEST(VectorClock, JoinTakesComponentwiseMax) {
  mm::VectorClock a;
  mm::VectorClock b;
  a.c[0] = 3;
  a.c[1] = 1;
  b.c[1] = 5;
  b.c[2] = 2;
  a.Join(b);
  EXPECT_EQ(a.c[0], 3u);
  EXPECT_EQ(a.c[1], 5u);
  EXPECT_EQ(a.c[2], 2u);
}

TEST(VectorClock, LeqOfIsThePartialOrder) {
  mm::VectorClock lo;
  mm::VectorClock hi;
  lo.c[0] = 1;
  hi.c[0] = 2;
  hi.c[1] = 1;
  EXPECT_TRUE(lo.LeqOf(hi));
  EXPECT_FALSE(hi.LeqOf(lo));
  // Concurrent clocks: neither <= the other.
  mm::VectorClock other;
  other.c[1] = 3;
  EXPECT_FALSE(hi.LeqOf(other));
  EXPECT_FALSE(other.LeqOf(hi));
  // Reflexive, and zero <= everything.
  EXPECT_TRUE(hi.LeqOf(hi));
  EXPECT_TRUE(mm::VectorClock{}.LeqOf(lo));
  EXPECT_TRUE(mm::VectorClock{}.IsZero());
  EXPECT_FALSE(lo.IsZero());
}

TEST(VectorClock, EqualityAndToString) {
  mm::VectorClock a;
  mm::VectorClock b;
  a.c[0] = 1;
  a.c[2] = 4;
  EXPECT_FALSE(a == b);
  b.c[0] = 1;
  b.c[2] = 4;
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.ToString(), "[1,0,4]");
  EXPECT_EQ(mm::VectorClock{}.ToString(), "[0]");
}

// --------------------------------------------------------------------
// Modification-order history bounding. Outside an execution the engine
// hooks are inert (Active() == false), so LocationMeta can be driven
// directly: every store appends an entry, and the history is evicted to
// Options{}.history_depth stale entries + the newest.
// --------------------------------------------------------------------
TEST(LocationMeta, HistoryIsBounded) {
  mm::LocationMeta meta;
  EXPECT_EQ(meta.entries(), 1u);  // the initial value
  const size_t bound = static_cast<size_t>(Options{}.history_depth) + 1;
  for (int i = 0; i < 16; ++i) {
    meta.OnStore(/*release=*/true);
    EXPECT_LE(meta.entries(), bound);
  }
  EXPECT_EQ(meta.entries(), bound);
  meta.OnRmw(/*acquire=*/true, /*release=*/true);
  EXPECT_EQ(meta.entries(), bound);
}

// The shim's value history stays in lockstep with the eviction: after
// many stores, a load outside any execution still returns the newest.
TEST(ShimAtomic, ValueHistoryTracksEviction) {
  Atomic<uint64_t> a{0};
  for (uint64_t v = 1; v <= 100; ++v) {
    a.store(v, std::memory_order_release);
  }
  EXPECT_EQ(a.load(std::memory_order_acquire), 100u);
  EXPECT_EQ(a.exchange(7, std::memory_order_acq_rel), 100u);
  EXPECT_EQ(a.load(std::memory_order_relaxed), 7u);
}

// --------------------------------------------------------------------
// fetch_xor: scheduled, clock-instrumented, and correct. Two threads
// toggling disjoint bits of one word commute; toggling the same bit an
// even number of times cancels. Every interleaving must agree.
// --------------------------------------------------------------------
TEST(ShimAtomic, FetchXorExploresAndCommutes) {
  Scenario scenario = [](Execution& exec) {
    auto word = std::make_shared<Atomic<uint64_t>>(0);
    exec.Spawn([word] {
      (void)word->fetch_xor(0b0011, std::memory_order_acq_rel);
      (void)word->fetch_xor(0b0001, std::memory_order_acq_rel);
    });
    exec.Spawn([word] {
      (void)word->fetch_xor(0b0100, std::memory_order_acq_rel);
    });
    exec.OnEnd([word] {
      Require(word->load(std::memory_order_acquire) == 0b0110,
              "fetch_xor: toggles did not commute/cancel");
    });
  };
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r = Explore(opt, scenario);
  EXPECT_FALSE(r.failed) << r.message;
  EXPECT_TRUE(r.complete);
  EXPECT_GE(r.executions, 3u);  // the xor ops really are schedule points
}

TEST(ShimAtomic, FetchXorReturnsPriorValue) {
  Atomic<uint64_t> a{0b1010};
  EXPECT_EQ(a.fetch_xor(0b0110, std::memory_order_acq_rel), 0b1010u);
  EXPECT_EQ(a.load(std::memory_order_acquire), 0b1100u);
}

// --------------------------------------------------------------------
// Stale-read determinism: with the memory model on, a racy
// message-passing reader observes different values on different seeds,
// but any single seed replays to the identical trace and outcome.
// --------------------------------------------------------------------
struct MpCtx {
  Atomic<uint32_t> payload{0};
  Atomic<uint32_t> flag{0};
};

Scenario RelaxedMessagePassing(std::shared_ptr<std::vector<uint32_t>> seen) {
  return [seen](Execution& exec) {
    auto c = std::make_shared<MpCtx>();
    exec.Spawn([c] {
      c->payload.store(7, std::memory_order_relaxed);
      c->flag.store(1, std::memory_order_relaxed);
    });
    exec.Spawn([c, seen] {
      if (c->flag.load(std::memory_order_relaxed) == 1) {
        seen->push_back(c->payload.load(std::memory_order_relaxed));
      }
    });
  };
}

TEST(StaleReads, SeedReplayReproducesTheSameStaleValues) {
  Options opt;
  opt.memory_model = true;
  opt.iterations = 64;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    auto seen1 = std::make_shared<std::vector<uint32_t>>();
    auto seen2 = std::make_shared<std::vector<uint32_t>>();
    const RunResult r1 =
        ReplaySeed(opt, seed, RelaxedMessagePassing(seen1));
    const RunResult r2 =
        ReplaySeed(opt, seed, RelaxedMessagePassing(seen2));
    ASSERT_FALSE(r1.failed) << r1.message;
    EXPECT_EQ(r1.trace, r2.trace) << "seed " << seed;
    EXPECT_EQ(*seen1, *seen2) << "seed " << seed;
  }
}

TEST(StaleReads, BudgetZeroForcesNewestReads) {
  // With no stale budget every load reads newest: once the reader sees
  // flag == 1 the payload store (which precedes it in program order and
  // in this schedule) must also be visible.
  auto seen = std::make_shared<std::vector<uint32_t>>();
  Options opt;
  opt.memory_model = true;
  opt.stale_read_budget = 0;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r = Explore(opt, RelaxedMessagePassing(seen));
  ASSERT_FALSE(r.failed) << r.message;
  EXPECT_TRUE(r.complete);
  for (const uint32_t v : *seen) {
    EXPECT_EQ(v, 7u) << "budget 0 still produced a stale read";
  }
  EXPECT_FALSE(seen->empty());
}

TEST(StaleReads, ExhaustiveEnumeratesValueDecisions) {
  // With budget, exhaustive mode must cover BOTH the fresh and the
  // stale read behind the relaxed flag.
  auto seen = std::make_shared<std::vector<uint32_t>>();
  Options opt;
  opt.memory_model = true;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r = Explore(opt, RelaxedMessagePassing(seen));
  ASSERT_FALSE(r.failed) << r.message;
  EXPECT_TRUE(r.complete);
  bool fresh = false;
  bool stale = false;
  for (const uint32_t v : *seen) {
    (v == 7 ? fresh : stale) = true;
  }
  EXPECT_TRUE(fresh) << "no execution read the newest payload";
  EXPECT_TRUE(stale) << "no execution read the stale payload";
}

// --------------------------------------------------------------------
// Stale-trace diagnosis: a recorded decision stream replayed against a
// scenario that has since changed must fail with a "stale trace"
// message and RunResult::stale_trace — never with a misleading
// downstream invariant message.
// --------------------------------------------------------------------
Scenario TwoStepThreads(int steps_thread0) {
  return [steps_thread0](Execution& exec) {
    auto a = std::make_shared<Atomic<uint32_t>>(0);
    exec.Spawn([a, steps_thread0] {
      for (int i = 0; i < steps_thread0; ++i) {
        (void)a->fetch_add(1, std::memory_order_acq_rel);
      }
    });
    exec.Spawn([a] { (void)a->fetch_add(1, std::memory_order_acq_rel); });
  };
}

TEST(StaleTrace, ExhaustedTraceIsDiagnosed) {
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult recorded = Explore(opt, TwoStepThreads(2));
  ASSERT_FALSE(recorded.failed) << recorded.message;

  // The scenario grows an extra step: the recorded stream runs out.
  const RunResult r = ReplayTrace(opt, recorded.trace, TwoStepThreads(4));
  ASSERT_TRUE(r.failed);
  EXPECT_TRUE(r.stale_trace);
  EXPECT_NE(r.message.find("stale trace"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("more decision points"), std::string::npos)
      << r.message;
}

TEST(StaleTrace, NotRunnableThreadIsDiagnosed) {
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult recorded = Explore(opt, TwoStepThreads(2));
  ASSERT_FALSE(recorded.failed) << recorded.message;

  // The scenario shrinks: thread 0 finishes earlier than the trace
  // remembers, so a recorded choice of thread 0 eventually names a
  // thread that is no longer runnable (or the stream has leftovers).
  const RunResult r = ReplayTrace(opt, recorded.trace, TwoStepThreads(1));
  ASSERT_TRUE(r.failed);
  EXPECT_TRUE(r.stale_trace);
  EXPECT_NE(r.message.find("stale trace"), std::string::npos) << r.message;
}

TEST(StaleTrace, SeedReplayCrossCheckDiagnosesDivergence) {
  Options opt;
  opt.iterations = 8;
  const RunResult recorded = Explore(opt, TwoStepThreads(3));
  ASSERT_FALSE(recorded.failed) << recorded.message;

  // Same seed, changed scenario: the pure seed replay happily produces
  // an unrelated schedule; the cross-checking overload flags it.
  const RunResult r = ReplaySeed(opt, opt.seed + opt.iterations - 1,
                                 TwoStepThreads(5), recorded.trace);
  ASSERT_TRUE(r.failed);
  EXPECT_TRUE(r.stale_trace);
  EXPECT_NE(r.message.find("stale trace"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("diverged"), std::string::npos) << r.message;

  // And against the unchanged scenario it stays clean.
  const RunResult ok = ReplaySeed(opt, opt.seed + opt.iterations - 1,
                                  TwoStepThreads(3), recorded.trace);
  EXPECT_FALSE(ok.stale_trace) << ok.message;
}

}  // namespace
}  // namespace hyperalloc::check
