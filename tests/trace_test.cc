// Tests for the observability layer: lock-free counter/histogram registry
// (correctness under concurrent writers) and the per-thread ring-buffer
// event tracer (virtual-time ordering, overflow, thread-exit retirement,
// exporters).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/hv/cost_model.h"
#include "src/sim/simulation.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"

namespace hyperalloc::trace {
namespace {

constexpr size_t kDefaultCapacity = 1 << 16;  // mirrors trace.cc

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CounterRegistry::Global().ResetForTest();
    Tracer::Global().ResetForTest();
    Tracer::Global().SetEnabled(false);
    Tracer::Global().SetTimeSource(nullptr);
  }

  void TearDown() override {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().SetTimeSource(nullptr);
    Tracer::Global().SetCapacity(kDefaultCapacity);
    Tracer::Global().Drain();
  }
};

uint64_t CounterValue(const std::string& name) {
  for (const auto& [n, v] : CounterRegistry::Global().Counters()) {
    if (n == name) {
      return v;
    }
  }
  return 0;
}

TEST_F(TraceTest, RegistryReturnsStableInstances) {
  Counter& a = CounterRegistry::Global().FindOrCreate("test.same");
  Counter& b = CounterRegistry::Global().FindOrCreate("test.same");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = CounterRegistry::Global().FindOrCreateHistogram("test.same");
  Histogram& h2 = CounterRegistry::Global().FindOrCreateHistogram("test.same");
  EXPECT_EQ(&h1, &h2);  // counters and histograms are separate namespaces
  a.Add(3);
  EXPECT_EQ(b.Value(), 3u);
}

TEST_F(TraceTest, CountersExactUnderEightThreads) {
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  Counter& counter = CounterRegistry::Global().FindOrCreate("test.mt");
  Histogram& hist =
      CounterRegistry::Global().FindOrCreateHistogram("test.mt_hist");
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &hist] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter.Add(1);
        HA_COUNT("test.mt_macro");  // no-op when HYPERALLOC_TRACE=0
        hist.Record(i % 7);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
#if HYPERALLOC_TRACE
  EXPECT_EQ(CounterValue("test.mt_macro"), kThreads * kPerThread);
#endif
  const Histogram::Snapshot snap = hist.Read();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  // sum of i % 7 over 100000 iterations, times 8 threads.
  uint64_t per_thread_sum = 0;
  for (uint64_t i = 0; i < kPerThread; ++i) {
    per_thread_sum += i % 7;
  }
  EXPECT_EQ(snap.sum, kThreads * per_thread_sum);
}

TEST_F(TraceTest, HistogramBuckets) {
  Histogram& hist =
      CounterRegistry::Global().FindOrCreateHistogram("test.buckets");
  hist.Record(0);     // bucket 0
  hist.Record(1);     // bucket 1: [1, 2)
  hist.Record(2);     // bucket 2: [2, 4)
  hist.Record(3);     // bucket 2
  hist.Record(1024);  // bucket 11: [1024, 2048)
  const Histogram::Snapshot snap = hist.Read();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1030u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 206.0);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[11], 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024u);
}

#if HYPERALLOC_TRACE
TEST_F(TraceTest, MacroDeltaAndHistogram) {
  HA_COUNT_N("test.delta", 5);
  HA_COUNT_N("test.delta", 7);
  EXPECT_EQ(CounterValue("test.delta"), 12u);
  HA_HIST("test.hist_macro", 100);
  for (const auto& [name, snap] : CounterRegistry::Global().Histograms()) {
    if (name == "test.hist_macro") {
      EXPECT_EQ(snap.count, 1u);
      EXPECT_EQ(snap.sum, 100u);
    }
  }
}
#endif  // HYPERALLOC_TRACE

TEST_F(TraceTest, EventsOrderedByVirtualTime) {
  sim::Simulation sim;
  Tracer& tracer = Tracer::Global();
  tracer.SetTimeSource(&sim);
  tracer.SetEnabled(true);
  tracer.Emit(Category::kLLFree, Op::kGet, 10, 0);
  tracer.Emit(Category::kLLFree, Op::kPut, 10, 0);  // same time, later seq
  sim.AdvanceClock(500);
  tracer.Emit(Category::kMonitor, Op::kReclaimHard, 3, 1);
  sim.AdvanceClock(500);
  tracer.Emit(Category::kEpt, Op::kUnmap, 7, 512);

  const std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].at, 0u);
  EXPECT_EQ(events[0].op, Op::kGet);
  EXPECT_EQ(events[1].op, Op::kPut);  // seq breaks the t=0 tie
  EXPECT_EQ(events[2].at, 500u);
  EXPECT_EQ(events[2].category, Category::kMonitor);
  EXPECT_EQ(events[3].at, 1000u);
  EXPECT_EQ(events[3].arg0, 7u);
  EXPECT_EQ(events[3].arg1, 512u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at);
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  EXPECT_STREQ(Name(events[3].category), "ept");
  EXPECT_STREQ(Name(events[3].op), "unmap");
}

TEST_F(TraceTest, SeqGivesTotalOrderAcrossThreads) {
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kPerThread = 1000;
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(true);  // no time source: all events at t=0
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        tracer.Emit(Category::kLLFree, Op::kGet, t, i);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  // The global seq is a total order; the drain must respect it, and each
  // thread's own events must appear in emission order within it.
  std::vector<uint64_t> next(kThreads, 0);
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
    const uint64_t thread = events[i].arg0;
    ASSERT_LT(thread, kThreads);
    EXPECT_EQ(events[i].arg1, next[thread]++);
  }
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST_F(TraceTest, RingOverflowKeepsNewestEvents) {
  Tracer& tracer = Tracer::Global();
  tracer.SetCapacity(16);
  tracer.SetEnabled(true);
  for (uint64_t i = 0; i < 40; ++i) {
    tracer.Emit(Category::kGuest, Op::kFault4k, i, 0);
  }
  EXPECT_EQ(tracer.dropped_events(), 24u);
  const std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 16u);
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(events[i].arg0, 24 + i);  // oldest overwritten, newest kept
  }
  EXPECT_EQ(tracer.dropped_events(), 24u);  // survives the drain
}

TEST_F(TraceTest, ThreadExitRetiresBufferedEvents) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(true);
  std::thread worker([&tracer] {
    for (uint64_t i = 0; i < 5; ++i) {
      tracer.Emit(Category::kBalloon, Op::kInflate, i, 0);
    }
  });
  worker.join();  // thread gone; its events moved to the retired list
  const std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[4].arg0, 4u);
}

TEST_F(TraceTest, DisabledTracerEmitsNothing) {
  EXPECT_FALSE(Tracer::Global().enabled());
  HA_TRACE_EVENT(Category::kLLFree, Op::kGet, 1, 2);
  EXPECT_TRUE(Tracer::Global().Drain().empty());
#if HYPERALLOC_TRACE
  // Counters stay live even while event tracing is off.
  HA_COUNT("test.while_disabled");
  EXPECT_EQ(CounterValue("test.while_disabled"), 1u);
#endif
}

TEST_F(TraceTest, ChargeTracedAdvancesClockAndRecords) {
  sim::Simulation sim;
  EXPECT_EQ(hv::ChargeTraced(&sim, "test.charge_ns", 2500), 2500u);
  EXPECT_EQ(sim.now(), 2500u);
  for (const auto& [name, snap] : CounterRegistry::Global().Histograms()) {
    if (name == "test.charge_ns") {
      EXPECT_EQ(snap.count, 1u);
      EXPECT_EQ(snap.sum, 2500u);
    }
  }
}

TEST_F(TraceTest, JsonExportHoldsCountersHistogramsAndEvents) {
  sim::Simulation sim;
  Tracer& tracer = Tracer::Global();
  tracer.SetTimeSource(&sim);
  tracer.SetEnabled(true);
  CounterRegistry::Global().FindOrCreate("test.json_counter").Add(42);
  CounterRegistry::Global().FindOrCreateHistogram("test.json_hist").Record(8);
  sim.AdvanceClock(123);
  tracer.Emit(Category::kMonitor, Op::kMadvise, 5, 2);

  const std::string path = ::testing::TempDir() + "/trace_test.json";
  WriteJson(path);
  const std::string json = ReadFile(path);
  EXPECT_NE(json.find("\"test.json_counter\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"monitor\""), std::string::npos);
  EXPECT_NE(json.find("\"madvise\""), std::string::npos);
  EXPECT_NE(json.find("[123,\"monitor\",\"madvise\",5,2]"), std::string::npos)
      << json;
  EXPECT_TRUE(tracer.Drain().empty());  // the export drained the tracer
}

TEST_F(TraceTest, CsvArtifactWritesEventsAndCounters) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(true);
  CounterRegistry::Global().FindOrCreate("test.csv_counter").Add(1);
  tracer.Emit(Category::kIommu, Op::kIotlbFlush, 9, 0);

  const std::string path = ::testing::TempDir() + "/trace_test.csv";
  WriteTraceArtifact(path);
  const std::string events_csv = ReadFile(path);
  EXPECT_NE(events_csv.find("time_ns,category,op,arg0,arg1"),
            std::string::npos);
  EXPECT_NE(events_csv.find("iommu,iotlb_flush,9,0"), std::string::npos);
  const std::string counters_csv = ReadFile(path + ".counters.csv");
  EXPECT_NE(counters_csv.find("test.csv_counter,1"), std::string::npos);
}

// Regression: "a.b" and "a_b" both mangle to "hyperalloc_a_b"; without
// disambiguation one sample silently overwrites the other in the
// exposition. Collision groups get a stable per-name suffix.
TEST(PrometheusNameMapTest, CollisionsGetStableSuffixes) {
  const std::vector<std::string> names = {"pool.get", "pool_get",
                                          "monitor.resize"};
  const std::map<std::string, std::string> map = PrometheusNameMap(names);
  ASSERT_EQ(map.size(), 3u);
  // The unambiguous name keeps the plain mangled form.
  EXPECT_EQ(map.at("monitor.resize"), "hyperalloc_monitor_resize");
  // Both collision-group members are suffixed (neither silently claims
  // the plain form) and stay distinct.
  EXPECT_NE(map.at("pool.get"), map.at("pool_get"));
  EXPECT_NE(map.at("pool.get"), "hyperalloc_pool_get");
  EXPECT_NE(map.at("pool_get"), "hyperalloc_pool_get");
  EXPECT_EQ(map.at("pool.get").rfind("hyperalloc_pool_get_x", 0), 0u)
      << map.at("pool.get");
}

TEST(PrometheusNameMapTest, SuffixIndependentOfRegistrationOrder) {
  // A name's disambiguated form is a pure function of the name itself:
  // permuting or growing the input set never changes an existing form.
  const std::map<std::string, std::string> forward =
      PrometheusNameMap({"a.b", "a_b"});
  const std::map<std::string, std::string> reversed =
      PrometheusNameMap({"a_b", "a.b"});
  EXPECT_EQ(forward.at("a.b"), reversed.at("a.b"));
  EXPECT_EQ(forward.at("a_b"), reversed.at("a_b"));
  const std::map<std::string, std::string> grown =
      PrometheusNameMap({"a.b", "a_b", "other.metric"});
  EXPECT_EQ(forward.at("a.b"), grown.at("a.b"));
  EXPECT_EQ(grown.at("other.metric"), "hyperalloc_other_metric");
}

TEST(PrometheusNameMapTest, DuplicateInputsAndNoCollisions) {
  const std::map<std::string, std::string> map =
      PrometheusNameMap({"x.y", "x.y", "plain"});
  ASSERT_EQ(map.size(), 2u);
  EXPECT_EQ(map.at("x.y"), "hyperalloc_x_y");
  EXPECT_EQ(map.at("plain"), "hyperalloc_plain");
}

}  // namespace
}  // namespace hyperalloc::trace
