// Tests for the §6 hotness-hint protocol: the guest raises the 2-bit H
// field in the shared area entries on access, the monitor ages it during
// its scans, and the host's swap victim selection spares hot frames.
#include <gtest/gtest.h>

#include "src/core/hyperalloc.h"
#include "src/guest/guest_vm.h"
#include "src/hv/swap.h"

namespace hyperalloc {
namespace {

class HotnessTest : public ::testing::Test {
 protected:
  void Init(uint64_t host_bytes = kGiB) {
    sim_ = std::make_unique<sim::Simulation>();
    host_ = std::make_unique<hv::HostMemory>(FramesForBytes(host_bytes));
    guest::GuestConfig config;
    config.memory_bytes = 256 * kMiB;
    config.vcpus = 2;
    config.dma32_bytes = 0;
    config.allocator = guest::AllocatorKind::kLLFree;
    vm_ = std::make_unique<guest::GuestVm>(sim_.get(), host_.get(), config);
    monitor_ = std::make_unique<core::HyperAllocMonitor>(
        vm_.get(), core::HyperAllocConfig{});
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<hv::HostMemory> host_;
  std::unique_ptr<guest::GuestVm> vm_;
  std::unique_ptr<core::HyperAllocMonitor> monitor_;
};

TEST_F(HotnessTest, TouchRaisesHotness) {
  Init();
  const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(r.ok());
  vm_->Touch(*r, kFramesPerHuge);
  EXPECT_TRUE(monitor_->IsHot(FrameToHuge(*r)));
  // An untouched frame stays cold.
  const Result<FrameId> cold = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(monitor_->IsHot(FrameToHuge(*cold)));
}

TEST_F(HotnessTest, ScansAgeHotnessDown) {
  Init();
  const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(r.ok());
  vm_->Touch(*r, kFramesPerHuge);
  ASSERT_TRUE(monitor_->IsHot(FrameToHuge(*r)));
  // Hotness saturates at 3; three aging scans cool it down.
  monitor_->AutoReclaimPass();
  EXPECT_TRUE(monitor_->IsHot(FrameToHuge(*r)));
  monitor_->AutoReclaimPass();
  monitor_->AutoReclaimPass();
  EXPECT_FALSE(monitor_->IsHot(FrameToHuge(*r)));
  // A new access re-heats it.
  vm_->Touch(*r, 1);
  EXPECT_TRUE(monitor_->IsHot(FrameToHuge(*r)));
}

TEST_F(HotnessTest, HotnessSurvivesReclaimCycle) {
  Init();
  const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(r.ok());
  vm_->Touch(*r, kFramesPerHuge);
  vm_->Free(*r, kHugeOrder);
  vm_->PurgeAllocatorCaches();
  // Soft reclaim + reuse keep the hint bits intact (they ride in the
  // same 16-bit word as A and E).
  ASSERT_GE(monitor_->AutoReclaimPass(), 1u);
  const Result<FrameId> again = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(monitor_->IsHot(FrameToHuge(*again)));
}

TEST_F(HotnessTest, SwapSparesHotFrames) {
  // Overcommitted host: 256 MiB of guest demand + a second VM forces
  // swapping; the hotness oracle steers eviction to the cold region.
  sim_ = std::make_unique<sim::Simulation>();
  host_ = std::make_unique<hv::HostMemory>(FramesForBytes(384 * kMiB));
  hv::SwapManager swap(sim_.get(), host_.get());

  guest::GuestConfig config;
  config.memory_bytes = 256 * kMiB;
  config.vcpus = 2;
  config.dma32_bytes = 0;
  config.allocator = guest::AllocatorKind::kLLFree;
  vm_ = std::make_unique<guest::GuestVm>(sim_.get(), host_.get(), config);
  monitor_ = std::make_unique<core::HyperAllocMonitor>(
      vm_.get(), core::HyperAllocConfig{});
  swap.Register(vm_.get(), [this](HugeId huge) {
    return monitor_->IsHot(huge);
  });

  guest::GuestConfig other_config;
  other_config.memory_bytes = 256 * kMiB;
  other_config.vcpus = 2;
  other_config.dma32_bytes = 0;
  guest::GuestVm other(sim_.get(), host_.get(), other_config);
  swap.Register(&other);

  // VM 0: a hot half (touched repeatedly) and a cold half (aged).
  vm_->Touch(0, vm_->total_frames());
  for (int scan = 0; scan < 4; ++scan) {
    monitor_->AutoReclaimPass();  // ages everything
  }
  vm_->Touch(0, vm_->total_frames() / 2);  // re-heat the lower half

  // VM 1 faults in its memory: the host must evict ~128 MiB from VM 0.
  other.Touch(0, other.total_frames());
  ASSERT_GT(swap.swapped_out_frames(), 0u);

  // The hot (lower) half should be mostly resident, the cold (upper)
  // half mostly evicted.
  const uint64_t half = vm_->total_frames() / 2;
  const uint64_t hot_resident = vm_->ept().CountMapped(0, half);
  const uint64_t cold_resident = vm_->ept().CountMapped(half, half);
  EXPECT_GT(hot_resident, cold_resident + half / 4)
      << "hotness steering should spare recently accessed memory";
}

}  // namespace
}  // namespace hyperalloc
