// End-to-end integration tests across the whole stack: the relative
// performance and elasticity relationships the paper's evaluation rests
// on must hold in the simulation (small scale, fast versions of the
// benchmarks — regression guards for the E1..E8 experiments).
#include <gtest/gtest.h>

#include "src/balloon/virtio_balloon.h"
#include "src/core/hyperalloc.h"
#include "src/guest/guest_vm.h"
#include "src/vmem/virtio_mem.h"
#include "src/base/rng.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc {
namespace {

constexpr uint64_t kVmBytes = 4 * kGiB;
constexpr uint64_t kShrunk = kGiB;

struct Rig {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<hv::HostMemory> host;
  std::unique_ptr<guest::GuestVm> vm;
  std::unique_ptr<hv::Deflator> deflator;
  std::unique_ptr<workloads::MemoryPool> pool;

  sim::Time SetLimit(uint64_t bytes) {
    const sim::Time start = sim->now();
    bool done = false;
    deflator->Request({.target_bytes = bytes, .done = [&] { done = true; }});
    while (!done) {
      EXPECT_TRUE(sim->Step());
    }
    return sim->now() - start;
  }
};

enum class Kind { kBalloon, kBalloonHuge, kVmem, kHyperAlloc };

Rig MakeRig(Kind kind) {
  Rig rig;
  rig.sim = std::make_unique<sim::Simulation>();
  rig.host = std::make_unique<hv::HostMemory>(FramesForBytes(16 * kGiB));
  guest::GuestConfig config;
  config.memory_bytes = kVmBytes;
  config.vcpus = 4;
  config.dma32_bytes = 0;
  switch (kind) {
    case Kind::kHyperAlloc:
      config.allocator = guest::AllocatorKind::kLLFree;
      break;
    case Kind::kVmem:
      config.movable_bytes = kVmBytes - kGiB;
      break;
    default:
      break;
  }
  rig.vm = std::make_unique<guest::GuestVm>(rig.sim.get(), rig.host.get(),
                                            config);
  switch (kind) {
    case Kind::kBalloon:
      rig.deflator = std::make_unique<balloon::VirtioBalloon>(
          rig.vm.get(), balloon::BalloonConfig{});
      break;
    case Kind::kBalloonHuge: {
      balloon::BalloonConfig bc;
      bc.huge = true;
      bc.reporting_order = kHugeOrder;
      rig.deflator =
          std::make_unique<balloon::VirtioBalloon>(rig.vm.get(), bc);
      break;
    }
    case Kind::kVmem:
      rig.deflator = std::make_unique<vmem::VirtioMem>(rig.vm.get(),
                                                       vmem::VmemConfig{});
      break;
    case Kind::kHyperAlloc:
      rig.deflator = std::make_unique<core::HyperAllocMonitor>(
          rig.vm.get(), core::HyperAllocConfig{});
      break;
  }
  rig.pool = std::make_unique<workloads::MemoryPool>(rig.vm.get());
  return rig;
}

sim::Time MeasureShrink(Kind kind) {
  Rig rig = MakeRig(kind);
  const uint64_t region = rig.pool->AllocRegion(3 * kGiB, 0.9, 0);
  rig.pool->FreeRegion(region, 0);
  rig.vm->PurgeAllocatorCaches();
  const sim::Time t = rig.SetLimit(kShrunk);
  EXPECT_EQ(rig.deflator->limit_bytes(), kShrunk);
  return t;
}

TEST(Integration, ReclaimSpeedOrderingMatchesFig4) {
  // Fig. 4: HyperAlloc > balloon-huge > virtio-mem >> virtio-balloon.
  const sim::Time balloon = MeasureShrink(Kind::kBalloon);
  const sim::Time balloon_huge = MeasureShrink(Kind::kBalloonHuge);
  const sim::Time vmem = MeasureShrink(Kind::kVmem);
  const sim::Time hyperalloc = MeasureShrink(Kind::kHyperAlloc);

  EXPECT_LT(hyperalloc, balloon_huge);
  EXPECT_LT(balloon_huge, vmem);
  EXPECT_LT(vmem, balloon);
  // The headline: two-plus orders of magnitude vs 4 KiB ballooning.
  EXPECT_GT(balloon / hyperalloc, 100u);
}

TEST(Integration, ReclaimUntouchedFasterThanTouched) {
  for (const Kind kind : {Kind::kBalloonHuge, Kind::kHyperAlloc}) {
    Rig rig = MakeRig(kind);
    const uint64_t region = rig.pool->AllocRegion(3 * kGiB, 0.9, 0);
    rig.pool->FreeRegion(region, 0);
    rig.vm->PurgeAllocatorCaches();
    const sim::Time touched = rig.SetLimit(kShrunk);
    rig.SetLimit(kVmBytes);
    const sim::Time untouched = rig.SetLimit(kShrunk);
    EXPECT_LT(untouched, touched);
  }
}

TEST(Integration, HyperAllocReturnIsNearlyFree) {
  Rig rig = MakeRig(Kind::kHyperAlloc);
  rig.SetLimit(kShrunk);
  const sim::Time grow = rig.SetLimit(kVmBytes);
  // 1.5k huge frames at ~229 ns each: well under a millisecond.
  EXPECT_LT(grow, sim::kMs);
  EXPECT_EQ(rig.vm->rss_bytes(), 0u);  // lazy: nothing populated
}

class LiveSetListener : public guest::MigrationListener {
 public:
  explicit LiveSetListener(std::vector<std::pair<FrameId, unsigned>>* live)
      : live_(live) {}
  void OnFrameMigrated(FrameId old_head, FrameId new_head,
                       unsigned order) override {
    for (auto& [frame, frame_order] : *live_) {
      if (frame == old_head && frame_order == order) {
        frame = new_head;
        return;
      }
    }
  }

 private:
  std::vector<std::pair<FrameId, unsigned>>* live_;
};

TEST(Integration, GuestSurvivesResizeUnderLoad) {
  // Shrink and grow while the guest keeps allocating/freeing: no OOM, no
  // corruption, all memory recovered (every candidate).
  for (const Kind kind :
       {Kind::kBalloon, Kind::kBalloonHuge, Kind::kVmem,
        Kind::kHyperAlloc}) {
    Rig rig = MakeRig(kind);
    Rng rng(3);
    std::vector<std::pair<FrameId, unsigned>> live;
    LiveSetListener listener(&live);
    rig.vm->AddMigrationListener(&listener);  // virtio-mem may migrate
    bool resize_done = false;
    rig.deflator->Request(
        {.target_bytes = kShrunk, .done = [&] { resize_done = true; }});
    int guard = 0;
    while ((!resize_done || guard < 4000) && ++guard < 40000) {
      rig.sim->Step();
      if (guard % 3 == 0 && rng.Chance(0.6)) {
        const unsigned order = rng.Chance(0.2) ? kHugeOrder : 0;
        const Result<FrameId> r =
            rig.vm->Alloc(order, AllocType::kMovable, 0);
        if (r.ok()) {
          live.emplace_back(*r, order);
        }
      } else if (!live.empty()) {
        const size_t idx = rng.Below(live.size());
        rig.vm->Free(live[idx].first, live[idx].second, 0);
        live[idx] = live.back();
        live.pop_back();
      }
    }
    EXPECT_TRUE(resize_done) << "candidate " << static_cast<int>(kind);
    // Guest memory stays consistent.
    for (const auto& [frame, order] : live) {
      rig.vm->Free(frame, order, 0);
    }
    rig.vm->PurgeAllocatorCaches();
    EXPECT_EQ(rig.vm->FreeFrames() * kFrameSize,
              rig.deflator->limit_bytes())
        << "candidate " << static_cast<int>(kind);
  }
}

TEST(Integration, AutoReclaimFootprintOrdering) {
  // A burst workload allocates, holds, frees; with auto reclamation the
  // host gets the memory back — HyperAlloc at least as fast and complete
  // as free-page reporting.
  uint64_t rss_after[2] = {0, 0};
  int idx = 0;
  for (const Kind kind : {Kind::kBalloonHuge, Kind::kHyperAlloc}) {
    Rig rig = MakeRig(kind);
    rig.deflator->StartAuto();
    const uint64_t region = rig.pool->AllocRegion(3 * kGiB, 0.5, 0);
    rig.sim->RunUntil(rig.sim->now() + 10 * sim::kSec);
    EXPECT_GE(rig.vm->rss_bytes(), 3 * kGiB);
    rig.pool->FreeRegion(region, 0);
    rig.vm->PurgeAllocatorCaches();
    rig.sim->RunUntil(rig.sim->now() + 30 * sim::kSec);
    rss_after[idx++] = rig.vm->rss_bytes();
    rig.deflator->StopAuto();
  }
  EXPECT_LE(rss_after[1], rss_after[0])
      << "HyperAlloc must reclaim at least as much as free-page reporting";
  EXPECT_LT(rss_after[1], kGiB / 2);
}

TEST(Integration, VmemMigratesBusyBlocksDuringShrink) {
  Rig rig = MakeRig(Kind::kVmem);
  // Occupy scattered movable frames so unplugging must migrate.
  const uint64_t region = rig.pool->AllocRegion(kGiB, 0.0, 0);
  const sim::Time t = rig.SetLimit(2 * kGiB);
  (void)t;
  EXPECT_EQ(rig.deflator->limit_bytes(), 2 * kGiB);
  EXPECT_GT(rig.vm->migrated_frames(), 0u);
  // The region must still be fully intact (pool followed the moves).
  EXPECT_EQ(rig.pool->RegionBytes(region), kGiB);
  rig.pool->FreeRegion(region, 0);
  EXPECT_EQ(rig.vm->FreeFrames() * kFrameSize, 2 * kGiB);
}

TEST(Integration, DmaSafetyMatrix) {
  // Table 1's DMA-safety column, verified end to end: only virtio-mem
  // and HyperAlloc allow passthrough; both keep every allocated frame
  // DMA-accessible across a full shrink/grow cycle.
  for (const bool use_hyperalloc : {false, true}) {
    sim::Simulation sim;
    hv::HostMemory host(FramesForBytes(16 * kGiB));
    guest::GuestConfig config;
    config.memory_bytes = kVmBytes;
    config.vcpus = 4;
    config.dma32_bytes = 0;
    config.vfio = true;
    std::unique_ptr<hv::Deflator> deflator;
    if (use_hyperalloc) {
      config.allocator = guest::AllocatorKind::kLLFree;
    } else {
      config.movable_bytes = kVmBytes - kGiB;
    }
    guest::GuestVm vm(&sim, &host, config);
    if (use_hyperalloc) {
      deflator = std::make_unique<core::HyperAllocMonitor>(
          &vm, core::HyperAllocConfig{});
    } else {
      deflator =
          std::make_unique<vmem::VirtioMem>(&vm, vmem::VmemConfig{});
    }
    EXPECT_TRUE(deflator->caps().dma_safe);

    bool done = false;
    deflator->Request({.target_bytes = 2 * kGiB, .done = [&] { done = true; }});
    while (!done) {
      sim.Step();
    }
    for (int i = 0; i < 64; ++i) {
      const Result<FrameId> r = vm.Alloc(kHugeOrder, AllocType::kHuge, 0);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(vm.DmaWrite(*r, kFramesPerHuge))
          << (use_hyperalloc ? "HyperAlloc" : "virtio-mem") << " frame "
          << *r;
    }
  }
}

}  // namespace
}  // namespace hyperalloc
