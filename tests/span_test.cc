// Unit tests for the causal span tracer (src/trace/span.h): arming,
// nesting/parenting, cross-thread trace-id propagation, charge
// attribution and closure, ring overflow accounting, exporter golden
// round-trips, and the compile-out contract.
#include "src/trace/span.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/hv/cost_model.h"
#include "src/sim/simulation.h"
#include "src/trace/export.h"

namespace hyperalloc::trace {
namespace {

#if HYPERALLOC_TRACE

class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SpanTracer::Global().SetCapacity(1 << 12);  // also clears the rings
    SpanTracer::Global().ResetForTest();
    SpanTracer::Global().SetEnabled(true);
  }

  void TearDown() override {
    SpanTracer::Global().SetEnabled(false);
    SpanTracer::Global().Drain();
  }

  static const SpanRecord* Find(const std::vector<SpanRecord>& spans,
                                const std::string& name) {
    for (const SpanRecord& span : spans) {
      if (name == span.name) {
        return &span;
      }
    }
    return nullptr;
  }
};

TEST_F(SpanTest, DisarmedWithoutTraceIdOrWhenDisabled) {
  {
    // Enabled, but no trace id in scope (the workload-hot-path case).
    Span span(Layer::kLLFree, "test.no_context");
    EXPECT_FALSE(span.armed());
  }
  {
    ScopedRoot root;
    SpanTracer::Global().SetEnabled(false);
    // Tracer disabled mid-request: spans disarm even with an id in scope.
    Span span(Layer::kLLFree, "test.disabled");
    EXPECT_FALSE(span.armed());
    SpanTracer::Global().SetEnabled(true);
  }
  EXPECT_TRUE(SpanTracer::Global().Drain().empty());
}

TEST_F(SpanTest, NestingParentsAndVirtualClock) {
  sim::Simulation sim;
  SpanContext context;
  context.vm = 7;
  context.clock = &sim;
  ScopedContext scoped(context);
  ScopedRoot root;
  {
    Span outer(Layer::kMonitor, "test.outer");
    sim.AdvanceClock(100);
    {
      Span inner(Layer::kLLFree, "test.inner");
      EXPECT_EQ(Span::Current(), &inner);
      sim.AdvanceClock(40);
    }
    EXPECT_EQ(Span::Current(), &outer);
    sim.AdvanceClock(10);
  }
  EXPECT_EQ(Span::Current(), nullptr);

  const std::vector<SpanRecord> spans = SpanTracer::Global().Drain();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord* outer = Find(spans, "test.outer");
  const SpanRecord* inner = Find(spans, "test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->trace_id, inner->trace_id);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(inner->parent_id, outer->span_id);
  EXPECT_EQ(outer->vm, 7u);
  EXPECT_EQ(inner->vm, 7u);
  EXPECT_EQ(outer->virtual_ns(), 150u);
  EXPECT_EQ(inner->begin_vns, 100u);
  EXPECT_EQ(inner->virtual_ns(), 40u);
  // Drain sorts by (begin_vns, seq): outer began first.
  EXPECT_EQ(std::string(spans[0].name), "test.outer");
}

TEST_F(SpanTest, ChargeAttributionAndClosure) {
  sim::Simulation sim;
  SpanContext context;
  context.clock = &sim;
  ScopedContext scoped(context);
  ScopedRoot root;
  {
    Span request(Layer::kRequest, "test.request");
    {
      Span llfree(Layer::kLLFree, "test.llfree");
      hv::Charge(&sim, 388);           // innermost: llfree
      hv::ChargeTraced(&sim, "span_test.reclaim_ns", 229);
    }
    Span ept(Layer::kEpt, "test.ept");
    Span guest(Layer::kGuest, "test.guest");
    // Interleaved loop: explicit-target charges bypass the innermost
    // rule, so two alternating layers can share one slice.
    hv::ChargeSpan(&sim, &ept, 5200);
    hv::ChargeSpan(&sim, &guest, 300);
  }
  const std::vector<SpanRecord> spans = SpanTracer::Global().Drain();
  ASSERT_EQ(spans.size(), 4u);
  const SpanRecord* request = Find(spans, "test.request");
  const SpanRecord* llfree = Find(spans, "test.llfree");
  const SpanRecord* ept = Find(spans, "test.ept");
  const SpanRecord* guest = Find(spans, "test.guest");
  ASSERT_NE(request, nullptr);
  EXPECT_EQ(llfree->charge_ns, 388u + 229u);
  EXPECT_EQ(ept->charge_ns, 5200u);
  EXPECT_EQ(guest->charge_ns, 300u);
  EXPECT_EQ(request->charge_ns, 0u);  // all time is in the children
  // Closure: every clock advance went through a Charge* helper inside
  // the tree, so the charges sum to the root's virtual duration.
  uint64_t charged = 0;
  for (const SpanRecord& span : spans) {
    charged += span.charge_ns;
  }
  EXPECT_EQ(charged, request->virtual_ns());
}

TEST_F(SpanTest, RequestSpanPropagatesAcrossThreads) {
  sim::Simulation sim;
  SpanContext vm_context;
  vm_context.vm = 3;
  vm_context.clock = &sim;
  ScopedContext scoped(vm_context);

  RequestSpan request;
  EXPECT_FALSE(request.active());
  EXPECT_EQ(request.context().trace_id, 0u);  // inactive: children disarm
  request.Start("request.inflate");
  ASSERT_TRUE(request.active());
  request.AddFrames(512);

  // A worker thread re-enters the request context — as the multi-VM
  // harness worker threads and async event-loop slices do.
  std::thread worker([&request, &sim] {
    ScopedContext slice(request.context());
    Span span(Layer::kEpt, "test.worker_unmap");
    ASSERT_TRUE(span.armed());
    hv::Charge(&sim, 1500);
  });
  worker.join();
  request.Finish();
  EXPECT_FALSE(request.active());
  request.Finish();  // idempotent

  const std::vector<SpanRecord> spans = SpanTracer::Global().Drain();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord* root = Find(spans, "request.inflate");
  const SpanRecord* child = Find(spans, "test.worker_unmap");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(root->frames, 512u);
  EXPECT_EQ(child->trace_id, root->trace_id);
  EXPECT_EQ(child->parent_id, root->span_id);
  EXPECT_EQ(child->vm, 3u);
  EXPECT_EQ(child->charge_ns, 1500u);
  EXPECT_EQ(root->virtual_ns(), 1500u);  // same virtual clock
}

TEST_F(SpanTest, FullRingCountsDroppedSpans) {
  SpanTracer::Global().SetCapacity(4);
  ScopedRoot root;
  for (int i = 0; i < 10; ++i) {
    Span span(Layer::kHostPool, "test.flood");
  }
  EXPECT_GT(SpanTracer::Global().dropped_spans(), 0u);
  EXPECT_LE(SpanTracer::Global().Drain().size(), 4u);
  SpanTracer::Global().SetCapacity(1 << 12);
}

std::string Slurp(const std::string& path) {
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

std::vector<SpanRecord> EmitGoldenSpans(sim::Simulation* sim) {
  SpanContext context;
  context.vm = 2;
  context.clock = sim;
  ScopedContext scoped(context);
  ScopedRoot root;
  {
    Span outer(Layer::kMonitor, "golden.shrink");
    outer.AddFrames(512);
    sim->AdvanceClock(250);
    Span inner(Layer::kEpt, "golden.unmap");
    hv::Charge(sim, 750);
    inner.AddFrames(512);
    inner.AddHugeFrames(512);
  }
  return SpanTracer::Global().Drain();
}

TEST_F(SpanTest, SpansCsvGoldenRoundTrip) {
  sim::Simulation sim;
  const std::vector<SpanRecord> spans = EmitGoldenSpans(&sim);
  ASSERT_EQ(spans.size(), 2u);

  const std::string path = ::testing::TempDir() + "/golden.spans.csv";
  WriteSpansCsv(path, spans);
  std::ifstream file(path);
  std::string header;
  ASSERT_TRUE(std::getline(file, header));
  EXPECT_EQ(header,
            "trace_id,span_id,parent_id,vm,layer,name,begin_vns,end_vns,"
            "charge_ns,frames,huge_frames,faults,retries,begin_wall_ns,"
            "end_wall_ns");
  // Round-trip: each record reappears field-for-field in file order.
  for (const SpanRecord& span : spans) {
    std::string line;
    ASSERT_TRUE(std::getline(file, line));
    char expected[256];
    std::snprintf(
        expected, sizeof(expected),
        "%llu,%llu,%llu,%u,%s,%s,%llu,%llu,%llu,%llu,%llu,%llu,%llu,",
        static_cast<unsigned long long>(span.trace_id),
        static_cast<unsigned long long>(span.span_id),
        static_cast<unsigned long long>(span.parent_id), span.vm,
        Name(span.layer), span.name,
        static_cast<unsigned long long>(span.begin_vns),
        static_cast<unsigned long long>(span.end_vns),
        static_cast<unsigned long long>(span.charge_ns),
        static_cast<unsigned long long>(span.frames),
        static_cast<unsigned long long>(span.huge_frames),
        static_cast<unsigned long long>(span.faults),
        static_cast<unsigned long long>(span.retries));
    EXPECT_EQ(line.rfind(expected, 0), 0u) << line << " vs " << expected;
  }
  std::string extra;
  EXPECT_FALSE(std::getline(file, extra));
}

TEST_F(SpanTest, PerfettoJsonGolden) {
  sim::Simulation sim;
  const std::vector<SpanRecord> spans = EmitGoldenSpans(&sim);
  const SpanRecord* inner = Find(spans, "golden.unmap");
  ASSERT_NE(inner, nullptr);

  const std::string path = ::testing::TempDir() + "/golden.perfetto.json";
  WritePerfettoJson(path, spans);
  const std::string json = Slurp(path);
  // Track metadata: pid = vm, tid = layer.
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"vm2\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ept\""), std::string::npos);
  // Complete event for the inner span: begins at 250 virtual ns =
  // 0.250 µs, lasts 750 ns = 0.750 µs.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"golden.unmap\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":0.250"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.750"), std::string::npos);
  EXPECT_NE(json.find("\"charge_ns\":750"), std::string::npos);
  EXPECT_NE(json.find("\"frames\":512"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  const char parent[] = "\"parent_id\":";
  EXPECT_NE(json.find(parent + std::to_string(inner->parent_id)),
            std::string::npos);
}

TEST_F(SpanTest, PrometheusGolden) {
  sim::Simulation sim;
  // One histogram sample (via ChargeTraced) and the golden spans.
  {
    SpanContext context;
    context.clock = &sim;
    ScopedContext scoped(context);
    ScopedRoot root;
    Span span(Layer::kLLFree, "golden.reclaim");
    hv::ChargeTraced(&sim, "span_test.golden_ns", 1000);
  }
  SpanTracer::Global().Drain();

  const std::string path = ::testing::TempDir() + "/golden.prom";
  WritePrometheus(path);
  const std::string prom = Slurp(path);
  EXPECT_NE(prom.find("# TYPE hyperalloc_span_test_golden_ns histogram"),
            std::string::npos);
  // 1000 falls in the [512, 1024) power-of-2 bucket: le="1023".
  EXPECT_NE(prom.find("hyperalloc_span_test_golden_ns_bucket{le=\"1023\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("hyperalloc_span_test_golden_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("hyperalloc_span_test_golden_ns_sum 1000"),
            std::string::npos);
  EXPECT_NE(prom.find("hyperalloc_span_test_golden_ns_count 1"),
            std::string::npos);
}

#else  // !HYPERALLOC_TRACE

// The compile-out contract: the instrumentation types carry no state and
// no code — a Span on a hot path costs nothing when tracing is compiled
// out.
static_assert(sizeof(Span) <= 1, "Span must compile out to an empty type");
static_assert(sizeof(RequestSpan) <= 1,
              "RequestSpan must compile out to an empty type");
static_assert(sizeof(ScopedRoot) <= 1,
              "ScopedRoot must compile out to an empty type");
static_assert(sizeof(SpanContext) <= 1,
              "SpanContext must compile out to an empty type");

TEST(SpanCompileOut, EverythingIsInert) {
  Span span(Layer::kLLFree, "test.compiled_out");
  span.AddFrames(100);
  span.AddCharge(100);
  EXPECT_FALSE(span.armed());
  EXPECT_EQ(Span::Current(), nullptr);
  AttributeCharge(1000);

  RequestSpan request;
  request.Start("request.inflate");
  EXPECT_FALSE(request.active());
  request.Finish();

  // The always-compiled sink still works (exporters link either way),
  // it just never receives spans from the inert instrumentation.
  SpanTracer::Global().SetEnabled(true);
  EXPECT_TRUE(SpanTracer::Global().Drain().empty());
  SpanTracer::Global().SetEnabled(false);
}

#endif  // HYPERALLOC_TRACE

}  // namespace
}  // namespace hyperalloc::trace
