// White-box tests for the LLFree building blocks: the per-area bit field
// and the packed area/tree/reservation entries (paper §4.1 layouts), plus
// the per-slot tree search hints.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <set>

#include "src/llfree/bitfield.h"
#include "src/llfree/entries.h"
#include "src/llfree/llfree.h"

namespace hyperalloc::llfree {
namespace {

class AreaBitsTest : public ::testing::Test {
 protected:
  AreaBitsTest() : bits_(words_.data()) {
    for (auto& word : words_) {
      word.store(0);
    }
  }

  std::array<std::atomic<uint64_t>, kWordsPerArea> words_;
  AreaBits bits_;
};

TEST_F(AreaBitsTest, SetFindsFirstFreeRun) {
  const auto a = bits_.Set(0, 0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 0u);
  const auto b = bits_.Set(0, 0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, 1u);
  EXPECT_EQ(bits_.CountSet(), 2u);
}

TEST_F(AreaBitsTest, StartHintBiasesSearch) {
  const auto a = bits_.Set(0, 128);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 128u);  // word 2 searched first
}

TEST_F(AreaBitsTest, StartHintHonoredWithinWord) {
  // Regression: the intra-word bit offset of the hint used to be
  // dropped, restarting every search at bit 0 of the hinted word.
  const auto a = bits_.Set(0, 130);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 130u);
  const auto b = bits_.Set(0, 130);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, 131u);
}

TEST_F(AreaBitsTest, StartHintWrapsWithinWord) {
  // Fill [60,64) of word 0 from hinted positions, then a hint at 60 must
  // wrap to the beginning of the same word, not skip to word 1.
  for (unsigned bit = 60; bit < 64; ++bit) {
    const auto r = bits_.Set(0, bit);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, bit);
  }
  const auto wrapped = bits_.Set(0, 60);
  ASSERT_TRUE(wrapped.has_value());
  EXPECT_EQ(*wrapped, 0u);
}

TEST_F(AreaBitsTest, MultiWordStartHintHonored) {
  // Regression: orders above the single-word maximum ignored the hint
  // entirely. An order-7 run spans two words; a hint at frame 256 must
  // start the run search at that run, and wrap once the tail is taken.
  const auto a = bits_.Set(7, 256);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 256u);
  const auto b = bits_.Set(7, 384);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, 384u);
  const auto c = bits_.Set(7, 384);  // hinted run taken: wraps to run 0
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, 0u);
}

TEST_F(AreaBitsTest, AlignedRunsPerOrder) {
  for (unsigned order = 0; order <= kMaxBitfieldOrder; ++order) {
    for (auto& word : words_) {
      word.store(0);
    }
    std::set<unsigned> offsets;
    for (;;) {
      const auto offset = bits_.Set(order, 0);
      if (!offset.has_value()) {
        break;
      }
      EXPECT_EQ(*offset % (1u << order), 0u) << "order " << order;
      EXPECT_TRUE(offsets.insert(*offset).second) << "duplicate offset";
    }
    EXPECT_EQ(offsets.size(), kFramesPerHuge >> order) << "order " << order;
    EXPECT_EQ(bits_.CountSet(), kFramesPerHuge);
  }
}

TEST_F(AreaBitsTest, SetSkipsOccupiedRuns) {
  // Occupy bit 1: no order-1 run fits in [0,2), next run is [2,4).
  ASSERT_TRUE(bits_.Set(0, 0).has_value());  // bit 0
  ASSERT_TRUE(bits_.Set(0, 0).has_value());  // bit 1
  const auto run = bits_.Set(1, 0);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(*run, 2u);
}

TEST_F(AreaBitsTest, ClearDetectsDoubleFree) {
  const auto offset = bits_.Set(3, 0);
  ASSERT_TRUE(offset.has_value());
  EXPECT_TRUE(bits_.Clear(*offset, 3));
  EXPECT_FALSE(bits_.Clear(*offset, 3)) << "double free must fail";
  EXPECT_EQ(bits_.CountSet(), 0u);
}

TEST_F(AreaBitsTest, PartialClearRejected) {
  ASSERT_TRUE(bits_.Set(2, 0).has_value());  // bits 0..3
  ASSERT_TRUE(bits_.Clear(0, 2));
  // Clearing again at a different order over the now-free range fails.
  EXPECT_FALSE(bits_.Clear(0, 1));
}

TEST_F(AreaBitsTest, IsFreeChecksWholeRun) {
  ASSERT_TRUE(bits_.Set(0, 0).has_value());  // bit 0
  EXPECT_FALSE(bits_.IsFree(0, 0));
  EXPECT_FALSE(bits_.IsFree(0, 2));  // run [0,4) contains bit 0
  EXPECT_TRUE(bits_.IsFree(4, 2));
}

TEST_F(AreaBitsTest, FillAllMarksEverything) {
  bits_.FillAll();
  EXPECT_EQ(bits_.CountSet(), kFramesPerHuge);
  EXPECT_FALSE(bits_.Set(0, 0).has_value());
}

TEST_F(AreaBitsTest, SetBatchClaimsWordAtATime) {
  unsigned offsets[kFramesPerHuge];
  const unsigned got = bits_.SetBatch(0, 70, 0, offsets);
  ASSERT_EQ(got, 70u);
  for (unsigned i = 0; i < got; ++i) {
    EXPECT_EQ(offsets[i], i);
  }
  EXPECT_EQ(bits_.CountSet(), 70u);
}

TEST_F(AreaBitsTest, SetBatchSkipsOccupiedAndAligns) {
  ASSERT_TRUE(bits_.Set(0, 1).has_value());  // occupy bit 1
  unsigned offsets[8];
  const unsigned got = bits_.SetBatch(1, 3, 0, offsets);
  ASSERT_EQ(got, 3u);
  EXPECT_EQ(offsets[0], 2u);  // pair [0,2) blocked by bit 1
  EXPECT_EQ(offsets[1], 4u);
  EXPECT_EQ(offsets[2], 6u);
}

TEST_F(AreaBitsTest, SetBatchStopsWhenFull) {
  bits_.FillAll();
  ASSERT_TRUE(bits_.Clear(17, 0));
  unsigned offsets[8];
  const unsigned got = bits_.SetBatch(0, 8, 0, offsets);
  ASSERT_EQ(got, 1u);
  EXPECT_EQ(offsets[0], 17u);
}

TEST_F(AreaBitsTest, ClearMaskRoundTripAndDoubleFree) {
  unsigned offsets[64];
  ASSERT_EQ(bits_.SetBatch(0, 64, 0, offsets), 64u);
  EXPECT_TRUE(bits_.ClearMask(0, ~0ull));
  EXPECT_FALSE(bits_.ClearMask(0, ~0ull)) << "double free must fail";
  EXPECT_EQ(bits_.CountSet(), 0u);
}

TEST_F(AreaBitsTest, ClearMaskRejectsPartiallyFreeWord) {
  unsigned offsets[4];
  ASSERT_EQ(bits_.SetBatch(0, 4, 0, offsets), 4u);
  // Mask covers one free bit: the whole clear must be rejected and the
  // four set bits left intact (all-or-nothing, like Clear).
  EXPECT_FALSE(bits_.ClearMask(0, 0x1full));
  EXPECT_EQ(bits_.CountSet(), 4u);
}

TEST(AreaEntry, PackUnpackRoundTrip) {
  for (uint16_t free : {0u, 1u, 511u, 512u}) {
    for (const bool allocated : {false, true}) {
      for (const bool evicted : {false, true}) {
        AreaEntry entry;
        entry.free = free;
        entry.allocated = allocated;
        entry.evicted = evicted;
        EXPECT_EQ(AreaEntry::Unpack(entry.Pack()), entry);
      }
    }
  }
}

TEST(AreaEntry, SixteenBitsSuffice) {
  AreaEntry entry;
  entry.free = 512;
  entry.allocated = true;
  entry.evicted = true;
  // The paper's layout: 10-bit counter + A + E fit in 12 of 16 bits.
  EXPECT_LT(entry.Pack(), 1u << 12);
}

TEST(AreaEntry, IsFreeHugeSemantics) {
  AreaEntry entry;
  entry.free = 512;
  EXPECT_TRUE(entry.IsFreeHuge());
  entry.allocated = true;
  EXPECT_FALSE(entry.IsFreeHuge());
  entry.allocated = false;
  entry.free = 511;
  EXPECT_FALSE(entry.IsFreeHuge());
  // Evicted does not affect huge-freeness (it is a hint).
  entry.free = 512;
  entry.evicted = true;
  EXPECT_TRUE(entry.IsFreeHuge());
}

TEST(TreeEntry, PackUnpackRoundTrip) {
  for (uint32_t free : {0u, 4096u, 16384u, 65535u}) {
    for (const bool reserved : {false, true}) {
      for (const AllocType type :
           {AllocType::kUnmovable, AllocType::kMovable, AllocType::kHuge}) {
        TreeEntry entry;
        entry.free = free;
        entry.reserved = reserved;
        entry.type = type;
        EXPECT_EQ(TreeEntry::Unpack(entry.Pack()), entry);
      }
    }
  }
}

TEST(Reservation, PackUnpackRoundTrip) {
  Reservation r;
  r.active = true;
  r.tree = 0xdeadbeu;
  r.free = 4096;
  EXPECT_EQ(Reservation::Unpack(r.Pack()), r);
  EXPECT_EQ(Reservation::Unpack(Reservation{}.Pack()), Reservation{});
}

TEST(TreeHints, InitialHintsAreInRange) {
  // More slots than trees: the initial spread must still land in-range.
  Config config;
  config.mode = Config::ReservationMode::kPerType;  // 3 slots
  config.areas_per_tree = 8;
  SharedState state(2 * config.areas_per_tree * kFramesPerHuge,
                    config);  // 2 trees
  ASSERT_EQ(state.num_trees(), 2u);
  for (unsigned s = 0; s < config.NumSlots(); ++s) {
    EXPECT_LT(state.tree_hints()[s].load(), state.num_trees()) << "slot " << s;
  }
}

TEST(TreeHints, OutOfRangeHintIsToleratedAndReclamped) {
  // A view over a previous, larger shared state may have published a hint
  // beyond the current tree count (tree-count shrink). The allocator must
  // treat it as a biased search start, not an index, and the next
  // reservation must store the hint back in-range.
  Config config;
  config.mode = Config::ReservationMode::kPerType;
  config.areas_per_tree = 8;
  SharedState state(2 * config.areas_per_tree * kFramesPerHuge, config);
  const uint64_t n = state.num_trees();
  for (unsigned s = 0; s < config.NumSlots(); ++s) {
    state.tree_hints()[s].store(n * 1000 + s);  // far out of range
  }
  LLFree llfree(&state);
  const Result<FrameId> frame = llfree.Get(0, 0, AllocType::kMovable);
  ASSERT_TRUE(frame.ok());
  EXPECT_LT(*frame, state.frames());
  // The slot that just reserved a tree re-clamped its hint.
  bool any_reclamped = false;
  for (unsigned s = 0; s < config.NumSlots(); ++s) {
    any_reclamped |= state.tree_hints()[s].load() < n;
  }
  EXPECT_TRUE(any_reclamped);
  EXPECT_TRUE(llfree.Validate());
  EXPECT_FALSE(llfree.Put(*frame, 0).has_value());
}

TEST(AtomicUpdate, RetriesAndAborts) {
  std::atomic<uint16_t> atom{5};
  // Successful update returns the previous value.
  const auto prev = AtomicUpdate(atom, [](uint16_t v) {
    return std::optional<uint16_t>(static_cast<uint16_t>(v + 1));
  });
  ASSERT_TRUE(prev.has_value());
  EXPECT_EQ(*prev, 5u);
  EXPECT_EQ(atom.load(), 6u);
  // Abort leaves the value untouched.
  const auto aborted = AtomicUpdate(
      atom, [](uint16_t) { return std::optional<uint16_t>(); });
  EXPECT_FALSE(aborted.has_value());
  EXPECT_EQ(atom.load(), 6u);
}

}  // namespace
}  // namespace hyperalloc::llfree
