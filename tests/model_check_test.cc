// Model-check scenarios for the lock-free core (src/check harness).
//
// This binary links ha_llfree_mc: the LLFree sources recompiled with
// hyperalloc::Atomic = check::Atomic, so every shared-memory access is a
// schedule point and the engine can explore thread interleavings
// systematically. The four core scenarios correspond to the races the
// HyperAlloc design must survive (paper §3.2/§4.2): concurrent get/put
// on one tree, put vs the hypervisor's reclaim scan, reservation steal
// vs drain, and balloon deflate racing guest allocation.
//
// Set HYPERALLOC_MC_ITERS to cap the per-scenario execution counts (used
// by scripts/check.sh for the sanitizer runs); the coverage test skips
// itself when capped below its target.

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/types.h"
#include "src/check/invariants.h"
#include "src/check/scheduler.h"
#include "src/check/shim.h"
#include "src/core/reclaim_states.h"
#include "src/fault/fault.h"
#include "src/hv/host_memory.h"
#include "src/llfree/frame_cache.h"
#include "src/llfree/llfree.h"
#include "src/trace/span_ring.h"

namespace hyperalloc::check {
namespace {

using core::ReclaimState;
using llfree::Config;
using llfree::LLFree;
using llfree::SharedState;

uint64_t ScaledIters(uint64_t def) {
  if (const char* env = std::getenv("HYPERALLOC_MC_ITERS")) {
    const uint64_t cap = std::strtoull(env, nullptr, 10);
    if (cap > 0 && cap < def) {
      return cap;
    }
  }
  return def;
}

// Shared context of one execution: the allocator state, a guest and a
// monitor view, and the oracles. Built fresh per explored schedule.
struct Ctx {
  SharedState state;
  LLFree guest;
  LLFree monitor;
  OwnershipOracle owner;
  core::ReclaimStateArray states;
  PinModel pins;
  // Scenario-local counters (model threads are sequentialized, so plain
  // ints are safe).
  int reclaimed = 0;
  int put_ok = 0;

  Ctx(uint64_t frames, const Config& cfg)
      : state(frames, cfg),
        guest(&state),
        monitor(&state),
        owner(state),
        states(frames / kFramesPerHuge),
        pins(frames / kFramesPerHuge) {}
};

void GetAndHold(const std::shared_ptr<Ctx>& c, unsigned core,
                unsigned order, AllocType type,
                std::vector<std::pair<FrameId, unsigned>>* held) {
  const Result<FrameId> r = c->guest.Get(core, order, type);
  if (r.ok()) {
    c->owner.Acquire(*r, order);
    held->emplace_back(*r, order);
  }
}

void PutAll(const std::shared_ptr<Ctx>& c,
            std::vector<std::pair<FrameId, unsigned>>* held) {
  for (const auto& [frame, order] : *held) {
    c->owner.Release(frame, order);
    Require(!c->guest.Put(frame, order).has_value(),
            "put of an owned frame failed");
  }
  held->clear();
}

// --------------------------------------------------------------------
// Scenario 1: two guest threads get/put on a single tree, contending on
// the same reservation slot, the tree counter, and the bit field.
// --------------------------------------------------------------------
Scenario GetPutOneTree() {
  return [](Execution& exec) {
    Config cfg;
    cfg.mode = Config::ReservationMode::kPerCore;
    cfg.cores = 1;
    cfg.areas_per_tree = 4;
    auto c = std::make_shared<Ctx>(2048, cfg);
    for (int t = 0; t < 2; ++t) {
      exec.Spawn([c, t] {
        std::vector<std::pair<FrameId, unsigned>> held;
        GetAndHold(c, 0, 0, AllocType::kMovable, &held);
        GetAndHold(c, 0, t == 0 ? 1u : 2u, AllocType::kMovable, &held);
        PutAll(c, &held);
      });
    }
    exec.OnStep([c] {
      CheckStepInvariants(c->state);
      c->owner();
    });
    exec.OnEnd([c] {
      CheckQuiescent(c->guest);
      Require(c->guest.FreeFrames() == 2048,
              "frames leaked after all puts");
    });
  };
}

// --------------------------------------------------------------------
// Scenario 1b: the batched hot path (DESIGN.md §4.10) — two threads each
// claim an order-0 train via GetBatch and return it via PutBatch,
// racing on the tree counter, the reservation slots, and the
// word-at-a-time bitfield CAS. Conservation must hold at quiescence.
// --------------------------------------------------------------------
Scenario BatchGetPutOneTree() {
  return [](Execution& exec) {
    Config cfg;
    cfg.mode = Config::ReservationMode::kPerCore;
    cfg.cores = 2;
    cfg.areas_per_tree = 4;
    auto c = std::make_shared<Ctx>(2048, cfg);
    for (unsigned t = 0; t < 2; ++t) {
      exec.Spawn([c, t] {
        std::vector<FrameId> frames;
        const unsigned got =
            c->guest.GetBatch(t, 0, 6, AllocType::kMovable, &frames);
        for (const FrameId frame : frames) {
          c->owner.Acquire(frame, 0);
        }
        for (const FrameId frame : frames) {
          c->owner.Release(frame, 0);
        }
        Require(c->guest.PutBatch(frames, 0) == got,
                "batched put freed fewer frames than the batch claimed");
      });
    }
    exec.OnStep([c] {
      CheckStepInvariants(c->state);
      c->owner();
    });
    exec.OnEnd([c] {
      CheckQuiescent(c->guest);
      Require(c->guest.FreeFrames() == 2048,
              "frames leaked after batched round trips");
    });
  };
}

// --------------------------------------------------------------------
// Scenario 2: a guest put races the monitor's hard-reclaim scan. The
// scan may only take fully free huge frames, and every R transition it
// induces must be a legal edge of the Fig. 2 state machine.
// --------------------------------------------------------------------
Scenario PutVsReclaimScan() {
  return [](Execution& exec) {
    Config cfg;
    cfg.mode = Config::ReservationMode::kPerType;
    cfg.areas_per_tree = 2;
    auto c = std::make_shared<Ctx>(1024, cfg);
    // Prefill: one base frame pins area 0 as partially used.
    const Result<FrameId> pre = c->guest.Get(0, 0, AllocType::kMovable);
    Require(pre.ok(), "prefill get failed");
    c->owner.Acquire(*pre, 0);
    auto oracle = std::make_shared<ReclaimTransitionOracle>(&c->states);

    exec.Spawn([c, frame = *pre] {
      c->owner.Release(frame, 0);
      Require(!c->guest.Put(frame, 0).has_value(), "put failed");
      std::vector<std::pair<FrameId, unsigned>> held;
      GetAndHold(c, 0, 0, AllocType::kMovable, &held);
      PutAll(c, &held);
    });
    exec.Spawn([c] {
      for (HugeId h = 0; h < c->state.num_areas(); ++h) {
        if (c->monitor.TryHardReclaim(h, /*allow_reserved=*/true)) {
          c->states.Set(h, ReclaimState::kHard);
          ++c->reclaimed;
        }
      }
    });
    exec.OnStep([c, oracle] {
      CheckStepInvariants(c->state);
      c->owner();
      (*oracle)();
    });
    exec.OnEnd([c] {
      CheckQuiescent(c->guest);
      Require(c->guest.FreeFrames() ==
                  1024 - static_cast<uint64_t>(c->reclaimed) *
                             kFramesPerHuge,
              "reclaimed-frame accounting drifted");
    });
  };
}

// --------------------------------------------------------------------
// Scenario 3: the guest's reservation is attacked from two sides at
// once — a drain (the cache-purge reaction, §3.3) and the monitor
// stealing parked frames via hard reclaim — while the owner allocates.
// --------------------------------------------------------------------
Scenario StealVsDrain() {
  return [](Execution& exec) {
    Config cfg;
    cfg.mode = Config::ReservationMode::kPerType;
    cfg.areas_per_tree = 2;
    auto c = std::make_shared<Ctx>(2048, cfg);
    // Establish an active reservation with a large local counter.
    const Result<FrameId> pre = c->guest.Get(0, 0, AllocType::kMovable);
    Require(pre.ok(), "prefill get failed");
    c->owner.Acquire(*pre, 0);

    exec.Spawn([c, frame = *pre] {
      std::vector<std::pair<FrameId, unsigned>> held;
      GetAndHold(c, 0, 0, AllocType::kMovable, &held);
      c->owner.Release(frame, 0);
      Require(!c->guest.Put(frame, 0).has_value(), "put failed");
      PutAll(c, &held);
    });
    exec.Spawn([c] { c->guest.DrainReservations(); });
    exec.Spawn([c] {
      for (HugeId h = c->state.num_areas(); h-- > 0;) {
        if (c->monitor.TryHardReclaim(h, /*allow_reserved=*/true)) {
          ++c->reclaimed;
        }
      }
    });
    exec.OnStep([c] {
      CheckStepInvariants(c->state);
      c->owner();
    });
    exec.OnEnd([c] {
      CheckQuiescent(c->guest);
      Require(c->guest.FreeFrames() ==
                  2048 - static_cast<uint64_t>(c->reclaimed) *
                             kFramesPerHuge,
              "steal/drain accounting drifted");
    });
  };
}

// --------------------------------------------------------------------
// Scenario 4: balloon deflate (monitor returns hard-reclaimed frames,
// H -> S) racing guest allocation of those same frames. The install
// handshake must pin the backing before the guest's Get returns, and
// pin counts must never underflow.
// --------------------------------------------------------------------
Scenario DeflateVsGuestAlloc() {
  return [](Execution& exec) {
    Config cfg;
    cfg.mode = Config::ReservationMode::kPerType;
    cfg.areas_per_tree = 2;
    auto c = std::make_shared<Ctx>(2048, cfg);
    // Setup (not model-checked): everything installed, then hard-reclaim
    // areas 1..3 — the inflated balloon.
    for (HugeId h = 0; h < c->state.num_areas(); ++h) {
      c->pins.Pin(h);
    }
    for (HugeId h = 1; h < c->state.num_areas(); ++h) {
      Require(c->monitor.TryHardReclaim(h), "setup hard reclaim failed");
      c->states.Set(h, ReclaimState::kHard);
      c->pins.Unpin(h);
    }
    auto oracle = std::make_shared<ReclaimTransitionOracle>(&c->states);
    // Raw capture: the handler is stored inside the Ctx itself, so a
    // shared_ptr capture would be a reference cycle (and a leak).
    c->guest.SetInstallHandler([ctx = c.get()](HugeId huge) {
      // Host-side install: back the frame, flip R, clear the hint.
      ctx->pins.Pin(huge);
      ctx->states.Set(huge, ReclaimState::kInstalled);
      Require(ctx->monitor.ClearEvicted(huge),
              "install: evicted hint already clear");
    });

    exec.Spawn([c] {  // Monitor: deflate two huge frames.
      for (HugeId h = 1; h <= 2; ++h) {
        Require(c->monitor.MarkReturned(h), "deflate return failed");
        c->states.Set(h, ReclaimState::kSoft);
      }
    });
    exec.Spawn([c] {  // Guest: grab huge frames as they appear.
      std::vector<HugeId> taken;
      for (int attempt = 0; attempt < 2; ++attempt) {
        const Result<FrameId> r =
            c->guest.Get(0, kHugeOrder, AllocType::kHuge);
        if (!r.ok()) {
          continue;
        }
        const HugeId huge = FrameToHuge(*r);
        c->owner.AcquireHuge(huge);
        // DMA safety: memory handed to the guest must be host-backed.
        Require(c->pins.IsPinned(huge),
                "guest allocated an unbacked (unpinned) huge frame");
        taken.push_back(huge);
      }
      for (const HugeId huge : taken) {
        c->owner.ReleaseHuge(huge);
        Require(!c->guest.Put(HugeToFrame(huge), kHugeOrder).has_value(),
                "huge put failed");
      }
    });
    exec.OnStep([c, oracle] {
      CheckStepInvariants(c->state);
      c->owner();
      (*oracle)();
    });
    exec.OnEnd([c] { CheckQuiescent(c->guest); });
  };
}

// --------------------------------------------------------------------
// Scenario 5: the sharded host frame pool under concurrent admission.
// Two VMs (threads, each pinned to its shard) reserve and release
// against a pool that only fits both if the cross-shard rebalancer
// works; the credit-chain under-promise invariant is checked at every
// schedule point and exact conservation plus the CAS-max peak at the
// end. HostMemory is header-only, so this binary's check::Atomic shim
// instruments it just like the LLFree core.
// --------------------------------------------------------------------
Scenario HostPoolReserveRelease() {
  return [](Execution& exec) {
    constexpr uint64_t kBatch = hv::HostMemory::kCreditBatch;
    struct PoolCtx {
      hv::HostMemory pool{2 * kBatch, /*shards=*/2};
      uint64_t max_used = 0;  // model threads are sequentialized
    };
    auto c = std::make_shared<PoolCtx>();
    for (unsigned t = 0; t < 2; ++t) {
      exec.Spawn([c, t] {
        // Half the pool each: the second thread's refill finds the
        // global reserve dry and must raid the first shard's credit.
        if (c->pool.TryReserve(kBatch, t)) {
          c->max_used = std::max(c->max_used, c->pool.used_frames());
          c->pool.Release(kBatch, t);
        }
        // Sub-batch round: exercises the banked-credit fast path and the
        // drain-back-to-global on release.
        if (c->pool.TryReserve(kBatch / 2 + 1, t)) {
          c->max_used = std::max(c->max_used, c->pool.used_frames());
          c->pool.Release(kBatch / 2 + 1, t);
        }
      });
    }
    exec.OnStep([c] { CheckHostMemoryStep(c->pool); });
    exec.OnEnd([c] {
      CheckHostMemoryQuiescent(c->pool);
      Require(c->pool.used_frames() == 0,
              "everything released but used != 0");
      Require(c->pool.peak_frames() >= c->max_used,
              "peak below a usage level a thread observed (lost CAS-max "
              "update)");
    });
  };
}

// --------------------------------------------------------------------
// Scenario 6: the span ring (src/trace/span_ring.h) under preemption —
// a writer emitting spans into a deliberately tiny ring while a drainer
// streams them out mid-flight. RingCore is instantiated with
// check::Atomic and check::Shared (a distinct type from the production
// RingCore<SpanRecord, std::atomic>, so no ODR hazard), making every
// head/tail access a schedule point and every slot access
// happens-before-checked. Oracle: every value the writer successfully
// pushed is drained exactly once, in order, and
// accepted + dropped == attempted — and no slot access races.
// --------------------------------------------------------------------
struct SpanRingCtx {
  trace::RingCore<uint64_t, Atomic, Shared> ring{2};
  std::vector<uint64_t> accepted;  // model threads are sequentialized
  std::vector<uint64_t> drained;
};

Scenario SpanRingWriterVsDrainer() {
  return [](Execution& exec) {
    auto c = std::make_shared<SpanRingCtx>();
    exec.Spawn([c] {  // writer: 3 spans against capacity 2 (forces the
                      // full-ring drop-newest path in some schedules)
      for (uint64_t value = 1; value <= 3; ++value) {
        if (c->ring.Push(value)) {
          c->accepted.push_back(value);
        }
      }
    });
    exec.Spawn([c] { c->ring.Drain(&c->drained); });
    exec.OnStep([c] {
      Require(c->ring.size() <= c->ring.capacity(),
              "ring published more events than its capacity");
    });
    exec.OnEnd([c] {
      c->ring.Drain(&c->drained);  // final sweep at quiescence
      Require(c->accepted.size() + c->ring.dropped() == 3,
              "accepted + dropped != attempted pushes");
      Require(c->drained == c->accepted,
              "lost span: drained events differ from the accepted "
              "sequence");
    });
  };
}

// --------------------------------------------------------------------
// Mutant: a drain that re-reads `head` AFTER the copy loop and stores
// *that* as the new tail — spans published between the copy and the
// re-read are marked consumed without ever being copied out. This is
// the lost-event bug the release/acquire protocol exists to prevent;
// the harness must find the interleaving in both modes. RingCore's
// members are protected precisely so this subclass can exist.
// --------------------------------------------------------------------
struct BrokenDrainRing : trace::RingCore<uint64_t, Atomic, Shared> {
  using RingCore::RingCore;

  void DrainBroken(std::vector<uint64_t>* out) {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    for (; tail != head; ++tail) {
      out->push_back(ring_[tail % ring_.size()].read());
    }
    // BUG (deliberate): acknowledging the *current* head instead of the
    // position the copy loop stopped at skips concurrent pushes.
    tail_.store(head_.load(std::memory_order_acquire),
                std::memory_order_release);
  }
};

Scenario SpanRingLostEventMutant() {
  return [](Execution& exec) {
    struct MutantCtx {
      BrokenDrainRing ring{4};
      std::vector<uint64_t> accepted;
      std::vector<uint64_t> drained;
    };
    auto c = std::make_shared<MutantCtx>();
    exec.Spawn([c] {
      for (uint64_t value = 1; value <= 2; ++value) {
        if (c->ring.Push(value)) {
          c->accepted.push_back(value);
        }
      }
    });
    exec.Spawn([c] { c->ring.DrainBroken(&c->drained); });
    exec.OnEnd([c] {
      c->ring.Drain(&c->drained);  // correct final sweep at quiescence
      Require(c->drained == c->accepted,
              "lost span: drained events differ from the accepted "
              "sequence");
    });
  };
}

// --------------------------------------------------------------------
// Scenario 7 (fault schedule): the monitor's hard-reclaim scan runs
// under an injected EPT-unmap failure schedule (DESIGN.md §4.9). Every
// failed unmap is rolled back H -> S exactly as
// HyperAllocMonitor::RollbackFrame does, while a guest thread allocates
// concurrently. Oracle: whatever subset of unmaps the schedule fails,
// no frame is lost or double-freed — free-frame accounting balances at
// quiescence and every R transition stays legal.
// --------------------------------------------------------------------
Scenario FaultedReclaimRollsBack() {
  return [](Execution& exec) {
    Config cfg;
    cfg.mode = Config::ReservationMode::kPerType;
    cfg.areas_per_tree = 2;
    auto c = std::make_shared<Ctx>(1024, cfg);
    fault::Plan plan;
    plan.seed = 42;
    plan.spec(fault::Site::kEptUnmap).steps = {0};  // first unmap fails
    auto injector = std::make_shared<fault::Injector>(plan);
    // Prefill: one base frame keeps area 0 partially used, so the guest
    // thread stays out of the reclaim scan's way.
    const Result<FrameId> pre = c->guest.Get(0, 0, AllocType::kMovable);
    Require(pre.ok(), "prefill get failed");
    c->owner.Acquire(*pre, 0);
    auto oracle = std::make_shared<ReclaimTransitionOracle>(&c->states);

    exec.Spawn([c, frame = *pre] {
      c->owner.Release(frame, 0);
      Require(!c->guest.Put(frame, 0).has_value(), "put failed");
      std::vector<std::pair<FrameId, unsigned>> held;
      GetAndHold(c, 0, 0, AllocType::kMovable, &held);
      PutAll(c, &held);
    });
    exec.Spawn([c, injector] {  // monitor: reclaim scan + fault recovery
      for (HugeId h = 0; h < c->state.num_areas(); ++h) {
        if (!c->monitor.TryHardReclaim(h, /*allow_reserved=*/true)) {
          continue;
        }
        c->states.Set(h, ReclaimState::kHard);
        ++c->reclaimed;
        if (injector->Poll(fault::Site::kEptUnmap).has_value()) {
          // The unmap failed: roll the frame back to soft-reclaimed
          // (HyperAllocMonitor::RollbackFrame's H -> S edge) and give
          // its accounting back.
          Require(c->monitor.MarkReturned(h), "rollback return failed");
          c->states.Set(h, ReclaimState::kSoft);
          --c->reclaimed;
        }
      }
    });
    exec.OnStep([c, oracle] {
      CheckStepInvariants(c->state);
      c->owner();
      (*oracle)();
    });
    exec.OnEnd([c] {
      CheckQuiescent(c->guest);
      Require(c->guest.FreeFrames() ==
                  1024 - static_cast<uint64_t>(c->reclaimed) *
                             kFramesPerHuge,
              "fault-rollback accounting drifted: frame lost or "
              "double-freed");
    });
  };
}

// --------------------------------------------------------------------
// Scenario 8 (fault schedule): balloon-deflate-vs-alloc (scenario 4)
// with a failing EPT map inside the install handshake. The correct
// handler retries the map until it succeeds, so the DMA-safety oracle
// (only pinned frames reach the guest) must hold across every injected
// failure and interleaving.
// --------------------------------------------------------------------
std::shared_ptr<Ctx> DeflateSetup(Execution& exec,
                                  std::shared_ptr<fault::Injector>* out) {
  Config cfg;
  cfg.mode = Config::ReservationMode::kPerType;
  cfg.areas_per_tree = 2;
  auto c = std::make_shared<Ctx>(2048, cfg);
  for (HugeId h = 0; h < c->state.num_areas(); ++h) {
    c->pins.Pin(h);
  }
  for (HugeId h = 1; h < c->state.num_areas(); ++h) {
    Require(c->monitor.TryHardReclaim(h), "setup hard reclaim failed");
    c->states.Set(h, ReclaimState::kHard);
    c->pins.Unpin(h);
  }
  fault::Plan plan;
  plan.seed = 7;
  plan.spec(fault::Site::kEptMap).steps = {0};  // first install map fails
  *out = std::make_shared<fault::Injector>(plan);

  exec.Spawn([c] {  // monitor: deflate two huge frames
    for (HugeId h = 1; h <= 2; ++h) {
      Require(c->monitor.MarkReturned(h), "deflate return failed");
      c->states.Set(h, ReclaimState::kSoft);
    }
  });
  exec.Spawn([c] {  // guest: grab huge frames as they appear
    for (int attempt = 0; attempt < 2; ++attempt) {
      const Result<FrameId> r = c->guest.Get(0, kHugeOrder, AllocType::kHuge);
      if (!r.ok()) {
        continue;
      }
      const HugeId huge = FrameToHuge(*r);
      c->owner.AcquireHuge(huge);
      Require(c->pins.IsPinned(huge),
              "guest allocated an unbacked (unpinned) huge frame");
      c->owner.ReleaseHuge(huge);
      Require(!c->guest.Put(HugeToFrame(huge), kHugeOrder).has_value(),
              "huge put failed");
    }
  });
  exec.OnStep([c] {
    CheckStepInvariants(c->state);
    c->owner();
  });
  exec.OnEnd([c] { CheckQuiescent(c->guest); });
  return c;
}

Scenario FaultedInstallRetries() {
  return [](Execution& exec) {
    std::shared_ptr<fault::Injector> injector;
    auto c = DeflateSetup(exec, &injector);
    c->guest.SetInstallHandler([ctx = c.get(), injector](HugeId huge) {
      // Bounded retry, as the real install path does: the map only
      // counts once it stops faulting, and the frame is pinned before
      // the allocation returns.
      unsigned attempts = 0;
      while (injector->Poll(fault::Site::kEptMap).has_value()) {
        Require(++attempts < 8, "install retries exhausted in model");
      }
      ctx->pins.Pin(huge);
      ctx->states.Set(huge, ReclaimState::kInstalled);
      Require(ctx->monitor.ClearEvicted(huge),
              "install: evicted hint already clear");
    });
  };
}

// --------------------------------------------------------------------
// Mutant: dropped rollback on a failed EPT map. The install handler
// sees the map fault but neither retries nor rolls the frame back — it
// clears the evicted hint and reports success, handing the guest a
// frame with no host backing. The DMA-safety oracle must catch this in
// both random and exhaustive modes.
// --------------------------------------------------------------------
Scenario DroppedRollbackOnFailedMapMutant() {
  return [](Execution& exec) {
    std::shared_ptr<fault::Injector> injector;
    auto c = DeflateSetup(exec, &injector);
    c->guest.SetInstallHandler([ctx = c.get(), injector](HugeId huge) {
      if (injector->Poll(fault::Site::kEptMap).has_value()) {
        // BUG (deliberate): the map failed, but the handler finishes the
        // install anyway instead of retrying or rolling back — the
        // frame is never pinned.
        ctx->states.Set(huge, ReclaimState::kInstalled);
        (void)ctx->monitor.ClearEvicted(huge);
        return;
      }
      ctx->pins.Pin(huge);
      ctx->states.Set(huge, ReclaimState::kInstalled);
      Require(ctx->monitor.ClearEvicted(huge),
              "install: evicted hint already clear");
    });
  };
}

// --------------------------------------------------------------------
// Mutant: ClaimBaseBatch's shortfall rollback dropped. The batched claim
// pre-charges the counter for `want` frames, then the word CAS discovers
// fewer free bits (a racing free has credited the counter but not yet
// cleared its bit) — the real code gives the difference back; this one
// does not, so the counter drifts below the bitfield's truth. The
// counter/bitfield mismatch must be caught in both modes.
// --------------------------------------------------------------------
struct LostBatchCtx {
  // One 8-frame area, frame 0 pre-allocated: counter + bitfield word.
  Atomic<uint64_t> free_count{7};
  Atomic<uint64_t> bits{1};
  uint64_t taken_mask = 0;  // model threads are sequentialized
  unsigned taken = 0;

  // The racing free: credit the counter FIRST, clear the bit second —
  // the same transient window LLFree's put leaves between the tree
  // counter and the area bitfield.
  void FreeFrameZero() {
    free_count.fetch_add(1, std::memory_order_acq_rel);
    bits.fetch_and(~1ull, std::memory_order_acq_rel);
  }

  // The buggy batched claim.
  unsigned ClaimUpTo(unsigned want_in) {
    uint64_t current = free_count.load(std::memory_order_acquire);
    unsigned want;
    do {
      want = static_cast<unsigned>(
          std::min<uint64_t>(current, uint64_t{want_in}));
      if (want == 0) {
        return 0;
      }
    } while (!free_count.compare_exchange_weak(
        current, current - want, std::memory_order_acq_rel,
        std::memory_order_acquire));
    uint64_t word = bits.load(std::memory_order_acquire);
    unsigned got;
    for (;;) {
      uint64_t claim = 0;
      uint64_t occupied = word | ~0xffull;  // 8-frame area
      got = 0;
      while (got < want) {
        const unsigned pos =
            static_cast<unsigned>(std::countr_one(occupied));
        if (pos >= 8) {
          break;
        }
        claim |= 1ull << pos;
        occupied |= 1ull << pos;
        ++got;
      }
      if (bits.compare_exchange_weak(word, word | claim,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        taken_mask |= claim;
        taken += got;
        break;
      }
    }
    // BUG (deliberate): when got < want, the (want - got) frames charged
    // off the counter were never claimed in the bitfield — the real
    // ClaimBaseBatch adds the shortfall back here.
    return got;
  }
};

Scenario LostBatchRollbackMutant() {
  return [](Execution& exec) {
    auto c = std::make_shared<LostBatchCtx>();
    exec.Spawn([c] { c->FreeFrameZero(); });
    exec.Spawn([c] { (void)c->ClaimUpTo(8); });
    exec.OnEnd([c] {
      // Return the claimed train correctly, then counter and bitfield
      // must agree again — unless a shortfall rollback was lost.
      if (c->taken > 0) {
        c->bits.fetch_and(~c->taken_mask, std::memory_order_acq_rel);
        c->free_count.fetch_add(c->taken, std::memory_order_acq_rel);
      }
      const uint64_t free_bits = 8 - static_cast<uint64_t>(std::popcount(
          c->bits.load(std::memory_order_acquire) & 0xffull));
      Require(c->free_count.load(std::memory_order_acquire) == free_bits,
              "lost batch rollback: counter drifted from the bitfield");
    });
  };
}

// --------------------------------------------------------------------
// Scenario 9 (§4.14): compaction re-forms a splintered huge frame while
// a guest thread allocates and frees concurrently. The compactor thread
// follows the real daemon's protocol (guest::Compactor::TryCompactBlock
// over an LLFree zone): ClaimFreeInArea isolates the area's free
// frames, every straggler is migrated to a destination claimed from the
// allocator, and one batched put returns isolation + evacuated sources
// (GuestVm::ReleaseIsolatedRange). Conservation must hold on every
// schedule, and at quiescence the splintered area is whole again unless
// the racing guest (legally) steered a migration destination into it.
// --------------------------------------------------------------------
struct CompactionSetup {
  std::shared_ptr<Ctx> c;
  std::shared_ptr<std::vector<FrameId>> stragglers;
  HugeId area = 0;
};

CompactionSetup SplinterOneArea() {
  Config cfg;
  cfg.mode = Config::ReservationMode::kPerCore;
  cfg.cores = 2;
  cfg.areas_per_tree = 4;
  CompactionSetup s;
  s.c = std::make_shared<Ctx>(2048, cfg);
  s.stragglers = std::make_shared<std::vector<FrameId>>();

  // Single-threaded setup: claim a run, keep 3 stragglers in one area,
  // free the rest — the two-pass churn shape that splinters areas.
  std::vector<FrameId> run;
  s.c->guest.GetBatch(0, 0, 64, AllocType::kMovable, &run);
  Require(!run.empty(), "setup batch claimed nothing");
  s.area = FrameToHuge(run[0]);
  for (const FrameId f : run) {
    if (FrameToHuge(f) == s.area && s.stragglers->size() < 3) {
      s.stragglers->push_back(f);
      s.c->owner.Acquire(f, 0);
    } else {
      Require(!s.c->guest.Put(f, 0).has_value(), "setup put failed");
    }
  }
  Require(s.stragglers->size() == 3, "setup failed to place stragglers");
  return s;
}

void SpawnConcurrentGuest(Execution& exec,
                          const std::shared_ptr<Ctx>& c) {
  exec.Spawn([c] {
    std::vector<std::pair<FrameId, unsigned>> held;
    GetAndHold(c, 0, 0, AllocType::kMovable, &held);
    GetAndHold(c, 0, 0, AllocType::kMovable, &held);
    PutAll(c, &held);
  });
}

Scenario CompactionReformsHugeFrame() {
  return [](Execution& exec) {
    CompactionSetup s = SplinterOneArea();
    auto c = s.c;
    auto dest_in_area = std::make_shared<bool>(false);

    exec.Spawn([c, s, dest_in_area] {
      std::vector<FrameId> isolated;
      (void)c->guest.ClaimFreeInArea(s.area, &isolated);
      for (const FrameId f : isolated) {
        c->owner.Acquire(f, 0);
      }
      for (const FrameId src : *s.stragglers) {
        const Result<FrameId> dest =
            c->guest.Get(1, 0, AllocType::kMovable);
        Require(dest.ok(), "no destination for migration");
        c->owner.Acquire(*dest, 0);
        if (FrameToHuge(*dest) == s.area) {
          // The guest freed a frame into the area after the isolation
          // claim and the allocator handed it out as a destination —
          // legal, but the area then cannot end whole.
          *dest_in_area = true;
        }
        // The data now lives in *dest; the source joins the isolation
        // (alloc_contig_range semantics).
        isolated.push_back(src);
      }
      for (const FrameId f : isolated) {
        c->owner.Release(f, 0);
      }
      Require(c->guest.PutBatch(isolated, 0) == isolated.size(),
              "isolation release freed fewer frames than isolated");
    });
    SpawnConcurrentGuest(exec, c);
    exec.OnStep([c] {
      CheckStepInvariants(c->state);
      c->owner();
    });
    exec.OnEnd([c, s, dest_in_area] {
      CheckQuiescent(c->guest);
      Require(c->guest.FreeFrames() == 2048 - 3,
              "frames lost across the compaction pass");
      Require(*dest_in_area ||
                  c->guest.ReadArea(s.area).free == kFramesPerHuge,
              "evacuated area did not re-form a whole huge frame");
    });
  };
}

// --------------------------------------------------------------------
// Mutant: the evacuated sources dropped from the isolation release. The
// real compactor transfers every migrated source frame to the isolation
// and returns isolation + sources in one batched put; this one returns
// only the claimed holes, so the migrated frames leak and the area can
// never re-form a whole huge frame.
// --------------------------------------------------------------------
Scenario LostMigrationMutant() {
  return [](Execution& exec) {
    CompactionSetup s = SplinterOneArea();
    auto c = s.c;

    exec.Spawn([c, s] {
      std::vector<FrameId> isolated;
      (void)c->guest.ClaimFreeInArea(s.area, &isolated);
      for (const FrameId f : isolated) {
        c->owner.Acquire(f, 0);
      }
      for (const FrameId src : *s.stragglers) {
        const Result<FrameId> dest =
            c->guest.Get(1, 0, AllocType::kMovable);
        Require(dest.ok(), "no destination for migration");
        c->owner.Acquire(*dest, 0);
        // BUG (deliberate): the source frame never joins the isolation —
        // the release below returns only the claimed holes.
        (void)src;
      }
      for (const FrameId f : isolated) {
        c->owner.Release(f, 0);
      }
      (void)c->guest.PutBatch(isolated, 0);
    });
    SpawnConcurrentGuest(exec, c);
    exec.OnStep([c] {
      CheckStepInvariants(c->state);
      c->owner();
    });
    exec.OnEnd([c] {
      Require(c->guest.FreeFrames() == 2048 - 3,
              "lost migration: evacuated source frames leaked");
    });
  };
}

RunResult ExploreRandom(const Scenario& scenario, uint64_t iterations,
                        uint64_t seed = 1) {
  Options opt;
  opt.mode = Options::Mode::kRandom;
  opt.iterations = iterations;
  opt.seed = seed;
  return Explore(opt, scenario);
}

void ExpectClean(const RunResult& r) {
  EXPECT_FALSE(r.failed) << r.message << " (failing seed "
                         << r.failing_seed << ")";
}

TEST(ModelCheckScenarios, GetPutOneTree) {
  ExpectClean(ExploreRandom(GetPutOneTree(), ScaledIters(1500)));
}

TEST(ModelCheckScenarios, BatchGetPutOneTree) {
  ExpectClean(ExploreRandom(BatchGetPutOneTree(), ScaledIters(1500)));
}

TEST(ModelCheckMutant, RandomWalkFindsLostBatchRollback) {
  const RunResult r = ExploreRandom(LostBatchRollbackMutant(), 2000);
  ASSERT_TRUE(r.failed)
      << "random exploration missed the lost-batch-rollback mutant";
  EXPECT_NE(r.message.find("lost batch rollback"), std::string::npos)
      << r.message;
}

TEST(ModelCheckMutant, ExhaustiveFindsLostBatchRollback) {
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r = Explore(opt, LostBatchRollbackMutant());
  ASSERT_TRUE(r.failed)
      << "exhaustive exploration missed the lost-batch-rollback mutant";
  EXPECT_NE(r.message.find("lost batch rollback"), std::string::npos)
      << r.message;
}

TEST(ModelCheckScenarios, PutVsReclaimScan) {
  ExpectClean(ExploreRandom(PutVsReclaimScan(), ScaledIters(1500)));
}

TEST(ModelCheckScenarios, StealVsDrain) {
  ExpectClean(ExploreRandom(StealVsDrain(), ScaledIters(1500)));
}

TEST(ModelCheckScenarios, DeflateVsGuestAlloc) {
  ExpectClean(ExploreRandom(DeflateVsGuestAlloc(), ScaledIters(1500)));
}

TEST(ModelCheckScenarios, HostPoolReserveRelease) {
  ExpectClean(ExploreRandom(HostPoolReserveRelease(), ScaledIters(1500)));
}

TEST(ModelCheckScenarios, FaultedReclaimRollsBack) {
  ExpectClean(ExploreRandom(FaultedReclaimRollsBack(), ScaledIters(1500)));
}

TEST(ModelCheckScenarios, FaultedInstallRetries) {
  ExpectClean(ExploreRandom(FaultedInstallRetries(), ScaledIters(1500)));
}

TEST(ModelCheckMutant, RandomWalkFindsDroppedRollback) {
  const RunResult r =
      ExploreRandom(DroppedRollbackOnFailedMapMutant(), 2000);
  ASSERT_TRUE(r.failed)
      << "random exploration missed the dropped-rollback mutant";
  EXPECT_NE(r.message.find("unbacked"), std::string::npos) << r.message;
}

TEST(ModelCheckMutant, ExhaustiveFindsDroppedRollback) {
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r = Explore(opt, DroppedRollbackOnFailedMapMutant());
  ASSERT_TRUE(r.failed)
      << "exhaustive exploration missed the dropped-rollback mutant";
  EXPECT_NE(r.message.find("unbacked"), std::string::npos) << r.message;
}

TEST(ModelCheckScenarios, SpanRingWriterVsDrainer) {
  ExpectClean(ExploreRandom(SpanRingWriterVsDrainer(), ScaledIters(1500)));
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r = Explore(opt, SpanRingWriterVsDrainer());
  ExpectClean(r);
  EXPECT_TRUE(r.complete) << "exhaustive exploration was time-boxed";
}

TEST(ModelCheckMutant, RandomWalkFindsLostSpan) {
  const RunResult r = ExploreRandom(SpanRingLostEventMutant(), 2000);
  ASSERT_TRUE(r.failed)
      << "random exploration missed the broken-drain mutant";
  EXPECT_NE(r.message.find("lost span"), std::string::npos) << r.message;
}

TEST(ModelCheckMutant, ExhaustiveFindsLostSpan) {
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r = Explore(opt, SpanRingLostEventMutant());
  ASSERT_TRUE(r.failed)
      << "exhaustive exploration missed the broken-drain mutant";
  EXPECT_NE(r.message.find("lost span"), std::string::npos) << r.message;
}

TEST(ModelCheckScenarios, CompactionReformsHugeFrame) {
  ExpectClean(ExploreRandom(CompactionReformsHugeFrame(),
                            ScaledIters(800)));
  // Exhaustive pass: time-boxed — the per-execution state is a real
  // 2048-frame allocator, so full tree exhaustion is out of reach; the
  // bounded DFS prefix must still be clean.
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  opt.max_executions = ScaledIters(4000);
  ExpectClean(Explore(opt, CompactionReformsHugeFrame()));
}

TEST(ModelCheckMutant, RandomWalkFindsLostMigration) {
  const RunResult r = ExploreRandom(LostMigrationMutant(), 500);
  ASSERT_TRUE(r.failed)
      << "random exploration missed the lost-migration mutant";
  EXPECT_NE(r.message.find("lost migration"), std::string::npos)
      << r.message;
}

TEST(ModelCheckMutant, ExhaustiveFindsLostMigration) {
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  opt.max_executions = 4000;
  const RunResult r = Explore(opt, LostMigrationMutant());
  ASSERT_TRUE(r.failed)
      << "exhaustive exploration missed the lost-migration mutant";
  EXPECT_NE(r.message.find("lost migration"), std::string::npos)
      << r.message;
}

// Regression for a real race the harness flagged: the multi-word Clear
// path (orders 7–8) used to check-then-store, letting two racing frees
// of the same run both succeed and double-credit the counters. Exactly
// one of two concurrent puts of the same order-7 run may succeed.
// (Also re-run under the forced-on happens-before checker by
// ModelCheckRegression below.)
Scenario DoubleFreeMultiword() {
  return [](Execution& exec) {
    Config cfg;
    cfg.mode = Config::ReservationMode::kPerType;
    cfg.areas_per_tree = 1;
    auto c = std::make_shared<Ctx>(512, cfg);
    const Result<FrameId> pre = c->guest.Get(0, 7, AllocType::kMovable);
    Require(pre.ok(), "prefill order-7 get failed");
    for (int t = 0; t < 2; ++t) {
      exec.Spawn([c, frame = *pre] {
        if (!c->guest.Put(frame, 7).has_value()) {
          ++c->put_ok;
        }
      });
    }
    exec.OnStep([c] { CheckStepInvariants(c->state); });
    exec.OnEnd([c] {
      Require(c->put_ok == 1, "double free: both concurrent puts of the "
                              "same order-7 run succeeded");
      CheckQuiescent(c->guest);
    });
  };
}

TEST(ModelCheckScenarios, ConcurrentDoubleFreeMultiword) {
  ExpectClean(ExploreRandom(DoubleFreeMultiword(), ScaledIters(1000)));
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r = Explore(opt, DoubleFreeMultiword());
  ExpectClean(r);
  EXPECT_TRUE(r.complete) << "exhaustive exploration was time-boxed";
}

// --------------------------------------------------------------------
// Mutant detection: a deliberately broken load/check/store decrement
// (the bug a relaxed CAS-free counter update would have). The harness
// must find the lost-update interleaving in both modes.
// --------------------------------------------------------------------
struct BrokenCounter {
  Atomic<int> tickets{1};
  int taken = 0;
};

Scenario BrokenDecrement() {
  return [](Execution& exec) {
    auto c = std::make_shared<BrokenCounter>();
    for (int t = 0; t < 2; ++t) {
      exec.Spawn([c] {
        const int v = c->tickets.load(std::memory_order_acquire);
        if (v > 0) {
          // BUG (deliberate): not a CAS — another thread can take the
          // same ticket between the load and the store.
          c->tickets.store(v - 1, std::memory_order_release);
          ++c->taken;
        }
      });
    }
    exec.OnEnd([c] {
      Require(c->taken <= 1, "lost update: the single ticket was taken " +
                                 std::to_string(c->taken) + " times");
    });
  };
}

TEST(ModelCheckMutant, RandomWalkFindsLostUpdate) {
  const RunResult r = ExploreRandom(BrokenDecrement(), 2000);
  ASSERT_TRUE(r.failed)
      << "random exploration missed the seeded lost-update mutant";
  EXPECT_NE(r.message.find("lost update"), std::string::npos) << r.message;
}

TEST(ModelCheckMutant, ExhaustiveFindsLostUpdate) {
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r = Explore(opt, BrokenDecrement());
  ASSERT_TRUE(r.failed)
      << "exhaustive exploration missed the seeded lost-update mutant";
  EXPECT_NE(r.message.find("lost update"), std::string::npos) << r.message;
}

// The fixed version of the same counter must survive *complete*
// exhaustive exploration — demonstrating the completeness flag.
TEST(ModelCheckMutant, FixedCounterSurvivesExhaustively) {
  Scenario fixed = [](Execution& exec) {
    auto c = std::make_shared<BrokenCounter>();
    for (int t = 0; t < 2; ++t) {
      exec.Spawn([c] {
        int v = c->tickets.load(std::memory_order_acquire);
        while (v > 0 &&
               !c->tickets.compare_exchange_weak(
                   v, v - 1, std::memory_order_acq_rel,
                   std::memory_order_acquire)) {
        }
        if (v > 0) {
          ++c->taken;
        }
      });
    }
    exec.OnEnd([c] {
      Require(c->taken == 1, "ticket taken " + std::to_string(c->taken) +
                                 " times (expected exactly once)");
    });
  };
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r = Explore(opt, fixed);
  ExpectClean(r);
  EXPECT_TRUE(r.complete);
  EXPECT_GE(r.executions, 6u);  // at least the distinct 2x2-op orders
}

// --------------------------------------------------------------------
// Mutant: the peak update HostMemory would have had without the CAS-max
// loop — check-then-store lets a delayed smaller writer overwrite a
// concurrent larger one, leaving the high-water mark below final usage.
// --------------------------------------------------------------------
struct NaivePeak {
  Atomic<uint64_t> used{0};
  Atomic<uint64_t> peak{0};
};

Scenario NaivePeakUpdate() {
  return [](Execution& exec) {
    auto c = std::make_shared<NaivePeak>();
    for (int t = 0; t < 2; ++t) {
      exec.Spawn([c] {
        const uint64_t now =
            c->used.fetch_add(256, std::memory_order_acq_rel) + 256;
        // BUG (deliberate): not a CAS-max loop — between this load and
        // the store, a larger concurrent `now` can land and be
        // overwritten by our smaller one.
        if (c->peak.load(std::memory_order_acquire) < now) {
          c->peak.store(now, std::memory_order_release);
        }
      });
    }
    exec.OnEnd([c] {
      Require(c->peak.load(std::memory_order_acquire) >=
                  c->used.load(std::memory_order_acquire),
              "lost peak update: high-water mark below final usage");
    });
  };
}

TEST(ModelCheckMutant, RandomWalkFindsLostPeakUpdate) {
  const RunResult r = ExploreRandom(NaivePeakUpdate(), 2000);
  ASSERT_TRUE(r.failed)
      << "random exploration missed the naive-peak mutant";
  EXPECT_NE(r.message.find("lost peak update"), std::string::npos)
      << r.message;
}

TEST(ModelCheckMutant, ExhaustiveFindsLostPeakUpdate) {
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r = Explore(opt, NaivePeakUpdate());
  ASSERT_TRUE(r.failed)
      << "exhaustive exploration missed the naive-peak mutant";
  EXPECT_NE(r.message.find("lost peak update"), std::string::npos)
      << r.message;
}

// --------------------------------------------------------------------
// Memory-model mutants (DESIGN.md §4.11): release→relaxed downgrades
// that a sequentially-consistent checker can never catch — every
// interleaving still computes the right *values* — but that break the
// happens-before protocol the surrounding plain data relies on. The
// vector-clock layer must flag them as data races in BOTH random and
// exhaustive mode. Setting HYPERALLOC_MC_INVERT_MUTANTS=1 flips the
// assertions (expects the mutants to go UNdetected), so a local or CI
// run with the knob set must fail — proof the detection is live, not
// vacuously green.
// --------------------------------------------------------------------

bool MmEnabled() { return Options{}.memory_model; }

bool MutantsInverted() {
  const char* env = std::getenv("HYPERALLOC_MC_INVERT_MUTANTS");
  return env != nullptr && env[0] == '1';
}

void ExpectRaceCaught(const RunResult& r, const char* what) {
  if (MutantsInverted()) {
    EXPECT_FALSE(r.failed) << "inverted mutant run: the " << what
                           << " WAS detected: " << r.message;
    return;
  }
  ASSERT_TRUE(r.failed) << "exploration missed the " << what;
  EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
}

// Models LLFree's reservation publish (ReserveSlot's acq_rel CAS on
// reservations_[slot], src/llfree/llfree.cc): the reserver prepares
// tree-local state, then publishes the packed reservation entry; other
// cores consume the slot with acquire and touch the tree state it
// names. The payload is Shared<> so the checker verifies that the CAS's
// release half is the edge ordering those accesses.
struct ReservationPublishModel {
  Atomic<uint64_t> slot{0};        // 0 = inactive, else tree index + 1
  Shared<uint32_t> tree_meta{0u};  // tree-local state guarded by `slot`
};

Scenario ReservationPublish(std::memory_order publish_order) {
  return [publish_order](Execution& exec) {
    auto c = std::make_shared<ReservationPublishModel>();
    exec.Spawn([c, publish_order] {  // reserver
      c->tree_meta.write() = 42;     // prepare the tree's local state
      uint64_t expected = 0;
      (void)c->slot.compare_exchange_strong(expected, 1, publish_order,
                                            std::memory_order_acquire);
    });
    exec.Spawn([c] {  // consumer on another core
      if (c->slot.load(std::memory_order_acquire) != 0) {
        Require(c->tree_meta.read() == 42,
                "consumed a reservation whose tree state was never "
                "published");
      }
    });
  };
}

TEST(ModelCheckMemoryModel, ReservationPublishReleaseIsRaceClean) {
  if (!MmEnabled()) {
    GTEST_SKIP() << "HYPERALLOC_MC_MM=0: happens-before layer disabled";
  }
  ExpectClean(
      ExploreRandom(ReservationPublish(std::memory_order_acq_rel), 2000));
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r =
      Explore(opt, ReservationPublish(std::memory_order_acq_rel));
  ExpectClean(r);
  EXPECT_TRUE(r.complete) << "exhaustive exploration was time-boxed";
}

TEST(ModelCheckMemoryModel, RandomWalkFindsRelaxedReservationPublish) {
  if (!MmEnabled()) {
    GTEST_SKIP() << "HYPERALLOC_MC_MM=0: happens-before layer disabled";
  }
  ExpectRaceCaught(
      ExploreRandom(ReservationPublish(std::memory_order_relaxed), 2000),
      "relaxed reservation-publish mutant");
}

TEST(ModelCheckMemoryModel, ExhaustiveFindsRelaxedReservationPublish) {
  if (!MmEnabled()) {
    GTEST_SKIP() << "HYPERALLOC_MC_MM=0: happens-before layer disabled";
  }
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  ExpectRaceCaught(
      Explore(opt, ReservationPublish(std::memory_order_relaxed)),
      "relaxed reservation-publish mutant");
}

// The span-ring drain path with its tail publication downgraded to
// relaxed. Values stay correct in every interleaving (the copy loop
// bounds itself by `head`), but the edge that hands drained slots back
// to the writer is gone: the writer's next wrap-around Push writes a
// slot the drainer's copy loop read without ordering.
struct RelaxedTailDrainRing : trace::RingCore<uint64_t, Atomic, Shared> {
  using RingCore::RingCore;

  void DrainRelaxedTail(std::vector<uint64_t>* out) {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    for (; tail != head; ++tail) {
      out->push_back(ring_[tail % ring_.size()].read());
    }
    // BUG (deliberate): relaxed instead of release.
    tail_.store(tail, std::memory_order_relaxed);
  }
};

Scenario SpanRingRelaxedTailMutant() {
  return [](Execution& exec) {
    struct MutantCtx {
      RelaxedTailDrainRing ring{2};
      std::vector<uint64_t> drained;
    };
    auto c = std::make_shared<MutantCtx>();
    exec.Spawn([c] {  // writer: fill, then wrap into drained slots
      for (uint64_t value = 1; value <= 3; ++value) {
        (void)c->ring.Push(value);
      }
    });
    exec.Spawn([c] { c->ring.DrainRelaxedTail(&c->drained); });
  };
}

TEST(ModelCheckMemoryModel, RandomWalkFindsRelaxedTailDrain) {
  if (!MmEnabled()) {
    GTEST_SKIP() << "HYPERALLOC_MC_MM=0: happens-before layer disabled";
  }
  ExpectRaceCaught(ExploreRandom(SpanRingRelaxedTailMutant(), 2000),
                   "relaxed-tail drain mutant");
}

TEST(ModelCheckMemoryModel, ExhaustiveFindsRelaxedTailDrain) {
  if (!MmEnabled()) {
    GTEST_SKIP() << "HYPERALLOC_MC_MM=0: happens-before layer disabled";
  }
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  ExpectRaceCaught(Explore(opt, SpanRingRelaxedTailMutant()),
                   "relaxed-tail drain mutant");
}

// --------------------------------------------------------------------
// FrameCache slot discipline: each slot's stack is Shared<> (exactly
// one thread per slot at a time, src/llfree/frame_cache.h). Distinct
// slots never share a stack — race-clean; two threads on the same slot
// with no ordering is the violation the seam exists to catch.
// --------------------------------------------------------------------
Scenario FrameCacheSlots(unsigned cache_slots) {
  return [cache_slots](Execution& exec) {
    Config cfg;
    cfg.mode = Config::ReservationMode::kPerCore;
    cfg.cores = 2;
    cfg.areas_per_tree = 1;
    auto c = std::make_shared<Ctx>(512, cfg);
    llfree::FrameCache::CacheConfig cache_cfg;
    cache_cfg.slots = cache_slots;
    cache_cfg.capacity = 4;
    cache_cfg.refill = 2;
    auto cache =
        std::make_shared<llfree::FrameCache>(&c->guest, cache_cfg);
    for (unsigned core = 0; core < 2; ++core) {
      exec.Spawn([c, cache, core] {
        const Result<FrameId> r = cache->Get(core, 0, AllocType::kMovable);
        if (r.ok()) {
          (void)cache->Put(core, *r, 0, AllocType::kMovable);
        }
      });
    }
    exec.OnEnd([c, cache] {
      cache->Drain();
      Require(cache->lost_frames() == 0, "frame cache lost frames");
      CheckQuiescent(c->guest);
    });
  };
}

TEST(ModelCheckMemoryModel, FrameCacheDistinctSlotsRaceClean) {
  ExpectClean(ExploreRandom(FrameCacheSlots(/*cache_slots=*/2),
                            ScaledIters(1000)));
}

TEST(ModelCheckMemoryModel, FrameCacheSharedSlotRaces) {
  if (!MmEnabled()) {
    GTEST_SKIP() << "HYPERALLOC_MC_MM=0: happens-before layer disabled";
  }
  // BUG (deliberate): one slot, two unsynchronized threads — both cores
  // map onto slot 0 and pop/push the same plain stack.
  ExpectRaceCaught(ExploreRandom(FrameCacheSlots(/*cache_slots=*/1), 2000),
                   "shared-slot frame-cache mutant");
}

// --------------------------------------------------------------------
// Precision: the layer must not cry wolf. A relaxed load whose location
// was last written before a release/acquire edge the reader DID consume
// is forced fresh (the stale entry is hidden by happens-before), so the
// classic message-passing pattern reads the payload correctly — while
// the same pattern with a relaxed flag can observe the stale payload.
// --------------------------------------------------------------------
struct MessagePassing {
  Atomic<uint32_t> payload{0};
  Atomic<uint32_t> flag{0};
};

TEST(ModelCheckMemoryModel, AcquireEdgeForcesFreshRelaxedRead) {
  if (!MmEnabled()) {
    GTEST_SKIP() << "HYPERALLOC_MC_MM=0: happens-before layer disabled";
  }
  Scenario scenario = [](Execution& exec) {
    auto c = std::make_shared<MessagePassing>();
    exec.Spawn([c] {
      c->payload.store(7, std::memory_order_relaxed);
      c->flag.store(1, std::memory_order_release);
    });
    exec.Spawn([c] {
      if (c->flag.load(std::memory_order_acquire) == 1) {
        Require(c->payload.load(std::memory_order_relaxed) == 7,
                "acquire-ordered relaxed load observed the stale "
                "payload");
      }
    });
  };
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r = Explore(opt, scenario);
  ExpectClean(r);
  EXPECT_TRUE(r.complete) << "exhaustive exploration was time-boxed";
}

TEST(ModelCheckMemoryModel, RelaxedFlagAdmitsStalePayload) {
  if (!MmEnabled()) {
    GTEST_SKIP() << "HYPERALLOC_MC_MM=0: happens-before layer disabled";
  }
  // With the flag downgraded to relaxed there is no edge: some
  // execution must observe flag == 1 with the payload still 0 — the
  // reordering a sequentially-consistent checker can never produce.
  auto stale_seen = std::make_shared<bool>(false);
  Scenario scenario = [stale_seen](Execution& exec) {
    auto c = std::make_shared<MessagePassing>();
    exec.Spawn([c] {
      c->payload.store(7, std::memory_order_relaxed);
      c->flag.store(1, std::memory_order_relaxed);
    });
    exec.Spawn([c, stale_seen] {
      if (c->flag.load(std::memory_order_relaxed) == 1 &&
          c->payload.load(std::memory_order_relaxed) == 0) {
        *stale_seen = true;
      }
    });
  };
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r = Explore(opt, scenario);
  ExpectClean(r);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(*stale_seen)
      << "no explored execution observed the stale payload behind the "
         "relaxed flag";
}

// Per-thread coherence: two loads of one location by one thread never
// go backwards in modification order, however relaxed.
TEST(ModelCheckMemoryModel, SameThreadReadsNeverGoBackwards) {
  if (!MmEnabled()) {
    GTEST_SKIP() << "HYPERALLOC_MC_MM=0: happens-before layer disabled";
  }
  Scenario scenario = [](Execution& exec) {
    auto c = std::make_shared<MessagePassing>();
    exec.Spawn([c] {
      for (uint32_t v = 1; v <= 3; ++v) {
        c->payload.store(v, std::memory_order_relaxed);
      }
    });
    exec.Spawn([c] {
      const uint32_t first = c->payload.load(std::memory_order_relaxed);
      const uint32_t second = c->payload.load(std::memory_order_relaxed);
      Require(second >= first,
              "coherence violation: same-thread reads of one location "
              "went backwards in modification order");
    });
  };
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r = Explore(opt, scenario);
  ExpectClean(r);
  EXPECT_TRUE(r.complete);
}

// --------------------------------------------------------------------
// Regression re-verification under the forced-on happens-before
// checker, independent of HYPERALLOC_MC_MM: the PR 2 multiword-Clear
// double-free fix and the PR 6 lost-batch-rollback fix stay correct
// with stale reads and race detection in play — and the committed
// lost-batch mutant is still caught.
// --------------------------------------------------------------------
TEST(ModelCheckRegression, MultiwordDoubleFreeFixHoldsUnderHb) {
  Options opt;
  opt.memory_model = true;
  opt.iterations = ScaledIters(1000);
  ExpectClean(Explore(opt, DoubleFreeMultiword()));
  opt.mode = Options::Mode::kExhaustive;
  const RunResult r = Explore(opt, DoubleFreeMultiword());
  ExpectClean(r);
  EXPECT_TRUE(r.complete) << "exhaustive exploration was time-boxed";
}

TEST(ModelCheckRegression, BatchClaimRollbackFixHoldsUnderHb) {
  Options opt;
  opt.memory_model = true;
  opt.iterations = ScaledIters(1500);
  ExpectClean(Explore(opt, BatchGetPutOneTree()));
}

TEST(ModelCheckRegression, LostBatchMutantStillCaughtUnderHb) {
  Options opt;
  opt.memory_model = true;
  opt.iterations = 2000;
  const RunResult random = Explore(opt, LostBatchRollbackMutant());
  ASSERT_TRUE(random.failed)
      << "random exploration under the happens-before checker missed "
         "the lost-batch-rollback mutant";
  EXPECT_NE(random.message.find("lost batch rollback"), std::string::npos)
      << random.message;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult exhaustive = Explore(opt, LostBatchRollbackMutant());
  ASSERT_TRUE(exhaustive.failed)
      << "exhaustive exploration under the happens-before checker "
         "missed the lost-batch-rollback mutant";
  EXPECT_NE(exhaustive.message.find("lost batch rollback"),
            std::string::npos)
      << exhaustive.message;
}

// --------------------------------------------------------------------
// Determinism: replaying a recorded failing seed reproduces the exact
// same schedule (trace) and the same failure, twice in a row.
// --------------------------------------------------------------------
TEST(ModelCheckDeterminism, FailingSeedReplaysIdentically) {
  Options opt;
  opt.iterations = 2000;
  const RunResult first = Explore(opt, BrokenDecrement());
  ASSERT_TRUE(first.failed);

  const RunResult r1 = ReplaySeed(opt, first.failing_seed, BrokenDecrement());
  const RunResult r2 = ReplaySeed(opt, first.failing_seed, BrokenDecrement());
  ASSERT_TRUE(r1.failed);
  ASSERT_TRUE(r2.failed);
  EXPECT_EQ(r1.trace, first.trace);
  EXPECT_EQ(r1.trace, r2.trace);
  EXPECT_EQ(r1.message, first.message);
  EXPECT_EQ(r2.message, first.message);
}

TEST(ModelCheckDeterminism, FailingTraceReplays) {
  Options opt;
  opt.mode = Options::Mode::kExhaustive;
  const RunResult found = Explore(opt, BrokenDecrement());
  ASSERT_TRUE(found.failed);

  const RunResult replay = ReplayTrace(opt, found.trace, BrokenDecrement());
  ASSERT_TRUE(replay.failed);
  EXPECT_EQ(replay.message, found.message);
  EXPECT_EQ(replay.trace, found.trace);
}

// A failing *race* seed replays identically too — the decision stream
// interleaves value decisions (stale-read picks, tagged with
// mm::kValueDecisionTag) with the thread decisions, and both come from
// the same seeded stream. The trace-cross-checking ReplaySeed overload
// confirms the replay really followed the recorded stream.
TEST(ModelCheckDeterminism, RaceSeedReplaysIdentically) {
  if (!MmEnabled()) {
    GTEST_SKIP() << "HYPERALLOC_MC_MM=0: happens-before layer disabled";
  }
  Options opt;
  opt.iterations = 2000;
  const RunResult first = Explore(opt, SpanRingRelaxedTailMutant());
  ASSERT_TRUE(first.failed);
  ASSERT_NE(first.message.find("data race"), std::string::npos)
      << first.message;

  const RunResult replay = ReplaySeed(opt, first.failing_seed,
                                      SpanRingRelaxedTailMutant(),
                                      first.trace);
  ASSERT_TRUE(replay.failed);
  EXPECT_FALSE(replay.stale_trace) << replay.message;
  EXPECT_EQ(replay.trace, first.trace);
  EXPECT_EQ(replay.message, first.message);

  const RunResult traced =
      ReplayTrace(opt, first.trace, SpanRingRelaxedTailMutant());
  ASSERT_TRUE(traced.failed);
  EXPECT_EQ(traced.message, first.message);
}

// A failing LLFree-state seed also replays identically: re-check the
// double-free regression scenario with a *broken* oracle expectation to
// manufacture a failure, then replay it.
TEST(ModelCheckDeterminism, ScenarioSeedReplaysIdentically) {
  // An oracle that trips as soon as any put succeeds gives us a failing
  // schedule on real allocator state.
  Scenario tripwire = [](Execution& exec) {
    Config cfg;
    cfg.mode = Config::ReservationMode::kPerType;
    cfg.areas_per_tree = 1;
    auto c = std::make_shared<Ctx>(512, cfg);
    const Result<FrameId> pre = c->guest.Get(0, 0, AllocType::kMovable);
    Require(pre.ok(), "prefill get failed");
    exec.Spawn([c, frame = *pre] {
      (void)c->guest.Put(frame, 0);
      ++c->put_ok;
    });
    exec.Spawn([c] { (void)c->guest.Get(0, 0, AllocType::kMovable); });
    exec.OnStep([c] { Require(c->put_ok == 0, "tripwire"); });
  };
  Options opt;
  opt.iterations = 100;
  const RunResult first = Explore(opt, tripwire);
  ASSERT_TRUE(first.failed);
  const RunResult replay = ReplaySeed(opt, first.failing_seed, tripwire);
  ASSERT_TRUE(replay.failed);
  EXPECT_EQ(replay.trace, first.trace);
  EXPECT_EQ(replay.message, first.message);
}

// --------------------------------------------------------------------
// Coverage: the four core scenarios together must explore >= 10k
// interleavings with the invariant oracle enabled.
// --------------------------------------------------------------------
TEST(ModelCheckCoverage, ExploresTenThousandInterleavings) {
  if (ScaledIters(2500) < 2500) {
    GTEST_SKIP() << "HYPERALLOC_MC_ITERS caps exploration below the "
                    "coverage target";
  }
  uint64_t total = 0;
  for (const Scenario& s :
       {GetPutOneTree(), PutVsReclaimScan(), StealVsDrain(),
        DeflateVsGuestAlloc()}) {
    const RunResult r = ExploreRandom(s, 2500, /*seed=*/77);
    ExpectClean(r);
    total += r.executions;
  }
  EXPECT_GE(total, 10000u);
}

}  // namespace
}  // namespace hyperalloc::check
