// Huge-frame (order-9) fast-path tests (DESIGN.md §4.14): the native
// GetBatch/PutBatch order-9 path must be observably equivalent to the
// same number of single Get/Put calls, and a huge round trip must be
// observably equivalent to 512 base-frame singles covering the same
// amount of memory.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/llfree/llfree.h"

namespace hyperalloc::llfree {
namespace {

constexpr uint64_t kFrames64MiB = 16384;  // 32 areas = 4 trees

class HugeFrameTest : public ::testing::Test {
 protected:
  void Init(uint64_t frames) {
    state_a_ = std::make_unique<SharedState>(frames, Config{});
    a_ = std::make_unique<LLFree>(state_a_.get());
    state_b_ = std::make_unique<SharedState>(frames, Config{});
    b_ = std::make_unique<LLFree>(state_b_.get());
  }

  // The observable state the §4.14 equivalence contract covers.
  static void ExpectEquivalent(const LLFree& a, const LLFree& b) {
    EXPECT_EQ(a.FreeFrames(), b.FreeFrames());
    EXPECT_EQ(a.FreeHugeFrames(), b.FreeHugeFrames());
    EXPECT_EQ(a.UsedHugeAreas(), b.UsedHugeAreas());
    EXPECT_DOUBLE_EQ(a.FragmentationScore(), b.FragmentationScore());
    EXPECT_TRUE(a.Validate());
    EXPECT_TRUE(b.Validate());
  }

  std::unique_ptr<SharedState> state_a_;
  std::unique_ptr<LLFree> a_;
  std::unique_ptr<SharedState> state_b_;
  std::unique_ptr<LLFree> b_;
};

TEST_F(HugeFrameTest, BatchGetMatchesSingles) {
  Init(kFrames64MiB);
  constexpr unsigned kCount = 8;

  std::vector<FrameId> batch;
  ASSERT_EQ(a_->GetBatch(0, kHugeOrder, kCount, AllocType::kMovable,
                         &batch),
            kCount);
  std::vector<FrameId> singles;
  for (unsigned i = 0; i < kCount; ++i) {
    const Result<FrameId> r = b_->Get(0, kHugeOrder, AllocType::kMovable);
    ASSERT_TRUE(r.ok());
    singles.push_back(*r);
  }

  // Every run is a whole, naturally aligned huge frame, and the batch
  // claimed exactly the frames the singles would have.
  for (const FrameId f : batch) {
    EXPECT_EQ(f % kFramesPerHuge, 0u);
    EXPECT_TRUE(a_->ReadArea(FrameToHuge(f)).allocated);
  }
  EXPECT_EQ(std::set<FrameId>(batch.begin(), batch.end()),
            std::set<FrameId>(singles.begin(), singles.end()));
  ExpectEquivalent(*a_, *b_);
}

TEST_F(HugeFrameTest, BatchPutMatchesSingles) {
  Init(kFrames64MiB);
  constexpr unsigned kCount = 8;
  std::vector<FrameId> batch;
  ASSERT_EQ(a_->GetBatch(0, kHugeOrder, kCount, AllocType::kMovable,
                         &batch),
            kCount);
  std::vector<FrameId> singles;
  b_->GetBatch(0, kHugeOrder, kCount, AllocType::kMovable, &singles);

  EXPECT_EQ(a_->PutBatch(batch, kHugeOrder), kCount);
  for (const FrameId f : singles) {
    EXPECT_FALSE(b_->Put(f, kHugeOrder).has_value());
  }

  ExpectEquivalent(*a_, *b_);
  EXPECT_EQ(a_->FreeFrames(), kFrames64MiB);
  EXPECT_EQ(a_->FreeHugeFrames(), kFrames64MiB / kFramesPerHuge);

  // A second batch on the drained allocator re-claims cleanly (no area
  // left half-accounted by the batched put).
  std::vector<FrameId> again;
  EXPECT_EQ(a_->GetBatch(0, kHugeOrder, kCount, AllocType::kMovable,
                         &again),
            kCount);
  EXPECT_EQ(a_->PutBatch(again, kHugeOrder), kCount);
  EXPECT_TRUE(a_->Validate());
}

TEST_F(HugeFrameTest, HugeRoundTripMatches512BaseSingles) {
  Init(kFrames64MiB);

  // A: one order-9 get. B: 512 order-0 singles (the slow path the fast
  // path replaces). Both consume identical amounts of free memory.
  const Result<FrameId> huge = a_->Get(0, kHugeOrder, AllocType::kMovable);
  ASSERT_TRUE(huge.ok());
  std::vector<FrameId> bases;
  for (unsigned i = 0; i < kFramesPerHuge; ++i) {
    const Result<FrameId> r = b_->Get(0, 0, AllocType::kMovable);
    ASSERT_TRUE(r.ok());
    bases.push_back(*r);
  }
  EXPECT_EQ(a_->FreeFrames(), b_->FreeFrames());
  EXPECT_EQ(a_->AllocatedFrames(), kFramesPerHuge);

  // Both shapes cost at least one huge frame of contiguity; the base
  // singles may splinter more, never less.
  EXPECT_GE(a_->FreeHugeFrames(), b_->FreeHugeFrames());

  // After the round trip the allocators are observably identical again:
  // pristine, fully defragmented, every huge frame re-formed.
  EXPECT_FALSE(a_->Put(*huge, kHugeOrder).has_value());
  EXPECT_EQ(b_->PutBatch(bases, 0), kFramesPerHuge);
  ExpectEquivalent(*a_, *b_);
  EXPECT_EQ(a_->FreeFrames(), kFrames64MiB);
  EXPECT_DOUBLE_EQ(a_->FragmentationScore(), 0.0);
}

TEST_F(HugeFrameTest, BatchTailEquivalenceWhenAllocatorRunsDry) {
  Init(kFrames64MiB);
  const uint64_t areas = kFrames64MiB / kFramesPerHuge;

  // Leave only 3 whole huge frames: splinter every other area with one
  // straggler base frame.
  std::vector<FrameId> stragglers;
  for (uint64_t area = 0; area < areas - 3; ++area) {
    std::vector<FrameId> claimed;
    ASSERT_EQ(a_->ClaimFreeInArea(area, &claimed), kFramesPerHuge);
    ASSERT_EQ(b_->ClaimFreeInArea(area, &claimed), kFramesPerHuge);
    const std::vector<FrameId> keep{
        static_cast<FrameId>(area * kFramesPerHuge)};
    std::vector<FrameId> give_back;
    for (FrameId f = area * kFramesPerHuge + 1;
         f < (area + 1) * kFramesPerHuge; ++f) {
      give_back.push_back(f);
    }
    EXPECT_EQ(a_->PutBatch(give_back, 0), give_back.size());
    EXPECT_EQ(b_->PutBatch(give_back, 0), give_back.size());
    stragglers.push_back(keep[0]);
  }

  // The batch claims exactly what the singles loop can: all 3 remaining
  // whole frames, then reports the shortfall instead of blocking.
  std::vector<FrameId> batch;
  EXPECT_EQ(a_->GetBatch(0, kHugeOrder, 8, AllocType::kMovable, &batch),
            3u);
  unsigned singles = 0;
  for (unsigned i = 0; i < 8; ++i) {
    if (b_->Get(0, kHugeOrder, AllocType::kMovable).ok()) {
      ++singles;
    }
  }
  EXPECT_EQ(singles, 3u);
  ExpectEquivalent(*a_, *b_);
  EXPECT_EQ(a_->FreeHugeFrames(), 0u);
}

}  // namespace
}  // namespace hyperalloc::llfree
