// Tests for the management console (the QEMU-HMP-style surface of §3.3).
#include <gtest/gtest.h>

#include "src/core/hyperalloc.h"
#include "src/guest/guest_vm.h"
#include "src/hv/console.h"

namespace hyperalloc::hv {
namespace {

TEST(ParseSize, Units) {
  EXPECT_EQ(ParseSize("2G"), 2 * kGiB);
  EXPECT_EQ(ParseSize("512M"), 512 * kMiB);
  EXPECT_EQ(ParseSize("16k"), 16 * kKiB);
  EXPECT_EQ(ParseSize("4096"), 4096u);
  EXPECT_EQ(ParseSize("  1g "), kGiB);
}

TEST(ParseSize, Invalid) {
  EXPECT_EQ(ParseSize(""), 0u);
  EXPECT_EQ(ParseSize("G"), 0u);
  EXPECT_EQ(ParseSize("12x"), 0u);
  EXPECT_EQ(ParseSize("1.5G"), 0u);
  EXPECT_EQ(ParseSize("-1G"), 0u);
}

class ConsoleTest : public ::testing::Test {
 protected:
  // 2 GiB VM: limit changes span multiple event-loop slices, so the
  // console's busy window is observable.
  ConsoleTest() : host_(FramesForBytes(4 * kGiB)) {
    guest::GuestConfig config;
    config.memory_bytes = 2 * kGiB;
    config.vcpus = 2;
    config.dma32_bytes = 0;
    config.allocator = guest::AllocatorKind::kLLFree;
    vm_ = std::make_unique<guest::GuestVm>(&sim_, &host_, config);
    monitor_ = std::make_unique<core::HyperAllocMonitor>(
        vm_.get(), core::HyperAllocConfig{});
    console_ = std::make_unique<Console>(vm_.get(), monitor_.get());
  }

  sim::Simulation sim_;
  hv::HostMemory host_;
  std::unique_ptr<guest::GuestVm> vm_;
  std::unique_ptr<core::HyperAllocMonitor> monitor_;
  std::unique_ptr<Console> console_;
};

TEST_F(ConsoleTest, BalloonResizes) {
  EXPECT_EQ(console_->Execute("balloon 128M"), "resizing to 128 MiB");
  EXPECT_TRUE(console_->busy());
  sim_.RunUntilIdle();
  EXPECT_FALSE(console_->busy());
  EXPECT_EQ(monitor_->limit_bytes(), 128 * kMiB);
  EXPECT_EQ(console_->Execute("info balloon"),
            "balloon: actual=128 max_mem=2048");
}

TEST_F(ConsoleTest, BalloonRejectsBadInput) {
  EXPECT_NE(console_->Execute("balloon").find("usage"), std::string::npos);
  EXPECT_NE(console_->Execute("balloon 4T").find("exceeds"),
            std::string::npos);
  EXPECT_NE(console_->Execute("balloon abc").find("usage"),
            std::string::npos);
}

TEST_F(ConsoleTest, BalloonRejectsConcurrentResize) {
  console_->Execute("balloon 128M");
  EXPECT_NE(console_->Execute("balloon 256M").find("in progress"),
            std::string::npos);
  sim_.RunUntilIdle();
  EXPECT_EQ(console_->Execute("balloon 256M"), "resizing to 256 MiB");
}

TEST_F(ConsoleTest, AutoToggle) {
  EXPECT_EQ(console_->Execute("auto on"),
            "automatic reclamation enabled");
  EXPECT_EQ(console_->Execute("auto off"),
            "automatic reclamation disabled");
  EXPECT_NE(console_->Execute("auto maybe").find("usage"),
            std::string::npos);
}

TEST_F(ConsoleTest, InfoStats) {
  const std::string reply = console_->Execute("info stats");
  EXPECT_NE(reply.find("rss="), std::string::npos);
  EXPECT_NE(reply.find("guest-free=2 GiB"), std::string::npos);
}

TEST_F(ConsoleTest, UnknownCommandsAndHelp) {
  EXPECT_NE(console_->Execute("frobnicate").find("unknown command"),
            std::string::npos);
  EXPECT_NE(console_->Execute("help").find("balloon <size>"),
            std::string::npos);
  EXPECT_NE(console_->Execute("info bogus").find("unknown info"),
            std::string::npos);
}

}  // namespace
}  // namespace hyperalloc::hv
