// Unit tests for the discrete-event engine, capacity timelines, and vCPUs.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/capacity_timeline.h"
#include "src/sim/simulation.h"
#include "src/sim/vcpu.h"

namespace hyperalloc::sim {
namespace {

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulation, FifoAmongEqualTimestamps) {
  Simulation sim;
  std::vector<int> order;
  sim.At(5, [&] { order.push_back(1); });
  sim.At(5, [&] { order.push_back(2); });
  sim.At(5, [&] { order.push_back(3); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, AfterSchedulesRelative) {
  Simulation sim;
  Time fired_at = 0;
  sim.At(100, [&] {
    // From within an event, After() is relative to the current time.
    sim.After(50, [&] { fired_at = sim.now(); });
  });
  sim.RunUntilIdle();
  EXPECT_EQ(fired_at, 150u);
}

TEST(Simulation, RunUntilAdvancesClockWithoutEvents) {
  Simulation sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.now(), 1000u);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  bool late_ran = false;
  sim.At(500, [&] { late_ran = true; });
  sim.RunUntil(400);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.now(), 400u);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntilIdle();
  EXPECT_TRUE(late_ran);
}

TEST(Simulation, HandlerAdvancingClockInline) {
  Simulation sim;
  Time second_event_time = 0;
  sim.At(10, [&] { sim.AdvanceClock(100); });  // inline blocking work
  sim.At(50, [&] { second_event_time = sim.now(); });
  sim.RunUntilIdle();
  // The 50 ns event was overtaken by inline work; it runs at the current
  // (later) clock rather than travelling back in time.
  EXPECT_EQ(second_event_time, 110u);
}

TEST(Simulation, NestedScheduling) {
  Simulation sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) {
      sim.After(10, tick);
    }
  };
  sim.After(10, tick);
  sim.RunUntilIdle();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 50u);
}

TEST(CapacityTimeline, FullCapacityByDefault) {
  CapacityTimeline t(2.0);
  EXPECT_DOUBLE_EQ(t.CapacityAt(0), 2.0);
  EXPECT_DOUBLE_EQ(t.Integrate(0, 100), 200.0);
  EXPECT_EQ(t.ConsumeFrom(0, 200.0), 100u);
}

TEST(CapacityTimeline, LoadReducesCapacity) {
  CapacityTimeline t(1.0);
  t.AddLoad(100, 200, 0.5);
  EXPECT_DOUBLE_EQ(t.CapacityAt(50), 1.0);
  EXPECT_DOUBLE_EQ(t.CapacityAt(150), 0.5);
  EXPECT_DOUBLE_EQ(t.CapacityAt(250), 1.0);
}

TEST(CapacityTimeline, IntegrateAcrossSegments) {
  CapacityTimeline t(1.0);
  t.AddLoad(100, 200, 0.5);
  // [0,100): 100, [100,200): 50, [200,300): 100.
  EXPECT_DOUBLE_EQ(t.Integrate(0, 300), 250.0);
  EXPECT_DOUBLE_EQ(t.Integrate(150, 250), 75.0);
}

TEST(CapacityTimeline, ConsumeSpansLoads) {
  CapacityTimeline t(1.0);
  t.AddLoad(100, 300, 0.5);
  // 100 units at full speed (t=100), then 100 more at half speed (200 ns).
  EXPECT_EQ(t.ConsumeFrom(0, 200.0), 300u);
}

TEST(CapacityTimeline, CapacityFloorPreventsStarvation) {
  CapacityTimeline t(1.0);
  t.AddLoad(0, 1000, 5.0);  // oversubscribed
  EXPECT_GT(t.CapacityAt(500), 0.0);
  EXPECT_DOUBLE_EQ(t.CapacityAt(500), 0.02);  // 2 % floor
}

TEST(CapacityTimeline, OverlappingLoadsStack) {
  CapacityTimeline t(1.0);
  t.AddLoad(0, 100, 0.25);
  t.AddLoad(50, 150, 0.25);
  EXPECT_DOUBLE_EQ(t.CapacityAt(25), 0.75);
  EXPECT_DOUBLE_EQ(t.CapacityAt(75), 0.5);
  EXPECT_DOUBLE_EQ(t.CapacityAt(125), 0.75);
  EXPECT_DOUBLE_EQ(t.CapacityAt(175), 1.0);
}

TEST(CapacityTimeline, ZeroLengthLoadIgnored) {
  CapacityTimeline t(1.0);
  t.AddLoad(100, 100, 0.5);
  EXPECT_DOUBLE_EQ(t.CapacityAt(100), 1.0);
}

TEST(CapacityTimeline, TrimBeforeKeepsSemantics) {
  CapacityTimeline t(1.0);
  t.AddLoad(0, 100, 0.5);
  t.AddLoad(200, 300, 0.5);
  t.TrimBefore(150);
  EXPECT_DOUBLE_EQ(t.CapacityAt(250), 0.5);
  EXPECT_DOUBLE_EQ(t.CapacityAt(350), 1.0);
}

TEST(Vcpu, StealSlowsCpu) {
  VcpuSet cpus(2);
  cpus.StealCpu(0, 0, 1000, 0.5);
  EXPECT_DOUBLE_EQ(cpus.cpu(0).CapacityAt(500), 0.5);
  EXPECT_DOUBLE_EQ(cpus.cpu(1).CapacityAt(500), 1.0);
}

TEST(Vcpu, IpiHitsAllCpus) {
  VcpuSet cpus(3);
  cpus.BroadcastIpi(100, 10);
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_LT(cpus.cpu(i).CapacityAt(105), 1.0);
    EXPECT_DOUBLE_EQ(cpus.cpu(i).CapacityAt(115), 1.0);
  }
  EXPECT_EQ(cpus.total_ipis(), 1u);
}

}  // namespace
}  // namespace hyperalloc::sim
