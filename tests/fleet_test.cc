// Fleet engine tests (DESIGN.md §4.12): cross-thread determinism at
// 512 VMs, policy behavior on canned pressure traces, admission-control
// rejection accounting, arrival-process determinism, and fault-plan
// composition through the fleet VM factory path.
//
// The VM factory here is built from src/ parts only (GuestVm +
// HyperAllocMonitor) — deliberately NOT bench/candidates.h, so the test
// covers the public orchestration API without a src-test -> bench
// dependency.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/core/hyperalloc.h"
#include "src/fault/fault.h"
#include "src/fleet/agents.h"
#include "src/fleet/arrival.h"
#include "src/fleet/fleet.h"
#include "src/fleet/policy.h"
#include "src/guest/guest_vm.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::fleet {
namespace {

// src-only VM factory: LLFree guest + HyperAlloc monitor, optional
// per-VM decorrelated fault plan (same seed derivation as the bench
// factory: plan.seed + index).
VmFactory TestVmFactory(uint64_t vm_bytes, fault::Plan plan = {},
                        core::HyperAllocConfig monitor = {}) {
  return [vm_bytes, plan, monitor](sim::Simulation* sim,
                                   hv::HostMemory* host, uint64_t index,
                                   const std::string& name) {
    guest::GuestConfig gc;
    gc.name = name;
    gc.memory_bytes = vm_bytes;
    gc.vcpus = 1;
    gc.allocator = guest::AllocatorKind::kLLFree;
    gc.dma32_bytes = 0;

    FleetVmParts parts;
    parts.vm = std::make_unique<guest::GuestVm>(sim, host, gc);
    parts.deflator =
        std::make_unique<core::HyperAllocMonitor>(parts.vm.get(), monitor);
    if (plan.enabled()) {
      fault::Plan mine = plan;
      mine.seed += index;
      parts.fault = std::make_unique<fault::Injector>(mine);
      parts.vm->SetFaultInjector(parts.fault.get());
    }
    return parts;
  };
}

// ---------------------------------------------------------------------
// Determinism: byte-identical per-VM outcomes across worker threads.
// ---------------------------------------------------------------------

FleetResult RunDeterminismFleet(unsigned threads, uint64_t vms,
                                bool huge = false) {
  const uint64_t vm_bytes = 64 * kMiB;
  PolicyConfig pc;

  FleetConfig config;
  config.vms = vms;
  config.threads = threads;
  config.vm_bytes = vm_bytes;
  // ~1.6x overcommit, same shape as the bench scenario.
  config.host_bytes = vms * 40 * kMiB;
  config.horizon = 2 * sim::kMin;
  config.epoch = 5 * sim::kSec;
  config.record_series = false;
  config.initial_limit_bytes = pc.min_limit_bytes + pc.headroom_bytes;
  config.spike = {sim::kMin, std::min<uint64_t>(vms / 8, 32), 16 * kMiB};

  ArrivalConfig ac;
  ac.kind = ArrivalKind::kBursty;
  ac.horizon = config.horizon;
  ac.peak_bytes = 48 * kMiB;
  auto arrivals = std::make_shared<std::unique_ptr<ArrivalProcess>>(
      MakeArrivalProcess(ac));

  FleetEngine engine(
      config, TestVmFactory(vm_bytes),
      [arrivals, huge](uint64_t index) {
        DemandAgentConfig dc;
        dc.trace = (*arrivals)->Generate(index);
        if (huge) {
          // §4.14 fast-path mode: all demand THP-backed, so population
          // and reclaim both move at 2 MiB granularity.
          dc.thp_fraction = 1.0;
        }
        return std::make_unique<DemandAgent>(dc);
      },
      MakeProportionalShare(pc));
  return engine.Run();
}

TEST(FleetDeterminism, ByteIdenticalAcross1And4And16Threads) {
  const uint64_t kVms = 512;
  const FleetResult one = RunDeterminismFleet(1, kVms);
  ASSERT_EQ(one.vm_digests.size(), kVms);
  EXPECT_GT(one.slo.resizes, 0u);

  for (const unsigned threads : {4u, 16u}) {
    const FleetResult many = RunDeterminismFleet(threads, kVms);
    EXPECT_EQ(one.fleet_digest, many.fleet_digest)
        << "fleet digest diverged at " << threads << " threads";
    ASSERT_EQ(one.vm_digests.size(), many.vm_digests.size());
    for (uint64_t i = 0; i < kVms; ++i) {
      ASSERT_EQ(one.vm_digests[i], many.vm_digests[i])
          << "VM " << i << " diverged at " << threads << " threads";
    }
    EXPECT_EQ(one.slo.resizes, many.slo.resizes);
    EXPECT_EQ(one.final_limit_bytes, many.final_limit_bytes);
  }
}

// Huge-frame fast-path mode (§4.14): the fleet-wide huge-reclaim split
// is aggregated at the engine barrier from per-VM deflator counters, so
// it must be byte-identical across worker-thread counts too — and the
// counters must actually move (the share gate would be vacuous on an
// idle fleet).
TEST(FleetDeterminism, HugeModeDigestsByteIdenticalAt512Vms) {
  const uint64_t kVms = 512;
  const FleetResult one = RunDeterminismFleet(1, kVms, /*huge=*/true);
  ASSERT_EQ(one.vm_digests.size(), kVms);
  EXPECT_GT(one.slo.resizes, 0u);
  ASSERT_GT(one.huge_reclaim.total(), 0u)
      << "huge mode reclaimed nothing: the share metric is vacuous";
  EXPECT_GE(one.huge_reclaim.Share(), 0.0);
  EXPECT_LE(one.huge_reclaim.Share(), 1.0);

  for (const unsigned threads : {4u, 16u}) {
    const FleetResult many = RunDeterminismFleet(threads, kVms, true);
    EXPECT_EQ(one.fleet_digest, many.fleet_digest)
        << "huge-mode fleet digest diverged at " << threads
        << " threads";
    for (uint64_t i = 0; i < kVms; ++i) {
      ASSERT_EQ(one.vm_digests[i], many.vm_digests[i])
          << "VM " << i << " diverged at " << threads << " threads";
    }
    EXPECT_EQ(one.huge_reclaim.untouched, many.huge_reclaim.untouched);
    EXPECT_EQ(one.huge_reclaim.via_2m, many.huge_reclaim.via_2m);
    EXPECT_EQ(one.huge_reclaim.via_4k, many.huge_reclaim.via_4k);
  }

  // The THP-backed fleet must not regress the huge-granular share below
  // the perf-gate floor the bench enforces (scripts/perf_gate.py).
  EXPECT_GE(one.huge_reclaim.Share(), 0.8);
}

// ---------------------------------------------------------------------
// Telemetry determinism: the barrier-sampled stream and the flight
// recorder are pure functions of virtual time, so their digests must be
// byte-identical across worker-thread counts even with a fault plan
// driving VMs into quarantine mid-run (DESIGN.md §4.13).
// ---------------------------------------------------------------------

#if HYPERALLOC_TRACE
FleetResult RunTelemetryFleet(unsigned threads) {
  const uint64_t kVms = 512;
  const uint64_t vm_bytes = 64 * kMiB;
  PolicyConfig pc;

  FleetConfig config;
  config.vms = kVms;
  config.threads = threads;
  config.vm_bytes = vm_bytes;
  config.host_bytes = kVms * 40 * kMiB;  // ~1.6x overcommit
  config.horizon = 2 * sim::kMin;
  config.epoch = 5 * sim::kSec;
  config.record_series = false;
  config.initial_limit_bytes = pc.min_limit_bytes + pc.headroom_bytes;
  config.spike = {sim::kMin, 32, 16 * kMiB};
  // Telemetry on (the default), span emission off: the test runs without
  // the global tracers and must not depend on their state.
  config.telemetry.emit_spans = false;

  // Permanent unmap faults push frames toward the per-VM quarantine
  // limit; under 1.6x overcommit the policy keeps deflating (every
  // deflate is an unmap site), so some VMs quarantine mid-run and the
  // flight recorder freezes a bundle. The limit is tightened from its
  // default 16 so quarantine trips within the short test horizon (the
  // per-VM fault budget here is ~1-2 permanent faults).
  fault::Plan plan;
  std::string error;
  EXPECT_TRUE(fault::Plan::Parse("ept_unmap:0.6!", &plan, &error)) << error;
  plan.seed = 42;
  core::HyperAllocConfig monitor;
  monitor.quarantine_frame_limit = 2;

  ArrivalConfig ac;
  ac.kind = ArrivalKind::kBursty;
  ac.horizon = config.horizon;
  ac.peak_bytes = 48 * kMiB;
  auto arrivals = std::make_shared<std::unique_ptr<ArrivalProcess>>(
      MakeArrivalProcess(ac));

  FleetEngine engine(
      config, TestVmFactory(vm_bytes, plan, monitor),
      [arrivals](uint64_t index) {
        DemandAgentConfig dc;
        dc.trace = (*arrivals)->Generate(index);
        return std::make_unique<DemandAgent>(dc);
      },
      MakeProportionalShare(pc));
  return engine.Run();
}
#endif  // HYPERALLOC_TRACE

TEST(FleetTelemetry, DigestsByteIdenticalAcross1And4And16Threads) {
#if !HYPERALLOC_TRACE
  GTEST_SKIP() << "telemetry compiled out (HYPERALLOC_TRACE=0)";
#else
  const FleetResult one = RunTelemetryFleet(1);
  ASSERT_TRUE(one.telemetry.enabled);
  EXPECT_GT(one.telemetry.epochs, 0u);
  EXPECT_NE(one.telemetry.telemetry_digest, 0u);
  // The fault plan must actually drive the flight recorder, otherwise
  // flight-digest equality below is vacuous.
  ASSERT_GT(one.telemetry.flight_dumps, 0u);
  EXPECT_NE(one.telemetry.flight_digest, 0u);

  for (const unsigned threads : {4u, 16u}) {
    const FleetResult many = RunTelemetryFleet(threads);
    EXPECT_EQ(one.fleet_digest, many.fleet_digest)
        << "fleet digest diverged at " << threads << " threads";
    EXPECT_EQ(one.telemetry.telemetry_digest, many.telemetry.telemetry_digest)
        << "telemetry stream diverged at " << threads << " threads";
    EXPECT_EQ(one.telemetry.flight_digest, many.telemetry.flight_digest)
        << "flight bundles diverged at " << threads << " threads";
    EXPECT_EQ(one.telemetry.epochs, many.telemetry.epochs);
    EXPECT_EQ(one.telemetry.alerts, many.telemetry.alerts);
    EXPECT_EQ(one.telemetry.flight_dumps, many.telemetry.flight_dumps);
    // Byte-level check on the serialized bundles, not just the digest.
    ASSERT_EQ(one.telemetry.dumps.size(), many.telemetry.dumps.size());
    for (size_t i = 0; i < one.telemetry.dumps.size(); ++i) {
      EXPECT_EQ(one.telemetry.dumps[i].json, many.telemetry.dumps[i].json);
      EXPECT_EQ(one.telemetry.dumps[i].perfetto,
                many.telemetry.dumps[i].perfetto);
    }
  }
#endif  // HYPERALLOC_TRACE
}

// ---------------------------------------------------------------------
// Policies on canned signals.
// ---------------------------------------------------------------------

std::vector<ResizeAction> Decide(ResizePolicy* policy,
                                 const PoolSignal& pool,
                                 const std::vector<VmSignal>& vms) {
  // Same pre-set as the engine: "keep the current limit".
  std::vector<ResizeAction> actions(vms.size());
  for (size_t i = 0; i < vms.size(); ++i) {
    actions[i] = {vms[i].limit_bytes, 0};
  }
  policy->Decide(pool, vms, &actions);
  return actions;
}

VmSignal Signal(uint64_t memory, uint64_t limit, uint64_t want) {
  VmSignal vm;
  vm.memory_bytes = memory;
  vm.limit_bytes = limit;
  vm.wss_bytes = want;
  vm.demand_bytes = want;
  return vm;
}

TEST(ProportionalSharePolicy, UncontendedGetsWantPlusHeadroom) {
  PolicyConfig pc;
  auto policy = MakeProportionalShare(pc);
  PoolSignal pool;
  pool.capacity_bytes = kGiB;
  const std::vector<VmSignal> vms(4, Signal(64 * kMiB, 20 * kMiB,
                                            40 * kMiB));
  const auto actions = Decide(policy.get(), pool, vms);
  for (const ResizeAction& action : actions) {
    EXPECT_EQ(action.target_bytes, 40 * kMiB + pc.headroom_bytes);
    EXPECT_EQ(action.deadline, pc.deadline);
  }
}

TEST(ProportionalSharePolicy, OvercommitScalesBackProportionally) {
  PolicyConfig pc;
  auto policy = MakeProportionalShare(pc);
  PoolSignal pool;
  pool.capacity_bytes = 128 * kMiB;
  // Everyone wants their full 64 MiB: 4x the usable pool.
  const std::vector<VmSignal> vms(4, Signal(64 * kMiB, 24 * kMiB,
                                            60 * kMiB));
  const auto actions = Decide(policy.get(), pool, vms);
  const uint64_t usable = static_cast<uint64_t>(
      static_cast<double>(pool.capacity_bytes) * (1.0 - pc.share_reserve));
  uint64_t sum = 0;
  for (const ResizeAction& action : actions) {
    EXPECT_GE(action.target_bytes, pc.min_limit_bytes);
    EXPECT_LT(action.target_bytes, 64 * kMiB);
    EXPECT_EQ(action.target_bytes, actions[0].target_bytes)
        << "identical VMs must get identical shares";
    sum += action.target_bytes;
  }
  EXPECT_LE(sum, usable);
}

TEST(ProportionalSharePolicy, HysteresisAndBusySuppressRequests) {
  PolicyConfig pc;
  auto policy = MakeProportionalShare(pc);
  PoolSignal pool;
  pool.capacity_bytes = kGiB;
  // VM 0: want is within hysteresis of the limit; VM 1: busy.
  std::vector<VmSignal> vms = {
      Signal(64 * kMiB, 42 * kMiB, 40 * kMiB - pc.headroom_bytes),
      Signal(64 * kMiB, 20 * kMiB, 60 * kMiB)};
  vms[1].busy = true;
  const auto actions = Decide(policy.get(), pool, vms);
  EXPECT_EQ(actions[0].target_bytes, vms[0].limit_bytes);
  EXPECT_EQ(actions[1].target_bytes, vms[1].limit_bytes);
}

TEST(PressurePidPolicy, OverPressureFreezesGrowsButPassesShrinks) {
  PolicyConfig pc;
  auto policy = MakePressurePid(pc);
  PoolSignal pool;
  pool.capacity_bytes = kGiB;
  pool.pressure = 1.0;  // far above the 0.85 setpoint
  const std::vector<VmSignal> vms = {
      Signal(64 * kMiB, 20 * kMiB, 60 * kMiB),  // wants to grow
      Signal(64 * kMiB, 60 * kMiB, 20 * kMiB)};  // wants to shrink
  const auto actions = Decide(policy.get(), pool, vms);
  EXPECT_EQ(actions[0].target_bytes, vms[0].limit_bytes)
      << "grow must be frozen above the setpoint";
  EXPECT_EQ(actions[1].target_bytes, 20 * kMiB + pc.headroom_bytes)
      << "shrinks always pass (they relieve pressure)";
}

TEST(PressurePidPolicy, UnderPressureGrantsGrowsInIndexOrder) {
  PolicyConfig pc;
  auto policy = MakePressurePid(pc);
  PoolSignal pool;
  pool.capacity_bytes = kGiB;
  pool.pressure = 0.2;  // well below the setpoint: growth welcome
  const std::vector<VmSignal> vms(2, Signal(64 * kMiB, 20 * kMiB,
                                            50 * kMiB));
  const auto actions = Decide(policy.get(), pool, vms);
  for (const ResizeAction& action : actions) {
    EXPECT_EQ(action.target_bytes, 50 * kMiB + pc.headroom_bytes);
  }
}

TEST(MarketPolicyAdapter, HigherUtilizationGrantsLess) {
  PolicyConfig pc;
  const std::vector<VmSignal> vms = {Signal(64 * kMiB, 20 * kMiB,
                                            48 * kMiB)};
  PoolSignal idle;
  idle.capacity_bytes = kGiB;
  idle.used_bytes = 64 * kMiB;
  PoolSignal loaded = idle;
  loaded.used_bytes = static_cast<uint64_t>(0.97 * kGiB);

  // Fresh policy per reading: the adapter itself is stateless, but keep
  // the comparison clean.
  const auto cheap = Decide(MakeMarketPolicy(pc).get(), idle, vms);
  const auto dear = Decide(MakeMarketPolicy(pc).get(), loaded, vms);
  EXPECT_GE(cheap[0].target_bytes, dear[0].target_bytes)
      << "a dearer spot price must never grant more memory";
  EXPECT_GE(dear[0].target_bytes, pc.min_limit_bytes);
  EXPECT_LE(cheap[0].target_bytes, 64 * kMiB);
}

// ---------------------------------------------------------------------
// Admission control near pool exhaustion.
// ---------------------------------------------------------------------

TEST(FleetAdmission, RejectsGrowsNearExhaustionAndKeepsLedgerFeasible) {
  const uint64_t vm_bytes = 64 * kMiB;
  PolicyConfig pc;

  FleetConfig config;
  config.vms = 8;
  config.threads = 1;
  config.vm_bytes = vm_bytes;
  // Deep overcommit (~2.7x): every VM wanting its peak cannot fit, so
  // the ledger must clip and then reject grows.
  config.host_bytes = 8 * 24 * kMiB;
  config.horizon = 90 * sim::kSec;
  config.epoch = 5 * sim::kSec;
  config.record_series = false;
  config.initial_limit_bytes = pc.min_limit_bytes + pc.headroom_bytes;

  // Constant saturating demand from every VM.
  ArrivalConfig ac;
  ac.kind = ArrivalKind::kDiurnal;
  ac.horizon = config.horizon;
  ac.peak_bytes = vm_bytes;
  ac.duty = 1.0;
  auto arrivals = std::make_shared<std::unique_ptr<ArrivalProcess>>(
      MakeArrivalProcess(ac));

  FleetEngine engine(
      config, TestVmFactory(vm_bytes),
      [arrivals](uint64_t index) {
        DemandAgentConfig dc;
        dc.trace = (*arrivals)->Generate(index);
        return std::make_unique<DemandAgent>(dc);
      },
      MakeProportionalShare(pc));
  const FleetResult result = engine.Run();

  // Deep overcommit: grows still pass while there is headroom (clipped
  // to it once it runs short), and are refused near exhaustion.
  EXPECT_GT(result.admission.granted + result.admission.clipped, 0u);
  EXPECT_GT(result.admission.rejected, 0u)
      << "a 2.7x-overcommitted fleet must see grow rejections";

  // The ledger invariant the determinism contract rides on:
  // sum(final limits) stays within the reserve-adjusted capacity. The
  // pool rounds host_bytes up to its shard granularity, so read the
  // real capacity back from the engine.
  const uint64_t capacity = engine.host()->total_frames() * kFrameSize;
  const uint64_t usable = static_cast<uint64_t>(
      static_cast<double>(capacity) * (1.0 - config.admission_reserve));
  uint64_t committed = 0;
  for (const uint64_t limit : result.final_limit_bytes) {
    committed += limit;
  }
  EXPECT_LE(committed, usable);
}

// ---------------------------------------------------------------------
// Arrival processes.
// ---------------------------------------------------------------------

TEST(ArrivalProcessTest, DeterministicPerVmAndBounded) {
  for (const ArrivalKind kind :
       {ArrivalKind::kBursty, ArrivalKind::kDiurnal,
        ArrivalKind::kHeavyTailed}) {
    ArrivalConfig ac;
    ac.kind = kind;
    const auto process = MakeArrivalProcess(ac);
    const auto again = MakeArrivalProcess(ac);
    bool any_difference = false;
    for (uint64_t vm = 0; vm < 8; ++vm) {
      const std::vector<Arrival> trace = process->Generate(vm);
      const std::vector<Arrival> replay = again->Generate(vm);
      ASSERT_FALSE(trace.empty());
      ASSERT_EQ(trace.size(), replay.size());
      for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].at, replay[i].at);
        EXPECT_EQ(trace[i].bytes, replay[i].bytes);
        EXPECT_LT(trace[i].at, ac.horizon);
        EXPECT_GE(trace[i].bytes, ac.floor_bytes);
        EXPECT_LE(trace[i].bytes, ac.peak_bytes);
        EXPECT_EQ(trace[i].bytes % ac.quantum_bytes, 0u);
        if (i > 0) {
          EXPECT_GE(trace[i].at, trace[i - 1].at);
        }
      }
      if (vm > 0 &&
          !(trace.size() == process->Generate(0).size() &&
            std::equal(trace.begin(), trace.end(),
                       process->Generate(0).begin(),
                       [](const Arrival& a, const Arrival& b) {
                         return a.at == b.at && a.bytes == b.bytes;
                       }))) {
        any_difference = true;
      }
    }
    EXPECT_TRUE(any_difference)
        << "per-VM seed mixing produced identical traces for all of "
        << "8 VMs (" << process->name() << ")";
  }
}

TEST(ArrivalProcessTest, StepResizeTraceIsTheLegacySchedule) {
  const std::vector<Arrival> trace = StepResizeTrace(16 * kGiB);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].at, kShrinkAt);
  EXPECT_EQ(trace[0].bytes, kResizeTarget);
  EXPECT_EQ(trace[1].at, kGrowAt);
  EXPECT_EQ(trace[1].bytes, 16 * kGiB);
}

// ---------------------------------------------------------------------
// Fault composition through the fleet factory path.
// ---------------------------------------------------------------------

// One shrink with real reclaim work, as in bench_faults' probe.
class ShrinkProbe : public VmAgent {
 public:
  void Start(VmContext* context) override {
    context_ = context;
    workloads::MemoryPool pool(context->vm);
    const uint64_t memory = context->vm->config().memory_bytes;
    const uint64_t region =
        pool.AllocRegion(memory / 2, /*thp_fraction=*/0.9, 0);
    pool.FreeRegion(region, 0);
    context->vm->PurgeAllocatorCaches();
    issued_ = context->sim->now();
    context->deflator->Request(
        {.target_bytes = context->vm->config().memory_bytes / 4,
         .done = [this] {
           elapsed_ = context_->sim->now() - issued_;
           done_ = true;
         }});
  }
  bool finished() const override { return done_; }
  uint64_t demand_bytes() const override { return 0; }
  sim::Time elapsed() const { return elapsed_; }

 private:
  VmContext* context_ = nullptr;
  sim::Time issued_ = 0;
  sim::Time elapsed_ = 0;
  bool done_ = false;
};

struct FaultRun {
  hv::ResizeOutcome outcome;
  uint64_t injected = 0;
  sim::Time elapsed = 0;
};

FaultRun RunFaultedShrink(uint64_t seed) {
  fault::Plan plan;
  plan.seed = seed;
  plan.spec(fault::Site::kEptUnmap).probability = 0.05;
  plan.spec(fault::Site::kEptUnmap).kind = fault::Kind::kTransient;

  FleetConfig config;
  config.vms = 1;
  config.threads = 1;
  config.vm_bytes = 256 * kMiB;
  config.host_bytes = kGiB;
  config.run_to_completion = true;
  config.record_series = false;

  ShrinkProbe* probe = nullptr;
  FleetEngine engine(config, TestVmFactory(config.vm_bytes, plan),
                     [&probe](uint64_t) {
                       auto agent = std::make_unique<ShrinkProbe>();
                       probe = agent.get();
                       return agent;
                     },
                     /*policy=*/nullptr);
  engine.Run();

  FaultRun run;
  run.outcome = engine.deflator(0)->last_outcome();
  run.injected = engine.injector(0)->injected_total();
  run.elapsed = probe->elapsed();
  return run;
}

TEST(FleetFaults, InjectionComposesAndRecoversDeterministically) {
  const FaultRun first = RunFaultedShrink(/*seed=*/7);
  EXPECT_GT(first.injected, 0u) << "the armed plan never fired";
  EXPECT_GT(first.outcome.faults, 0u);
  EXPECT_TRUE(first.outcome.complete)
      << "transient EPT-unmap faults must be retried to completion";
  EXPECT_FALSE(first.outcome.quarantined);

  // Same seed => identical failure schedule => identical virtual cost.
  const FaultRun replay = RunFaultedShrink(/*seed=*/7);
  EXPECT_EQ(first.injected, replay.injected);
  EXPECT_EQ(first.outcome.faults, replay.outcome.faults);
  EXPECT_EQ(first.outcome.retries, replay.outcome.retries);
  EXPECT_EQ(first.elapsed, replay.elapsed);
}

}  // namespace
}  // namespace hyperalloc::fleet
