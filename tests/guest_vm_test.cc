// Unit tests for the GuestVm composition: zones, allocation routing,
// pressure-driven page-cache eviction, THP-style EPT population, DMA, and
// migration support.
#include <gtest/gtest.h>

#include <set>

#include "src/guest/guest_vm.h"

namespace hyperalloc::guest {
namespace {

constexpr uint64_t kVmBytes = 256 * kMiB;

class GuestVmTest : public ::testing::Test {
 protected:
  void Init(GuestConfig config) {
    sim_ = std::make_unique<sim::Simulation>();
    host_ = std::make_unique<hv::HostMemory>(FramesForBytes(kGiB));
    vm_ = std::make_unique<GuestVm>(sim_.get(), host_.get(), config);
  }

  GuestConfig SmallBuddy() {
    GuestConfig config;
    config.memory_bytes = kVmBytes;
    config.vcpus = 4;
    config.dma32_bytes = 64 * kMiB;
    return config;
  }

  GuestConfig SmallLLFree() {
    GuestConfig config = SmallBuddy();
    config.allocator = AllocatorKind::kLLFree;
    return config;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<hv::HostMemory> host_;
  std::unique_ptr<GuestVm> vm_;
};

TEST_F(GuestVmTest, ZoneLayoutBuddy) {
  Init(SmallBuddy());
  ASSERT_EQ(vm_->zones().size(), 2u);
  EXPECT_EQ(vm_->zones()[0].kind, ZoneKind::kDma32);
  EXPECT_EQ(vm_->zones()[0].frames, FramesForBytes(64 * kMiB));
  EXPECT_EQ(vm_->zones()[1].kind, ZoneKind::kNormal);
  EXPECT_EQ(vm_->total_frames(), FramesForBytes(kVmBytes));
  EXPECT_EQ(vm_->FreeFrames(), vm_->total_frames());
}

TEST_F(GuestVmTest, ZoneLayoutWithMovable) {
  GuestConfig config = SmallBuddy();
  config.dma32_bytes = 0;
  config.movable_bytes = 128 * kMiB;
  Init(config);
  ASSERT_EQ(vm_->zones().size(), 2u);
  EXPECT_EQ(vm_->zones()[0].kind, ZoneKind::kNormal);
  EXPECT_EQ(vm_->zones()[1].kind, ZoneKind::kMovable);
  EXPECT_EQ(vm_->zones()[1].frames, FramesForBytes(128 * kMiB));
}

TEST_F(GuestVmTest, UnmovableAllocationsAvoidMovableZone) {
  GuestConfig config = SmallBuddy();
  config.dma32_bytes = 0;
  config.movable_bytes = 128 * kMiB;
  Init(config);
  const Zone& movable = vm_->zones()[1];
  for (int i = 0; i < 1000; ++i) {
    const Result<FrameId> r = vm_->Alloc(0, AllocType::kUnmovable);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(movable.Contains(*r));
  }
}

TEST_F(GuestVmTest, MovableAllocationsPreferMovableZone) {
  GuestConfig config = SmallBuddy();
  config.dma32_bytes = 0;
  config.movable_bytes = 128 * kMiB;
  Init(config);
  const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(vm_->zones()[1].Contains(*r));
}

TEST_F(GuestVmTest, AllocFreeRoundTripBothAllocators) {
  for (const AllocatorKind kind :
       {AllocatorKind::kBuddy, AllocatorKind::kLLFree}) {
    GuestConfig config = SmallBuddy();
    config.allocator = kind;
    Init(config);
    const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(vm_->FreeFrames(), vm_->total_frames() - kFramesPerHuge);
    vm_->Free(*r, kHugeOrder);
    EXPECT_EQ(vm_->FreeFrames(), vm_->total_frames());
  }
}

TEST_F(GuestVmTest, PressureEvictsPageCache) {
  Init(SmallBuddy());
  // Fill (nearly) all memory with page cache, then demand far more than
  // the watermark headroom: reclaim must evict cache rather than fail.
  vm_->CacheAdd(kVmBytes);
  EXPECT_GT(vm_->cache_bytes(), kVmBytes / 2);
  const uint64_t cache_before = vm_->cache_bytes();
  for (int i = 0; i < 32; ++i) {  // 64 MiB of huge allocations
    const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
    ASSERT_TRUE(r.ok()) << "allocation " << i;
  }
  EXPECT_LT(vm_->cache_bytes(), cache_before);
  EXPECT_GT(vm_->cache_evictions(), 0u);
  EXPECT_EQ(vm_->oom_events(), 0u);
}

TEST_F(GuestVmTest, OomWhenNothingReclaimable) {
  Init(SmallBuddy());
  // Exhaust memory with unreclaimable (non-cache) allocations.
  uint64_t allocated = 0;
  for (;;) {
    const Result<FrameId> r = vm_->Alloc(0, AllocType::kUnmovable);
    if (!r.ok()) {
      break;
    }
    ++allocated;
  }
  EXPECT_EQ(allocated, vm_->total_frames());
  EXPECT_GT(vm_->oom_events(), 0u);
}

TEST_F(GuestVmTest, TouchPopulatesThpGranularity) {
  Init(SmallBuddy());
  EXPECT_EQ(vm_->rss_bytes(), 0u);
  // First touch of one 4 KiB page in a pristine huge frame populates the
  // whole 2 MiB (THP) with a single 2 MiB fault.
  vm_->Touch(0, 1);
  EXPECT_EQ(vm_->rss_bytes(), kHugeSize);
  EXPECT_EQ(vm_->ept_faults_2m(), 1u);
  EXPECT_EQ(vm_->ept_faults_4k(), 0u);
  // Touching the rest of the huge frame faults nothing further.
  vm_->Touch(0, kFramesPerHuge);
  EXPECT_EQ(vm_->rss_bytes(), kHugeSize);
  EXPECT_EQ(vm_->ept_faults_2m(), 1u);
}

TEST_F(GuestVmTest, PartiallyUnmappedHugeFramesFaultAt4k) {
  Init(SmallBuddy());
  vm_->Touch(0, kFramesPerHuge);  // populate 2 MiB
  vm_->ept().Unmap(0, 64);        // balloon-style 4 KiB holes
  EXPECT_EQ(vm_->rss_bytes(), kHugeSize - 64 * kFrameSize);
  vm_->Touch(0, 64);
  EXPECT_EQ(vm_->ept_faults_4k(), 64u);
  EXPECT_EQ(vm_->rss_bytes(), kHugeSize);
}

TEST_F(GuestVmTest, TouchAdvancesVirtualTime) {
  Init(SmallBuddy());
  const sim::Time before = sim_->now();
  vm_->Touch(0, kFramesPerHuge);
  EXPECT_GT(sim_->now(), before);
  EXPECT_GT(vm_->fault_time(), 0u);
}

TEST_F(GuestVmTest, EmulatedDmaAlwaysSucceeds) {
  Init(SmallBuddy());
  EXPECT_TRUE(vm_->DmaWrite(0, 16));
  EXPECT_GT(vm_->rss_bytes(), 0u);  // the device write faulted memory in
}

TEST_F(GuestVmTest, PassthroughDmaRequiresPinning) {
  GuestConfig config = SmallBuddy();
  config.vfio = true;
  Init(config);
  ASSERT_NE(vm_->iommu(), nullptr);
  EXPECT_FALSE(vm_->DmaWrite(0, 16)) << "unpinned frame must fail DMA";
  vm_->iommu()->Pin(0);
  EXPECT_TRUE(vm_->DmaWrite(0, 16));
  EXPECT_FALSE(vm_->DmaWrite(0, kFramesPerHuge + 1))
      << "range extending into an unpinned huge frame must fail";
}

TEST_F(GuestVmTest, CacheAddDropAccounting) {
  Init(SmallBuddy());
  vm_->CacheAdd(8 * kMiB);
  EXPECT_EQ(vm_->cache_bytes(), 8 * kMiB);
  EXPECT_EQ(vm_->AllocatedFrames(), FramesForBytes(8 * kMiB));
  vm_->CacheDrop(3 * kMiB);
  EXPECT_EQ(vm_->cache_bytes(), 5 * kMiB);
  vm_->DropCaches();
  EXPECT_EQ(vm_->cache_bytes(), 0u);
  EXPECT_EQ(vm_->FreeFrames(), vm_->total_frames());
}

TEST_F(GuestVmTest, RssTracksHostUsage) {
  Init(SmallBuddy());
  EXPECT_EQ(host_->used_frames(), 0u);
  vm_->Touch(0, 1024);
  EXPECT_EQ(host_->used_frames(), 1024u);
  EXPECT_EQ(vm_->rss_bytes(), 1024 * kFrameSize);
  vm_->ept().Unmap(0, 1024);
  EXPECT_EQ(host_->used_frames(), 0u);
}

class TrackingListener : public MigrationListener {
 public:
  void OnFrameMigrated(FrameId old_head, FrameId new_head,
                       unsigned order) override {
    moves.emplace_back(old_head, new_head);
    (void)order;
  }
  std::vector<std::pair<FrameId, FrameId>> moves;
};

TEST_F(GuestVmTest, MigrateRangeMovesAllocations) {
  GuestConfig config = SmallBuddy();
  config.dma32_bytes = 0;
  config.movable_bytes = 128 * kMiB;
  config.buddy_config.pcp_enabled = false;
  Init(config);
  TrackingListener listener;
  vm_->AddMigrationListener(&listener);

  // Allocate a movable frame, find its block, and migrate that block.
  const Result<FrameId> victim = vm_->Alloc(0, AllocType::kMovable);
  ASSERT_TRUE(victim.ok());
  Zone& zone = vm_->ZoneOf(*victim);
  ASSERT_EQ(zone.kind, ZoneKind::kMovable);
  const FrameId block = AlignDown(*victim, kFramesPerHuge);
  zone.buddy->ClaimFreeInRange(block - zone.start, kFramesPerHuge);

  uint64_t migrated = 0;
  ASSERT_TRUE(vm_->MigrateRange(block, kFramesPerHuge, 0, &migrated));
  EXPECT_EQ(migrated, 1u);
  ASSERT_EQ(listener.moves.size(), 1u);
  EXPECT_EQ(listener.moves[0].first, *victim);
  const FrameId moved_to = listener.moves[0].second;
  EXPECT_TRUE(moved_to < block || moved_to >= block + kFramesPerHuge);
  // The new frame is a valid allocation; the old range is fully claimed.
  vm_->Free(moved_to, 0);
  EXPECT_EQ(zone.buddy->AllocatedInRange(block - zone.start, kFramesPerHuge)
                .size(),
            kFramesPerHuge);
}

TEST_F(GuestVmTest, MigrationUpdatesPageCache) {
  GuestConfig config = SmallBuddy();
  config.dma32_bytes = 0;
  config.movable_bytes = 128 * kMiB;
  config.buddy_config.pcp_enabled = false;
  Init(config);
  vm_->CacheAdd(4 * kMiB);
  const uint64_t cache_before = vm_->cache_bytes();

  // Evacuate the whole Movable zone; the cache pages living there must
  // move (to the Normal zone) with the cache bookkeeping following.
  Zone& zone = vm_->zones()[1];
  zone.buddy->ClaimFreeInRange(0, zone.frames);
  uint64_t migrated = 0;
  ASSERT_TRUE(vm_->MigrateRange(zone.start, zone.frames, 0, &migrated));
  EXPECT_EQ(migrated, FramesForBytes(4 * kMiB));
  EXPECT_EQ(vm_->cache_bytes(), cache_before);
  // Dropping the cache must free the *new* locations without errors.
  vm_->DropCaches();
  EXPECT_EQ(vm_->cache_bytes(), 0u);
}

TEST_F(GuestVmTest, PurgeAllocatorCachesDrainsPcp) {
  Init(SmallBuddy());
  const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
  ASSERT_TRUE(r.ok());
  vm_->Free(*r, 0);
  Zone& zone = vm_->ZoneOf(*r);
  EXPECT_LT(zone.buddy->FreeFramesInLists(), zone.frames);
  vm_->PurgeAllocatorCaches();
  EXPECT_EQ(zone.buddy->FreeFramesInLists(), zone.frames);
}

TEST_F(GuestVmTest, LLFreeGuestSharesStateWithMonitorView) {
  Init(SmallLLFree());
  Zone& zone = vm_->zones()[1];
  ASSERT_NE(zone.llfree_state, nullptr);
  llfree::LLFree monitor(zone.llfree_state.get());
  const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(monitor.ReadArea(FrameToHuge(*r - zone.start)).allocated);
}

TEST_F(GuestVmTest, FreeWithWrongOrderAborts) {
  Init(SmallBuddy());
  const Result<FrameId> r = vm_->Alloc(3, AllocType::kMovable);
  ASSERT_TRUE(r.ok());
  EXPECT_DEATH(vm_->Free(*r, 2), "check failed");
}

TEST_F(GuestVmTest, DoubleFreeAborts) {
  Init(SmallBuddy());
  const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
  ASSERT_TRUE(r.ok());
  vm_->Free(*r, 0);
  EXPECT_DEATH(vm_->Free(*r, 0), "check failed");
}

}  // namespace
}  // namespace hyperalloc::guest
