// Seeded mutant for lint gate 6 (scripts/lint.sh): a one-sided atomic
// ordering protocol that the per-field publisher/consumer pairing table
// must flag. The reader takes the spinlock-style flag with an acquire
// load, but every publisher was "optimized" down to relaxed — exactly
// the release->relaxed downgrade the gate exists to catch. The file is
// NOT part of any build target and is only scanned when
// HA_LINT_GATE6_MUTANT=1; CI runs the gate once in that configuration
// and requires it to fail, proving the check is live.

#include <atomic>
#include <cstdint>

namespace hyperalloc::lint_mutant {

struct ReservationSlot {
  // Packed (tree_index << 1) | valid, llfree-style.
  std::atomic<uint64_t> mutant_slot_word_{0};
  uint64_t tree_meta_ = 0;  // published via mutant_slot_word_... in theory
};

inline bool Publish(ReservationSlot& slot, uint64_t tree_index) {
  slot.tree_meta_ = tree_index * 2;
  uint64_t expected = 0;
  // BUG: success order downgraded release -> relaxed; the acquire load
  // below now orders against nothing.
  return slot.mutant_slot_word_.compare_exchange_strong(
      expected, (tree_index << 1) | 1, std::memory_order_relaxed,
      std::memory_order_relaxed);
}

inline uint64_t Consume(const ReservationSlot& slot) {
  const uint64_t word =
      slot.mutant_slot_word_.load(std::memory_order_acquire);
  return (word & 1) != 0 ? slot.tree_meta_ : 0;
}

}  // namespace hyperalloc::lint_mutant
