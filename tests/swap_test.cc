// Tests for host-level swapping under overcommit (paper §6).
#include <gtest/gtest.h>

#include "src/hv/swap.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::hv {
namespace {

class SwapTest : public ::testing::Test {
 protected:
  // Host has 256 MiB for two 256 MiB VMs: 2x overcommitted.
  void Init(uint64_t host_bytes = 256 * kMiB, int num_vms = 2) {
    sim_ = std::make_unique<sim::Simulation>();
    host_ = std::make_unique<HostMemory>(FramesForBytes(host_bytes));
    swap_ = std::make_unique<SwapManager>(sim_.get(), host_.get());
    for (int i = 0; i < num_vms; ++i) {
      guest::GuestConfig config;
      config.memory_bytes = 256 * kMiB;
      config.vcpus = 2;
      config.dma32_bytes = 0;
      vms_.push_back(std::make_unique<guest::GuestVm>(sim_.get(),
                                                      host_.get(), config));
      swap_->Register(vms_.back().get());
    }
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<HostMemory> host_;
  std::unique_ptr<SwapManager> swap_;
  std::vector<std::unique_ptr<guest::GuestVm>> vms_;
};

TEST_F(SwapTest, OvercommitSwapsInsteadOfFailing) {
  Init();
  // Both VMs touch their full memory: 512 MiB demand on a 256 MiB host.
  vms_[0]->Touch(0, vms_[0]->total_frames());
  vms_[1]->Touch(0, vms_[1]->total_frames());
  EXPECT_GT(swap_->swapped_out_frames(), 0u);
  EXPECT_LE(host_->used_frames(), host_->total_frames());
  // The second VM is fully resident; the first was partially evicted.
  EXPECT_EQ(vms_[1]->rss_bytes(), 256 * kMiB);
  EXPECT_LT(vms_[0]->rss_bytes(), 256 * kMiB);
}

TEST_F(SwapTest, SwapInChargesLatency) {
  Init();
  vms_[0]->Touch(0, vms_[0]->total_frames());
  vms_[1]->Touch(0, vms_[1]->total_frames());
  ASSERT_GT(swap_->swapped_out_frames(), 0u);

  // Re-touching VM 0's swapped memory swaps it back in — slower than a
  // plain fault, and it evicts something else.
  const sim::Time before = sim_->now();
  vms_[0]->Touch(0, 4096);
  EXPECT_GT(swap_->swapped_in_frames(), 0u);
  const sim::Time cost = sim_->now() - before;
  EXPECT_GT(cost, 4096ull * 15000 / 2) << "swap-in latency must show";
}

TEST_F(SwapTest, ThrashingUnderSustainedOvercommit) {
  Init();
  vms_[0]->Touch(0, vms_[0]->total_frames());
  vms_[1]->Touch(0, vms_[1]->total_frames());
  const uint64_t out_before = swap_->swapped_out_frames();
  // Ping-pong touches: each VM's accesses evict the other.
  for (int round = 0; round < 4; ++round) {
    vms_[round % 2]->Touch(0, 8192);
  }
  EXPECT_GT(swap_->swapped_out_frames(), out_before)
      << "sustained overcommit must keep swapping (thrashing)";
}

TEST_F(SwapTest, NoSwapWhenHostHasRoom) {
  Init(kGiB, 2);
  vms_[0]->Touch(0, vms_[0]->total_frames());
  vms_[1]->Touch(0, vms_[1]->total_frames());
  EXPECT_EQ(swap_->swapped_out_frames(), 0u);
}

TEST_F(SwapTest, AccountingBalances) {
  Init();
  vms_[0]->Touch(0, vms_[0]->total_frames());
  vms_[1]->Touch(0, vms_[1]->total_frames());
  vms_[0]->Touch(0, vms_[0]->total_frames());
  EXPECT_EQ(swap_->swap_used_frames(),
            swap_->swapped_out_frames() - swap_->swapped_in_frames());
}

}  // namespace
}  // namespace hyperalloc::hv
