// Unit and property tests for the LLFree allocator and its HyperAlloc
// bilateral extensions (single-threaded; see llfree_concurrent_test.cc for
// the multithreaded stress tests).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/base/rng.h"
#include "src/llfree/frame_cache.h"
#include "src/llfree/llfree.h"

namespace hyperalloc::llfree {
namespace {

constexpr uint64_t kFrames16MiB = 4096;    // 8 areas = 1 tree (default cfg)
constexpr uint64_t kFrames64MiB = 16384;   // 32 areas = 4 trees
constexpr uint64_t kFrames256MiB = 65536;  // 128 areas = 16 trees

Config DefaultConfig() { return Config{}; }

Config PerCoreConfig(unsigned cores) {
  Config config;
  config.mode = Config::ReservationMode::kPerCore;
  config.cores = cores;
  return config;
}

class LLFreeTest : public ::testing::Test {
 protected:
  void Init(uint64_t frames, const Config& config = DefaultConfig()) {
    state_ = std::make_unique<SharedState>(frames, config);
    alloc_ = std::make_unique<LLFree>(state_.get());
  }

  std::unique_ptr<SharedState> state_;
  std::unique_ptr<LLFree> alloc_;
};

TEST_F(LLFreeTest, GeometryAndInitialState) {
  Init(kFrames64MiB);
  EXPECT_EQ(alloc_->frames(), kFrames64MiB);
  EXPECT_EQ(alloc_->num_areas(), 32u);
  EXPECT_EQ(alloc_->num_trees(), 4u);
  EXPECT_EQ(alloc_->FreeFrames(), kFrames64MiB);
  EXPECT_EQ(alloc_->FreeHugeFrames(), 32u);
  EXPECT_EQ(alloc_->UsedHugeAreas(), 0u);
  EXPECT_TRUE(alloc_->Validate());
}

TEST_F(LLFreeTest, SharedBytesMatchesPaperScanFootprint) {
  // Paper §3.3: scanning 1 GiB of guest memory touches 18 cache lines of
  // index state (2 bits R on the host side + 16 bits A per huge frame).
  // The guest-shared area index alone is 16 b/huge = 8 cache lines/GiB.
  Init(kGiB / kFrameSize);
  const uint64_t area_index_bytes = alloc_->num_areas() * sizeof(uint16_t);
  EXPECT_EQ(area_index_bytes, 1024u);  // 512 areas * 2 B = 16 cache lines
  EXPECT_EQ(alloc_->state().SharedBytes(),
            kGiB / kFrameSize / 8 + 1024 + alloc_->num_trees() * 4);
}

TEST_F(LLFreeTest, AllocFreeSingleFrame) {
  Init(kFrames16MiB);
  const Result<FrameId> frame = alloc_->Get(0, 0, AllocType::kMovable);
  ASSERT_TRUE(frame.ok());
  EXPECT_LT(*frame, kFrames16MiB);
  EXPECT_EQ(alloc_->FreeFrames(), kFrames16MiB - 1);
  EXPECT_FALSE(alloc_->Put(*frame, 0).has_value());
  EXPECT_EQ(alloc_->FreeFrames(), kFrames16MiB);
  EXPECT_TRUE(alloc_->Validate());
}

TEST_F(LLFreeTest, DoubleFreeDetected) {
  Init(kFrames16MiB);
  const Result<FrameId> frame = alloc_->Get(0, 0, AllocType::kMovable);
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(alloc_->Put(*frame, 0).has_value());
  const auto err = alloc_->Put(*frame, 0);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, AllocError::kInvalid);
}

TEST_F(LLFreeTest, FreeUnallocatedHugeIsInvalid) {
  Init(kFrames16MiB);
  const auto err = alloc_->Put(0, kHugeOrder);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, AllocError::kInvalid);
}

TEST_F(LLFreeTest, OutOfRangeAndMisalignedFreesRejected) {
  Init(kFrames16MiB);
  EXPECT_EQ(alloc_->Put(kFrames16MiB, 0), AllocError::kInvalid);
  EXPECT_EQ(alloc_->Put(3, 2), AllocError::kInvalid);  // not 4-aligned
}

TEST_F(LLFreeTest, BatchRoundTrip) {
  Init(kFrames64MiB);
  std::vector<FrameId> frames;
  const unsigned got = alloc_->GetBatch(0, 0, 300, AllocType::kMovable,
                                        &frames);
  ASSERT_EQ(got, 300u);
  ASSERT_EQ(frames.size(), 300u);
  const std::set<FrameId> unique(frames.begin(), frames.end());
  EXPECT_EQ(unique.size(), 300u) << "batch returned duplicate frames";
  EXPECT_EQ(alloc_->FreeFrames(), kFrames64MiB - 300);
  EXPECT_TRUE(alloc_->Validate());
  EXPECT_EQ(alloc_->PutBatch(frames, 0), 300u);
  EXPECT_EQ(alloc_->FreeFrames(), kFrames64MiB);
  EXPECT_TRUE(alloc_->Validate());
}

TEST_F(LLFreeTest, BatchSequenceEquivalentToSingles) {
  // A batched allocator and a single-frame allocator replaying the same
  // logical sequence must agree on every aggregate at every step, and
  // both must validate — the batch path is an optimization, not a new
  // allocation policy.
  Init(kFrames64MiB);
  SharedState single_state(kFrames64MiB, DefaultConfig());
  LLFree single(&single_state);

  const struct {
    unsigned order;
    unsigned count;
  } rounds[] = {{0, 513}, {2, 17}, {6, 9}, {0, 64}, {3, 5}, {0, 1}};
  std::vector<std::pair<unsigned, std::vector<FrameId>>> batched_held;
  std::vector<std::pair<unsigned, std::vector<FrameId>>> single_held;
  for (const auto& round : rounds) {
    std::vector<FrameId> batched;
    ASSERT_EQ(alloc_->GetBatch(0, round.order, round.count,
                               AllocType::kMovable, &batched),
              round.count);
    std::vector<FrameId> singles;
    for (unsigned i = 0; i < round.count; ++i) {
      const Result<FrameId> r = single.Get(0, round.order,
                                           AllocType::kMovable);
      ASSERT_TRUE(r.ok());
      singles.push_back(*r);
    }
    EXPECT_EQ(alloc_->FreeFrames(), single.FreeFrames());
    EXPECT_TRUE(alloc_->Validate());
    EXPECT_TRUE(single.Validate());
    batched_held.emplace_back(round.order, std::move(batched));
    single_held.emplace_back(round.order, std::move(singles));
  }
  for (size_t i = 0; i < batched_held.size(); ++i) {
    EXPECT_EQ(alloc_->PutBatch(batched_held[i].second, batched_held[i].first),
              batched_held[i].second.size());
    for (const FrameId frame : single_held[i].second) {
      EXPECT_FALSE(single.Put(frame, single_held[i].first).has_value());
    }
    EXPECT_EQ(alloc_->FreeFrames(), single.FreeFrames());
  }
  EXPECT_EQ(alloc_->FreeFrames(), kFrames64MiB);
  EXPECT_EQ(alloc_->FreeHugeFrames(), single.FreeHugeFrames());
  EXPECT_TRUE(alloc_->Validate());
  EXPECT_TRUE(single.Validate());
}

TEST_F(LLFreeTest, PutBatchSkipsInvalidEntries) {
  Init(kFrames16MiB);
  std::vector<FrameId> frames;
  ASSERT_EQ(alloc_->GetBatch(0, 0, 10, AllocType::kMovable, &frames), 10u);
  frames.push_back(kFrames16MiB + 7);  // out of range: skipped, not fatal
  EXPECT_EQ(alloc_->PutBatch(frames, 0), 10u);
  EXPECT_EQ(alloc_->FreeFrames(), kFrames16MiB);
  EXPECT_TRUE(alloc_->Validate());
}

TEST_F(LLFreeTest, PutBatchDetectsDuplicates) {
  Init(kFrames16MiB);
  std::vector<FrameId> frames;
  ASSERT_EQ(alloc_->GetBatch(0, 0, 8, AllocType::kMovable, &frames), 8u);
  frames.push_back(frames[0]);  // double free inside one batch
  EXPECT_EQ(alloc_->PutBatch(frames, 0), 8u);
  EXPECT_EQ(alloc_->FreeFrames(), kFrames16MiB);
  EXPECT_TRUE(alloc_->Validate());
}

TEST_F(LLFreeTest, GetBatchPartialWhenNearlyFull) {
  Init(kFrames16MiB);
  // Claim everything, return 5 frames, then ask for 64: the batch takes
  // what exists and reports the shortfall instead of failing outright.
  std::vector<FrameId> all;
  ASSERT_EQ(alloc_->GetBatch(0, 0, kFrames16MiB, AllocType::kMovable, &all),
            kFrames16MiB);
  EXPECT_EQ(alloc_->FreeFrames(), 0u);
  std::vector<FrameId> returned(all.begin(), all.begin() + 5);
  ASSERT_EQ(alloc_->PutBatch(returned, 0), 5u);
  std::vector<FrameId> refill;
  EXPECT_EQ(alloc_->GetBatch(0, 0, 64, AllocType::kMovable, &refill), 5u);
  EXPECT_EQ(alloc_->FreeFrames(), 0u);
  EXPECT_TRUE(alloc_->Validate());
}

TEST_F(LLFreeTest, FrameCacheHitsAvoidAllocator) {
  Init(kFrames16MiB);
  FrameCache::CacheConfig cc;
  cc.slots = 1;
  cc.capacity = 64;
  cc.refill = 32;
  FrameCache cache(alloc_.get(), cc);
  const Result<FrameId> a = cache.Get(0, 0, AllocType::kMovable);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(cache.refills(), 1u);  // miss pulled one batch
  const Result<FrameId> b = cache.Get(0, 0, AllocType::kMovable);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.refills(), 1u);  // served from the slot stack
  EXPECT_FALSE(cache.Put(0, *a, 0, AllocType::kMovable).has_value());
  EXPECT_FALSE(cache.Put(0, *b, 0, AllocType::kMovable).has_value());
}

TEST_F(LLFreeTest, FrameCacheDrainOnQuiesce) {
  Init(kFrames16MiB);
  FrameCache::CacheConfig cc;
  cc.slots = 2;
  cc.capacity = 64;
  cc.refill = 32;
  FrameCache cache(alloc_.get(), cc);
  // One get/put pair leaves a refill batch parked: those frames look
  // allocated to LLFree but are free to the cache's user.
  const Result<FrameId> frame = cache.Get(1, 0, AllocType::kMovable);
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(cache.Put(1, *frame, 0, AllocType::kMovable).has_value());
  EXPECT_EQ(cache.CachedFrames(), cc.refill);
  EXPECT_EQ(alloc_->FreeFrames(), kFrames16MiB - cc.refill);
  // Drain restores quiescence: every parked frame back, counters intact.
  cache.Drain();
  EXPECT_EQ(cache.CachedFrames(), 0u);
  EXPECT_EQ(alloc_->FreeFrames(), kFrames16MiB);
  EXPECT_EQ(cache.drains(), 1u);
  EXPECT_TRUE(alloc_->Validate());
}

TEST_F(LLFreeTest, FrameCachePassesThroughNonBasePages) {
  Init(kFrames16MiB);
  FrameCache::CacheConfig cc;
  FrameCache cache(alloc_.get(), cc);
  const Result<FrameId> huge = cache.Get(0, kHugeOrder, AllocType::kMovable);
  ASSERT_TRUE(huge.ok());
  EXPECT_EQ(cache.CachedFrames(), 0u);  // no caching above order 0
  EXPECT_FALSE(
      cache.Put(0, *huge, kHugeOrder, AllocType::kMovable).has_value());
  EXPECT_EQ(alloc_->FreeFrames(), kFrames16MiB);
}

TEST_F(LLFreeTest, FrameCacheBypassesUnmovableFrees) {
  Init(kFrames16MiB);
  FrameCache::CacheConfig cc;
  cc.slots = 1;
  cc.capacity = 64;
  cc.refill = 32;
  FrameCache cache(alloc_.get(), cc);
  // Unmovable traffic passes through on both sides: the free returns
  // through LLFree's type-aware slot selection instead of parking in
  // the (movable-only) stack, so movability grouping is preserved.
  const Result<FrameId> f = cache.Get(0, 0, AllocType::kUnmovable);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(cache.CachedFrames(), 0u);
  EXPECT_FALSE(cache.Put(0, *f, 0, AllocType::kUnmovable).has_value());
  EXPECT_EQ(cache.CachedFrames(), 0u);
  EXPECT_EQ(alloc_->FreeFrames(), kFrames16MiB);
  // The uncached path keeps failing fast on a double free.
  EXPECT_EQ(cache.Put(0, *f, 0, AllocType::kUnmovable),
            AllocError::kInvalid);
  EXPECT_TRUE(alloc_->Validate());
}

TEST_F(LLFreeTest, FrameCacheSurfacesDoubleFreeAtDrain) {
  Init(kFrames16MiB);
  FrameCache::CacheConfig cc;
  cc.slots = 1;
  cc.capacity = 2;
  cc.refill = 2;
  FrameCache cache(alloc_.get(), cc);
  // Take three frames directly (bypassing the cache) so the cache's
  // stack holds frames it believes it owns.
  const Result<FrameId> a = alloc_->Get(0, 0, AllocType::kMovable);
  const Result<FrameId> x1 = alloc_->Get(0, 0, AllocType::kMovable);
  const Result<FrameId> x2 = alloc_->Get(0, 0, AllocType::kMovable);
  ASSERT_TRUE(a.ok() && x1.ok() && x2.ok());
  // First free of `a` drains back to the allocator cleanly.
  EXPECT_FALSE(cache.Put(0, *a, 0, AllocType::kMovable).has_value());
  EXPECT_EQ(cache.Drain(), 0u);
  EXPECT_EQ(alloc_->FreeFrames(), kFrames16MiB - 2);
  // Double free of `a`: it parks undetected (the slot no longer holds
  // it), and the overflow drain is where the allocator refuses it — the
  // Put that triggered that drain reports kInvalid instead of a crash,
  // and the refused frame is dropped, not handed out twice.
  EXPECT_FALSE(cache.Put(0, *a, 0, AllocType::kMovable).has_value());
  EXPECT_FALSE(cache.Put(0, *x1, 0, AllocType::kMovable).has_value());
  EXPECT_EQ(cache.Put(0, *x2, 0, AllocType::kMovable),
            AllocError::kInvalid);
  EXPECT_EQ(cache.lost_frames(), 1u);
  // x2 is still parked; the final drain returns it without incident.
  EXPECT_EQ(cache.Drain(), 0u);
  EXPECT_EQ(cache.CachedFrames(), 0u);
  EXPECT_EQ(alloc_->FreeFrames(), kFrames16MiB);
  EXPECT_TRUE(alloc_->Validate());
}

TEST_F(LLFreeTest, UnsupportedOrdersRejected) {
  Init(kFrames16MiB);
  for (unsigned order : {10u, 11u, 12u}) {
    const Result<FrameId> r = alloc_->Get(0, order, AllocType::kMovable);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error(), AllocError::kInvalid);
    EXPECT_EQ(alloc_->Put(0, order), AllocError::kInvalid);
  }
}

class LLFreeOrderTest : public LLFreeTest,
                        public ::testing::WithParamInterface<unsigned> {};

TEST_P(LLFreeOrderTest, AlignedAllocationRoundTrip) {
  const unsigned order = GetParam();
  Init(kFrames64MiB);
  const uint64_t size = 1ull << order;
  std::vector<FrameId> frames;
  for (int i = 0; i < 10; ++i) {
    const Result<FrameId> r = alloc_->Get(0, order, AllocType::kMovable);
    ASSERT_TRUE(r.ok()) << "order " << order << " iteration " << i;
    EXPECT_EQ(*r % size, 0u) << "misaligned order-" << order << " frame";
    frames.push_back(*r);
  }
  // All distinct, non-overlapping.
  std::set<FrameId> unique(frames.begin(), frames.end());
  EXPECT_EQ(unique.size(), frames.size());
  EXPECT_EQ(alloc_->FreeFrames(), kFrames64MiB - 10 * size);
  for (const FrameId f : frames) {
    EXPECT_FALSE(alloc_->Put(f, order).has_value());
  }
  EXPECT_EQ(alloc_->FreeFrames(), kFrames64MiB);
  EXPECT_TRUE(alloc_->Validate());
}

INSTANTIATE_TEST_SUITE_P(AllOrders, LLFreeOrderTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u, kHugeOrder));

TEST_F(LLFreeTest, ExhaustAndRefillWithHugeFrames) {
  Init(kFrames64MiB);
  std::vector<FrameId> frames;
  for (;;) {
    const Result<FrameId> r = alloc_->Get(0, kHugeOrder, AllocType::kHuge);
    if (!r.ok()) {
      EXPECT_EQ(r.error(), AllocError::kNoMemory);
      break;
    }
    frames.push_back(*r);
  }
  EXPECT_EQ(frames.size(), 32u);
  EXPECT_EQ(alloc_->FreeFrames(), 0u);
  EXPECT_EQ(alloc_->UsedHugeAreas(), 32u);
  for (const FrameId f : frames) {
    EXPECT_FALSE(alloc_->Put(f, kHugeOrder).has_value());
  }
  EXPECT_EQ(alloc_->FreeHugeFrames(), 32u);
  EXPECT_TRUE(alloc_->Validate());
}

TEST_F(LLFreeTest, ExhaustBaseFrames) {
  Init(kFrames16MiB);
  std::vector<FrameId> frames;
  for (uint64_t i = 0; i < kFrames16MiB; ++i) {
    const Result<FrameId> r = alloc_->Get(0, 0, AllocType::kMovable);
    ASSERT_TRUE(r.ok()) << "allocation " << i;
    frames.push_back(*r);
  }
  const Result<FrameId> r = alloc_->Get(0, 0, AllocType::kMovable);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), AllocError::kNoMemory);
  // All frames handed out exactly once.
  std::set<FrameId> unique(frames.begin(), frames.end());
  EXPECT_EQ(unique.size(), kFrames16MiB);
}

TEST_F(LLFreeTest, MixedTypesSucceedInSingleTree) {
  // Regression test for the reservation fallback: with one tree and
  // per-type reservations, the second and third type must still allocate.
  Init(kFrames16MiB);
  EXPECT_TRUE(alloc_->Get(0, 0, AllocType::kMovable).ok());
  EXPECT_TRUE(alloc_->Get(0, 0, AllocType::kUnmovable).ok());
  EXPECT_TRUE(alloc_->Get(0, kHugeOrder, AllocType::kHuge).ok());
}

TEST_F(LLFreeTest, PerTypeReservationsSeparateTrees) {
  Init(kFrames256MiB);
  const Result<FrameId> movable = alloc_->Get(0, 0, AllocType::kMovable);
  const Result<FrameId> unmovable = alloc_->Get(0, 0, AllocType::kUnmovable);
  ASSERT_TRUE(movable.ok());
  ASSERT_TRUE(unmovable.ok());
  const uint64_t tree_frames = 8 * kFramesPerHuge;
  EXPECT_NE(*movable / tree_frames, *unmovable / tree_frames)
      << "unmovable and movable allocations should use different trees";
  const Reservation movable_res =
      alloc_->ReadReservation(static_cast<unsigned>(AllocType::kMovable));
  const Reservation unmovable_res =
      alloc_->ReadReservation(static_cast<unsigned>(AllocType::kUnmovable));
  EXPECT_TRUE(movable_res.active);
  EXPECT_TRUE(unmovable_res.active);
  EXPECT_NE(movable_res.tree, unmovable_res.tree);
  EXPECT_EQ(alloc_->ReadTree(movable_res.tree).type, AllocType::kMovable);
  EXPECT_EQ(alloc_->ReadTree(unmovable_res.tree).type, AllocType::kUnmovable);
}

TEST_F(LLFreeTest, CompatibleTypesShareTreesUnderFragmentation) {
  // Movable and huge allocations (both movable in Linux terms) may fill
  // each other's partial trees; unmovable trees stay untouched while
  // free trees exist.
  Init(kFrames256MiB);
  // Build a partial movable tree and a partial unmovable tree.
  const Result<FrameId> movable = alloc_->Get(0, 0, AllocType::kMovable);
  const Result<FrameId> unmovable = alloc_->Get(0, 0, AllocType::kUnmovable);
  ASSERT_TRUE(movable.ok());
  ASSERT_TRUE(unmovable.ok());
  alloc_->DrainReservations();
  const uint64_t movable_tree = *movable / (8 * kFramesPerHuge);
  const uint64_t unmovable_tree = *unmovable / (8 * kFramesPerHuge);

  // A huge-type allocation prefers the partial movable tree over a
  // fresh one (compatible types pack together) ...
  const Result<FrameId> huge = alloc_->Get(0, kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(huge.ok());
  EXPECT_EQ(*huge / (8 * kFramesPerHuge), movable_tree);
  // ... and never lands in the unmovable tree while anything else exists.
  EXPECT_NE(*huge / (8 * kFramesPerHuge), unmovable_tree);
}

TEST_F(LLFreeTest, PerCoreReservationsSeparateTrees) {
  Init(kFrames256MiB, PerCoreConfig(4));
  const Result<FrameId> a = alloc_->Get(0, 0, AllocType::kMovable);
  const Result<FrameId> b = alloc_->Get(1, 0, AllocType::kMovable);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const uint64_t tree_frames = 8 * kFramesPerHuge;
  EXPECT_NE(*a / tree_frames, *b / tree_frames);
}

TEST_F(LLFreeTest, DrainReservationsReleasesTrees) {
  Init(kFrames64MiB);
  ASSERT_TRUE(alloc_->Get(0, 0, AllocType::kMovable).ok());
  const Reservation before =
      alloc_->ReadReservation(static_cast<unsigned>(AllocType::kMovable));
  ASSERT_TRUE(before.active);
  alloc_->DrainReservations();
  const Reservation after =
      alloc_->ReadReservation(static_cast<unsigned>(AllocType::kMovable));
  EXPECT_FALSE(after.active);
  EXPECT_FALSE(alloc_->ReadTree(before.tree).reserved);
  EXPECT_TRUE(alloc_->Validate());
}

// ---------------------------------------------------------------------
// Bilateral (HyperAlloc) operations
// ---------------------------------------------------------------------

TEST_F(LLFreeTest, HardReclaimMakesFrameUnavailable) {
  Init(kFrames16MiB);
  const std::optional<HugeId> huge = alloc_->ReclaimHuge(0, /*hard=*/true);
  ASSERT_TRUE(huge.has_value());
  const AreaEntry entry = alloc_->ReadArea(*huge);
  EXPECT_TRUE(entry.allocated);
  EXPECT_TRUE(entry.evicted);
  EXPECT_EQ(entry.free, 0u);
  EXPECT_EQ(alloc_->FreeFrames(), kFrames16MiB - kFramesPerHuge);
  EXPECT_TRUE(alloc_->Validate());

  // The guest cannot allocate the reclaimed frame; the rest still works.
  std::set<HugeId> allocated_areas;
  for (;;) {
    const Result<FrameId> r = alloc_->Get(0, kHugeOrder, AllocType::kHuge);
    if (!r.ok()) {
      break;
    }
    allocated_areas.insert(FrameToHuge(*r));
  }
  EXPECT_EQ(allocated_areas.size(), 7u);
  EXPECT_EQ(allocated_areas.count(*huge), 0u);
}

TEST_F(LLFreeTest, HardReclaimAllThenNoMemory) {
  Init(kFrames16MiB);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(alloc_->ReclaimHuge(0, /*hard=*/true).has_value());
  }
  EXPECT_FALSE(alloc_->ReclaimHuge(0, /*hard=*/true).has_value());
  EXPECT_EQ(alloc_->FreeFrames(), 0u);
  const Result<FrameId> r = alloc_->Get(0, 0, AllocType::kMovable);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), AllocError::kNoMemory);
  EXPECT_TRUE(alloc_->Validate());
}

TEST_F(LLFreeTest, SoftReclaimKeepsFrameAllocatable) {
  Init(kFrames16MiB);
  const std::optional<HugeId> huge = alloc_->ReclaimHuge(0, /*hard=*/false);
  ASSERT_TRUE(huge.has_value());
  const AreaEntry entry = alloc_->ReadArea(*huge);
  EXPECT_FALSE(entry.allocated);
  EXPECT_TRUE(entry.evicted);
  EXPECT_EQ(entry.free, kFramesPerHuge);
  // Frame count unchanged: soft-reclaimed frames stay logically free.
  EXPECT_EQ(alloc_->FreeFrames(), kFrames16MiB);
  EXPECT_EQ(alloc_->EvictedAreas(), 1u);
  EXPECT_TRUE(alloc_->Validate());
}

TEST_F(LLFreeTest, ReturnTransitionsHardToSoft) {
  Init(kFrames16MiB);
  const std::optional<HugeId> huge = alloc_->ReclaimHuge(0, /*hard=*/true);
  ASSERT_TRUE(huge.has_value());
  EXPECT_TRUE(alloc_->MarkReturned(*huge));
  const AreaEntry entry = alloc_->ReadArea(*huge);
  EXPECT_FALSE(entry.allocated);
  EXPECT_TRUE(entry.evicted);
  EXPECT_EQ(alloc_->FreeFrames(), kFrames16MiB);
  EXPECT_TRUE(alloc_->Validate());

  // Returning twice fails (already soft).
  EXPECT_FALSE(alloc_->MarkReturned(*huge));
}

TEST_F(LLFreeTest, ClearAndSetEvicted) {
  Init(kFrames16MiB);
  EXPECT_FALSE(alloc_->ClearEvicted(0));  // not evicted yet
  EXPECT_TRUE(alloc_->SetEvicted(0));
  EXPECT_FALSE(alloc_->SetEvicted(0));  // idempotence check
  EXPECT_TRUE(alloc_->ReadArea(0).evicted);
  EXPECT_TRUE(alloc_->ClearEvicted(0));
  EXPECT_FALSE(alloc_->ReadArea(0).evicted);
}

TEST_F(LLFreeTest, AllocationPrefersNonEvictedFrames) {
  Init(kFrames16MiB);
  // Soft-reclaim areas 0..5; only 6 and 7 remain backed.
  for (HugeId h = 0; h < 6; ++h) {
    ASSERT_TRUE(alloc_->SetEvicted(h));
  }
  const Result<FrameId> first = alloc_->Get(0, kHugeOrder, AllocType::kHuge);
  const Result<FrameId> second = alloc_->Get(0, kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_GE(FrameToHuge(*first), 6u) << "allocator picked an evicted frame "
                                        "while non-evicted ones existed";
  EXPECT_GE(FrameToHuge(*second), 6u);
  // Third allocation must fall back to an evicted frame.
  const Result<FrameId> third = alloc_->Get(0, kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(third.ok());
  EXPECT_LT(FrameToHuge(*third), 6u);
}

TEST_F(LLFreeTest, InstallHandlerInvokedForEvictedAllocations) {
  Init(kFrames16MiB);
  // Evict everything so the allocation must hit an evicted area.
  for (HugeId h = 0; h < 8; ++h) {
    ASSERT_TRUE(alloc_->SetEvicted(h));
  }
  std::vector<HugeId> installs;
  alloc_->SetInstallHandler([&](HugeId huge) {
    installs.push_back(huge);
    ASSERT_TRUE(alloc_->ClearEvicted(huge));
  });
  const Result<FrameId> frame = alloc_->Get(0, 0, AllocType::kMovable);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(installs.size(), 1u);
  EXPECT_EQ(installs[0], FrameToHuge(*frame));
  EXPECT_FALSE(alloc_->ReadArea(installs[0]).evicted);

  // A second allocation from the same (now installed) area: no install.
  const Result<FrameId> frame2 = alloc_->Get(0, 0, AllocType::kMovable);
  ASSERT_TRUE(frame2.ok());
  EXPECT_EQ(FrameToHuge(*frame2), installs[0]);
  EXPECT_EQ(installs.size(), 1u);
}

TEST_F(LLFreeTest, InstallTriggeredForEvictedHugeAllocation) {
  Init(kFrames16MiB);
  for (HugeId h = 0; h < 8; ++h) {
    ASSERT_TRUE(alloc_->SetEvicted(h));
  }
  int installs = 0;
  alloc_->SetInstallHandler([&](HugeId huge) {
    ++installs;
    alloc_->ClearEvicted(huge);
  });
  const Result<FrameId> frame = alloc_->Get(0, kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(installs, 1);
}

TEST_F(LLFreeTest, WithoutHandlerEvictedHintClearsLocally) {
  Init(kFrames16MiB);
  for (HugeId h = 0; h < 8; ++h) {
    ASSERT_TRUE(alloc_->SetEvicted(h));
  }
  const Result<FrameId> frame = alloc_->Get(0, 0, AllocType::kMovable);
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(alloc_->ReadArea(FrameToHuge(*frame)).evicted);
}

TEST_F(LLFreeTest, ReclaimSkipsReservedTrees) {
  Init(kFrames16MiB);  // single tree
  // Reserve the only tree by allocating from it.
  ASSERT_TRUE(alloc_->Get(0, 0, AllocType::kMovable).ok());
  EXPECT_TRUE(alloc_->ReadTree(0).reserved);
  EXPECT_FALSE(alloc_->ReclaimHuge(0, /*hard=*/true).has_value());
  EXPECT_TRUE(alloc_->ReclaimHuge(0, /*hard=*/true, /*allow_reserved=*/true)
                  .has_value());
  EXPECT_TRUE(alloc_->Validate());
}

TEST_F(LLFreeTest, ReclaimHonorsStartHint) {
  Init(kFrames64MiB);
  const std::optional<HugeId> huge = alloc_->ReclaimHuge(17, /*hard=*/true);
  ASSERT_TRUE(huge.has_value());
  EXPECT_EQ(*huge, 17u);
}

TEST_F(LLFreeTest, ReclaimWrapsAroundHint) {
  Init(kFrames64MiB);
  // Occupy all areas except area 3 with huge allocations.
  std::vector<FrameId> held;
  for (;;) {
    const Result<FrameId> r = alloc_->Get(0, kHugeOrder, AllocType::kHuge);
    if (!r.ok()) {
      break;
    }
    held.push_back(*r);
  }
  ASSERT_FALSE(held.empty());
  const FrameId released = held.back();
  held.pop_back();
  ASSERT_FALSE(alloc_->Put(released, kHugeOrder).has_value());
  alloc_->DrainReservations();  // make its tree reclaimable
  const std::optional<HugeId> huge =
      alloc_->ReclaimHuge(FrameToHuge(released) + 1, /*hard=*/true);
  ASSERT_TRUE(huge.has_value());
  EXPECT_EQ(*huge, FrameToHuge(released));
}

TEST_F(LLFreeTest, MonitorViewSharesState) {
  Init(kFrames16MiB);
  // The hypervisor's clone over the same state (paper §4.2).
  LLFree monitor(state_.get());
  const std::optional<HugeId> huge = monitor.ReclaimHuge(0, /*hard=*/true);
  ASSERT_TRUE(huge.has_value());
  // The guest view observes the transition immediately.
  EXPECT_TRUE(alloc_->ReadArea(*huge).allocated);
  EXPECT_TRUE(alloc_->ReadArea(*huge).evicted);
  EXPECT_EQ(alloc_->FreeFrames(), kFrames16MiB - kFramesPerHuge);
  // And vice versa: guest allocations are visible to the monitor.
  const Result<FrameId> frame = alloc_->Get(0, kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(monitor.ReadArea(FrameToHuge(*frame)).allocated);
}

// ---------------------------------------------------------------------
// Counters and fragmentation behaviour
// ---------------------------------------------------------------------

TEST_F(LLFreeTest, UsedHugeAreasTracksPartialUse) {
  Init(kFrames64MiB);
  EXPECT_EQ(alloc_->UsedHugeAreas(), 0u);
  const Result<FrameId> f = alloc_->Get(0, 0, AllocType::kMovable);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(alloc_->UsedHugeAreas(), 1u);  // one area partially used
  const std::optional<HugeId> reclaimed =
      alloc_->ReclaimHuge(FrameToHuge(*f) + 1, /*hard=*/true,
                          /*allow_reserved=*/true);
  ASSERT_TRUE(reclaimed.has_value());
  // Hard-reclaimed areas are not "used by the guest".
  EXPECT_EQ(alloc_->UsedHugeAreas(), 1u);
}

TEST_F(LLFreeTest, CompactAllocationKeepsHugeFramesAvailable) {
  // LLFree's hallmark (vs buddy): small allocations are packed into few
  // areas, keeping the other huge frames fully free.
  Init(kFrames64MiB);
  std::vector<FrameId> frames;
  for (int i = 0; i < 1000; ++i) {
    const Result<FrameId> r = alloc_->Get(0, 0, AllocType::kMovable);
    ASSERT_TRUE(r.ok());
    frames.push_back(*r);
  }
  // 1000 frames fit into ceil(1000/512)=2 areas when perfectly packed.
  EXPECT_LE(alloc_->UsedHugeAreas(), 2u);
  EXPECT_GE(alloc_->FreeHugeFrames(), 30u);
}

TEST_F(LLFreeTest, TypeSeparationAvoidsHugeFragmentation) {
  // Mixed-lifetime allocations of different types must not share trees,
  // so freeing the short-lived type releases whole huge frames (§4.2).
  Init(kFrames256MiB);
  std::vector<FrameId> kernel;   // long-lived unmovable
  std::vector<FrameId> user;     // short-lived movable
  Rng rng(99);
  for (int i = 0; i < 4000; ++i) {
    const AllocType type =
        (i % 8 == 0) ? AllocType::kUnmovable : AllocType::kMovable;
    const Result<FrameId> r = alloc_->Get(0, 0, type);
    ASSERT_TRUE(r.ok());
    (type == AllocType::kUnmovable ? kernel : user).push_back(*r);
  }
  for (const FrameId f : user) {
    ASSERT_FALSE(alloc_->Put(f, 0).has_value());
  }
  // All user frames gone; only the 500 kernel frames remain. They should
  // be packed into very few areas, leaving nearly everything huge-free.
  const uint64_t used = alloc_->UsedHugeAreas();
  EXPECT_LE(used, 4u) << "kernel allocations should be segregated";
  EXPECT_GE(alloc_->FreeHugeFrames(), alloc_->num_areas() - 4);
  EXPECT_TRUE(alloc_->Validate());
}

// ---------------------------------------------------------------------
// Crash recovery (persistence support)
// ---------------------------------------------------------------------

TEST_F(LLFreeTest, RecoverOnCleanStateIsNoop) {
  Init(kFrames64MiB);
  ASSERT_TRUE(alloc_->Get(0, 0, AllocType::kMovable).ok());
  alloc_->DrainReservations();
  EXPECT_EQ(alloc_->Recover(), 0u);
  EXPECT_TRUE(alloc_->Validate());
}

TEST_F(LLFreeTest, RecoverRebuildsCorruptedCounters) {
  Init(kFrames64MiB);
  std::vector<FrameId> held;
  for (int i = 0; i < 700; ++i) {
    const Result<FrameId> r = alloc_->Get(0, 0, AllocType::kMovable);
    ASSERT_TRUE(r.ok());
    held.push_back(*r);
  }
  const Result<FrameId> huge = alloc_->Get(0, kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(huge.ok());
  const uint64_t free_before = alloc_->FreeFrames();

  // Crash: scribble over the cached counters (the bit field and the
  // allocated flags are the durable truth).
  llfree::AreaEntry bogus;
  bogus.free = 7;
  state_->areas()[0].store(bogus.Pack(), std::memory_order_relaxed);
  state_->trees()[1].store(llfree::TreeEntry{}.Pack(),
                           std::memory_order_relaxed);
  EXPECT_FALSE(alloc_->Validate());

  EXPECT_GT(alloc_->Recover(), 0u);
  EXPECT_TRUE(alloc_->Validate());
  EXPECT_EQ(alloc_->FreeFrames(), free_before);

  // The allocator is fully usable again: free everything and re-check.
  for (const FrameId f : held) {
    ASSERT_FALSE(alloc_->Put(f, 0).has_value());
  }
  ASSERT_FALSE(alloc_->Put(*huge, kHugeOrder).has_value());
  EXPECT_EQ(alloc_->FreeFrames(), kFrames64MiB);
}

TEST_F(LLFreeTest, RecoverPreservesEvictedHintsAndHugeAllocations) {
  Init(kFrames64MiB);
  ASSERT_TRUE(alloc_->SetEvicted(3));
  const std::optional<HugeId> hard = alloc_->ReclaimHuge(5, /*hard=*/true);
  ASSERT_TRUE(hard.has_value());
  // Corrupt the hard-reclaimed area's counter (A must survive recovery).
  llfree::AreaEntry corrupt = alloc_->ReadArea(*hard);
  corrupt.free = 100;
  state_->areas()[*hard].store(corrupt.Pack(), std::memory_order_relaxed);

  alloc_->Recover();
  EXPECT_TRUE(alloc_->ReadArea(3).evicted);
  EXPECT_TRUE(alloc_->ReadArea(*hard).allocated);
  EXPECT_TRUE(alloc_->ReadArea(*hard).evicted);
  EXPECT_EQ(alloc_->ReadArea(*hard).free, 0u);
  EXPECT_TRUE(alloc_->Validate());
}

TEST_F(LLFreeTest, RecoverAfterCrashMidChurn) {
  // Random workload, then a simulated crash leaves reservations dangling
  // and some counters stale; Recover must restore full consistency.
  Init(kFrames256MiB);
  Rng rng(31);
  std::vector<std::pair<FrameId, unsigned>> live;
  for (int i = 0; i < 5000; ++i) {
    if (rng.Chance(0.6)) {
      const unsigned order = rng.Chance(0.2) ? kHugeOrder : 0;
      const Result<FrameId> r = alloc_->Get(0, order, AllocType::kMovable);
      if (r.ok()) {
        live.emplace_back(*r, order);
      }
    } else if (!live.empty()) {
      const size_t idx = rng.Below(live.size());
      ASSERT_FALSE(
          alloc_->Put(live[idx].first, live[idx].second).has_value());
      live[idx] = live.back();
      live.pop_back();
    }
  }
  // "Crash": clobber a few tree entries (reservations stay dangling).
  for (uint64_t t = 0; t < alloc_->num_trees(); t += 3) {
    llfree::TreeEntry bogus;
    bogus.free = 1;
    bogus.reserved = true;
    state_->trees()[t].store(bogus.Pack(), std::memory_order_relaxed);
  }
  alloc_->Recover();
  EXPECT_TRUE(alloc_->Validate());
  for (const auto& [frame, order] : live) {
    ASSERT_FALSE(alloc_->Put(frame, order).has_value());
  }
  EXPECT_EQ(alloc_->FreeFrames(), kFrames256MiB);
  EXPECT_TRUE(alloc_->Validate());
}

// ---------------------------------------------------------------------
// Randomized property tests
// ---------------------------------------------------------------------

struct PropertyParam {
  Config::ReservationMode mode;
  unsigned areas_per_tree;
  const char* name;
};

class LLFreePropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(LLFreePropertyTest, RandomOpsPreserveInvariants) {
  Config config;
  config.mode = GetParam().mode;
  config.cores = 4;
  config.areas_per_tree = GetParam().areas_per_tree;
  SharedState state(kFrames64MiB, config);
  LLFree alloc(&state);

  Rng rng(2024);
  // (frame, order) of live allocations.
  std::vector<std::pair<FrameId, unsigned>> live;
  std::vector<HugeId> hard_reclaimed;
  uint64_t allocated_frames = 0;

  for (int step = 0; step < 20000; ++step) {
    const unsigned core = static_cast<unsigned>(rng.Below(4));
    const uint64_t dice = rng.Below(100);
    if (dice < 45) {  // allocate
      static constexpr unsigned kOrders[] = {0, 0, 0, 1, 2, 3, 6, 9};
      const unsigned order = kOrders[rng.Below(8)];
      const AllocType type = static_cast<AllocType>(rng.Below(3));
      const Result<FrameId> r = alloc.Get(core, order, type);
      if (r.ok()) {
        live.emplace_back(*r, order);
        allocated_frames += 1ull << order;
      }
    } else if (dice < 85) {  // free
      if (!live.empty()) {
        const size_t idx = rng.Below(live.size());
        const auto [frame, order] = live[idx];
        live[idx] = live.back();
        live.pop_back();
        ASSERT_FALSE(alloc.Put(frame, order).has_value());
        allocated_frames -= 1ull << order;
      }
    } else if (dice < 92) {  // hypervisor reclaim
      const bool hard = rng.Chance(0.5);
      const std::optional<HugeId> h =
          alloc.ReclaimHuge(rng.Below(alloc.num_areas()), hard);
      if (h.has_value() && hard) {
        hard_reclaimed.push_back(*h);
      }
    } else if (dice < 97) {  // hypervisor return
      if (!hard_reclaimed.empty()) {
        const size_t idx = rng.Below(hard_reclaimed.size());
        ASSERT_TRUE(alloc.MarkReturned(hard_reclaimed[idx]));
        hard_reclaimed[idx] = hard_reclaimed.back();
        hard_reclaimed.pop_back();
      }
    } else {  // install
      for (uint64_t a = 0; a < alloc.num_areas(); ++a) {
        const AreaEntry e = alloc.ReadArea(a);
        if (e.evicted && !e.allocated) {
          alloc.ClearEvicted(a);
          break;
        }
      }
    }
  }

  // Invariants at quiescence.
  ASSERT_TRUE(alloc.Validate());
  const uint64_t reclaimed_frames = hard_reclaimed.size() * kFramesPerHuge;
  EXPECT_EQ(alloc.FreeFrames(),
            kFrames64MiB - allocated_frames - reclaimed_frames);

  // Free everything; memory must be fully recovered.
  for (const auto& [frame, order] : live) {
    ASSERT_FALSE(alloc.Put(frame, order).has_value());
  }
  for (const HugeId h : hard_reclaimed) {
    ASSERT_TRUE(alloc.MarkReturned(h));
  }
  EXPECT_EQ(alloc.FreeFrames(), kFrames64MiB);
  EXPECT_TRUE(alloc.Validate());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, LLFreePropertyTest,
    ::testing::Values(
        PropertyParam{Config::ReservationMode::kPerType, 8, "per_type_8"},
        PropertyParam{Config::ReservationMode::kPerType, 32, "per_type_32"},
        PropertyParam{Config::ReservationMode::kPerCore, 8, "per_core_8"},
        PropertyParam{Config::ReservationMode::kPerCore, 32, "per_core_32"}),
    [](const ::testing::TestParamInfo<PropertyParam>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace hyperalloc::llfree
