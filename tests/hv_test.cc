// Tests for the hypervisor substrate: host memory pool, EPT, IOMMU, and
// the reclamation-state array.
#include <gtest/gtest.h>

#include "src/core/reclaim_states.h"
#include "src/hv/cost_model.h"
#include "src/hv/ept.h"
#include "src/hv/host_memory.h"
#include "src/hv/iommu.h"

namespace hyperalloc {
namespace {

TEST(HostMemory, ReserveRelease) {
  hv::HostMemory host(1000);
  EXPECT_TRUE(host.TryReserve(600));
  EXPECT_EQ(host.used_frames(), 600u);
  EXPECT_EQ(host.free_frames(), 400u);
  EXPECT_FALSE(host.TryReserve(500)) << "overcommit must be rejected";
  EXPECT_EQ(host.used_frames(), 600u);
  host.Release(100);
  EXPECT_TRUE(host.TryReserve(500));
  EXPECT_EQ(host.used_frames(), 1000u);
}

TEST(HostMemory, PeakTracking) {
  hv::HostMemory host(1000);
  host.TryReserve(700);
  host.Release(600);
  host.TryReserve(200);
  EXPECT_EQ(host.peak_frames(), 700u);
  host.TryReserve(600);
  EXPECT_EQ(host.peak_frames(), 900u);
}

TEST(HostMemory, SnapshotIsConsistent) {
  hv::HostMemory host(1000);
  host.TryReserve(300);
  const hv::MemorySnapshot snap = host.snapshot();
  EXPECT_EQ(snap.total, 1000u);
  EXPECT_EQ(snap.used, 300u);
  EXPECT_EQ(snap.free, 700u);
  EXPECT_GE(snap.peak, snap.used);
}

TEST(Ept, MapUnmapAndRss) {
  hv::HostMemory host(10000);
  hv::Ept ept(8192, &host);
  EXPECT_EQ(ept.mapped_frames(), 0u);
  EXPECT_EQ(ept.Map(100, 50), 50u);
  EXPECT_EQ(ept.mapped_frames(), 50u);
  EXPECT_EQ(ept.rss_bytes(), 50 * kFrameSize);
  EXPECT_EQ(host.used_frames(), 50u);
  // Overlapping map only reserves the missing part.
  EXPECT_EQ(ept.Map(120, 50), 20u);
  EXPECT_EQ(ept.mapped_frames(), 70u);
  EXPECT_EQ(ept.Unmap(100, 70), 70u);
  EXPECT_EQ(ept.mapped_frames(), 0u);
  EXPECT_EQ(host.used_frames(), 0u);
}

TEST(Ept, CountMappedWordBoundaries) {
  hv::Ept ept(1024, nullptr);
  ept.Map(60, 10);  // straddles the first 64-bit word boundary
  EXPECT_EQ(ept.CountMapped(0, 1024), 10u);
  EXPECT_EQ(ept.CountMapped(60, 10), 10u);
  EXPECT_EQ(ept.CountMapped(0, 60), 0u);
  EXPECT_EQ(ept.CountMapped(64, 6), 6u);
  EXPECT_EQ(ept.CountMapped(63, 2), 2u);
  EXPECT_TRUE(ept.IsMapped(69));
  EXPECT_FALSE(ept.IsMapped(70));
}

TEST(Ept, HostExhaustionLeavesStateUnchanged) {
  hv::HostMemory host(10);
  hv::Ept ept(1024, &host);
  EXPECT_EQ(ept.Map(0, 64), hv::Ept::kNoHostMemory);
  EXPECT_EQ(ept.mapped_frames(), 0u);
  EXPECT_EQ(host.used_frames(), 0u);
  EXPECT_EQ(ept.Map(0, 10), 10u);
}

TEST(Ept, UnmapAbsentIsFree) {
  hv::Ept ept(1024, nullptr);
  EXPECT_EQ(ept.Unmap(0, 512), 0u);
  EXPECT_EQ(ept.total_unmapped_ops(), 0u);
}

TEST(Iommu, PinUnpinAndDma) {
  hv::Iommu iommu(4096);  // 8 huge frames
  EXPECT_EQ(iommu.num_huge(), 8u);
  EXPECT_FALSE(iommu.DmaAccessOk(0));
  EXPECT_TRUE(iommu.Pin(0));
  EXPECT_FALSE(iommu.Pin(0)) << "double pin is a no-op";
  EXPECT_TRUE(iommu.DmaAccessOk(511));
  EXPECT_FALSE(iommu.DmaAccessOk(512));
  EXPECT_TRUE(iommu.Unpin(0));
  EXPECT_FALSE(iommu.Unpin(0));
  EXPECT_EQ(iommu.iotlb_flushes(), 1u);
  EXPECT_EQ(iommu.pinned_huge(), 0u);
}

TEST(Iommu, RangeUnpinCoalescesFlushes) {
  hv::Iommu iommu(8 * 512);  // 8 huge frames
  EXPECT_EQ(iommu.PinRange(0, 8), 8u);
  // A contiguous 8-huge unpin costs one IOTLB invalidation, not eight.
  EXPECT_EQ(iommu.UnpinRange(0, 8), 8u);
  EXPECT_EQ(iommu.iotlb_flushes(), 1u);
  EXPECT_EQ(iommu.iotlb_flushed_huge(), 8u);
  EXPECT_EQ(iommu.pinned_huge(), 0u);
  // Unpinning an already-unpinned range changes nothing and flushes
  // nothing.
  EXPECT_EQ(iommu.UnpinRange(0, 8), 0u);
  EXPECT_EQ(iommu.iotlb_flushes(), 1u);
}

TEST(Ept, RangeUnmapCoalescesTlbFlushes) {
  hv::HostMemory host(10000);
  hv::Ept ept(8192, &host);
  ept.Map(0, 512);
  EXPECT_EQ(ept.Unmap(0, 512), 512u);
  EXPECT_EQ(ept.tlb_range_flushes(), 1u);
  EXPECT_EQ(ept.tlb_flushed_frames(), 512u);
  // Unmapping absent ranges does not flush.
  EXPECT_EQ(ept.Unmap(0, 512), 0u);
  EXPECT_EQ(ept.tlb_range_flushes(), 1u);
}

TEST(ReclaimStates, PackedTwoBitStorage) {
  core::ReclaimStateArray states(100);
  EXPECT_EQ(states.Get(0), core::ReclaimState::kInstalled);
  states.Set(0, core::ReclaimState::kHard);
  states.Set(1, core::ReclaimState::kSoft);
  states.Set(99, core::ReclaimState::kHard);
  EXPECT_EQ(states.Get(0), core::ReclaimState::kHard);
  EXPECT_EQ(states.Get(1), core::ReclaimState::kSoft);
  EXPECT_EQ(states.Get(2), core::ReclaimState::kInstalled);
  EXPECT_EQ(states.Get(99), core::ReclaimState::kHard);
  EXPECT_EQ(states.CountState(core::ReclaimState::kHard), 2u);
  EXPECT_EQ(states.CountState(core::ReclaimState::kSoft), 1u);
}

TEST(ReclaimStates, OverwriteClearsOldBits) {
  core::ReclaimStateArray states(32);
  states.Set(5, core::ReclaimState::kHard);  // 0b10
  states.Set(5, core::ReclaimState::kSoft);  // 0b01: both bits change
  EXPECT_EQ(states.Get(5), core::ReclaimState::kSoft);
  states.Set(5, core::ReclaimState::kInstalled);
  EXPECT_EQ(states.Get(5), core::ReclaimState::kInstalled);
}

TEST(ReclaimStates, ScanFootprintMatchesPaperFormula) {
  // §3.3: 2 bits of R per huge frame; 1 GiB = 512 huge frames = 128 B of
  // R state = 2 cache lines, plus 16 cache lines for the area index.
  core::ReclaimStateArray states(512);
  EXPECT_EQ(states.ByteSize(), 128u);
  const uint64_t r_lines = (states.ByteSize() + 63) / 64;
  const uint64_t area_lines = (512 * 2 + 63) / 64;
  EXPECT_EQ(r_lines + area_lines, 18u) << "18 cache lines per GiB (§3.3)";
}

TEST(CostModel, PaperCalibrationPoints) {
  const hv::CostModel costs;
  // §5.3 measured rates (these anchor the virtual-time calibration).
  EXPECT_EQ(costs.ha_reclaim_state_2m_ns, 388u);
  EXPECT_EQ(costs.ha_return_state_2m_ns, 229u);
  // Install hypercall ~6 % more expensive than an EPT fault.
  EXPECT_NEAR(static_cast<double>(costs.install_hypercall_2m_ns),
              1.06 * static_cast<double>(costs.ept_fault_2m_ns), 100.0);
  // Mapped-page writes at 17 GiB/s => 229 ns per 4 KiB.
  EXPECT_EQ(costs.touch_4k_ns, 229u);
}

}  // namespace
}  // namespace hyperalloc
