// Tests for the virtqueue batching model.
#include <gtest/gtest.h>

#include <vector>

#include "src/virtio/virtqueue.h"

namespace hyperalloc::virtio {
namespace {

class VirtqueueTest : public ::testing::Test {
 protected:
  VirtqueueTest() : vq_(&sim_, &costs_, 4) {
    vq_.SetConsumer([this](std::span<const uint64_t> batch) {
      batches_.emplace_back(batch.begin(), batch.end());
    });
  }

  sim::Simulation sim_;
  hv::CostModel costs_;
  Virtqueue vq_;
  std::vector<std::vector<uint64_t>> batches_;
};

TEST_F(VirtqueueTest, AutoKickWhenFull) {
  for (uint64_t i = 0; i < 4; ++i) {
    vq_.Push(i);
  }
  ASSERT_EQ(batches_.size(), 1u);
  EXPECT_EQ(batches_[0], (std::vector<uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(vq_.total_hypercalls(), 1u);
  EXPECT_EQ(vq_.total_elements(), 4u);
}

TEST_F(VirtqueueTest, ManualKickFlushesPartialBatch) {
  vq_.Push(7);
  EXPECT_TRUE(batches_.empty());
  vq_.Kick();
  ASSERT_EQ(batches_.size(), 1u);
  EXPECT_EQ(batches_[0], (std::vector<uint64_t>{7}));
}

TEST_F(VirtqueueTest, EmptyKickIsFree) {
  const sim::Time before = sim_.now();
  vq_.Kick();
  EXPECT_EQ(sim_.now(), before);
  EXPECT_EQ(vq_.total_hypercalls(), 0u);
}

TEST_F(VirtqueueTest, CostsChargedToClock) {
  const sim::Time before = sim_.now();
  for (uint64_t i = 0; i < 4; ++i) {
    vq_.Push(i);
  }
  // 4 element costs + 1 hypercall.
  EXPECT_EQ(sim_.now() - before,
            4 * costs_.virtqueue_element_ns + costs_.hypercall_ns);
}

TEST_F(VirtqueueTest, MultipleBatchesKeepOrder) {
  for (uint64_t i = 0; i < 10; ++i) {
    vq_.Push(i);
  }
  vq_.Kick();
  ASSERT_EQ(batches_.size(), 3u);
  EXPECT_EQ(batches_[2], (std::vector<uint64_t>{8, 9}));
  EXPECT_EQ(vq_.total_hypercalls(), 3u);
}

}  // namespace
}  // namespace hyperalloc::virtio
