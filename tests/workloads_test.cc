// Tests for the workload generators: memory pool, STREAM, FTQ, compile,
// blender, SPEC preparation, and the interference hub.
#include <gtest/gtest.h>

#include "src/workloads/blender.h"
#include "src/workloads/compile.h"
#include "src/workloads/ftq.h"
#include "src/workloads/interference_hub.h"
#include "src/workloads/memory_pool.h"
#include "src/workloads/spec_prep.h"
#include "src/workloads/stream.h"

namespace hyperalloc::workloads {
namespace {

class WorkloadsTest : public ::testing::Test {
 protected:
  void Init(uint64_t memory = kGiB) {
    sim_ = std::make_unique<sim::Simulation>();
    host_ = std::make_unique<hv::HostMemory>(FramesForBytes(8 * kGiB));
    guest::GuestConfig config;
    config.memory_bytes = memory;
    config.vcpus = 4;
    config.dma32_bytes = 0;
    vm_ = std::make_unique<guest::GuestVm>(sim_.get(), host_.get(), config);
    pool_ = std::make_unique<MemoryPool>(vm_.get());
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<hv::HostMemory> host_;
  std::unique_ptr<guest::GuestVm> vm_;
  std::unique_ptr<MemoryPool> pool_;
};

TEST_F(WorkloadsTest, PoolAllocTouchesAndFrees) {
  Init();
  const uint64_t region = pool_->AllocRegion(64 * kMiB, 0.5, 0);
  EXPECT_EQ(pool_->RegionBytes(region), 64 * kMiB);
  EXPECT_EQ(pool_->TotalBytes(), 64 * kMiB);
  EXPECT_EQ(vm_->rss_bytes() % kHugeSize, 0u);  // THP-granular population
  EXPECT_GE(vm_->rss_bytes(), 64 * kMiB);
  pool_->FreeRegion(region, 0);
  EXPECT_EQ(pool_->TotalBytes(), 0u);
  EXPECT_EQ(vm_->FreeFrames(), vm_->total_frames());
}

TEST_F(WorkloadsTest, PoolThpFallbackOnFragmentation) {
  Init();
  // Consume everything, then free scattered 4 KiB holes: no huge frames
  // remain, but a THP-heavy region must still allocate via base pages.
  const uint64_t big = pool_->AllocRegion(kGiB, 0.0, 0);
  ASSERT_EQ(pool_->RegionBytes(big), kGiB);
  pool_->FreeRegion(big, 0);
  // Allocate every 512th frame to break all huge frames.
  std::vector<FrameId> pins;
  for (FrameId f = 0; f < vm_->total_frames(); f += kFramesPerHuge) {
    const Result<FrameId> r = vm_->Alloc(0, AllocType::kUnmovable, 0);
    ASSERT_TRUE(r.ok());
    pins.push_back(*r);
  }
  const uint64_t thp_region = pool_->AllocRegion(128 * kMiB, 1.0, 0);
  EXPECT_EQ(pool_->RegionBytes(thp_region), 128 * kMiB)
      << "THP fallback should deliver base frames";
}

TEST_F(WorkloadsTest, PoolGrowRegion) {
  Init();
  const uint64_t region = pool_->AllocRegion(8 * kMiB, 0.0, 0);
  EXPECT_EQ(pool_->RegionBytes(region), 8 * kMiB);
  pool_->GrowRegion(region, 8 * kMiB, 0.5, 0);
  EXPECT_EQ(pool_->RegionBytes(region), 16 * kMiB);
  // One free releases all increments.
  pool_->FreeRegion(region, 0);
  EXPECT_EQ(vm_->FreeFrames(), vm_->total_frames());
}

TEST_F(WorkloadsTest, ConcurrentJobsInterleaveMemory) {
  // Incremental working sets: two jobs growing in alternation end up
  // with interleaved frames (the fragmentation driver of real builds).
  Init();
  const uint64_t a = pool_->AllocRegion(kMiB, 0.0, 0);
  const uint64_t b = pool_->AllocRegion(kMiB, 0.0, 0);
  for (int step = 0; step < 4; ++step) {
    pool_->GrowRegion(a, kMiB, 0.0, 0);
    pool_->GrowRegion(b, kMiB, 0.0, 0);
  }
  EXPECT_EQ(pool_->RegionBytes(a), 5 * kMiB);
  EXPECT_EQ(pool_->RegionBytes(b), 5 * kMiB);
  pool_->FreeRegion(a, 0);
  pool_->FreeRegion(b, 0);
  EXPECT_EQ(vm_->FreeFrames(), vm_->total_frames());
}

TEST_F(WorkloadsTest, PoolFreeAll) {
  Init();
  pool_->AllocRegion(16 * kMiB, 0.0, 0);
  pool_->AllocRegion(16 * kMiB, 0.5, 0);
  EXPECT_EQ(pool_->NumRegions(), 2u);
  pool_->FreeAll(0);
  EXPECT_EQ(pool_->NumRegions(), 0u);
  EXPECT_EQ(vm_->FreeFrames(), vm_->total_frames());
}

TEST_F(WorkloadsTest, SpecPrepRandomizesAndTouches) {
  Init(2 * kGiB);
  SpecPrepConfig config;
  config.peak_bytes = kGiB;
  config.cache_bytes = 256 * kMiB;
  config.residual_fraction = 0.1;
  SpecPrep(vm_.get(), pool_.get(), config);
  // Cache present, residual allocations live, most memory touched.
  EXPECT_EQ(vm_->cache_bytes(), 256 * kMiB);
  EXPECT_GT(pool_->TotalBytes(), 0u);
  EXPECT_GT(vm_->rss_bytes(), kGiB / 2);
  EXPECT_LT(vm_->FreeFrames(), vm_->total_frames());
}

TEST(StreamModel, BaselineBandwidthMatchesTable2) {
  EXPECT_DOUBLE_EQ(StreamAggregateBandwidth(1), 10.3);
  EXPECT_DOUBLE_EQ(StreamAggregateBandwidth(4), 26.0);
  EXPECT_DOUBLE_EQ(StreamAggregateBandwidth(12), 69.0);
  // Interpolation is monotone in between.
  EXPECT_GT(StreamAggregateBandwidth(8), 26.0);
  EXPECT_LT(StreamAggregateBandwidth(8), 69.0);
}

TEST(StreamModel, UndisturbedRunReportsBaseline) {
  sim::Simulation sim;
  StreamConfig config;
  config.threads = 4;
  config.vcpus = 4;
  config.iterations = 5;
  StreamWorkload stream(&sim, config);
  bool done = false;
  stream.Start([&] { done = true; });
  while (!done) {
    ASSERT_TRUE(sim.Step());
  }
  ASSERT_EQ(stream.samples().points().size(), 20u);
  for (const auto& p : stream.samples().points()) {
    EXPECT_NEAR(p.value, 26.0 / 4, 0.5);
  }
}

TEST(StreamModel, BandwidthLoadSlowsIterations) {
  sim::Simulation sim;
  StreamConfig config;
  config.threads = 1;
  config.vcpus = 4;
  config.iterations = 20;
  StreamWorkload stream(&sim, config);
  // Halve the available bandwidth for a mid-run window.
  for (sim::CapacityTimeline* bw : stream.bandwidth_timelines()) {
    bw->AddLoad(sim::kSec, 3 * sim::kSec, bw->base_capacity() * 0.5);
  }
  bool done = false;
  stream.Start([&] { done = true; });
  while (!done) {
    ASSERT_TRUE(sim.Step());
  }
  double min = 1e9;
  for (const auto& p : stream.samples().points()) {
    min = std::min(min, p.value);
  }
  EXPECT_LT(min, 6.0) << "iterations inside the load window must be slow";
}

TEST(FtqModel, WorkTracksCpuAvailability) {
  sim::Simulation sim;
  FtqConfig config;
  config.threads = 2;
  config.vcpus = 2;
  config.samples = 20;
  FtqWorkload ftq(&sim, config);
  // Steal half of cpu 0 for a window covering samples ~5-10.
  ftq.vcpus().StealCpu(0, 5 * config.quantum, 10 * config.quantum, 0.5);
  bool done = false;
  ftq.Start([&] { done = true; });
  while (!done) {
    ASSERT_TRUE(sim.Step());
  }
  const auto& points = ftq.samples().points();
  ASSERT_EQ(points.size(), 20u);
  EXPECT_NEAR(points[1].value, 2 * config.work_per_quantum, 1e3);
  EXPECT_NEAR(points[7].value, 1.5 * config.work_per_quantum, 1e3);
  EXPECT_NEAR(points[15].value, 2 * config.work_per_quantum, 1e3);
}

TEST_F(WorkloadsTest, CompileRunsToCompletion) {
  Init(4 * kGiB);
  CompileConfig config;
  config.workers = 4;
  config.compile_units = 30;
  config.link_jobs = 2;
  config.unit_ws_min = 8 * kMiB;
  config.unit_ws_max = 32 * kMiB;
  config.link_ws_min = 64 * kMiB;
  config.link_ws_max = 128 * kMiB;
  config.slab_per_job = kMiB;
  CompileWorkload compile(vm_.get(), pool_.get(), nullptr, config);
  bool done = false;
  compile.Start([&] { done = true; });
  while (!done) {
    ASSERT_TRUE(sim_->Step());
  }
  EXPECT_EQ(compile.jobs_completed(), 32u);
  EXPECT_GT(vm_->cache_bytes(), 0u);
  EXPECT_GT(compile.artifact_bytes(), 0u);
  const uint64_t cache_before = vm_->cache_bytes();
  compile.MakeClean();
  EXPECT_LT(vm_->cache_bytes(), cache_before);
  EXPECT_EQ(vm_->oom_events(), 0u);
}

TEST_F(WorkloadsTest, CompileStretchesWithCpuSteal) {
  Init(4 * kGiB);
  CompileConfig config;
  config.workers = 2;
  config.compile_units = 10;
  config.link_jobs = 0;
  config.unit_ws_min = 4 * kMiB;
  config.unit_ws_max = 8 * kMiB;
  config.unit_time_min = 1 * sim::kSec;
  config.unit_time_max = 1 * sim::kSec;
  config.slab_per_job = 0;

  // Run once unloaded, once with half the CPU stolen.
  sim::Time unloaded = 0;
  sim::Time loaded = 0;
  for (const bool steal : {false, true}) {
    Init(4 * kGiB);
    sim::VcpuSet vcpus(2);
    if (steal) {
      for (unsigned c = 0; c < 2; ++c) {
        vcpus.StealCpu(c, 0, 60 * sim::kSec, 0.5);
      }
    }
    CompileWorkload compile(vm_.get(), pool_.get(), &vcpus, config);
    const sim::Time start = sim_->now();
    bool done = false;
    compile.Start([&] { done = true; });
    while (!done) {
      ASSERT_TRUE(sim_->Step());
    }
    (steal ? loaded : unloaded) = sim_->now() - start;
  }
  EXPECT_GT(loaded, unloaded * 3 / 2) << "stolen CPU must stretch the build";
}

TEST_F(WorkloadsTest, BlenderRunFreesWorkingSetKeepsResidue) {
  Init(4 * kGiB);
  BlenderConfig config;
  config.scene_bytes = 64 * kMiB;
  config.working_set = kGiB;
  config.rampup_steps = 4;
  config.render_time = 20 * sim::kSec;
  config.churn_interval = 2 * sim::kSec;
  config.slab_alloc_per_tick = 4 * kMiB;
  BlenderWorkload blender(vm_.get(), pool_.get(), config);
  bool done = false;
  blender.Run([&] { done = true; });
  while (!done) {
    ASSERT_TRUE(sim_->Step());
  }
  // Working set gone; cache + slab survivors remain.
  EXPECT_EQ(vm_->cache_bytes(), 64 * kMiB);
  const uint64_t residue =
      vm_->AllocatedFrames() * kFrameSize - vm_->cache_bytes();
  EXPECT_GT(residue, 0u);
  EXPECT_LT(residue, 64 * kMiB);  // ~20 % of the slab churn survives
}

TEST(InterferenceHub, RoutesStealsAndIpis) {
  sim::VcpuSet vcpus(2);
  InterferenceHub hub(&vcpus, {}, /*workload_threads=*/2);
  hub.OnCpuSteal(0, 0, 1000, 1.0);
  EXPECT_DOUBLE_EQ(vcpus.cpu(0).CapacityAt(500), 0.5);  // CFS fair share
  hub.OnAllCpusSteal(2000, 3000, 0.4);
  EXPECT_DOUBLE_EQ(vcpus.cpu(1).CapacityAt(2500), 0.6);
}

TEST(InterferenceHub, DriverMovesToIdleCpu) {
  sim::VcpuSet vcpus(4);
  InterferenceHub hub(&vcpus, {}, /*workload_threads=*/1);
  hub.OnCpuSteal(0, 0, 1000, 1.0);
  // With idle vCPUs available, the workload's CPU is untouched.
  EXPECT_DOUBLE_EQ(vcpus.cpu(0).CapacityAt(500), 1.0);
}

TEST(InterferenceHub, BandwidthFansOutToAllConsumers) {
  sim::CapacityTimeline a(2.0);
  sim::CapacityTimeline b(4.0);
  InterferenceHub hub(nullptr, {&a, &b});
  // 40 GB/s of reclaim traffic = half the 80 GB/s machine.
  hub.OnBandwidth(0, 1000, 40.0);
  EXPECT_DOUBLE_EQ(a.CapacityAt(500), 1.0);
  EXPECT_DOUBLE_EQ(b.CapacityAt(500), 2.0);
}

}  // namespace
}  // namespace hyperalloc::workloads
