// Tests for the memory compactor (kcompactd model).
#include <gtest/gtest.h>

#include "src/guest/compaction.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::guest {
namespace {

class CompactionTest : public ::testing::Test {
 protected:
  void Init() {
    sim_ = std::make_unique<sim::Simulation>();
    host_ = std::make_unique<hv::HostMemory>(FramesForBytes(kGiB));
    GuestConfig config;
    config.memory_bytes = 256 * kMiB;
    config.vcpus = 2;
    config.dma32_bytes = 0;
    config.buddy_config.pcp_enabled = false;
    vm_ = std::make_unique<GuestVm>(sim_.get(), host_.get(), config);
  }

  // Fragments memory: fill with order-0, free all but one frame per
  // 2 MiB block => zero free huge frames.
  std::vector<FrameId> Fragment(AllocType pin_type) {
    std::vector<FrameId> all;
    for (;;) {
      const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
      if (!r.ok()) {
        break;
      }
      all.push_back(*r);
    }
    std::vector<FrameId> pins;
    for (const FrameId f : all) {
      if (f % kFramesPerHuge == 0) {
        // Convert the pin to the requested type by re-allocating it.
        vm_->Free(f, 0);
        pins.push_back(f);
      } else {
        vm_->Free(f, 0);
      }
    }
    // Re-allocate exactly the pin frames via targeted claim.
    std::vector<FrameId> held;
    for (const FrameId f : pins) {
      Zone& zone = vm_->ZoneOf(f);
      if (zone.buddy->ClaimRange(f - zone.start, 1)) {
        held.push_back(f);
      }
    }
    (void)pin_type;
    return held;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<hv::HostMemory> host_;
  std::unique_ptr<GuestVm> vm_;
};

TEST_F(CompactionTest, CompactsSparselyUsedBlocks) {
  Init();
  // One movable frame per huge block: no free huge frames at all.
  std::vector<std::pair<FrameId, unsigned>> pins;
  std::vector<FrameId> all;
  for (;;) {
    const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
    if (!r.ok()) {
      break;
    }
    all.push_back(*r);
  }
  for (const FrameId f : all) {
    if (f % kFramesPerHuge != 0) {
      vm_->Free(f, 0);
    } else {
      pins.emplace_back(f, 0);
    }
  }
  ASSERT_EQ(vm_->FreeHugeFrames(), 0u);

  Compactor compactor(vm_.get(), {});
  const uint64_t freed = compactor.CompactPass(1000);
  EXPECT_GT(freed, 100u);
  EXPECT_GT(vm_->FreeHugeFrames(), 100u);
  EXPECT_EQ(compactor.blocks_compacted(), freed);
  // Pins were migrated, not lost: total allocated unchanged.
  EXPECT_EQ(vm_->AllocatedFrames(), pins.size());
}

TEST_F(CompactionTest, RefusesUnmovableBlocks) {
  Init();
  // Sprinkle unmovable pins instead.
  std::vector<FrameId> all;
  for (;;) {
    const Result<FrameId> r = vm_->Alloc(0, AllocType::kUnmovable);
    if (!r.ok()) {
      break;
    }
    all.push_back(*r);
  }
  uint64_t held = 0;
  for (const FrameId f : all) {
    if (f % kFramesPerHuge != 0) {
      vm_->Free(f, 0);
    } else {
      ++held;
    }
  }
  ASSERT_GT(held, 0u);
  Compactor compactor(vm_.get(), {});
  EXPECT_EQ(compactor.CompactPass(1000), 0u)
      << "unmovable kernel memory must not be migrated";
  EXPECT_EQ(vm_->FreeHugeFrames(), 0u);
}

TEST_F(CompactionTest, BackgroundDaemonMaintainsWatermark) {
  Init();
  std::vector<FrameId> all;
  for (;;) {
    const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
    if (!r.ok()) {
      break;
    }
    all.push_back(*r);
  }
  for (const FrameId f : all) {
    if (f % kFramesPerHuge != 0) {
      vm_->Free(f, 0);
    }
  }
  ASSERT_EQ(vm_->FreeHugeFrames(), 0u);

  CompactionConfig config;
  config.min_free_huge = 32;
  config.blocks_per_wakeup = 8;
  Compactor compactor(vm_.get(), config);
  compactor.StartBackground();
  sim_->RunUntil(sim_->now() + 30 * sim::kSec);
  compactor.Stop();
  EXPECT_GE(vm_->FreeHugeFrames(), 32u);
}

TEST_F(CompactionTest, MigrationChargesTimeAndPreservesData) {
  Init();
  workloads::MemoryPool pool(vm_.get());
  const uint64_t region = pool.AllocRegion(16 * kMiB, 0.0, 0);
  // Fragment around the region by freeing nothing else; compact with a
  // high threshold so the region's blocks qualify.
  CompactionConfig config;
  config.max_used_frames = 512;
  Compactor compactor(vm_.get(), config);
  const sim::Time before = sim_->now();
  compactor.CompactPass(4);
  EXPECT_GT(sim_->now(), before) << "migration must cost virtual time";
  EXPECT_EQ(pool.RegionBytes(region), 16 * kMiB)
      << "the pool must track migrated frames";
  pool.FreeRegion(region, 0);
  EXPECT_EQ(vm_->FreeFrames(), vm_->total_frames());
}

}  // namespace
}  // namespace hyperalloc::guest
