// Tests for the memory compactor (kcompactd model): buddy-zone
// evacuation, and the LLFree huge-frame re-forming pass (DESIGN.md
// §4.14) including its behavior under injected EPT map faults.
#include <gtest/gtest.h>

#include <vector>

#include "src/fault/fault.h"
#include "src/guest/compaction.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::guest {
namespace {

class CompactionTest : public ::testing::Test {
 protected:
  void Init() {
    sim_ = std::make_unique<sim::Simulation>();
    host_ = std::make_unique<hv::HostMemory>(FramesForBytes(kGiB));
    GuestConfig config;
    config.memory_bytes = 256 * kMiB;
    config.vcpus = 2;
    config.dma32_bytes = 0;
    config.buddy_config.pcp_enabled = false;
    vm_ = std::make_unique<GuestVm>(sim_.get(), host_.get(), config);
  }

  void InitLLFree() {
    sim_ = std::make_unique<sim::Simulation>();
    host_ = std::make_unique<hv::HostMemory>(FramesForBytes(kGiB));
    GuestConfig config;
    config.memory_bytes = 256 * kMiB;
    config.vcpus = 2;
    config.dma32_bytes = 0;
    config.allocator = AllocatorKind::kLLFree;
    vm_ = std::make_unique<GuestVm>(sim_.get(), host_.get(), config);
  }

  // Two-pass churn (the §4.14 bench scenario): allocate 64-frame regions
  // over half of memory, then free 7 of every 8. Interleaving the frees
  // would let the allocator reuse them immediately; freeing after the
  // fact leaves each churned area one straggler run that blocks order-9
  // reclaim. Returns the kept region ids.
  std::vector<uint64_t> Churn(workloads::MemoryPool* pool,
                              AllocType type = AllocType::kMovable) {
    const uint64_t region_bytes = 64 * kFrameSize;
    const uint64_t regions =
        vm_->config().memory_bytes / 2 / region_bytes;
    std::vector<uint64_t> ids;
    for (uint64_t i = 0; i < regions; ++i) {
      const uint64_t id = pool->AllocRegion(region_bytes, 0.0, 0, type);
      if (id == 0) {
        break;
      }
      ids.push_back(id);
    }
    std::vector<uint64_t> kept;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i % 8 != 0) {
        pool->FreeRegion(ids[i], 0);
      } else {
        kept.push_back(ids[i]);
      }
    }
    vm_->PurgeAllocatorCaches();
    return kept;
  }

  // Fragments memory: fill with order-0, free all but one frame per
  // 2 MiB block => zero free huge frames.
  std::vector<FrameId> Fragment(AllocType pin_type) {
    std::vector<FrameId> all;
    for (;;) {
      const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
      if (!r.ok()) {
        break;
      }
      all.push_back(*r);
    }
    std::vector<FrameId> pins;
    for (const FrameId f : all) {
      if (f % kFramesPerHuge == 0) {
        // Convert the pin to the requested type by re-allocating it.
        vm_->Free(f, 0);
        pins.push_back(f);
      } else {
        vm_->Free(f, 0);
      }
    }
    // Re-allocate exactly the pin frames via targeted claim.
    std::vector<FrameId> held;
    for (const FrameId f : pins) {
      Zone& zone = vm_->ZoneOf(f);
      if (zone.buddy->ClaimRange(f - zone.start, 1)) {
        held.push_back(f);
      }
    }
    (void)pin_type;
    return held;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<hv::HostMemory> host_;
  std::unique_ptr<GuestVm> vm_;
};

TEST_F(CompactionTest, CompactsSparselyUsedBlocks) {
  Init();
  // One movable frame per huge block: no free huge frames at all.
  std::vector<std::pair<FrameId, unsigned>> pins;
  std::vector<FrameId> all;
  for (;;) {
    const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
    if (!r.ok()) {
      break;
    }
    all.push_back(*r);
  }
  for (const FrameId f : all) {
    if (f % kFramesPerHuge != 0) {
      vm_->Free(f, 0);
    } else {
      pins.emplace_back(f, 0);
    }
  }
  ASSERT_EQ(vm_->FreeHugeFrames(), 0u);

  Compactor compactor(vm_.get(), {});
  const uint64_t freed = compactor.CompactPass(1000);
  EXPECT_GT(freed, 100u);
  EXPECT_GT(vm_->FreeHugeFrames(), 100u);
  EXPECT_EQ(compactor.blocks_compacted(), freed);
  // Pins were migrated, not lost: total allocated unchanged.
  EXPECT_EQ(vm_->AllocatedFrames(), pins.size());
}

TEST_F(CompactionTest, RefusesUnmovableBlocks) {
  Init();
  // Sprinkle unmovable pins instead.
  std::vector<FrameId> all;
  for (;;) {
    const Result<FrameId> r = vm_->Alloc(0, AllocType::kUnmovable);
    if (!r.ok()) {
      break;
    }
    all.push_back(*r);
  }
  uint64_t held = 0;
  for (const FrameId f : all) {
    if (f % kFramesPerHuge != 0) {
      vm_->Free(f, 0);
    } else {
      ++held;
    }
  }
  ASSERT_GT(held, 0u);
  Compactor compactor(vm_.get(), {});
  EXPECT_EQ(compactor.CompactPass(1000), 0u)
      << "unmovable kernel memory must not be migrated";
  EXPECT_EQ(vm_->FreeHugeFrames(), 0u);
}

TEST_F(CompactionTest, BackgroundDaemonMaintainsWatermark) {
  Init();
  std::vector<FrameId> all;
  for (;;) {
    const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
    if (!r.ok()) {
      break;
    }
    all.push_back(*r);
  }
  for (const FrameId f : all) {
    if (f % kFramesPerHuge != 0) {
      vm_->Free(f, 0);
    }
  }
  ASSERT_EQ(vm_->FreeHugeFrames(), 0u);

  CompactionConfig config;
  config.min_free_huge = 32;
  config.blocks_per_wakeup = 8;
  Compactor compactor(vm_.get(), config);
  compactor.StartBackground();
  sim_->RunUntil(sim_->now() + 30 * sim::kSec);
  compactor.Stop();
  EXPECT_GE(vm_->FreeHugeFrames(), 32u);
}

TEST_F(CompactionTest, MigrationChargesTimeAndPreservesData) {
  Init();
  workloads::MemoryPool pool(vm_.get());
  const uint64_t region = pool.AllocRegion(16 * kMiB, 0.0, 0);
  // Fragment around the region by freeing nothing else; compact with a
  // high threshold so the region's blocks qualify.
  CompactionConfig config;
  config.max_used_frames = 512;
  Compactor compactor(vm_.get(), config);
  const sim::Time before = sim_->now();
  compactor.CompactPass(4);
  EXPECT_GT(sim_->now(), before) << "migration must cost virtual time";
  EXPECT_EQ(pool.RegionBytes(region), 16 * kMiB)
      << "the pool must track migrated frames";
  pool.FreeRegion(region, 0);
  EXPECT_EQ(vm_->FreeFrames(), vm_->total_frames());
}

// ---------------------------------------------------------------------
// LLFree zones (§4.14): the daemon isolates an area's free frames,
// migrates the stragglers out, and the re-formed huge frame becomes
// order-9 reclaimable again.
// ---------------------------------------------------------------------

TEST_F(CompactionTest, LLFreeCompactionReformsSplinteredHugeFrames) {
  InitLLFree();
  workloads::MemoryPool pool(vm_.get());
  const std::vector<uint64_t> kept = Churn(&pool);
  ASSERT_GT(kept.size(), 4u);

  const double frag_before = vm_->FragmentationScore();
  EXPECT_GT(frag_before, 0.2) << "churn failed to splinter any area";
  const uint64_t free_huge_before = vm_->FreeHugeFrames();
  const uint64_t allocated_before = vm_->AllocatedFrames();

  Compactor compactor(vm_.get(), {});
  const uint64_t freed = compactor.CompactPass(~0ull);
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(compactor.blocks_compacted(), freed);
  EXPECT_GT(compactor.frames_migrated(), 0u);
  EXPECT_GT(vm_->FreeHugeFrames(), free_huge_before)
      << "no huge frame re-formed";
  EXPECT_LT(vm_->FragmentationScore(), frag_before);
  EXPECT_EQ(vm_->AllocatedFrames(), allocated_before)
      << "compaction must migrate stragglers, not lose or leak frames";

  // The stragglers' data survived the migration.
  for (const uint64_t id : kept) {
    EXPECT_EQ(pool.RegionBytes(id), 64 * kFrameSize);
  }
  for (const uint64_t id : kept) {
    pool.FreeRegion(id, 0);
  }
  vm_->PurgeAllocatorCaches();
  EXPECT_EQ(vm_->FreeFrames(), vm_->total_frames());
}

TEST_F(CompactionTest, LLFreeDaemonTriggersOnFragmentationScore) {
  InitLLFree();
  workloads::MemoryPool pool(vm_.get());
  const std::vector<uint64_t> kept = Churn(&pool);
  ASSERT_GT(vm_->FragmentationScore(), 0.25);

  // Watermark satisfied (min_free_huge = 0): only the score trigger can
  // wake a pass.
  CompactionConfig config;
  config.min_free_huge = 0;
  config.frag_threshold = 0.25;
  config.blocks_per_wakeup = 16;
  Compactor compactor(vm_.get(), config);
  compactor.StartBackground();
  sim_->RunUntil(sim_->now() + 60 * sim::kSec);
  compactor.Stop();

  EXPECT_GT(compactor.triggered_passes(), 0u);
  EXPECT_GT(compactor.blocks_compacted(), 0u);
  EXPECT_LT(vm_->FragmentationScore(), 0.25)
      << "the daemon must compact until the score drops below threshold";
  EXPECT_EQ(compactor.backoff_multiplier(), 1u)
      << "progress (or an idle trigger) must reset the backoff";
  (void)kept;
}

TEST_F(CompactionTest, LLFreeDaemonBacksOffWhenPinned) {
  InitLLFree();
  workloads::MemoryPool pool(vm_.get());
  // Unmovable stragglers: every candidate area is pinned, so triggered
  // passes can never make progress.
  const std::vector<uint64_t> kept =
      Churn(&pool, AllocType::kUnmovable);
  ASSERT_GT(vm_->FragmentationScore(), 0.25);

  CompactionConfig config;
  config.min_free_huge = 0;
  config.frag_threshold = 0.25;
  config.max_backoff = 8;
  Compactor compactor(vm_.get(), config);
  compactor.StartBackground();
  sim_->RunUntil(sim_->now() + 120 * sim::kSec);
  compactor.Stop();

  EXPECT_GT(compactor.triggered_passes(), 0u);
  EXPECT_EQ(compactor.blocks_compacted(), 0u)
      << "unmovable stragglers must never be migrated";
  EXPECT_EQ(compactor.backoff_multiplier(), config.max_backoff)
      << "zero-progress passes must back the daemon off";
  (void)kept;
}

// Injected EPT map faults mid-compaction (the CI fault-smoke probe):
// a failed destination map must not corrupt the migration — the frame
// contents are tracked, nothing leaks, and the unbacked destination
// simply faults back in on its next touch (PopulateFrames' bounded
// retry, DESIGN.md §4.9/§4.14 demotion rules: the hole keeps the huge
// frame at 4 KiB granularity until re-touched).
TEST_F(CompactionTest, LLFreeCompactionSurvivesEptMapFaultMidMigration) {
  InitLLFree();
  workloads::MemoryPool pool(vm_.get());
  const std::vector<uint64_t> kept = Churn(&pool);
  const uint64_t allocated_before = vm_->AllocatedFrames();
  const double frag_before = vm_->FragmentationScore();

  // Model the post-shrink state the daemon actually runs in: the host
  // evicted the guest's cold pages, so every migration destination has
  // to be EPT-mapped back in mid-pass — the map calls the fault plan
  // intercepts.
  vm_->ept().Unmap(0, vm_->total_frames());

  // Arm after churn so only the compaction pass sees faults.
  fault::Plan plan;
  plan.seed = 3;
  std::string error;
  ASSERT_TRUE(fault::Plan::Parse("ept_map:0.2", &plan, &error)) << error;
  fault::Injector injector(plan);
  vm_->SetFaultInjector(&injector);

  Compactor compactor(vm_.get(), {});
  const uint64_t freed = compactor.CompactPass(~0ull);
  ASSERT_GT(injector.injected_total(), 0u)
      << "the armed plan never fired mid-compaction";
  EXPECT_GT(freed, 0u)
      << "transient map faults must not abort the evacuation";

  // Rollback invariants: no frame was lost or double-freed, and every
  // straggler region still owns its full size.
  EXPECT_EQ(vm_->AllocatedFrames(), allocated_before);
  EXPECT_LT(vm_->FragmentationScore(), frag_before);
  for (const uint64_t id : kept) {
    EXPECT_EQ(pool.RegionBytes(id), 64 * kFrameSize);
  }

  // The allocator stays coherent end to end: freeing everything returns
  // the VM to a whole, fully defragmented state.
  for (const uint64_t id : kept) {
    pool.FreeRegion(id, 0);
  }
  vm_->PurgeAllocatorCaches();
  EXPECT_EQ(vm_->FreeFrames(), vm_->total_frames());
  EXPECT_EQ(vm_->FreeHugeFrames(), vm_->total_frames() / kFramesPerHuge);
  EXPECT_DOUBLE_EQ(vm_->FragmentationScore(), 0.0);
}

}  // namespace
}  // namespace hyperalloc::guest
