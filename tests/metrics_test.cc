// Tests for time series, footprint integration, and the 1 Hz sampler.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/metrics/timeseries.h"

namespace hyperalloc::metrics {
namespace {

TEST(TimeSeries, MinMaxLast) {
  TimeSeries ts;
  ts.Sample(0, 3.0);
  ts.Sample(sim::kSec, 1.0);
  ts.Sample(2 * sim::kSec, 2.0);
  EXPECT_DOUBLE_EQ(ts.Max(), 3.0);
  EXPECT_DOUBLE_EQ(ts.Min(), 1.0);
  EXPECT_DOUBLE_EQ(ts.Last(), 2.0);
}

TEST(TimeSeries, IntegralConstantValue) {
  TimeSeries ts;
  // 4 GiB held for 2 minutes => 8 GiB*min.
  ts.Sample(0, 4.0);
  ts.Sample(2 * sim::kMin, 4.0);
  EXPECT_DOUBLE_EQ(ts.IntegralPerMinute(), 8.0);
  EXPECT_DOUBLE_EQ(ts.Mean(), 4.0);
}

TEST(TimeSeries, IntegralTrapezoid) {
  TimeSeries ts;
  ts.Sample(0, 0.0);
  ts.Sample(sim::kMin, 2.0);  // ramp: average 1.0 over one minute
  EXPECT_DOUBLE_EQ(ts.IntegralPerMinute(), 1.0);
}

TEST(TimeSeries, IntegralEmptyAndSingle) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.IntegralPerMinute(), 0.0);
  ts.Sample(0, 5.0);
  EXPECT_DOUBLE_EQ(ts.IntegralPerMinute(), 0.0);
}

TEST(TimeSeries, CsvRoundTrip) {
  TimeSeries ts;
  ts.Sample(0, 1.5);
  ts.Sample(sim::kSec, 2.5);
  const std::string path = ::testing::TempDir() + "/ts_test.csv";
  ts.WriteCsv(path, "value");
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[64];
  ASSERT_NE(std::fgets(header, sizeof(header), f), nullptr);
  EXPECT_STREQ(header, "time_s,value\n");
  double t = 0.0;
  double v = 0.0;
  ASSERT_EQ(std::fscanf(f, "%lf,%lf", &t, &v), 2);
  EXPECT_DOUBLE_EQ(t, 0.0);
  EXPECT_DOUBLE_EQ(v, 1.5);
  std::fclose(f);
}

TEST(Sampler, SamplesAtInterval) {
  sim::Simulation sim;
  TimeSeries ts;
  double value = 0.0;
  Sampler sampler(&sim, sim::kSec, &ts, [&] { return value; });
  sampler.Start();
  value = 1.0;
  sim.RunUntil(3 * sim::kSec + sim::kMs);
  sampler.Stop();
  sim.RunUntilIdle();
  // Sample at t=0 (value 0) plus t=1,2,3 s (value 1).
  ASSERT_EQ(ts.points().size(), 4u);
  EXPECT_DOUBLE_EQ(ts.points()[0].value, 0.0);
  EXPECT_DOUBLE_EQ(ts.points()[3].value, 1.0);
  EXPECT_EQ(ts.points()[3].at, 3 * sim::kSec);
}

TEST(Sampler, StopPreventsFurtherSamples) {
  sim::Simulation sim;
  TimeSeries ts;
  Sampler sampler(&sim, sim::kSec, &ts, [] { return 1.0; });
  sampler.Start();
  sim.RunUntil(sim::kSec + sim::kMs);
  sampler.Stop();
  sim.RunUntil(10 * sim::kSec);
  sim.RunUntilIdle();
  EXPECT_EQ(ts.points().size(), 2u);  // t=0 and t=1s only
}

}  // namespace
}  // namespace hyperalloc::metrics
