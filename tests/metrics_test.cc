// Tests for time series, footprint integration, and the 1 Hz sampler.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/metrics/timeseries.h"

namespace hyperalloc::metrics {
namespace {

TEST(TimeSeries, MinMaxLast) {
  TimeSeries ts;
  ts.Sample(0, 3.0);
  ts.Sample(sim::kSec, 1.0);
  ts.Sample(2 * sim::kSec, 2.0);
  EXPECT_DOUBLE_EQ(ts.Max(), 3.0);
  EXPECT_DOUBLE_EQ(ts.Min(), 1.0);
  EXPECT_DOUBLE_EQ(ts.Last(), 2.0);
}

TEST(TimeSeries, IntegralConstantValue) {
  TimeSeries ts;
  // 4 GiB held for 2 minutes => 8 GiB*min.
  ts.Sample(0, 4.0);
  ts.Sample(2 * sim::kMin, 4.0);
  EXPECT_DOUBLE_EQ(ts.IntegralPerMinute(), 8.0);
  EXPECT_DOUBLE_EQ(ts.Mean(), 4.0);
}

TEST(TimeSeries, IntegralTrapezoid) {
  TimeSeries ts;
  ts.Sample(0, 0.0);
  ts.Sample(sim::kMin, 2.0);  // ramp: average 1.0 over one minute
  EXPECT_DOUBLE_EQ(ts.IntegralPerMinute(), 1.0);
}

TEST(TimeSeries, IntegralEmptyAndSingle) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.IntegralPerMinute(), 0.0);
  ts.Sample(0, 5.0);
  EXPECT_DOUBLE_EQ(ts.IntegralPerMinute(), 0.0);
}

TEST(TimeSeries, EmptySeriesStatsAreZero) {
  const TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.Max(), 0.0);
  EXPECT_DOUBLE_EQ(ts.Min(), 0.0);
  EXPECT_DOUBLE_EQ(ts.Last(), 0.0);
  EXPECT_DOUBLE_EQ(ts.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(ts.IntegralPerMinute(), 0.0);
}

TEST(TimeSeries, SinglePointStats) {
  TimeSeries ts;
  ts.Sample(sim::kSec, 7.0);
  EXPECT_DOUBLE_EQ(ts.Max(), 7.0);
  EXPECT_DOUBLE_EQ(ts.Min(), 7.0);
  EXPECT_DOUBLE_EQ(ts.Last(), 7.0);
  // One sample has no time extent; Mean degrades to the value itself
  // instead of dividing by a zero span.
  EXPECT_DOUBLE_EQ(ts.Mean(), 7.0);
}

TEST(TimeSeries, ZeroSpanMeanIsFinite) {
  TimeSeries ts;
  ts.Sample(sim::kSec, 2.0);
  ts.Sample(sim::kSec, 4.0);  // same instant
  EXPECT_DOUBLE_EQ(ts.Mean(), 4.0);
}

TEST(TimeSeries, CsvRoundTrip) {
  TimeSeries ts;
  ts.Sample(0, 1.5);
  ts.Sample(sim::kSec, 2.5);
  const std::string path = ::testing::TempDir() + "/ts_test.csv";
  ts.WriteCsv(path, "value");
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[64];
  ASSERT_NE(std::fgets(header, sizeof(header), f), nullptr);
  EXPECT_STREQ(header, "time_s,value\n");
  double t = 0.0;
  double v = 0.0;
  ASSERT_EQ(std::fscanf(f, "%lf,%lf", &t, &v), 2);
  EXPECT_DOUBLE_EQ(t, 0.0);
  EXPECT_DOUBLE_EQ(v, 1.5);
  std::fclose(f);
}

TEST(MergeSum, SumsIndexAlignedPoints) {
  std::vector<TimeSeries> series(2);
  series[0].Sample(0, 1.0);
  series[0].Sample(sim::kSec, 2.0);
  series[1].Sample(0, 10.0);
  series[1].Sample(sim::kSec, 20.0);
  const TimeSeries merged = MergeSum(series, sim::kSec);
  ASSERT_EQ(merged.points().size(), 2u);
  EXPECT_DOUBLE_EQ(merged.points()[0].value, 11.0);
  EXPECT_DOUBLE_EQ(merged.points()[1].value, 22.0);
  // Merged points are re-stamped on the period grid.
  EXPECT_EQ(merged.points()[1].at, sim::kSec);
}

TEST(MergeSum, EndedSeriesCarryLastValue) {
  std::vector<TimeSeries> series(2);
  series[0].Sample(0, 5.0);  // ends after one point
  series[1].Sample(0, 1.0);
  series[1].Sample(sim::kSec, 2.0);
  series[1].Sample(2 * sim::kSec, 3.0);
  const TimeSeries merged = MergeSum(series, sim::kSec);
  ASSERT_EQ(merged.points().size(), 3u);
  EXPECT_DOUBLE_EQ(merged.points()[1].value, 7.0);  // 5 carried + 2
  EXPECT_DOUBLE_EQ(merged.points()[2].value, 8.0);
}

TEST(MergeSum, GroupingIsAssociative) {
  // The hierarchical-rollup property the telemetry pipeline depends on:
  // merging per-shard merges equals merging all series directly, because
  // the sampled values (GiB = n * 2^-30, n < 2^53) are exact doubles.
  std::vector<TimeSeries> all(4);
  for (size_t i = 0; i < all.size(); ++i) {
    for (uint64_t k = 0; k < 5; ++k) {
      const double gib = static_cast<double>((i + 1) * (k + 3) * 4096) /
                         static_cast<double>(uint64_t{1} << 30);
      all[i].Sample(static_cast<sim::Time>(k) * sim::kSec, gib);
    }
  }
  const TimeSeries direct = MergeSum(all, sim::kSec);
  const std::vector<TimeSeries> shard = {
      MergeSum({all[0], all[1]}, sim::kSec),
      MergeSum({all[2], all[3]}, sim::kSec)};
  const TimeSeries grouped = MergeSum(shard, sim::kSec);
  ASSERT_EQ(direct.points().size(), grouped.points().size());
  for (size_t k = 0; k < direct.points().size(); ++k) {
    EXPECT_EQ(direct.points()[k].value, grouped.points()[k].value) << k;
    EXPECT_EQ(direct.points()[k].at, grouped.points()[k].at) << k;
  }
}

TEST(MergeSum, EmptyInputs) {
  EXPECT_TRUE(MergeSum({}, sim::kSec).points().empty());
  std::vector<TimeSeries> series(2);  // both empty
  EXPECT_TRUE(MergeSum(series, sim::kSec).points().empty());
}

TEST(Sampler, SamplesAtInterval) {
  sim::Simulation sim;
  TimeSeries ts;
  double value = 0.0;
  Sampler sampler(&sim, sim::kSec, &ts, [&] { return value; });
  sampler.Start();
  value = 1.0;
  sim.RunUntil(3 * sim::kSec + sim::kMs);
  sampler.Stop();
  sim.RunUntilIdle();
  // Sample at t=0 (value 0) plus t=1,2,3 s (value 1).
  ASSERT_EQ(ts.points().size(), 4u);
  EXPECT_DOUBLE_EQ(ts.points()[0].value, 0.0);
  EXPECT_DOUBLE_EQ(ts.points()[3].value, 1.0);
  EXPECT_EQ(ts.points()[3].at, 3 * sim::kSec);
}

TEST(Sampler, StopPreventsFurtherSamples) {
  sim::Simulation sim;
  TimeSeries ts;
  Sampler sampler(&sim, sim::kSec, &ts, [] { return 1.0; });
  sampler.Start();
  sim.RunUntil(sim::kSec + sim::kMs);
  sampler.Stop();
  sim.RunUntil(10 * sim::kSec);
  sim.RunUntilIdle();
  EXPECT_EQ(ts.points().size(), 2u);  // t=0 and t=1s only
}

TEST(Sampler, RestartDoesNotReviveOldTickChain) {
  sim::Simulation sim;
  TimeSeries ts;
  Sampler sampler(&sim, sim::kSec, &ts, [] { return 1.0; });
  sampler.Start();  // samples at t=0, schedules a Tick for t=1s
  sampler.Stop();
  // Restart while the old Tick is still on the queue. Without epoch-based
  // cancellation the revived old chain and the new chain both run,
  // doubling the sampling rate.
  sampler.Start();  // samples again at t=0, schedules its own Tick
  sim.RunUntil(3 * sim::kSec + sim::kMs);
  sampler.Stop();
  sim.RunUntilIdle();
  // Two immediate samples at t=0 plus exactly one per second at t=1,2,3.
  ASSERT_EQ(ts.points().size(), 5u);
  EXPECT_EQ(ts.points()[2].at, sim::kSec);
  EXPECT_EQ(ts.points()[3].at, 2 * sim::kSec);
  EXPECT_EQ(ts.points()[4].at, 3 * sim::kSec);
}

TEST(Sampler, StopDropsAlreadyScheduledTick) {
  sim::Simulation sim;
  TimeSeries ts;
  Sampler sampler(&sim, sim::kSec, &ts, [] { return 1.0; });
  sampler.Start();
  sampler.Stop();  // the t=1s Tick is already on the queue
  sim.RunUntilIdle();
  EXPECT_EQ(ts.points().size(), 1u);  // only the immediate t=0 sample
}

}  // namespace
}  // namespace hyperalloc::metrics
