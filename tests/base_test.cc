// Unit tests for src/base: types, rng, stats, units, result.
#include <gtest/gtest.h>

#include <set>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/types.h"
#include "src/base/units.h"

namespace hyperalloc {
namespace {

TEST(Types, FrameMath) {
  EXPECT_EQ(kFrameSize, 4096u);
  EXPECT_EQ(kFramesPerHuge, 512u);
  EXPECT_EQ(kHugeSize, 2u * kMiB);
  EXPECT_EQ(FramesForBytes(0), 0u);
  EXPECT_EQ(FramesForBytes(1), 1u);
  EXPECT_EQ(FramesForBytes(kFrameSize), 1u);
  EXPECT_EQ(FramesForBytes(kFrameSize + 1), 2u);
  EXPECT_EQ(FramesForBytes(kGiB), 262144u);
}

TEST(Types, HugeConversions) {
  EXPECT_EQ(HugeToFrame(0), 0u);
  EXPECT_EQ(HugeToFrame(3), 1536u);
  EXPECT_EQ(FrameToHuge(511), 0u);
  EXPECT_EQ(FrameToHuge(512), 1u);
  EXPECT_TRUE(IsHugeAligned(0));
  EXPECT_TRUE(IsHugeAligned(1024));
  EXPECT_FALSE(IsHugeAligned(1));
  EXPECT_FALSE(IsHugeAligned(513));
}

TEST(Types, HugesForFrames) {
  EXPECT_EQ(HugesForFrames(0), 0u);
  EXPECT_EQ(HugesForFrames(1), 1u);
  EXPECT_EQ(HugesForFrames(512), 1u);
  EXPECT_EQ(HugesForFrames(513), 2u);
}

TEST(Types, Alignment) {
  EXPECT_EQ(AlignDown(1023, 512), 512u);
  EXPECT_EQ(AlignUp(1023, 512), 1024u);
  EXPECT_EQ(AlignUp(1024, 512), 1024u);
  EXPECT_EQ(AlignDown(0, 8), 0u);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.Range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Stats, SummaryBasics) {
  const Summary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.2909944487, 1e-9);
  EXPECT_GT(s.ci95, 0.0);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SummarySingle) {
  const Summary s = Summarize({5.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(Stats, Percentiles) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) {
    v.push_back(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 100.0);
  EXPECT_NEAR(Percentile(v, 0.5), 50.5, 1e-9);
  EXPECT_NEAR(Percentile(v, 0.01), 1.99, 1e-9);
}

TEST(Stats, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Stats, RunningStatsMatchesSummary) {
  RunningStats rs;
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : v) {
    rs.Add(x);
  }
  const Summary s = Summarize(v);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), s.mean, 1e-12);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-12);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2 * kMiB), "2 MiB");
  EXPECT_EQ(FormatBytes(kGiB + kGiB / 2), "1.50 GiB");
}

TEST(Units, FormatRate) {
  EXPECT_EQ(FormatRate(1024.0 * 1024 * 1024), "1 GiB/s");
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(FormatDuration(500), "500 ns");
  EXPECT_EQ(FormatDuration(1500), "1.50 us");
  EXPECT_EQ(FormatDuration(2'500'000), "2.50 ms");
  EXPECT_EQ(FormatDuration(90'000'000'000ull), "1m30s");
}

TEST(Result, ValueAndError) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_EQ(*ok, 5);

  Result<int> err(AllocError::kNoMemory);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), AllocError::kNoMemory);
}

TEST(Result, BoolConversion) {
  Result<int> ok(1);
  Result<int> err(AllocError::kRetry);
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_FALSE(static_cast<bool>(err));
}

TEST(EnumStrings, AllocType) {
  EXPECT_STREQ(ToString(AllocType::kUnmovable), "unmovable");
  EXPECT_STREQ(ToString(AllocType::kMovable), "movable");
  EXPECT_STREQ(ToString(AllocType::kHuge), "huge");
}

TEST(EnumStrings, AllocError) {
  EXPECT_STREQ(ToString(AllocError::kNoMemory), "no-memory");
  EXPECT_STREQ(ToString(AllocError::kRetry), "retry");
  EXPECT_STREQ(ToString(AllocError::kEvicted), "evicted");
  EXPECT_STREQ(ToString(AllocError::kInvalid), "invalid");
}

}  // namespace
}  // namespace hyperalloc
