// Multithreaded stress tests for LLFree: the allocator must stay
// consistent when real threads (guest cores) and a hypervisor thread
// operate on the shared state concurrently — the property the paper's
// whole design rests on ("all operations are implemented by atomic memory
// transactions", §3).
//
// The model-check oracles (src/check/invariants.h) are reused here at
// quiescent points: they are build-agnostic, so the same invariants that
// gate every interleaving in tests/model_check_test.cc also gate the
// end state of each real-thread stress run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/check/invariants.h"
#include "src/llfree/llfree.h"

namespace hyperalloc::llfree {
namespace {

constexpr uint64_t kFrames = 32768;  // 128 MiB, 64 areas, 8 trees

// The oracles throw check::CheckFailure with the violation message; at
// quiescence (all worker threads joined) both the step inequalities and
// the exact cross-level equalities must hold.
void ExpectInvariantsHold(const SharedState& state, const LLFree& alloc) {
  try {
    check::CheckStepInvariants(state);
    check::CheckQuiescent(alloc);
  } catch (const check::CheckFailure& failure) {
    FAIL() << failure.what();
  }
}

TEST(LLFreeConcurrent, ParallelAllocFreeNoOverlap) {
  Config config;
  config.mode = Config::ReservationMode::kPerCore;
  config.cores = 4;
  SharedState state(kFrames, config);
  LLFree alloc(&state);

  constexpr unsigned kThreads = 4;
  constexpr int kIterations = 20000;
  std::vector<std::vector<FrameId>> owned(kThreads);
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};

  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < kIterations && !failed; ++i) {
        if (owned[t].size() < 512 && rng.Chance(0.6)) {
          const Result<FrameId> r = alloc.Get(t, 0, AllocType::kMovable);
          if (r.ok()) {
            owned[t].push_back(*r);
          }
        } else if (!owned[t].empty()) {
          const size_t idx = rng.Below(owned[t].size());
          if (alloc.Put(owned[t][idx], 0).has_value()) {
            failed = true;  // double free => overlapping handout
          }
          owned[t][idx] = owned[t].back();
          owned[t].pop_back();
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  ASSERT_FALSE(failed);

  // No frame owned by two threads.
  std::vector<FrameId> all;
  for (const auto& frames : owned) {
    all.insert(all.end(), frames.begin(), frames.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "the same frame was handed to two threads";

  ExpectInvariantsHold(state, alloc);
  for (const FrameId f : all) {
    ASSERT_FALSE(alloc.Put(f, 0).has_value());
  }
  EXPECT_EQ(alloc.FreeFrames(), kFrames);
  ExpectInvariantsHold(state, alloc);
}

TEST(LLFreeConcurrent, MixedOrdersUnderContention) {
  Config config;  // per-type: all threads share reservation slots
  SharedState state(kFrames, config);
  LLFree alloc(&state);

  constexpr unsigned kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  std::vector<std::vector<std::pair<FrameId, unsigned>>> owned(kThreads);

  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 77);
      static constexpr unsigned kOrders[] = {0, 0, 1, 3, 9};
      for (int i = 0; i < 8000 && !failed; ++i) {
        if (rng.Chance(0.55)) {
          const unsigned order = kOrders[rng.Below(5)];
          const AllocType type = static_cast<AllocType>(rng.Below(3));
          const Result<FrameId> r = alloc.Get(t, order, type);
          if (r.ok()) {
            owned[t].emplace_back(*r, order);
          }
        } else if (!owned[t].empty()) {
          const size_t idx = rng.Below(owned[t].size());
          const auto [frame, order] = owned[t][idx];
          if (alloc.Put(frame, order).has_value()) {
            failed = true;
          }
          owned[t][idx] = owned[t].back();
          owned[t].pop_back();
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  ASSERT_FALSE(failed);
  ExpectInvariantsHold(state, alloc);

  uint64_t live_frames = 0;
  for (const auto& frames : owned) {
    for (const auto& [frame, order] : frames) {
      live_frames += 1ull << order;
    }
  }
  EXPECT_EQ(alloc.FreeFrames(), kFrames - live_frames);
}

TEST(LLFreeConcurrent, GuestVsHypervisorRace) {
  // A guest thread allocates/frees huge frames while a hypervisor thread
  // hard-reclaims and returns them — the bilateral scenario of Fig. 1.
  Config config;
  SharedState state(kFrames, config);
  LLFree guest(&state);
  LLFree monitor(&state);

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> reclaim_count{0};

  std::thread hypervisor([&] {
    Rng rng(4242);
    std::vector<HugeId> reclaimed;
    while (!stop) {
      if (rng.Chance(0.6) || reclaimed.empty()) {
        const std::optional<HugeId> h =
            monitor.ReclaimHuge(rng.Below(monitor.num_areas()), true);
        if (h.has_value()) {
          reclaimed.push_back(*h);
          ++reclaim_count;
        }
      } else {
        const size_t idx = rng.Below(reclaimed.size());
        if (!monitor.MarkReturned(reclaimed[idx])) {
          failed = true;  // hard-reclaimed frame changed under the monitor
        }
        reclaimed[idx] = reclaimed.back();
        reclaimed.pop_back();
      }
    }
    for (const HugeId h : reclaimed) {
      if (!monitor.MarkReturned(h)) {
        failed = true;
      }
    }
  });

  Rng rng(11);
  std::vector<std::pair<FrameId, unsigned>> owned;
  for (int i = 0; i < 40000 && !failed; ++i) {
    if (rng.Chance(0.55)) {
      const unsigned order = rng.Chance(0.3) ? kHugeOrder : 0;
      const Result<FrameId> r = guest.Get(0, order, AllocType::kMovable);
      if (r.ok()) {
        owned.emplace_back(*r, order);
      }
    } else if (!owned.empty()) {
      const size_t idx = rng.Below(owned.size());
      const auto [frame, order] = owned[idx];
      if (guest.Put(frame, order).has_value()) {
        failed = true;
      }
      owned[idx] = owned.back();
      owned.pop_back();
    }
  }
  // On heavily loaded (or single-core) machines the hypervisor thread may
  // not have been scheduled yet; give it a chance to do some work before
  // stopping so the interleaving is actually exercised.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (reclaim_count.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop = true;
  hypervisor.join();
  ASSERT_FALSE(failed);
  EXPECT_GT(reclaim_count.load(), 0u) << "hypervisor never reclaimed";

  for (const auto& [frame, order] : owned) {
    ASSERT_FALSE(guest.Put(frame, order).has_value());
  }
  // Evicted hints may remain set (they are hints); clear for full check.
  for (HugeId h = 0; h < guest.num_areas(); ++h) {
    guest.ClearEvicted(h);
  }
  ExpectInvariantsHold(state, guest);
  EXPECT_EQ(guest.FreeFrames(), kFrames);
}

TEST(LLFreeConcurrent, InstallHandlerRunsOnEvictedAllocation) {
  Config config;
  SharedState state(kFrames, config);
  LLFree guest(&state);
  LLFree monitor(&state);

  // Soft-reclaim every free huge frame.
  uint64_t evicted = 0;
  while (monitor.ReclaimHuge(0, /*hard=*/false).has_value()) {
    ++evicted;
  }
  EXPECT_EQ(evicted, guest.num_areas());

  std::atomic<uint64_t> installs{0};
  guest.SetInstallHandler([&](HugeId huge) {
    ++installs;
    // Two racing allocations from the same area may both trigger the
    // install; clearing twice is harmless (idempotent from the guest's
    // perspective), so no assertion on the return value.
    monitor.ClearEvicted(huge);
  });

  constexpr unsigned kThreads = 4;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const Result<FrameId> r = guest.Get(t, 0, AllocType::kMovable);
        ASSERT_TRUE(r.ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_GT(installs.load(), 0u);
  ExpectInvariantsHold(state, guest);
  // Every allocated area must have been installed (no evicted area holds
  // allocations).
  for (HugeId h = 0; h < guest.num_areas(); ++h) {
    const AreaEntry e = guest.ReadArea(h);
    if (e.free < kFramesPerHuge) {
      EXPECT_FALSE(e.evicted) << "allocation from evicted area " << h
                              << " without install";
    }
  }
}

}  // namespace
}  // namespace hyperalloc::llfree
