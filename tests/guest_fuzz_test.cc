// Randomized whole-stack stress: a GuestVm under a chaotic mix of
// allocations, frees, touches, page-cache churn, DMA, and concurrent
// HyperAlloc reclamation. Invariants checked at the end: allocator
// consistency, exact RSS/host accounting, no leaked frames.
#include <gtest/gtest.h>

#include <map>

#include "src/base/rng.h"
#include "src/core/hyperalloc.h"
#include "src/guest/guest_vm.h"

namespace hyperalloc {
namespace {

struct FuzzParam {
  guest::AllocatorKind allocator;
  bool vfio;
  bool with_monitor;
  uint64_t seed;
  const char* name;
};

class GuestFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(GuestFuzzTest, ChaosPreservesInvariants) {
  const FuzzParam& param = GetParam();
  sim::Simulation sim;
  hv::HostMemory host(FramesForBytes(2 * kGiB));
  guest::GuestConfig config;
  config.memory_bytes = 512 * kMiB;
  config.vcpus = 4;
  config.dma32_bytes = 128 * kMiB;
  config.allocator = param.allocator;
  config.vfio = param.vfio;
  guest::GuestVm vm(&sim, &host, config);
  std::unique_ptr<core::HyperAllocMonitor> monitor;
  if (param.with_monitor) {
    monitor = std::make_unique<core::HyperAllocMonitor>(
        &vm, core::HyperAllocConfig{});
    monitor->StartAuto();
  }

  Rng rng(param.seed);
  std::vector<std::pair<FrameId, unsigned>> live;

  for (int step = 0; step < 30000; ++step) {
    const unsigned core = static_cast<unsigned>(rng.Below(4));
    const uint64_t dice = rng.Below(1000);
    if (dice < 400) {  // allocate (+sometimes touch)
      static constexpr unsigned kOrders[] = {0, 0, 0, 1, 3, 9};
      const unsigned order = kOrders[rng.Below(6)];
      const AllocType type = static_cast<AllocType>(rng.Below(3));
      const Result<FrameId> r = vm.Alloc(order, type, core);
      if (r.ok()) {
        if (rng.Chance(0.7)) {
          vm.Touch(*r, 1ull << order);
        }
        live.emplace_back(*r, order);
      }
    } else if (dice < 750) {  // free
      if (!live.empty()) {
        const size_t idx = rng.Below(live.size());
        vm.Free(live[idx].first, live[idx].second, core);
        live[idx] = live.back();
        live.pop_back();
      }
    } else if (dice < 850) {  // page-cache churn
      if (rng.Chance(0.6)) {
        vm.CacheAdd(rng.Range(1, 64) * kFrameSize, core);
      } else {
        vm.CacheDrop(rng.Range(1, 64) * kFrameSize, core);
      }
    } else if (dice < 900) {  // touch random owned frame
      if (!live.empty()) {
        const auto& [frame, order] = live[rng.Below(live.size())];
        vm.Touch(frame, 1ull << order);
      }
    } else if (dice < 950) {  // DMA to an owned frame
      if (!live.empty() && param.with_monitor) {
        const auto& [frame, order] = live[rng.Below(live.size())];
        // Every owned frame must be DMA-safe under VFIO + HyperAlloc.
        if (param.vfio) {
          EXPECT_TRUE(vm.DmaWrite(frame, 1ull << order))
              << "step " << step << " frame " << frame;
        }
      }
    } else if (dice < 980) {  // let virtual time pass (daemon runs)
      sim.RunUntil(sim.now() + rng.Range(1, 6) * sim::kSec);
    } else {  // kernel cache purge
      vm.PurgeAllocatorCaches();
    }
  }

  // Tear down: everything freed and recovered.
  for (const auto& [frame, order] : live) {
    vm.Free(frame, order, 0);
  }
  vm.DropCaches();
  vm.PurgeAllocatorCaches();
  EXPECT_EQ(vm.FreeFrames(), vm.total_frames());
  EXPECT_EQ(vm.oom_events(), 0u);

  // Allocator-internal consistency.
  for (guest::Zone& zone : vm.zones()) {
    if (zone.buddy != nullptr) {
      EXPECT_TRUE(zone.buddy->Validate());
    } else {
      EXPECT_TRUE(zone.llfree->Validate());
    }
  }

  // Host accounting: RSS equals exactly what the host pool handed out.
  EXPECT_EQ(host.used_frames() * kFrameSize, vm.rss_bytes());
  if (monitor != nullptr) {
    monitor->StopAuto();
    // One final pass reclaims everything that is free and mapped.
    monitor->AutoReclaimPass();
    EXPECT_EQ(vm.rss_bytes(), 0u);
    EXPECT_EQ(host.used_frames(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GuestFuzzTest,
    ::testing::Values(
        FuzzParam{guest::AllocatorKind::kBuddy, false, false, 1,
                  "buddy_plain"},
        FuzzParam{guest::AllocatorKind::kLLFree, false, false, 2,
                  "llfree_plain"},
        FuzzParam{guest::AllocatorKind::kLLFree, false, true, 3,
                  "llfree_monitor"},
        FuzzParam{guest::AllocatorKind::kLLFree, true, true, 4,
                  "llfree_monitor_vfio"},
        FuzzParam{guest::AllocatorKind::kLLFree, true, true, 5,
                  "llfree_monitor_vfio_seed5"}),
    [](const ::testing::TestParamInfo<FuzzParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hyperalloc
