// Tests for the generalized (buddy-backed) HyperAlloc monitor — paper §6
// "Concept Generalization": soft reclamation and install work through the
// auxiliary (A, E) interface; hard limits fall back to a guest-mediated
// path.
#include <gtest/gtest.h>

#include "src/core/hyperalloc_generic.h"
#include "src/guest/guest_vm.h"

namespace hyperalloc::core {
namespace {

constexpr uint64_t kVmBytes = 256 * kMiB;

class GenericHyperAllocTest : public ::testing::Test {
 protected:
  void Init(bool vfio = false) {
    sim_ = std::make_unique<sim::Simulation>();
    host_ = std::make_unique<hv::HostMemory>(FramesForBytes(kGiB));
    guest::GuestConfig config;
    config.memory_bytes = kVmBytes;
    config.vcpus = 4;
    config.dma32_bytes = 64 * kMiB;
    config.vfio = vfio;
    vm_ = std::make_unique<guest::GuestVm>(sim_.get(), host_.get(), config);
    monitor_ = std::make_unique<GenericHyperAllocMonitor>(
        vm_.get(), GenericHyperAllocConfig{});
  }

  void SetLimit(uint64_t bytes) {
    bool done = false;
    monitor_->Request({.target_bytes = bytes, .done = [&] { done = true; }});
    while (!done) {
      ASSERT_TRUE(sim_->Step());
    }
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<hv::HostMemory> host_;
  std::unique_ptr<guest::GuestVm> vm_;
  std::unique_ptr<GenericHyperAllocMonitor> monitor_;
};

TEST_F(GenericHyperAllocTest, InstallOnFirstUse) {
  Init();
  EXPECT_EQ(vm_->rss_bytes(), 0u);
  const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(monitor_->installs(), 1u);
  EXPECT_EQ(vm_->rss_bytes(), kHugeSize);
  EXPECT_TRUE(monitor_->aux().Allocated(FrameToHuge(*r)));
  EXPECT_FALSE(monitor_->aux().Evicted(FrameToHuge(*r)));
}

TEST_F(GenericHyperAllocTest, AuxOccupancyTracksBuddy) {
  Init();
  const Result<FrameId> a = vm_->Alloc(0, AllocType::kMovable);
  ASSERT_TRUE(a.ok());
  const HugeId huge = FrameToHuge(*a);
  EXPECT_TRUE(monitor_->aux().Allocated(huge));
  vm_->Free(*a, 0);
  vm_->PurgeAllocatorCaches();
  // PCP drain happens outside Free; occupancy clears once truly free.
  // (The PCP cache keeps the frame "allocated" from the buddy's view.)
  const Result<FrameId> b = vm_->Alloc(0, AllocType::kMovable);
  ASSERT_TRUE(b.ok());
  vm_->Free(*b, 0);
  vm_->PurgeAllocatorCaches();
  // After draining, freeing any remaining frame clears the block.
  // Allocate + free a frame with PCP disabled effect via huge order:
  const Result<FrameId> c = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(monitor_->aux().Allocated(FrameToHuge(*c)));
  vm_->Free(*c, kHugeOrder);
  EXPECT_FALSE(monitor_->aux().Allocated(FrameToHuge(*c)));
}

TEST_F(GenericHyperAllocTest, AutoReclaimIsDmaSafeFreePageReporting) {
  Init();
  std::vector<FrameId> frames;
  for (int i = 0; i < 32; ++i) {
    const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
    ASSERT_TRUE(r.ok());
    frames.push_back(*r);
  }
  EXPECT_EQ(vm_->rss_bytes(), 64 * kMiB);
  for (const FrameId f : frames) {
    vm_->Free(f, kHugeOrder);
  }
  EXPECT_EQ(monitor_->AutoReclaimPass(), 32u);
  EXPECT_EQ(vm_->rss_bytes(), 0u);
  // Unlike free-page reporting, reuse must go through install.
  const Result<FrameId> again = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(vm_->rss_bytes(), kHugeSize);
  EXPECT_GE(monitor_->installs(), 33u);
}

TEST_F(GenericHyperAllocTest, AutoReclaimSkipsUsedBlocks) {
  Init();
  const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(monitor_->AutoReclaimPass(), 0u);
  EXPECT_EQ(vm_->rss_bytes(), kHugeSize);
}

TEST_F(GenericHyperAllocTest, HardLimitGuestMediated) {
  Init();
  SetLimit(64 * kMiB);
  EXPECT_EQ(monitor_->limit_bytes(), 64 * kMiB);
  // The frames are held as guest allocations; the guest can use at most
  // the remaining 64 MiB.
  uint64_t allocated = 0;
  while (vm_->Alloc(kHugeOrder, AllocType::kHuge).ok()) {
    allocated += kHugeSize;
  }
  EXPECT_EQ(allocated, 64 * kMiB);
  EXPECT_EQ(vm_->rss_bytes(), 64 * kMiB);

  SetLimit(kVmBytes);
  EXPECT_EQ(monitor_->limit_bytes(), kVmBytes);
  // Returned frames install on reuse (DMA-safe deflation).
  const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(monitor_->aux().Allocated(FrameToHuge(*r)));
}

TEST_F(GenericHyperAllocTest, ShrinkOfUntouchedMemorySkipsUnmap) {
  Init();
  const uint64_t unmaps_before = vm_->ept().total_unmapped_ops();
  SetLimit(64 * kMiB);
  EXPECT_EQ(vm_->ept().total_unmapped_ops(), unmaps_before);
  EXPECT_EQ(vm_->rss_bytes(), 0u);
}

TEST_F(GenericHyperAllocTest, VfioDmaSafety) {
  Init(/*vfio=*/true);
  for (int i = 0; i < 64; ++i) {
    const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(vm_->DmaWrite(*r, kFramesPerHuge)) << "frame " << *r;
  }
  // Reclaimed memory is unpinned again.
  std::vector<FrameId> held;
  const Result<FrameId> victim = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(victim.ok());
  vm_->Free(*victim, kHugeOrder);
  ASSERT_GE(monitor_->AutoReclaimPass(), 1u);
  EXPECT_FALSE(vm_->DmaWrite(*victim, 1));
}

TEST_F(GenericHyperAllocTest, SoftReclaimBeatenByGuestAllocation) {
  // The atomicity point of the aux CAS: a frame the guest just allocated
  // (A set) cannot be reclaimed.
  Init();
  const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(monitor_->aux().TryReclaim(FrameToHuge(*r), false));
  vm_->Free(*r, kHugeOrder);
  EXPECT_TRUE(monitor_->aux().TryReclaim(FrameToHuge(*r), false));
  // Second reclaim of the same frame fails (already evicted).
  EXPECT_FALSE(monitor_->aux().TryReclaim(FrameToHuge(*r), false));
}

}  // namespace
}  // namespace hyperalloc::core
