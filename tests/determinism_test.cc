// Determinism guarantees: identical configurations must produce
// bit-identical virtual-time results — the property that makes the
// benchmark suite reproducible across machines and runs.
#include <gtest/gtest.h>

#include "src/core/hyperalloc.h"
#include "src/guest/guest_vm.h"
#include "src/workloads/compile.h"
#include "src/workloads/memory_pool.h"
#include "src/workloads/spec_prep.h"

namespace hyperalloc {
namespace {

struct RunResult {
  sim::Time end_time;
  uint64_t rss;
  uint64_t installs;
  uint64_t soft_reclaims;
  uint64_t free_frames;

  bool operator==(const RunResult&) const = default;
};

RunResult RunOnce(uint64_t seed, unsigned slice) {
  sim::Simulation sim;
  hv::HostMemory host(FramesForBytes(8 * kGiB));
  guest::GuestConfig config;
  config.memory_bytes = 2 * kGiB;
  config.vcpus = 4;
  config.dma32_bytes = 0;
  config.allocator = guest::AllocatorKind::kLLFree;
  guest::GuestVm vm(&sim, &host, config);
  core::HyperAllocConfig hc;
  hc.hugepages_per_slice = slice;
  core::HyperAllocMonitor monitor(&vm, hc);
  monitor.StartAuto();

  workloads::MemoryPool pool(&vm);
  pool.DisableMigrationTracking();
  workloads::CompileConfig cc;
  cc.workers = 4;
  cc.compile_units = 40;
  cc.link_jobs = 2;
  cc.unit_ws_min = 8 * kMiB;
  cc.unit_ws_max = 48 * kMiB;
  cc.link_ws_min = 128 * kMiB;
  cc.link_ws_max = 256 * kMiB;
  cc.slab_per_job = 2 * kMiB;
  cc.seed = seed;
  workloads::CompileWorkload compile(&vm, &pool, nullptr, cc);
  bool done = false;
  compile.Start([&] { done = true; });
  while (!done) {
    sim.Step();
  }
  sim.RunUntil(sim.now() + 20 * sim::kSec);  // let the daemon settle
  monitor.StopAuto();

  return RunResult{sim.now(), vm.rss_bytes(), monitor.installs(),
                   monitor.soft_reclaims(), vm.FreeFrames()};
}

TEST(Determinism, IdenticalRunsAreBitIdentical) {
  const RunResult a = RunOnce(7, 512);
  const RunResult b = RunOnce(7, 512);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.installs, 0u);
  EXPECT_GT(a.soft_reclaims, 0u);
}

TEST(Determinism, SeedsChangeOutcomes) {
  const RunResult a = RunOnce(7, 512);
  const RunResult b = RunOnce(8, 512);
  // Different workload seeds must actually change the trace (guards
  // against the RNG being ignored).
  EXPECT_NE(a.end_time, b.end_time);
}

TEST(Determinism, SliceSizeDoesNotChangeOutcome) {
  // The event-loop slice granularity is an implementation knob: it may
  // reorder interleavings slightly but must not change what is
  // reclaimed once the system settles.
  const RunResult a = RunOnce(7, 512);
  const RunResult big = RunOnce(7, 4096);
  EXPECT_EQ(a.rss, big.rss);
  EXPECT_EQ(a.free_frames, big.free_frames);
}

}  // namespace
}  // namespace hyperalloc
