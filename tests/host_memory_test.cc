// Sharded host frame pool: credit-chain conservation, batched
// refill/drain, the cross-shard rebalancer, and (under TSan) the
// concurrent admission / peak-tracking paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/hv/host_memory.h"

namespace hyperalloc {
namespace {

using hv::HostMemory;

constexpr uint64_t kBatch = HostMemory::kCreditBatch;  // 512

// Every free frame is parked in exactly one credit bucket when no
// operation is in flight.
void ExpectQuiescent(const HostMemory& pool) {
  EXPECT_EQ(pool.DebugFreeCredits() + pool.used_frames(),
            pool.total_frames())
      << "credit chain leaked or double-counted frames";
  EXPECT_GE(pool.peak_frames(), pool.used_frames());
  EXPECT_LE(pool.peak_frames(), pool.total_frames());
}

TEST(HostMemorySharded, FirstReserveRefillsShardFromGlobal) {
  HostMemory pool(4 * kBatch, /*shards=*/2);
  EXPECT_TRUE(pool.TryReserve(100, /*shard=*/0));
  // The refill pulled the shortfall plus one credit batch, so the next
  // reservations stay shard-local.
  EXPECT_EQ(pool.DebugShardCredit(0), kBatch);
  EXPECT_EQ(pool.DebugGlobalFree(), 4 * kBatch - 100 - kBatch);
  EXPECT_EQ(pool.refills(), 1u);

  // Exactly the banked credit line: the fast path drains it to zero
  // without touching the global reserve again.
  EXPECT_TRUE(pool.TryReserve(kBatch, /*shard=*/0));
  EXPECT_EQ(pool.refills(), 1u);
  EXPECT_EQ(pool.DebugShardCredit(0), 0u);
  ExpectQuiescent(pool);
}

TEST(HostMemorySharded, ShardLocalFastPathLeavesGlobalAlone) {
  HostMemory pool(4 * kBatch, /*shards=*/2);
  EXPECT_TRUE(pool.TryReserve(8, 0));  // refill: credit line now 512
  const uint64_t global_before = pool.DebugGlobalFree();
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(pool.TryReserve(8, 0));
  }
  EXPECT_EQ(pool.DebugGlobalFree(), global_before)
      << "512 frames of credit must absorb 64 x 8 frames shard-locally";
  EXPECT_EQ(pool.refills(), 1u);
  ExpectQuiescent(pool);
}

TEST(HostMemorySharded, RebalanceRaidsOtherShardsNearTheLimit) {
  HostMemory pool(2 * kBatch, /*shards=*/2);
  // Shard 0 takes half the pool and banks a full credit batch.
  EXPECT_TRUE(pool.TryReserve(kBatch, 0));
  EXPECT_EQ(pool.DebugShardCredit(0), kBatch);
  EXPECT_EQ(pool.DebugGlobalFree(), 0u);

  // Shard 1 wants the other half: the global reserve is dry, so the
  // remaining free memory has to come out of shard 0's credit line.
  EXPECT_TRUE(pool.TryReserve(kBatch, 1));
  EXPECT_EQ(pool.rebalances(), 1u);
  EXPECT_EQ(pool.used_frames(), 2 * kBatch);
  EXPECT_EQ(pool.DebugFreeCredits(), 0u);

  // Fully committed: nothing more to admit, nothing changed by asking.
  EXPECT_FALSE(pool.TryReserve(1, 0));
  EXPECT_FALSE(pool.TryReserve(1, 1));
  ExpectQuiescent(pool);
}

TEST(HostMemorySharded, ReserveSucceedsWhenPeersAndGlobalJointlyCover) {
  // Regression: the hysteresis drain can leave free memory split between
  // a peer shard's credit line and the global reserve so that neither
  // alone covers a request while their sum does. The feasibility
  // pre-scan must consider the joint sum — a partial peer raid topped
  // off from the global reserve — or the reservation fails with 3000
  // frames free.
  HostMemory pool(3000, /*shards=*/2);
  EXPECT_TRUE(pool.TryReserve(2500, 0));
  pool.Release(2500, 0);
  // With the default watermarks shard 0 keeps drain_low (1024) and the
  // drain parks the rest (1976) in the global reserve: each bucket
  // individually short of the 2000-frame request below.
  EXPECT_LT(pool.DebugShardCredit(0), 2000u);
  EXPECT_LT(pool.DebugGlobalFree(), 2000u);
  EXPECT_TRUE(pool.TryReserve(2000, 1))
      << "3000 frames free, 2000 requested: the raid must combine peer "
         "credit with the global reserve";
  EXPECT_EQ(pool.rebalances(), 1u);
  EXPECT_EQ(pool.used_frames(), 2000u);
  pool.Release(2000, 1);
  ExpectQuiescent(pool);
}

TEST(HostMemorySharded, FailedReserveReturnsPartialCredit) {
  HostMemory pool(kBatch, /*shards=*/2);
  EXPECT_TRUE(pool.TryReserve(kBatch / 2, 0));
  // Asking for more than the whole pool still has: must fail and leave
  // every remaining frame findable (no stranded in-hand credit).
  EXPECT_FALSE(pool.TryReserve(kBatch, 1));
  EXPECT_EQ(pool.used_frames(), kBatch / 2);
  EXPECT_EQ(pool.DebugFreeCredits(), kBatch / 2);
  EXPECT_TRUE(pool.TryReserve(kBatch / 2, 1));
  ExpectQuiescent(pool);
}

TEST(HostMemorySharded, ReleaseDrainsExcessCreditBackToGlobal) {
  HostMemory pool(8 * kBatch, /*shards=*/2);
  EXPECT_TRUE(pool.TryReserve(4 * kBatch, 0));
  pool.Release(4 * kBatch, 0);
  // The shard keeps one batch; the rest went back to the reserve, so an
  // idle shard cannot strand free memory.
  EXPECT_LE(pool.DebugShardCredit(0), 2 * kBatch);
  EXPECT_GE(pool.drains(), 1u);
  EXPECT_EQ(pool.used_frames(), 0u);
  ExpectQuiescent(pool);

  // The drained frames are admissible from the *other* shard.
  EXPECT_TRUE(pool.TryReserve(6 * kBatch, 1));
  ExpectQuiescent(pool);
}

TEST(HostMemorySharded, RandomOpsConserveCredits) {
  HostMemory pool(16 * kBatch, /*shards=*/4);
  Rng rng(7);
  std::vector<std::pair<uint64_t, unsigned>> held;  // {frames, shard}
  for (int i = 0; i < 20000; ++i) {
    const unsigned shard = static_cast<unsigned>(rng.Below(4));
    if (rng.Chance(0.55)) {
      const uint64_t frames = 1 + rng.Below(3 * kBatch);
      if (pool.TryReserve(frames, shard)) {
        held.emplace_back(frames, shard);
      }
    } else if (!held.empty()) {
      const size_t idx = rng.Below(held.size());
      pool.Release(held[idx].first, held[idx].second);
      held[idx] = held.back();
      held.pop_back();
    }
    ASSERT_LE(pool.used_frames(), pool.total_frames()) << "overcommit";
  }
  for (const auto& [frames, shard] : held) {
    pool.Release(frames, shard);
  }
  EXPECT_EQ(pool.used_frames(), 0u);
  ExpectQuiescent(pool);
}

// The TSan target for scripts/check.sh: concurrent admission against one
// pool sized at half the aggregate demand, so every thread constantly
// crosses shard boundaries (refill, drain, rebalance, failure). The
// credit-conservation check afterwards catches lost or duplicated
// frames; TSan catches ordering bugs on the way.
TEST(HostMemorySharded, ConcurrentStressConservesFrames) {
  constexpr unsigned kThreads = 4;
  constexpr int kIters = 20000;
  HostMemory pool(8 * kBatch, kThreads);
  std::atomic<uint64_t> observed_peak{0};

  auto worker = [&pool, &observed_peak](unsigned seed) {
    Rng rng(seed);
    std::vector<uint64_t> held;
    for (int i = 0; i < kIters; ++i) {
      if (rng.Chance(0.6)) {
        const uint64_t frames = 1 + rng.Below(kBatch);
        if (pool.TryReserve(frames)) {
          held.push_back(frames);
          // Witness a lower bound for the high-water mark.
          const uint64_t used = pool.used_frames();
          uint64_t seen = observed_peak.load(std::memory_order_relaxed);
          while (seen < used &&
                 !observed_peak.compare_exchange_weak(
                     seen, used, std::memory_order_relaxed)) {
          }
        }
      } else if (!held.empty()) {
        pool.Release(held.back());
        held.pop_back();
      }
    }
    for (const uint64_t frames : held) {
      pool.Release(frames);
    }
  };

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back(worker, 100 + t);
  }
  for (std::thread& t : threads) {
    t.join();
  }

  EXPECT_EQ(pool.used_frames(), 0u);
  ExpectQuiescent(pool);
  // The CAS-max loop must never lose to a smaller value: the final peak
  // is at least any usage any thread ever observed.
  EXPECT_GE(pool.peak_frames(), observed_peak.load());
}

TEST(HostMemorySharded, ConcurrentSnapshotsStayInBounds) {
  HostMemory pool(4 * kBatch, 2);
  std::atomic<bool> stop{false};
  std::thread reader([&pool, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const hv::MemorySnapshot s = pool.snapshot();
      EXPECT_EQ(s.total, s.used + s.free);
      EXPECT_GE(s.peak, s.used);
      EXPECT_LE(s.used, s.total);
    }
  });
  Rng rng(3);
  std::vector<uint64_t> held;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Chance(0.6)) {
      const uint64_t frames = 1 + rng.Below(kBatch / 2);
      if (pool.TryReserve(frames)) {
        held.push_back(frames);
      }
    } else if (!held.empty()) {
      pool.Release(held.back());
      held.pop_back();
    }
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  for (const uint64_t frames : held) {
    pool.Release(frames);
  }
  ExpectQuiescent(pool);
}

}  // namespace
}  // namespace hyperalloc
