// Tests for virtio-balloon (4 KiB and huge-page variants) and free-page
// reporting.
#include <gtest/gtest.h>

#include "src/balloon/virtio_balloon.h"
#include "src/guest/guest_vm.h"

namespace hyperalloc::balloon {
namespace {

constexpr uint64_t kVmBytes = 256 * kMiB;

class BalloonTest : public ::testing::Test {
 protected:
  void Init(BalloonConfig config = {}) {
    sim_ = std::make_unique<sim::Simulation>();
    host_ = std::make_unique<hv::HostMemory>(FramesForBytes(kGiB));
    guest::GuestConfig gc;
    gc.memory_bytes = kVmBytes;
    gc.vcpus = 4;
    gc.dma32_bytes = 64 * kMiB;
    vm_ = std::make_unique<guest::GuestVm>(sim_.get(), host_.get(), gc);
    balloon_ = std::make_unique<VirtioBalloon>(vm_.get(), config);
  }

  void SetLimit(uint64_t bytes) {
    bool done = false;
    balloon_->Request({.target_bytes = bytes, .done = [&] { done = true; }});
    while (!done) {
      ASSERT_TRUE(sim_->Step());
    }
  }

  // Populates the whole VM (touch everything), as the inflate benchmark
  // does before reclaiming.
  void TouchAll() { vm_->Touch(0, vm_->total_frames()); }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<hv::HostMemory> host_;
  std::unique_ptr<guest::GuestVm> vm_;
  std::unique_ptr<VirtioBalloon> balloon_;
};

TEST_F(BalloonTest, InflateShrinksRssAndLimit) {
  Init();
  TouchAll();
  EXPECT_EQ(vm_->rss_bytes(), kVmBytes);
  SetLimit(64 * kMiB);
  EXPECT_EQ(balloon_->limit_bytes(), 64 * kMiB);
  EXPECT_EQ(balloon_->ballooned_bytes(), kVmBytes - 64 * kMiB);
  EXPECT_EQ(vm_->rss_bytes(), 64 * kMiB);
  // The ballooned frames are allocated inside the guest.
  EXPECT_EQ(vm_->FreeFrames() * kFrameSize, 64 * kMiB);
}

TEST_F(BalloonTest, InflateUsesPerPageMadvise) {
  Init();
  TouchAll();
  SetLimit(kVmBytes - 16 * kMiB);
  // 4 KiB granularity: one madvise per page.
  EXPECT_EQ(balloon_->total_madvise_calls(), FramesForBytes(16 * kMiB));
}

TEST_F(BalloonTest, HugeVariantUsesPerHugeMadvise) {
  BalloonConfig config;
  config.huge = true;
  Init(config);
  TouchAll();
  SetLimit(kVmBytes - 16 * kMiB);
  EXPECT_EQ(balloon_->total_madvise_calls(), 16 * kMiB / kHugeSize);
}

TEST_F(BalloonTest, HugeInflationIsMuchFasterThanBase) {
  // Granularity is the whole game (§5.3): same bytes, ~2 orders of
  // magnitude fewer operations.
  Init();
  TouchAll();
  const sim::Time t4k_start = sim_->now();
  SetLimit(128 * kMiB);
  const sim::Time t4k = sim_->now() - t4k_start;

  BalloonConfig config;
  config.huge = true;
  Init(config);
  TouchAll();
  const sim::Time t2m_start = sim_->now();
  SetLimit(128 * kMiB);
  const sim::Time t2m = sim_->now() - t2m_start;

  EXPECT_GT(t4k, 50 * t2m) << "huge ballooning should be >50x faster";
}

TEST_F(BalloonTest, DeflateReturnsMemoryLazily) {
  Init();
  TouchAll();
  SetLimit(64 * kMiB);
  SetLimit(kVmBytes);
  EXPECT_EQ(balloon_->ballooned_bytes(), 0u);
  EXPECT_EQ(vm_->FreeFrames() * kFrameSize, kVmBytes);
  // Deflation does not repopulate: RSS stays low until the guest touches.
  EXPECT_EQ(vm_->rss_bytes(), 64 * kMiB);
  const uint64_t faults_before = vm_->ept_faults_2m() + vm_->ept_faults_4k();
  TouchAll();
  EXPECT_EQ(vm_->rss_bytes(), kVmBytes);
  EXPECT_GT(vm_->ept_faults_2m() + vm_->ept_faults_4k(), faults_before);
}

TEST_F(BalloonTest, InflationInducesCachePressure) {
  Init();
  vm_->CacheAdd(kVmBytes);  // page cache everywhere
  const uint64_t cache_before = vm_->cache_bytes();
  SetLimit(64 * kMiB);
  EXPECT_EQ(balloon_->limit_bytes(), 64 * kMiB);
  EXPECT_LT(vm_->cache_bytes(), cache_before)
      << "ballooning must evict page cache under pressure";
  EXPECT_EQ(vm_->oom_events(), 0u);
}

TEST_F(BalloonTest, PartialInflationWhenGuestCannotGiveMore) {
  Init();
  // Pin most memory with unreclaimable allocations.
  std::vector<FrameId> pinned;
  for (uint64_t i = 0; i < FramesForBytes(200 * kMiB); ++i) {
    const Result<FrameId> r = vm_->Alloc(0, AllocType::kUnmovable);
    ASSERT_TRUE(r.ok());
    pinned.push_back(*r);
  }
  SetLimit(16 * kMiB);  // impossible: only ~56 MiB are free
  EXPECT_GT(balloon_->limit_bytes(), 16 * kMiB);
  EXPECT_LE(balloon_->ballooned_bytes(), 56 * kMiB);
}

TEST_F(BalloonTest, FreePageReportingReclaimsIdleMemory) {
  BalloonConfig config;
  config.reporting_order = kHugeOrder;
  config.reporting_delay = 2 * sim::kSec;
  config.reporting_capacity = 32;
  Init(config);
  // Simulate a finished workload: memory was touched and freed.
  TouchAll();
  EXPECT_EQ(vm_->rss_bytes(), kVmBytes);
  balloon_->StartAuto();
  sim_->RunUntil(30 * sim::kSec);
  EXPECT_LT(vm_->rss_bytes(), kVmBytes / 4)
      << "free-page reporting should have discarded most free memory";
  // Reported frames remain free for the guest (no limit change).
  EXPECT_EQ(balloon_->limit_bytes(), kVmBytes);
  EXPECT_EQ(vm_->FreeFrames() * kFrameSize, kVmBytes);
  balloon_->StopAuto();
}

TEST_F(BalloonTest, ReportingRespectsCapacityBatching) {
  BalloonConfig config;
  config.reporting_order = kHugeOrder;
  config.reporting_capacity = 16;
  Init(config);
  TouchAll();
  balloon_->StartAuto();
  sim_->RunUntil(10 * sim::kSec);
  balloon_->StopAuto();
  // 256 MiB / 2 MiB = 128 blocks at 16 per hypercall => >= 8 hypercalls.
  EXPECT_GE(balloon_->total_hypercalls(), 8u);
}

TEST_F(BalloonTest, ReportingDoesNotRereportUntouchedMemory) {
  BalloonConfig config;
  config.reporting_order = kHugeOrder;
  config.reporting_delay = sim::kSec;
  Init(config);
  TouchAll();
  balloon_->StartAuto();
  sim_->RunUntil(20 * sim::kSec);
  const uint64_t first_round = balloon_->reported_bytes_total();
  sim_->RunUntil(60 * sim::kSec);
  balloon_->StopAuto();
  // Nothing changed in the guest: no new reports.
  EXPECT_EQ(balloon_->reported_bytes_total(), first_round);
}

TEST_F(BalloonTest, ReportedMemoryFaultsBackOnReuse) {
  BalloonConfig config;
  config.reporting_order = kHugeOrder;
  Init(config);
  TouchAll();
  balloon_->StartAuto();
  sim_->RunUntil(30 * sim::kSec);
  balloon_->StopAuto();
  ASSERT_LT(vm_->rss_bytes(), kVmBytes / 4);
  // The guest allocates reported memory without any hypervisor
  // interaction — the DMA-unsafe part — and faults it back on access.
  const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
  ASSERT_TRUE(r.ok());
  const uint64_t rss_before = vm_->rss_bytes();
  vm_->Touch(*r, kFramesPerHuge);
  EXPECT_EQ(vm_->rss_bytes(), rss_before + kHugeSize);
}

TEST_F(BalloonTest, DeflateOnOomRescuesGuest) {
  BalloonConfig config;
  config.deflate_on_oom_bytes = 32 * kMiB;
  Init(config);
  SetLimit(32 * kMiB);  // balloon holds almost everything
  ASSERT_EQ(balloon_->limit_bytes(), 32 * kMiB);
  // The guest demands more than its limit: instead of OOMing, the
  // balloon deflates.
  std::vector<FrameId> frames;
  for (uint64_t i = 0; i < FramesForBytes(48 * kMiB); ++i) {
    const Result<FrameId> r = vm_->Alloc(0, AllocType::kUnmovable);
    ASSERT_TRUE(r.ok()) << "allocation " << i;
    frames.push_back(*r);
  }
  EXPECT_GT(balloon_->oom_deflations(), 0u);
  EXPECT_GT(balloon_->limit_bytes(), 32 * kMiB);
  EXPECT_EQ(vm_->oom_events(), 0u);
}

TEST_F(BalloonTest, DeflateOnOomDisabledStillOoms) {
  BalloonConfig config;
  config.deflate_on_oom_bytes = 0;
  Init(config);
  SetLimit(32 * kMiB);
  uint64_t allocated = 0;
  while (vm_->Alloc(0, AllocType::kUnmovable).ok()) {
    ++allocated;
  }
  EXPECT_EQ(allocated * kFrameSize, 32 * kMiB);
  EXPECT_GT(vm_->oom_events(), 0u);
  EXPECT_EQ(balloon_->oom_deflations(), 0u);
}

TEST_F(BalloonTest, InflationDoesNotCannibalizeItself) {
  BalloonConfig config;
  config.deflate_on_oom_bytes = 32 * kMiB;
  Init(config);
  // Pin most memory; the inflation target is unreachable. The balloon
  // must stop (partial) rather than deflating itself to keep going.
  std::vector<FrameId> pinned;
  for (uint64_t i = 0; i < FramesForBytes(200 * kMiB); ++i) {
    const Result<FrameId> r = vm_->Alloc(0, AllocType::kUnmovable);
    ASSERT_TRUE(r.ok());
    pinned.push_back(*r);
  }
  SetLimit(16 * kMiB);
  EXPECT_EQ(balloon_->oom_deflations(), 0u);
  EXPECT_GT(balloon_->limit_bytes(), 16 * kMiB);
}

TEST_F(BalloonTest, NotDmaSafeRejectsVfio) {
  sim::Simulation sim;
  hv::HostMemory host(FramesForBytes(kGiB));
  guest::GuestConfig gc;
  gc.memory_bytes = kVmBytes;
  gc.dma32_bytes = 64 * kMiB;
  gc.vfio = true;
  guest::GuestVm vm(&sim, &host, gc);
  EXPECT_DEATH(VirtioBalloon(&vm, BalloonConfig{}), "check failed");
}

TEST_F(BalloonTest, CandidateProperties) {
  Init();
  hv::DeflatorCaps caps = balloon_->caps();
  EXPECT_STREQ(caps.name, "virtio-balloon");
  EXPECT_FALSE(caps.dma_safe);
  EXPECT_TRUE(caps.supports_auto);
  EXPECT_EQ(caps.granularity_bytes, kFrameSize);
  BalloonConfig config;
  config.huge = true;
  Init(config);
  caps = balloon_->caps();
  EXPECT_STREQ(caps.name, "virtio-balloon-huge");
  EXPECT_EQ(caps.granularity_bytes, kHugeSize);
}

}  // namespace
}  // namespace hyperalloc::balloon
