// Tests for the market-driven memory orchestration (paper §6: memory
// pricing / auctioning across VMs).
#include <gtest/gtest.h>

#include "src/core/hyperalloc.h"
#include "src/hv/market.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::hv {
namespace {

class MarketTest : public ::testing::Test {
 protected:
  struct Tenant {
    std::unique_ptr<guest::GuestVm> vm;
    std::unique_ptr<core::HyperAllocMonitor> monitor;
    std::unique_ptr<workloads::MemoryPool> pool;
    size_t id = 0;
  };

  void Init(int tenants, double* budgets, uint64_t host_bytes = 8 * kGiB,
            MarketConfig config = {}) {
    sim_ = std::make_unique<sim::Simulation>();
    host_ = std::make_unique<HostMemory>(FramesForBytes(host_bytes));
    market_ = std::make_unique<MemoryMarket>(sim_.get(), host_.get(),
                                             config);
    for (int i = 0; i < tenants; ++i) {
      auto tenant = std::make_unique<Tenant>();
      guest::GuestConfig gc;
      gc.memory_bytes = 4 * kGiB;
      gc.vcpus = 2;
      gc.dma32_bytes = 0;
      gc.allocator = guest::AllocatorKind::kLLFree;
      tenant->vm = std::make_unique<guest::GuestVm>(sim_.get(), host_.get(),
                                                    gc);
      tenant->monitor = std::make_unique<core::HyperAllocMonitor>(
          tenant->vm.get(), core::HyperAllocConfig{});
      tenant->pool =
          std::make_unique<workloads::MemoryPool>(tenant->vm.get());
      tenant->id = market_->Register(tenant->vm.get(),
                                     tenant->monitor.get(), budgets[i]);
      tenants_.push_back(std::move(tenant));
    }
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<HostMemory> host_;
  std::unique_ptr<MemoryMarket> market_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
};

TEST_F(MarketTest, PriceRisesWithScarcity) {
  double budgets[] = {100.0};
  Init(1, budgets);
  market_->Tick();
  const double idle_price = market_->current_price();
  tenants_[0]->pool->AllocRegion(3 * kGiB, 0.5, 0);
  market_->Tick();
  EXPECT_GT(market_->current_price(), idle_price);
}

TEST_F(MarketTest, LimitsFollowDemand) {
  double budgets[] = {100.0};  // rich tenant: demand-limited
  Init(1, budgets);
  const uint64_t region = tenants_[0]->pool->AllocRegion(2 * kGiB, 0.5, 0);
  market_->Tick();
  sim_->RunUntilIdle();
  // demand = 2 GiB used + 0.5 GiB headroom.
  EXPECT_NEAR(static_cast<double>(market_->CurrentLimit(0)),
              2.5 * static_cast<double>(kGiB),
              0.26 * static_cast<double>(kGiB));
  // Demand drops: the next round shrinks the limit (and the bill).
  tenants_[0]->pool->FreeRegion(region, 0);
  tenants_[0]->vm->PurgeAllocatorCaches();
  market_->Tick();
  sim_->RunUntilIdle();
  EXPECT_LE(market_->CurrentLimit(0), kGiB);
}

TEST_F(MarketTest, PoorTenantSqueezedUnderScarcity) {
  // Two tenants use 3 GiB each on a tight host; the rich tenant's memory
  // is anonymous (unreclaimable), the poor one's is page cache. When the
  // price spikes, the poor tenant can no longer afford its cache: the
  // limit squeeze evicts it (6: "actively shrinking the page cache ...
  // could make economic sense").
  double budgets[] = {256.0, 4.0};
  MarketConfig config;
  config.scarcity_exponent = 3.0;
  Init(2, budgets, 8 * kGiB, config);
  tenants_[0]->pool->AllocRegion(3 * kGiB, 0.5, 0);
  tenants_[1]->vm->CacheAdd(3 * kGiB);
  market_->Tick();
  sim_->RunUntilIdle();
  market_->Tick();  // second round reacts to the post-resize price
  sim_->RunUntilIdle();
  EXPECT_GT(market_->CurrentLimit(0), market_->CurrentLimit(1))
      << "the high-budget tenant must keep more memory";
  EXPECT_LE(market_->CurrentLimit(1), 2 * kGiB);
  EXPECT_LT(tenants_[1]->vm->cache_bytes(), 3 * kGiB)
      << "the squeeze must have evicted cache";
  // The rich tenant's working set is untouched.
  EXPECT_GE(market_->CurrentLimit(0), 3 * kGiB);
}

TEST_F(MarketTest, BillingAccumulatesGibSeconds) {
  double budgets[] = {100.0};
  Init(1, budgets);
  // Hold a steady 2 GiB working set: the market converges on a ~2.5 GiB
  // limit and bills it per GiB-second.
  tenants_[0]->pool->AllocRegion(2 * kGiB, 0.5, 0);
  market_->Start();
  sim_->RunUntil(sim_->now() + 30 * sim::kSec);
  const double at_30s = market_->BilledCredits(0);
  sim_->RunUntil(sim_->now() + 30 * sim::kSec);
  market_->Stop();
  const double at_60s = market_->BilledCredits(0);
  EXPECT_GT(at_30s, 0.0);
  EXPECT_GT(at_60s, at_30s * 1.5) << "the meter must keep running";
  // Order of magnitude: ~2.5-4 GiB x 60 s x ~1.1-1.6 credits.
  EXPECT_GT(at_60s, 100.0);
  EXPECT_LT(at_60s, 600.0);
}

TEST_F(MarketTest, HysteresisAvoidsChurn) {
  double budgets[] = {100.0};
  Init(1, budgets);
  market_->Tick();
  sim_->RunUntilIdle();
  const uint64_t limit = market_->CurrentLimit(0);
  // Tiny demand change: the limit must not move.
  tenants_[0]->pool->AllocRegion(64 * kMiB, 0.0, 0);
  market_->Tick();
  sim_->RunUntilIdle();
  EXPECT_EQ(market_->CurrentLimit(0), limit);
}

}  // namespace
}  // namespace hyperalloc::hv
