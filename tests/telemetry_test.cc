// Tests for the fleet telemetry pipeline (src/telemetry/): burn-window
// math and alert rising edges, flight-recorder triggers / ring coverage /
// cooldown / dump cap, the hierarchical per-shard -> fleet series merge,
// the hyperalloc-flight-v1 document shape, and stream digest
// determinism. The pipeline is driven directly (no fleet engine) with
// synthetic gauge sets; the engine-integration side — byte-identical
// digests across worker-thread counts at fleet scale — lives in
// tests/fleet_test.cc.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/telemetry/telemetry.h"

namespace hyperalloc::telemetry {
namespace {

#if HYPERALLOC_TRACE

constexpr sim::Time kEpoch = 5 * sim::kSec;

// A quiet fleet: every VM idle at the same limit/WSS.
std::vector<VmGauges> QuietGauges(uint64_t vms, uint64_t limit_bytes,
                                  uint64_t wss_bytes) {
  std::vector<VmGauges> gauges(vms);
  for (uint64_t i = 0; i < vms; ++i) {
    gauges[i].vm = i;
    gauges[i].limit_bytes = limit_bytes;
    gauges[i].wss_bytes = wss_bytes;
    gauges[i].rss_bytes = wss_bytes;
  }
  return gauges;
}

TelemetryOptions QuietOptions() {
  TelemetryOptions options;
  // No span/trace emission: these tests drive the pipeline without the
  // global tracers and must not depend on their state.
  options.emit_spans = false;
  return options;
}

TEST(Burn, LatencyAlertFiresOnRisingEdgeOnly) {
  TelemetryOptions options = QuietOptions();
  options.burn_fast_epochs = 2;
  options.burn_slow_epochs = 4;
  // Defaults otherwise: budget 0.01, thresholds 8x fast / 2x slow,
  // latency target 400 ms.
  Pipeline pipeline(options, /*vms=*/4, /*pool_shards=*/2, kEpoch);
  const std::vector<VmGauges> gauges = QuietGauges(4, 64 << 20, 32 << 20);

  sim::Time at = 0;
  auto epoch = [&](std::vector<double> completed_ms) {
    at += kEpoch;
    pipeline.OnEpoch(at, gauges, /*committed=*/128 << 20, /*pressure=*/0.5,
                     /*granted=*/0, /*clipped=*/0, /*rejected=*/0,
                     completed_ms);
  };

  // Three epochs of blown latency: error fraction 1.0 -> fast burn 100x
  // and slow burn 100x from the first epoch. One alert (the edge), not
  // one per epoch.
  epoch({500.0, 650.0});
  epoch({500.0});
  epoch({900.0});
  // Recovery: on-time completions push the fast window back under its
  // threshold, resetting the edge detector.
  for (int i = 0; i < 6; ++i) {
    epoch({10.0, 20.0});
  }
  // Relapse at epoch 9: a second rising edge, a second alert. One late
  // epoch is enough — fast window mean 0.5 -> 50x burn, slow window mean
  // 0.25 -> 25x.
  epoch({1200.0});
  epoch({1200.0});

  const TelemetryResult result = pipeline.Finish();
  ASSERT_EQ(result.alert_events.size(), 2u);
  EXPECT_EQ(result.alert_events[0].kind, AlertKind::kLatencyBurn);
  EXPECT_EQ(result.alert_events[0].epoch, 0u);
  EXPECT_GE(result.alert_events[0].burn_fast, 8.0);
  EXPECT_GE(result.alert_events[0].burn_slow, 2.0);
  EXPECT_EQ(result.alert_events[1].kind, AlertKind::kLatencyBurn);
  EXPECT_EQ(result.alert_events[1].epoch, 9u);
  EXPECT_EQ(result.alerts, 2u);
  // Epochs with no completions contribute zero error, not NaN.
  EXPECT_EQ(result.fleet.back().latency_burn_fast,
            result.fleet.back().latency_burn_fast);  // not NaN
}

TEST(Burn, PressureAlertUsesPressureCeiling) {
  TelemetryOptions options = QuietOptions();
  options.burn_fast_epochs = 1;
  options.burn_slow_epochs = 2;
  options.slo_pressure = 0.9;
  Pipeline pipeline(options, 2, 1, kEpoch);
  const std::vector<VmGauges> gauges = QuietGauges(2, 64 << 20, 32 << 20);
  // Over the ceiling from the first epoch: binary error 1.0.
  pipeline.OnEpoch(kEpoch, gauges, 1 << 30, /*pressure=*/0.95, 0, 0, 0, {});
  pipeline.OnEpoch(2 * kEpoch, gauges, 1 << 30, 0.95, 0, 0, 0, {});
  const TelemetryResult result = pipeline.Finish();
  ASSERT_GE(result.alert_events.size(), 1u);
  EXPECT_EQ(result.alert_events[0].kind, AlertKind::kPressureBurn);
  EXPECT_GT(result.fleet.back().pressure_burn_fast, 8.0);
}

TEST(Flight, QuarantineFreezesRingWithHistory) {
  TelemetryOptions options = QuietOptions();
  options.flight_depth = 8;
  Pipeline pipeline(options, 4, 2, kEpoch);
  std::vector<VmGauges> gauges = QuietGauges(4, 64 << 20, 32 << 20);

  // Ten quiet epochs fill the ring past its depth...
  for (int k = 0; k < 10; ++k) {
    pipeline.OnEpoch((k + 1) * kEpoch, gauges, 128 << 20, 0.5, 0, 0, 0, {});
  }
  // ...then VM 3 enters quarantine at epoch 10.
  gauges[3].quarantined = true;
  gauges[3].quarantined_frames = 16;
  pipeline.OnEpoch(11 * kEpoch, gauges, 128 << 20, 0.5, 0, 0, 0, {});

  const TelemetryResult result = pipeline.Finish();
  ASSERT_EQ(result.dumps.size(), 1u);
  const FlightDump& dump = result.dumps[0];
  EXPECT_EQ(dump.trigger, FlightTrigger::kQuarantine);
  EXPECT_EQ(dump.vm, 3u);
  EXPECT_EQ(dump.epoch, 10u);
  // The ring covers the trigger epoch plus >= 7 epochs of history (the
  // postmortem acceptance bound is >= 8 epochs before the trigger
  // counting it).
  EXPECT_EQ(dump.ring_epochs, 8u);
  // hyperalloc-flight-v1 document shape (full schema validation is
  // scripts/check_bench_json.py's job; these are the load-bearing
  // landmarks).
  EXPECT_NE(dump.json.find("\"schema\": \"hyperalloc-flight-v1\""),
            std::string::npos);
  EXPECT_NE(dump.json.find("\"kind\": \"quarantine\""), std::string::npos);
  EXPECT_NE(dump.json.find("\"vm\": 3"), std::string::npos);
  EXPECT_NE(dump.json.find("\"vms_detail\""), std::string::npos);
  EXPECT_NE(dump.json.find("\"counter_deltas\""), std::string::npos);
  // Oldest ring frame is epoch 3 (10 - 8 + 1).
  EXPECT_NE(dump.json.find("{\"epoch\": 3,"), std::string::npos);
  EXPECT_EQ(dump.json.find("{\"epoch\": 2,"), std::string::npos);
  // The Perfetto bundle carries counter tracks for the same window.
  EXPECT_NE(dump.perfetto.find("\"ph\":\"C\""), std::string::npos);

  // A quarantine is an edge, not a level: the already-quarantined VM
  // must not re-trigger (result would hold a second dump otherwise).
  EXPECT_EQ(result.flight_dumps, 1u);
}

TEST(Flight, CooldownSpacesDumpsAndCapHolds) {
  TelemetryOptions options = QuietOptions();
  options.flight_depth = 4;
  options.flight_cooldown_epochs = 4;
  options.flight_max_dumps = 2;
  const uint64_t vms = 24;
  Pipeline pipeline(options, vms, 2, kEpoch);
  std::vector<VmGauges> gauges = QuietGauges(vms, 64 << 20, 32 << 20);
  // A new VM quarantines every epoch: without the cooldown this would
  // dump every epoch, without the cap it would dump forever.
  for (uint64_t k = 0; k < vms; ++k) {
    gauges[k].quarantined = true;
    pipeline.OnEpoch((k + 1) * kEpoch, gauges, 128 << 20, 0.5, 0, 0, 0, {});
  }
  const TelemetryResult result = pipeline.Finish();
  ASSERT_EQ(result.dumps.size(), 2u);
  EXPECT_GE(result.dumps[1].epoch - result.dumps[0].epoch,
            uint64_t{options.flight_cooldown_epochs});
}

TEST(Flight, RejectSpikeTrigger) {
  TelemetryOptions options = QuietOptions();
  options.reject_spike_threshold = 5;
  Pipeline pipeline(options, 2, 1, kEpoch);
  const std::vector<VmGauges> gauges = QuietGauges(2, 64 << 20, 32 << 20);
  // Cumulative rejections: +2 (quiet), +7 (spike).
  pipeline.OnEpoch(kEpoch, gauges, 1 << 30, 0.5, 10, 0, 2, {});
  pipeline.OnEpoch(2 * kEpoch, gauges, 1 << 30, 0.5, 10, 0, 9, {});
  const TelemetryResult result = pipeline.Finish();
  ASSERT_EQ(result.dumps.size(), 1u);
  EXPECT_EQ(result.dumps[0].trigger, FlightTrigger::kRejectSpike);
  EXPECT_EQ(result.fleet[1].rejected_delta, 7u);
  EXPECT_NE(result.dumps[0].json.find("\"kind\": \"reject_spike\""),
            std::string::npos);
}

TEST(Hierarchy, ShardMergeEqualsDirectVmAggregation) {
  TelemetryOptions options = QuietOptions();
  options.shards = 4;
  options.record_vm_series = true;
  const uint64_t vms = 10;  // deliberately not a multiple of shards
  Pipeline pipeline(options, vms, /*pool_shards=*/8, kEpoch);

  for (int k = 0; k < 6; ++k) {
    std::vector<VmGauges> gauges(vms);
    for (uint64_t i = 0; i < vms; ++i) {
      gauges[i].vm = i;
      gauges[i].limit_bytes = (i + 1) * (k + 2) * (4 << 20);
      gauges[i].wss_bytes = (i + 1) * (k + 1) * (3 << 20);
    }
    pipeline.OnEpoch((k + 1) * kEpoch, gauges, 1 << 30, 0.4, 0, 0, 0, {});
  }
  const TelemetryResult result = pipeline.Finish();

  ASSERT_EQ(result.shard_limit_gib.size(), 4u);
  ASSERT_EQ(result.vm_limit_gib.size(), vms);
  // Per-shard -> fleet merge must equal merging the raw per-VM series
  // directly: GiB values are exact doubles, so the grouping by ShardOf
  // is associative (see metrics::MergeSum).
  const metrics::TimeSeries direct_limit =
      metrics::MergeSum(result.vm_limit_gib, kEpoch);
  const metrics::TimeSeries direct_wss =
      metrics::MergeSum(result.vm_wss_gib, kEpoch);
  ASSERT_EQ(result.fleet_limit_gib.points().size(),
            direct_limit.points().size());
  for (size_t k = 0; k < direct_limit.points().size(); ++k) {
    EXPECT_EQ(result.fleet_limit_gib.points()[k].value,
              direct_limit.points()[k].value)
        << k;
    EXPECT_EQ(result.fleet_wss_gib.points()[k].value,
              direct_wss.points()[k].value)
        << k;
  }
  // The shard rollup itself covers every VM exactly once.
  uint64_t covered = 0;
  for (const ShardGauges& s : result.shard_last) {
    covered += s.vms;
  }
  EXPECT_EQ(covered, vms);
  // And the fleet flat row agrees with the shard sums.
  uint64_t shard_limit_sum = 0;
  for (const ShardGauges& s : result.shard_last) {
    shard_limit_sum += s.limit_bytes;
  }
  EXPECT_EQ(shard_limit_sum, result.fleet.back().limit_bytes);
}

TEST(Digest, IdenticalInputsIdenticalStream) {
  auto run = [](uint64_t wss_tweak) {
    TelemetryOptions options = QuietOptions();
    Pipeline pipeline(options, 3, 2, kEpoch);
    for (int k = 0; k < 5; ++k) {
      std::vector<VmGauges> gauges = QuietGauges(3, 64 << 20, 32 << 20);
      gauges[1].wss_bytes += wss_tweak;
      pipeline.OnEpoch((k + 1) * kEpoch, gauges, 128 << 20, 0.5, 0, 0, 0,
                       {12.5});
    }
    return pipeline.Finish();
  };
  const TelemetryResult a = run(0);
  const TelemetryResult b = run(0);
  const TelemetryResult c = run(4096);
  EXPECT_EQ(a.telemetry_digest, b.telemetry_digest);
  EXPECT_NE(a.telemetry_digest, 0u);
  // Any sampled value entering the stream must move the digest.
  EXPECT_NE(a.telemetry_digest, c.telemetry_digest);
}

TEST(Pipeline, DisabledSamplesNothing) {
  TelemetryOptions options = QuietOptions();
  options.enabled = false;
  Pipeline pipeline(options, 2, 1, kEpoch);
  EXPECT_FALSE(pipeline.enabled());
  pipeline.OnEpoch(kEpoch, QuietGauges(2, 1 << 20, 1 << 20), 1 << 30, 0.99,
                   0, 0, 100, {});
  const TelemetryResult result = pipeline.Finish();
  EXPECT_FALSE(result.enabled);
  EXPECT_EQ(result.epochs, 0u);
  EXPECT_EQ(result.telemetry_digest, 0u);
  EXPECT_TRUE(result.fleet.empty());
  EXPECT_TRUE(result.dumps.empty());
}

#else  // !HYPERALLOC_TRACE

TEST(Pipeline, NotraceStubIsInert) {
  Pipeline pipeline(TelemetryOptions{}, 4, 2, 5 * sim::kSec);
  EXPECT_FALSE(pipeline.enabled());
  pipeline.OnEpoch(sim::kSec, {}, 0, 0.0, 0, 0, 0, {});
  const TelemetryResult result = pipeline.Finish();
  EXPECT_FALSE(result.enabled);
  EXPECT_EQ(result.epochs, 0u);
}

#endif  // HYPERALLOC_TRACE

}  // namespace
}  // namespace hyperalloc::telemetry
