// Tests for virtio-mem: block (un)plug, movable-zone migration, VFIO
// pre-population, and the simulated auto-resizer.
#include <gtest/gtest.h>

#include "src/guest/guest_vm.h"
#include "src/vmem/virtio_mem.h"

namespace hyperalloc::vmem {
namespace {

constexpr uint64_t kVmBytes = 256 * kMiB;
constexpr uint64_t kMovableBytes = 192 * kMiB;
constexpr uint64_t kStaticBytes = kVmBytes - kMovableBytes;

class VmemTest : public ::testing::Test {
 protected:
  void Init(bool vfio = false, VmemConfig config = {}) {
    sim_ = std::make_unique<sim::Simulation>();
    host_ = std::make_unique<hv::HostMemory>(FramesForBytes(kGiB));
    guest::GuestConfig gc;
    gc.memory_bytes = kVmBytes;
    gc.vcpus = 4;
    gc.dma32_bytes = 0;
    gc.movable_bytes = kMovableBytes;
    gc.vfio = vfio;
    vm_ = std::make_unique<guest::GuestVm>(sim_.get(), host_.get(), gc);
    vmem_ = std::make_unique<VirtioMem>(vm_.get(), config);
  }

  void SetLimit(uint64_t bytes) {
    bool done = false;
    vmem_->Request({.target_bytes = bytes, .done = [&] { done = true; }});
    while (!done) {
      ASSERT_TRUE(sim_->Step());
    }
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<hv::HostMemory> host_;
  std::unique_ptr<guest::GuestVm> vm_;
  std::unique_ptr<VirtioMem> vmem_;
};

TEST_F(VmemTest, BootsFullyPlugged) {
  Init();
  EXPECT_EQ(vmem_->limit_bytes(), kVmBytes);
  EXPECT_EQ(vmem_->plugged_blocks(), kMovableBytes / kHugeSize);
  EXPECT_EQ(vm_->FreeFrames(), vm_->total_frames());
}

TEST_F(VmemTest, UnplugShrinksLimitAndRss) {
  Init();
  vm_->Touch(0, vm_->total_frames());
  EXPECT_EQ(vm_->rss_bytes(), kVmBytes);
  SetLimit(kVmBytes - 64 * kMiB);
  EXPECT_EQ(vmem_->limit_bytes(), kVmBytes - 64 * kMiB);
  EXPECT_EQ(vm_->rss_bytes(), kVmBytes - 64 * kMiB);
  // Unplugged frames are gone from the guest allocator.
  EXPECT_EQ(vm_->FreeFrames() * kFrameSize, kVmBytes - 64 * kMiB);
}

TEST_F(VmemTest, UnplugTakesHighestBlocksFirst) {
  Init();
  SetLimit(kVmBytes - 16 * kMiB);
  // The top 8 blocks of the movable zone must be offline.
  const guest::Zone& movable = vm_->zones().back();
  for (FrameId f = movable.end() - FramesForBytes(16 * kMiB);
       f < movable.end(); ++f) {
    EXPECT_FALSE(movable.buddy->IsFree(f - movable.start));
  }
}

TEST_F(VmemTest, CannotShrinkBelowStaticMemory) {
  Init();
  SetLimit(16 * kMiB);  // below the 64 MiB of non-hotpluggable memory
  // Everything hotpluggable is gone, but the static zones remain.
  EXPECT_EQ(vmem_->limit_bytes(), kStaticBytes);
  EXPECT_EQ(vmem_->plugged_blocks(), 0u);
}

TEST_F(VmemTest, PlugRestoresMemory) {
  Init();
  SetLimit(kVmBytes - 64 * kMiB);
  SetLimit(kVmBytes);
  EXPECT_EQ(vmem_->limit_bytes(), kVmBytes);
  EXPECT_EQ(vm_->FreeFrames(), vm_->total_frames());
  // Without VFIO, plugging does not populate host memory.
  EXPECT_EQ(vm_->rss_bytes(), 0u);
}

TEST_F(VmemTest, UnplugMigratesUsedBlocks) {
  VmemConfig config;
  Init(false, config);
  // Allocate movable memory that lands in the top blocks (buddy LIFO
  // hands out high addresses first).
  std::vector<FrameId> held;
  const guest::Zone& movable = vm_->zones().back();
  for (int i = 0; i < 512; ++i) {
    const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
    ASSERT_TRUE(r.ok());
    held.push_back(*r);
  }
  uint64_t in_top_half = 0;
  const FrameId mid = movable.start + movable.frames / 2;
  for (const FrameId f : held) {
    in_top_half += f >= mid ? 1 : 0;
  }
  ASSERT_GT(in_top_half, 0u);

  // Track migrations so we know where our frames went.
  struct Recorder : guest::MigrationListener {
    void OnFrameMigrated(FrameId from, FrameId to, unsigned order) override {
      moves.emplace_back(from, to);
      (void)order;
    }
    std::vector<std::pair<FrameId, FrameId>> moves;
  } recorder;
  vm_->AddMigrationListener(&recorder);

  SetLimit(kVmBytes - kMovableBytes / 2);  // unplug the top half
  EXPECT_EQ(vmem_->limit_bytes(), kVmBytes - kMovableBytes / 2);
  EXPECT_GT(vm_->migrated_frames(), 0u);

  // Apply the recorded moves to our handles and free them all: no frame
  // may be lost or double-owned.
  for (const auto& [from, to] : recorder.moves) {
    for (FrameId& f : held) {
      if (f == from) {
        f = to;
      }
    }
  }
  for (const FrameId f : held) {
    EXPECT_LT(f, mid) << "frame still inside the unplugged range";
    vm_->Free(f, 0);
  }
}

TEST_F(VmemTest, UnplugStopsWhenMigrationImpossible) {
  Init();
  // Fill the *entire* VM with movable allocations: no destination space.
  std::vector<FrameId> held;
  for (;;) {
    const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
    if (!r.ok()) {
      break;
    }
    held.push_back(*r);
  }
  const uint64_t limit_before = vmem_->limit_bytes();
  SetLimit(kVmBytes - 64 * kMiB);
  EXPECT_EQ(vmem_->limit_bytes(), limit_before)
      << "no block can be evacuated when memory is full";
  EXPECT_GT(vmem_->unpluggable_failures(), 0u);
  // The guest's memory must be fully intact.
  for (const FrameId f : held) {
    vm_->Free(f, 0);
  }
  EXPECT_EQ(vm_->FreeFrames(), vm_->total_frames());
}

TEST_F(VmemTest, VfioPrepopulatesAndPins) {
  Init(/*vfio=*/true);
  // DMA safety by pre-population: everything is backed and pinned.
  EXPECT_EQ(vm_->rss_bytes(), kVmBytes);
  EXPECT_EQ(vm_->iommu()->pinned_huge(), HugesForFrames(vm_->total_frames()));
  EXPECT_TRUE(vm_->DmaWrite(0, vm_->total_frames()));
}

TEST_F(VmemTest, VfioUnplugUnpinsAndPlugRepins) {
  Init(/*vfio=*/true);
  SetLimit(kVmBytes - 16 * kMiB);
  EXPECT_EQ(vm_->rss_bytes(), kVmBytes - 16 * kMiB);
  EXPECT_EQ(vm_->iommu()->pinned_huge(),
            HugesForFrames(vm_->total_frames()) - 8);
  EXPECT_GT(vm_->iommu()->iotlb_flushes(), 0u);

  SetLimit(kVmBytes);
  // Plugging with VFIO pre-populates again (the 21x slowdown of §5.3).
  EXPECT_EQ(vm_->rss_bytes(), kVmBytes);
  EXPECT_TRUE(vm_->DmaWrite(0, vm_->total_frames()));
}

TEST_F(VmemTest, VfioGrowCostsMoreThanPlainGrow) {
  Init(false);
  SetLimit(kVmBytes - 128 * kMiB);
  sim::Time t0 = sim_->now();
  SetLimit(kVmBytes);
  const sim::Time plain = sim_->now() - t0;

  Init(true);
  SetLimit(kVmBytes - 128 * kMiB);
  t0 = sim_->now();
  SetLimit(kVmBytes);
  const sim::Time vfio = sim_->now() - t0;
  EXPECT_GT(vfio, 5 * plain);
}

TEST_F(VmemTest, AutoResizerUnplugsIdleMemory) {
  VmemConfig config;
  config.auto_granularity = 32 * kMiB;
  config.auto_high_bytes = 64 * kMiB;
  config.auto_low_bytes = 16 * kMiB;
  Init(false, config);
  vm_->Touch(0, vm_->total_frames());
  vmem_->StartAuto();
  sim_->RunUntil(20 * sim::kSec);
  vmem_->StopAuto();
  EXPECT_LT(vmem_->limit_bytes(), kVmBytes)
      << "idle memory should have been unplugged";
  EXPECT_LT(vm_->rss_bytes(), kVmBytes);
  // It must keep a cushion: never down to the static minimum.
  EXPECT_GT(vm_->FreeFrames() * kFrameSize, config.auto_low_bytes);
}

TEST_F(VmemTest, CandidateProperties) {
  Init();
  const hv::DeflatorCaps caps = vmem_->caps();
  EXPECT_STREQ(caps.name, "virtio-mem");
  EXPECT_TRUE(caps.dma_safe);
  EXPECT_FALSE(caps.supports_auto);  // only the simulated resizer
  EXPECT_EQ(caps.granularity_bytes, kHugeSize);
}

}  // namespace
}  // namespace hyperalloc::vmem
