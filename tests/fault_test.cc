// Tests for the deterministic fault-injection and recovery layer
// (DESIGN.md §4.9): schedule determinism from a 64-bit seed, plan
// parsing, retry-with-backoff, per-request timeouts with partial
// reclaim, and frame/VM quarantine.
#include <gtest/gtest.h>

#include "src/core/hyperalloc.h"
#include "src/fault/fault.h"
#include "src/guest/guest_vm.h"

namespace hyperalloc::fault {
namespace {

TEST(FaultPlan, ParseProbabilityAndSteps) {
  Plan plan;
  std::string error;
  ASSERT_TRUE(Plan::Parse("ept_unmap:0.01,install@0@7,iommu_unpin:0.5!",
                          &plan, &error))
      << error;
  EXPECT_DOUBLE_EQ(plan.spec(Site::kEptUnmap).probability, 0.01);
  EXPECT_EQ(plan.spec(Site::kEptUnmap).kind, Kind::kTransient);
  EXPECT_EQ(plan.spec(Site::kInstallHypercall).steps,
            (std::vector<uint64_t>{0, 7}));
  EXPECT_DOUBLE_EQ(plan.spec(Site::kIommuUnpin).probability, 0.5);
  EXPECT_EQ(plan.spec(Site::kIommuUnpin).kind, Kind::kPermanent);
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlan, ParseAllSites) {
  Plan plan;
  ASSERT_TRUE(Plan::Parse("all:0.05", &plan, nullptr));
  for (unsigned i = 0; i < kNumSites; ++i) {
    EXPECT_DOUBLE_EQ(plan.sites[i].probability, 0.05);
  }
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  Plan plan;
  std::string error;
  EXPECT_FALSE(Plan::Parse("bogus_site:0.1", &plan, &error));
  EXPECT_NE(error.find("unknown fault site"), std::string::npos);
  EXPECT_FALSE(Plan::Parse("ept_unmap:1.5", &plan, &error));
  EXPECT_FALSE(Plan::Parse("ept_unmap", &plan, &error));
  EXPECT_FALSE(Plan::Parse("install@7@3", &plan, &error));
  EXPECT_NE(error.find("strictly increasing"), std::string::npos);
  EXPECT_FALSE(Plan::Parse("install@x", &plan, &error));
}

TEST(FaultPlan, ToStringRoundTrips) {
  Plan plan;
  plan.seed = 7;
  ASSERT_TRUE(Plan::Parse("ept_unmap:0.25,install@3@9!", &plan, nullptr));
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("seed=7"), std::string::npos);
  // The site list after "seed=N " re-parses to the same plan.
  Plan reparsed;
  ASSERT_TRUE(Plan::Parse(text.substr(text.find(' ') + 1), &reparsed,
                          nullptr));
  EXPECT_DOUBLE_EQ(reparsed.spec(Site::kEptUnmap).probability, 0.25);
  EXPECT_EQ(reparsed.spec(Site::kInstallHypercall).steps,
            (std::vector<uint64_t>{3, 9}));
  EXPECT_EQ(reparsed.spec(Site::kInstallHypercall).kind, Kind::kPermanent);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  Plan plan;
  plan.seed = 0xdeadbeef;
  ASSERT_TRUE(Plan::Parse("all:0.3", &plan, nullptr));
  Injector a(plan);
  Injector b(plan);
  // The decision for (site, index) is a pure function of the plan: two
  // injectors over the same plan produce byte-identical schedules, and
  // WouldFail predicts exactly what Poll later observes.
  for (unsigned s = 0; s < kNumSites; ++s) {
    const Site site = static_cast<Site>(s);
    for (uint64_t i = 0; i < 2000; ++i) {
      const bool predicted = a.WouldFail(site, i);
      EXPECT_EQ(a.Poll(site).has_value(), predicted);
      EXPECT_EQ(b.Poll(site).has_value(), predicted);
    }
  }
  EXPECT_EQ(a.injected_total(), b.injected_total());
  EXPECT_GT(a.injected_total(), 0u);
}

TEST(FaultInjector, DifferentSeedsDifferentSchedules) {
  Plan plan;
  ASSERT_TRUE(Plan::Parse("ept_unmap:0.5", &plan, nullptr));
  plan.seed = 1;
  Injector a(plan);
  plan.seed = 2;
  Injector b(plan);
  bool differs = false;
  for (uint64_t i = 0; i < 1000 && !differs; ++i) {
    differs = a.WouldFail(Site::kEptUnmap, i) !=
              b.WouldFail(Site::kEptUnmap, i);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, ProbabilityRoughlyCalibrated) {
  Plan plan;
  plan.seed = 99;
  ASSERT_TRUE(Plan::Parse("ept_unmap:0.1", &plan, nullptr));
  const Injector injector(plan);
  uint64_t hits = 0;
  constexpr uint64_t kTrials = 100000;
  for (uint64_t i = 0; i < kTrials; ++i) {
    hits += injector.WouldFail(Site::kEptUnmap, i) ? 1 : 0;
  }
  const double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.1, 0.01);
}

TEST(FaultInjector, StepScheduleFiresExactlyOnListedOps) {
  Plan plan;
  ASSERT_TRUE(Plan::Parse("install@2@5", &plan, nullptr));
  Injector injector(plan);
  for (uint64_t i = 0; i < 10; ++i) {
    const std::optional<Kind> kind = injector.Poll(Site::kInstallHypercall);
    EXPECT_EQ(kind.has_value(), i == 2 || i == 5) << "op " << i;
  }
  EXPECT_EQ(injector.injected(Site::kInstallHypercall), 2u);
  EXPECT_EQ(injector.ops(Site::kInstallHypercall), 10u);
}

TEST(FaultInjector, DisabledInjectorNeverFires) {
  Injector injector;  // default: no plan
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.Poll(Site::kEptUnmap).has_value());
  }
  // The null-safe wrapper used by every call site.
  EXPECT_FALSE(Poll(nullptr, Site::kEptUnmap).has_value());
  EXPECT_FALSE(Poll(&injector, Site::kEptUnmap).has_value());
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;  // 20 us initial, x2, 1 ms cap
  EXPECT_EQ(policy.BackoffNs(0), 20'000u);
  EXPECT_EQ(policy.BackoffNs(1), 40'000u);
  EXPECT_EQ(policy.BackoffNs(2), 80'000u);
  EXPECT_EQ(policy.BackoffNs(10), 1'000'000u);  // capped
}

// --- Recovery end to end against the HyperAlloc monitor ---------------

constexpr uint64_t kVmBytes = 256 * kMiB;

class FaultRecoveryTest : public ::testing::Test {
 protected:
  void Init(const std::string& plan_spec, core::HyperAllocConfig config = {},
            uint64_t seed = 42, bool vfio = false) {
    sim_ = std::make_unique<sim::Simulation>();
    host_ = std::make_unique<hv::HostMemory>(FramesForBytes(kGiB));
    guest::GuestConfig gc;
    gc.memory_bytes = kVmBytes;
    gc.vcpus = 4;
    gc.dma32_bytes = 64 * kMiB;
    gc.allocator = guest::AllocatorKind::kLLFree;
    gc.vfio = vfio;
    vm_ = std::make_unique<guest::GuestVm>(sim_.get(), host_.get(), gc);
    monitor_ = std::make_unique<core::HyperAllocMonitor>(vm_.get(), config);
    if (!plan_spec.empty()) {
      Plan plan;
      plan.seed = seed;
      std::string error;
      ASSERT_TRUE(Plan::Parse(plan_spec, &plan, &error)) << error;
      injector_ = std::make_unique<Injector>(plan);
      vm_->SetFaultInjector(injector_.get());
      host_->SetFaultInjector(injector_.get());
    }
  }

  // Backs `huges` huge frames with host memory, then frees them so the
  // monitor has real (mapped) memory to reclaim.
  void PopulateAndFree(int huges) {
    std::vector<FrameId> frames;
    for (int i = 0; i < huges; ++i) {
      const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kHuge);
      ASSERT_TRUE(r.ok());
      vm_->Touch(*r, kFramesPerHuge);
      frames.push_back(*r);
    }
    for (const FrameId f : frames) {
      vm_->Free(f, kHugeOrder);
    }
    vm_->PurgeAllocatorCaches();
  }

  hv::ResizeOutcome SetLimit(uint64_t bytes) {
    hv::ResizeOutcome outcome;
    bool done = false;
    monitor_->Request({.target_bytes = bytes,
                       .done = [&] { done = true; },
                       .on_outcome =
                           [&](const hv::ResizeOutcome& o) { outcome = o; }});
    while (!done) {
      EXPECT_TRUE(sim_->Step());
    }
    return outcome;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<hv::HostMemory> host_;
  std::unique_ptr<guest::GuestVm> vm_;
  std::unique_ptr<core::HyperAllocMonitor> monitor_;
  std::unique_ptr<Injector> injector_;
};

TEST_F(FaultRecoveryTest, InstallRetriesTransientFaultThenSucceeds) {
  Init("install@0");  // exactly the first install hypercall fails
  const sim::Time before = sim_->now();
  const Result<FrameId> r = vm_->Alloc(0, AllocType::kMovable);
  ASSERT_TRUE(r.ok());
  // The retry made the install succeed anyway...
  EXPECT_EQ(monitor_->installs(), 1u);
  EXPECT_EQ(monitor_->StateOf(FrameToHuge(*r)), core::ReclaimState::kInstalled);
  EXPECT_FALSE(monitor_->vm_quarantined());
  // ...at the cost of one observed fault, one retry, and its backoff in
  // virtual time.
  EXPECT_EQ(monitor_->faults_seen(), 1u);
  EXPECT_EQ(monitor_->fault_retries(), 1u);
  EXPECT_GE(sim_->now() - before, RetryPolicy{}.BackoffNs(0));
  // The second install consumes op index >= 1: no further faults.
  ASSERT_TRUE(vm_->Alloc(kHugeOrder, AllocType::kHuge).ok());
  EXPECT_EQ(monitor_->faults_seen(), 1u);
}

TEST_F(FaultRecoveryTest, TransientUnmapFaultsRollBackAndStillComplete) {
  Init("ept_unmap:0.2", {}, /*seed=*/7);
  PopulateAndFree(64);
  const hv::ResizeOutcome outcome = SetLimit(kVmBytes / 2);
  // Transient faults are absorbed by retry + rollback: the request still
  // reaches its target, only slower.
  EXPECT_TRUE(outcome.complete);
  EXPECT_FALSE(outcome.quarantined);
  EXPECT_EQ(monitor_->limit_bytes(), kVmBytes / 2);
  EXPECT_GT(monitor_->faults_seen(), 0u);
  EXPECT_EQ(monitor_->quarantined_huge(), 0u);
  // Whatever was rolled back must be in a legal, reclaimable state:
  // growing back to full size must succeed completely.
  const hv::ResizeOutcome grow = SetLimit(kVmBytes);
  EXPECT_TRUE(grow.complete);
  EXPECT_EQ(monitor_->limit_bytes(), kVmBytes);
}

TEST_F(FaultRecoveryTest, RequestTimeoutYieldsPartialReclaim) {
  // Measure how long a clean full shrink takes...
  core::HyperAllocConfig config;
  config.hugepages_per_slice = 8;  // many slices -> many deadline checks
  Init("", config);
  PopulateAndFree(64);
  const sim::Time t0 = sim_->now();
  ASSERT_TRUE(SetLimit(0).complete);
  const sim::Time clean_ns = sim_->now() - t0;
  ASSERT_GT(clean_ns, 0u);

  // ...then give an identical VM only half that budget: the request must
  // end partially, flagged timed_out, with every frame in a legal state.
  config.retry.request_timeout_ns = clean_ns / 2;
  Init("", config);
  PopulateAndFree(64);
  const hv::ResizeOutcome outcome = SetLimit(0);
  EXPECT_TRUE(outcome.timed_out);
  EXPECT_FALSE(outcome.complete);
  EXPECT_EQ(monitor_->fault_timeouts(), 1u);
  EXPECT_EQ(outcome.achieved_bytes, monitor_->limit_bytes());
  // Partial: some progress, but not all the way to the target.
  EXPECT_LT(monitor_->limit_bytes(), kVmBytes);
  EXPECT_GT(monitor_->limit_bytes(), 0u);
  // Degraded, not poisoned: the next (deadline-free) request finishes.
  config.retry.request_timeout_ns = 0;
  Init("", config);
  PopulateAndFree(64);
  EXPECT_TRUE(SetLimit(0).complete);
}

TEST_F(FaultRecoveryTest, PermanentFaultsQuarantineFramesThenVm) {
  core::HyperAllocConfig config;
  config.quarantine_frame_limit = 4;
  Init("ept_unmap:1!", config);  // every unmap fails permanently
  PopulateAndFree(64);
  const hv::ResizeOutcome outcome = SetLimit(0);
  // Permanent faults poison frames until the VM-level limit trips.
  EXPECT_TRUE(outcome.quarantined);
  EXPECT_TRUE(monitor_->vm_quarantined());
  EXPECT_GE(monitor_->quarantined_huge(), 4u);
  EXPECT_FALSE(outcome.complete);
  uint64_t quarantined_states = 0;
  for (HugeId h = 0; h < HugesForFrames(vm_->total_frames()); ++h) {
    quarantined_states +=
        monitor_->StateOf(h) == core::ReclaimState::kQuarantined ? 1 : 0;
  }
  EXPECT_EQ(quarantined_states, monitor_->quarantined_huge());
  // A poisoned VM refuses further resizes: the request completes
  // immediately, reporting quarantine, without touching any state.
  const uint64_t limit = monitor_->limit_bytes();
  const hv::ResizeOutcome again = SetLimit(kVmBytes);
  EXPECT_TRUE(again.quarantined);
  EXPECT_EQ(monitor_->limit_bytes(), limit);
}

TEST_F(FaultRecoveryTest, InjectionDisabledIsByteIdenticalToNoInjector) {
  // A VM with a null injector and one with an armed-but-empty plan must
  // produce identical virtual timelines (the injection-off determinism
  // guarantee the perf gate relies on).
  Init("");
  PopulateAndFree(32);
  SetLimit(kVmBytes / 2);
  const sim::Time without = sim_->now();

  Init("");
  injector_ = std::make_unique<Injector>(Plan{});  // enabled() == false
  vm_->SetFaultInjector(injector_.get());
  host_->SetFaultInjector(injector_.get());
  PopulateAndFree(32);
  SetLimit(kVmBytes / 2);
  EXPECT_EQ(sim_->now(), without);
  EXPECT_EQ(monitor_->faults_seen(), 0u);
}

}  // namespace
}  // namespace hyperalloc::fault
