file(REMOVE_RECURSE
  "CMakeFiles/bench_overcommit.dir/bench_overcommit.cc.o"
  "CMakeFiles/bench_overcommit.dir/bench_overcommit.cc.o.d"
  "bench_overcommit"
  "bench_overcommit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overcommit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
