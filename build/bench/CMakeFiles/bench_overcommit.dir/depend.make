# Empty dependencies file for bench_overcommit.
# This may be replaced when dependencies are built.
