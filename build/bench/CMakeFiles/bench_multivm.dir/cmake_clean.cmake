file(REMOVE_RECURSE
  "CMakeFiles/bench_multivm.dir/bench_multivm.cc.o"
  "CMakeFiles/bench_multivm.dir/bench_multivm.cc.o.d"
  "bench_multivm"
  "bench_multivm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multivm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
