# Empty dependencies file for bench_multivm.
# This may be replaced when dependencies are built.
