# Empty compiler generated dependencies file for bench_compiling.
# This may be replaced when dependencies are built.
