file(REMOVE_RECURSE
  "CMakeFiles/bench_compiling.dir/bench_compiling.cc.o"
  "CMakeFiles/bench_compiling.dir/bench_compiling.cc.o.d"
  "bench_compiling"
  "bench_compiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
