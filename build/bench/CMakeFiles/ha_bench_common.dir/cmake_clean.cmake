file(REMOVE_RECURSE
  "CMakeFiles/ha_bench_common.dir/candidates.cc.o"
  "CMakeFiles/ha_bench_common.dir/candidates.cc.o.d"
  "libha_bench_common.a"
  "libha_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
