# Empty dependencies file for ha_bench_common.
# This may be replaced when dependencies are built.
