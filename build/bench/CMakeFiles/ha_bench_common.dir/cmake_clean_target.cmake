file(REMOVE_RECURSE
  "libha_bench_common.a"
)
