file(REMOVE_RECURSE
  "CMakeFiles/bench_vfio_compile.dir/bench_vfio_compile.cc.o"
  "CMakeFiles/bench_vfio_compile.dir/bench_vfio_compile.cc.o.d"
  "bench_vfio_compile"
  "bench_vfio_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vfio_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
