# Empty dependencies file for bench_vfio_compile.
# This may be replaced when dependencies are built.
