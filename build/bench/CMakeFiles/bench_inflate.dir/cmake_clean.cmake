file(REMOVE_RECURSE
  "CMakeFiles/bench_inflate.dir/bench_inflate.cc.o"
  "CMakeFiles/bench_inflate.dir/bench_inflate.cc.o.d"
  "bench_inflate"
  "bench_inflate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inflate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
