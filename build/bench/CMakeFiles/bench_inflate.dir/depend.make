# Empty dependencies file for bench_inflate.
# This may be replaced when dependencies are built.
