# Empty compiler generated dependencies file for bench_llfree.
# This may be replaced when dependencies are built.
