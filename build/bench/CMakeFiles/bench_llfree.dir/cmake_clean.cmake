file(REMOVE_RECURSE
  "CMakeFiles/bench_llfree.dir/bench_llfree.cc.o"
  "CMakeFiles/bench_llfree.dir/bench_llfree.cc.o.d"
  "bench_llfree"
  "bench_llfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_llfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
