# Empty compiler generated dependencies file for bench_ftq.
# This may be replaced when dependencies are built.
