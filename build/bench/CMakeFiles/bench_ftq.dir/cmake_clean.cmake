file(REMOVE_RECURSE
  "CMakeFiles/bench_ftq.dir/bench_ftq.cc.o"
  "CMakeFiles/bench_ftq.dir/bench_ftq.cc.o.d"
  "bench_ftq"
  "bench_ftq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ftq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
