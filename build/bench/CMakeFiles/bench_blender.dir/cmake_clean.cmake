file(REMOVE_RECURSE
  "CMakeFiles/bench_blender.dir/bench_blender.cc.o"
  "CMakeFiles/bench_blender.dir/bench_blender.cc.o.d"
  "bench_blender"
  "bench_blender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
