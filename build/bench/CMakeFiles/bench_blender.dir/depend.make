# Empty dependencies file for bench_blender.
# This may be replaced when dependencies are built.
