# Empty compiler generated dependencies file for monitor_console.
# This may be replaced when dependencies are built.
