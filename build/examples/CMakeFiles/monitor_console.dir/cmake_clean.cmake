file(REMOVE_RECURSE
  "CMakeFiles/monitor_console.dir/monitor_console.cpp.o"
  "CMakeFiles/monitor_console.dir/monitor_console.cpp.o.d"
  "monitor_console"
  "monitor_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
