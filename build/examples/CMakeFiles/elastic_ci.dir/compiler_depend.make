# Empty compiler generated dependencies file for elastic_ci.
# This may be replaced when dependencies are built.
