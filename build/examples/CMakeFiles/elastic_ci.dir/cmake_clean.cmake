file(REMOVE_RECURSE
  "CMakeFiles/elastic_ci.dir/elastic_ci.cpp.o"
  "CMakeFiles/elastic_ci.dir/elastic_ci.cpp.o.d"
  "elastic_ci"
  "elastic_ci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_ci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
