
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/elastic_ci.cpp" "examples/CMakeFiles/elastic_ci.dir/elastic_ci.cpp.o" "gcc" "examples/CMakeFiles/elastic_ci.dir/elastic_ci.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ha_core.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/ha_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ha_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ha_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/vmem/CMakeFiles/ha_vmem.dir/DependInfo.cmake"
  "/root/repo/build/src/balloon/CMakeFiles/ha_balloon.dir/DependInfo.cmake"
  "/root/repo/build/src/llfree/CMakeFiles/ha_llfree.dir/DependInfo.cmake"
  "/root/repo/build/src/buddy/CMakeFiles/ha_buddy.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/ha_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ha_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
