file(REMOVE_RECURSE
  "CMakeFiles/device_passthrough.dir/device_passthrough.cpp.o"
  "CMakeFiles/device_passthrough.dir/device_passthrough.cpp.o.d"
  "device_passthrough"
  "device_passthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_passthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
