# Empty dependencies file for device_passthrough.
# This may be replaced when dependencies are built.
