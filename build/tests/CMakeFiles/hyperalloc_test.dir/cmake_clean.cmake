file(REMOVE_RECURSE
  "CMakeFiles/hyperalloc_test.dir/hyperalloc_test.cc.o"
  "CMakeFiles/hyperalloc_test.dir/hyperalloc_test.cc.o.d"
  "hyperalloc_test"
  "hyperalloc_test.pdb"
  "hyperalloc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperalloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
