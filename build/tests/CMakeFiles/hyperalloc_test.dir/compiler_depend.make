# Empty compiler generated dependencies file for hyperalloc_test.
# This may be replaced when dependencies are built.
