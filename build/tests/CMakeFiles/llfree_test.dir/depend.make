# Empty dependencies file for llfree_test.
# This may be replaced when dependencies are built.
