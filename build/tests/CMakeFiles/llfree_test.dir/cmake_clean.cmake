file(REMOVE_RECURSE
  "CMakeFiles/llfree_test.dir/llfree_test.cc.o"
  "CMakeFiles/llfree_test.dir/llfree_test.cc.o.d"
  "llfree_test"
  "llfree_test.pdb"
  "llfree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llfree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
