# Empty dependencies file for llfree_concurrent_test.
# This may be replaced when dependencies are built.
