file(REMOVE_RECURSE
  "CMakeFiles/llfree_concurrent_test.dir/llfree_concurrent_test.cc.o"
  "CMakeFiles/llfree_concurrent_test.dir/llfree_concurrent_test.cc.o.d"
  "llfree_concurrent_test"
  "llfree_concurrent_test.pdb"
  "llfree_concurrent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llfree_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
