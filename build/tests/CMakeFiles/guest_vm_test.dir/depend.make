# Empty dependencies file for guest_vm_test.
# This may be replaced when dependencies are built.
