file(REMOVE_RECURSE
  "CMakeFiles/llfree_internals_test.dir/llfree_internals_test.cc.o"
  "CMakeFiles/llfree_internals_test.dir/llfree_internals_test.cc.o.d"
  "llfree_internals_test"
  "llfree_internals_test.pdb"
  "llfree_internals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llfree_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
