# Empty dependencies file for llfree_internals_test.
# This may be replaced when dependencies are built.
