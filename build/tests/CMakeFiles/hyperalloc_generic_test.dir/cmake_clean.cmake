file(REMOVE_RECURSE
  "CMakeFiles/hyperalloc_generic_test.dir/hyperalloc_generic_test.cc.o"
  "CMakeFiles/hyperalloc_generic_test.dir/hyperalloc_generic_test.cc.o.d"
  "hyperalloc_generic_test"
  "hyperalloc_generic_test.pdb"
  "hyperalloc_generic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperalloc_generic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
