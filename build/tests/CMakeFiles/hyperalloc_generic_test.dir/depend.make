# Empty dependencies file for hyperalloc_generic_test.
# This may be replaced when dependencies are built.
