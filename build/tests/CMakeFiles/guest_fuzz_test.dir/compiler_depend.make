# Empty compiler generated dependencies file for guest_fuzz_test.
# This may be replaced when dependencies are built.
