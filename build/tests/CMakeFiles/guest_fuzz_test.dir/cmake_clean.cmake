file(REMOVE_RECURSE
  "CMakeFiles/guest_fuzz_test.dir/guest_fuzz_test.cc.o"
  "CMakeFiles/guest_fuzz_test.dir/guest_fuzz_test.cc.o.d"
  "guest_fuzz_test"
  "guest_fuzz_test.pdb"
  "guest_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
