
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/guest_fuzz_test.cc" "tests/CMakeFiles/guest_fuzz_test.dir/guest_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/guest_fuzz_test.dir/guest_fuzz_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ha_core.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/ha_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/buddy/CMakeFiles/ha_buddy.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/ha_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/llfree/CMakeFiles/ha_llfree.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ha_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
