# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/llfree_test[1]_include.cmake")
include("/root/repo/build/tests/llfree_concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/buddy_test[1]_include.cmake")
include("/root/repo/build/tests/guest_vm_test[1]_include.cmake")
include("/root/repo/build/tests/hyperalloc_test[1]_include.cmake")
include("/root/repo/build/tests/balloon_test[1]_include.cmake")
include("/root/repo/build/tests/vmem_test[1]_include.cmake")
include("/root/repo/build/tests/virtio_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/hv_test[1]_include.cmake")
include("/root/repo/build/tests/llfree_internals_test[1]_include.cmake")
include("/root/repo/build/tests/guest_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/console_test[1]_include.cmake")
include("/root/repo/build/tests/hyperalloc_generic_test[1]_include.cmake")
include("/root/repo/build/tests/compaction_test[1]_include.cmake")
include("/root/repo/build/tests/swap_test[1]_include.cmake")
include("/root/repo/build/tests/hotness_test[1]_include.cmake")
include("/root/repo/build/tests/market_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
