# Empty compiler generated dependencies file for ha_llfree.
# This may be replaced when dependencies are built.
