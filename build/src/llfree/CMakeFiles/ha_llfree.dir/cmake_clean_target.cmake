file(REMOVE_RECURSE
  "libha_llfree.a"
)
