file(REMOVE_RECURSE
  "CMakeFiles/ha_llfree.dir/bitfield.cc.o"
  "CMakeFiles/ha_llfree.dir/bitfield.cc.o.d"
  "CMakeFiles/ha_llfree.dir/llfree.cc.o"
  "CMakeFiles/ha_llfree.dir/llfree.cc.o.d"
  "libha_llfree.a"
  "libha_llfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_llfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
