
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llfree/bitfield.cc" "src/llfree/CMakeFiles/ha_llfree.dir/bitfield.cc.o" "gcc" "src/llfree/CMakeFiles/ha_llfree.dir/bitfield.cc.o.d"
  "/root/repo/src/llfree/llfree.cc" "src/llfree/CMakeFiles/ha_llfree.dir/llfree.cc.o" "gcc" "src/llfree/CMakeFiles/ha_llfree.dir/llfree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ha_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
