# Empty compiler generated dependencies file for ha_vmem.
# This may be replaced when dependencies are built.
