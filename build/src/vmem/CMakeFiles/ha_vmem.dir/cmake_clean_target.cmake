file(REMOVE_RECURSE
  "libha_vmem.a"
)
