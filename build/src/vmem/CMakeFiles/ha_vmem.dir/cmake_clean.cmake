file(REMOVE_RECURSE
  "CMakeFiles/ha_vmem.dir/virtio_mem.cc.o"
  "CMakeFiles/ha_vmem.dir/virtio_mem.cc.o.d"
  "libha_vmem.a"
  "libha_vmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_vmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
