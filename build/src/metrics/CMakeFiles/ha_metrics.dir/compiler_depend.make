# Empty compiler generated dependencies file for ha_metrics.
# This may be replaced when dependencies are built.
