file(REMOVE_RECURSE
  "CMakeFiles/ha_metrics.dir/timeseries.cc.o"
  "CMakeFiles/ha_metrics.dir/timeseries.cc.o.d"
  "libha_metrics.a"
  "libha_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
