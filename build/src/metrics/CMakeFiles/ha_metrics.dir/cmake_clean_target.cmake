file(REMOVE_RECURSE
  "libha_metrics.a"
)
