file(REMOVE_RECURSE
  "CMakeFiles/ha_swap.dir/market.cc.o"
  "CMakeFiles/ha_swap.dir/market.cc.o.d"
  "CMakeFiles/ha_swap.dir/swap.cc.o"
  "CMakeFiles/ha_swap.dir/swap.cc.o.d"
  "libha_swap.a"
  "libha_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
