file(REMOVE_RECURSE
  "libha_swap.a"
)
