# Empty compiler generated dependencies file for ha_swap.
# This may be replaced when dependencies are built.
