file(REMOVE_RECURSE
  "CMakeFiles/ha_hv.dir/console.cc.o"
  "CMakeFiles/ha_hv.dir/console.cc.o.d"
  "CMakeFiles/ha_hv.dir/ept.cc.o"
  "CMakeFiles/ha_hv.dir/ept.cc.o.d"
  "CMakeFiles/ha_hv.dir/interference.cc.o"
  "CMakeFiles/ha_hv.dir/interference.cc.o.d"
  "libha_hv.a"
  "libha_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
