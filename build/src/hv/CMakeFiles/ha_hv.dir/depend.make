# Empty dependencies file for ha_hv.
# This may be replaced when dependencies are built.
