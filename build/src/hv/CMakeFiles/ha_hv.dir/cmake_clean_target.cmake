file(REMOVE_RECURSE
  "libha_hv.a"
)
