file(REMOVE_RECURSE
  "libha_buddy.a"
)
