# Empty dependencies file for ha_buddy.
# This may be replaced when dependencies are built.
