file(REMOVE_RECURSE
  "CMakeFiles/ha_buddy.dir/buddy.cc.o"
  "CMakeFiles/ha_buddy.dir/buddy.cc.o.d"
  "libha_buddy.a"
  "libha_buddy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_buddy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
