file(REMOVE_RECURSE
  "libha_guest.a"
)
