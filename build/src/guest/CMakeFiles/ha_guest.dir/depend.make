# Empty dependencies file for ha_guest.
# This may be replaced when dependencies are built.
