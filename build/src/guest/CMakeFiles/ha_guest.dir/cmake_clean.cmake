file(REMOVE_RECURSE
  "CMakeFiles/ha_guest.dir/compaction.cc.o"
  "CMakeFiles/ha_guest.dir/compaction.cc.o.d"
  "CMakeFiles/ha_guest.dir/guest_vm.cc.o"
  "CMakeFiles/ha_guest.dir/guest_vm.cc.o.d"
  "libha_guest.a"
  "libha_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
