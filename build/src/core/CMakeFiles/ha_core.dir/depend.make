# Empty dependencies file for ha_core.
# This may be replaced when dependencies are built.
