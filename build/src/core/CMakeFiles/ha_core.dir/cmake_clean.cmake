file(REMOVE_RECURSE
  "CMakeFiles/ha_core.dir/hyperalloc.cc.o"
  "CMakeFiles/ha_core.dir/hyperalloc.cc.o.d"
  "CMakeFiles/ha_core.dir/hyperalloc_generic.cc.o"
  "CMakeFiles/ha_core.dir/hyperalloc_generic.cc.o.d"
  "libha_core.a"
  "libha_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
