file(REMOVE_RECURSE
  "libha_core.a"
)
