
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/virtio/virtqueue.cc" "src/virtio/CMakeFiles/ha_virtio.dir/virtqueue.cc.o" "gcc" "src/virtio/CMakeFiles/ha_virtio.dir/virtqueue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ha_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/ha_hv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
