file(REMOVE_RECURSE
  "libha_virtio.a"
)
