file(REMOVE_RECURSE
  "CMakeFiles/ha_virtio.dir/virtqueue.cc.o"
  "CMakeFiles/ha_virtio.dir/virtqueue.cc.o.d"
  "libha_virtio.a"
  "libha_virtio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_virtio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
