# Empty compiler generated dependencies file for ha_virtio.
# This may be replaced when dependencies are built.
