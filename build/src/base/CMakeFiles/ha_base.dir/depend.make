# Empty dependencies file for ha_base.
# This may be replaced when dependencies are built.
