file(REMOVE_RECURSE
  "libha_base.a"
)
