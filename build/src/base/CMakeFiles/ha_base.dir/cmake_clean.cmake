file(REMOVE_RECURSE
  "CMakeFiles/ha_base.dir/stats.cc.o"
  "CMakeFiles/ha_base.dir/stats.cc.o.d"
  "CMakeFiles/ha_base.dir/units.cc.o"
  "CMakeFiles/ha_base.dir/units.cc.o.d"
  "libha_base.a"
  "libha_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
