# Empty compiler generated dependencies file for ha_sim.
# This may be replaced when dependencies are built.
