file(REMOVE_RECURSE
  "libha_sim.a"
)
