file(REMOVE_RECURSE
  "CMakeFiles/ha_sim.dir/capacity_timeline.cc.o"
  "CMakeFiles/ha_sim.dir/capacity_timeline.cc.o.d"
  "CMakeFiles/ha_sim.dir/vcpu.cc.o"
  "CMakeFiles/ha_sim.dir/vcpu.cc.o.d"
  "libha_sim.a"
  "libha_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
