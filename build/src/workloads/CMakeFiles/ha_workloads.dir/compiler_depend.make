# Empty compiler generated dependencies file for ha_workloads.
# This may be replaced when dependencies are built.
