
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/blender.cc" "src/workloads/CMakeFiles/ha_workloads.dir/blender.cc.o" "gcc" "src/workloads/CMakeFiles/ha_workloads.dir/blender.cc.o.d"
  "/root/repo/src/workloads/compile.cc" "src/workloads/CMakeFiles/ha_workloads.dir/compile.cc.o" "gcc" "src/workloads/CMakeFiles/ha_workloads.dir/compile.cc.o.d"
  "/root/repo/src/workloads/ftq.cc" "src/workloads/CMakeFiles/ha_workloads.dir/ftq.cc.o" "gcc" "src/workloads/CMakeFiles/ha_workloads.dir/ftq.cc.o.d"
  "/root/repo/src/workloads/memory_pool.cc" "src/workloads/CMakeFiles/ha_workloads.dir/memory_pool.cc.o" "gcc" "src/workloads/CMakeFiles/ha_workloads.dir/memory_pool.cc.o.d"
  "/root/repo/src/workloads/spec_prep.cc" "src/workloads/CMakeFiles/ha_workloads.dir/spec_prep.cc.o" "gcc" "src/workloads/CMakeFiles/ha_workloads.dir/spec_prep.cc.o.d"
  "/root/repo/src/workloads/stream.cc" "src/workloads/CMakeFiles/ha_workloads.dir/stream.cc.o" "gcc" "src/workloads/CMakeFiles/ha_workloads.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guest/CMakeFiles/ha_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ha_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/ha_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/buddy/CMakeFiles/ha_buddy.dir/DependInfo.cmake"
  "/root/repo/build/src/llfree/CMakeFiles/ha_llfree.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ha_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
