file(REMOVE_RECURSE
  "CMakeFiles/ha_workloads.dir/blender.cc.o"
  "CMakeFiles/ha_workloads.dir/blender.cc.o.d"
  "CMakeFiles/ha_workloads.dir/compile.cc.o"
  "CMakeFiles/ha_workloads.dir/compile.cc.o.d"
  "CMakeFiles/ha_workloads.dir/ftq.cc.o"
  "CMakeFiles/ha_workloads.dir/ftq.cc.o.d"
  "CMakeFiles/ha_workloads.dir/memory_pool.cc.o"
  "CMakeFiles/ha_workloads.dir/memory_pool.cc.o.d"
  "CMakeFiles/ha_workloads.dir/spec_prep.cc.o"
  "CMakeFiles/ha_workloads.dir/spec_prep.cc.o.d"
  "CMakeFiles/ha_workloads.dir/stream.cc.o"
  "CMakeFiles/ha_workloads.dir/stream.cc.o.d"
  "libha_workloads.a"
  "libha_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
