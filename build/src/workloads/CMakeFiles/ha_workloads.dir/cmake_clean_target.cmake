file(REMOVE_RECURSE
  "libha_workloads.a"
)
