# Empty dependencies file for ha_balloon.
# This may be replaced when dependencies are built.
