file(REMOVE_RECURSE
  "CMakeFiles/ha_balloon.dir/virtio_balloon.cc.o"
  "CMakeFiles/ha_balloon.dir/virtio_balloon.cc.o.d"
  "libha_balloon.a"
  "libha_balloon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_balloon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
