file(REMOVE_RECURSE
  "libha_balloon.a"
)
