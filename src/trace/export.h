// Exporters for the observability layer: serialize the global counter
// registry, the drained event trace, and the drained span trace to JSON,
// CSV, Chrome-trace/Perfetto, or Prometheus artifacts that the bench
// harness emits via --trace-out (see bench/trace_io.h).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/trace/span.h"
#include "src/trace/trace.h"

namespace hyperalloc::trace {

// Writes one JSON document holding counters, histogram snapshots, the
// (time-ordered) event list, and the dropped-event count. Drains the
// global tracer.
void WriteJson(const std::string& path);

// Writes counters (and histogram count/sum/mean rows) as
// "name,value" CSV lines.
void WriteCountersCsv(const std::string& path);

// Writes events as "time_ns,category,op,arg0,arg1" CSV lines.
void WriteEventsCsv(const std::string& path,
                    const std::vector<TraceEvent>& events);

// Chrome trace-event / Perfetto JSON (https://ui.perfetto.dev loads it
// directly): every span becomes a ph:"X" complete event on the
// pid = VM id, tid = layer track, with ts/dur in µs of *virtual* time
// and trace_id/charge_ns/frames in args. Metadata events name the
// process ("vm<N>") and thread (layer) tracks.
void WritePerfettoJson(const std::string& path,
                       const std::vector<SpanRecord>& spans);

// Spans as CSV ("trace_id,span_id,parent_id,vm,layer,name,begin_vns,
// end_vns,charge_ns,frames,begin_wall_ns,end_wall_ns" — the format
// tools/ha_trace_tool reads).
void WriteSpansCsv(const std::string& path,
                   const std::vector<SpanRecord>& spans);

// Maps every dotted metric name to its Prometheus exposition name
// (`hyperalloc_` prefix, non-alphanumerics to '_'). Two *distinct*
// dotted names can mangle identically ("a.b" vs "a_b"); every member of
// such a collision group gets a stable `_x<8-hex FNV-1a of the dotted
// name>` suffix, so no sample silently overwrites another and a name's
// disambiguated form never depends on registration order.
std::map<std::string, std::string> PrometheusNameMap(
    const std::vector<std::string>& names);

// Prometheus text exposition: counters as `hyperalloc_<name>` counter
// samples, histograms as cumulative `_bucket{le=...}` series (power-of-2
// bounds) plus `_sum`/`_count`. Dots in names become underscores, with
// PrometheusNameMap's suffix rule breaking mangling collisions.
void WritePrometheus(const std::string& path);

// Dispatches on the extension: "*.json" produces one JSON artifact;
// anything else writes the event trace as CSV to `path` plus the counters
// to `path + ".counters.csv"`. Either way, sibling artifacts carry the
// span trace (`path + ".spans.csv"`, `path + ".perfetto.json"`) and the
// Prometheus exposition (`path + ".prom"`). Drains the global tracers.
void WriteTraceArtifact(const std::string& path);

}  // namespace hyperalloc::trace
