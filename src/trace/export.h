// Exporters for the observability layer: serialize the global counter
// registry and the drained event trace to JSON or CSV artifacts that the
// bench harness emits via --trace-out (see bench/trace_io.h).
#pragma once

#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace hyperalloc::trace {

// Writes one JSON document holding counters, histogram snapshots, the
// (time-ordered) event list, and the dropped-event count. Drains the
// global tracer.
void WriteJson(const std::string& path);

// Writes counters (and histogram count/sum/mean rows) as
// "name,value" CSV lines.
void WriteCountersCsv(const std::string& path);

// Writes events as "time_ns,category,op,arg0,arg1" CSV lines.
void WriteEventsCsv(const std::string& path,
                    const std::vector<TraceEvent>& events);

// Dispatches on the extension: "*.json" produces one JSON artifact;
// anything else writes the event trace as CSV to `path` plus the counters
// to `path + ".counters.csv"`. Drains the global tracer either way.
void WriteTraceArtifact(const std::string& path);

}  // namespace hyperalloc::trace
