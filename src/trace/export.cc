#include "src/trace/export.h"

#include <cinttypes>
#include <cstdio>

#include "src/base/check.h"

namespace hyperalloc::trace {

namespace {

// Counter/histogram names are dotted lowercase identifiers, but escape
// defensively so a stray name cannot corrupt the document.
void PrintJsonString(std::FILE* file, const std::string& s) {
  std::fputc('"', file);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      std::fputc('\\', file);
      std::fputc(c, file);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(file, "\\u%04x", c);
    } else {
      std::fputc(c, file);
    }
  }
  std::fputc('"', file);
}

void PrintHistogramJson(std::FILE* file, const Histogram::Snapshot& snap) {
  std::fprintf(file, "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                     ",\"mean\":%.3f,\"buckets\":[",
               snap.count, snap.sum, snap.Mean());
  // Sparse: only non-empty buckets, as [lower_bound, count] pairs.
  bool first = true;
  for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
    if (snap.buckets[b] == 0) {
      continue;
    }
    std::fprintf(file, "%s[%" PRIu64 ",%" PRIu64 "]", first ? "" : ",",
                 Histogram::BucketLowerBound(b), snap.buckets[b]);
    first = false;
  }
  std::fprintf(file, "]}");
}

}  // namespace

void WriteJson(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  HA_CHECK(file != nullptr);

  const uint64_t dropped = Tracer::Global().dropped_events();
  const std::vector<TraceEvent> events = Tracer::Global().Drain();

  std::fprintf(file, "{\n  \"dropped_events\": %" PRIu64 ",\n", dropped);

  std::fprintf(file, "  \"counters\": {");
  bool first = true;
  for (const auto& [name, value] : CounterRegistry::Global().Counters()) {
    std::fprintf(file, "%s\n    ", first ? "" : ",");
    PrintJsonString(file, name);
    std::fprintf(file, ": %" PRIu64, value);
    first = false;
  }
  std::fprintf(file, "\n  },\n");

  std::fprintf(file, "  \"histograms\": {");
  first = true;
  for (const auto& [name, snap] : CounterRegistry::Global().Histograms()) {
    std::fprintf(file, "%s\n    ", first ? "" : ",");
    PrintJsonString(file, name);
    std::fprintf(file, ": ");
    PrintHistogramJson(file, snap);
    first = false;
  }
  std::fprintf(file, "\n  },\n");

  // Events as compact [t_ns, "category", "op", arg0, arg1] rows, already
  // sorted by (virtual time, emission order).
  std::fprintf(file, "  \"events\": [");
  first = true;
  for (const TraceEvent& event : events) {
    std::fprintf(file,
                 "%s\n    [%" PRIu64 ",\"%s\",\"%s\",%" PRIu64 ",%" PRIu64
                 "]",
                 first ? "" : ",", event.at, Name(event.category),
                 Name(event.op), event.arg0, event.arg1);
    first = false;
  }
  std::fprintf(file, "\n  ]\n}\n");
  std::fclose(file);
}

void WriteCountersCsv(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  HA_CHECK(file != nullptr);
  std::fprintf(file, "name,value\n");
  for (const auto& [name, value] : CounterRegistry::Global().Counters()) {
    std::fprintf(file, "%s,%" PRIu64 "\n", name.c_str(), value);
  }
  for (const auto& [name, snap] : CounterRegistry::Global().Histograms()) {
    std::fprintf(file, "%s.count,%" PRIu64 "\n", name.c_str(), snap.count);
    std::fprintf(file, "%s.sum,%" PRIu64 "\n", name.c_str(), snap.sum);
    std::fprintf(file, "%s.mean,%.3f\n", name.c_str(), snap.Mean());
  }
  std::fclose(file);
}

void WriteEventsCsv(const std::string& path,
                    const std::vector<TraceEvent>& events) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  HA_CHECK(file != nullptr);
  std::fprintf(file, "time_ns,category,op,arg0,arg1\n");
  for (const TraceEvent& event : events) {
    std::fprintf(file, "%" PRIu64 ",%s,%s,%" PRIu64 ",%" PRIu64 "\n",
                 event.at, Name(event.category), Name(event.op), event.arg0,
                 event.arg1);
  }
  std::fclose(file);
}

void WriteTraceArtifact(const std::string& path) {
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json) {
    WriteJson(path);
    return;
  }
  WriteEventsCsv(path, Tracer::Global().Drain());
  WriteCountersCsv(path + ".counters.csv");
}

}  // namespace hyperalloc::trace
