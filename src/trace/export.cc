#include "src/trace/export.h"

#include <cinttypes>
#include <cstdio>

#include "src/base/check.h"

namespace hyperalloc::trace {

namespace {

// Counter/histogram names are dotted lowercase identifiers, but escape
// defensively so a stray name cannot corrupt the document.
void PrintJsonString(std::FILE* file, const std::string& s) {
  std::fputc('"', file);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      std::fputc('\\', file);
      std::fputc(c, file);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(file, "\\u%04x", c);
    } else {
      std::fputc(c, file);
    }
  }
  std::fputc('"', file);
}

// Prometheus metric names: dotted lowercase -> underscore-separated with
// the hyperalloc_ namespace prefix. Lossy on its own: "a.b" and "a_b"
// both mangle to "hyperalloc_a_b" (PrometheusNameMap resolves that).
std::string PrometheusName(const std::string& name) {
  std::string out = "hyperalloc_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

uint64_t Fnv1aHash(const std::string& s) {
  uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void PrintHistogramJson(std::FILE* file, const Histogram::Snapshot& snap) {
  std::fprintf(file, "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                     ",\"mean\":%.3f,\"buckets\":[",
               snap.count, snap.sum, snap.Mean());
  // Sparse: only non-empty buckets, as [lower_bound, count] pairs.
  bool first = true;
  for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
    if (snap.buckets[b] == 0) {
      continue;
    }
    std::fprintf(file, "%s[%" PRIu64 ",%" PRIu64 "]", first ? "" : ",",
                 Histogram::BucketLowerBound(b), snap.buckets[b]);
    first = false;
  }
  std::fprintf(file, "]}");
}

}  // namespace

std::map<std::string, std::string> PrometheusNameMap(
    const std::vector<std::string>& names) {
  std::map<std::string, std::string> out;
  // Count distinct dotted names per mangled form; a form claimed by more
  // than one dotted name is a collision group and every member gets the
  // hash suffix (the suffix is a pure function of the dotted name, so a
  // member's final form is stable no matter who else collides with it).
  std::map<std::string, std::vector<std::string>> groups;
  for (const std::string& name : names) {
    if (out.count(name) != 0) {
      continue;  // duplicate input
    }
    out.emplace(name, std::string());
    groups[PrometheusName(name)].push_back(name);
  }
  for (const auto& [mangled, members] : groups) {
    for (const std::string& name : members) {
      if (members.size() == 1) {
        out[name] = mangled;
      } else {
        char suffix[16];
        std::snprintf(suffix, sizeof(suffix), "_x%08x",
                      static_cast<unsigned>(Fnv1aHash(name) & 0xffffffffu));
        out[name] = mangled + suffix;
      }
    }
  }
  return out;
}

void WriteJson(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  HA_CHECK(file != nullptr);

  const uint64_t dropped = Tracer::Global().dropped_events();
  const std::vector<TraceEvent> events = Tracer::Global().Drain();

  std::fprintf(file, "{\n  \"dropped_events\": %" PRIu64 ",\n", dropped);

  std::fprintf(file, "  \"counters\": {");
  bool first = true;
  for (const auto& [name, value] : CounterRegistry::Global().Counters()) {
    std::fprintf(file, "%s\n    ", first ? "" : ",");
    PrintJsonString(file, name);
    std::fprintf(file, ": %" PRIu64, value);
    first = false;
  }
  std::fprintf(file, "\n  },\n");

  std::fprintf(file, "  \"histograms\": {");
  first = true;
  for (const auto& [name, snap] : CounterRegistry::Global().Histograms()) {
    std::fprintf(file, "%s\n    ", first ? "" : ",");
    PrintJsonString(file, name);
    std::fprintf(file, ": ");
    PrintHistogramJson(file, snap);
    first = false;
  }
  std::fprintf(file, "\n  },\n");

  // Events as compact [t_ns, "category", "op", arg0, arg1] rows, already
  // sorted by (virtual time, emission order).
  std::fprintf(file, "  \"events\": [");
  first = true;
  for (const TraceEvent& event : events) {
    std::fprintf(file,
                 "%s\n    [%" PRIu64 ",\"%s\",\"%s\",%" PRIu64 ",%" PRIu64
                 "]",
                 first ? "" : ",", event.at, Name(event.category),
                 Name(event.op), event.arg0, event.arg1);
    first = false;
  }
  std::fprintf(file, "\n  ],\n");

  // Spans as compact [trace_id, span_id, parent_id, vm, "layer", "name",
  // begin_vns, end_vns, charge_ns, frames, huge_frames, faults,
  // retries] rows.
  const uint64_t dropped_spans = SpanTracer::Global().dropped_spans();
  const std::vector<SpanRecord> spans = SpanTracer::Global().Drain();
  std::fprintf(file, "  \"dropped_spans\": %" PRIu64 ",\n", dropped_spans);
  std::fprintf(file, "  \"spans\": [");
  first = true;
  for (const SpanRecord& span : spans) {
    std::fprintf(file,
                 "%s\n    [%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%u,\"%s\",",
                 first ? "" : ",", span.trace_id, span.span_id,
                 span.parent_id, span.vm, Name(span.layer));
    PrintJsonString(file, span.name);
    std::fprintf(file,
                 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                 ",%" PRIu64 ",%" PRIu64 "]",
                 span.begin_vns, span.end_vns, span.charge_ns, span.frames,
                 span.huge_frames, span.faults, span.retries);
    first = false;
  }
  std::fprintf(file, "\n  ]\n}\n");
  std::fclose(file);
}

void WriteCountersCsv(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  HA_CHECK(file != nullptr);
  std::fprintf(file, "name,value\n");
  for (const auto& [name, value] : CounterRegistry::Global().Counters()) {
    std::fprintf(file, "%s,%" PRIu64 "\n", name.c_str(), value);
  }
  for (const auto& [name, snap] : CounterRegistry::Global().Histograms()) {
    std::fprintf(file, "%s.count,%" PRIu64 "\n", name.c_str(), snap.count);
    std::fprintf(file, "%s.sum,%" PRIu64 "\n", name.c_str(), snap.sum);
    std::fprintf(file, "%s.mean,%.3f\n", name.c_str(), snap.Mean());
  }
  std::fclose(file);
}

void WriteEventsCsv(const std::string& path,
                    const std::vector<TraceEvent>& events) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  HA_CHECK(file != nullptr);
  std::fprintf(file, "time_ns,category,op,arg0,arg1\n");
  for (const TraceEvent& event : events) {
    std::fprintf(file, "%" PRIu64 ",%s,%s,%" PRIu64 ",%" PRIu64 "\n",
                 event.at, Name(event.category), Name(event.op), event.arg0,
                 event.arg1);
  }
  std::fclose(file);
}

void WritePerfettoJson(const std::string& path,
                       const std::vector<SpanRecord>& spans) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  HA_CHECK(file != nullptr);
  std::fprintf(file, "{\"traceEvents\":[");
  bool first = true;

  // Name the tracks: one "process" per VM, one "thread" per layer.
  // seen[vm] is a bitmask of layers with at least one span.
  std::vector<uint32_t> seen;
  for (const SpanRecord& span : spans) {
    if (span.vm >= seen.size()) {
      seen.resize(span.vm + 1, 0);
    }
    seen[span.vm] |= 1u << static_cast<unsigned>(span.layer);
  }
  for (uint32_t vm = 0; vm < seen.size(); ++vm) {
    if (seen[vm] == 0) {
      continue;
    }
    std::fprintf(file,
                 "%s\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                 "\"args\":{\"name\":\"vm%u\"}}",
                 first ? "" : ",", vm, vm);
    first = false;
    for (unsigned layer = 0; layer < kNumLayers; ++layer) {
      if ((seen[vm] & (1u << layer)) == 0) {
        continue;
      }
      std::fprintf(file,
                   "%s\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                   "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                   first ? "" : ",", vm, layer,
                   Name(static_cast<Layer>(layer)));
    }
  }

  // Spans as ph:"X" complete events; ts/dur are µs of virtual time.
  for (const SpanRecord& span : spans) {
    std::fprintf(file,
                 "%s\n{\"name\":", first ? "" : ",");
    PrintJsonString(file, span.name);
    std::fprintf(
        file,
        ",\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
        "\"args\":{\"trace_id\":%" PRIu64 ",\"span_id\":%" PRIu64
        ",\"parent_id\":%" PRIu64 ",\"charge_ns\":%" PRIu64
        ",\"frames\":%" PRIu64 ",\"huge_frames\":%" PRIu64
        ",\"faults\":%" PRIu64 ",\"retries\":%" PRIu64
        ",\"wall_ns\":%" PRIu64 "}}",
        span.vm, static_cast<unsigned>(span.layer),
        static_cast<double>(span.begin_vns) / 1000.0,
        static_cast<double>(span.virtual_ns()) / 1000.0, span.trace_id,
        span.span_id, span.parent_id, span.charge_ns, span.frames,
        span.huge_frames, span.faults, span.retries, span.wall_ns());
    first = false;
  }
  std::fprintf(file, "\n],\"displayTimeUnit\":\"ns\"}\n");
  std::fclose(file);
}

void WriteSpansCsv(const std::string& path,
                   const std::vector<SpanRecord>& spans) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  HA_CHECK(file != nullptr);
  std::fprintf(file,
               "trace_id,span_id,parent_id,vm,layer,name,begin_vns,"
               "end_vns,charge_ns,frames,huge_frames,faults,retries,"
               "begin_wall_ns,end_wall_ns\n");
  for (const SpanRecord& span : spans) {
    std::fprintf(file,
                 "%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%u,%s,%s,%" PRIu64
                 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 "\n",
                 span.trace_id, span.span_id, span.parent_id, span.vm,
                 Name(span.layer), span.name, span.begin_vns, span.end_vns,
                 span.charge_ns, span.frames, span.huge_frames,
                 span.faults, span.retries, span.begin_wall_ns,
                 span.end_wall_ns);
  }
  std::fclose(file);
}

void WritePrometheus(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  HA_CHECK(file != nullptr);
  const auto counters = CounterRegistry::Global().Counters();
  const auto histograms = CounterRegistry::Global().Histograms();
  // Counters and histograms share one exposition namespace, so collision
  // detection must span both snapshots.
  std::vector<std::string> names;
  names.reserve(counters.size() + histograms.size());
  for (const auto& [name, value] : counters) {
    names.push_back(name);
  }
  for (const auto& [name, snap] : histograms) {
    names.push_back(name);
  }
  const std::map<std::string, std::string> metric_names =
      PrometheusNameMap(names);
  for (const auto& [name, value] : counters) {
    const std::string& metric = metric_names.at(name);
    std::fprintf(file, "# TYPE %s counter\n", metric.c_str());
    std::fprintf(file, "%s %" PRIu64 "\n", metric.c_str(), value);
  }
  for (const auto& [name, snap] : histograms) {
    const std::string& metric = metric_names.at(name);
    std::fprintf(file, "# TYPE %s histogram\n", metric.c_str());
    // Cumulative buckets; bucket b spans [BucketLowerBound(b),
    // BucketLowerBound(b+1)), so its inclusive upper bound `le` is the
    // next bucket's lower bound minus one.
    uint64_t cumulative = 0;
    for (unsigned b = 0; b + 1 < Histogram::kBuckets; ++b) {
      cumulative += snap.buckets[b];
      if (snap.buckets[b] == 0 && b != 0) {
        continue;  // keep the exposition sparse (le="0" anchors it)
      }
      std::fprintf(file, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                   metric.c_str(), Histogram::BucketLowerBound(b + 1) - 1,
                   cumulative);
    }
    std::fprintf(file, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", metric.c_str(),
                 snap.count);
    std::fprintf(file, "%s_sum %" PRIu64 "\n", metric.c_str(), snap.sum);
    std::fprintf(file, "%s_count %" PRIu64 "\n", metric.c_str(), snap.count);
  }
  std::fclose(file);
}

void WriteTraceArtifact(const std::string& path) {
  const std::vector<SpanRecord> spans = SpanTracer::Global().Drain();
  WriteSpansCsv(path + ".spans.csv", spans);
  WritePerfettoJson(path + ".perfetto.json", spans);
  WritePrometheus(path + ".prom");
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json) {
    WriteJson(path);
    return;
  }
  WriteEventsCsv(path, Tracer::Global().Drain());
  WriteCountersCsv(path + ".counters.csv");
}

}  // namespace hyperalloc::trace
