// Causal span tracing with per-layer virtual-time attribution
// (DESIGN.md §4.8).
//
// One resize request ("where did the nanoseconds of this inflate go?")
// becomes a tree of spans: the request root (monitor / balloon /
// virtio-mem backend), per-slice spans, and leaf spans for the layers
// that actually spend the time — llfree state CAS work, EPT unmap runs,
// IOMMU unpin + IOTLB flushes, host-pool refills. Every cost-model
// charge (hv::ChargeTraced / hv::Charge) is attributed to the innermost
// open span on the charging thread, so summing `charge_ns` over a
// request's spans reproduces the cost model's total charge for that
// request exactly (the bench_runner "attribution" section and
// tools/ha_trace_tool build on this closure property).
//
// Identity and propagation: a 64-bit trace id lives in a thread-local
// SpanContext. Roots mint a fresh id (ScopedRoot / RequestSpan::Start);
// async continuations and worker threads re-enter the context with
// ScopedContext before opening child spans. A Span only *arms* when the
// tracer is enabled AND a trace id is in scope — hot paths outside a
// request (workload allocation storms) stay span-free.
//
// Clocks: `begin_vns`/`end_vns` come from the per-context virtual clock
// (the owning simulation), falling back to the global Tracer time
// source; `begin_wall_ns`/`end_wall_ns` are steady_clock wall time, so
// exporters can show virtual/wall skew.
//
// Compile-out: with -DHYPERALLOC_TRACE=0 Span/ScopedContext/RequestSpan
// collapse to empty types (sizeof == 1, no members, no code) and
// AttributeCharge is a no-op — the same switch that compiles out the
// counter macros.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/simulation.h"
#include "src/trace/span_ring.h"
#include "src/trace/trace.h"

namespace hyperalloc::trace {

// The layer a span accounts to — the tree levels of the de/inflation
// path (ISSUE: monitor -> backend -> llfree -> ept/iommu -> host pool).
enum class Layer : uint8_t {
  kRequest,   // resize-request roots and slices
  kMonitor,   // HyperAlloc monitor state work (reclaim/return/install)
  kBackend,   // virtio-balloon / virtio-mem driver + device work
  kGuest,     // guest-side allocator & migration work
  kLLFree,    // shared page-frame allocator operations
  kEpt,        // second-stage unmap/populate (madvise, TLB shootdown)
  kIommu,      // VFIO pin/unpin + IOTLB flushes
  kHostPool,   // sharded host frame pool slow paths
  kTelemetry,  // fleet telemetry markers (SLO burn-rate alerts)
};

const char* Name(Layer layer);
inline constexpr unsigned kNumLayers = 9;

// One closed span. `name` must be a string literal (stored by pointer).
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  uint64_t begin_vns = 0;  // virtual clock, ns
  uint64_t end_vns = 0;
  uint64_t begin_wall_ns = 0;
  uint64_t end_wall_ns = 0;
  uint64_t charge_ns = 0;  // cost-model ns attributed to this span
  uint64_t frames = 0;     // frames this span operated on
  // Huge/base split (DESIGN.md §4.14): of `frames`, how many moved as
  // whole 2 MiB units (counted in base frames, so huge_frames <= frames
  // and frames - huge_frames is the base-granular remainder).
  uint64_t huge_frames = 0;
  uint64_t faults = 0;     // injected faults observed under this span
  uint64_t retries = 0;    // retries (after backoff) under this span
  uint64_t seq = 0;        // global emission order (tie-break)
  uint32_t vm = 0;
  Layer layer = Layer::kRequest;
  const char* name = "";

  uint64_t virtual_ns() const { return end_vns - begin_vns; }
  uint64_t wall_ns() const { return end_wall_ns - begin_wall_ns; }
};

// Process-wide span sink: per-thread single-writer rings (drainable
// while the writers run — see span_ring.h), a retired list for exited
// threads, and monotonic trace-/span-id generators. Always compiled
// (like Tracer); the RAII instrumentation types below compile out.
class SpanTracer {
 public:
  static SpanTracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  uint64_t NewTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t NewSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Stamps `record.seq` and appends it to the calling thread's ring.
  void Emit(SpanRecord record);

  // Collects every buffered span — live and retired — sorted by
  // (begin_vns, seq). Safe while writers run (they may keep appending;
  // a drain only misses spans emitted after it started).
  std::vector<SpanRecord> Drain();

  // Spans dropped on full rings since the last reset (cumulative).
  uint64_t dropped_spans() const;

  // Ring capacity (spans per thread); resizes and clears existing
  // buffers. Quiescence only.
  void SetCapacity(size_t spans_per_thread);

  void ResetForTest();

 private:
  friend struct SpanThreadHandle;
  struct ThreadBuffer;

  SpanTracer() = default;
  ThreadBuffer& LocalBuffer();
  void Register(ThreadBuffer* buffer);
  void Retire(ThreadBuffer* buffer);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_span_id_{1};
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
};

// Wall clock (steady), ns since an arbitrary epoch.
uint64_t WallNowNs();

#if HYPERALLOC_TRACE

// The per-thread request context spans propagate through. `clock` is the
// virtual-time source for spans opened under this context (a VM world's
// own simulation in the multi-VM harness).
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  uint32_t vm = 0;
  const sim::Simulation* clock = nullptr;
};

SpanContext& ThreadSpanContext();

// Saves/replaces/restores the thread context — used to re-enter a
// request's context in async slices and to seed worker threads with
// their VM id + virtual clock.
class ScopedContext {
 public:
  explicit ScopedContext(const SpanContext& context)
      : saved_(ThreadSpanContext()) {
    ThreadSpanContext() = context;
  }
  ~ScopedContext() { ThreadSpanContext() = saved_; }

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  SpanContext saved_;
};

// Starts a fresh trace (new trace id, no parent) in the current thread
// context, keeping the context's vm/clock. Used by entry points that are
// not resize requests: install hypercalls, auto-reclaim passes,
// free-page-reporting cycles.
class ScopedRoot {
 public:
  ScopedRoot() : saved_(ThreadSpanContext()) {
    SpanContext& context = ThreadSpanContext();
    context.trace_id =
        SpanTracer::Global().enabled() ? SpanTracer::Global().NewTraceId() : 0;
    context.parent_span = 0;
  }
  ~ScopedRoot() { ThreadSpanContext() = saved_; }

  ScopedRoot(const ScopedRoot&) = delete;
  ScopedRoot& operator=(const ScopedRoot&) = delete;

 private:
  SpanContext saved_;
};

// RAII span. Arms only when the tracer is enabled and a trace id is in
// scope; parents itself under the innermost open span on this thread
// (or the context's parent_span when it is the first). Charges made via
// AttributeCharge / hv::ChargeTraced while this span is innermost
// accumulate into charge_ns.
class Span {
 public:
  Span(Layer layer, const char* name) {
    SpanTracer& tracer = SpanTracer::Global();
    const SpanContext& context = ThreadSpanContext();
    if (!tracer.enabled() || context.trace_id == 0) {
      return;
    }
    armed_ = true;
    record_.trace_id = context.trace_id;
    record_.span_id = tracer.NewSpanId();
    record_.vm = context.vm;
    record_.layer = layer;
    record_.name = name;
    record_.begin_vns = VirtualNow();
    record_.begin_wall_ns = WallNowNs();
    Span*& innermost = Innermost();
    record_.parent_id =
        innermost != nullptr ? innermost->record_.span_id
                             : context.parent_span;
    prev_ = innermost;
    innermost = this;
  }

  ~Span() { Close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool armed() const { return armed_; }
  uint64_t id() const { return record_.span_id; }

  void AddFrames(uint64_t frames) { record_.frames += frames; }
  // `frames` must already be counted via AddFrames; this marks how many
  // of them moved as whole 2 MiB units (in base frames).
  void AddHugeFrames(uint64_t frames) { record_.huge_frames += frames; }
  void AddCharge(uint64_t ns) { record_.charge_ns += ns; }
  void AddFault(uint64_t n = 1) { record_.faults += n; }
  void AddRetry(uint64_t n = 1) { record_.retries += n; }

  // Ends the span (idempotent; the destructor calls it). Spans must
  // close LIFO — guaranteed by scoping.
  void Close() {
    if (!armed_ || closed_) {
      return;
    }
    closed_ = true;
    record_.end_vns = VirtualNow();
    record_.end_wall_ns = WallNowNs();
    Innermost() = prev_;
    SpanTracer::Global().Emit(record_);
  }

  // The innermost open span on this thread (charge-attribution target).
  static Span* Current() { return Innermost(); }

 private:
  static Span*& Innermost();

  static uint64_t VirtualNow() {
    const sim::Simulation* clock = ThreadSpanContext().clock;
    return clock != nullptr ? clock->now() : Tracer::Global().Now();
  }

  SpanRecord record_;
  Span* prev_ = nullptr;
  bool armed_ = false;
  bool closed_ = false;
};

// Attributes `ns` of cost-model charge to the innermost open span on
// this thread (no-op outside any span). Called by hv::ChargeTraced.
inline void AttributeCharge(uint64_t ns) {
  Span* span = Span::Current();
  if (span != nullptr) {
    span->AddCharge(ns);
  }
}

// Root span for an asynchronous resize request: Start() at Request(),
// Finish() when the request's `done` fires — possibly many event-loop
// slices later, which rules out plain RAII. Between the two, each slice
// re-enters the request with `ScopedContext sc(request_span.context())`
// so its spans join the tree.
class RequestSpan {
 public:
  void Start(const char* name) {
    SpanTracer& tracer = SpanTracer::Global();
    if (!tracer.enabled() || active_) {
      return;
    }
    active_ = true;
    record_ = SpanRecord{};
    const SpanContext& context = ThreadSpanContext();
    record_.trace_id = tracer.NewTraceId();
    record_.span_id = tracer.NewSpanId();
    record_.parent_id = 0;
    record_.vm = context.vm;
    record_.layer = Layer::kRequest;
    record_.name = name;
    clock_ = context.clock;
    record_.begin_vns =
        clock_ != nullptr ? clock_->now() : Tracer::Global().Now();
    record_.begin_wall_ns = WallNowNs();
  }

  void AddFrames(uint64_t frames) {
    if (active_) {
      record_.frames += frames;
    }
  }

  void AddHugeFrames(uint64_t frames) {
    if (active_) {
      record_.huge_frames += frames;
    }
  }

  void AddFault(uint64_t n = 1) {
    if (active_) {
      record_.faults += n;
    }
  }

  void AddRetry(uint64_t n = 1) {
    if (active_) {
      record_.retries += n;
    }
  }

  void Finish() {
    if (!active_) {
      return;
    }
    active_ = false;
    record_.end_vns =
        clock_ != nullptr ? clock_->now() : Tracer::Global().Now();
    record_.end_wall_ns = WallNowNs();
    SpanTracer::Global().Emit(record_);
  }

  bool active() const { return active_; }

  // The context request slices re-enter: children of the root span, on
  // the clock the request started on.
  SpanContext context() const {
    return SpanContext{.trace_id = active_ ? record_.trace_id : 0,
                       .parent_span = record_.span_id,
                       .vm = record_.vm,
                       .clock = clock_};
  }

 private:
  SpanRecord record_;
  const sim::Simulation* clock_ = nullptr;
  bool active_ = false;
};

#else  // !HYPERALLOC_TRACE

// Empty stand-ins: same API surface, no state, no code. The unit test
// static_asserts that these stay size <= 1.
struct SpanContext {};

inline SpanContext& ThreadSpanContext() {
  static SpanContext context;
  return context;
}

class ScopedContext {
 public:
  explicit ScopedContext(const SpanContext&) {}
};

class ScopedRoot {};

class Span {
 public:
  Span(Layer, const char*) {}
  bool armed() const { return false; }
  uint64_t id() const { return 0; }
  void AddFrames(uint64_t) {}
  void AddHugeFrames(uint64_t) {}
  void AddCharge(uint64_t) {}
  void AddFault(uint64_t = 1) {}
  void AddRetry(uint64_t = 1) {}
  void Close() {}
  static Span* Current() { return nullptr; }
};

inline void AttributeCharge(uint64_t) {}

class RequestSpan {
 public:
  void Start(const char*) {}
  void AddFrames(uint64_t) {}
  void AddHugeFrames(uint64_t) {}
  void AddFault(uint64_t = 1) {}
  void AddRetry(uint64_t = 1) {}
  void Finish() {}
  bool active() const { return false; }
  SpanContext context() const { return {}; }
};

#endif  // HYPERALLOC_TRACE

}  // namespace hyperalloc::trace
