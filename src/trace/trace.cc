#include "src/trace/trace.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace hyperalloc::trace {

unsigned ThreadShardIndex() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

// ----------------------------------------------------------------------
// CounterRegistry
// ----------------------------------------------------------------------

struct CounterRegistry::Impl {
  mutable std::mutex mu;
  // std::map: stable addresses for the cached references and sorted
  // iteration for the exporters.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

CounterRegistry& CounterRegistry::Global() {
  // Leaked singleton: counters may be touched from thread_local
  // destructors during shutdown.
  static CounterRegistry* global = new CounterRegistry;
  return *global;
}

CounterRegistry::Impl* CounterRegistry::impl() {
  static Impl* impl = new Impl;
  return impl;
}

const CounterRegistry::Impl* CounterRegistry::impl() const {
  return const_cast<CounterRegistry*>(this)->impl();
}

Counter& CounterRegistry::FindOrCreate(std::string_view name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->counters.find(name);
  if (it == i->counters.end()) {
    it = i->counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& CounterRegistry::FindOrCreateHistogram(std::string_view name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->histograms.find(name);
  if (it == i->histograms.end()) {
    it = i->histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, uint64_t>> CounterRegistry::Counters()
    const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(i->counters.size());
  for (const auto& [name, counter] : i->counters) {
    out.emplace_back(name, counter->Value());
  }
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
CounterRegistry::Histograms() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(i->histograms.size());
  for (const auto& [name, histogram] : i->histograms) {
    out.emplace_back(name, histogram->Read());
  }
  return out;
}

void CounterRegistry::ResetForTest() {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  for (auto& [name, counter] : i->counters) {
    counter->Reset();
  }
  for (auto& [name, histogram] : i->histograms) {
    histogram->Reset();
  }
}

// ----------------------------------------------------------------------
// Tracer
// ----------------------------------------------------------------------

const char* Name(Category category) {
  switch (category) {
    case Category::kLLFree:
      return "llfree";
    case Category::kGuest:
      return "guest";
    case Category::kEpt:
      return "ept";
    case Category::kIommu:
      return "iommu";
    case Category::kBalloon:
      return "balloon";
    case Category::kVmem:
      return "vmem";
    case Category::kMonitor:
      return "monitor";
    case Category::kState:
      return "state";
    case Category::kFault:
      return "fault";
    case Category::kTelemetry:
      return "telemetry";
  }
  return "?";
}

const char* Name(Op op) {
  switch (op) {
    case Op::kGet:
      return "get";
    case Op::kGetFail:
      return "get_fail";
    case Op::kPut:
      return "put";
    case Op::kReserveTree:
      return "reserve_tree";
    case Op::kSteal:
      return "steal";
    case Op::kEvictedSet:
      return "evicted_set";
    case Op::kEvictedClear:
      return "evicted_clear";
    case Op::kReclaimSoft:
      return "reclaim_soft";
    case Op::kReclaimHard:
      return "reclaim_hard";
    case Op::kReturn:
      return "return";
    case Op::kInstall:
      return "install";
    case Op::kMap:
      return "map";
    case Op::kUnmap:
      return "unmap";
    case Op::kIotlbFlush:
      return "iotlb_flush";
    case Op::kFault4k:
      return "fault_4k";
    case Op::kFault2m:
      return "fault_2m";
    case Op::kInflate:
      return "inflate";
    case Op::kDeflate:
      return "deflate";
    case Op::kMadvise:
      return "madvise";
    case Op::kHypercall:
      return "hypercall";
    case Op::kTransition:
      return "transition";
    case Op::kScan:
      return "scan";
    case Op::kInject:
      return "inject";
    case Op::kRetry:
      return "retry";
    case Op::kRollback:
      return "rollback";
    case Op::kQuarantine:
      return "quarantine";
    case Op::kTimeout:
      return "timeout";
    case Op::kAlert:
      return "alert";
    case Op::kFlightDump:
      return "flight_dump";
  }
  return "?";
}

namespace {
constexpr size_t kDefaultRingCapacity = 1 << 16;
}  // namespace

struct Tracer::Impl {
  mutable std::mutex mu;
  size_t capacity = kDefaultRingCapacity;
  std::vector<ThreadBuffer*> live;
  std::vector<TraceEvent> retired;
  uint64_t dropped = 0;

  // Appends `buffer`'s events (oldest first) to `out` and resets it.
  // Caller holds `mu`.
  void CollectLocked(ThreadBuffer* buffer, std::vector<TraceEvent>* out) {
    const size_t cap = buffer->ring.size();
    if (cap == 0 || buffer->head == 0) {
      return;
    }
    if (buffer->head > cap) {
      dropped += buffer->head - cap;
      const size_t start = buffer->head % cap;
      out->insert(out->end(), buffer->ring.begin() + start,
                  buffer->ring.end());
      out->insert(out->end(), buffer->ring.begin(),
                  buffer->ring.begin() + start);
    } else {
      out->insert(out->end(), buffer->ring.begin(),
                  buffer->ring.begin() + buffer->head);
    }
    buffer->head = 0;
  }
};

// RAII registration of the calling thread's ring buffer; the destructor
// moves any remaining events into the tracer's retired list so traces
// survive thread exit.
struct TracerThreadHandle {
  Tracer::ThreadBuffer buffer;

  ~TracerThreadHandle() {
    if (buffer.owner != nullptr) {
      buffer.owner->Retire(&buffer);
    }
  }
};

Tracer& Tracer::Global() {
  // Leaked singleton: must outlive every thread's TracerThreadHandle.
  static Tracer* global = new Tracer;
  return *global;
}

Tracer::Impl* Tracer::impl() {
  static Impl* impl = new Impl;
  return impl;
}

const Tracer::Impl* Tracer::impl() const {
  return const_cast<Tracer*>(this)->impl();
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  thread_local TracerThreadHandle handle;
  if (handle.buffer.owner == nullptr) {
    Register(&handle.buffer);
  }
  return handle.buffer;
}

void Tracer::Register(ThreadBuffer* buffer) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  buffer->ring.resize(i->capacity);
  buffer->head = 0;
  buffer->owner = this;
  i->live.push_back(buffer);
}

void Tracer::Retire(ThreadBuffer* buffer) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  i->CollectLocked(buffer, &i->retired);
  std::erase(i->live, buffer);
  buffer->owner = nullptr;
}

void Tracer::Emit(Category category, Op op, uint64_t arg0, uint64_t arg1) {
  ThreadBuffer& buffer = LocalBuffer();
  if (buffer.ring.empty()) {
    return;  // capacity 0: tracing effectively off
  }
  TraceEvent& slot = buffer.ring[buffer.head % buffer.ring.size()];
  slot.at = Now();
  slot.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  slot.category = category;
  slot.op = op;
  slot.arg0 = arg0;
  slot.arg1 = arg1;
  ++buffer.head;
}

std::vector<TraceEvent> Tracer::Drain() {
  Impl* i = impl();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(i->mu);
    out.swap(i->retired);
    for (ThreadBuffer* buffer : i->live) {
      i->CollectLocked(buffer, &out);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.at != b.at) {
                return a.at < b.at;
              }
              return a.seq < b.seq;
            });
  return out;
}

uint64_t Tracer::dropped_events() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  uint64_t dropped = i->dropped;
  for (const ThreadBuffer* buffer : i->live) {
    if (buffer->head > buffer->ring.size()) {
      dropped += buffer->head - buffer->ring.size();
    }
  }
  return dropped;
}

void Tracer::SetCapacity(size_t events_per_thread) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  i->capacity = events_per_thread;
  for (ThreadBuffer* buffer : i->live) {
    buffer->ring.assign(events_per_thread, TraceEvent{});
    buffer->head = 0;
  }
}

void Tracer::ResetForTest() {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  i->retired.clear();
  i->dropped = 0;
  for (ThreadBuffer* buffer : i->live) {
    buffer->head = 0;
  }
  seq_.store(0, std::memory_order_relaxed);
}

}  // namespace hyperalloc::trace
