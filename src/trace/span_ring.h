// Single-writer / single-drainer span ring buffer.
//
// Unlike the TraceEvent rings (src/trace/trace.h), which overwrite their
// oldest entries and may only be drained at quiescence, this ring is safe
// to drain *while the owning thread keeps emitting* — the exporter thread
// of a long-running process can stream spans out without stopping the
// world. The price is drop-NEWEST semantics: when the ring is full the
// writer counts the span as dropped and keeps going (never stalls, never
// touches a slot the drainer may be reading).
//
// Protocol (indices are free-running uint64 positions, slot = pos % cap):
//   writer:  h = head(relaxed); t = tail(acquire);
//            full (h - t >= cap)? -> dropped++; else write slot,
//            then head = h + 1 (release store)
//   drainer: h = head(acquire); copy [tail, h); tail = h (release store)
// The release/acquire pair on `head` publishes the slot contents to the
// drainer; the release/acquire pair on `tail` returns slots to the
// writer only after the drainer has copied them out. A slot is therefore
// never accessed concurrently.
//
// The atomic and shared-slot types are template-template parameters
// instead of the hyperalloc::Atomic / hyperalloc::Shared seams:
// production code instantiates `RingCore<SpanRecord, std::atomic>` (one
// definition everywhere, no ODR hazard with model-check builds), while
// the model-check scenario in tests/model_check_test.cc instantiates
// `RingCore<uint64_t, check::Atomic, check::Shared>` — a distinct type —
// to explore writer-vs-drainer interleavings AND verify that the
// release/acquire protocol above really does order every slot access
// (each slot is a SharedT<Event>; the happens-before checker flags any
// unordered writer-write vs drainer-read). Members are protected so that
// scenario can also derive a deliberately broken drain (the lost-event
// mutant).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/shared.h"

namespace hyperalloc::trace {

template <typename Event, template <typename> class AtomicT,
          template <typename> class SharedT = PlainShared>
class RingCore {
 public:
  explicit RingCore(size_t capacity) : ring_(capacity) {}

  RingCore(const RingCore&) = delete;
  RingCore& operator=(const RingCore&) = delete;

  size_t capacity() const { return ring_.size(); }

  // Writer side (one thread). Returns false when the ring is full and
  // the event was counted as dropped instead of stored.
  bool Push(const Event& event) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    if (ring_.empty() || head - tail >= ring_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ring_[head % ring_.size()].write() = event;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Drainer side (one thread at a time; may run concurrently with the
  // writer). Appends every published event, oldest first, to `out`.
  void Drain(std::vector<Event>* out) {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    for (; tail != head; ++tail) {
      out->push_back(ring_[tail % ring_.size()].read());
    }
    tail_.store(tail, std::memory_order_release);
  }

  // Published-but-undrained events right now (approximate while the
  // writer runs).
  uint64_t size() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // Re-creates the ring with a new capacity. Quiescence only (no
  // concurrent Push/Drain): pending events are discarded.
  void Rebuild(size_t capacity) {
    // SharedT is non-copyable; a fresh vector default-constructs the
    // slots (pending events are discarded either way).
    ring_ = std::vector<SharedT<Event>>(capacity);
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
  }

 protected:
  std::vector<SharedT<Event>> ring_;
  AtomicT<uint64_t> head_{0};
  AtomicT<uint64_t> tail_{0};
  AtomicT<uint64_t> dropped_{0};
};

}  // namespace hyperalloc::trace
