#include "src/trace/span.h"

#include <algorithm>
#include <chrono>
#include <mutex>

namespace hyperalloc::trace {

const char* Name(Layer layer) {
  switch (layer) {
    case Layer::kRequest:
      return "request";
    case Layer::kMonitor:
      return "monitor";
    case Layer::kBackend:
      return "backend";
    case Layer::kGuest:
      return "guest";
    case Layer::kLLFree:
      return "llfree";
    case Layer::kEpt:
      return "ept";
    case Layer::kIommu:
      return "iommu";
    case Layer::kHostPool:
      return "hostpool";
    case Layer::kTelemetry:
      return "telemetry";
  }
  return "?";
}

uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {
constexpr size_t kDefaultSpanRingCapacity = 1 << 16;
}  // namespace

using SpanRing = RingCore<SpanRecord, std::atomic>;

struct SpanTracer::ThreadBuffer {
  SpanRing ring{kDefaultSpanRingCapacity};
  SpanTracer* owner = nullptr;
};

struct SpanTracer::Impl {
  mutable std::mutex mu;
  size_t capacity = kDefaultSpanRingCapacity;
  std::vector<ThreadBuffer*> live;
  std::vector<SpanRecord> retired;
  uint64_t retired_dropped = 0;
};

// RAII registration of the calling thread's span ring; the destructor
// moves any remaining spans into the retired list so traces survive
// thread exit (the multi-VM harness joins its workers before draining).
struct SpanThreadHandle {
  SpanTracer::ThreadBuffer buffer;

  ~SpanThreadHandle() {
    if (buffer.owner != nullptr) {
      buffer.owner->Retire(&buffer);
    }
  }
};

SpanTracer& SpanTracer::Global() {
  // Leaked singleton: must outlive every thread's SpanThreadHandle.
  static SpanTracer* global = new SpanTracer;
  return *global;
}

SpanTracer::Impl* SpanTracer::impl() {
  static Impl* impl = new Impl;
  return impl;
}

const SpanTracer::Impl* SpanTracer::impl() const {
  return const_cast<SpanTracer*>(this)->impl();
}

SpanTracer::ThreadBuffer& SpanTracer::LocalBuffer() {
  thread_local SpanThreadHandle handle;
  if (handle.buffer.owner == nullptr) {
    Register(&handle.buffer);
  }
  return handle.buffer;
}

void SpanTracer::Register(ThreadBuffer* buffer) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  buffer->ring.Rebuild(i->capacity);
  buffer->owner = this;
  i->live.push_back(buffer);
}

void SpanTracer::Retire(ThreadBuffer* buffer) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  buffer->ring.Drain(&i->retired);
  i->retired_dropped += buffer->ring.dropped();
  std::erase(i->live, buffer);
  buffer->owner = nullptr;
}

void SpanTracer::Emit(SpanRecord record) {
  record.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  LocalBuffer().ring.Push(record);
}

std::vector<SpanRecord> SpanTracer::Drain() {
  Impl* i = impl();
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(i->mu);
    out.swap(i->retired);
    for (ThreadBuffer* buffer : i->live) {
      buffer->ring.Drain(&out);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.begin_vns != b.begin_vns) {
                return a.begin_vns < b.begin_vns;
              }
              return a.seq < b.seq;
            });
  return out;
}

uint64_t SpanTracer::dropped_spans() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  uint64_t dropped = i->retired_dropped;
  for (const ThreadBuffer* buffer : i->live) {
    dropped += buffer->ring.dropped();
  }
  return dropped;
}

void SpanTracer::SetCapacity(size_t spans_per_thread) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  i->capacity = spans_per_thread;
  for (ThreadBuffer* buffer : i->live) {
    buffer->ring.Rebuild(spans_per_thread);
  }
}

void SpanTracer::ResetForTest() {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  i->retired.clear();
  i->retired_dropped = 0;
  for (ThreadBuffer* buffer : i->live) {
    buffer->ring.Rebuild(i->capacity);
  }
  seq_.store(0, std::memory_order_relaxed);
  next_trace_id_.store(1, std::memory_order_relaxed);
  next_span_id_.store(1, std::memory_order_relaxed);
}

#if HYPERALLOC_TRACE

SpanContext& ThreadSpanContext() {
  thread_local SpanContext context;
  return context;
}

Span*& Span::Innermost() {
  thread_local Span* innermost = nullptr;
  return innermost;
}

#endif  // HYPERALLOC_TRACE

}  // namespace hyperalloc::trace
