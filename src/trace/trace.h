// Low-overhead observability: named monotonic counters, bucketed
// histograms, and a per-thread ring-buffer event tracer.
//
// The paper's headline results (Figs. 4, 7–11) are operation-count × cost
// arguments — hypercalls, madvise batches, EPT/IOMMU faults, reclaim-state
// transitions. This layer makes those per-operation events first-class:
// every hot path bumps a counter (lock-free, relaxed, cache-line-padded
// shards) and optionally appends a TraceEvent to its thread's fixed-size
// ring buffer. A global drain merges all buffers and sorts by virtual
// time, giving a deterministic, time-ordered trace of a whole run.
//
// Cost discipline:
//   * Compile time: building with -DHYPERALLOC_TRACE=0 turns every macro
//     below into a no-op; nothing is linked into the hot paths.
//   * Runtime: event emission is additionally gated on Tracer::enabled()
//     (one relaxed bool load when off). Counters are always live when
//     compiled in — a relaxed fetch_add on a thread-sharded cache line.
//
// Naming scheme (see README.md "Observability"): dotted lowercase
// "<layer>.<operation>[_<unit>]", e.g. "llfree.get", "balloon.madvise",
// "monitor.install_ns". Counter/histogram names passed to HA_COUNT /
// HA_HIST must be string literals: the macros cache the registry lookup
// in a function-local static, keyed by the expansion site.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sim/simulation.h"

// Compile-time switch; overridable from the build system
// (-DHYPERALLOC_TRACE=0 compiles all instrumentation out).
#ifndef HYPERALLOC_TRACE
#define HYPERALLOC_TRACE 1
#endif

namespace hyperalloc::trace {

// Number of cache-line-padded shards per counter/histogram. Threads are
// striped across shards to avoid false sharing under concurrent updates.
inline constexpr unsigned kShards = 8;

// Stable per-thread shard index.
unsigned ThreadShardIndex();

// A named monotonic counter. Increments are lock-free relaxed atomics on
// a per-thread-stripe cache line; Value() sums the shards (approximate
// while writers are running, exact at quiescence).
class Counter {
 public:
  void Add(uint64_t delta) {
    shards_[ThreadShardIndex()].value.fetch_add(delta,
                                                std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kShards];
};

// A power-of-two bucketed histogram for latencies (ns) and sizes.
// Bucket 0 holds zeros; bucket b >= 1 holds values in [2^(b-1), 2^b).
class Histogram {
 public:
  static constexpr unsigned kBuckets = 65;  // 0 plus bit_width 1..64

  static unsigned BucketOf(uint64_t value) {
    return static_cast<unsigned>(std::bit_width(value));
  }
  // Inclusive lower bound of a bucket.
  static uint64_t BucketLowerBound(unsigned bucket) {
    return bucket == 0 ? 0 : 1ull << (bucket - 1);
  }

  void Record(uint64_t value) {
    Shard& shard = shards_[ThreadShardIndex()];
    shard.count[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, kBuckets> buckets{};

    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  Snapshot Read() const {
    Snapshot snap;
    for (const Shard& shard : shards_) {
      snap.sum += shard.sum.load(std::memory_order_relaxed);
      for (unsigned b = 0; b < kBuckets; ++b) {
        const uint64_t n = shard.count[b].load(std::memory_order_relaxed);
        snap.buckets[b] += n;
        snap.count += n;
      }
    }
    return snap;
  }

  void Reset() {
    for (Shard& shard : shards_) {
      shard.sum.store(0, std::memory_order_relaxed);
      for (unsigned b = 0; b < kBuckets; ++b) {
        shard.count[b].store(0, std::memory_order_relaxed);
      }
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count[kBuckets]{};
    std::atomic<uint64_t> sum{0};
  };
  Shard shards_[kShards];
};

// Process-wide registry of named counters and histograms. Registration
// (first lookup per call site) takes a mutex; the returned references are
// stable for the process lifetime, so the hot path never locks.
class CounterRegistry {
 public:
  static CounterRegistry& Global();

  Counter& FindOrCreate(std::string_view name);
  Histogram& FindOrCreateHistogram(std::string_view name);

  // Snapshots, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> Counters() const;
  std::vector<std::pair<std::string, Histogram::Snapshot>> Histograms() const;

  // Zeroes every counter/histogram, keeping registrations (and thus the
  // references cached in function-local statics) valid.
  void ResetForTest();

 private:
  CounterRegistry() = default;
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
};

// ----------------------------------------------------------------------
// Event tracing
// ----------------------------------------------------------------------

enum class Category : uint8_t {
  kLLFree,   // guest page-frame allocator operations
  kGuest,    // guest VM memory accesses (EPT faults, touch)
  kEpt,      // second-stage page-table map/unmap
  kIommu,    // VFIO pinning and IOTLB flushes
  kBalloon,  // virtio-balloon queue operations
  kVmem,     // virtio-mem block (un)plug
  kMonitor,  // HyperAlloc monitor reclaim/return/install
  kState,    // reclaim-state (R array) transitions
  kFault,    // injected faults and their recovery (retry/rollback/...)
  kTelemetry,  // fleet telemetry pipeline (burn alerts, flight dumps)
};

enum class Op : uint8_t {
  kGet,
  kGetFail,
  kPut,
  kReserveTree,
  kSteal,
  kEvictedSet,
  kEvictedClear,
  kReclaimSoft,
  kReclaimHard,
  kReturn,
  kInstall,
  kMap,
  kUnmap,
  kIotlbFlush,
  kFault4k,
  kFault2m,
  kInflate,
  kDeflate,
  kMadvise,
  kHypercall,
  kTransition,
  kScan,
  kInject,      // a fault fired at an injection site
  kRetry,       // a failed operation is retried after backoff
  kRollback,    // partial work undone to restore a legal state
  kQuarantine,  // a frame (or the VM) entered fault quarantine
  kTimeout,     // a resize request hit its deadline
  kAlert,       // SLO burn-rate alert fired (telemetry)
  kFlightDump,  // flight recorder froze and dumped a postmortem bundle
};

const char* Name(Category category);
const char* Name(Op op);

struct TraceEvent {
  sim::Time at = 0;   // virtual time of the operation
  uint64_t seq = 0;   // global emission order (total-order tie-break)
  uint64_t arg0 = 0;  // operation-specific (usually a frame/huge id)
  uint64_t arg1 = 0;
  Category category = Category::kLLFree;
  Op op = Op::kGet;
};

// Process-wide event tracer. Each thread appends to its own fixed-size
// ring buffer (oldest events are overwritten once full; the overwrite
// count is reported as "dropped"). Drain() merges every buffer — live and
// retired — into one list sorted by (virtual time, emission seq).
//
// Emission is wait-free per thread; Drain/SetCapacity/Reset must run at
// quiescence (no concurrent Emit), which is when traces are meaningful
// anyway.
class Tracer {
 public:
  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Virtual-time source for event timestamps. Events emitted with no
  // source (e.g. real-time allocator stress tests) are stamped 0 and
  // ordered by seq. The simulation must outlive emission.
  void SetTimeSource(const sim::Simulation* sim) {
    time_source_.store(sim, std::memory_order_relaxed);
  }

  sim::Time Now() const {
    const sim::Simulation* sim = time_source_.load(std::memory_order_relaxed);
    return sim == nullptr ? 0 : sim->now();
  }

  void Emit(Category category, Op op, uint64_t arg0, uint64_t arg1);

  // Collects and clears all buffered events, sorted by (at, seq).
  std::vector<TraceEvent> Drain();

  // Events overwritten in full rings since the last reset (cumulative,
  // surviving Drain so exporters can report truncation).
  uint64_t dropped_events() const;

  // Ring capacity (events per thread) for buffers created or reset after
  // the call; existing buffers are resized and cleared.
  void SetCapacity(size_t events_per_thread);

  void ResetForTest();

 private:
  friend struct TracerThreadHandle;
  struct ThreadBuffer {
    std::vector<TraceEvent> ring;
    uint64_t head = 0;  // total events pushed since last reset
    Tracer* owner = nullptr;
  };

  Tracer() = default;
  ThreadBuffer& LocalBuffer();
  void Register(ThreadBuffer* buffer);
  void Retire(ThreadBuffer* buffer);

  std::atomic<bool> enabled_{false};
  std::atomic<const sim::Simulation*> time_source_{nullptr};
  std::atomic<uint64_t> seq_{0};
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
};

}  // namespace hyperalloc::trace

// ----------------------------------------------------------------------
// Instrumentation macros
// ----------------------------------------------------------------------
//
// `name` must be a string literal (the registry lookup is cached in a
// function-local static per expansion site).

#if HYPERALLOC_TRACE

#define HA_COUNT_N(name, delta)                                              \
  do {                                                                       \
    static ::hyperalloc::trace::Counter& ha_counter_ =                       \
        ::hyperalloc::trace::CounterRegistry::Global().FindOrCreate(name);   \
    ha_counter_.Add(delta);                                                  \
  } while (0)

#define HA_COUNT(name) HA_COUNT_N(name, 1)

#define HA_HIST(name, value)                                                 \
  do {                                                                       \
    static ::hyperalloc::trace::Histogram& ha_hist_ =                        \
        ::hyperalloc::trace::CounterRegistry::Global().FindOrCreateHistogram( \
            name);                                                           \
    ha_hist_.Record(value);                                                  \
  } while (0)

#define HA_TRACE_EVENT(category, op, arg0, arg1)                             \
  do {                                                                       \
    ::hyperalloc::trace::Tracer& ha_tracer_ =                                \
        ::hyperalloc::trace::Tracer::Global();                               \
    if (ha_tracer_.enabled()) {                                              \
      ha_tracer_.Emit((category), (op), (arg0), (arg1));                     \
    }                                                                        \
  } while (0)

#else  // !HYPERALLOC_TRACE

#define HA_COUNT_N(name, delta) \
  do {                          \
    (void)sizeof(delta);        \
  } while (0)
#define HA_COUNT(name) \
  do {                 \
  } while (0)
#define HA_HIST(name, value) \
  do {                       \
    (void)sizeof(value);     \
  } while (0)
#define HA_TRACE_EVENT(category, op, arg0, arg1) \
  do {                                           \
    (void)sizeof(arg0);                          \
    (void)sizeof(arg1);                          \
  } while (0)

#endif  // HYPERALLOC_TRACE
