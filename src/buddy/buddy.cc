#include "src/buddy/buddy.h"

#include <algorithm>
#include <cstdio>

#include "src/base/check.h"

namespace hyperalloc::buddy {

namespace {
// Nodes visited per list before PopUnreported gives up — models the
// incremental scan budget of Linux's free-page reporting worker.
constexpr unsigned kReportScanBudget = 2048;
}  // namespace

MigrateType ToMigrateType(AllocType type) {
  switch (type) {
    case AllocType::kUnmovable:
      return MigrateType::kUnmovable;
    case AllocType::kMovable:
    case AllocType::kHuge:  // THP allocations are movable
      return MigrateType::kMovable;
  }
  return MigrateType::kMovable;
}

Buddy::Buddy(uint64_t frames, const Config& config)
    : frames_(frames), config_(config) {
  HA_CHECK(frames > 0);
  HA_CHECK(frames % (1ull << kMaxBuddyOrder) == 0);
  HA_CHECK(frames < kNil);  // frame ids must fit the 32-bit list links

  desc_.resize(frames);
  pageblock_type_.assign(frames / kFramesPerHuge, MigrateType::kMovable);
  for (auto& per_order : heads_) {
    per_order.fill(kNil);
  }
  pcp_.resize(config.cores);
  reported_.assign((frames + 63) / 64, 0);
  // Start "fully allocated"; the initial MarkFree sweep below brings the
  // per-block usage counters to zero.
  used_in_block_.assign(frames / kFramesPerHuge, kFramesPerHuge);

  for (FrameId f = 0; f < frames; f += 1ull << kMaxBuddyOrder) {
    MarkFree(static_cast<uint32_t>(f), kMaxBuddyOrder, MigrateType::kMovable);
    ListPush(kMaxBuddyOrder, MigrateType::kMovable, static_cast<uint32_t>(f));
  }
}

// ----------------------------------------------------------------------
// List and descriptor primitives
// ----------------------------------------------------------------------

void Buddy::ListPush(unsigned order, MigrateType type, uint32_t frame) {
  const unsigned t = static_cast<unsigned>(type);
  PageDesc& d = desc_[frame];
  d.prev = kNil;
  d.next = heads_[order][t];
  d.type = type;
  if (d.next != kNil) {
    desc_[d.next].prev = frame;
  }
  heads_[order][t] = frame;
  free_frames_ += 1ull << order;
}

void Buddy::ListRemove(unsigned order, MigrateType type, uint32_t frame) {
  const unsigned t = static_cast<unsigned>(type);
  PageDesc& d = desc_[frame];
  if (d.prev != kNil) {
    desc_[d.prev].next = d.next;
  } else {
    HA_DCHECK(heads_[order][t] == frame);
    heads_[order][t] = d.next;
  }
  if (d.next != kNil) {
    desc_[d.next].prev = d.prev;
  }
  d.prev = kNil;
  d.next = kNil;
  free_frames_ -= 1ull << order;
}

uint32_t Buddy::ListPop(unsigned order, MigrateType type) {
  const uint32_t head = heads_[order][static_cast<unsigned>(type)];
  if (head != kNil) {
    ListRemove(order, type, head);
  }
  return head;
}

void Buddy::MarkFree(uint32_t frame, unsigned order, MigrateType type) {
  const uint64_t size = 1ull << order;
  for (uint64_t i = 0; i < size; ++i) {
    if (desc_[frame + i].state == State::kAllocated) {
      --used_in_block_[FrameToHuge(frame + i)];
    }
  }
  PageDesc& head = desc_[frame];
  head.state = State::kFreeHead;
  head.order = static_cast<uint8_t>(order);
  head.type = type;
  for (uint64_t i = 1; i < size; ++i) {
    desc_[frame + i].state = State::kFreeTail;
  }
}

void Buddy::MarkAllocated(uint32_t frame, unsigned order) {
  const uint64_t size = 1ull << order;
  for (uint64_t i = 0; i < size; ++i) {
    if (desc_[frame + i].state != State::kAllocated) {
      ++used_in_block_[FrameToHuge(frame + i)];
    }
    desc_[frame + i].state = State::kAllocated;
  }
}

// ----------------------------------------------------------------------
// Core buddy paths
// ----------------------------------------------------------------------

uint32_t Buddy::SplitTo(uint32_t frame, unsigned from_order,
                        unsigned to_order, MigrateType type) {
  // `frame` is detached and fully marked allocated; peel off upper halves.
  for (unsigned o = from_order; o > to_order; --o) {
    const uint32_t upper = frame + (1u << (o - 1));
    MarkFree(upper, o - 1, type);
    ListPush(o - 1, type, upper);
  }
  return frame;
}

std::optional<FrameId> Buddy::AllocCore(unsigned order, MigrateType type) {
  for (unsigned o = order; o <= kMaxBuddyOrder; ++o) {
    const uint32_t frame = ListPop(o, type);
    if (frame == kNil) {
      continue;
    }
    MarkAllocated(frame, o);
    SplitTo(frame, o, order, type);
    ClearReported(frame, order);
    return frame;
  }
  return StealFallback(order, type);
}

std::optional<FrameId> Buddy::StealFallback(unsigned order,
                                            MigrateType type) {
  const MigrateType other = type == MigrateType::kUnmovable
                                ? MigrateType::kMovable
                                : MigrateType::kUnmovable;
  // Linux steals the largest available block first, to limit how often
  // foreign allocations pollute pageblocks.
  for (int o = static_cast<int>(kMaxBuddyOrder); o >= static_cast<int>(order);
       --o) {
    const uint32_t frame = ListPop(static_cast<unsigned>(o), other);
    if (frame == kNil) {
      continue;
    }
    MarkAllocated(frame, static_cast<unsigned>(o));
    MigrateType remainder_type = other;
    if (static_cast<unsigned>(o) >= kHugeOrder) {
      // Whole pageblock(s): claim them for our migrate type.
      const uint64_t size = 1ull << static_cast<unsigned>(o);
      for (HugeId hb = FrameToHuge(frame); hb < FrameToHuge(frame + size);
           ++hb) {
        pageblock_type_[hb] = type;
      }
      remainder_type = type;
    }
    SplitTo(frame, static_cast<unsigned>(o), order, remainder_type);
    ClearReported(frame, order);
    return frame;
  }
  return std::nullopt;
}

void Buddy::FreeCore(FrameId frame, unsigned order) {
  uint32_t base = static_cast<uint32_t>(frame);
  unsigned o = order;
  while (o < kMaxBuddyOrder) {
    const uint32_t buddy = base ^ (1u << o);
    if (buddy >= frames_) {
      break;
    }
    const PageDesc& d = desc_[buddy];
    if (d.state != State::kFreeHead || d.order != o) {
      break;
    }
    ListRemove(o, d.type, buddy);
    base = std::min(base, buddy);
    ++o;
  }
  const MigrateType type = PageblockType(base);
  MarkFree(base, o, type);
  ListPush(o, type, base);
}

// ----------------------------------------------------------------------
// Public allocation API
// ----------------------------------------------------------------------

Result<FrameId> Buddy::Alloc(unsigned core, unsigned order, AllocType type) {
  if (order > kMaxBuddyOrder) {
    return AllocError::kInvalid;
  }
  const MigrateType mt = ToMigrateType(type);
  if (order == 0 && config_.pcp_enabled) {
    HA_CHECK(core < pcp_.size());
    auto& cache = pcp_[core].lists[static_cast<unsigned>(mt)];
    if (cache.empty()) {
      for (unsigned i = 0; i < config_.pcp_batch; ++i) {
        const std::optional<FrameId> f = AllocCore(0, mt);
        if (!f.has_value()) {
          break;
        }
        cache.push_back(static_cast<uint32_t>(*f));
        ++pcp_frames_;
      }
    }
    if (cache.empty()) {
      return AllocError::kNoMemory;
    }
    const uint32_t frame = cache.back();
    cache.pop_back();
    --pcp_frames_;
    return static_cast<FrameId>(frame);
  }

  const std::optional<FrameId> frame = AllocCore(order, mt);
  if (!frame.has_value()) {
    return AllocError::kNoMemory;
  }
  return *frame;
}

std::optional<AllocError> Buddy::Free(unsigned core, FrameId frame,
                                      unsigned order) {
  if (order > kMaxBuddyOrder || frame >= frames_ ||
      frame % (1ull << order) != 0) {
    return AllocError::kInvalid;
  }
  // Double-free detection: the whole block must currently be allocated.
  const uint64_t size = 1ull << order;
  for (uint64_t i = 0; i < size; ++i) {
    if (desc_[frame + i].state != State::kAllocated) {
      return AllocError::kInvalid;
    }
  }

  if (order == 0 && config_.pcp_enabled) {
    HA_CHECK(core < pcp_.size());
    const MigrateType mt = PageblockType(frame);
    auto& cache = pcp_[core].lists[static_cast<unsigned>(mt)];
    cache.push_back(static_cast<uint32_t>(frame));
    ++pcp_frames_;
    if (cache.size() > 2 * config_.pcp_batch) {
      for (unsigned i = 0; i < config_.pcp_batch; ++i) {
        FreeCore(cache.back(), 0);
        cache.pop_back();
        --pcp_frames_;
      }
    }
    return std::nullopt;
  }

  FreeCore(frame, order);
  return std::nullopt;
}

void Buddy::DrainPcp() {
  for (Pcp& pcp : pcp_) {
    for (auto& cache : pcp.lists) {
      for (const uint32_t frame : cache) {
        FreeCore(frame, 0);
        --pcp_frames_;
      }
      cache.clear();
    }
  }
}

// ----------------------------------------------------------------------
// virtio-mem support
// ----------------------------------------------------------------------

std::optional<uint32_t> Buddy::FindCoveringHead(FrameId frame) const {
  if (desc_[frame].state == State::kFreeHead) {
    return static_cast<uint32_t>(frame);
  }
  for (unsigned o = 1; o <= kMaxBuddyOrder; ++o) {
    const FrameId head = AlignDown(frame, 1ull << o);
    if (head == frame) {
      continue;
    }
    const PageDesc& d = desc_[head];
    if (d.state == State::kFreeHead && d.order == o) {
      return static_cast<uint32_t>(head);
    }
  }
  return std::nullopt;
}

bool Buddy::ClaimRange(FrameId start, uint64_t count) {
  HA_CHECK(start + count <= frames_);
  for (FrameId f = start; f < start + count; ++f) {
    if (desc_[f].state == State::kAllocated) {
      return false;
    }
  }
  // Detach every free block overlapping the range, then give back the
  // parts that stick out on either side.
  FrameId f = start;
  while (f < start + count) {
    std::optional<uint32_t> head = FindCoveringHead(f);
    HA_CHECK(head.has_value());  // verified free above
    const PageDesc& d = desc_[*head];
    const unsigned order = d.order;
    const uint64_t size = 1ull << order;
    ListRemove(order, d.type, *head);
    MarkAllocated(*head, order);
    ClearReported(*head, order);
    if (*head < start) {
      ReleaseRange(*head, start - *head);
    }
    const FrameId block_end = *head + size;
    if (block_end > start + count) {
      ReleaseRange(start + count, block_end - (start + count));
    }
    f = block_end;
  }
  return true;
}

void Buddy::ReleaseRange(FrameId start, uint64_t count) {
  HA_CHECK(start + count <= frames_);
  // Greedily free maximal naturally aligned blocks.
  FrameId f = start;
  uint64_t remaining = count;
  while (remaining > 0) {
    unsigned order = kMaxBuddyOrder;
    while (order > 0 &&
           (f % (1ull << order) != 0 || (1ull << order) > remaining)) {
      --order;
    }
    for (uint64_t i = 0; i < (1ull << order); ++i) {
      HA_CHECK(desc_[f + i].state == State::kAllocated);
    }
    FreeCore(f, order);
    f += 1ull << order;
    remaining -= 1ull << order;
  }
}

uint64_t Buddy::ClaimFreeInRange(FrameId start, uint64_t count) {
  HA_CHECK(start + count <= frames_);
  uint64_t claimed = 0;
  FrameId f = start;
  while (f < start + count) {
    if (desc_[f].state == State::kAllocated) {
      ++f;
      continue;
    }
    const std::optional<uint32_t> head = FindCoveringHead(f);
    HA_CHECK(head.has_value());
    const PageDesc& d = desc_[*head];
    const unsigned order = d.order;
    const uint64_t size = 1ull << order;
    ListRemove(order, d.type, *head);
    MarkAllocated(*head, order);
    ClearReported(*head, order);
    const FrameId block_end = *head + size;
    if (*head < start) {
      ReleaseRange(*head, start - *head);
    }
    if (block_end > start + count) {
      ReleaseRange(start + count, block_end - (start + count));
    }
    claimed += std::min<FrameId>(block_end, start + count) -
               std::max<FrameId>(*head, start);
    f = block_end;
  }
  return claimed;
}

std::vector<FrameId> Buddy::AllocatedInRange(FrameId start,
                                             uint64_t count) const {
  HA_CHECK(start + count <= frames_);
  std::vector<FrameId> result;
  for (FrameId f = start; f < start + count; ++f) {
    if (desc_[f].state == State::kAllocated) {
      result.push_back(f);
    }
  }
  return result;
}

bool Buddy::IsFree(FrameId frame) const {
  HA_CHECK(frame < frames_);
  return desc_[frame].state != State::kAllocated;
}

// ----------------------------------------------------------------------
// Free-page reporting support
// ----------------------------------------------------------------------

std::optional<FrameId> Buddy::PopUnreported(unsigned order) {
  HA_CHECK(order <= kMaxBuddyOrder);
  // Blocks of the requested order or larger qualify (Linux reports from
  // every free list of order >= the reporting order); larger blocks are
  // split and the unused siblings stay in the lists.
  for (unsigned o = order; o <= kMaxBuddyOrder; ++o) {
    for (unsigned t = 0; t < kNumMigrateTypes; ++t) {
      unsigned budget = kReportScanBudget;
      uint32_t frame = heads_[o][t];
      while (frame != kNil && budget-- > 0) {
        if (!IsReported(frame)) {
          ListRemove(o, static_cast<MigrateType>(t), frame);
          MarkAllocated(frame, o);
          SplitTo(frame, o, order, static_cast<MigrateType>(t));
          return static_cast<FrameId>(frame);
        }
        frame = desc_[frame].next;
      }
    }
  }
  return std::nullopt;
}

void Buddy::MarkReported(FrameId frame, unsigned order) {
  const uint64_t size = 1ull << order;
  for (FrameId f = frame; f < frame + size; ++f) {
    reported_[f / 64] |= 1ull << (f % 64);
  }
}

bool Buddy::IsReported(FrameId frame) const {
  return (reported_[frame / 64] >> (frame % 64)) & 1;
}

void Buddy::ClearReported(FrameId frame, unsigned order) {
  const uint64_t size = 1ull << order;
  for (FrameId f = frame; f < frame + size; ++f) {
    reported_[f / 64] &= ~(1ull << (f % 64));
  }
}

// ----------------------------------------------------------------------
// Introspection
// ----------------------------------------------------------------------

uint64_t Buddy::FreeBlocksOfOrder(unsigned order) const {
  HA_CHECK(order <= kMaxBuddyOrder);
  uint64_t count = 0;
  for (unsigned t = 0; t < kNumMigrateTypes; ++t) {
    for (uint32_t f = heads_[order][t]; f != kNil; f = desc_[f].next) {
      ++count;
    }
  }
  return count;
}

uint64_t Buddy::FreeHugeFrames() const {
  uint64_t frames = 0;
  for (unsigned o = kHugeOrder; o <= kMaxBuddyOrder; ++o) {
    frames += FreeBlocksOfOrder(o) << o;
  }
  return frames;
}

uint64_t Buddy::UsedHugeBlocks() const {
  uint64_t count = 0;
  for (const uint16_t used : used_in_block_) {
    if (used > 0) {
      ++count;
    }
  }
  return count;
}

uint64_t Buddy::FreeAlignedHugeRanges() const {
  uint64_t count = 0;
  for (HugeId h = 0; h < frames_ / kFramesPerHuge; ++h) {
    bool all_free = true;
    for (FrameId f = HugeToFrame(h); f < HugeToFrame(h + 1); ++f) {
      if (desc_[f].state == State::kAllocated) {
        all_free = false;
        break;
      }
    }
    if (all_free) {
      ++count;
    }
  }
  return count;
}

bool Buddy::Validate() const {
  bool ok = true;
  auto fail = [&ok](const char* what, uint64_t a, uint64_t b) {
    std::fprintf(stderr, "buddy validate: %s (%llu vs %llu)\n", what,
                 static_cast<unsigned long long>(a),
                 static_cast<unsigned long long>(b));
    ok = false;
  };

  uint64_t listed = 0;
  for (unsigned o = 0; o <= kMaxBuddyOrder; ++o) {
    for (unsigned t = 0; t < kNumMigrateTypes; ++t) {
      uint32_t prev = kNil;
      for (uint32_t f = heads_[o][t]; f != kNil; f = desc_[f].next) {
        const PageDesc& d = desc_[f];
        if (d.state != State::kFreeHead || d.order != o) {
          fail("list node not a free head of its order", f, o);
        }
        if (d.prev != prev) {
          fail("broken prev link", f, prev);
        }
        if (f % (1ull << o) != 0) {
          fail("misaligned free block", f, o);
        }
        for (uint64_t i = 1; i < (1ull << o); ++i) {
          if (desc_[f + i].state != State::kFreeTail) {
            fail("free block interior not tail", f + i, o);
          }
        }
        listed += 1ull << o;
        prev = f;
      }
    }
  }
  if (listed != free_frames_) {
    fail("free frame counter mismatch", listed, free_frames_);
  }
  uint64_t used_total = 0;
  for (const uint16_t used : used_in_block_) {
    used_total += used;
  }
  if (used_total != frames_ - free_frames_) {
    fail("per-block usage counter mismatch", used_total,
         frames_ - free_frames_);
  }
  return ok;
}

}  // namespace hyperalloc::buddy
