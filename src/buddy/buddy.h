// Linux-style binary buddy page-frame allocator — the baseline guest
// allocator for the virtio-balloon and virtio-mem candidates.
//
// Faithfully modelled mechanisms that matter for the paper's results:
//  * free lists per order (0..10) and migrate type, LIFO
//  * pageblock (2 MiB) migrate typing with largest-block fallback stealing
//    and pageblock conversion — the main driver of the long-term
//    fragmentation that limits virtio-balloon's free-page reporting
//    (paper §5.5, Fig. 8)
//  * per-CPU page caches (PCP) for order-0 allocations — the reason
//    ballooned/reported frames are often re-allocated immediately (§2)
//  * targeted range claiming (alloc_contig_range) used by virtio-mem to
//    offline blocks
//  * PageReported tracking for virtio-balloon's free-page reporting
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/result.h"
#include "src/base/types.h"

namespace hyperalloc::buddy {

// Internal migrate types. AllocType::kHuge maps to kMovable (THP
// allocations are movable in Linux).
enum class MigrateType : uint8_t { kUnmovable = 0, kMovable = 1 };
inline constexpr unsigned kNumMigrateTypes = 2;

MigrateType ToMigrateType(AllocType type);

class Buddy {
 public:
  struct Config {
    unsigned cores = 1;
    // PCP batch size (order-0 frames cached per core and migrate type).
    unsigned pcp_batch = 32;
    bool pcp_enabled = true;
  };

  Buddy(uint64_t frames, const Config& config);

  uint64_t frames() const { return frames_; }

  // ------------------------------------------------------------------
  // Allocation API
  // ------------------------------------------------------------------

  Result<FrameId> Alloc(unsigned core, unsigned order, AllocType type);
  std::optional<AllocError> Free(unsigned core, FrameId frame,
                                 unsigned order);

  // Flushes all per-CPU caches back into the buddy lists (the guest's
  // reaction to memory pressure / the hypervisor's cache purge).
  void DrainPcp();

  // ------------------------------------------------------------------
  // virtio-mem support (alloc_contig_range / free_contig_range)
  // ------------------------------------------------------------------

  // Atomically removes [start, start+count) from the free lists. Fails
  // (changing nothing) unless every frame in the range is free in the
  // buddy lists (PCP-cached frames count as allocated — drain first).
  bool ClaimRange(FrameId start, uint64_t count);

  // Returns a previously claimed (or never-released) range to the free
  // lists as maximal aligned blocks.
  void ReleaseRange(FrameId start, uint64_t count);

  // Claims every currently free frame in [start, start+count), leaving
  // allocated frames alone (page isolation before migration:
  // MIGRATE_ISOLATE). Returns the number of frames claimed.
  uint64_t ClaimFreeInRange(FrameId start, uint64_t count);

  // Frames in [start, start+count) that are currently allocated (must be
  // migrated before the range can be claimed).
  std::vector<FrameId> AllocatedInRange(FrameId start, uint64_t count) const;

  bool IsFree(FrameId frame) const;

  // ------------------------------------------------------------------
  // Free-page reporting support
  // ------------------------------------------------------------------

  // Detaches the first not-yet-reported free block of `order` (any
  // migrate type), marking it allocated. Returns its first frame.
  std::optional<FrameId> PopUnreported(unsigned order);

  // Marks a block as reported. Typically followed by Free() to return it
  // to the allocator while remembering that the host already reclaimed it.
  void MarkReported(FrameId frame, unsigned order);

  bool IsReported(FrameId frame) const;

  // ------------------------------------------------------------------
  // Introspection
  // ------------------------------------------------------------------

  uint64_t FreeFrames() const { return free_frames_ + pcp_frames_; }
  uint64_t FreeFramesInLists() const { return free_frames_; }
  // Free frames that are part of >= order-9 blocks — what huge-page-
  // granular reclamation can actually take (Fig. 8's fragmentation gap).
  uint64_t FreeHugeFrames() const;
  uint64_t FreeBlocksOfOrder(unsigned order) const;
  // Fully-free, huge-aligned 2 MiB ranges regardless of block structure.
  uint64_t FreeAlignedHugeRanges() const;

  // O(num_huge) variants maintained incrementally (cheap enough for 1 Hz
  // sampling in the footprint experiments).
  uint64_t UsedFramesInBlock(HugeId huge) const {
    HA_CHECK(huge < used_in_block_.size());
    return used_in_block_[huge];
  }
  // 2 MiB blocks with at least one allocated (or PCP-cached) frame —
  // the "(partially) used huge pages" curve of Fig. 8.
  uint64_t UsedHugeBlocks() const;

  // Verifies list/descriptor consistency. Quiescent use only.
  bool Validate() const;

 private:
  enum class State : uint8_t {
    kAllocated,  // in use (or in a PCP cache)
    kFreeHead,   // first frame of a free block (order in desc)
    kFreeTail,   // interior frame of a free block
  };

  struct PageDesc {
    State state = State::kAllocated;
    uint8_t order = 0;       // valid for kFreeHead
    MigrateType type = MigrateType::kMovable;  // list the head is on
    uint32_t prev = kNil;
    uint32_t next = kNil;
  };

  static constexpr uint32_t kNil = 0xffffffffu;

  struct Pcp {
    std::array<std::vector<uint32_t>, kNumMigrateTypes> lists;
  };

  MigrateType PageblockType(FrameId frame) const {
    return pageblock_type_[FrameToHuge(frame)];
  }

  void ListPush(unsigned order, MigrateType type, uint32_t frame);
  void ListRemove(unsigned order, MigrateType type, uint32_t frame);
  uint32_t ListPop(unsigned order, MigrateType type);

  void MarkFree(uint32_t frame, unsigned order, MigrateType type);
  void MarkAllocated(uint32_t frame, unsigned order);

  // Core buddy paths (no PCP).
  std::optional<FrameId> AllocCore(unsigned order, MigrateType type);
  void FreeCore(FrameId frame, unsigned order);

  // Splits `frame` (a detached block of `from_order`) down to `to_order`,
  // freeing the upper halves onto `type` lists; returns the base.
  uint32_t SplitTo(uint32_t frame, unsigned from_order, unsigned to_order,
                   MigrateType type);

  // Fallback: steal the largest block from the other migrate type,
  // converting its pageblocks when large enough (Linux's
  // steal_suitable_fallback).
  std::optional<FrameId> StealFallback(unsigned order, MigrateType type);

  // Finds the free block covering `frame`, if any.
  std::optional<uint32_t> FindCoveringHead(FrameId frame) const;

  void ClearReported(FrameId frame, unsigned order);

  uint64_t frames_;
  Config config_;
  std::vector<PageDesc> desc_;
  std::vector<MigrateType> pageblock_type_;
  std::array<std::array<uint32_t, kNumMigrateTypes>, kMaxBuddyOrder + 1>
      heads_;
  std::vector<Pcp> pcp_;
  std::vector<uint64_t> reported_;  // bitset, one bit per frame
  std::vector<uint16_t> used_in_block_;  // allocated frames per 2 MiB block
  uint64_t free_frames_ = 0;        // frames in buddy lists
  uint64_t pcp_frames_ = 0;         // frames in PCP caches
};

}  // namespace hyperalloc::buddy
