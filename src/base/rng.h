// Deterministic pseudo-random number generation for workload generators and
// property tests. xoshiro256** seeded via SplitMix64 — fast, reproducible,
// and independent of the standard library's unspecified distributions.
#pragma once

#include <cstdint>

#include "src/base/check.h"

namespace hyperalloc {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (uint64_t& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  // Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    HA_CHECK(bound > 0);
    // Debiased via rejection on the top of the range.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t value = Next();
      if (value >= threshold) {
        return value % bound;
      }
    }
  }

  // Uniform value in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    HA_CHECK(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / (1ull << 53));
  }

  // Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace hyperalloc
