// Minimal expected-like result type (std::expected is C++23; this project
// targets C++20). Carries either a value or an AllocError.
#pragma once

#include <utility>
#include <variant>

#include "src/base/check.h"
#include "src/base/types.h"

namespace hyperalloc {

template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic returns.
  Result(T value) : state_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(AllocError error) : state_(error) {}

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  const T& value() const {
    HA_CHECK(ok());
    return std::get<T>(state_);
  }

  T& value() {
    HA_CHECK(ok());
    return std::get<T>(state_);
  }

  const T& operator*() const { return value(); }

  AllocError error() const {
    HA_CHECK(!ok());
    return std::get<AllocError>(state_);
  }

 private:
  std::variant<T, AllocError> state_;
};

}  // namespace hyperalloc
