// Small statistics helpers used by the benchmark harnesses: mean, standard
// deviation, 95 % confidence intervals (as in the paper's error bars), and
// percentiles (Table 2 reports 1st-percentile values).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hyperalloc {

struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   // sample standard deviation
  double ci95 = 0.0;     // half-width of the 95 % confidence interval
  double min = 0.0;
  double max = 0.0;
};

// Computes summary statistics over the samples. Returns a zeroed Summary
// for an empty input.
Summary Summarize(const std::vector<double>& samples);

// Returns the p-quantile (p in [0,1]) over ascending-sorted samples using
// linear interpolation between closest ranks. Callers taking several
// quantiles of the same data should sort once and use this directly.
double PercentileSorted(std::span<const double> sorted, double p);

// Convenience wrapper for a single quantile of unsorted data: sorts one
// copy, then delegates to PercentileSorted.
double Percentile(std::vector<double> samples, double p);

// Running mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace hyperalloc
