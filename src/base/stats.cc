#include "src/base/stats.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"

namespace hyperalloc {

Summary Summarize(const std::vector<double>& samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) {
    return s;
  }
  double sum = 0.0;
  s.min = samples[0];
  s.max = samples[0];
  for (double x : samples) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double sq = 0.0;
    for (double x : samples) {
      sq += (x - s.mean) * (x - s.mean);
    }
    s.stddev = std::sqrt(sq / static_cast<double>(samples.size() - 1));
    // Normal approximation; fine for the >= 10 repetitions the harness uses.
    s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(samples.size()));
  }
  return s;
}

double PercentileSorted(std::span<const double> sorted, double p) {
  HA_CHECK(!sorted.empty());
  HA_CHECK(p >= 0.0 && p <= 1.0);
  HA_DCHECK(std::is_sorted(sorted.begin(), sorted.end()));
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return PercentileSorted(samples, p);
}

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace hyperalloc
