// Fundamental types and constants shared by every HyperAlloc module.
//
// Memory is modelled as a flat array of 4 KiB base frames. A "huge frame"
// is 2 MiB (order 9, 512 base frames), which is also the granularity of
// one LLFree *area* and of HyperAlloc's reclamation state.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hyperalloc {

// Index of a 4 KiB base frame within some physical address space.
using FrameId = uint64_t;

// Index of a 2 MiB huge frame (= one LLFree area).
using HugeId = uint64_t;

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

inline constexpr uint64_t kFrameSize = 4 * kKiB;
inline constexpr unsigned kHugeOrder = 9;
inline constexpr uint64_t kFramesPerHuge = 1ull << kHugeOrder;  // 512
inline constexpr uint64_t kHugeSize = kFrameSize * kFramesPerHuge;  // 2 MiB

// Maximum buddy order (Linux x86 default: 10 => 4 MiB blocks).
inline constexpr unsigned kMaxBuddyOrder = 10;

constexpr uint64_t FramesForBytes(uint64_t bytes) {
  return (bytes + kFrameSize - 1) / kFrameSize;
}

constexpr uint64_t HugesForFrames(uint64_t frames) {
  return (frames + kFramesPerHuge - 1) / kFramesPerHuge;
}

constexpr FrameId HugeToFrame(HugeId huge) { return huge << kHugeOrder; }
constexpr HugeId FrameToHuge(FrameId frame) { return frame >> kHugeOrder; }

constexpr bool IsHugeAligned(FrameId frame) {
  return (frame & (kFramesPerHuge - 1)) == 0;
}

constexpr uint64_t AlignDown(uint64_t value, uint64_t alignment) {
  return value - value % alignment;
}

constexpr uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return AlignDown(value + alignment - 1, alignment);
}

// Linux-like allocation types used by LLFree's per-type tree reservations
// (paper §4.2): unmovable kernel allocations, movable user allocations, and
// huge allocations.
enum class AllocType : uint8_t {
  kUnmovable = 0,
  kMovable = 1,
  kHuge = 2,
};
inline constexpr unsigned kNumAllocTypes = 3;

inline const char* ToString(AllocType type) {
  switch (type) {
    case AllocType::kUnmovable:
      return "unmovable";
    case AllocType::kMovable:
      return "movable";
    case AllocType::kHuge:
      return "huge";
  }
  return "?";
}

// Error codes shared by the allocators. Modelled after LLFree's result
// codes: allocations can fail because memory is exhausted or because a
// lock-free operation should be retried at a higher level.
enum class AllocError : uint8_t {
  kNoMemory,   // no frame of the requested order is available
  kRetry,      // transient race; caller may retry
  kEvicted,    // frame is evicted and needs a hypervisor install first
  kInvalid,    // bad argument (address out of range, double free, ...)
};

inline const char* ToString(AllocError error) {
  switch (error) {
    case AllocError::kNoMemory:
      return "no-memory";
    case AllocError::kRetry:
      return "retry";
    case AllocError::kEvicted:
      return "evicted";
    case AllocError::kInvalid:
      return "invalid";
  }
  return "?";
}

}  // namespace hyperalloc
