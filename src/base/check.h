// Lightweight runtime checks. HA_CHECK is always on (these guard protocol
// invariants whose violation would corrupt simulated memory state);
// HA_DCHECK compiles out in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hyperalloc::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "%s:%d: check failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace hyperalloc::internal

#define HA_CHECK(expr)                                            \
  do {                                                            \
    if (!(expr)) {                                                \
      ::hyperalloc::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                             \
  } while (0)

#ifdef NDEBUG
#define HA_DCHECK(expr) \
  do {                  \
  } while (0)
#else
#define HA_DCHECK(expr) HA_CHECK(expr)
#endif
