// The non-atomic shared-data seam of the lock-free core, companion to
// the Atomic<T> seam in src/base/atomic.h.
//
// Fields that are *intended* to be protected by a release/acquire
// protocol on a neighboring Atomic<T> — published once and then read by
// other threads, or handed off across a CAS — are declared
// `hyperalloc::Shared<T>` and accessed through `.read()` / `.write()`.
//
// Production builds alias it to PlainShared<T> below: read()/write()
// compile to a bare member access with zero overhead. Model-checking
// builds (-DHYPERALLOC_MODEL_CHECK=1) alias it to check::Shared<T>
// (src/check/memory_model.h), which stamps every access with the
// calling model thread's vector clock and fails the execution when two
// accesses from different threads — at least one a write — are
// unordered by happens-before, reporting both source sites, the
// schedule trace, and the missing release/acquire edge.
//
// Plain members stay appropriate for data that is genuinely
// single-threaded or immutable after construction; Shared<T> is for
// data whose safety *depends on* the ordering protocol of the
// surrounding atomics.
#pragma once

#include <utility>

namespace hyperalloc {

// Production-side implementation: a transparent wrapper. read()/write()
// are plain accessors the optimizer erases.
template <typename T>
class PlainShared {
 public:
  PlainShared() : v_{} {}
  template <typename... Args>
  explicit PlainShared(Args&&... args) : v_(std::forward<Args>(args)...) {}

  PlainShared(const PlainShared&) = delete;
  PlainShared& operator=(const PlainShared&) = delete;

  const T& read() const { return v_; }
  T& write() { return v_; }

 private:
  T v_;
};

}  // namespace hyperalloc

#if defined(HYPERALLOC_MODEL_CHECK) && HYPERALLOC_MODEL_CHECK

#include "src/check/memory_model.h"

namespace hyperalloc {
template <typename T>
using Shared = check::Shared<T>;
}  // namespace hyperalloc

#else

namespace hyperalloc {
template <typename T>
using Shared = PlainShared<T>;
}  // namespace hyperalloc

#endif
