#include "src/base/units.h"

#include <cinttypes>
#include <cstdio>

#include "src/base/types.h"

namespace hyperalloc {

namespace {

std::string FormatScaled(double value, const char* const* units,
                         int num_units, double step) {
  int unit = 0;
  while (value >= step && unit < num_units - 1) {
    value /= step;
    ++unit;
  }
  char buf[64];
  if (value >= 100.0 || value == static_cast<uint64_t>(value)) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, units[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  }
  return buf;
}

}  // namespace

std::string FormatBytes(uint64_t bytes) {
  static const char* const kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  return FormatScaled(static_cast<double>(bytes), kUnits, 5, 1024.0);
}

std::string FormatRate(double bytes_per_second) {
  static const char* const kUnits[] = {"B/s", "KiB/s", "MiB/s", "GiB/s",
                                       "TiB/s"};
  return FormatScaled(bytes_per_second, kUnits, 5, 1024.0);
}

std::string FormatDuration(uint64_t nanoseconds) {
  char buf[64];
  if (nanoseconds < 1000) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " ns", nanoseconds);
  } else if (nanoseconds < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2f us",
                  static_cast<double>(nanoseconds) / 1e3);
  } else if (nanoseconds < 1000ull * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms",
                  static_cast<double>(nanoseconds) / 1e6);
  } else if (nanoseconds < 60ull * 1000 * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2f s",
                  static_cast<double>(nanoseconds) / 1e9);
  } else {
    const uint64_t total_s = nanoseconds / (1000ull * 1000 * 1000);
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "m%02" PRIu64 "s",
                  total_s / 60, total_s % 60);
  }
  return buf;
}

}  // namespace hyperalloc
