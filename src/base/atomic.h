// The atomic seam of the lock-free core.
//
// Production builds alias hyperalloc::Atomic<T> to std::atomic<T>, so the
// allocator compiles to exactly the code it always did. Model-checking
// builds (-DHYPERALLOC_MODEL_CHECK=1, see src/check/) alias it to
// check::Atomic<T>, which routes every load/store/CAS through a controlled
// scheduler so that bounded scenarios can be explored exhaustively or by
// seeded random walk and any failing schedule can be replayed from its
// seed.
//
// Code using this seam must name an explicit std::memory_order on every
// operation (scripts/lint.sh enforces this); the shim deliberately
// declares no defaulted order parameters.
#pragma once

#if defined(HYPERALLOC_MODEL_CHECK) && HYPERALLOC_MODEL_CHECK

#include "src/check/shim.h"

namespace hyperalloc {
template <typename T>
using Atomic = check::Atomic<T>;
}  // namespace hyperalloc

#else

#include <atomic>

namespace hyperalloc {
template <typename T>
using Atomic = std::atomic<T>;
}  // namespace hyperalloc

#endif
