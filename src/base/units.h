// Pretty-printing helpers for byte quantities and rates, used by the
// benchmark harnesses to print paper-style tables (GiB/s, GiB·min, ...).
#pragma once

#include <cstdint>
#include <string>

namespace hyperalloc {

// "1.25 GiB", "512 KiB", ...
std::string FormatBytes(uint64_t bytes);

// "344.8 GiB/s", "4.92 TiB/s", ...
std::string FormatRate(double bytes_per_second);

// "1m23s", "456 ms", ...
std::string FormatDuration(uint64_t nanoseconds);

}  // namespace hyperalloc
