#include "src/workloads/ftq.h"

#include "src/base/check.h"

namespace hyperalloc::workloads {

FtqWorkload::FtqWorkload(sim::Simulation* sim, const FtqConfig& config)
    : sim_(sim), config_(config), vcpus_(config.vcpus) {
  HA_CHECK(config.threads >= 1 && config.threads <= config.vcpus);
}

void FtqWorkload::Start(std::function<void()> on_done) {
  on_done_ = std::move(on_done);
  Tick(0);
}

void FtqWorkload::Tick(unsigned sample) {
  if (sample >= config_.samples) {
    if (on_done_) {
      on_done_();
    }
    return;
  }
  const sim::Time start = sim_->now();
  const sim::Time end = start + config_.quantum;
  sim_->At(end, [this, sample, start, end] {
    // Aggregate work over all threads: each thread's count scales with
    // its vCPU availability during the quantum.
    double work = 0.0;
    for (unsigned t = 0; t < config_.threads; ++t) {
      const double avail = vcpus_.cpu(t % vcpus_.size()).Integrate(start, end) /
                           static_cast<double>(config_.quantum);
      work += config_.work_per_quantum * avail;
    }
    samples_.Sample(end, work);
    for (unsigned t = 0; t < vcpus_.size(); ++t) {
      vcpus_.cpu(t).TrimBefore(end > sim::kSec ? end - sim::kSec : 0);
    }
    Tick(sample + 1);
  });
}

}  // namespace hyperalloc::workloads
