#include "src/workloads/compile.h"

#include <algorithm>

#include "src/base/check.h"

namespace hyperalloc::workloads {

CompileWorkload::CompileWorkload(guest::GuestVm* vm, MemoryPool* pool,
                                 sim::VcpuSet* vcpus,
                                 const CompileConfig& config)
    : vm_(vm), pool_(pool), vcpus_(vcpus), sim_(vm->simulation()),
      config_(config), rng_(config.seed) {
  HA_CHECK(config.workers > 0);
  // Build the job queue: the back is processed first, so push link jobs
  // first (they run last).
  for (unsigned i = 0; i < config.link_jobs; ++i) {
    Job job;
    job.duration = rng_.Range(config.link_time_min, config.link_time_max);
    job.working_set = rng_.Range(config.link_ws_min, config.link_ws_max);
    job.is_link = true;
    queue_.push_back(job);
  }
  for (unsigned i = 0; i < config.compile_units; ++i) {
    Job job;
    job.duration = rng_.Range(config.unit_time_min, config.unit_time_max);
    job.working_set = rng_.Range(config.unit_ws_min, config.unit_ws_max);
    job.is_link = false;
    queue_.push_back(job);
  }
}

void CompileWorkload::Start(std::function<void()> on_done) {
  on_done_ = std::move(on_done);
  for (unsigned w = 0; w < config_.workers; ++w) {
    WorkerNext(w);
  }
}

void CompileWorkload::WorkerNext(unsigned worker) {
  // Find the next runnable job (link jobs have bounded parallelism, and
  // only start once all compile units are done — honoured naturally by
  // queue order plus the parallelism cap).
  if (queue_.empty()) {
    if (active_workers_ == 0 && !done_) {
      done_ = true;
      finish_time_ = sim_->now();
      if (on_done_) {
        on_done_();
      }
    }
    return;
  }
  if (queue_.back().is_link && active_links_ >= config_.max_parallel_links) {
    // Wait for a link slot.
    sim_->After(sim::kSec, [this, worker] { WorkerNext(worker); });
    return;
  }
  const Job job = queue_.back();
  queue_.pop_back();
  ++active_workers_;
  if (job.is_link) {
    ++active_links_;
  }

  // Reading sources warms the page cache; the kernel grows slab state.
  vm_->CacheAdd(config_.cache_read_per_unit, worker);
  if (config_.slab_per_job > 0) {
    const uint64_t slab = pool_->AllocRegion(
        config_.slab_per_job, 0.0, worker, AllocType::kUnmovable);
    ++slab_counter_;
    if (config_.slab_leak_every != 0 &&
        slab_counter_ % config_.slab_leak_every == 0) {
      // Long-lived kernel objects: never tracked for retirement.
    } else {
      slab_regions_.push_back(slab);
    }
    RetireSlabs();
  }
  // The working set ramps up over the job's runtime (JobStep), so the 12
  // workers' allocations interleave in physical memory.
  const unsigned steps = std::max(1u, config_.ws_steps);
  const uint64_t region = pool_->AllocRegion(
      job.working_set / steps, config_.thp_fraction, worker);

  // The job's CPU time stretches with whatever reclamation steals from
  // this worker's vCPU.
  const sim::Time start = sim_->now();
  const sim::Time end =
      vcpus_ != nullptr
          ? vcpus_->cpu(worker % vcpus_->size())
                .ConsumeFrom(start, static_cast<double>(job.duration))
          : start + job.duration;
  const sim::Time step_time = (end - start) / steps;
  sim_->After(step_time, [this, worker, region, job, step_time] {
    JobStep(worker, region, job, 1, step_time);
  });
}

void CompileWorkload::JobStep(unsigned worker, uint64_t region, Job job,
                              unsigned step, sim::Time step_time) {
  const unsigned steps = std::max(1u, config_.ws_steps);
  if (step >= steps) {
    FinishJob(worker, region, job.is_link);
    return;
  }
  pool_->GrowRegion(region, job.working_set / steps, config_.thp_fraction,
                    worker);
  sim_->After(step_time, [this, worker, region, job, step, step_time] {
    JobStep(worker, region, job, step + 1, step_time);
  });
}

void CompileWorkload::FinishJob(unsigned worker, uint64_t region,
                                bool was_link) {
  pool_->FreeRegion(region, worker);
  // Writing the artifact grows the page cache.
  const uint64_t artifact =
      was_link ? 16 * config_.artifact_per_unit : config_.artifact_per_unit;
  vm_->CacheAdd(artifact, worker);
  artifact_bytes_ += artifact;
  ++jobs_completed_;
  if (was_link) {
    --active_links_;
  }
  --active_workers_;
  WorkerNext(worker);
}

void CompileWorkload::RetireSlabs() {
  while (slab_regions_.size() > config_.slab_lifetime_jobs) {
    pool_->FreeRegion(slab_regions_.front(), 0);
    slab_regions_.pop_front();
  }
}

void CompileWorkload::MakeClean() {
  vm_->CacheDrop(artifact_bytes_);
  artifact_bytes_ = 0;
}

}  // namespace hyperalloc::workloads
