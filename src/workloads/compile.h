// Clang-compilation workload trace (paper §5.5).
//
// Models a parallel `make -j12` build of clang: thousands of compile jobs
// with bursty, mixed-size working sets (driving the real guest allocator)
// followed by a link phase with few large jobs; the page cache grows with
// every source read and artifact written. The shape — fluctuating anon
// memory on top of a monotonically growing page cache, peaking near the
// VM's memory limit during linking — is what makes this the paper's
// elasticity stress test (Figs. 7–9, 11).
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "src/base/rng.h"
#include "src/guest/guest_vm.h"
#include "src/sim/simulation.h"
#include "src/sim/vcpu.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::workloads {

struct CompileConfig {
  unsigned workers = 12;
  unsigned compile_units = 2200;
  unsigned link_jobs = 24;
  unsigned max_parallel_links = 2;
  uint64_t seed = 1;
  // Compile-job parameters.
  sim::Time unit_time_min = 2 * sim::kSec;
  sim::Time unit_time_max = 10 * sim::kSec;
  uint64_t unit_ws_min = 80 * kMiB;
  uint64_t unit_ws_max = 400 * kMiB;
  // Link-job parameters.
  sim::Time link_time_min = 10 * sim::kSec;
  sim::Time link_time_max = 30 * sim::kSec;
  uint64_t link_ws_min = 1 * kGiB;
  uint64_t link_ws_max = 2560ull * kMiB;
  // Page-cache growth per compile unit (sources read + artifact written).
  uint64_t cache_read_per_unit = 2 * kMiB;
  uint64_t artifact_per_unit = 3 * kMiB;
  double thp_fraction = 0.3;
  // Long-lived kernel-side (unmovable) allocations per job: slab objects,
  // dentries, inodes. These scatter across the physical memory and are
  // what fragments the buddy allocator's huge blocks over time (§4.2);
  // LLFree's per-type trees segregate them instead.
  uint64_t slab_per_job = 8 * kMiB;
  // Working-set growth increments per job.
  unsigned ws_steps = 4;
  // A slab region outlives this many later jobs before shrinkers free it;
  // every `slab_leak_every`-th region stays resident until the VM dies.
  unsigned slab_lifetime_jobs = 72;
  unsigned slab_leak_every = 16;
};

class CompileWorkload {
 public:
  CompileWorkload(guest::GuestVm* vm, MemoryPool* pool,
                  sim::VcpuSet* vcpus, const CompileConfig& config);

  void Start(std::function<void()> on_done);
  bool done() const { return done_; }
  sim::Time finish_time() const { return finish_time_; }

  // Removes the build artifacts from the page cache (`make clean`).
  void MakeClean();

  uint64_t artifact_bytes() const { return artifact_bytes_; }
  unsigned jobs_completed() const { return jobs_completed_; }

 private:
  struct Job {
    sim::Time duration;
    uint64_t working_set;
    bool is_link;
  };

  void WorkerNext(unsigned worker);
  // Jobs grow their working set in increments over their runtime, so
  // concurrent workers' frames interleave in physical memory — the
  // temporal interleaving that fragments a real guest.
  void JobStep(unsigned worker, uint64_t region, Job job, unsigned step,
               sim::Time step_time);
  void FinishJob(unsigned worker, uint64_t region, bool was_link);
  void RetireSlabs();

  guest::GuestVm* vm_;
  MemoryPool* pool_;
  sim::VcpuSet* vcpus_;  // may be null (no CPU contention modelling)
  sim::Simulation* sim_;
  CompileConfig config_;
  Rng rng_;

  std::vector<Job> queue_;  // compile units then link jobs, back = next
  std::deque<uint64_t> slab_regions_;
  unsigned slab_counter_ = 0;
  unsigned active_links_ = 0;
  unsigned active_workers_ = 0;
  unsigned jobs_completed_ = 0;
  uint64_t artifact_bytes_ = 0;
  bool done_ = false;
  sim::Time finish_time_ = 0;
  std::function<void()> on_done_;
};

}  // namespace hyperalloc::workloads
