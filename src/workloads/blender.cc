#include "src/workloads/blender.h"

#include <algorithm>

#include "src/base/check.h"

namespace hyperalloc::workloads {

BlenderWorkload::BlenderWorkload(guest::GuestVm* vm, MemoryPool* pool,
                                 const BlenderConfig& config)
    : vm_(vm), pool_(pool), sim_(vm->simulation()), config_(config),
      rng_(config.seed) {
  HA_CHECK(config.rampup_steps > 0);
}

void BlenderWorkload::Run(std::function<void()> on_done) {
  // The scene file is read once per run; on repeats it is (partially)
  // already cached, so only the delta is added.
  const uint64_t cached = vm_->cache_bytes();
  if (cached < config_.scene_bytes) {
    vm_->CacheAdd(config_.scene_bytes - cached);
  }
  churn_chunk_ = config_.working_set / config_.rampup_steps;
  RampStep(0, std::move(on_done));
}

void BlenderWorkload::RampStep(unsigned step,
                               std::function<void()> on_done) {
  if (step < config_.rampup_steps) {
    regions_.push_back(pool_->AllocRegion(churn_chunk_,
                                          config_.thp_fraction, 0));
    sim_->After(config_.rampup_step_time,
                [this, step, on_done = std::move(on_done)]() mutable {
                  RampStep(step + 1, std::move(on_done));
                });
    return;
  }
  RenderTick(sim_->now() + config_.render_time, std::move(on_done));
}

void BlenderWorkload::RenderTick(sim::Time end,
                                 std::function<void()> on_done) {
  if (sim_->now() >= end) {
    // Render finished: release the working set. Kernel residue stays.
    for (const uint64_t region : regions_) {
      pool_->FreeRegion(region, 0);
    }
    regions_.clear();
    if (on_done) {
      on_done();
    }
    return;
  }
  // Tile churn: recycle part of the working set. This randomizes the
  // allocator's free lists under full memory pressure.
  const uint64_t recycle = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(regions_.size()) *
                               config_.churn_fraction));
  for (uint64_t i = 0; i < recycle && !regions_.empty(); ++i) {
    const size_t idx = rng_.Below(regions_.size());
    pool_->FreeRegion(regions_[idx], 0);
    regions_[idx] =
        pool_->AllocRegion(churn_chunk_, config_.thp_fraction, 0);
  }
  // Kernel slab churn: single unmovable frames allocated wherever the
  // free lists currently point, most of which die again quickly. The
  // survivors strand their huge frames — unless the allocator keeps
  // unmovable memory spatially confined (LLFree's per-type trees).
  const uint64_t slab_frames = FramesForBytes(config_.slab_alloc_per_tick);
  for (uint64_t i = 0; i < slab_frames; ++i) {
    const Result<FrameId> r =
        vm_->Alloc(0, AllocType::kUnmovable, 0);
    if (r.ok()) {
      vm_->Touch(*r, 1);
      slab_young_.push_back(*r);
    }
  }
  // Most young slab objects die in random order; survivors stay forever.
  uint64_t dying = static_cast<uint64_t>(
      static_cast<double>(slab_young_.size()) *
      (1.0 - config_.slab_survival));
  while (dying-- > 0 && !slab_young_.empty()) {
    const size_t idx = rng_.Below(slab_young_.size());
    vm_->Free(slab_young_[idx], 0, 0);
    slab_young_[idx] = slab_young_.back();
    slab_young_.pop_back();
  }
  slab_young_.clear();  // survivors are permanent; stop tracking them
  sim_->After(config_.churn_interval,
              [this, end, on_done = std::move(on_done)]() mutable {
                RenderTick(end, std::move(on_done));
              });
}

}  // namespace hyperalloc::workloads
