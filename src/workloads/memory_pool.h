// Region-based memory management for workloads.
//
// Workload phases allocate "regions" (an application's working set) from
// the guest allocator, touch them, and free them later. The pool keeps a
// frame index so that virtio-mem's page migration can relocate frames
// without the workload losing track of them.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/rng.h"
#include "src/guest/guest_vm.h"

namespace hyperalloc::workloads {

class MemoryPool : public guest::MigrationListener {
 public:
  explicit MemoryPool(guest::GuestVm* vm);
  ~MemoryPool() override = default;

  // Disables the frame index (a per-allocation hash-map entry). Only
  // valid when the guest cannot migrate frames (i.e. no virtio-mem):
  // saves noticeable time in the large footprint experiments.
  void DisableMigrationTracking() { track_index_ = false; }

  // Allocates roughly `bytes` (rounded up to whole allocations), touching
  // everything. `thp_fraction` of the bytes use huge (order-9)
  // allocations — transparent huge pages; the rest are 4 KiB pages.
  // Returns a region id, or 0 if the guest ran out of memory (partial
  // allocations are rolled back... kept, region still created).
  uint64_t AllocRegion(uint64_t bytes, double thp_fraction, unsigned core,
                       AllocType type = AllocType::kMovable);

  // Extends an existing region by ~`bytes` (same allocation policy).
  void GrowRegion(uint64_t region, uint64_t bytes, double thp_fraction,
                  unsigned core);

  void FreeRegion(uint64_t region, unsigned core);
  void FreeAll(unsigned core);

  uint64_t RegionBytes(uint64_t region) const;
  uint64_t TotalBytes() const { return total_frames_ * kFrameSize; }
  size_t NumRegions() const { return regions_.size(); }

  void OnFrameMigrated(FrameId old_head, FrameId new_head,
                       unsigned order) override;

 private:
  struct Allocation {
    FrameId frame;
    unsigned order;
  };

  void GrowRegionTyped(uint64_t region, uint64_t bytes, double thp_fraction,
                       unsigned core, AllocType type);

  guest::GuestVm* vm_;
  bool track_index_ = true;
  uint64_t next_region_ = 1;
  uint64_t total_frames_ = 0;
  std::unordered_map<uint64_t, std::vector<Allocation>> regions_;
  // frame -> (region id, index into its allocation vector)
  std::unordered_map<FrameId, std::pair<uint64_t, size_t>> index_;
};

}  // namespace hyperalloc::workloads
