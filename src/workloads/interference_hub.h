// Routes protocol interference (vCPU steals, TLB-shootdown IPIs, memory
// traffic) into the resource timelines the workloads integrate over.
#pragma once

#include <memory>
#include <vector>

#include "src/hv/interference.h"
#include "src/sim/capacity_timeline.h"
#include "src/sim/vcpu.h"

namespace hyperalloc::workloads {

// Assumed aggregate machine memory bandwidth (for scaling interference
// traffic into fractional bandwidth loads). The evaluation machine
// sustains 69 GB/s for 12 STREAM threads; the node peak is higher.
inline constexpr double kMachineBandwidthBytesPerNs = 80.0;  // 80 GB/s

class InterferenceHub : public hv::InterferenceSink {
 public:
  // `bandwidths` are the per-consumer bandwidth timelines (one per
  // workload thread); may be empty for CPU-only workloads.
  // `workload_threads` models the guest scheduler: while idle vCPUs
  // exist, driver kthreads run there and do not displace the workload;
  // on a fully loaded guest, CFS gives the kthread a fair (half) share
  // of the vCPU it lands on. 0 means "all vCPUs busy".
  // `ipi_sensitivity` scales how strongly shootdown IPIs disturb the
  // workload: memory-bound code (STREAM) takes the full hit (TLB refills,
  // page-table contention), compute-bound code (FTQ) mostly pays the
  // bare interrupt handler.
  InterferenceHub(sim::VcpuSet* vcpus,
                  std::vector<sim::CapacityTimeline*> bandwidths,
                  unsigned workload_threads = 0,
                  double ipi_sensitivity = 1.0)
      : vcpus_(vcpus), bandwidths_(std::move(bandwidths)),
        workload_threads_(workload_threads),
        ipi_sensitivity_(ipi_sensitivity) {}

  void OnCpuSteal(unsigned cpu, sim::Time t0, sim::Time t1,
                  double fraction) override {
    if (vcpus_ == nullptr || t1 <= t0) {
      return;
    }
    if (workload_threads_ != 0 && workload_threads_ < vcpus_->size()) {
      return;  // the kthread was scheduled onto an idle vCPU
    }
    vcpus_->StealCpu(cpu % vcpus_->size(), t0, t1, fraction * 0.5);
  }

  void OnAllCpusSteal(sim::Time t0, sim::Time t1, double fraction) override {
    if (vcpus_ == nullptr || t1 <= t0) {
      return;
    }
    for (unsigned i = 0; i < vcpus_->size(); ++i) {
      vcpus_->StealCpu(i, t0, t1, fraction * ipi_sensitivity_);
    }
  }

  void OnBandwidth(sim::Time t0, sim::Time t1,
                   double bytes_per_ns) override {
    if (t1 <= t0) {
      return;
    }
    // Convert absolute traffic into a fractional load on each consumer's
    // own timeline.
    const double fraction = bytes_per_ns / kMachineBandwidthBytesPerNs;
    for (sim::CapacityTimeline* timeline : bandwidths_) {
      timeline->AddLoad(t0, t1, fraction * timeline->base_capacity());
    }
  }

 private:
  sim::VcpuSet* vcpus_;
  std::vector<sim::CapacityTimeline*> bandwidths_;
  unsigned workload_threads_;
  double ipi_sensitivity_;
};

}  // namespace hyperalloc::workloads
