// STREAM (McCalpin) memory-bandwidth workload model, customized like the
// paper's: only the Copy kernel, per-iteration bandwidth samples (§5.4).
//
// Each thread repeatedly copies a ~1 GiB buffer. An iteration's duration
// is obtained by integrating the thread's bandwidth timeline (reduced by
// reclamation traffic) and dividing by the thread's vCPU availability
// (reduced by driver kthreads and shootdown IPIs).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/metrics/timeseries.h"
#include "src/sim/capacity_timeline.h"
#include "src/sim/simulation.h"
#include "src/sim/vcpu.h"

namespace hyperalloc::workloads {

// Aggregate copy bandwidth of the evaluation machine by thread count
// (baseline row of Table 2, in bytes/ns = GB/s).
double StreamAggregateBandwidth(unsigned threads);

struct StreamConfig {
  unsigned threads = 12;
  unsigned vcpus = 12;
  // Bytes moved per iteration (1 GiB copied = 2 GiB of traffic).
  uint64_t bytes_per_iteration = 2 * (1ull << 30);
  unsigned iterations = 60;
};

class StreamWorkload {
 public:
  StreamWorkload(sim::Simulation* sim, const StreamConfig& config);

  sim::VcpuSet& vcpus() { return vcpus_; }
  std::vector<sim::CapacityTimeline*> bandwidth_timelines();

  // Starts all threads; `on_done` fires when the last thread finishes.
  void Start(std::function<void()> on_done);

  bool done() const { return finished_threads_ == config_.threads; }

  // Per-iteration samples: (completion time, bandwidth in GB/s), all
  // threads merged — the scatter data of Fig. 5.
  const metrics::TimeSeries& samples() const { return samples_; }

 private:
  void RunIteration(unsigned thread, unsigned iteration);
  void IterationTick(unsigned thread, unsigned iteration, sim::Time start,
                     sim::Time tick, double remaining);

  sim::Simulation* sim_;
  StreamConfig config_;
  sim::VcpuSet vcpus_;
  std::vector<std::unique_ptr<sim::CapacityTimeline>> bandwidth_;
  metrics::TimeSeries samples_;
  unsigned finished_threads_ = 0;
  std::function<void()> on_done_;
};

}  // namespace hyperalloc::workloads
