// FTQ (Fixed Time Quantum) CPU workload (CORAL benchmark suite, §5.4).
//
// Each thread counts how much work it completes in fixed wall-clock
// quanta (2^28 cycles ≈ 128 ms at 2.1 GHz). Work scales with the vCPU
// capacity left over by reclamation activity. Samples are aggregated
// across threads, as in the paper's Fig. 6.
#pragma once

#include <functional>

#include "src/metrics/timeseries.h"
#include "src/sim/simulation.h"
#include "src/sim/vcpu.h"

namespace hyperalloc::workloads {

struct FtqConfig {
  unsigned threads = 12;
  unsigned vcpus = 12;
  // 2^28 cycles at 2.1 GHz.
  sim::Time quantum = 127'800'000;
  unsigned samples = 1096;
  // Work units one fully available thread completes per quantum.
  double work_per_quantum = 2.55e6;
};

class FtqWorkload {
 public:
  FtqWorkload(sim::Simulation* sim, const FtqConfig& config);

  sim::VcpuSet& vcpus() { return vcpus_; }

  void Start(std::function<void()> on_done);

  // (time, aggregated work across threads) per quantum.
  const metrics::TimeSeries& samples() const { return samples_; }

 private:
  void Tick(unsigned sample);

  sim::Simulation* sim_;
  FtqConfig config_;
  sim::VcpuSet vcpus_;
  metrics::TimeSeries samples_;
  std::function<void()> on_done_;
};

}  // namespace hyperalloc::workloads
