#include "src/workloads/spec_prep.h"

#include <vector>

#include "src/base/rng.h"

namespace hyperalloc::workloads {

uint64_t SpecPrep(guest::GuestVm* vm, MemoryPool* pool,
                  const SpecPrepConfig& config) {
  Rng rng(config.seed);
  vm->CacheAdd(config.cache_bytes);

  // Grow to the peak in randomized chunks (mixed THP fractions), then
  // free most of it in random order so the free lists are scrambled.
  std::vector<uint64_t> regions;
  uint64_t allocated = 0;
  while (allocated < config.peak_bytes) {
    const uint64_t chunk =
        rng.Range(16 * kMiB, 256 * kMiB);
    const double thp = rng.NextDouble() * 0.6;
    regions.push_back(pool->AllocRegion(chunk, thp, 0));
    allocated += chunk;
  }
  uint64_t keep =
      static_cast<uint64_t>(static_cast<double>(regions.size()) *
                            config.residual_fraction);
  if (config.residual_fraction > 0.0 && keep == 0 && !regions.empty()) {
    keep = 1;  // a nonzero residual fraction keeps at least one region
  }
  // Free in random order.
  while (regions.size() > keep) {
    const size_t idx = rng.Below(regions.size());
    pool->FreeRegion(regions[idx], 0);
    regions[idx] = regions.back();
    regions.pop_back();
  }
  return regions.empty() ? 0 : regions[0];
}

}  // namespace hyperalloc::workloads
