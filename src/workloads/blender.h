// SPEC CPU 2017 "blender" workload trace (paper §5.5 "Repeated
// Workloads"): a render job that reads its scene into the page cache,
// builds up a large working set, and holds it for the render while
// continuously recycling tile buffers (churn). Alongside, the kernel
// accumulates long-lived unmovable state (dentries, inodes, driver
// buffers) that persists after the run — under memory pressure these
// scatter across the physical address space and strand partially used
// huge frames, which is what makes the post-run reclaim gap between
// buddy-based reporting and HyperAlloc (Fig. 10).
#pragma once

#include <functional>
#include <vector>

#include "src/base/rng.h"
#include "src/guest/guest_vm.h"
#include "src/sim/simulation.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::workloads {

struct BlenderConfig {
  uint64_t scene_bytes = 1200 * kMiB;  // read into the page cache
  uint64_t working_set = 8 * kGiB;     // render buffers
  unsigned rampup_steps = 20;          // working set built up gradually
  sim::Time rampup_step_time = 2 * sim::kSec;
  sim::Time render_time = 4 * sim::kMin;
  double thp_fraction = 0.25;
  // Tile-buffer churn during the render: every interval, this fraction
  // of the working set is freed and re-allocated.
  sim::Time churn_interval = 2 * sim::kSec;
  double churn_fraction = 0.05;
  // Kernel slab behaviour: single-frame unmovable allocations made
  // continuously during the render, of which most are freed again in
  // random order shortly after. The survivors are what fragments the
  // address space (partially used slab pages pinning their huge frames).
  uint64_t slab_alloc_per_tick = 16 * kMiB;
  double slab_survival = 0.20;
  uint64_t seed = 7;
};

class BlenderWorkload {
 public:
  BlenderWorkload(guest::GuestVm* vm, MemoryPool* pool,
                  const BlenderConfig& config);

  // One full run: load scene -> ramp up -> render (with churn) -> free
  // the working set. Kernel-resident allocations stay.
  void Run(std::function<void()> on_done);

 private:
  void RampStep(unsigned step, std::function<void()> on_done);
  void RenderTick(sim::Time end, std::function<void()> on_done);

  guest::GuestVm* vm_;
  MemoryPool* pool_;
  sim::Simulation* sim_;
  BlenderConfig config_;
  Rng rng_;
  std::vector<uint64_t> regions_;    // working set (freed per run)
  std::vector<FrameId> slab_young_;  // slab frames still subject to frees
  uint64_t churn_chunk_ = 0;
};

}  // namespace hyperalloc::workloads
