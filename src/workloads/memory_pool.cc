#include "src/workloads/memory_pool.h"

#include "src/base/check.h"

namespace hyperalloc::workloads {

MemoryPool::MemoryPool(guest::GuestVm* vm) : vm_(vm) {
  HA_CHECK(vm != nullptr);
  vm->AddMigrationListener(this);
}

uint64_t MemoryPool::AllocRegion(uint64_t bytes, double thp_fraction,
                                 unsigned core, AllocType type) {
  const uint64_t region = next_region_++;
  regions_[region];
  GrowRegionTyped(region, bytes, thp_fraction, core, type);
  return region;
}

void MemoryPool::GrowRegion(uint64_t region, uint64_t bytes,
                            double thp_fraction, unsigned core) {
  GrowRegionTyped(region, bytes, thp_fraction, core, AllocType::kMovable);
}

void MemoryPool::GrowRegionTyped(uint64_t region, uint64_t bytes,
                                 double thp_fraction, unsigned core,
                                 AllocType type) {
  std::vector<Allocation>& allocs = regions_.at(region);

  uint64_t huge_frames =
      HugesForFrames(static_cast<uint64_t>(
          static_cast<double>(FramesForBytes(bytes)) * thp_fraction)) *
      kFramesPerHuge;
  uint64_t base_frames = FramesForBytes(bytes) > huge_frames
                             ? FramesForBytes(bytes) - huge_frames
                             : 0;

  auto grab = [&](unsigned order, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) {
      Result<FrameId> r = vm_->Alloc(
          order, order == kHugeOrder ? AllocType::kHuge : type, core);
      if (!r.ok() && order == kHugeOrder) {
        // THP fallback: the kernel uses base pages when no huge frame is
        // available.
        base_frames += (count - i) * kFramesPerHuge;
        return;
      }
      if (!r.ok()) {
        return;  // OOM: keep what we got
      }
      vm_->Touch(*r, 1ull << order);
      const size_t idx = allocs.size();
      allocs.push_back({*r, order});
      if (track_index_) {
        index_[*r] = {region, idx};
      }
      total_frames_ += 1ull << order;
    }
  };

  grab(kHugeOrder, huge_frames / kFramesPerHuge);
  grab(0, base_frames);
}

void MemoryPool::FreeRegion(uint64_t region, unsigned core) {
  auto it = regions_.find(region);
  if (it == regions_.end()) {
    return;
  }
  for (const Allocation& alloc : it->second) {
    vm_->Free(alloc.frame, alloc.order, core);
    if (track_index_) {
      index_.erase(alloc.frame);
    }
    total_frames_ -= 1ull << alloc.order;
  }
  regions_.erase(it);
}

void MemoryPool::FreeAll(unsigned core) {
  std::vector<uint64_t> ids;
  ids.reserve(regions_.size());
  for (const auto& [id, allocs] : regions_) {
    ids.push_back(id);
  }
  for (const uint64_t id : ids) {
    FreeRegion(id, core);
  }
}

uint64_t MemoryPool::RegionBytes(uint64_t region) const {
  const auto it = regions_.find(region);
  if (it == regions_.end()) {
    return 0;
  }
  uint64_t frames = 0;
  for (const Allocation& alloc : it->second) {
    frames += 1ull << alloc.order;
  }
  return frames * kFrameSize;
}

void MemoryPool::OnFrameMigrated(FrameId old_head, FrameId new_head,
                                 unsigned order) {
  HA_CHECK(track_index_);  // migration requires the frame index
  const auto it = index_.find(old_head);
  if (it == index_.end()) {
    return;  // not ours (page cache or another owner)
  }
  const auto [region, idx] = it->second;
  std::vector<Allocation>& allocs = regions_.at(region);
  HA_CHECK(allocs[idx].frame == old_head);
  HA_CHECK(allocs[idx].order == order);
  allocs[idx].frame = new_head;
  index_.erase(it);
  index_[new_head] = {region, idx};
}

}  // namespace hyperalloc::workloads
