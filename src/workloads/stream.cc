#include "src/workloads/stream.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "src/base/check.h"

namespace hyperalloc::workloads {

double StreamAggregateBandwidth(unsigned threads) {
  // Piecewise-linear fit of the paper's baseline: 10.3 GB/s (1 thread),
  // 26.0 (4), 69.0 (12).
  static constexpr struct {
    unsigned threads;
    double gb_per_s;
  } kTable[] = {{1, 10.3}, {4, 26.0}, {12, 69.0}};
  if (threads <= 1) {
    return kTable[0].gb_per_s;
  }
  for (size_t i = 1; i < 3; ++i) {
    if (threads <= kTable[i].threads) {
      const double t0 = kTable[i - 1].threads;
      const double t1 = kTable[i].threads;
      const double frac = (static_cast<double>(threads) - t0) / (t1 - t0);
      return kTable[i - 1].gb_per_s +
             frac * (kTable[i].gb_per_s - kTable[i - 1].gb_per_s);
    }
  }
  return kTable[2].gb_per_s;
}

StreamWorkload::StreamWorkload(sim::Simulation* sim,
                               const StreamConfig& config)
    : sim_(sim), config_(config), vcpus_(config.vcpus) {
  HA_CHECK(config.threads >= 1 && config.threads <= config.vcpus);
  const double per_thread_bw =
      StreamAggregateBandwidth(config.threads) /
      static_cast<double>(config.threads);  // bytes per ns
  for (unsigned t = 0; t < config.threads; ++t) {
    bandwidth_.push_back(
        std::make_unique<sim::CapacityTimeline>(per_thread_bw));
  }
}

std::vector<sim::CapacityTimeline*> StreamWorkload::bandwidth_timelines() {
  std::vector<sim::CapacityTimeline*> result;
  result.reserve(bandwidth_.size());
  for (const auto& timeline : bandwidth_) {
    result.push_back(timeline.get());
  }
  return result;
}

void StreamWorkload::Start(std::function<void()> on_done) {
  on_done_ = std::move(on_done);
  for (unsigned t = 0; t < config_.threads; ++t) {
    RunIteration(t, 0);
  }
}

void StreamWorkload::RunIteration(unsigned thread, unsigned iteration) {
  if (iteration >= config_.iterations) {
    if (++finished_threads_ == config_.threads && on_done_) {
      on_done_();
    }
    return;
  }
  // Progress in small ticks, integrating *retrospectively* over each
  // elapsed window: reclamation activity reports its interference for the
  // slice it just executed, so looking backwards (like a real benchmark
  // experiencing the slowdown) observes it, while a forward-computed
  // duration would miss loads that have not been posted yet.
  const sim::Time start = sim_->now();
  const double base_bw = bandwidth_[thread]->base_capacity();
  const sim::Time tick = std::max<sim::Time>(
      static_cast<sim::Time>(static_cast<double>(
          config_.bytes_per_iteration) / base_bw) /
          32,
      sim::kMs);
  sim_->After(tick, [this, thread, iteration, start, tick] {
    IterationTick(thread, iteration, start, tick,
                  static_cast<double>(config_.bytes_per_iteration));
  });
}

void StreamWorkload::IterationTick(unsigned thread, unsigned iteration,
                                   sim::Time start, sim::Time tick,
                                   double remaining) {
  const sim::Time t1 = sim_->now();
  const sim::Time t0 = t1 - tick;
  // Bytes moved this tick: the bandwidth left over by reclamation
  // traffic, scaled by the vCPU time left over by driver kthreads.
  const double bw_avg =
      bandwidth_[thread]->Integrate(t0, t1) / static_cast<double>(tick);
  const double cpu_avail =
      vcpus_.cpu(thread % vcpus_.size()).Integrate(t0, t1) /
      static_cast<double>(tick);
  remaining -= bw_avg * cpu_avail * static_cast<double>(tick);
  if (remaining <= 0.0) {
    const sim::Time duration = std::max<sim::Time>(t1 - start, 1);
    samples_.Sample(t1, static_cast<double>(config_.bytes_per_iteration) /
                            static_cast<double>(duration));
    bandwidth_[thread]->TrimBefore(t1 > sim::kSec ? t1 - sim::kSec : 0);
    vcpus_.cpu(thread % vcpus_.size())
        .TrimBefore(t1 > sim::kSec ? t1 - sim::kSec : 0);
    RunIteration(thread, iteration + 1);
    return;
  }
  sim_->After(tick, [this, thread, iteration, start, tick, remaining] {
    IterationTick(thread, iteration, start, tick, remaining);
  });
}

}  // namespace hyperalloc::workloads
