// SPECrate-style preparation churn (paper §5.4 "Experiment Procedure"):
// before the STREAM/FTQ runs, memory-intensive benchmark instances grow
// the VM to its maximum size and randomize the allocator state. We model
// this with a randomized allocate/touch/free churn plus page-cache fill.
#pragma once

#include <cstdint>

#include "src/guest/guest_vm.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::workloads {

struct SpecPrepConfig {
  // Peak anonymous memory the preparation grows to.
  uint64_t peak_bytes;
  // Page cache left behind by the benchmark binaries / inputs.
  uint64_t cache_bytes;
  // Fraction of the peak that remains allocated afterwards (randomly
  // scattered — the "randomized allocator state").
  double residual_fraction = 0.05;
  uint64_t seed = 42;
};

// Runs the preparation synchronously (advancing virtual time only through
// touch/fault costs). Returns the id of the residual region (0 if none),
// which the caller may keep or free.
uint64_t SpecPrep(guest::GuestVm* vm, MemoryPool* pool,
                  const SpecPrepConfig& config);

}  // namespace hyperalloc::workloads
