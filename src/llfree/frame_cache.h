// Per-thread frame caches layered over LLFree's tree reservations
// (DESIGN.md §4.10). The same idiom as Linux's per-CPU page lists: each
// slot holds a small stack of order-0 movable frames so the common
// alloc/free pair touches no shared cache line at all. The cache refills
// and drains in batches via LLFree::GetBatch/PutBatch, so even the
// misses are amortized word-at-a-time claims instead of full Get
// transactions.
//
// Discipline: exactly one thread may use a given slot at a time (the
// same rule as LLFree's per-core reservation slots). The stacks are
// non-atomic under that rule, declared Shared<...> (src/base/shared.h)
// so model-check builds verify the discipline: two model threads
// touching one slot without a happens-before edge fail the scenario
// with both access sites. Cross-slot introspection (CachedFrames) and
// Drain are quiescent-use only.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/atomic.h"
#include "src/base/shared.h"
#include "src/base/result.h"
#include "src/base/types.h"
#include "src/llfree/llfree.h"

namespace hyperalloc::llfree {

class FrameCache {
 public:
  struct CacheConfig {
    // Number of cache slots (one per core/thread).
    unsigned slots = 1;
    // Maximum frames parked per slot; a Put that would exceed it drains
    // `refill` frames back in one PutBatch.
    unsigned capacity = 64;
    // Frames pulled per GetBatch refill (and pushed per overflow drain).
    unsigned refill = 32;
  };

  FrameCache(LLFree* alloc, const CacheConfig& config);

  // Order-0 movable allocations are served from the slot's stack,
  // refilling in batches when empty; everything else passes through to
  // the allocator. The refill (GetBatch) itself exercises the
  // single-Get pressure fallback for its tail, so a refill that claims
  // zero frames means the allocator is genuinely dry (kNoMemory).
  Result<FrameId> Get(unsigned core, unsigned order, AllocType type);

  // Order-0 *movable* frees park in the slot's stack (draining overflow
  // in batches); higher orders and non-movable frees pass through, so
  // frames keep the movability grouping LLFree's slot selection gave
  // them (mirroring the Get-side pass-through). Callers must not free a
  // frame twice: a duplicate parked in the stack is only detected when
  // the allocator refuses it at drain time, in which case the refused
  // frames are dropped (counted in lost_frames()) and the Put that
  // triggered the drain returns kInvalid.
  std::optional<AllocError> Put(unsigned core, FrameId frame, unsigned order,
                                AllocType type);

  // Returns every cached frame to the allocator (quiesce / cache-purge
  // reaction, §3.3). Quiescent-use only. Returns the number of frames
  // the allocator refused (0 unless a caller double-freed into the
  // cache); refused frames are dropped and counted in lost_frames().
  uint64_t Drain();

  // Frames currently parked across all slots. Quiescent-use only.
  uint64_t CachedFrames() const;

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t refills() const { return refills_.load(std::memory_order_relaxed); }
  uint64_t drains() const { return drains_.load(std::memory_order_relaxed); }
  // Frames the allocator refused at drain time (double frees fed to
  // Put). Nonzero means a caller broke the no-double-free discipline.
  uint64_t lost_frames() const {
    return lost_.load(std::memory_order_relaxed);
  }

  const CacheConfig& cache_config() const { return config_; }

 private:
  struct alignas(64) Slot {
    Shared<std::vector<FrameId>> frames;
  };

  LLFree* alloc_;
  CacheConfig config_;
  std::unique_ptr<Slot[]> slots_;
  Atomic<uint64_t> hits_{0};
  Atomic<uint64_t> refills_{0};
  Atomic<uint64_t> drains_{0};
  Atomic<uint64_t> lost_{0};
};

}  // namespace hyperalloc::llfree
