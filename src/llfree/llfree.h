// LLFree — a lock-free, pointer-free page-frame allocator (Wrenger et al.,
// USENIX ATC '23), extended with HyperAlloc's bilateral operations
// (paper §3–4): evicted hints, per-type tree reservations, and host-side
// reclaim / return / install transitions.
//
// The allocator state (bit field, area index, tree index) lives in a
// SharedState object that contains only densely packed atomic arrays —
// no pointers — so that a hypervisor view (a second LLFree object over the
// same SharedState) can locate and modify any entry via offset arithmetic,
// exactly as the QEMU monitor maps the guest's allocator state in the
// paper ("Locating the Allocator State", §4.2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/base/atomic.h"
#include "src/base/result.h"
#include "src/base/shared.h"
#include "src/base/types.h"
#include "src/llfree/bitfield.h"
#include "src/llfree/entries.h"

namespace hyperalloc::llfree {

struct Config {
  enum class ReservationMode {
    kPerCore,  // original LLFree: one reserved tree per core
    kPerType,  // HyperAlloc variant (§4.2): one global reservation per
               // allocation type (unmovable / movable / huge)
  };

  ReservationMode mode = ReservationMode::kPerType;
  // Number of reservation slots in per-core mode.
  unsigned cores = 1;
  // Areas per tree: 8 (16 MiB) for the HyperAlloc variant, 32 (64 MiB)
  // for the original LLFree.
  unsigned areas_per_tree = 8;
  // HyperAlloc allocation policy: prefer frames that are still backed by
  // host memory over evicted ones.
  bool prefer_non_evicted = true;

  unsigned NumSlots() const {
    return mode == ReservationMode::kPerCore ? cores : kNumAllocTypes;
  }
};

// The shareable allocator state. In the real system this is guest memory
// communicated to QEMU via virtio at boot; here it is a heap object that
// both the guest-side and the monitor-side LLFree views reference.
class SharedState {
 public:
  // `frames` must be a multiple of 512 (whole huge frames).
  SharedState(uint64_t frames, const Config& config);

  SharedState(const SharedState&) = delete;
  SharedState& operator=(const SharedState&) = delete;

  uint64_t frames() const { return frames_; }
  uint64_t num_areas() const { return num_areas_; }
  uint64_t num_trees() const { return num_trees_; }
  const Config& config() const { return config_.read(); }

  // Raw state arrays. The auto-reclamation scan (src/core) reads the area
  // array directly to count touched cache lines (paper §3.3); the
  // invariant oracle (src/check) uses the const views.
  Atomic<uint16_t>* areas() { return areas_.get(); }
  Atomic<uint32_t>* trees() { return trees_.get(); }
  Atomic<uint64_t>* bitfield() { return bitfield_.get(); }
  Atomic<uint64_t>* reservations() { return reservations_.get(); }
  const Atomic<uint16_t>* areas() const { return areas_.get(); }
  const Atomic<uint32_t>* trees() const { return trees_.get(); }
  const Atomic<uint64_t>* bitfield() const { return bitfield_.get(); }
  const Atomic<uint64_t>* reservations() const { return reservations_.get(); }
  // Per-slot tree search hints. Values may legitimately exceed num_trees()
  // when a view over a *larger* previous state wrote them (tree-count
  // shrink); every reader clamps with % num_trees() and every store
  // re-clamps, so stale hints only bias the search start.
  Atomic<uint64_t>* tree_hints() { return tree_hints_.get(); }

  // Size in bytes of the hypervisor-shared portion (bit field + indexes),
  // for the scan-cost analysis.
  uint64_t SharedBytes() const;

 private:
  friend class LLFree;

  uint64_t frames_;
  uint64_t num_areas_;
  uint64_t num_trees_;
  // Written once at construction, read by every view from every thread:
  // the immutable-after-publication discipline the model checker
  // verifies (setup writes happen-before all model threads).
  Shared<Config> config_;

  std::unique_ptr<Atomic<uint64_t>[]> bitfield_;
  std::unique_ptr<Atomic<uint16_t>[]> areas_;
  std::unique_ptr<Atomic<uint32_t>[]> trees_;
  std::unique_ptr<Atomic<uint64_t>[]> reservations_;
  // Per-slot search hints (not part of the shared protocol state).
  std::unique_ptr<Atomic<uint64_t>[]> tree_hints_;
};

// A view over a SharedState. Guest and monitor each construct their own
// LLFree over the same state; all operations are lock-free atomic
// transactions on the shared arrays.
class LLFree {
 public:
  // Invoked when the guest allocates frames inside an evicted huge frame.
  // The handler must make the frame host-backed and is expected to clear
  // the evicted hint (monitor install path, §3.2 "Return and Install").
  // The allocation blocks until the handler returns (DMA safety).
  using InstallHandler = std::function<void(HugeId)>;

  explicit LLFree(SharedState* state);

  LLFree(const LLFree&) = delete;
  LLFree& operator=(const LLFree&) = delete;

  const SharedState& state() const { return *state_; }
  const Config& config() const { return state_->config(); }
  uint64_t frames() const { return state_->frames(); }
  uint64_t num_areas() const { return state_->num_areas(); }
  uint64_t num_trees() const { return state_->num_trees(); }

  void SetInstallHandler(InstallHandler handler) {
    install_handler_.write() = std::move(handler);
  }

  // ------------------------------------------------------------------
  // Guest-side API
  // ------------------------------------------------------------------

  // Allocates 2^order naturally aligned base frames. Supported orders:
  // 0..6 (single bit-field word), 7..8 (whole-word runs), and 9 (huge
  // frame via the area entry's allocated flag). Returns the first frame
  // of the run.
  Result<FrameId> Get(unsigned core, unsigned order, AllocType type);

  // Frees a previous allocation. Returns kInvalid on double free or
  // out-of-range frames.
  std::optional<AllocError> Put(FrameId frame, unsigned order);

  // Batched allocation (DESIGN.md §4.10): claims up to `count` runs of
  // 2^order frames for `core`, appending the first frame of each run to
  // `out`. For orders 0..6 the claim runs word-at-a-time inside the
  // slot's reserved tree — one CAS on the reservation takes the whole
  // batch's worth of frames and one CAS per bit-field word claims every
  // run that word holds — so a 64-frame order-0 batch costs a handful of
  // atomics instead of 64 full Get transactions. Order 9 has its own
  // native batch (§4.14): one reservation CAS covers several huge frames
  // and each tree visit claims every free area it holds. The remaining
  // multi-word orders (7..8) fall back to a Get loop. Returns the number
  // of runs claimed; fewer than `count` means the allocator ran dry (the
  // pressure fallback is still exercised for the tail, so a batch is
  // exactly equivalent to `count` single Gets).
  unsigned GetBatch(unsigned core, unsigned order, unsigned count,
                    AllocType type, std::vector<FrameId>* out);

  // Batched free of uniform-order runs: frames sharing a bit-field word
  // are cleared with a single CAS and credited to the area and tree
  // counters once per group. Invalid or double-freed entries are skipped
  // (the rest of the batch still frees; a group whose one-CAS clear
  // fails falls back to per-run Put to isolate the bad entry). Returns
  // the number of runs actually freed.
  unsigned PutBatch(std::span<const FrameId> frames, unsigned order);

  // Returns reserved (cached) frames to the global tree counters —
  // the guest's reaction to the hypervisor's "cache purge" request when
  // shrinking the hard limit (§3.3).
  void DrainReservations();

  // Compaction isolation (DESIGN.md §4.14): claims every currently free
  // base frame of one area into the caller's ownership, appending each
  // frame to `out`. Debits the tree counter (raiding reservations parked
  // over the tree, like hard reclaim) BEFORE touching the area, so a
  // concurrent guest allocation can never be promised these frames.
  // The claimed frames are never written by the caller (they are the
  // holes the straggler migration fills around), so no install triggers.
  // Returns the number of frames claimed; with no concurrent mutators a
  // single call empties the area's free space.
  unsigned ClaimFreeInArea(HugeId area, std::vector<FrameId>* out);

  // Fragmentation score (§4.14): the fraction of free memory NOT
  // recoverable as whole huge frames, in [0, 1]. 0 = every free frame
  // sits in a fully free area (perfectly defragmented); 1 = free memory
  // exists but no area is whole. The compaction daemon triggers on this.
  double FragmentationScore() const;

  // ------------------------------------------------------------------
  // Bilateral (hypervisor-side) API — §3.2 state transitions
  // ------------------------------------------------------------------

  // Finds the next fully free, non-evicted huge frame at or after
  // `start_hint` (wrapping) and atomically transitions it:
  //   hard:  (A<-1, E<-1)  frame removed from the guest's usable memory
  //   soft:  (A=0,  E<-1)  frame stays allocatable but needs install
  // Skips areas whose tree is currently reserved by the guest, unless
  // `allow_reserved`. Returns the reclaimed huge frame.
  std::optional<HugeId> ReclaimHuge(HugeId start_hint, bool hard,
                                    bool allow_reserved = false);

  // Targeted variants for the monitor's own scan loops. Both require the
  // area to currently be a free, non-evicted huge frame; they return
  // false (changing nothing) otherwise.
  bool TrySoftReclaim(HugeId huge);
  bool TryHardReclaim(HugeId huge, bool allow_reserved = false);

  // Hard-reclaimed -> soft-reclaimed (host "return" operation): clears A,
  // keeps E, and re-credits the tree counter.
  bool MarkReturned(HugeId huge);

  // Clears the evicted hint after the host installed backing memory.
  bool ClearEvicted(HugeId huge);

  // Sets the evicted hint (soft reclaim of an already-free frame whose
  // area entry the caller has already validated; also used in tests).
  bool SetEvicted(HugeId huge);

  // ------------------------------------------------------------------
  // Hotness hints (§6) — guest-side access marking and host-side aging
  // ------------------------------------------------------------------

  // Guest: marks the huge frame as recently accessed (H <- max).
  void MarkHot(HugeId huge);
  // Host: decays one hotness level (a periodic aging pass). Returns the
  // hotness *before* aging.
  uint8_t AgeHotness(HugeId huge);
  uint8_t HotnessOf(HugeId huge) const { return ReadArea(huge).hotness; }

  // ------------------------------------------------------------------
  // Introspection
  // ------------------------------------------------------------------

  AreaEntry ReadArea(HugeId huge) const;
  TreeEntry ReadTree(uint64_t tree) const;
  Reservation ReadReservation(unsigned slot) const;

  // Exact counts (iterate the area index).
  uint64_t FreeFrames() const;
  uint64_t AllocatedFrames() const { return frames() - FreeFrames(); }
  // Fully free huge frames; `include_evicted` selects whether evicted
  // (soft-reclaimed) ones count.
  uint64_t FreeHugeFrames(bool include_evicted = true) const;
  // Areas that are (partially) used — the "huge" curve of Fig. 8.
  uint64_t UsedHugeAreas() const;
  uint64_t EvictedAreas() const;

  // Frames per tree (the last tree may be shorter).
  uint64_t TreeCapacity(uint64_t tree) const;

  // Validates cross-level counter/bit-field consistency. Only meaningful
  // at quiescence (no concurrent operations). Returns false and prints
  // the first violation to stderr if inconsistent.
  bool Validate() const;

  // Crash recovery (LLFree is designed to be optionally persistent): the
  // bit field and the huge-allocated flags are the authoritative state;
  // free counters and tree entries are caches that this rebuilds after a
  // crash or corruption. Reservations are cleared, reserved flags
  // dropped, evicted hints and tree types preserved. Returns the number
  // of repaired index entries. Quiescent use only.
  uint64_t Recover();

 private:
  static constexpr unsigned kMaxReserveAttempts = 16;

  unsigned SlotFor(unsigned core, AllocType type) const;
  AreaBits BitsOf(uint64_t area) const;
  uint64_t TreeOf(uint64_t area) const {
    return area / config().areas_per_tree;
  }
  uint64_t FirstAreaOf(uint64_t tree) const {
    return tree * config().areas_per_tree;
  }
  uint64_t AreasInTree(uint64_t tree) const;

  // Attempts to take `need` frames from the slot's local counter,
  // re-stealing from the reserved tree's global counter when the local
  // counter runs dry. Returns the reserved tree index on success.
  std::optional<uint64_t> TakeFromReservation(unsigned slot, unsigned need);

  // Batch variant: takes between 1 and `max_runs` runs of `run` frames
  // (as many as the local counter covers), writing the count taken to
  // `*taken_runs`. Same dry-counter resync as TakeFromReservation.
  std::optional<uint64_t> TakeUpToFromReservation(unsigned slot, unsigned run,
                                                  unsigned max_runs,
                                                  unsigned* taken_runs);

  // Returns `need` frames: to the slot's reservation if it still points
  // at `tree`, otherwise to the tree's global counter.
  void GiveBack(unsigned slot, uint64_t tree, unsigned need);

  // Reserves a new tree for `slot` (preference order per §4.1/§4.2) and
  // moves its free counter into the local reservation, pre-charging
  // `need` frames. `avoid` is a tree to skip (just searched, failed).
  bool ReserveNewTree(unsigned slot, AllocType type, unsigned need,
                      std::optional<uint64_t> avoid);

  // Claims 2^order frames inside `tree`. Two internal passes: non-evicted
  // areas first (if configured), then evicted ones (triggering install).
  std::optional<FrameId> SearchTree(uint64_t tree, unsigned order);

  // Batch variant: claims up to `count` runs across the tree's areas
  // (same two evicted-preference passes). Returns the number claimed.
  unsigned SearchTreeBatch(uint64_t tree, unsigned order, unsigned count,
                           std::vector<FrameId>* out);

  // Native order-9 batch behind GetBatch (§4.14).
  unsigned GetBatchHuge(unsigned core, unsigned count, AllocType type,
                        std::vector<FrameId>* out);

  // Claims one huge frame inside `tree` (area allocated flag).
  std::optional<FrameId> SearchTreeHuge(uint64_t tree);

  // Batch variant (§4.14): claims up to `count` free huge frames across
  // the tree's areas (same two evicted-preference passes — installed
  // frames first, the LLFREE_PREFER_INSTALLED policy). Returns the
  // number claimed.
  unsigned SearchTreeHugeBatch(uint64_t tree, unsigned count,
                               std::vector<FrameId>* out);

  // Pressure fallback: steals directly from tree counters, ignoring the
  // reserved flag, when no tree can be reserved for the slot.
  Result<FrameId> GetFallback(unsigned order, bool huge);

  // Area-level claim helpers; return true on success.
  bool ClaimBase(uint64_t area, unsigned order, FrameId* out);
  bool ClaimHuge(uint64_t area);

  // Batch variant: one counter transaction reserves up to `count` runs in
  // the area, one word-at-a-time bit-field pass claims them; a shortfall
  // is rolled back to the counter. Install triggers once per area, not
  // per frame (fault sites at batch granularity). Returns runs claimed.
  unsigned ClaimBaseBatch(uint64_t area, unsigned order, unsigned count,
                          std::vector<FrameId>* out);

  void TriggerInstall(HugeId huge);

  SharedState* state_;
  // Set at wiring time (before concurrent use), invoked from allocation
  // paths on any thread; Shared<> makes the checker flag a handler swap
  // that races an allocation.
  Shared<InstallHandler> install_handler_;
};

}  // namespace hyperalloc::llfree
