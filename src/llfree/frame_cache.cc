#include "src/llfree/frame_cache.h"

#include <algorithm>

#include "src/base/check.h"

namespace hyperalloc::llfree {

FrameCache::FrameCache(LLFree* alloc, const CacheConfig& config)
    : alloc_(alloc), config_(config) {
  HA_CHECK(alloc != nullptr);
  HA_CHECK(config.slots > 0);
  HA_CHECK(config.refill > 0);
  HA_CHECK(config.refill <= config.capacity);
  slots_ = std::make_unique<Slot[]>(config.slots);
  for (unsigned s = 0; s < config.slots; ++s) {
    slots_[s].frames.write().reserve(config.capacity + 1);
  }
}

Result<FrameId> FrameCache::Get(unsigned core, unsigned order,
                                AllocType type) {
  if (order != 0 || type != AllocType::kMovable) {
    return alloc_->Get(core, order, type);
  }
  // A Get both pops and refills the stack, so the whole access is a
  // write under the one-thread-per-slot discipline.
  std::vector<FrameId>& frames = slots_[core % config_.slots].frames.write();
  if (!frames.empty()) {
    const FrameId frame = frames.back();
    frames.pop_back();
    hits_.fetch_add(1, std::memory_order_relaxed);
    return frame;
  }
  // Miss: refill a batch, serve from it. GetBatch already falls back to
  // single Gets under pressure, so a partial refill is still correct —
  // and zero claimed means the allocator is genuinely dry.
  const unsigned got =
      alloc_->GetBatch(core, 0, config_.refill, type, &frames);
  if (got == 0) {
    return AllocError::kNoMemory;
  }
  refills_.fetch_add(1, std::memory_order_relaxed);
  const FrameId frame = frames.back();
  frames.pop_back();
  return frame;
}

std::optional<AllocError> FrameCache::Put(unsigned core, FrameId frame,
                                          unsigned order, AllocType type) {
  if (order != 0 || type != AllocType::kMovable) {
    // Non-movable frees bypass the cache so the frame returns through
    // LLFree's type-aware slot selection instead of being recycled into
    // a movable allocation (which would mix movability within areas).
    return alloc_->Put(frame, order);
  }
  if (frame >= alloc_->frames()) {
    return AllocError::kInvalid;
  }
  std::vector<FrameId>& frames = slots_[core % config_.slots].frames.write();
  HA_DCHECK(std::find(frames.begin(), frames.end(), frame) ==
            frames.end());  // double free into the same slot
  frames.push_back(frame);
  if (frames.size() > config_.capacity) {
    // Drain one batch from the cold end (the hot end keeps recency).
    const std::span<const FrameId> batch(frames.data(), config_.refill);
    const unsigned freed = alloc_->PutBatch(batch, 0);
    frames.erase(frames.begin(), frames.begin() + config_.refill);
    drains_.fetch_add(1, std::memory_order_relaxed);
    if (freed != config_.refill) {
      // The allocator refused part of the batch: some earlier Put fed
      // the cache a frame it did not own (double free). Surface the
      // error here, at the drain that detected it — the refused frames
      // are already owned by someone else, so dropping them is the only
      // state that cannot hand one frame to two callers.
      lost_.fetch_add(config_.refill - freed, std::memory_order_relaxed);
      return AllocError::kInvalid;
    }
  }
  return std::nullopt;
}

uint64_t FrameCache::Drain() {
  uint64_t refused = 0;
  for (unsigned s = 0; s < config_.slots; ++s) {
    std::vector<FrameId>& frames = slots_[s].frames.write();
    if (frames.empty()) {
      continue;
    }
    const unsigned freed = alloc_->PutBatch(frames, 0);
    refused += frames.size() - freed;
    frames.clear();
    drains_.fetch_add(1, std::memory_order_relaxed);
  }
  if (refused > 0) {
    lost_.fetch_add(refused, std::memory_order_relaxed);
  }
  return refused;
}

uint64_t FrameCache::CachedFrames() const {
  uint64_t total = 0;
  for (unsigned s = 0; s < config_.slots; ++s) {
    total += slots_[s].frames.read().size();
  }
  return total;
}

}  // namespace hyperalloc::llfree
