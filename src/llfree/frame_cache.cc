#include "src/llfree/frame_cache.h"

#include "src/base/check.h"

namespace hyperalloc::llfree {

FrameCache::FrameCache(LLFree* alloc, const CacheConfig& config)
    : alloc_(alloc), config_(config) {
  HA_CHECK(alloc != nullptr);
  HA_CHECK(config.slots > 0);
  HA_CHECK(config.refill > 0);
  HA_CHECK(config.refill <= config.capacity);
  slots_ = std::make_unique<Slot[]>(config.slots);
  for (unsigned s = 0; s < config.slots; ++s) {
    slots_[s].frames.reserve(config.capacity + 1);
  }
}

Result<FrameId> FrameCache::Get(unsigned core, unsigned order,
                                AllocType type) {
  if (order != 0 || type != AllocType::kMovable) {
    return alloc_->Get(core, order, type);
  }
  Slot& slot = slots_[core % config_.slots];
  if (!slot.frames.empty()) {
    const FrameId frame = slot.frames.back();
    slot.frames.pop_back();
    hits_.fetch_add(1, std::memory_order_relaxed);
    return frame;
  }
  // Miss: refill a batch, serve from it. GetBatch already falls back to
  // single Gets under pressure, so a partial refill is still correct —
  // and zero claimed means the allocator is genuinely dry.
  const unsigned got =
      alloc_->GetBatch(core, 0, config_.refill, type, &slot.frames);
  if (got == 0) {
    return AllocError::kNoMemory;
  }
  refills_.fetch_add(1, std::memory_order_relaxed);
  const FrameId frame = slot.frames.back();
  slot.frames.pop_back();
  return frame;
}

std::optional<AllocError> FrameCache::Put(unsigned core, FrameId frame,
                                          unsigned order) {
  if (order != 0) {
    return alloc_->Put(frame, order);
  }
  if (frame >= alloc_->frames()) {
    return AllocError::kInvalid;
  }
  Slot& slot = slots_[core % config_.slots];
  slot.frames.push_back(frame);
  if (slot.frames.size() > config_.capacity) {
    // Drain one batch from the cold end (the hot end keeps recency).
    const std::span<const FrameId> batch(slot.frames.data(), config_.refill);
    const unsigned freed = alloc_->PutBatch(batch, 0);
    HA_CHECK(freed == config_.refill);  // cache holds only owned frames
    slot.frames.erase(slot.frames.begin(),
                      slot.frames.begin() + config_.refill);
    drains_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::nullopt;
}

void FrameCache::Drain() {
  for (unsigned s = 0; s < config_.slots; ++s) {
    Slot& slot = slots_[s];
    if (slot.frames.empty()) {
      continue;
    }
    const unsigned freed = alloc_->PutBatch(slot.frames, 0);
    HA_CHECK(freed == slot.frames.size());
    slot.frames.clear();
    drains_.fetch_add(1, std::memory_order_relaxed);
  }
}

uint64_t FrameCache::CachedFrames() const {
  uint64_t total = 0;
  for (unsigned s = 0; s < config_.slots; ++s) {
    total += slots_[s].frames.size();
  }
  return total;
}

}  // namespace hyperalloc::llfree
