#include "src/llfree/llfree.h"

#include <algorithm>
#include <cstdio>

#include "src/base/check.h"
#include "src/trace/trace.h"

namespace hyperalloc::llfree {

namespace {

constexpr uint64_t kWordsPerArea64 = kFramesPerHuge / 64;

}  // namespace

SharedState::SharedState(uint64_t frames, const Config& config)
    : frames_(frames), config_(config) {
  HA_CHECK(frames > 0);
  HA_CHECK(frames % kFramesPerHuge == 0);
  HA_CHECK(config.areas_per_tree > 0);
  HA_CHECK(config.NumSlots() > 0);

  num_areas_ = frames / kFramesPerHuge;
  num_trees_ = (num_areas_ + config.areas_per_tree - 1) / config.areas_per_tree;

  const uint64_t bitfield_words = frames / 64;
  bitfield_ = std::make_unique<Atomic<uint64_t>[]>(bitfield_words);
  for (uint64_t i = 0; i < bitfield_words; ++i) {
    bitfield_[i].store(0, std::memory_order_relaxed);
  }

  areas_ = std::make_unique<Atomic<uint16_t>[]>(num_areas_);
  AreaEntry fresh_area;
  fresh_area.free = kFramesPerHuge;
  for (uint64_t i = 0; i < num_areas_; ++i) {
    areas_[i].store(fresh_area.Pack(), std::memory_order_relaxed);
  }

  trees_ = std::make_unique<Atomic<uint32_t>[]>(num_trees_);
  for (uint64_t t = 0; t < num_trees_; ++t) {
    const uint64_t first = t * config.areas_per_tree;
    const uint64_t count = std::min<uint64_t>(config.areas_per_tree,
                                              num_areas_ - first);
    TreeEntry entry;
    entry.free = static_cast<uint32_t>(count * kFramesPerHuge);
    entry.type = AllocType::kMovable;
    trees_[t].store(entry.Pack(), std::memory_order_relaxed);
  }

  const unsigned slots = config.NumSlots();
  reservations_ = std::make_unique<Atomic<uint64_t>[]>(slots);
  tree_hints_ = std::make_unique<Atomic<uint64_t>[]>(slots);
  for (unsigned s = 0; s < slots; ++s) {
    reservations_[s].store(Reservation{}.Pack(), std::memory_order_relaxed);
    // Spread initial search positions so slots start in different trees.
    tree_hints_[s].store((num_trees_ * s) / slots, std::memory_order_relaxed);
  }
}

uint64_t SharedState::SharedBytes() const {
  return frames_ / 8                      // bit field
         + num_areas_ * sizeof(uint16_t)  // area index
         + num_trees_ * sizeof(uint32_t); // tree index
}

LLFree::LLFree(SharedState* state) : state_(state) { HA_CHECK(state != nullptr); }

unsigned LLFree::SlotFor(unsigned core, AllocType type) const {
  if (config().mode == Config::ReservationMode::kPerCore) {
    return core % config().cores;
  }
  return static_cast<unsigned>(type);
}

AreaBits LLFree::BitsOf(uint64_t area) const {
  return AreaBits(state_->bitfield_.get() + area * kWordsPerArea64);
}

uint64_t LLFree::AreasInTree(uint64_t tree) const {
  const uint64_t first = FirstAreaOf(tree);
  HA_DCHECK(first < num_areas());
  return std::min<uint64_t>(config().areas_per_tree, num_areas() - first);
}

uint64_t LLFree::TreeCapacity(uint64_t tree) const {
  return AreasInTree(tree) * kFramesPerHuge;
}

// ----------------------------------------------------------------------
// Reservation management
// ----------------------------------------------------------------------

std::optional<uint64_t> LLFree::TakeFromReservation(unsigned slot,
                                                    unsigned need) {
  Atomic<uint64_t>& slot_atom = state_->reservations_[slot];
  for (;;) {
    uint64_t raw = slot_atom.load(std::memory_order_acquire);
    const Reservation r = Reservation::Unpack(raw);
    if (!r.active) {
      return std::nullopt;
    }
    if (r.free >= need) {
      Reservation next = r;
      next.free = static_cast<uint16_t>(r.free - need);
      uint64_t expected = raw;
      if (slot_atom.compare_exchange_weak(expected, next.Pack(),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        return r.tree;
      }
      continue;  // raced; retry
    }
    // Local counter dry: re-steal whatever the reserved tree accumulated
    // from frees since we reserved it ("put-reserve" resync).
    uint32_t stolen = 0;
    AtomicUpdate(state_->trees_[r.tree], [&](uint32_t tree_raw)
                     -> std::optional<uint32_t> {
      TreeEntry entry = TreeEntry::Unpack(tree_raw);
      if (entry.free == 0) {
        return std::nullopt;
      }
      stolen = entry.free;
      entry.free = 0;
      return entry.Pack();
    });
    if (stolen == 0) {
      return std::nullopt;  // genuinely dry; caller reserves a new tree
    }
    Reservation next = r;
    next.free = static_cast<uint16_t>(r.free + stolen);
    uint64_t expected = raw;
    if (!slot_atom.compare_exchange_strong(expected, next.Pack(),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      // Reservation changed under us: return the stolen frames to the
      // tree's global counter and start over.
      AtomicUpdate(state_->trees_[r.tree],
                   [&](uint32_t tree_raw) -> std::optional<uint32_t> {
                     TreeEntry entry = TreeEntry::Unpack(tree_raw);
                     entry.free += stolen;
                     return entry.Pack();
                   });
    }
  }
}

std::optional<uint64_t> LLFree::TakeUpToFromReservation(unsigned slot,
                                                        unsigned run,
                                                        unsigned max_runs,
                                                        unsigned* taken_runs) {
  Atomic<uint64_t>& slot_atom = state_->reservations_[slot];
  for (;;) {
    uint64_t raw = slot_atom.load(std::memory_order_acquire);
    const Reservation r = Reservation::Unpack(raw);
    if (!r.active) {
      return std::nullopt;
    }
    const unsigned avail_runs = r.free / run;
    if (avail_runs > 0) {
      const unsigned take = std::min(avail_runs, max_runs);
      Reservation next = r;
      next.free = static_cast<uint16_t>(r.free - take * run);
      uint64_t expected = raw;
      if (slot_atom.compare_exchange_weak(expected, next.Pack(),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        *taken_runs = take;
        return r.tree;
      }
      continue;  // raced; retry
    }
    // Local counter dry: re-steal whatever the reserved tree accumulated
    // from frees since we reserved it (same resync as the single path).
    uint32_t stolen = 0;
    AtomicUpdate(state_->trees_[r.tree], [&](uint32_t tree_raw)
                     -> std::optional<uint32_t> {
      TreeEntry entry = TreeEntry::Unpack(tree_raw);
      if (entry.free == 0) {
        return std::nullopt;
      }
      stolen = entry.free;
      entry.free = 0;
      return entry.Pack();
    });
    if (stolen == 0) {
      return std::nullopt;  // genuinely dry; caller reserves a new tree
    }
    Reservation next = r;
    next.free = static_cast<uint16_t>(r.free + stolen);
    uint64_t expected = raw;
    if (!slot_atom.compare_exchange_strong(expected, next.Pack(),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      AtomicUpdate(state_->trees_[r.tree],
                   [&](uint32_t tree_raw) -> std::optional<uint32_t> {
                     TreeEntry entry = TreeEntry::Unpack(tree_raw);
                     entry.free += stolen;
                     return entry.Pack();
                   });
    }
  }
}

void LLFree::GiveBack(unsigned slot, uint64_t tree, unsigned need) {
  Atomic<uint64_t>& slot_atom = state_->reservations_[slot];
  for (;;) {
    uint64_t raw = slot_atom.load(std::memory_order_acquire);
    const Reservation r = Reservation::Unpack(raw);
    if (r.active && r.tree == tree) {
      Reservation next = r;
      next.free = static_cast<uint16_t>(r.free + need);
      uint64_t expected = raw;
      if (slot_atom.compare_exchange_weak(expected, next.Pack(),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        return;
      }
      continue;
    }
    // Reservation moved on; credit the tree directly.
    AtomicUpdate(state_->trees_[tree],
                 [&](uint32_t tree_raw) -> std::optional<uint32_t> {
                   TreeEntry entry = TreeEntry::Unpack(tree_raw);
                   entry.free += need;
                   return entry.Pack();
                 });
    return;
  }
}

bool LLFree::ReserveNewTree(unsigned slot, AllocType type, unsigned need,
                            std::optional<uint64_t> avoid) {
  const uint64_t n = num_trees();
  const uint64_t hint =
      state_->tree_hints_[slot].load(std::memory_order_relaxed) % n;

  // Preference passes (paper §4.1/§4.2 reservation policy):
  //   0. same-type trees that are meaningfully used (refill their gaps —
  //      passive defragmentation, the "prefer half depleted" heuristic)
  //   1. *compatible*-type trees with any room: movable and huge
  //      allocations are both movable in Linux terms and may fill each
  //      other's gaps (dense packing across user memory); unmovable
  //      kernel memory stays strictly separated
  //   2. entirely free trees (re-typed on reservation)
  //   3. partially used trees of an incompatible type — last resort, so
  //      that a movable burst does not claim the gaps inside the kernel's
  //      slab trees while free trees exist (this is what makes the
  //      per-type separation effective)
  //   4. anything with room
  const auto compatible = [type](AllocType other) {
    return other == type || (other != AllocType::kUnmovable &&
                             type != AllocType::kUnmovable);
  };
  for (int pass = 0; pass < 5; ++pass) {
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t t = (hint + i) % n;
      if (avoid.has_value() && t == *avoid && pass < 4) {
        continue;
      }
      const uint32_t cap = static_cast<uint32_t>(TreeCapacity(t));
      uint32_t raw = state_->trees_[t].load(std::memory_order_acquire);
      const TreeEntry entry = TreeEntry::Unpack(raw);
      if (entry.reserved || entry.free < need) {
        continue;
      }
      bool eligible = false;
      switch (pass) {
        case 0:
          eligible = entry.type == type && entry.free < cap - cap / 8;
          break;
        case 1:
          eligible = compatible(entry.type) && entry.free < cap;
          break;
        case 2:
          eligible = entry.free == cap;
          break;
        case 3:
          eligible = entry.free < cap;
          break;
        default:
          eligible = true;
          break;
      }
      if (!eligible) {
        continue;
      }
      TreeEntry claimed = entry;
      claimed.free = 0;
      claimed.reserved = true;
      claimed.type = type;
      uint32_t expected = raw;
      if (!state_->trees_[t].compare_exchange_strong(
              expected, claimed.Pack(), std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        continue;  // raced; try the next tree
      }

      // Publish the new reservation; release the old one.
      Atomic<uint64_t>& slot_atom = state_->reservations_[slot];
      Reservation next;
      next.active = true;
      next.tree = static_cast<uint32_t>(t);
      next.free = static_cast<uint16_t>(entry.free);
      uint64_t old_raw = slot_atom.load(std::memory_order_acquire);
      while (!slot_atom.compare_exchange_weak(old_raw, next.Pack(),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
      }
      const Reservation old = Reservation::Unpack(old_raw);
      if (old.active) {
        AtomicUpdate(state_->trees_[old.tree],
                     [&](uint32_t tree_raw) -> std::optional<uint32_t> {
                       TreeEntry e = TreeEntry::Unpack(tree_raw);
                       e.free += old.free;
                       e.reserved = false;
                       return e.Pack();
                     });
      }
      // Hints are always stored in-range so a view over a shrunk tree
      // index can never publish an out-of-bounds search start (the load
      // side additionally clamps with % n, defense in depth).
      state_->tree_hints_[slot].store(t % n, std::memory_order_relaxed);
      HA_COUNT("llfree.reserve_tree");
      HA_TRACE_EVENT(trace::Category::kLLFree, trace::Op::kReserveTree, t,
                     slot);
      (void)need;
      return true;
    }
  }
  return false;
}

void LLFree::DrainReservations() {
  const unsigned slots = config().NumSlots();
  for (unsigned s = 0; s < slots; ++s) {
    Atomic<uint64_t>& slot_atom = state_->reservations_[s];
    uint64_t raw = slot_atom.load(std::memory_order_acquire);
    for (;;) {
      const Reservation r = Reservation::Unpack(raw);
      if (!r.active) {
        break;
      }
      if (slot_atom.compare_exchange_weak(raw, Reservation{}.Pack(),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        AtomicUpdate(state_->trees_[r.tree],
                     [&](uint32_t tree_raw) -> std::optional<uint32_t> {
                       TreeEntry e = TreeEntry::Unpack(tree_raw);
                       e.free += r.free;
                       e.reserved = false;
                       return e.Pack();
                     });
        break;
      }
    }
  }
}

// ----------------------------------------------------------------------
// Allocation
// ----------------------------------------------------------------------

Result<FrameId> LLFree::Get(unsigned core, unsigned order, AllocType type) {
  if (order > kMaxBitfieldOrder && order != kHugeOrder) {
    HA_COUNT("llfree.get_fail");
    return AllocError::kInvalid;
  }
  const bool huge = order == kHugeOrder;
  const AllocType effective_type = huge && config().mode ==
      Config::ReservationMode::kPerType ? AllocType::kHuge : type;
  const unsigned need = 1u << order;
  const unsigned slot = SlotFor(core, effective_type);

  std::optional<uint64_t> avoid;
  for (unsigned attempt = 0; attempt < kMaxReserveAttempts; ++attempt) {
    std::optional<uint64_t> tree = TakeFromReservation(slot, need);
    if (!tree.has_value()) {
      if (!ReserveNewTree(slot, effective_type, need, avoid)) {
        return GetFallback(order, huge);
      }
      continue;
    }
    std::optional<FrameId> frame =
        huge ? SearchTreeHuge(*tree) : SearchTree(*tree, order);
    if (frame.has_value()) {
      HA_COUNT("llfree.get");
      HA_HIST("llfree.get_order", order);
      HA_TRACE_EVENT(trace::Category::kLLFree, trace::Op::kGet, *frame,
                     order);
      return *frame;
    }
    // The counter promised frames, but no suitable run exists in this
    // tree (fragmentation or a race). Return the frames and move on.
    GiveBack(slot, *tree, need);
    avoid = *tree;
    if (!ReserveNewTree(slot, effective_type, need, avoid)) {
      return GetFallback(order, huge);
    }
  }
  HA_COUNT("llfree.get_fail");
  return AllocError::kRetry;
}

unsigned LLFree::GetBatch(unsigned core, unsigned order, unsigned count,
                          AllocType type, std::vector<FrameId>* out) {
  if (count == 0) {
    return 0;
  }
  if (order == kHugeOrder) {
    return GetBatchHuge(core, count, type, out);
  }
  if (order > kMaxSingleWordOrder) {
    // Multi-word orders (7..8) gain nothing from word-batching (each
    // run already spans whole words); loop the single-run path.
    unsigned done = 0;
    for (; done < count; ++done) {
      const Result<FrameId> r = Get(core, order, type);
      if (!r.ok()) {
        break;
      }
      out->push_back(*r);
    }
    return done;
  }

  const unsigned run = 1u << order;
  const unsigned slot = SlotFor(core, type);
  unsigned claimed = 0;
  std::optional<uint64_t> avoid;
  for (unsigned attempt = 0;
       attempt < kMaxReserveAttempts && claimed < count; ++attempt) {
    unsigned taken_runs = 0;
    const std::optional<uint64_t> tree =
        TakeUpToFromReservation(slot, run, count - claimed, &taken_runs);
    if (!tree.has_value()) {
      if (!ReserveNewTree(slot, type, run, avoid)) {
        break;
      }
      continue;
    }
    const unsigned got = SearchTreeBatch(*tree, order, taken_runs, out);
    claimed += got;
    if (got < taken_runs) {
      // The counter promised more runs than the tree could deliver
      // (fragmentation or a race): return the shortfall and move on.
      GiveBack(slot, *tree, (taken_runs - got) * run);
      avoid = *tree;
      if (!ReserveNewTree(slot, type, run, avoid)) {
        break;
      }
    }
  }
  // The singles tail below counts its own "llfree.get"s.
  if (claimed > 0) {
    HA_COUNT_N("llfree.get", claimed);
    HA_COUNT("llfree.get_batch");
    HA_HIST("llfree.get_batch_runs", claimed);
    HA_TRACE_EVENT(trace::Category::kLLFree, trace::Op::kGet,
                   out->at(out->size() - claimed), order);
  }
  // Tail under pressure: fall back to single Gets so the batch keeps the
  // exact semantics (fallback steal included) of `count` single calls.
  while (claimed < count) {
    const Result<FrameId> r = Get(core, order, type);
    if (!r.ok()) {
      break;
    }
    out->push_back(*r);
    ++claimed;
  }
  return claimed;
}

unsigned LLFree::GetBatchHuge(unsigned core, unsigned count, AllocType type,
                              std::vector<FrameId>* out) {
  // Native order-9 batch (DESIGN.md §4.14): the reservation CAS debits
  // whole multiples of kFramesPerHuge and each tree visit claims every
  // free huge frame it can, so a slice-sized deflate (512 MiB = 256 huge
  // frames) costs a handful of reservation transactions instead of 256
  // full Get transactions.
  const AllocType effective_type =
      config().mode == Config::ReservationMode::kPerType ? AllocType::kHuge
                                                         : type;
  const unsigned slot = SlotFor(core, effective_type);
  unsigned claimed = 0;
  std::optional<uint64_t> avoid;
  for (unsigned attempt = 0;
       attempt < kMaxReserveAttempts && claimed < count; ++attempt) {
    unsigned taken_runs = 0;
    const std::optional<uint64_t> tree = TakeUpToFromReservation(
        slot, kFramesPerHuge, count - claimed, &taken_runs);
    if (!tree.has_value()) {
      if (!ReserveNewTree(slot, effective_type, kFramesPerHuge, avoid)) {
        break;
      }
      continue;
    }
    const unsigned got = SearchTreeHugeBatch(*tree, taken_runs, out);
    claimed += got;
    if (got < taken_runs) {
      // The counter promised more whole areas than the tree held
      // (fragmentation or a race): return the shortfall and move on.
      GiveBack(slot, *tree, (taken_runs - got) * kFramesPerHuge);
      avoid = *tree;
      if (!ReserveNewTree(slot, effective_type, kFramesPerHuge, avoid)) {
        break;
      }
    }
  }
  // The singles tail below counts its own "llfree.get"s.
  if (claimed > 0) {
    HA_COUNT_N("llfree.get", claimed);
    HA_COUNT("llfree.get_batch");
    HA_HIST("llfree.get_batch_runs", claimed);
    HA_TRACE_EVENT(trace::Category::kLLFree, trace::Op::kGet,
                   out->at(out->size() - claimed), kHugeOrder);
  }
  // Tail under pressure: fall back to single Gets so the batch keeps the
  // exact semantics (fallback steal included) of `count` single calls.
  while (claimed < count) {
    const Result<FrameId> r = Get(core, kHugeOrder, type);
    if (!r.ok()) {
      break;
    }
    out->push_back(*r);
    ++claimed;
  }
  return claimed;
}

Result<FrameId> LLFree::GetFallback(unsigned order, bool huge) {
  // Last resort under memory pressure: no unreserved tree has room, but
  // trees reserved by *other* slots (or fragmented ones) may still hold
  // free frames. Steal directly from the global tree counters, ignoring
  // the reserved flag.
  HA_COUNT("llfree.fallback_steal");
  const unsigned need = 1u << order;
  for (uint64_t t = 0; t < num_trees(); ++t) {
    const auto stolen = AtomicUpdate(
        state_->trees_[t], [&](uint32_t raw) -> std::optional<uint32_t> {
          TreeEntry entry = TreeEntry::Unpack(raw);
          if (entry.free < need) {
            return std::nullopt;
          }
          entry.free -= need;
          return entry.Pack();
        });
    if (!stolen.has_value()) {
      continue;
    }
    const std::optional<FrameId> frame =
        huge ? SearchTreeHuge(t) : SearchTree(t, order);
    if (frame.has_value()) {
      HA_COUNT("llfree.get");
      HA_HIST("llfree.get_order", order);
      HA_TRACE_EVENT(trace::Category::kLLFree, trace::Op::kSteal, *frame,
                     order);
      return *frame;
    }
    AtomicUpdate(state_->trees_[t],
                 [&](uint32_t raw) -> std::optional<uint32_t> {
                   TreeEntry entry = TreeEntry::Unpack(raw);
                   entry.free += need;
                   return entry.Pack();
                 });
  }
  // The remaining frames may live in other slots' local reservation
  // counters; pull from those directly (the reservations are part of the
  // shared state, so this stays a lock-free CAS transaction).
  for (unsigned s = 0; s < config().NumSlots(); ++s) {
    uint64_t victim_tree = 0;
    const auto taken = AtomicUpdate(
        state_->reservations_[s], [&](uint64_t raw) -> std::optional<uint64_t> {
          Reservation r = Reservation::Unpack(raw);
          if (!r.active || r.free < need) {
            return std::nullopt;
          }
          victim_tree = r.tree;
          r.free = static_cast<uint16_t>(r.free - need);
          return r.Pack();
        });
    if (!taken.has_value()) {
      continue;
    }
    const std::optional<FrameId> frame =
        huge ? SearchTreeHuge(victim_tree) : SearchTree(victim_tree, order);
    if (frame.has_value()) {
      HA_COUNT("llfree.get");
      HA_HIST("llfree.get_order", order);
      HA_TRACE_EVENT(trace::Category::kLLFree, trace::Op::kSteal, *frame,
                     order);
      return *frame;
    }
    GiveBack(s, victim_tree, need);
  }
  HA_COUNT("llfree.get_fail");
  return AllocError::kNoMemory;
}

std::optional<FrameId> LLFree::SearchTree(uint64_t tree, unsigned order) {
  const uint64_t first = FirstAreaOf(tree);
  const uint64_t count = AreasInTree(tree);
  const int start_pass = config().prefer_non_evicted ? 0 : 1;
  for (int pass = start_pass; pass < 2; ++pass) {
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t area = first + i;
      const AreaEntry entry =
          AreaEntry::Unpack(state_->areas_[area].load(std::memory_order_acquire));
      if (entry.allocated || entry.free < (1u << order)) {
        continue;
      }
      if (pass == 0 && entry.evicted) {
        continue;
      }
      FrameId frame = 0;
      if (ClaimBase(area, order, &frame)) {
        return frame;
      }
    }
  }
  return std::nullopt;
}

unsigned LLFree::SearchTreeBatch(uint64_t tree, unsigned order,
                                 unsigned count, std::vector<FrameId>* out) {
  const uint64_t first = FirstAreaOf(tree);
  const uint64_t areas = AreasInTree(tree);
  const int start_pass = config().prefer_non_evicted ? 0 : 1;
  unsigned claimed = 0;
  for (int pass = start_pass; pass < 2 && claimed < count; ++pass) {
    for (uint64_t i = 0; i < areas && claimed < count; ++i) {
      const uint64_t area = first + i;
      const AreaEntry entry = AreaEntry::Unpack(
          state_->areas_[area].load(std::memory_order_acquire));
      if (entry.allocated || entry.free < (1u << order)) {
        continue;
      }
      if (pass == 0 && entry.evicted) {
        continue;
      }
      claimed += ClaimBaseBatch(area, order, count - claimed, out);
    }
  }
  return claimed;
}

std::optional<FrameId> LLFree::SearchTreeHuge(uint64_t tree) {
  const uint64_t first = FirstAreaOf(tree);
  const uint64_t count = AreasInTree(tree);
  const int start_pass = config().prefer_non_evicted ? 0 : 1;
  for (int pass = start_pass; pass < 2; ++pass) {
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t area = first + i;
      const AreaEntry entry =
          AreaEntry::Unpack(state_->areas_[area].load(std::memory_order_acquire));
      if (!entry.IsFreeHuge()) {
        continue;
      }
      if (pass == 0 && entry.evicted) {
        continue;
      }
      if (ClaimHuge(area)) {
        return HugeToFrame(area);
      }
    }
  }
  return std::nullopt;
}

unsigned LLFree::SearchTreeHugeBatch(uint64_t tree, unsigned count,
                                     std::vector<FrameId>* out) {
  const uint64_t first = FirstAreaOf(tree);
  const uint64_t areas = AreasInTree(tree);
  const int start_pass = config().prefer_non_evicted ? 0 : 1;
  unsigned claimed = 0;
  for (int pass = start_pass; pass < 2 && claimed < count; ++pass) {
    for (uint64_t i = 0; i < areas && claimed < count; ++i) {
      const uint64_t area = first + i;
      const AreaEntry entry = AreaEntry::Unpack(
          state_->areas_[area].load(std::memory_order_acquire));
      if (!entry.IsFreeHuge()) {
        continue;
      }
      if (pass == 0 && entry.evicted) {
        continue;
      }
      if (ClaimHuge(area)) {
        out->push_back(HugeToFrame(area));
        ++claimed;
      }
    }
  }
  return claimed;
}

bool LLFree::ClaimBase(uint64_t area, unsigned order, FrameId* out) {
  const unsigned need = 1u << order;
  bool was_evicted = false;
  const auto claimed = AtomicUpdate(
      state_->areas_[area], [&](uint16_t raw) -> std::optional<uint16_t> {
        AreaEntry entry = AreaEntry::Unpack(raw);
        if (entry.allocated || entry.free < need) {
          return std::nullopt;
        }
        was_evicted = entry.evicted;
        entry.free = static_cast<uint16_t>(entry.free - need);
        return entry.Pack();
      });
  if (!claimed.has_value()) {
    return false;
  }
  const std::optional<unsigned> offset = BitsOf(area).Set(order, 0);
  if (!offset.has_value()) {
    // Counter said yes, bit field says no: transient race with concurrent
    // claims. Roll the counter back.
    AtomicUpdate(state_->areas_[area],
                 [&](uint16_t raw) -> std::optional<uint16_t> {
                   AreaEntry entry = AreaEntry::Unpack(raw);
                   entry.free = static_cast<uint16_t>(entry.free + need);
                   return entry.Pack();
                 });
    return false;
  }
  if (was_evicted) {
    // DMA safety: wait for the hypervisor to install backing memory
    // before handing the frame to the caller (§3.2).
    TriggerInstall(area);
  }
  *out = HugeToFrame(area) + *offset;
  return true;
}

unsigned LLFree::ClaimBaseBatch(uint64_t area, unsigned order,
                                unsigned count, std::vector<FrameId>* out) {
  const unsigned run = 1u << order;
  bool was_evicted = false;
  unsigned want = 0;
  const auto taken = AtomicUpdate(
      state_->areas_[area], [&](uint16_t raw) -> std::optional<uint16_t> {
        AreaEntry entry = AreaEntry::Unpack(raw);
        if (entry.allocated || entry.free < run) {
          return std::nullopt;
        }
        was_evicted = entry.evicted;
        want = std::min<unsigned>(count, entry.free / run);
        entry.free = static_cast<uint16_t>(entry.free - want * run);
        return entry.Pack();
      });
  if (!taken.has_value()) {
    return 0;
  }
  unsigned offsets[kFramesPerHuge];
  const unsigned got = BitsOf(area).SetBatch(order, want, 0, offsets);
  if (got < want) {
    // Counter promised more runs than the bit field held (transient race
    // with concurrent claims): roll the shortfall back.
    AtomicUpdate(state_->areas_[area],
                 [&](uint16_t raw) -> std::optional<uint16_t> {
                   AreaEntry entry = AreaEntry::Unpack(raw);
                   entry.free = static_cast<uint16_t>(entry.free +
                                                      (want - got) * run);
                   return entry.Pack();
                 });
  }
  if (got > 0 && was_evicted) {
    // DMA safety, once per area rather than once per frame: the whole
    // batch waits for a single install (§3.2 at batch granularity).
    TriggerInstall(area);
  }
  for (unsigned i = 0; i < got; ++i) {
    out->push_back(HugeToFrame(area) + offsets[i]);
  }
  return got;
}

bool LLFree::ClaimHuge(uint64_t area) {
  bool was_evicted = false;
  const auto claimed = AtomicUpdate(
      state_->areas_[area], [&](uint16_t raw) -> std::optional<uint16_t> {
        AreaEntry entry = AreaEntry::Unpack(raw);
        if (!entry.IsFreeHuge()) {
          return std::nullopt;
        }
        was_evicted = entry.evicted;
        entry.free = 0;
        entry.allocated = true;
        return entry.Pack();
      });
  if (!claimed.has_value()) {
    return false;
  }
  if (was_evicted) {
    TriggerInstall(area);
  }
  return true;
}

void LLFree::TriggerInstall(HugeId huge) {
  HA_COUNT("llfree.install_trigger");
  HA_TRACE_EVENT(trace::Category::kLLFree, trace::Op::kInstall, huge, 0);
  const InstallHandler& handler = install_handler_.read();
  if (handler) {
    handler(huge);
  } else {
    // Standalone operation (no hypervisor attached): the hint is cleared
    // locally so the allocator remains self-consistent.
    ClearEvicted(huge);
  }
}

std::optional<AllocError> LLFree::Put(FrameId frame, unsigned order) {
  if (order > kMaxBitfieldOrder && order != kHugeOrder) {
    return AllocError::kInvalid;
  }
  if (frame >= frames() || frame % (1ull << order) != 0) {
    return AllocError::kInvalid;
  }
  const uint64_t area = FrameToHuge(frame);
  const unsigned need = 1u << order;

  if (order == kHugeOrder) {
    const auto freed = AtomicUpdate(
        state_->areas_[area], [&](uint16_t raw) -> std::optional<uint16_t> {
          AreaEntry entry = AreaEntry::Unpack(raw);
          if (!entry.allocated || entry.free != 0) {
            return std::nullopt;  // not huge-allocated: invalid free
          }
          entry.allocated = false;
          entry.free = kFramesPerHuge;
          return entry.Pack();
        });
    if (!freed.has_value()) {
      return AllocError::kInvalid;
    }
  } else {
    if (!BitsOf(area).Clear(static_cast<unsigned>(frame % kFramesPerHuge),
                            order)) {
      return AllocError::kInvalid;
    }
    AtomicUpdate(state_->areas_[area],
                 [&](uint16_t raw) -> std::optional<uint16_t> {
                   AreaEntry entry = AreaEntry::Unpack(raw);
                   HA_DCHECK(!entry.allocated);
                   HA_DCHECK(entry.free + need <= kFramesPerHuge);
                   entry.free = static_cast<uint16_t>(entry.free + need);
                   return entry.Pack();
                 });
  }

  AtomicUpdate(state_->trees_[TreeOf(area)],
               [&](uint32_t raw) -> std::optional<uint32_t> {
                 TreeEntry entry = TreeEntry::Unpack(raw);
                 entry.free += need;
                 return entry.Pack();
               });
  HA_COUNT("llfree.put");
  HA_TRACE_EVENT(trace::Category::kLLFree, trace::Op::kPut, frame, order);
  return std::nullopt;
}

unsigned LLFree::PutBatch(std::span<const FrameId> frames, unsigned order) {
  if (frames.empty()) {
    return 0;
  }
  if (order > kMaxSingleWordOrder) {
    unsigned freed = 0;
    for (const FrameId f : frames) {
      if (!Put(f, order).has_value()) {
        ++freed;
      }
    }
    return freed;
  }
  const unsigned run = 1u << order;
  const uint64_t mask = (order == 6) ? ~0ull : ((1ull << run) - 1);

  // Sort a local copy so runs sharing one bit-field word are adjacent and
  // the whole group clears with a single CAS + one counter credit each.
  std::vector<FrameId> sorted;
  sorted.reserve(frames.size());
  for (const FrameId f : frames) {
    if (f >= this->frames() || f % run != 0) {
      continue;  // kInvalid: skipped, rest of the batch still frees
    }
    sorted.push_back(f);
  }
  std::sort(sorted.begin(), sorted.end());

  unsigned freed_total = 0;
  unsigned freed_batched = 0;  // one-CAS groups only (Put counts its own)
  size_t i = 0;
  while (i < sorted.size()) {
    const uint64_t area = FrameToHuge(sorted[i]);
    const unsigned word = (sorted[i] % kFramesPerHuge) / 64;
    uint64_t word_mask = 0;
    bool overlap = false;
    size_t end = i;
    while (end < sorted.size() && FrameToHuge(sorted[end]) == area &&
           (sorted[end] % kFramesPerHuge) / 64 == word) {
      const uint64_t m = mask << (sorted[end] % 64);
      overlap = overlap || (word_mask & m) != 0;  // duplicate in batch
      word_mask |= m;
      ++end;
    }
    const unsigned group_runs = static_cast<unsigned>(end - i);
    if (!overlap && BitsOf(area).ClearMask(word, word_mask)) {
      // One credit per group, same order as Put: bits, area, then tree.
      AtomicUpdate(state_->areas_[area],
                   [&](uint16_t raw) -> std::optional<uint16_t> {
                     AreaEntry entry = AreaEntry::Unpack(raw);
                     HA_DCHECK(!entry.allocated);
                     HA_DCHECK(entry.free + group_runs * run <=
                               kFramesPerHuge);
                     entry.free = static_cast<uint16_t>(entry.free +
                                                        group_runs * run);
                     return entry.Pack();
                   });
      AtomicUpdate(state_->trees_[TreeOf(area)],
                   [&](uint32_t raw) -> std::optional<uint32_t> {
                     TreeEntry entry = TreeEntry::Unpack(raw);
                     entry.free += group_runs * run;
                     return entry.Pack();
                   });
      freed_total += group_runs;
      freed_batched += group_runs;
    } else {
      // A duplicate or double free hides somewhere in the group: fall
      // back to per-run Put so the valid subset still frees.
      for (size_t j = i; j < end; ++j) {
        if (!Put(sorted[j], order).has_value()) {
          ++freed_total;
        }
      }
    }
    i = end;
  }
  if (freed_batched > 0) {
    HA_COUNT_N("llfree.put", freed_batched);
    HA_COUNT("llfree.put_batch");
    HA_TRACE_EVENT(trace::Category::kLLFree, trace::Op::kPut, sorted[0],
                   order);
  }
  return freed_total;
}

// ----------------------------------------------------------------------
// Compaction support (DESIGN.md §4.14)
// ----------------------------------------------------------------------

unsigned LLFree::ClaimFreeInArea(HugeId area, std::vector<FrameId>* out) {
  HA_CHECK(area < num_areas());
  const uint64_t tree = TreeOf(area);
  unsigned total = 0;
  for (;;) {
    const AreaEntry snapshot = AreaEntry::Unpack(
        state_->areas_[area].load(std::memory_order_acquire));
    if (snapshot.allocated || snapshot.free == 0) {
      break;
    }
    // Debit the tree counter FIRST — the hard-reclaim ordering — so the
    // guest cannot promise these frames to an allocation mid-claim. The
    // frames may be parked in a reservation over this tree; raid those
    // when the global counter runs dry.
    unsigned take = 0;
    const bool counter_taken =
        AtomicUpdate(state_->trees_[tree],
                     [&](uint32_t raw) -> std::optional<uint32_t> {
                       TreeEntry te = TreeEntry::Unpack(raw);
                       if (te.free == 0) {
                         return std::nullopt;
                       }
                       take = std::min<unsigned>(snapshot.free, te.free);
                       te.free -= take;
                       return te.Pack();
                     })
            .has_value();
    if (!counter_taken) {
      take = 0;
      for (unsigned s = 0; s < config().NumSlots() && take == 0; ++s) {
        const bool raided =
            AtomicUpdate(state_->reservations_[s],
                         [&](uint64_t raw) -> std::optional<uint64_t> {
                           Reservation r = Reservation::Unpack(raw);
                           if (!r.active || r.tree != tree || r.free == 0) {
                             return std::nullopt;
                           }
                           take = std::min<unsigned>(snapshot.free, r.free);
                           r.free = static_cast<uint16_t>(r.free - take);
                           return r.Pack();
                         })
                .has_value();
        if (!raided) {
          take = 0;
        }
      }
      if (take == 0) {
        break;  // tree counters dry: nothing safely claimable
      }
    }
    // Debit the area counter (it may have shrunk since the snapshot;
    // credit any shortfall back to the tree).
    unsigned got = 0;
    const bool area_taken =
        AtomicUpdate(state_->areas_[area],
                     [&](uint16_t raw) -> std::optional<uint16_t> {
                       AreaEntry entry = AreaEntry::Unpack(raw);
                       if (entry.allocated || entry.free == 0) {
                         return std::nullopt;
                       }
                       got = std::min<unsigned>(take, entry.free);
                       entry.free = static_cast<uint16_t>(entry.free - got);
                       return entry.Pack();
                     })
            .has_value();
    if (!area_taken) {
      got = 0;
    }
    if (got < take) {
      AtomicUpdate(state_->trees_[tree],
                   [&](uint32_t raw) -> std::optional<uint32_t> {
                     TreeEntry te = TreeEntry::Unpack(raw);
                     te.free += take - got;
                     return te.Pack();
                   });
      if (got == 0) {
        break;
      }
    }
    // Claim the corresponding order-0 bits. No install trigger: the
    // claimed frames are the holes the migration fills around and are
    // never written through.
    unsigned offsets[kFramesPerHuge];
    const unsigned set = BitsOf(area).SetBatch(0, got, 0, offsets);
    if (set < got) {
      // Bits raced ahead of the counter: roll the shortfall back.
      AtomicUpdate(state_->areas_[area],
                   [&](uint16_t raw) -> std::optional<uint16_t> {
                     AreaEntry entry = AreaEntry::Unpack(raw);
                     entry.free = static_cast<uint16_t>(entry.free +
                                                        (got - set));
                     return entry.Pack();
                   });
      AtomicUpdate(state_->trees_[tree],
                   [&](uint32_t raw) -> std::optional<uint32_t> {
                     TreeEntry te = TreeEntry::Unpack(raw);
                     te.free += got - set;
                     return te.Pack();
                   });
    }
    for (unsigned i = 0; i < set; ++i) {
      out->push_back(HugeToFrame(area) + offsets[i]);
    }
    total += set;
    if (set == 0) {
      break;
    }
  }
  if (total > 0) {
    HA_COUNT("llfree.compact_claim");
    HA_COUNT_N("llfree.compact_claim_frames", total);
    HA_TRACE_EVENT(trace::Category::kLLFree, trace::Op::kGet,
                   HugeToFrame(area), 0);
  }
  return total;
}

double LLFree::FragmentationScore() const {
  const uint64_t free = FreeFrames();
  if (free == 0) {
    return 0.0;
  }
  const uint64_t huge_free = FreeHugeFrames() * kFramesPerHuge;
  HA_DCHECK(huge_free <= free);
  return 1.0 - static_cast<double>(huge_free) / static_cast<double>(free);
}

// ----------------------------------------------------------------------
// Bilateral (hypervisor) operations
// ----------------------------------------------------------------------

std::optional<HugeId> LLFree::ReclaimHuge(HugeId start_hint, bool hard,
                                          bool allow_reserved) {
  const uint64_t n = num_areas();
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t area = (start_hint + i) % n;
    if (hard ? TryHardReclaim(area, allow_reserved) : TrySoftReclaim(area)) {
      return area;
    }
  }
  return std::nullopt;
}

bool LLFree::TrySoftReclaim(HugeId huge) {
  HA_CHECK(huge < num_areas());
  const AreaEntry entry =
      AreaEntry::Unpack(state_->areas_[huge].load(std::memory_order_acquire));
  if (!entry.IsFreeHuge() || entry.evicted) {
    return false;
  }
  // Soft reclaim: only the evicted hint changes; the frame stays
  // logically free for the guest.
  AreaEntry desired = entry;
  desired.evicted = true;
  uint16_t expected = entry.Pack();
  if (!state_->areas_[huge].compare_exchange_strong(
          expected, desired.Pack(), std::memory_order_acq_rel,
          std::memory_order_acquire)) {
    return false;
  }
  HA_COUNT("llfree.reclaim_soft");
  HA_TRACE_EVENT(trace::Category::kLLFree, trace::Op::kReclaimSoft, huge, 0);
  return true;
}

bool LLFree::TryHardReclaim(HugeId huge, bool allow_reserved) {
  HA_CHECK(huge < num_areas());
  const AreaEntry entry =
      AreaEntry::Unpack(state_->areas_[huge].load(std::memory_order_acquire));
  // Unlike soft reclaim, hard reclaim also takes soft-reclaimed (evicted)
  // frames: the S -> H transition of Fig. 2 — the paper's fast
  // "reclaim untouched" path, since no unmapping is needed.
  if (!entry.IsFreeHuge()) {
    return false;
  }
  const uint64_t tree = TreeOf(huge);

  // Hard reclaim: first take the frames out of the tree counter so the
  // guest cannot promise them to an allocation, then claim the area.
  bool counter_taken =
      AtomicUpdate(state_->trees_[tree],
                   [&](uint32_t raw) -> std::optional<uint32_t> {
                     TreeEntry te = TreeEntry::Unpack(raw);
                     if ((te.reserved && !allow_reserved) ||
                         te.free < kFramesPerHuge) {
                       return std::nullopt;
                     }
                     te.free -= kFramesPerHuge;
                     return te.Pack();
                   })
          .has_value();
  if (!counter_taken && allow_reserved) {
    // The frames may be parked in a guest reservation's local counter
    // (the shared state includes the reservations, so the monitor can
    // pull from them directly — this is the memory pressure the paper's
    // "cache purge" induces).
    for (unsigned s = 0; s < config().NumSlots() && !counter_taken; ++s) {
      counter_taken =
          AtomicUpdate(state_->reservations_[s],
                       [&](uint64_t raw) -> std::optional<uint64_t> {
                         Reservation r = Reservation::Unpack(raw);
                         if (!r.active || r.tree != tree ||
                             r.free < kFramesPerHuge) {
                           return std::nullopt;
                         }
                         r.free = static_cast<uint16_t>(r.free -
                                                        kFramesPerHuge);
                         return r.Pack();
                       })
              .has_value();
    }
  }
  if (!counter_taken) {
    return false;
  }
  AreaEntry desired = entry;
  desired.free = 0;
  desired.allocated = true;  // A <- 1
  desired.evicted = true;    // E <- 1
  uint16_t expected = entry.Pack();
  if (state_->areas_[huge].compare_exchange_strong(
          expected, desired.Pack(), std::memory_order_acq_rel,
          std::memory_order_acquire)) {
    HA_COUNT("llfree.reclaim_hard");
    HA_TRACE_EVENT(trace::Category::kLLFree, trace::Op::kReclaimHard, huge,
                   0);
    return true;
  }
  // Lost the race for this area (guest allocated it); undo the steal.
  AtomicUpdate(state_->trees_[tree],
               [&](uint32_t raw) -> std::optional<uint32_t> {
                 TreeEntry te = TreeEntry::Unpack(raw);
                 te.free += kFramesPerHuge;
                 return te.Pack();
               });
  return false;
}

bool LLFree::MarkReturned(HugeId huge) {
  HA_CHECK(huge < num_areas());
  const bool transitioned =
      AtomicUpdate(state_->areas_[huge],
                   [](uint16_t raw) -> std::optional<uint16_t> {
                     AreaEntry entry = AreaEntry::Unpack(raw);
                     // Only the hard-reclaimed state (A=1, E=1, free=0)
                     // may be returned; hint bits (hotness) are kept.
                     if (!entry.allocated || !entry.evicted ||
                         entry.free != 0) {
                       return std::nullopt;
                     }
                     entry.free = kFramesPerHuge;
                     entry.allocated = false;
                     return entry.Pack();
                   })
          .has_value();
  if (!transitioned) {
    return false;
  }
  AtomicUpdate(state_->trees_[TreeOf(huge)],
               [&](uint32_t raw) -> std::optional<uint32_t> {
                 TreeEntry entry = TreeEntry::Unpack(raw);
                 entry.free += kFramesPerHuge;
                 return entry.Pack();
               });
  HA_COUNT("llfree.return");
  HA_TRACE_EVENT(trace::Category::kLLFree, trace::Op::kReturn, huge, 0);
  return true;
}

bool LLFree::ClearEvicted(HugeId huge) {
  HA_CHECK(huge < num_areas());
  const bool cleared =
      AtomicUpdate(state_->areas_[huge],
                   [](uint16_t raw) -> std::optional<uint16_t> {
                     AreaEntry entry = AreaEntry::Unpack(raw);
                     if (!entry.evicted) {
                       return std::nullopt;
                     }
                     entry.evicted = false;
                     return entry.Pack();
                   })
          .has_value();
  if (cleared) {
    HA_COUNT("llfree.evicted_clear");
    HA_TRACE_EVENT(trace::Category::kLLFree, trace::Op::kEvictedClear, huge,
                   0);
  }
  return cleared;
}

bool LLFree::SetEvicted(HugeId huge) {
  HA_CHECK(huge < num_areas());
  const bool set =
      AtomicUpdate(state_->areas_[huge],
                   [](uint16_t raw) -> std::optional<uint16_t> {
                     AreaEntry entry = AreaEntry::Unpack(raw);
                     if (entry.evicted) {
                       return std::nullopt;
                     }
                     entry.evicted = true;
                     return entry.Pack();
                   })
          .has_value();
  if (set) {
    HA_COUNT("llfree.evicted_set");
    HA_TRACE_EVENT(trace::Category::kLLFree, trace::Op::kEvictedSet, huge, 0);
  }
  return set;
}

void LLFree::MarkHot(HugeId huge) {
  HA_CHECK(huge < num_areas());
  AtomicUpdate(state_->areas_[huge],
               [](uint16_t raw) -> std::optional<uint16_t> {
                 AreaEntry entry = AreaEntry::Unpack(raw);
                 if (entry.hotness == AreaEntry::kMaxHotness) {
                   return std::nullopt;  // already hot: no write traffic
                 }
                 entry.hotness = AreaEntry::kMaxHotness;
                 return entry.Pack();
               });
}

uint8_t LLFree::AgeHotness(HugeId huge) {
  HA_CHECK(huge < num_areas());
  uint8_t before = 0;
  AtomicUpdate(state_->areas_[huge],
               [&before](uint16_t raw) -> std::optional<uint16_t> {
                 AreaEntry entry = AreaEntry::Unpack(raw);
                 before = entry.hotness;
                 if (entry.hotness == 0) {
                   return std::nullopt;
                 }
                 --entry.hotness;
                 return entry.Pack();
               });
  return before;
}

// ----------------------------------------------------------------------
// Introspection
// ----------------------------------------------------------------------

AreaEntry LLFree::ReadArea(HugeId huge) const {
  HA_CHECK(huge < num_areas());
  return AreaEntry::Unpack(state_->areas_[huge].load(std::memory_order_acquire));
}

TreeEntry LLFree::ReadTree(uint64_t tree) const {
  HA_CHECK(tree < num_trees());
  return TreeEntry::Unpack(state_->trees_[tree].load(std::memory_order_acquire));
}

Reservation LLFree::ReadReservation(unsigned slot) const {
  HA_CHECK(slot < config().NumSlots());
  return Reservation::Unpack(
      state_->reservations_[slot].load(std::memory_order_acquire));
}

uint64_t LLFree::FreeFrames() const {
  uint64_t total = 0;
  for (uint64_t a = 0; a < num_areas(); ++a) {
    total += ReadArea(a).free;
  }
  return total;
}

uint64_t LLFree::FreeHugeFrames(bool include_evicted) const {
  uint64_t total = 0;
  for (uint64_t a = 0; a < num_areas(); ++a) {
    const AreaEntry entry = ReadArea(a);
    if (entry.IsFreeHuge() && (include_evicted || !entry.evicted)) {
      ++total;
    }
  }
  return total;
}

uint64_t LLFree::UsedHugeAreas() const {
  uint64_t total = 0;
  for (uint64_t a = 0; a < num_areas(); ++a) {
    const AreaEntry entry = ReadArea(a);
    const bool guest_used =
        (!entry.allocated && entry.free < kFramesPerHuge) ||
        (entry.allocated && !entry.evicted);
    if (guest_used) {
      ++total;
    }
  }
  return total;
}

uint64_t LLFree::EvictedAreas() const {
  uint64_t total = 0;
  for (uint64_t a = 0; a < num_areas(); ++a) {
    if (ReadArea(a).evicted) {
      ++total;
    }
  }
  return total;
}

uint64_t LLFree::Recover() {
  uint64_t repaired = 0;

  // Area counters from the authoritative bit field (the allocated flag is
  // itself authoritative: a huge allocation never sets bits).
  for (uint64_t a = 0; a < num_areas(); ++a) {
    const AreaEntry entry = ReadArea(a);
    AreaEntry repaired_entry = entry;
    repaired_entry.free =
        entry.allocated
            ? 0
            : static_cast<uint16_t>(kFramesPerHuge - BitsOf(a).CountSet());
    if (!(repaired_entry == entry)) {
      state_->areas_[a].store(repaired_entry.Pack(),
                              std::memory_order_release);
      ++repaired;
    }
  }

  // Drop all reservations (their owners are gone after a crash).
  for (unsigned s = 0; s < config().NumSlots(); ++s) {
    if (ReadReservation(s).active) {
      state_->reservations_[s].store(Reservation{}.Pack(),
                                     std::memory_order_release);
      ++repaired;
    }
  }

  // Tree counters from the (now-correct) area counters.
  for (uint64_t t = 0; t < num_trees(); ++t) {
    uint64_t free = 0;
    for (uint64_t a = FirstAreaOf(t); a < FirstAreaOf(t) + AreasInTree(t);
         ++a) {
      free += ReadArea(a).free;
    }
    const TreeEntry entry = ReadTree(t);
    TreeEntry repaired_entry = entry;
    repaired_entry.free = static_cast<uint32_t>(free);
    repaired_entry.reserved = false;
    if (!(repaired_entry == entry)) {
      state_->trees_[t].store(repaired_entry.Pack(),
                              std::memory_order_release);
      ++repaired;
    }
  }
  return repaired;
}

bool LLFree::Validate() const {
  bool ok = true;
  auto fail = [&ok](const char* what, uint64_t index, uint64_t a, uint64_t b) {
    std::fprintf(stderr, "llfree validate: %s at %llu: %llu vs %llu\n", what,
                 static_cast<unsigned long long>(index),
                 static_cast<unsigned long long>(a),
                 static_cast<unsigned long long>(b));
    ok = false;
  };

  for (uint64_t a = 0; a < num_areas(); ++a) {
    const AreaEntry entry = ReadArea(a);
    const unsigned set_bits = BitsOf(a).CountSet();
    if (entry.allocated) {
      if (entry.free != 0) {
        fail("huge-allocated area with free != 0", a, entry.free, 0);
      }
      if (set_bits != 0) {
        fail("huge-allocated area with set bits", a, set_bits, 0);
      }
    } else {
      if (entry.free + set_bits != kFramesPerHuge) {
        fail("counter/bitfield mismatch", a, entry.free + set_bits,
             kFramesPerHuge);
      }
    }
  }

  // Tree counters + reservations must cover the area counters, except for
  // hard-reclaimed frames whose 512 were deliberately removed.
  std::vector<uint64_t> reserved_extra(num_trees(), 0);
  for (unsigned s = 0; s < config().NumSlots(); ++s) {
    const Reservation r = ReadReservation(s);
    if (r.active) {
      reserved_extra[r.tree] += r.free;
    }
  }
  for (uint64_t t = 0; t < num_trees(); ++t) {
    uint64_t area_free = 0;
    uint64_t hard_reclaimed = 0;
    for (uint64_t a = FirstAreaOf(t); a < FirstAreaOf(t) + AreasInTree(t);
         ++a) {
      const AreaEntry entry = ReadArea(a);
      area_free += entry.free;
      if (entry.allocated && entry.evicted) {
        hard_reclaimed += kFramesPerHuge;
      }
    }
    const TreeEntry entry = ReadTree(t);
    const uint64_t counted = entry.free + reserved_extra[t];
    // Hard-reclaimed areas contribute neither to area_free nor to the
    // tree counter, so both sides agree without adjustment. (The loop
    // above tracks them only for potential diagnostics.)
    (void)hard_reclaimed;
    if (counted != area_free) {
      fail("tree counter mismatch", t, counted, area_free);
    }
  }
  return ok;
}

}  // namespace hyperalloc::llfree
