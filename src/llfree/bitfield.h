// Lock-free bit field covering one LLFree area (512 base frames = eight
// 64-bit words = one cache line). Bit = 1 means the base frame is
// allocated. Allocations of order 0..6 are naturally aligned runs within
// a single word and therefore single-CAS transactions.
#pragma once

#include <cstdint>
#include <optional>

#include "src/base/atomic.h"
#include "src/base/types.h"

namespace hyperalloc::llfree {

inline constexpr unsigned kWordsPerArea = kFramesPerHuge / 64;  // 8
// Orders 0..6 fit in one 64-bit word (single-CAS transactions); orders
// 7..8 span 2/4 whole words and are claimed word-by-word with rollback;
// order 9 is handled by the area entry's allocated flag and never touches
// the bit field.
inline constexpr unsigned kMaxBitfieldOrder = 8;
inline constexpr unsigned kMaxSingleWordOrder = 6;

// A view over the 8 words of one area within the global bitfield array.
class AreaBits {
 public:
  explicit AreaBits(Atomic<uint64_t>* words) : words_(words) {}

  // Finds and claims a naturally aligned run of 2^order zero bits.
  // `start_hint` is a frame offset within the area (0..511) biasing where
  // the search begins — both the word and the in-word position, wrapping
  // in each. Returns the frame offset within the area.
  std::optional<unsigned> Set(unsigned order, unsigned start_hint);

  // Batched claim (orders 0..kMaxSingleWordOrder): claims up to `count`
  // naturally aligned runs of 2^order zero bits, word-at-a-time — every
  // run found within one word is taken by a single CAS, so one CAS can
  // claim up to 64 base frames. Writes the frame offset of each claimed
  // run to `offsets` (capacity >= count) and returns the number claimed;
  // fewer than `count` means the area ran out of runs of this order.
  unsigned SetBatch(unsigned order, unsigned count, unsigned start_hint,
                    unsigned* offsets);

  // Clears a previously set run. Returns false (and changes nothing) if
  // any bit in the run was already clear — i.e. a double free.
  bool Clear(unsigned offset, unsigned order);

  // Batched clear: clears every bit in `mask` within word `w` with one
  // CAS (the put-side counterpart of SetBatch; `mask` is a union of
  // previously claimed single-word runs). Returns false — changing
  // nothing — if any bit in the mask is already clear (double free
  // somewhere in the batch; the caller falls back to per-run clears to
  // identify it).
  bool ClearMask(unsigned w, uint64_t mask);

  // Returns true if all 2^order bits at `offset` are zero.
  bool IsFree(unsigned offset, unsigned order) const;

  // Number of set (allocated) bits in the area.
  unsigned CountSet() const;

  // Sets all 512 bits (used when the covering huge frame is carved out of
  // a fresh area for base allocations bookkeeping — not in the hot path).
  void FillAll();

 private:
  std::optional<unsigned> SetMultiWord(unsigned order, unsigned start_hint);

  Atomic<uint64_t>* words_;
};

}  // namespace hyperalloc::llfree
