// Packed index entries of the LLFree allocator (paper §4.1–4.2, Fig. 3).
//
// Area entry (16-bit, one per 2 MiB huge frame):
//   bits 0–9   free-frame counter (0..512)
//   bit  10    A: huge frame allocated (also set by HyperAlloc hard reclaim)
//   bit  11    E: evicted hint (HyperAlloc extension; synchronized ¬M copy)
//   bits 12–13 H: hotness hint (0 cold .. 3 hot) — §6 "with the six
//              remaining area-entry bits, the guest could expose even
//              more useful information about data-filled frames (e.g.,
//              hotness)". The guest raises it on access; the host ages
//              and consults it (e.g. for swap victim selection).
//   bits 14–15 spare
//
// Tree entry (32-bit, one per tree of `areas_per_tree` areas):
//   bits 0–15  free-frame counter
//   bit  16    reserved flag (a core/type currently owns this tree)
//   bits 17–18 allocation type (HyperAlloc's per-type reservation policy)
//
// Both entry kinds live in densely packed atomic arrays so that the
// hypervisor can locate any entry with offset arithmetic alone and induce
// guest state transitions with a single CAS (paper §4.2 "State Mapping").
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "src/base/atomic.h"
#include "src/base/check.h"
#include "src/base/types.h"

namespace hyperalloc::llfree {

struct AreaEntry {
  uint16_t free = 0;    // 0..512
  bool allocated = false;  // A
  bool evicted = false;    // E
  uint8_t hotness = 0;     // H: 0 cold .. 3 hot

  static constexpr uint16_t kFreeMask = 0x3ff;  // 10 bits
  static constexpr uint16_t kAllocatedBit = 1u << 10;
  static constexpr uint16_t kEvictedBit = 1u << 11;
  static constexpr unsigned kHotShift = 12;
  static constexpr uint16_t kHotMask = 0x3u << kHotShift;
  static constexpr uint8_t kMaxHotness = 3;

  static AreaEntry Unpack(uint16_t raw) {
    AreaEntry e;
    e.free = raw & kFreeMask;
    e.allocated = (raw & kAllocatedBit) != 0;
    e.evicted = (raw & kEvictedBit) != 0;
    e.hotness = static_cast<uint8_t>((raw & kHotMask) >> kHotShift);
    return e;
  }

  uint16_t Pack() const {
    HA_DCHECK(free <= kFramesPerHuge);
    HA_DCHECK(hotness <= kMaxHotness);
    return static_cast<uint16_t>(free) |
           (allocated ? kAllocatedBit : 0) | (evicted ? kEvictedBit : 0) |
           static_cast<uint16_t>(hotness << kHotShift);
  }

  // A huge frame is reclaimable/allocatable-as-huge iff it is entirely
  // free and not already taken as a huge frame.
  bool IsFreeHuge() const { return free == kFramesPerHuge && !allocated; }

  bool operator==(const AreaEntry&) const = default;
};

struct TreeEntry {
  uint32_t free = 0;
  bool reserved = false;
  AllocType type = AllocType::kUnmovable;

  static constexpr uint32_t kFreeMask = 0xffff;
  static constexpr uint32_t kReservedBit = 1u << 16;
  static constexpr uint32_t kTypeShift = 17;
  static constexpr uint32_t kTypeMask = 0x3u << kTypeShift;

  static TreeEntry Unpack(uint32_t raw) {
    TreeEntry e;
    e.free = raw & kFreeMask;
    e.reserved = (raw & kReservedBit) != 0;
    e.type = static_cast<AllocType>((raw & kTypeMask) >> kTypeShift);
    return e;
  }

  uint32_t Pack() const {
    HA_DCHECK(free <= kFreeMask);
    return free | (reserved ? kReservedBit : 0) |
           (static_cast<uint32_t>(type) << kTypeShift);
  }

  bool operator==(const TreeEntry&) const = default;
};

// The per-slot reservation: which tree a core (original LLFree) or an
// allocation type (HyperAlloc variant) has currently reserved, plus the
// "stolen" local free counter. Packed into one 64-bit word so reserve /
// allocate / drop are single CAS transitions.
struct Reservation {
  bool active = false;
  uint32_t tree = 0;     // tree index
  uint16_t free = 0;     // local free-frame counter stolen from the tree

  static constexpr uint64_t kActiveBit = 1ull << 63;

  static Reservation Unpack(uint64_t raw) {
    Reservation r;
    r.active = (raw & kActiveBit) != 0;
    r.tree = static_cast<uint32_t>(raw >> 16) & 0xffffffffu;
    r.free = static_cast<uint16_t>(raw & 0xffff);
    return r;
  }

  uint64_t Pack() const {
    return (active ? kActiveBit : 0) | (static_cast<uint64_t>(tree) << 16) |
           free;
  }

  bool operator==(const Reservation&) const = default;
};

// Lock-free read-modify-write: repeatedly applies `f` to the current
// value; `f` returns std::nullopt to abort (value no longer eligible).
// Returns the value that was successfully replaced, or nullopt.
template <typename Raw, typename F>
std::optional<Raw> AtomicUpdate(Atomic<Raw>& atom, F&& f) {
  Raw current = atom.load(std::memory_order_acquire);
  for (;;) {
    std::optional<Raw> next = f(current);
    if (!next.has_value()) {
      return std::nullopt;
    }
    if (atom.compare_exchange_weak(current, *next,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      return current;
    }
  }
}

}  // namespace hyperalloc::llfree
