#include "src/llfree/bitfield.h"

#include <bit>

#include "src/base/check.h"

namespace hyperalloc::llfree {

std::optional<unsigned> AreaBits::Set(unsigned order, unsigned start_hint) {
  HA_CHECK(order <= kMaxBitfieldOrder);
  if (order > kMaxSingleWordOrder) {
    return SetMultiWord(order);
  }
  const unsigned run = 1u << order;
  const uint64_t mask = (order == 6) ? ~0ull : ((1ull << run) - 1);
  const unsigned first_word = (start_hint / 64) % kWordsPerArea;

  for (unsigned i = 0; i < kWordsPerArea; ++i) {
    const unsigned w = (first_word + i) % kWordsPerArea;
    Atomic<uint64_t>& word = words_[w];
    uint64_t current = word.load(std::memory_order_acquire);
    for (;;) {
      // Find an aligned zero run in `current`.
      int shift = -1;
      for (unsigned pos = 0; pos < 64; pos += run) {
        if ((current & (mask << pos)) == 0) {
          shift = static_cast<int>(pos);
          break;
        }
      }
      if (shift < 0) {
        break;  // word full for this order; next word
      }
      const uint64_t desired = current | (mask << shift);
      if (word.compare_exchange_weak(current, desired,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        return w * 64 + static_cast<unsigned>(shift);
      }
      // CAS failed: `current` reloaded; retry within this word.
    }
  }
  return std::nullopt;
}

std::optional<unsigned> AreaBits::SetMultiWord(unsigned order) {
  // Orders 7..8 cover 2/4 naturally aligned whole words. Claim the run
  // word-by-word (each word 0 -> ~0); on a conflict, roll back the words
  // already taken. Lock-free: every step is a CAS, rollback cannot fail.
  const unsigned words_per_run = (1u << order) / 64;
  for (unsigned base = 0; base + words_per_run <= kWordsPerArea;
       base += words_per_run) {
    unsigned claimed = 0;
    for (; claimed < words_per_run; ++claimed) {
      uint64_t expected = 0;
      if (!words_[base + claimed].compare_exchange_strong(
              expected, ~0ull, std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        break;
      }
    }
    if (claimed == words_per_run) {
      return base * 64;
    }
    while (claimed-- > 0) {
      words_[base + claimed].store(0, std::memory_order_release);
    }
  }
  return std::nullopt;
}

bool AreaBits::Clear(unsigned offset, unsigned order) {
  HA_CHECK(order <= kMaxBitfieldOrder);
  const unsigned run = 1u << order;
  HA_CHECK(offset % run == 0);
  HA_CHECK(offset + run <= kFramesPerHuge);
  if (order > kMaxSingleWordOrder) {
    // Reject plainly-invalid frees first (some word not fully set), then
    // claim the free via CAS on the first word so that two racing frees
    // of the same run cannot both succeed (the previous load-check +
    // plain stores let both pass the check and double-credit the
    // counters). Whoever wins the first-word CAS owns the whole run: no
    // other allocation can exist inside it, so the remaining words must
    // still be ~0 when released.
    const unsigned words_per_run = run / 64;
    const unsigned base = offset / 64;
    for (unsigned w = 0; w < words_per_run; ++w) {
      if (words_[base + w].load(std::memory_order_acquire) != ~0ull) {
        return false;  // not an allocated run of this order
      }
    }
    uint64_t expected = ~0ull;
    if (!words_[base].compare_exchange_strong(expected, 0,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
      return false;  // double free
    }
    for (unsigned w = 1; w < words_per_run; ++w) {
      const uint64_t word = words_[base + w].exchange(
          0, std::memory_order_acq_rel);
      HA_CHECK(word == ~0ull);  // run owner: words cannot change under us
    }
    return true;
  }
  const uint64_t mask = (order == 6) ? ~0ull : ((1ull << run) - 1);
  const unsigned w = offset / 64;
  const unsigned shift = offset % 64;

  Atomic<uint64_t>& word = words_[w];
  uint64_t current = word.load(std::memory_order_acquire);
  for (;;) {
    if ((current & (mask << shift)) != (mask << shift)) {
      return false;  // double free (some bit already clear)
    }
    const uint64_t desired = current & ~(mask << shift);
    if (word.compare_exchange_weak(current, desired,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      return true;
    }
  }
}

bool AreaBits::IsFree(unsigned offset, unsigned order) const {
  const unsigned run = 1u << order;
  HA_CHECK(order <= kMaxBitfieldOrder);
  HA_CHECK(offset % run == 0 && offset + run <= kFramesPerHuge);
  if (order > kMaxSingleWordOrder) {
    for (unsigned w = offset / 64; w < (offset + run) / 64; ++w) {
      if (words_[w].load(std::memory_order_acquire) != 0) {
        return false;
      }
    }
    return true;
  }
  const uint64_t mask = (order == 6) ? ~0ull : ((1ull << run) - 1);
  const uint64_t word = words_[offset / 64].load(std::memory_order_acquire);
  return (word & (mask << (offset % 64))) == 0;
}

unsigned AreaBits::CountSet() const {
  unsigned total = 0;
  for (unsigned w = 0; w < kWordsPerArea; ++w) {
    total += static_cast<unsigned>(
        std::popcount(words_[w].load(std::memory_order_relaxed)));
  }
  return total;
}

void AreaBits::FillAll() {
  for (unsigned w = 0; w < kWordsPerArea; ++w) {
    words_[w].store(~0ull, std::memory_order_release);
  }
}

}  // namespace hyperalloc::llfree
