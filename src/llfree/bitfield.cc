#include "src/llfree/bitfield.h"

#include <bit>

#include "src/base/check.h"

namespace hyperalloc::llfree {

std::optional<unsigned> AreaBits::Set(unsigned order, unsigned start_hint) {
  HA_CHECK(order <= kMaxBitfieldOrder);
  if (order > kMaxSingleWordOrder) {
    return SetMultiWord(order, start_hint);
  }
  const unsigned run = 1u << order;
  const uint64_t mask = (order == 6) ? ~0ull : ((1ull << run) - 1);
  const unsigned first_word = (start_hint / 64) % kWordsPerArea;
  // Run-aligned in-word position of the hint; the first word scanned
  // starts there and wraps so the hinted run itself is tried first.
  const unsigned first_pos = (start_hint % 64) & ~(run - 1);

  for (unsigned i = 0; i < kWordsPerArea; ++i) {
    const unsigned w = (first_word + i) % kWordsPerArea;
    const unsigned start_pos = (i == 0) ? first_pos : 0;
    Atomic<uint64_t>& word = words_[w];
    uint64_t current = word.load(std::memory_order_acquire);
    for (;;) {
      // Find an aligned zero run in `current`, starting at the hinted
      // position and wrapping within the word.
      int shift = -1;
      for (unsigned j = 0; j < 64; j += run) {
        const unsigned pos = (start_pos + j) % 64;
        if ((current & (mask << pos)) == 0) {
          shift = static_cast<int>(pos);
          break;
        }
      }
      if (shift < 0) {
        break;  // word full for this order; next word
      }
      const uint64_t desired = current | (mask << shift);
      if (word.compare_exchange_weak(current, desired,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        return w * 64 + static_cast<unsigned>(shift);
      }
      // CAS failed: `current` reloaded; retry within this word.
    }
  }
  return std::nullopt;
}

unsigned AreaBits::SetBatch(unsigned order, unsigned count,
                            unsigned start_hint, unsigned* offsets) {
  HA_CHECK(order <= kMaxSingleWordOrder);
  const unsigned run = 1u << order;
  const uint64_t mask = (order == 6) ? ~0ull : ((1ull << run) - 1);
  const unsigned first_word = (start_hint / 64) % kWordsPerArea;
  unsigned claimed = 0;

  for (unsigned i = 0; i < kWordsPerArea && claimed < count; ++i) {
    const unsigned w = (first_word + i) % kWordsPerArea;
    Atomic<uint64_t>& word = words_[w];
    uint64_t current = word.load(std::memory_order_acquire);
    for (;;) {
      // Build a claim mask covering as many free aligned runs as this
      // word holds (up to the remaining count), then take them all with
      // one CAS.
      uint64_t claim = 0;
      unsigned runs = 0;
      if (order == 0) {
        // countr_one on the occupied view jumps straight to the lowest
        // zero bit — no per-position scan.
        uint64_t occupied = current;
        while (runs < count - claimed) {
          const unsigned pos =
              static_cast<unsigned>(std::countr_one(occupied));
          if (pos >= 64) {
            break;
          }
          claim |= 1ull << pos;
          occupied |= 1ull << pos;
          ++runs;
        }
      } else {
        for (unsigned pos = 0; pos < 64 && runs < count - claimed;
             pos += run) {
          if (((current | claim) & (mask << pos)) == 0) {
            claim |= mask << pos;
            ++runs;
          }
        }
      }
      if (runs == 0) {
        break;  // word full for this order; next word
      }
      if (word.compare_exchange_weak(current, current | claim,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        // Extract the claimed run offsets from the claim mask.
        uint64_t picked = claim;
        while (picked != 0) {
          const unsigned pos =
              static_cast<unsigned>(std::countr_zero(picked));
          offsets[claimed++] = w * 64 + pos;
          picked &= ~(mask << pos);
        }
        break;
      }
      // CAS failed: `current` reloaded; rebuild the claim for this word.
    }
  }
  return claimed;
}

std::optional<unsigned> AreaBits::SetMultiWord(unsigned order,
                                               unsigned start_hint) {
  // Orders 7..8 cover 2/4 naturally aligned whole words. Claim the run
  // word-by-word (each word 0 -> ~0); on a conflict, roll back the words
  // already taken. Lock-free: every step is a CAS, rollback cannot fail.
  // The hint selects which run-aligned word group is tried first,
  // wrapping over the area.
  const unsigned words_per_run = (1u << order) / 64;
  const unsigned num_runs = kWordsPerArea / words_per_run;
  const unsigned first_run = ((start_hint / 64) / words_per_run) % num_runs;
  for (unsigned r = 0; r < num_runs; ++r) {
    const unsigned base = ((first_run + r) % num_runs) * words_per_run;
    unsigned claimed = 0;
    for (; claimed < words_per_run; ++claimed) {
      uint64_t expected = 0;
      if (!words_[base + claimed].compare_exchange_strong(
              expected, ~0ull, std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        break;
      }
    }
    if (claimed == words_per_run) {
      return base * 64;
    }
    while (claimed-- > 0) {
      words_[base + claimed].store(0, std::memory_order_release);
    }
  }
  return std::nullopt;
}

bool AreaBits::Clear(unsigned offset, unsigned order) {
  HA_CHECK(order <= kMaxBitfieldOrder);
  const unsigned run = 1u << order;
  HA_CHECK(offset % run == 0);
  HA_CHECK(offset + run <= kFramesPerHuge);
  if (order > kMaxSingleWordOrder) {
    // Reject plainly-invalid frees first (some word not fully set), then
    // claim the free via CAS on the first word so that two racing frees
    // of the same run cannot both succeed (the previous load-check +
    // plain stores let both pass the check and double-credit the
    // counters). Whoever wins the first-word CAS owns the whole run: no
    // other allocation can exist inside it, so the remaining words must
    // still be ~0 when released.
    const unsigned words_per_run = run / 64;
    const unsigned base = offset / 64;
    for (unsigned w = 0; w < words_per_run; ++w) {
      if (words_[base + w].load(std::memory_order_acquire) != ~0ull) {
        return false;  // not an allocated run of this order
      }
    }
    uint64_t expected = ~0ull;
    if (!words_[base].compare_exchange_strong(expected, 0,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
      return false;  // double free
    }
    for (unsigned w = 1; w < words_per_run; ++w) {
      const uint64_t word = words_[base + w].exchange(
          0, std::memory_order_acq_rel);
      HA_CHECK(word == ~0ull);  // run owner: words cannot change under us
    }
    return true;
  }
  const uint64_t mask = (order == 6) ? ~0ull : ((1ull << run) - 1);
  const unsigned w = offset / 64;
  const unsigned shift = offset % 64;

  Atomic<uint64_t>& word = words_[w];
  uint64_t current = word.load(std::memory_order_acquire);
  for (;;) {
    if ((current & (mask << shift)) != (mask << shift)) {
      return false;  // double free (some bit already clear)
    }
    const uint64_t desired = current & ~(mask << shift);
    if (word.compare_exchange_weak(current, desired,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      return true;
    }
  }
}

bool AreaBits::ClearMask(unsigned w, uint64_t mask) {
  HA_CHECK(w < kWordsPerArea);
  HA_CHECK(mask != 0);
  Atomic<uint64_t>& word = words_[w];
  uint64_t current = word.load(std::memory_order_acquire);
  for (;;) {
    if ((current & mask) != mask) {
      return false;  // some bit already clear: double free in the batch
    }
    if (word.compare_exchange_weak(current, current & ~mask,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      return true;
    }
  }
}

bool AreaBits::IsFree(unsigned offset, unsigned order) const {
  const unsigned run = 1u << order;
  HA_CHECK(order <= kMaxBitfieldOrder);
  HA_CHECK(offset % run == 0 && offset + run <= kFramesPerHuge);
  if (order > kMaxSingleWordOrder) {
    for (unsigned w = offset / 64; w < (offset + run) / 64; ++w) {
      if (words_[w].load(std::memory_order_acquire) != 0) {
        return false;
      }
    }
    return true;
  }
  const uint64_t mask = (order == 6) ? ~0ull : ((1ull << run) - 1);
  const uint64_t word = words_[offset / 64].load(std::memory_order_acquire);
  return (word & (mask << (offset % 64))) == 0;
}

unsigned AreaBits::CountSet() const {
  unsigned total = 0;
  for (unsigned w = 0; w < kWordsPerArea; ++w) {
    total += static_cast<unsigned>(
        std::popcount(words_[w].load(std::memory_order_relaxed)));
  }
  return total;
}

void AreaBits::FillAll() {
  for (unsigned w = 0; w < kWordsPerArea; ++w) {
    words_[w].store(~0ull, std::memory_order_release);
  }
}

}  // namespace hyperalloc::llfree
