// Market-driven memory allocation across VMs (paper §6 and the Ginseng
// line of work cited in §7): physical memory carries a price that rises
// with host scarcity; each tenant has a budget, and the orchestrator
// periodically sets every VM's hard limit to what the tenant can afford
// — "with a price tag at each frame, we have an objective measure" for
// reclamation decisions, and tenants get a monetary incentive to give
// back unused memory immediately (the IaaS-follows-FaaS billing trend
// from §1).
//
// Policy per tick:
//   price        = base_price / (1 - utilization)^scarcity  (clamped)
//   demand_i     = guest used memory + working headroom
//   affordable_i = budget_i / price
//   limit_i      = clamp(min(demand_i, affordable_i))
// and every tenant is billed limit_i * price * dt (GiB-seconds pricing,
// like AWS Lambda).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/guest/guest_vm.h"
#include "src/hv/deflator.h"
#include "src/hv/host_memory.h"
#include "src/sim/simulation.h"

namespace hyperalloc::hv {

struct MarketConfig {
  sim::Time period = 10 * sim::kSec;
  // Credits per GiB-second when the host is empty.
  double base_price = 1.0;
  double max_price = 64.0;
  double scarcity_exponent = 2.0;
  // Headroom a tenant keeps above its current usage (growth room).
  uint64_t headroom_bytes = 512 * kMiB;
  uint64_t min_limit_bytes = 512 * kMiB;
};

// The pricing core as free functions, so other control loops (the fleet
// engine's market policy, src/fleet/policy.cc) can price memory without
// owning a MemoryMarket instance or its tick scheduling.
//
// Spot price at the given pool utilization in [0, 1]:
//   base_price / (1 - utilization)^scarcity, clamped to max_price.
double MarketPrice(const MarketConfig& config, double utilization);

// The limit one tenant can justify at `price`: min(demand, affordable)
// clamped to [min(min_limit, memory), memory], where
//   demand     = used_bytes + headroom
//   affordable = budget_per_s / price  (in GiB).
uint64_t MarketTargetLimit(const MarketConfig& config, double price,
                           uint64_t used_bytes, double budget_per_s,
                           uint64_t memory_bytes);

class MemoryMarket {
 public:
  MemoryMarket(sim::Simulation* sim, HostMemory* host,
               const MarketConfig& config = {});

  // `budget_per_s` is the tenant's spending cap in credits per second.
  // Returns the tenant index (for billing queries).
  size_t Register(guest::GuestVm* vm, Deflator* deflator,
                  double budget_per_s);

  void Start();
  void Stop();

  // Runs one pricing/resize round immediately (also used by tests).
  void Tick();

  double current_price() const { return price_; }
  double BilledCredits(size_t tenant) const;
  uint64_t CurrentLimit(size_t tenant) const;

 private:
  struct Tenant {
    guest::GuestVm* vm;
    Deflator* deflator;
    double budget_per_s;
    double billed = 0.0;
  };

  double PriceForUtilization(double utilization) const;
  void ScheduleNext();

  sim::Simulation* sim_;
  HostMemory* host_;
  MarketConfig config_;
  std::vector<Tenant> tenants_;
  double price_;
  sim::Time last_tick_ = 0;
  bool running_ = false;
};

}  // namespace hyperalloc::hv
