#include "src/hv/ept.h"

#include <bit>

#include "src/base/check.h"
#include "src/trace/trace.h"

namespace hyperalloc::hv {

Ept::Ept(uint64_t frames, HostMemory* host)
    : frames_(frames), host_(host), bitmap_((frames + 63) / 64, 0) {}

bool Ept::IsMapped(FrameId frame) const {
  HA_CHECK(frame < frames_);
  return (bitmap_[frame / 64] >> (frame % 64)) & 1;
}

uint64_t Ept::CountMapped(FrameId first, uint64_t count) const {
  HA_CHECK(first + count <= frames_);
  uint64_t mapped = 0;
  // Word-wise popcount over the aligned middle; bit loop at the edges.
  FrameId frame = first;
  const FrameId end = first + count;
  while (frame < end && frame % 64 != 0) {
    mapped += (bitmap_[frame / 64] >> (frame % 64)) & 1;
    ++frame;
  }
  while (frame + 64 <= end) {
    mapped += static_cast<uint64_t>(std::popcount(bitmap_[frame / 64]));
    frame += 64;
  }
  while (frame < end) {
    mapped += (bitmap_[frame / 64] >> (frame % 64)) & 1;
    ++frame;
  }
  return mapped;
}

uint64_t Ept::Map(FrameId first, uint64_t count) {
  HA_CHECK(first + count <= frames_);
  const uint64_t missing = count - CountMapped(first, count);
  if (missing == 0) {
    return 0;
  }
  if (const auto kind = fault::Poll(fault_, fault::Site::kEptMap)) {
    last_injected_kind_ = *kind;
    ++injected_faults_;
    HA_COUNT("fault.ept_map");
    HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kInject, first,
                   count);
    return kFaultInjected;
  }
  if (host_ != nullptr && !host_->TryReserve(missing)) {
    return kNoHostMemory;
  }
  for (FrameId frame = first; frame < first + count; ++frame) {
    bitmap_[frame / 64] |= 1ull << (frame % 64);
  }
  mapped_ += missing;
  ++total_map_ops_;
  HA_COUNT("ept.map_ops");
  HA_COUNT_N("ept.map_frames", missing);
  HA_TRACE_EVENT(trace::Category::kEpt, trace::Op::kMap, first, count);
  return missing;
}

uint64_t Ept::Unmap(FrameId first, uint64_t count) {
  HA_CHECK(first + count <= frames_);
  const uint64_t present = CountMapped(first, count);
  if (present == 0) {
    return 0;
  }
  if (const auto kind = fault::Poll(fault_, fault::Site::kEptUnmap)) {
    last_injected_kind_ = *kind;
    ++injected_faults_;
    HA_COUNT("fault.ept_unmap");
    HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kInject, first,
                   count);
    return kFaultInjected;
  }
  for (FrameId frame = first; frame < first + count; ++frame) {
    bitmap_[frame / 64] &= ~(1ull << (frame % 64));
  }
  HA_DCHECK(mapped_ >= present);  // underflow = bitmap/counter divergence
  mapped_ -= present;
  if (host_ != nullptr) {
    host_->Release(present);
  }
  ++total_unmap_ops_;
  // One ranged TLB flush covers the whole batch (vs `present` single-page
  // flushes under per-page unmapping).
  ++tlb_range_flushes_;
  tlb_flushed_frames_ += present;
  HA_COUNT("ept.unmap_ops");
  HA_COUNT_N("ept.unmap_frames", present);
  HA_COUNT("ept.tlb_range_flush");
  HA_TRACE_EVENT(trace::Category::kEpt, trace::Op::kUnmap, first, count);
  return present;
}

}  // namespace hyperalloc::hv
