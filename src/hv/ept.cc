#include "src/hv/ept.h"

#include <bit>

#include "src/base/check.h"
#include "src/trace/trace.h"

namespace hyperalloc::hv {

Ept::Ept(uint64_t frames, HostMemory* host)
    : frames_(frames),
      host_(host),
      bitmap_((frames + 63) / 64, 0),
      huge_entry_((HugesForFrames(frames) + 63) / 64, 0) {}

bool Ept::HasHugeEntry(HugeId huge) const {
  HA_CHECK(huge < HugesForFrames(frames_));
  return (huge_entry_[huge / 64] >> (huge % 64)) & 1;
}

bool Ept::IsMapped(FrameId frame) const {
  HA_CHECK(frame < frames_);
  return (bitmap_[frame / 64] >> (frame % 64)) & 1;
}

uint64_t Ept::CountMapped(FrameId first, uint64_t count) const {
  HA_CHECK(first + count <= frames_);
  uint64_t mapped = 0;
  // Word-wise popcount over the aligned middle; bit loop at the edges.
  FrameId frame = first;
  const FrameId end = first + count;
  while (frame < end && frame % 64 != 0) {
    mapped += (bitmap_[frame / 64] >> (frame % 64)) & 1;
    ++frame;
  }
  while (frame + 64 <= end) {
    mapped += static_cast<uint64_t>(std::popcount(bitmap_[frame / 64]));
    frame += 64;
  }
  while (frame < end) {
    mapped += (bitmap_[frame / 64] >> (frame % 64)) & 1;
    ++frame;
  }
  return mapped;
}

uint64_t Ept::Map(FrameId first, uint64_t count) {
  HA_CHECK(first + count <= frames_);
  const uint64_t missing = count - CountMapped(first, count);
  if (missing == 0) {
    return 0;
  }
  if (const auto kind = fault::Poll(fault_, fault::Site::kEptMap)) {
    last_injected_kind_ = *kind;
    ++injected_faults_;
    HA_COUNT("fault.ept_map");
    HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kInject, first,
                   count);
    return kFaultInjected;
  }
  if (host_ != nullptr && !host_->TryReserve(missing)) {
    return kNoHostMemory;
  }
  // 2M-entry promotion: a huge frame the range wholly covers and that had
  // nothing mapped before this call is installed as one 2 MiB entry
  // (pre-call state, so the tally runs before the bitmap is touched).
  for (HugeId huge = FrameToHuge(first);
       huge <= FrameToHuge(first + count - 1); ++huge) {
    const FrameId hf = HugeToFrame(huge);
    if (hf < first || hf + kFramesPerHuge > first + count) {
      continue;  // partial coverage: stays (or fills in as) 4K entries
    }
    if (CountMapped(hf, kFramesPerHuge) == 0) {
      huge_entry_[huge / 64] |= 1ull << (huge % 64);
      ++maps_2m_;
      ++mapped_2m_;
      HA_COUNT("ept.map_2m");
    }
  }
  for (FrameId frame = first; frame < first + count; ++frame) {
    bitmap_[frame / 64] |= 1ull << (frame % 64);
  }
  mapped_ += missing;
  ++total_map_ops_;
  HA_COUNT("ept.map_ops");
  HA_COUNT_N("ept.map_frames", missing);
  HA_TRACE_EVENT(trace::Category::kEpt, trace::Op::kMap, first, count);
  return missing;
}

uint64_t Ept::Unmap(FrameId first, uint64_t count) {
  HA_CHECK(first + count <= frames_);
  const uint64_t present = CountMapped(first, count);
  if (present == 0) {
    return 0;
  }
  if (const auto kind = fault::Poll(fault_, fault::Site::kEptUnmap)) {
    last_injected_kind_ = *kind;
    ++injected_faults_;
    HA_COUNT("fault.ept_unmap");
    HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kInject, first,
                   count);
    return kFaultInjected;
  }
  const HugeUnmapAccounting huge = TallyHugeUnmap(first, count);
  for (FrameId frame = first; frame < first + count; ++frame) {
    bitmap_[frame / 64] &= ~(1ull << (frame % 64));
  }
  HA_DCHECK(mapped_ >= present);  // underflow = bitmap/counter divergence
  mapped_ -= present;
  if (host_ != nullptr) {
    host_->Release(present);
  }
  ++total_unmap_ops_;
  // One ranged TLB flush covers the whole batch (vs `present` single-page
  // flushes under per-page unmapping).
  ++tlb_range_flushes_;
  tlb_flushed_frames_ += present;
  // What the flush actually invalidated: one 2M entry per wholly-covered
  // huge mapping, 4K entries for everything else that was present
  // (including the demoted remainder of partially-covered 2M entries).
  unmaps_2m_ += huge.whole_2m;
  demotions_2m_ += huge.demoted;
  entries_invalidated_2m_ += huge.whole_2m;
  HA_DCHECK(present >= huge.whole_2m * kFramesPerHuge);
  entries_invalidated_4k_ += present - huge.whole_2m * kFramesPerHuge;
  huge_unmaps_total_ += huge.whole_full;
  huge_unmaps_2m_ += huge.whole_2m;
  HA_COUNT("ept.unmap_ops");
  HA_COUNT_N("ept.unmap_frames", present);
  HA_COUNT("ept.tlb_range_flush");
  HA_TRACE_EVENT(trace::Category::kEpt, trace::Op::kUnmap, first, count);
  return present;
}

Ept::HugeUnmapAccounting Ept::TallyHugeUnmap(FrameId first, uint64_t count) {
  HugeUnmapAccounting out;
  for (HugeId huge = FrameToHuge(first);
       huge <= FrameToHuge(first + count - 1); ++huge) {
    const FrameId hf = HugeToFrame(huge);
    const bool whole = hf >= first && hf + kFramesPerHuge <= first + count;
    const bool entry = (huge_entry_[huge / 64] >> (huge % 64)) & 1;
    if (whole) {
      // Invariant: a live 2M entry implies all 512 subframes mapped (any
      // partial unmap demotes it first), so `entry` ⟹ fully present.
      if (entry || CountMapped(hf, kFramesPerHuge) == kFramesPerHuge) {
        ++out.whole_full;
      }
      if (entry) {
        ++out.whole_2m;
        HA_COUNT("ept.unmap_2m");
      }
    } else if (entry) {
      // Partial coverage splits the 2M entry into 4K entries before the
      // covered part is invalidated (huge→base demotion, §4.14).
      ++out.demoted;
      HA_COUNT("ept.demote_2m");
    }
    if (entry) {
      huge_entry_[huge / 64] &= ~(1ull << (huge % 64));
      HA_DCHECK(mapped_2m_ > 0);
      --mapped_2m_;
    }
  }
  return out;
}

}  // namespace hyperalloc::hv
