#include "src/hv/market.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"

namespace hyperalloc::hv {

double MarketPrice(const MarketConfig& config, double utilization) {
  utilization = std::clamp(utilization, 0.0, 0.99);
  const double price =
      config.base_price /
      std::pow(1.0 - utilization, config.scarcity_exponent);
  return std::min(price, config.max_price);
}

uint64_t MarketTargetLimit(const MarketConfig& config, double price,
                           uint64_t used_bytes, double budget_per_s,
                           uint64_t memory_bytes) {
  HA_CHECK(price > 0.0);
  const uint64_t demand = used_bytes + config.headroom_bytes;
  const uint64_t affordable = static_cast<uint64_t>(
      budget_per_s / price * static_cast<double>(kGiB));
  // Small fleet VMs can sit below min_limit_bytes entirely; never clamp
  // the floor above what the VM even has.
  const uint64_t lo = std::min(config.min_limit_bytes, memory_bytes);
  return std::clamp(std::min(demand, affordable), lo, memory_bytes);
}

MemoryMarket::MemoryMarket(sim::Simulation* sim, HostMemory* host,
                           const MarketConfig& config)
    : sim_(sim), host_(host), config_(config),
      price_(config.base_price) {
  HA_CHECK(sim != nullptr && host != nullptr);
  HA_CHECK(config.base_price > 0.0);
}

size_t MemoryMarket::Register(guest::GuestVm* vm, Deflator* deflator,
                              double budget_per_s) {
  HA_CHECK(vm != nullptr && deflator != nullptr);
  HA_CHECK(budget_per_s > 0.0);
  tenants_.push_back({vm, deflator, budget_per_s});
  return tenants_.size() - 1;
}

double MemoryMarket::PriceForUtilization(double utilization) const {
  return MarketPrice(config_, utilization);
}

void MemoryMarket::Tick() {
  const sim::Time now = sim_->now();
  const double dt_s =
      static_cast<double>(now - last_tick_) / static_cast<double>(sim::kSec);
  last_tick_ = now;

  // Spot price from host scarcity (one consistent pool reading).
  const MemorySnapshot pool = host_->snapshot();
  price_ = PriceForUtilization(static_cast<double>(pool.used) /
                               static_cast<double>(pool.total));

  for (Tenant& tenant : tenants_) {
    // Bill the elapsed interval at the *previous* limit (GiB-seconds).
    const double limit_gib =
        static_cast<double>(tenant.deflator->limit_bytes()) /
        static_cast<double>(kGiB);
    tenant.billed += limit_gib * price_ * dt_s;

    // What the tenant wants vs what it can afford at this price. Guest
    // usage is the current limit minus what is still free inside the
    // guest (hypervisor-reclaimed frames are *not* demand).
    const uint64_t free_bytes = tenant.vm->FreeFrames() * kFrameSize;
    const uint64_t limit_now = tenant.deflator->limit_bytes();
    const uint64_t used =
        limit_now > free_bytes ? limit_now - free_bytes : 0;
    const uint64_t target =
        MarketTargetLimit(config_, price_, used, tenant.budget_per_s,
                          tenant.vm->config().memory_bytes);
    // Hysteresis: move only on meaningful change, and never preempt an
    // in-flight resize.
    const uint64_t current = tenant.deflator->limit_bytes();
    const uint64_t delta =
        target > current ? target - current : current - target;
    if (delta >= 256 * kMiB && !tenant.deflator->busy()) {
      tenant.deflator->Request({.target_bytes = target, .done = {}});
    }
  }
}

void MemoryMarket::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  last_tick_ = sim_->now();
  ScheduleNext();
}

void MemoryMarket::ScheduleNext() {
  sim_->After(config_.period, [this] {
    if (running_) {
      Tick();
      ScheduleNext();
    }
  });
}

void MemoryMarket::Stop() { running_ = false; }

double MemoryMarket::BilledCredits(size_t tenant) const {
  HA_CHECK(tenant < tenants_.size());
  return tenants_[tenant].billed;
}

uint64_t MemoryMarket::CurrentLimit(size_t tenant) const {
  HA_CHECK(tenant < tenants_.size());
  return tenants_[tenant].deflator->limit_bytes();
}

}  // namespace hyperalloc::hv
