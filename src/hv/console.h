// QEMU-HMP-style management console over a Deflator (paper §3.3: the
// adaptable hard limit is "triggered from the QEMU console or QEMU's QOM
// API"). Text commands in, text replies out — the integration surface a
// cloud orchestrator would script against.
//
// Commands:
//   balloon <size>     set the VM's memory limit (e.g. "balloon 2G",
//                      "balloon 512M"); asynchronous, completes in
//                      virtual time
//   info balloon       current and maximum memory limit
//   info stats         RSS, free guest memory, reclamation CPU time
//   auto on|off        start/stop automatic reclamation
//   help               command list
#pragma once

#include <string>
#include <string_view>

#include "src/guest/guest_vm.h"
#include "src/hv/deflator.h"

namespace hyperalloc::hv {

class Console {
 public:
  Console(guest::GuestVm* vm, Deflator* deflator);

  // Executes one command line; returns the reply text. Limit changes are
  // kicked off asynchronously ("request queued"); run the simulation to
  // complete them.
  std::string Execute(std::string_view line);

  // Whether a previously issued balloon command is still in flight.
  bool busy() const { return busy_; }

 private:
  std::string Balloon(std::string_view argument);
  std::string InfoBalloon() const;
  std::string InfoStats() const;

  guest::GuestVm* vm_;
  Deflator* deflator_;
  bool busy_ = false;
};

// Parses "2G", "512M", "1024K", "4096" (bytes) size arguments.
// Returns 0 on parse failure.
uint64_t ParseSize(std::string_view text);

}  // namespace hyperalloc::hv
