#include "src/hv/swap.h"

#include <algorithm>

#include "src/base/check.h"

namespace hyperalloc::hv {

SwapManager::SwapManager(sim::Simulation* sim, HostMemory* host,
                         const SwapConfig& config)
    : sim_(sim), host_(host), config_(config) {
  HA_CHECK(sim != nullptr && host != nullptr);
}

void SwapManager::Register(guest::GuestVm* vm,
                           std::function<bool(HugeId)> is_hot) {
  HA_CHECK(vm != nullptr);
  auto state = std::make_unique<VmState>();
  state->vm = vm;
  state->is_hot = std::move(is_hot);
  state->swapped.assign((vm->total_frames() + 63) / 64, 0);
  VmState* raw = state.get();
  vm->SetHostPressureHandler(
      [this, raw](uint64_t frames) { return MakeRoom(raw, frames); });
  vm->SetFaultSurcharge([this, raw](FrameId first, uint64_t count) {
    return OnFault(raw, first, count);
  });
  vms_.push_back(std::move(state));
}

bool SwapManager::MakeRoom(VmState* requester, uint64_t frames) {
  const uint64_t want = std::max(frames, config_.batch_frames);
  uint64_t freed = 0;
  // Victim order: round-robin over the *other* VMs first; the faulting
  // VM itself only as a last resort (otherwise a touching loop would
  // evict its own freshly faulted pages).
  std::vector<VmState*> order;
  for (size_t i = 0; i < vms_.size(); ++i) {
    VmState* candidate = vms_[(next_victim_ + i) % vms_.size()].get();
    if (candidate != requester) {
      order.push_back(candidate);
    }
  }
  next_victim_ = (next_victim_ + 1) % vms_.size();
  order.push_back(requester);
  for (size_t attempts = 0; attempts < order.size() && freed < want;
       ++attempts) {
    VmState& victim = *order[attempts];
    guest::GuestVm& vm = *victim.vm;
    const uint64_t total = vm.total_frames();
    uint64_t batch_ns = 0;
    // Two passes: cold frames first (per the shared hotness hints), hot
    // frames only if nothing cold remains.
    for (int pass = 0; pass < 2 && freed < want; ++pass) {
      uint64_t scanned = 0;
      while (freed < want && scanned < total) {
        const FrameId f = victim.clock_hand;
        victim.clock_hand = (victim.clock_hand + 1) % total;
        ++scanned;
        if (!vm.ept().IsMapped(f)) {
          continue;
        }
        if (pass == 0 && victim.is_hot && victim.is_hot(FrameToHuge(f))) {
          continue;  // recently accessed: spare it on the first pass
        }
        if (swap_used_ * kFrameSize >= config_.capacity_bytes) {
          return freed >= frames;  // swap device full
        }
        vm.ept().Unmap(f, 1);
        victim.swapped[f / 64] |= 1ull << (f % 64);
        ++swap_used_;
        ++swapped_out_;
        ++freed;
        batch_ns += config_.swap_out_4k_ns;
      }
      if (!victim.is_hot) {
        break;  // no oracle: one pass is exhaustive
      }
    }
    if (batch_ns > 0) {
      sim_->AdvanceClock(batch_ns);  // writeback to the swap device
    }
  }
  return freed >= frames;
}

uint64_t SwapManager::OnFault(VmState* state, FrameId first,
                              uint64_t count) {
  uint64_t surcharge = 0;
  for (FrameId f = first; f < first + count; ++f) {
    uint64_t& word = state->swapped[f / 64];
    const uint64_t bit = 1ull << (f % 64);
    if (word & bit) {
      word &= ~bit;
      HA_DCHECK(swap_used_ > 0);
      --swap_used_;
      ++swapped_in_;
      surcharge += config_.swap_in_4k_ns;
    }
  }
  return surcharge;
}

}  // namespace hyperalloc::hv
