// Calibrated virtual-time costs of hypervisor/guest operations.
//
// Every protocol path charges these constants to the simulation clock.
// The constants are calibrated against the per-operation rates reported in
// the paper (§5.3, Fig. 4) — see DESIGN.md §1 "Calibration". The headline
// ratios (e.g. HyperAlloc 362× faster than virtio-balloon at shrinking)
// are NOT encoded anywhere; they emerge from operation counts ×
// granularity × batching on the different code paths.
#pragma once

#include <cstdint>

#include "src/sim/simulation.h"
#include "src/trace/span.h"
#include "src/trace/trace.h"

namespace hyperalloc::hv {

struct CostModel {
  // --- transitions & communication -------------------------------------
  // VM exit + KVM dispatch + QEMU user-space wakeup + resume.
  uint64_t hypercall_ns = 2000;
  // Processing one virtqueue descriptor element.
  uint64_t virtqueue_element_ns = 150;

  // --- host page-table manipulation (QEMU-level: madvise/DONTNEED) -----
  // Fixed syscall + VMA-walk cost per madvise invocation.
  uint64_t madvise_syscall_ns = 2500;
  // TLB shootdown broadcast per unmap invocation.
  uint64_t tlb_shootdown_ns = 1500;
  // Incremental cost per unmapped 4 KiB page / 2 MiB huge page.
  uint64_t madvise_per_4k_ns = 120;
  uint64_t madvise_per_2m_ns = 5200;
  // Remote-core interruption caused by the shootdown IPIs (charged as an
  // aggregate load on every vCPU while unmapping runs).
  uint64_t shootdown_allcpu_4k_ns = 1300;
  uint64_t shootdown_allcpu_2m_ns = 1500;

  // --- EPT faults & population ------------------------------------------
  uint64_t ept_fault_4k_ns = 1500;
  uint64_t ept_fault_2m_ns = 2600;
  // HyperAlloc's explicit install hypercall: an EPT-fault-equivalent plus
  // one extra KVM->QEMU context switch (paper: "about 6 percent slower").
  uint64_t install_hypercall_2m_ns = 2750;
  // Host-side zero + map per 4 KiB when populating fresh memory.
  uint64_t populate_4k_ns = 700;
  // Guest write access to a mapped 4 KiB page (17 GiB/s, §5.3).
  uint64_t touch_4k_ns = 229;

  // --- guest-side driver work --------------------------------------------
  // Balloon driver: allocate + isolate one page for inflation.
  uint64_t guest_alloc_4k_ns = 400;
  uint64_t guest_alloc_2m_ns = 800;
  uint64_t guest_free_4k_ns = 300;
  uint64_t guest_free_2m_ns = 600;
  // Balloon deflate: per-element return processing (QEMU + guest).
  uint64_t balloon_deflate_4k_ns = 1100;
  uint64_t balloon_deflate_2m_ns = 7000;

  // --- virtio-mem hot(un)plug infrastructure -----------------------------
  // Per 2 MiB block: offline/online bookkeeping, memmap updates,
  // notifier chains — the dominant cost per the paper ("the main
  // bottleneck in both cases appears to be the hot(un)plugging
  // infrastructure").
  uint64_t vmem_unplug_block_ns = 48000;
  uint64_t vmem_plug_block_ns = 17000;
  // Guest page migration when unplugging used subblocks (per 4 KiB:
  // copy + remap + LRU bookkeeping).
  uint64_t migrate_4k_ns = 1000;

  // --- IOMMU / VFIO (device passthrough) ---------------------------------
  uint64_t iommu_map_2m_ns = 25000;
  uint64_t iommu_unmap_2m_ns = 25000;
  uint64_t iotlb_flush_ns = 6000;

  // --- HyperAlloc state transitions (shared-memory CAS paths) ------------
  // Reclaiming one untouched huge frame: area-entry CAS + tree-counter
  // update + R-array update (388 ns measured in the paper).
  uint64_t ha_reclaim_state_2m_ns = 388;
  // Returning one hard-reclaimed huge frame (229 ns in the paper).
  uint64_t ha_return_state_2m_ns = 229;
  // Auto-reclamation scan: per touched cache line (§3.3: 18 consecutive
  // cache lines per GiB of guest memory).
  uint64_t scan_cache_line_ns = 4;

  static CostModel Default() { return CostModel{}; }
};

// Charges `ns` of virtual time to `sim` and attributes it to the `name`
// latency histogram (e.g. "monitor.install_ns"), so traces break virtual
// time down per charging category. Returns `ns` for the caller's CPU
// accounting. `name` need not be a literal here: the registry lookup is
// uncached (charging sites are orders of magnitude colder than the
// counter macros' hot paths).
inline uint64_t ChargeTraced(sim::Simulation* sim, const char* name,
                             uint64_t ns) {
  sim->AdvanceClock(ns);
#if HYPERALLOC_TRACE
  trace::CounterRegistry::Global().FindOrCreateHistogram(name).Record(ns);
  trace::AttributeCharge(ns);
#else
  (void)name;
#endif
  return ns;
}

// Lightweight variant for per-element hot paths: advances the clock and
// attributes the charge to the innermost open span, without the
// histogram lookup. Returns `ns` for the caller's CPU accounting.
inline uint64_t Charge(sim::Simulation* sim, uint64_t ns) {
  sim->AdvanceClock(ns);
  trace::AttributeCharge(ns);
  return ns;
}

// Explicit-target variant: attributes to `span` instead of the
// innermost open span — for interleaved per-element loops where two
// layers alternate inside one slice (e.g. balloon deflate: device
// processing vs guest free) and span-per-element would flood the rings.
inline uint64_t ChargeSpan(sim::Simulation* sim, trace::Span* span,
                           uint64_t ns) {
  sim->AdvanceClock(ns);
  if (span != nullptr) {
    span->AddCharge(ns);
  }
  return ns;
}

}  // namespace hyperalloc::hv
