// Auxiliary hypervisor-shared state for non-LLFree guests (paper §6
// "Concept Generalization"):
//
//   "Nevertheless, if host and guest agree on an auxiliary memory-mapped
//    interface to exchange A and E, HyperAlloc is applicable."
//
// The guest's own allocator (e.g. the buddy allocator) keeps its
// pointer-linked internals private; alongside it, the guest maintains this
// densely packed per-huge-frame array of (A, E) pairs that the monitor
// maps and CASes exactly like LLFree's area index. A is updated by the
// guest on every allocation/free that changes a huge frame's occupancy;
// E is the hypervisor's evicted hint, and the guest must call install
// before using an evicted frame.
//
// Layout: 2 bits per huge frame packed in atomic 64-bit words
// (bit 0: A, bit 1: E) — offset-addressable, lock-free, no pointers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/base/check.h"
#include "src/base/types.h"

namespace hyperalloc::hv {

class AuxState {
 public:
  explicit AuxState(uint64_t num_huge)
      : num_huge_(num_huge),
        words_(std::make_unique<std::atomic<uint64_t>[]>(
            (num_huge * 2 + 63) / 64)) {
    for (uint64_t i = 0; i < (num_huge * 2 + 63) / 64; ++i) {
      words_[i].store(0, std::memory_order_relaxed);
    }
  }

  uint64_t size() const { return num_huge_; }
  uint64_t ByteSize() const { return ((num_huge_ * 2 + 63) / 64) * 8; }

  bool Allocated(HugeId huge) const { return Bit(huge, kABit); }
  bool Evicted(HugeId huge) const { return Bit(huge, kEBit); }

  // Guest side: occupancy transitions (idempotent).
  void SetAllocated(HugeId huge) { SetBit(huge, kABit); }
  void ClearAllocated(HugeId huge) { ClearBit(huge, kEBitNone, kABit); }

  // Hypervisor side: the evicted hint.
  void SetEvicted(HugeId huge) { SetBit(huge, kEBit); }
  void ClearEvicted(HugeId huge) { ClearBit(huge, kEBitNone, kEBit); }

  // Monitor reclaim transition: atomically claim a frame that is free and
  // (for `require_not_evicted`) not yet evicted. `hard` also sets A so
  // the guest cannot use the frame. Returns false if the frame was
  // allocated (or already evicted) at CAS time.
  bool TryReclaim(HugeId huge, bool hard) {
    std::atomic<uint64_t>& word = words_[huge / 32];
    const unsigned shift = (huge % 32) * 2;
    uint64_t current = word.load(std::memory_order_acquire);
    for (;;) {
      const uint64_t bits = (current >> shift) & 0x3;
      if ((bits & kABit) != 0 || (bits & kEBit) != 0) {
        return false;  // allocated or already evicted
      }
      uint64_t desired = current | (static_cast<uint64_t>(kEBit) << shift);
      if (hard) {
        desired |= static_cast<uint64_t>(kABit) << shift;
      }
      if (word.compare_exchange_weak(current, desired,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        return true;
      }
    }
  }

 private:
  static constexpr uint64_t kABit = 0x1;
  static constexpr uint64_t kEBit = 0x2;
  static constexpr uint64_t kEBitNone = 0x0;

  bool Bit(HugeId huge, uint64_t mask) const {
    HA_DCHECK(huge < num_huge_);
    return (words_[huge / 32].load(std::memory_order_acquire) >>
            ((huge % 32) * 2)) &
           mask;
  }

  void SetBit(HugeId huge, uint64_t mask) {
    HA_DCHECK(huge < num_huge_);
    words_[huge / 32].fetch_or(mask << ((huge % 32) * 2),
                               std::memory_order_acq_rel);
  }

  void ClearBit(HugeId huge, uint64_t, uint64_t mask) {
    HA_DCHECK(huge < num_huge_);
    words_[huge / 32].fetch_and(~(mask << ((huge % 32) * 2)),
                                std::memory_order_acq_rel);
  }

  uint64_t num_huge_;
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
};

}  // namespace hyperalloc::hv
