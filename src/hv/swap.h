// Host-level swapping — the hypervisor's last resort when the guests'
// accumulated memory demand exceeds physical memory (paper §6: "Here,
// hypervisors usually fallback to swapping").
//
// The SwapManager watches the host pool on behalf of its registered VMs.
// When a population request cannot be satisfied, it transparently swaps
// out host-backed pages of the least-recently-resized victim VM (EPT
// unmap + swap-write cost); the guest notices nothing until it touches a
// swapped page, which then pays a swap-in surcharge on top of the normal
// fault. This is precisely the "viscous" behaviour (§8) that HyperAlloc's
// cooperative reclamation avoids — compare bench/bench_overcommit.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/guest/guest_vm.h"
#include "src/hv/host_memory.h"
#include "src/sim/simulation.h"

namespace hyperalloc::hv {

struct SwapConfig {
  // NVMe-class backing device.
  uint64_t swap_out_4k_ns = 8000;
  uint64_t swap_in_4k_ns = 15000;
  // Frames swapped out per pressure event (batched writeback).
  uint64_t batch_frames = 4096;  // 16 MiB
  uint64_t capacity_bytes = 64ull * kGiB;
};

class SwapManager {
 public:
  SwapManager(sim::Simulation* sim, HostMemory* host,
              const SwapConfig& config = {});

  // Registers a VM: installs the host-pressure handler and the
  // fault-surcharge hook. Must be called before the VM populates memory.
  // `is_hot` (optional) is the §6 hotness oracle — typically backed by
  // the HyperAlloc monitor's shared hotness hints; hot huge frames are
  // only swapped when nothing cold is left.
  void Register(guest::GuestVm* vm,
                std::function<bool(HugeId)> is_hot = nullptr);

  uint64_t swapped_out_frames() const { return swapped_out_; }
  uint64_t swapped_in_frames() const { return swapped_in_; }
  uint64_t swap_used_frames() const { return swap_used_; }

 private:
  struct VmState {
    guest::GuestVm* vm;
    std::function<bool(HugeId)> is_hot;  // §6 hotness oracle (optional)
    std::vector<uint64_t> swapped;  // bitset per guest frame
    FrameId clock_hand = 0;         // victim scan position
  };

  // Frees at least `frames` host frames by swapping out mapped guest
  // memory; other VMs are victimized before the requester (the VM that
  // is currently faulting), clock-style within each.
  bool MakeRoom(VmState* requester, uint64_t frames);

  // Swap-in accounting for a VM's fault range; returns the surcharge.
  uint64_t OnFault(VmState* state, FrameId first, uint64_t count);

  sim::Simulation* sim_;
  HostMemory* host_;
  SwapConfig config_;
  std::vector<std::unique_ptr<VmState>> vms_;
  size_t next_victim_ = 0;
  uint64_t swapped_out_ = 0;
  uint64_t swapped_in_ = 0;
  uint64_t swap_used_ = 0;
};

}  // namespace hyperalloc::hv
