// Common interface of all VM de/inflation techniques (Table 1 of the
// paper): virtio-balloon (4 KiB), virtio-balloon-huge (2 MiB, Hu et al.),
// virtio-mem (Hildenbrand & Schulz), and HyperAlloc.
//
// Limit changes are *asynchronous*: the driver processes work in slices
// interleaved with the rest of the simulation (workload events, samplers),
// exactly as a real driver kthread interleaves with the workload. `done`
// fires in virtual time when the request completes (possibly partially —
// check limit_bytes()).
#pragma once

#include <cstdint>
#include <functional>

namespace hyperalloc::hv {

// CPU-time bookkeeping for the footprint experiments (Fig. 7's user/system
// columns): guest driver work, QEMU user-space work, and host kernel work
// (syscalls, page faults).
struct CpuAccounting {
  uint64_t guest_ns = 0;
  uint64_t host_user_ns = 0;
  uint64_t host_sys_ns = 0;

  uint64_t total() const { return guest_ns + host_user_ns + host_sys_ns; }
};

class Deflator {
 public:
  virtual ~Deflator() = default;

  virtual const char* name() const = 0;
  virtual bool dma_safe() const = 0;
  virtual bool supports_auto() const = 0;
  virtual uint64_t granularity_bytes() const = 0;

  // Moves the VM's (hard) memory limit toward `bytes`; `done` fires when
  // the operation has gone as far as it can. Must not be called while a
  // previous request is still in flight (check busy()).
  virtual void RequestLimit(uint64_t bytes, std::function<void()> done) = 0;
  virtual uint64_t limit_bytes() const = 0;
  virtual bool busy() const = 0;

  // Automatic (soft) reclamation, where supported.
  virtual void StartAuto() {}
  virtual void StopAuto() {}

  virtual const CpuAccounting& cpu() const = 0;
};

}  // namespace hyperalloc::hv
