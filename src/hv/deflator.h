// Common interface of all VM de/inflation techniques (Table 1 of the
// paper): virtio-balloon (4 KiB), virtio-balloon-huge (2 MiB, Hu et al.),
// virtio-mem (Hildenbrand & Schulz), and HyperAlloc.
//
// Limit changes are *asynchronous*: the driver processes work in slices
// interleaved with the rest of the simulation (workload events, samplers),
// exactly as a real driver kthread interleaves with the workload. `done`
// fires in virtual time when the request completes (possibly partially —
// check limit_bytes()).
#pragma once

#include <cstdint>
#include <functional>

#include "src/base/types.h"

namespace hyperalloc::hv {

// CPU-time bookkeeping for the footprint experiments (Fig. 7's user/system
// columns): guest driver work, QEMU user-space work, and host kernel work
// (syscalls, page faults).
struct CpuAccounting {
  uint64_t guest_ns = 0;
  uint64_t host_user_ns = 0;
  uint64_t host_sys_ns = 0;

  uint64_t total() const { return guest_ns + host_user_ns + host_sys_ns; }
};

// Static capabilities of one de/inflation technique (Table 1 columns),
// returned as a value so call sites take one consistent reading instead
// of four virtual calls.
struct DeflatorCaps {
  const char* name = "?";
  bool dma_safe = false;
  bool supports_auto = false;
  uint64_t granularity_bytes = kFrameSize;
};

// How far a resize request got and what it cost in recovery work — the
// partial-reclaim degradation contract (DESIGN.md §4.9): a request that
// cannot complete still leaves the backend's state machine legal and
// reports its progress here instead of pretending success.
struct ResizeOutcome {
  uint64_t target_bytes = 0;
  // The limit actually reached when the request finished.
  uint64_t achieved_bytes = 0;
  // achieved == target (no degradation).
  bool complete = false;
  // The per-request deadline expired before completion.
  bool timed_out = false;
  // The VM entered (or already was in) fault quarantine.
  bool quarantined = false;
  // Injected faults observed, retries spent, and rollbacks performed
  // while serving this request.
  uint64_t faults = 0;
  uint64_t retries = 0;
  uint64_t rollbacks = 0;
};

// One asynchronous limit-change request. A plain struct rather than a
// parameter list so future orchestration policies can attach deadlines,
// priority classes, or partial-progress callbacks without touching every
// backend again.
struct ResizeRequest {
  // The (hard) memory limit to move toward.
  uint64_t target_bytes = 0;
  // Per-request virtual-time budget, relative to submission. When it
  // expires the backend finishes partially (outcome.timed_out). 0 means
  // "use the backend's RetryPolicy request_timeout_ns default" — the
  // fleet policy layer attaches explicit deadlines here so one slow VM
  // cannot stall a control epoch indefinitely. Backends without timeout
  // machinery (the generic buddy monitor) ignore it.
  uint64_t deadline_ns = 0;
  // Fires in virtual time when the operation has gone as far as it can
  // (possibly partially — check limit_bytes()). May be empty.
  std::function<void()> done;
  // Optional partial-progress callback: fires just before `done` with
  // how far the request got (also readable via last_outcome()).
  std::function<void(const ResizeOutcome&)> on_outcome;
};

// Huge-frame reclaim split (DESIGN.md §4.14): how the huge frames a
// backend reclaimed were invalidated on the host — untouched (nothing
// was mapped), via a single 2 MiB EPT entry, or via 512 individual 4 KiB
// entries. Backends without huge-granular reclaim report all-zero.
struct HugeReclaimStats {
  uint64_t untouched = 0;
  uint64_t via_2m = 0;
  uint64_t via_4k = 0;

  uint64_t total() const { return untouched + via_2m + via_4k; }
  // Fraction reclaimed without per-4K EPT work; 1.0 when idle.
  double Share() const {
    return total() == 0 ? 1.0
                        : static_cast<double>(untouched + via_2m) /
                              static_cast<double>(total());
  }
};

class Deflator {
 public:
  virtual ~Deflator() = default;

  // Static capability matrix entry for this technique.
  virtual DeflatorCaps caps() const = 0;

  // Huge-frame reclaim share (§4.14). Default: no huge-granular path.
  virtual HugeReclaimStats huge_reclaim() const { return {}; }

  // Starts moving the VM's memory limit toward `request.target_bytes`.
  // Must not be called while a previous request is still in flight
  // (check busy()).
  virtual void Request(const ResizeRequest& request) = 0;
  virtual uint64_t limit_bytes() const = 0;
  virtual bool busy() const = 0;

  // Automatic (soft) reclamation, where supported.
  virtual void StartAuto() {}
  virtual void StopAuto() {}

  virtual const CpuAccounting& cpu() const = 0;

  // The outcome of the most recently finished request (all-zero before
  // the first request completes). Backends fill `outcome_` as they
  // finish; the base class only stores it.
  const ResizeOutcome& last_outcome() const { return outcome_; }

 protected:
  ResizeOutcome outcome_;
};

}  // namespace hyperalloc::hv
