#include "src/hv/console.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "src/base/check.h"
#include "src/base/units.h"

namespace hyperalloc::hv {

namespace {

std::string_view Trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(
                              text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

// Splits off the first whitespace-delimited word.
std::string_view NextWord(std::string_view* text) {
  *text = Trim(*text);
  size_t end = 0;
  while (end < text->size() &&
         !std::isspace(static_cast<unsigned char>((*text)[end]))) {
    ++end;
  }
  const std::string_view word = text->substr(0, end);
  text->remove_prefix(end);
  return word;
}

}  // namespace

uint64_t ParseSize(std::string_view text) {
  text = Trim(text);
  if (text.empty()) {
    return 0;
  }
  uint64_t multiplier = 1;
  switch (text.back()) {
    case 'T':
    case 't':
      multiplier = 1024 * kGiB;
      text.remove_suffix(1);
      break;
    case 'G':
    case 'g':
      multiplier = kGiB;
      text.remove_suffix(1);
      break;
    case 'M':
    case 'm':
      multiplier = kMiB;
      text.remove_suffix(1);
      break;
    case 'K':
    case 'k':
      multiplier = kKiB;
      text.remove_suffix(1);
      break;
    default:
      break;
  }
  if (text.empty()) {
    return 0;
  }
  uint64_t value = 0;
  for (const char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return 0;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value * multiplier;
}

Console::Console(guest::GuestVm* vm, Deflator* deflator)
    : vm_(vm), deflator_(deflator) {
  HA_CHECK(vm != nullptr && deflator != nullptr);
}

std::string Console::Execute(std::string_view line) {
  std::string_view rest = line;
  const std::string_view command = NextWord(&rest);
  if (command == "balloon") {
    return Balloon(rest);
  }
  if (command == "info") {
    const std::string_view topic = NextWord(&rest);
    if (topic == "balloon") {
      return InfoBalloon();
    }
    if (topic == "stats") {
      return InfoStats();
    }
    return "unknown info topic; try 'info balloon' or 'info stats'";
  }
  if (command == "auto") {
    const std::string_view mode = NextWord(&rest);
    if (mode == "on") {
      const hv::DeflatorCaps caps = deflator_->caps();
      if (!caps.supports_auto) {
        return "error: " + std::string(caps.name) +
               " has no automatic mode";
      }
      deflator_->StartAuto();
      return "automatic reclamation enabled";
    }
    if (mode == "off") {
      deflator_->StopAuto();
      return "automatic reclamation disabled";
    }
    return "usage: auto on|off";
  }
  if (command == "help") {
    return "commands: balloon <size> | info balloon | info stats | "
           "auto on|off | help";
  }
  return "unknown command '" + std::string(command) + "'; try 'help'";
}

std::string Console::Balloon(std::string_view argument) {
  const uint64_t target = ParseSize(argument);
  if (target == 0) {
    return "usage: balloon <size>  (e.g. 'balloon 2G')";
  }
  if (target > vm_->config().memory_bytes) {
    return "error: " + FormatBytes(target) + " exceeds the VM's " +
           FormatBytes(vm_->config().memory_bytes);
  }
  if (busy_) {
    return "error: a resize is already in progress";
  }
  busy_ = true;
  deflator_->Request(
      {.target_bytes = target, .done = [this] { busy_ = false; }});
  return "resizing to " + FormatBytes(target);
}

std::string Console::InfoBalloon() const {
  // Matches QEMU's "balloon: actual=<MiB>" reply format, extended with
  // the maximum.
  char buf[96];
  std::snprintf(buf, sizeof(buf), "balloon: actual=%llu max_mem=%llu",
                static_cast<unsigned long long>(deflator_->limit_bytes() /
                                                kMiB),
                static_cast<unsigned long long>(
                    vm_->config().memory_bytes / kMiB));
  return buf;
}

std::string Console::InfoStats() const {
  std::string reply = "rss=" + FormatBytes(vm_->rss_bytes());
  reply += " guest-free=" + FormatBytes(vm_->FreeFrames() * kFrameSize);
  reply += " cache=" + FormatBytes(vm_->cache_bytes());
  reply += " reclaim-cpu=" + FormatDuration(deflator_->cpu().total());
  return reply;
}

}  // namespace hyperalloc::hv
