// IOMMU (VFIO device passthrough) model.
//
// DMA-capable devices cannot take IO page faults (paper §2), so every
// guest-physical frame a device may target must be mapped and *pinned* in
// the IOMMU page tables before the DMA happens. We track pinning at
// 2 MiB granularity (HyperAlloc maps/unmaps huge frames; virtio-mem
// pre-populates whole blocks). DmaAccessOk() is the DMA-safety oracle the
// tests and the device-passthrough example use.
#pragma once

#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"
#include "src/trace/trace.h"

namespace hyperalloc::hv {

class Iommu {
 public:
  explicit Iommu(uint64_t frames)
      : num_huge_(HugesForFrames(frames)),
        pinned_((num_huge_ + 63) / 64, 0) {}

  uint64_t num_huge() const { return num_huge_; }
  uint64_t pinned_huge() const { return pinned_count_; }

  bool IsPinned(HugeId huge) const {
    HA_CHECK(huge < num_huge_);
    return (pinned_[huge / 64] >> (huge % 64)) & 1;
  }

  // Returns true if the state changed.
  bool Pin(HugeId huge) {
    HA_CHECK(huge < num_huge_);
    if (IsPinned(huge)) {
      return false;
    }
    pinned_[huge / 64] |= 1ull << (huge % 64);
    ++pinned_count_;
    ++map_ops_;
    HA_COUNT("iommu.map");
    HA_TRACE_EVENT(trace::Category::kIommu, trace::Op::kMap, huge, 0);
    return true;
  }

  bool Unpin(HugeId huge) {
    HA_CHECK(huge < num_huge_);
    if (!IsPinned(huge)) {
      return false;
    }
    pinned_[huge / 64] &= ~(1ull << (huge % 64));
    --pinned_count_;
    ++unmap_ops_;
    ++iotlb_flushes_;
    HA_COUNT("iommu.unmap");
    HA_COUNT("iommu.iotlb_flush");
    HA_TRACE_EVENT(trace::Category::kIommu, trace::Op::kUnmap, huge, 0);
    HA_TRACE_EVENT(trace::Category::kIommu, trace::Op::kIotlbFlush, huge, 0);
    return true;
  }

  // Would a DMA transfer targeting `frame` succeed? (No IO page faults.)
  bool DmaAccessOk(FrameId frame) const { return IsPinned(FrameToHuge(frame)); }

  uint64_t map_ops() const { return map_ops_; }
  uint64_t unmap_ops() const { return unmap_ops_; }
  uint64_t iotlb_flushes() const { return iotlb_flushes_; }

 private:
  uint64_t num_huge_;
  std::vector<uint64_t> pinned_;
  uint64_t pinned_count_ = 0;
  uint64_t map_ops_ = 0;
  uint64_t unmap_ops_ = 0;
  uint64_t iotlb_flushes_ = 0;
};

}  // namespace hyperalloc::hv
