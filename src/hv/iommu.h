// IOMMU (VFIO device passthrough) model.
//
// DMA-capable devices cannot take IO page faults (paper §2), so every
// guest-physical frame a device may target must be mapped and *pinned* in
// the IOMMU page tables before the DMA happens. We track pinning at
// 2 MiB granularity (HyperAlloc maps/unmaps huge frames; virtio-mem
// pre-populates whole blocks). DmaAccessOk() is the DMA-safety oracle the
// tests and the device-passthrough example use.
#pragma once

#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"
#include "src/fault/fault.h"
#include "src/trace/trace.h"

namespace hyperalloc::hv {

class Iommu {
 public:
  explicit Iommu(uint64_t frames)
      : num_huge_(HugesForFrames(frames)),
        pinned_((num_huge_ + 63) / 64, 0) {}

  uint64_t num_huge() const { return num_huge_; }
  uint64_t pinned_huge() const { return pinned_count_; }

  // Arms deterministic fault injection (fault::Site::kIommuPin /
  // kIommuUnpin). An injected fault fails the whole call atomically —
  // nothing is (un)pinned — so callers detect it by postcondition
  // (IsPinned) and can retry or quarantine. Null disarms.
  void SetFaultInjector(fault::Injector* injector) { fault_ = injector; }
  fault::Kind last_injected_kind() const { return last_injected_kind_; }
  uint64_t injected_faults() const { return injected_faults_; }

  bool IsPinned(HugeId huge) const {
    HA_CHECK(huge < num_huge_);
    return (pinned_[huge / 64] >> (huge % 64)) & 1;
  }

  // Returns true if the state changed.
  bool Pin(HugeId huge) {
    HA_CHECK(huge < num_huge_);
    if (IsPinned(huge)) {
      return false;
    }
    if (InjectFault(fault::Site::kIommuPin, huge, 1)) {
      return false;  // not pinned — caller checks IsPinned to tell apart
    }
    pinned_[huge / 64] |= 1ull << (huge % 64);
    ++pinned_count_;
    ++map_ops_;
    HA_COUNT("iommu.map");
    HA_TRACE_EVENT(trace::Category::kIommu, trace::Op::kMap, huge, 0);
    return true;
  }

  bool Unpin(HugeId huge) { return UnpinRange(huge, 1) == 1; }

  // Pins [first, first+count); returns the number of huge frames whose
  // state changed (map operations issued).
  uint64_t PinRange(HugeId first, uint64_t count) {
    HA_CHECK(first + count <= num_huge_);
    if (InjectFault(fault::Site::kIommuPin, first, count)) {
      return 0;  // whole-range failure, nothing pinned
    }
    uint64_t changed = 0;
    for (HugeId huge = first; huge < first + count; ++huge) {
      if (IsPinned(huge)) {
        continue;
      }
      pinned_[huge / 64] |= 1ull << (huge % 64);
      ++pinned_count_;
      ++map_ops_;
      ++changed;
      HA_COUNT("iommu.map");
      HA_TRACE_EVENT(trace::Category::kIommu, trace::Op::kMap, huge, 0);
    }
    return changed;
  }

  // Unpins [first, first+count), charging exactly ONE ranged IOTLB
  // invalidation for the whole batch (real IOMMUs support ranged
  // invalidation; the per-frame flush is what made unbatched unpinning
  // slow) instead of one flush per huge frame. Returns the number of
  // frames whose state changed.
  uint64_t UnpinRange(HugeId first, uint64_t count) {
    HA_CHECK(first + count <= num_huge_);
    if (InjectFault(fault::Site::kIommuUnpin, first, count)) {
      return 0;  // whole-range failure, nothing unpinned, no flush
    }
    uint64_t changed = 0;
    for (HugeId huge = first; huge < first + count; ++huge) {
      if (!IsPinned(huge)) {
        continue;
      }
      pinned_[huge / 64] &= ~(1ull << (huge % 64));
      --pinned_count_;
      ++unmap_ops_;
      ++changed;
      HA_COUNT("iommu.unmap");
      HA_TRACE_EVENT(trace::Category::kIommu, trace::Op::kUnmap, huge, 0);
    }
    if (changed > 0) {
      ++iotlb_flushes_;
      iotlb_flushed_huge_ += changed;
      HA_COUNT("iommu.iotlb_flush");
      HA_TRACE_EVENT(trace::Category::kIommu, trace::Op::kIotlbFlush, first,
                     count);
    }
    return changed;
  }

  // Would a DMA transfer targeting `frame` succeed? (No IO page faults.)
  bool DmaAccessOk(FrameId frame) const { return IsPinned(FrameToHuge(frame)); }

  uint64_t map_ops() const { return map_ops_; }
  uint64_t unmap_ops() const { return unmap_ops_; }
  // Ranged invalidations issued; `iotlb_flushed_huge()` is what per-frame
  // flushing would have issued (the coalescing win is the ratio).
  uint64_t iotlb_flushes() const { return iotlb_flushes_; }
  uint64_t iotlb_flushed_huge() const { return iotlb_flushed_huge_; }
  // Flush savings for the huge-frame fast path (DESIGN.md §4.14): ranged
  // invalidations actually issued per huge frame that a per-frame unpin
  // design would have flushed individually. 1.0 = no batching happened.
  double IotlbFlushSavings() const {
    return iotlb_flushed_huge_ == 0
               ? 1.0
               : static_cast<double>(iotlb_flushes_) /
                     static_cast<double>(iotlb_flushed_huge_);
  }
  uint64_t pinned_bytes() const { return pinned_count_ * kHugeSize; }

 private:
  bool InjectFault(fault::Site site, HugeId first, uint64_t count) {
    const auto kind = fault::Poll(fault_, site);
    if (!kind.has_value()) {
      return false;
    }
    last_injected_kind_ = *kind;
    ++injected_faults_;
    HA_COUNT("fault.iommu");
    HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kInject, first,
                   count);
    return true;
  }

  uint64_t num_huge_;
  std::vector<uint64_t> pinned_;
  uint64_t pinned_count_ = 0;
  uint64_t map_ops_ = 0;
  uint64_t unmap_ops_ = 0;
  uint64_t iotlb_flushes_ = 0;
  uint64_t iotlb_flushed_huge_ = 0;
  fault::Injector* fault_ = nullptr;
  fault::Kind last_injected_kind_ = fault::Kind::kTransient;
  uint64_t injected_faults_ = 0;
};

}  // namespace hyperalloc::hv
