// Interface through which protocol operations report the side effects that
// slow down a running guest: stolen vCPU time (driver kthreads), memory-bus
// traffic (population, migration), and TLB-shootdown IPIs. The STREAM/FTQ
// harnesses implement this to translate reclamation activity into workload
// slowdowns; batch benchmarks use the default no-op implementation.
#pragma once

#include "src/sim/simulation.h"

namespace hyperalloc::hv {

class InterferenceSink {
 public:
  virtual ~InterferenceSink() = default;

  // A guest kernel thread consumed `fraction` of vCPU `cpu` in [t0, t1).
  virtual void OnCpuSteal(unsigned cpu, sim::Time t0, sim::Time t1,
                          double fraction) {
    (void)cpu;
    (void)t0;
    (void)t1;
    (void)fraction;
  }

  // Host or guest activity moved `bytes_per_ns` of memory traffic during
  // [t0, t1), competing with the workload for memory bandwidth.
  virtual void OnBandwidth(sim::Time t0, sim::Time t1, double bytes_per_ns) {
    (void)t0;
    (void)t1;
    (void)bytes_per_ns;
  }

  // Broadcast interruptions (aggregated TLB-shootdown IPIs): every vCPU
  // loses `fraction` of its capacity during [t0, t1).
  virtual void OnAllCpusSteal(sim::Time t0, sim::Time t1, double fraction) {
    (void)t0;
    (void)t1;
    (void)fraction;
  }
};

// Shared no-op sink for harnesses that do not model interference.
InterferenceSink& NullInterference();

}  // namespace hyperalloc::hv
