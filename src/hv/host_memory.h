// Host physical memory pool — the one data structure every VM on the
// host touches on its hot path. VMs (their EPTs) reserve frames when
// guest-physical memory is populated and release them when the hypervisor
// reclaims it; the multi-VM experiment (Fig. 11) reads aggregate usage.
//
// Scalability design (multi-VM scaling, DESIGN.md §4.7; one simulation
// thread per VM):
// admission control is *sharded*. The pool's free frames live in
// cache-line-padded per-shard credit lines plus one global reserve.
// TryReserve/Release on the hot path touch only the calling thread's
// shard; the global reserve is visited in kCreditBatch-sized refills and
// drains, and a slow-path rebalancer raids other shards' credits when the
// global reserve runs dry near the limit. Because every reserved frame is
// debited from a credit chain rooted at the construction-time total, the
// pool can never overcommit, no matter the interleaving.
//
// Statistics are exact: `used` is a single relaxed fetch_add/fetch_sub
// (wait-free; the *conditional* admission check is what the shards
// de-contend) and the peak high-water mark (Fig. 11 "peak memory
// demand") is maintained with a CAS-max loop.
//
// All state is hyperalloc::Atomic (src/base/atomic.h), so model-check
// builds can explore interleavings of this pool like the LLFree core.
// Mid-operation, frames "in hand" between two credit buckets are counted
// in neither: credits + used transiently *under*-promise, never
// over-promise (same argument as the LLFree step invariants); exact
// equality credits == total - used holds at quiescence
// (src/check/invariants.h: CheckHostMemoryQuiescent).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/base/atomic.h"
#include "src/base/check.h"
#include "src/base/shared.h"
#include "src/base/types.h"
#include "src/fault/fault.h"
#include "src/trace/span.h"

namespace hyperalloc::hv {

// One consistent view of the pool, in frames. `used + free == total`
// holds by construction; `peak >= used`.
struct MemorySnapshot {
  uint64_t total = 0;
  uint64_t used = 0;
  uint64_t free = 0;
  uint64_t peak = 0;
};

// Credit hysteresis (DESIGN.md §4.10): watermarks and a per-shard
// post-rebalance holdoff that keep steady-state traffic from bouncing
// credits between shards and the global reserve. All knobs are in
// frames / Release operations; the quiescent invariant
// credits == total - used is unaffected (hoarded credits stay counted).
struct CreditHysteresis {
  // Release drains a shard back to `drain_low` only once its credit
  // exceeds `drain_high` (the old policy was high = 2 batches,
  // low = 1 batch — too twitchy to absorb a reserve/release cycle).
  uint64_t drain_high = 4 * 512;  // 4 * kCreditBatch
  uint64_t drain_low = 2 * 512;   // 2 * kCreditBatch
  // After a shard rebalanced (raided other shards), its next
  // `rebalance_holdoff_ops` drain-eligible Releases skip draining
  // entirely: do not give back what was just raided.
  uint64_t rebalance_holdoff_ops = 64;
};

class HostMemory {
 public:
  // Frames moved between the global reserve and a shard per refill/drain
  // (512 frames = one 2 MiB huge frame's worth).
  static constexpr uint64_t kCreditBatch = 512;
  static constexpr unsigned kDefaultShards = 8;

  explicit HostMemory(uint64_t total_frames,
                      unsigned shards = kDefaultShards,
                      const CreditHysteresis& hysteresis = {})
      : total_(total_frames),
        num_shards_(shards == 0 ? 1 : shards),
        hysteresis_(hysteresis),
        shards_(std::make_unique<Shard[]>(num_shards_)) {
    HA_CHECK(hysteresis.drain_low <= hysteresis.drain_high);
    global_free_.store(total_frames, std::memory_order_relaxed);
  }

  uint64_t total_frames() const { return total_; }
  uint64_t used_frames() const {
    return used_.load(std::memory_order_acquire);
  }
  uint64_t free_frames() const { return total_ - used_frames(); }
  uint64_t used_bytes() const { return used_frames() * kFrameSize; }
  uint64_t peak_frames() const {
    return peak_.load(std::memory_order_acquire);
  }
  unsigned shards() const { return num_shards_; }

  // One consistent {total, used, free, peak} read instead of racy
  // multi-getter sampling. `peak` is clamped to >= `used` (the CAS-max
  // update trails the `used` increment by a few instructions).
  MemorySnapshot snapshot() const {
    MemorySnapshot s;
    s.total = total_;
    s.used = used_.load(std::memory_order_acquire);
    s.free = total_ - s.used;
    s.peak = peak_.load(std::memory_order_acquire);
    if (s.peak < s.used) {
      s.peak = s.used;
    }
    return s;
  }

  // Reserves `frames` from the calling thread's shard (batched refill
  // from the global reserve; cross-shard rebalance when that is dry).
  // Returns false — with nothing changed — iff fewer than `frames` are
  // free across the whole pool at some instant during the attempt.
  bool TryReserve(uint64_t frames) {
    return TryReserve(frames, ThisThreadShard());
  }

  // Explicit-shard variant (model-check scenarios and tests; also lets a
  // VM pin itself to a shard regardless of which thread runs it).
  bool TryReserve(uint64_t frames, unsigned shard) {
    if (frames == 0) {
      return true;
    }
    if (fault::Poll(fault_, fault::Site::kHostReserve).has_value()) {
      // Injected admission failure: indistinguishable from real
      // exhaustion by design (callers exercise their pressure paths).
      fault_injected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Shard& s = shards_[shard % num_shards_];
    if (!TakeCredit(s, frames)) {
      return false;
    }
    const uint64_t now =
        used_.fetch_add(frames, std::memory_order_acq_rel) + frames;
    // CAS-max high-water loop: lost races only ever lose to a *larger*
    // observed usage, so the peak is never under-reported.
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (peak < now && !peak_.compare_exchange_weak(
                             peak, now, std::memory_order_acq_rel,
                             std::memory_order_relaxed)) {
    }
    return true;
  }

  void Release(uint64_t frames) { Release(frames, ThisThreadShard()); }

  void Release(uint64_t frames, unsigned shard) {
    if (frames == 0) {
      return;
    }
    const uint64_t before =
        used_.fetch_sub(frames, std::memory_order_acq_rel);
    HA_CHECK(before >= frames);
    Shard& s = shards_[shard % num_shards_];
    const uint64_t credit =
        s.credit.fetch_add(frames, std::memory_order_acq_rel) + frames;
    // Hysteresis: drain back to the low watermark only once the credit
    // line exceeds the high one, and never within the holdoff window
    // after this shard rebalanced — a shard that just raided its peers
    // would otherwise hand the frames straight back to the global
    // reserve and re-raid on the next reserve (the churn behind
    // BENCH_PR4's 2.3M rebalances).
    const CreditHysteresis& hysteresis = hysteresis_.read();
    if (credit > hysteresis.drain_high) {
      const uint64_t op = s.ops.fetch_add(1, std::memory_order_relaxed) + 1;
      const uint64_t last =
          s.last_rebalance_op.load(std::memory_order_relaxed);
      if (last == 0 || op - last >= hysteresis.rebalance_holdoff_ops) {
        DrainShard(s, credit - hysteresis.drain_low);
      }
    }
  }

  // Arms deterministic fault injection on the admission path
  // (fault::Site::kHostReserve): a scheduled fault makes TryReserve
  // return false with nothing changed, as if the pool were exhausted.
  // Null disarms; the injector is not owned.
  void SetFaultInjector(fault::Injector* injector) { fault_ = injector; }
  uint64_t injected_faults() const {
    return fault_injected_.load(std::memory_order_relaxed);
  }

  // --- slow-path observability (tests, bench_runner) -------------------
  uint64_t refills() const {
    return refills_.load(std::memory_order_relaxed);
  }
  uint64_t drains() const { return drains_.load(std::memory_order_relaxed); }
  uint64_t rebalances() const {
    return rebalances_.load(std::memory_order_relaxed);
  }
  // Raids avoided by the feasibility pre-scan (peers had no credit to
  // take, or peers plus the global reserve observably could not cover
  // the shortfall jointly).
  uint64_t rebalance_skips() const {
    return rebalance_skips_.load(std::memory_order_relaxed);
  }

  // Free frames currently parked in shard credit lines + the global
  // reserve. Quiescent (no in-flight reserve/release): exactly
  // total - used. Mid-operation: may transiently read low, never high.
  uint64_t DebugFreeCredits() const {
    uint64_t sum = global_free_.load(std::memory_order_acquire);
    for (unsigned i = 0; i < num_shards_; ++i) {
      sum += shards_[i].credit.load(std::memory_order_acquire);
    }
    return sum;
  }

  uint64_t DebugShardCredit(unsigned shard) const {
    return shards_[shard % num_shards_].credit.load(
        std::memory_order_acquire);
  }

  uint64_t DebugGlobalFree() const {
    return global_free_.load(std::memory_order_acquire);
  }

 private:
  struct alignas(64) Shard {
    Atomic<uint64_t> credit{0};  // free frames owned by this shard
    // Drain-eligible Release count and the value it had at this shard's
    // most recent rebalance (0 = never rebalanced); together they form
    // the holdoff window. Both are hysteresis bookkeeping, not part of
    // the credit chain.
    Atomic<uint64_t> ops{0};
    Atomic<uint64_t> last_rebalance_op{0};
  };

  // Debits `frames` from the shard's credit line, refilling from the
  // global reserve (and, failing that, raiding other shards) as needed.
  // On failure every partially-taken credit is returned to `s`.
  bool TakeCredit(Shard& s, uint64_t frames) {
    uint64_t credit = s.credit.load(std::memory_order_acquire);
    while (credit >= frames) {
      if (s.credit.compare_exchange_weak(credit, credit - frames,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        return true;  // fast path: shard-local, no shared lines touched
      }
    }
    // Take what the shard has, then refill the shortfall.
    while (credit > 0 && !s.credit.compare_exchange_weak(
                             credit, 0, std::memory_order_acq_rel,
                             std::memory_order_acquire)) {
    }
    uint64_t have = credit;
    if (have >= frames) {
      // A concurrent Release refilled the shard while we were zeroing it.
      if (have > frames) {
        s.credit.fetch_add(have - frames, std::memory_order_acq_rel);
      }
      return true;
    }
    uint64_t need = frames - have;

    // Batched refill: pull the shortfall plus one credit batch so the
    // next reservations stay shard-local.
    const uint64_t take = TakeGlobal(need + kCreditBatch, need);
    if (take >= need) {
      refills_.fetch_add(1, std::memory_order_relaxed);
      // Slow paths only carry spans (the shard-local fast path above
      // stays span-free); they arm only inside a traced request, so
      // model-check scenarios and idle threads never pay for them.
      trace::Span refill_span(trace::Layer::kHostPool, "hostpool.refill");
      refill_span.AddFrames(take);
      const uint64_t extra = take - need;
      if (extra > 0) {
        s.credit.fetch_add(extra, std::memory_order_acq_rel);
      }
      return true;
    }
    have += take;
    need = frames - have;

    // Rebalance: the global reserve is dry; raid other shards' credit
    // lines. Near the capacity limit all free memory may be parked in
    // credits, and a reservation must still succeed if the *sum* covers
    // it. A load-only feasibility pre-scan first: the raid takes peer
    // credit partially and the last global look below covers whatever
    // remains, so feasibility is the *joint* sum of peer credit and the
    // global reserve (a concurrent drain may have parked part of the
    // free memory back there). Only when even that sum observably
    // cannot cover the shortfall — or the peers have nothing to take —
    // is the CAS raid (and its cache-line invalidations) skipped; the
    // observation is itself the "some instant" of the contract, exactly
    // as a fruitless raid loop would have been.
    uint64_t peer_sum = 0;
    for (unsigned i = 0; i < num_shards_; ++i) {
      if (&shards_[i] != &s) {
        peer_sum += shards_[i].credit.load(std::memory_order_acquire);
      }
    }
    const uint64_t global_seen =
        global_free_.load(std::memory_order_acquire);
    if (peer_sum > 0 && peer_sum + global_seen >= need) {
      rebalances_.fetch_add(1, std::memory_order_relaxed);
      s.last_rebalance_op.store(
          s.ops.load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      trace::Span rebalance_span(trace::Layer::kHostPool,
                                 "hostpool.rebalance");
      for (unsigned i = 0; i < num_shards_ && need > 0; ++i) {
        Shard& other = shards_[i];
        if (&other == &s) {
          continue;
        }
        uint64_t c = other.credit.load(std::memory_order_acquire);
        while (c > 0) {
          const uint64_t grab = c < need ? c : need;
          if (other.credit.compare_exchange_weak(
                  c, c - grab, std::memory_order_acq_rel,
                  std::memory_order_acquire)) {
            have += grab;
            need -= grab;
            rebalance_span.AddFrames(grab);
            break;
          }
        }
      }
    } else {
      rebalance_skips_.fetch_add(1, std::memory_order_relaxed);
    }
    if (need == 0) {
      return true;
    }
    // One last look at the global reserve: a concurrent Release may have
    // drained credits there while we raided the shards.
    const uint64_t last = TakeGlobal(need, need);
    have += last;
    if (have >= frames) {
      const uint64_t extra = have - frames;
      if (extra > 0) {
        s.credit.fetch_add(extra, std::memory_order_acq_rel);
      }
      return true;
    }
    // Exhausted: give everything back to our shard (it stays free and
    // counted; nothing was reserved).
    if (have > 0) {
      s.credit.fetch_add(have, std::memory_order_acq_rel);
    }
    return false;
  }

  // Takes up to `want` frames from the global reserve, but only if at
  // least `min` are available; returns the number taken (0 or >= min).
  uint64_t TakeGlobal(uint64_t want, uint64_t min) {
    uint64_t free = global_free_.load(std::memory_order_acquire);
    while (free >= min && min > 0) {
      const uint64_t take = free < want ? free : want;
      if (global_free_.compare_exchange_weak(free, free - take,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        return take;
      }
    }
    return 0;
  }

  void DrainShard(Shard& s, uint64_t excess) {
    uint64_t credit = s.credit.load(std::memory_order_acquire);
    while (credit >= excess) {
      if (s.credit.compare_exchange_weak(credit, credit - excess,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        global_free_.fetch_add(excess, std::memory_order_acq_rel);
        drains_.fetch_add(1, std::memory_order_relaxed);
        trace::Span drain_span(trace::Layer::kHostPool, "hostpool.drain");
        drain_span.AddFrames(excess);
        return;
      }
    }
  }

  unsigned ThisThreadShard() const {
    // Round-robin shard assignment per OS thread. Plain std::atomic (not
    // the model-check seam): thread registration is not part of the
    // state under verification, and scenarios pass explicit shards.
    static std::atomic<unsigned> next_thread{0};
    thread_local const unsigned assigned =
        next_thread.fetch_add(1, std::memory_order_relaxed);
    return assigned % num_shards_;
  }

  uint64_t total_;
  unsigned num_shards_;
  // Fixed at construction, read from every Release: the checker verifies
  // no late reconfiguration races the hot path.
  Shared<CreditHysteresis> hysteresis_;
  std::unique_ptr<Shard[]> shards_;
  alignas(64) Atomic<uint64_t> global_free_{0};
  alignas(64) Atomic<uint64_t> used_{0};
  alignas(64) Atomic<uint64_t> peak_{0};
  Atomic<uint64_t> refills_{0};
  Atomic<uint64_t> drains_{0};
  Atomic<uint64_t> rebalances_{0};
  Atomic<uint64_t> rebalance_skips_{0};
  Atomic<uint64_t> fault_injected_{0};
  fault::Injector* fault_ = nullptr;
};

}  // namespace hyperalloc::hv
