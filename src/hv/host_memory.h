// Host physical memory pool. VMs (their EPTs) reserve frames from this
// pool when guest-physical memory is populated and release them when the
// hypervisor reclaims it. The multi-VM experiment (Fig. 11) reads the
// aggregate usage here.
#pragma once

#include <cstdint>

#include "src/base/check.h"
#include "src/base/types.h"

namespace hyperalloc::hv {

class HostMemory {
 public:
  explicit HostMemory(uint64_t total_frames) : total_(total_frames) {}

  uint64_t total_frames() const { return total_; }
  uint64_t used_frames() const { return used_; }
  uint64_t free_frames() const { return total_ - used_; }
  uint64_t used_bytes() const { return used_ * kFrameSize; }

  // Peak usage high-water mark (Fig. 11 "peak memory demand").
  uint64_t peak_frames() const { return peak_; }

  bool Reserve(uint64_t frames) {
    if (used_ + frames > total_) {
      return false;
    }
    used_ += frames;
    if (used_ > peak_) {
      peak_ = used_;
    }
    return true;
  }

  void Release(uint64_t frames) {
    HA_CHECK(frames <= used_);
    used_ -= frames;
  }

 private:
  uint64_t total_;
  uint64_t used_ = 0;
  uint64_t peak_ = 0;
};

}  // namespace hyperalloc::hv
