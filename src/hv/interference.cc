#include "src/hv/interference.h"

namespace hyperalloc::hv {

InterferenceSink& NullInterference() {
  static InterferenceSink sink;
  return sink;
}

}  // namespace hyperalloc::hv
