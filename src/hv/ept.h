// Extended page table (second-stage translation) model.
//
// Tracks, per 4 KiB guest-physical frame, whether it is backed by
// host-physical memory. Mapping reserves host frames; unmapping (the
// madvise(DONTNEED) path in the paper's QEMU prototype) releases them.
// The VM's resident-set size — the metric all footprint experiments
// sample — is exactly the number of mapped frames.
#pragma once

#include <cstdint>
#include <vector>

#include "src/base/types.h"
#include "src/fault/fault.h"
#include "src/hv/host_memory.h"

namespace hyperalloc::hv {

class Ept {
 public:
  // `host` may be null for standalone tests (no capacity accounting).
  Ept(uint64_t frames, HostMemory* host);

  // Arms deterministic fault injection (fault::Site::kEptMap /
  // kEptUnmap). Null disarms; the injector is not owned.
  void SetFaultInjector(fault::Injector* injector) { fault_ = injector; }
  // The Kind of the most recent injected fault (meaningful right after a
  // kFaultInjected return; recovery layers branch on it).
  fault::Kind last_injected_kind() const { return last_injected_kind_; }
  uint64_t injected_faults() const { return injected_faults_; }

  uint64_t frames() const { return frames_; }
  uint64_t mapped_frames() const { return mapped_; }
  uint64_t rss_bytes() const { return mapped_ * kFrameSize; }

  bool IsMapped(FrameId frame) const;

  // Maps [first, first+count). Returns the number of frames that were
  // not already mapped (those reserve host memory). Returns kNoHostMemory
  // if the host pool is exhausted, or kFaultInjected when an injected
  // kEptMap fault fails the operation — nothing is changed in either
  // case.
  uint64_t Map(FrameId first, uint64_t count);

  // Unmaps [first, first+count). Returns the number of frames that were
  // mapped (those are released back to the host pool), or kFaultInjected
  // when an injected kEptUnmap fault fails the operation (nothing is
  // changed: the range stays mapped).
  uint64_t Unmap(FrameId first, uint64_t count);

  // Number of mapped frames in [first, first+count) without changing
  // anything (used to price unmap operations that skip absent pages).
  uint64_t CountMapped(FrameId first, uint64_t count) const;

  // Lifetime fault/operation statistics.
  uint64_t total_mapped_ops() const { return total_map_ops_; }
  uint64_t total_unmapped_ops() const { return total_unmap_ops_; }

  // TLB shootdown accounting, coalesced: each Unmap call that removes at
  // least one present frame issues exactly ONE ranged flush for the whole
  // [first, first+count) batch — mirroring the batched-madvise design —
  // instead of one single-page flush per frame. `tlb_flushed_frames()`
  // counts what per-page flushing would have cost for comparison.
  uint64_t tlb_range_flushes() const { return tlb_range_flushes_; }
  uint64_t tlb_flushed_frames() const { return tlb_flushed_frames_; }

  // 2 MiB (order-9) entry accounting — DESIGN.md §4.14. The model layers
  // huge-entry bookkeeping over the 4 KiB bitmap without changing the
  // host-backing semantics (reserve/release stay base-frame-granular, so
  // every RSS/footprint metric is byte-identical with the layer off):
  //
  //  * A huge frame gets a 2 MiB entry exactly when ONE Map call takes it
  //    from 0 to 512 mapped frames (the THP-style 2M fault and the
  //    huge-PFN deflate path). Piecewise 4 KiB fills never promote —
  //    matching hardware, where the page tables already hold 4K entries.
  //  * An Unmap whose range wholly covers a 2 M-entry frame invalidates
  //    that single entry (`unmaps_2m`); partial coverage first demotes
  //    the entry to 512 separate 4K entries (`demotions_2m`) and then
  //    invalidates only the unmapped part.
  //
  // entries_invalidated_2m/4k count what the coalesced flushes actually
  // invalidate at each granularity; comparing their sum against
  // tlb_flushed_frames() (the all-4K cost) is the flush-savings metric.
  uint64_t maps_2m() const { return maps_2m_; }
  uint64_t unmaps_2m() const { return unmaps_2m_; }
  uint64_t demotions_2m() const { return demotions_2m_; }
  // Live 2 MiB entries right now.
  uint64_t mapped_2m() const { return mapped_2m_; }
  uint64_t entries_invalidated_2m() const { return entries_invalidated_2m_; }
  uint64_t entries_invalidated_4k() const { return entries_invalidated_4k_; }
  // Huge-frame reclaim share: of the fully-backed huge frames handed back
  // wholesale (an Unmap covering all of a huge frame with every subframe
  // present), how many went through a single 2 MiB entry rather than 512
  // 4 KiB ones. share = huge_unmaps_2m / huge_unmaps_total.
  uint64_t huge_unmaps_total() const { return huge_unmaps_total_; }
  uint64_t huge_unmaps_2m() const { return huge_unmaps_2m_; }
  bool HasHugeEntry(HugeId huge) const;

  static constexpr uint64_t kNoHostMemory = ~0ull;
  static constexpr uint64_t kFaultInjected = ~0ull - 1;

 private:
  // 2M-entry transitions for one Unmap call, tallied before the bitmap
  // is touched (the bits encode the pre-call state).
  struct HugeUnmapAccounting {
    uint64_t whole_2m = 0;    // intact 2M entries the range wholly covers
    uint64_t demoted = 0;     // 2M entries the range only partly covers
    uint64_t whole_full = 0;  // fully-present huge frames wholly covered
  };
  HugeUnmapAccounting TallyHugeUnmap(FrameId first, uint64_t count);

  uint64_t frames_;
  HostMemory* host_;
  std::vector<uint64_t> bitmap_;  // bit set = mapped
  std::vector<uint64_t> huge_entry_;  // bit set = live 2 MiB entry
  uint64_t mapped_ = 0;
  uint64_t total_map_ops_ = 0;
  uint64_t total_unmap_ops_ = 0;
  uint64_t tlb_range_flushes_ = 0;
  uint64_t tlb_flushed_frames_ = 0;
  uint64_t maps_2m_ = 0;
  uint64_t unmaps_2m_ = 0;
  uint64_t demotions_2m_ = 0;
  uint64_t mapped_2m_ = 0;
  uint64_t entries_invalidated_2m_ = 0;
  uint64_t entries_invalidated_4k_ = 0;
  uint64_t huge_unmaps_total_ = 0;
  uint64_t huge_unmaps_2m_ = 0;
  fault::Injector* fault_ = nullptr;
  fault::Kind last_injected_kind_ = fault::Kind::kTransient;
  uint64_t injected_faults_ = 0;
};

}  // namespace hyperalloc::hv
