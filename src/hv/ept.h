// Extended page table (second-stage translation) model.
//
// Tracks, per 4 KiB guest-physical frame, whether it is backed by
// host-physical memory. Mapping reserves host frames; unmapping (the
// madvise(DONTNEED) path in the paper's QEMU prototype) releases them.
// The VM's resident-set size — the metric all footprint experiments
// sample — is exactly the number of mapped frames.
#pragma once

#include <cstdint>
#include <vector>

#include "src/base/types.h"
#include "src/hv/host_memory.h"

namespace hyperalloc::hv {

class Ept {
 public:
  // `host` may be null for standalone tests (no capacity accounting).
  Ept(uint64_t frames, HostMemory* host);

  uint64_t frames() const { return frames_; }
  uint64_t mapped_frames() const { return mapped_; }
  uint64_t rss_bytes() const { return mapped_ * kFrameSize; }

  bool IsMapped(FrameId frame) const;

  // Maps [first, first+count). Returns the number of frames that were
  // not already mapped (those reserve host memory). Returns UINT64_MAX
  // if the host pool is exhausted (nothing is changed in that case).
  uint64_t Map(FrameId first, uint64_t count);

  // Unmaps [first, first+count). Returns the number of frames that were
  // mapped (those are released back to the host pool).
  uint64_t Unmap(FrameId first, uint64_t count);

  // Number of mapped frames in [first, first+count) without changing
  // anything (used to price unmap operations that skip absent pages).
  uint64_t CountMapped(FrameId first, uint64_t count) const;

  // Lifetime fault/operation statistics.
  uint64_t total_mapped_ops() const { return total_map_ops_; }
  uint64_t total_unmapped_ops() const { return total_unmap_ops_; }

  // TLB shootdown accounting, coalesced: each Unmap call that removes at
  // least one present frame issues exactly ONE ranged flush for the whole
  // [first, first+count) batch — mirroring the batched-madvise design —
  // instead of one single-page flush per frame. `tlb_flushed_frames()`
  // counts what per-page flushing would have cost for comparison.
  uint64_t tlb_range_flushes() const { return tlb_range_flushes_; }
  uint64_t tlb_flushed_frames() const { return tlb_flushed_frames_; }

  static constexpr uint64_t kNoHostMemory = ~0ull;

 private:
  uint64_t frames_;
  HostMemory* host_;
  std::vector<uint64_t> bitmap_;  // bit set = mapped
  uint64_t mapped_ = 0;
  uint64_t total_map_ops_ = 0;
  uint64_t total_unmap_ops_ = 0;
  uint64_t tlb_range_flushes_ = 0;
  uint64_t tlb_flushed_frames_ = 0;
};

}  // namespace hyperalloc::hv
