// Extended page table (second-stage translation) model.
//
// Tracks, per 4 KiB guest-physical frame, whether it is backed by
// host-physical memory. Mapping reserves host frames; unmapping (the
// madvise(DONTNEED) path in the paper's QEMU prototype) releases them.
// The VM's resident-set size — the metric all footprint experiments
// sample — is exactly the number of mapped frames.
#pragma once

#include <cstdint>
#include <vector>

#include "src/base/types.h"
#include "src/fault/fault.h"
#include "src/hv/host_memory.h"

namespace hyperalloc::hv {

class Ept {
 public:
  // `host` may be null for standalone tests (no capacity accounting).
  Ept(uint64_t frames, HostMemory* host);

  // Arms deterministic fault injection (fault::Site::kEptMap /
  // kEptUnmap). Null disarms; the injector is not owned.
  void SetFaultInjector(fault::Injector* injector) { fault_ = injector; }
  // The Kind of the most recent injected fault (meaningful right after a
  // kFaultInjected return; recovery layers branch on it).
  fault::Kind last_injected_kind() const { return last_injected_kind_; }
  uint64_t injected_faults() const { return injected_faults_; }

  uint64_t frames() const { return frames_; }
  uint64_t mapped_frames() const { return mapped_; }
  uint64_t rss_bytes() const { return mapped_ * kFrameSize; }

  bool IsMapped(FrameId frame) const;

  // Maps [first, first+count). Returns the number of frames that were
  // not already mapped (those reserve host memory). Returns kNoHostMemory
  // if the host pool is exhausted, or kFaultInjected when an injected
  // kEptMap fault fails the operation — nothing is changed in either
  // case.
  uint64_t Map(FrameId first, uint64_t count);

  // Unmaps [first, first+count). Returns the number of frames that were
  // mapped (those are released back to the host pool), or kFaultInjected
  // when an injected kEptUnmap fault fails the operation (nothing is
  // changed: the range stays mapped).
  uint64_t Unmap(FrameId first, uint64_t count);

  // Number of mapped frames in [first, first+count) without changing
  // anything (used to price unmap operations that skip absent pages).
  uint64_t CountMapped(FrameId first, uint64_t count) const;

  // Lifetime fault/operation statistics.
  uint64_t total_mapped_ops() const { return total_map_ops_; }
  uint64_t total_unmapped_ops() const { return total_unmap_ops_; }

  // TLB shootdown accounting, coalesced: each Unmap call that removes at
  // least one present frame issues exactly ONE ranged flush for the whole
  // [first, first+count) batch — mirroring the batched-madvise design —
  // instead of one single-page flush per frame. `tlb_flushed_frames()`
  // counts what per-page flushing would have cost for comparison.
  uint64_t tlb_range_flushes() const { return tlb_range_flushes_; }
  uint64_t tlb_flushed_frames() const { return tlb_flushed_frames_; }

  static constexpr uint64_t kNoHostMemory = ~0ull;
  static constexpr uint64_t kFaultInjected = ~0ull - 1;

 private:
  uint64_t frames_;
  HostMemory* host_;
  std::vector<uint64_t> bitmap_;  // bit set = mapped
  uint64_t mapped_ = 0;
  uint64_t total_map_ops_ = 0;
  uint64_t total_unmap_ops_ = 0;
  uint64_t tlb_range_flushes_ = 0;
  uint64_t tlb_flushed_frames_ = 0;
  fault::Injector* fault_ = nullptr;
  fault::Kind last_injected_kind_ = fault::Kind::kTransient;
  uint64_t injected_faults_ = 0;
};

}  // namespace hyperalloc::hv
