// Guest virtual machine model.
//
// A GuestVm combines:
//  * guest-physical memory split into Linux-like zones (DMA32 / Normal /
//    Movable), each with its own page-frame allocator instance (buddy or
//    LLFree, per paper §4.2 "every populated zone has its individual
//    LLFree instance"),
//  * a page-cache model with pressure-driven eviction (the guest kernel
//    evicts cache when allocations fail, which is how ballooning's memory
//    pressure manifests, §3.3/§5.5),
//  * an EPT with THP-style population: the first touch of an entirely
//    unmapped huge frame populates the whole 2 MiB (host-side transparent
//    huge pages); otherwise individual 4 KiB pages fault in. This is why
//    LLFree's contiguous allocations halve the guest's EPT faults (§5.5),
//  * an optional VFIO IOMMU for device passthrough.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/types.h"
#include "src/buddy/buddy.h"
#include "src/fault/fault.h"
#include "src/hv/aux_state.h"
#include "src/hv/cost_model.h"
#include "src/hv/ept.h"
#include "src/hv/host_memory.h"
#include "src/hv/interference.h"
#include "src/hv/iommu.h"
#include "src/llfree/frame_cache.h"
#include "src/llfree/llfree.h"
#include "src/sim/simulation.h"

namespace hyperalloc::guest {

// Notified when the kernel migrates an allocation to a new frame (memory
// compaction during virtio-mem unplug). Owners of raw frame ids (workload
// regions) must update their records.
class MigrationListener {
 public:
  virtual ~MigrationListener() = default;
  virtual void OnFrameMigrated(FrameId old_head, FrameId new_head,
                               unsigned order) = 0;
};

enum class AllocatorKind { kBuddy, kLLFree };

enum class ZoneKind { kDma32, kNormal, kMovable };

struct GuestConfig {
  std::string name = "vm0";
  uint64_t memory_bytes = 20 * kGiB;
  unsigned vcpus = 12;
  AllocatorKind allocator = AllocatorKind::kBuddy;
  llfree::Config llfree_config;
  buddy::Buddy::Config buddy_config;
  // Zone layout. DMA32 covers the first `dma32_bytes`; a Movable zone of
  // `movable_bytes` (for virtio-mem's hotpluggable memory) covers the top
  // of guest-physical memory; the rest is Normal.
  uint64_t dma32_bytes = 2 * kGiB;
  uint64_t movable_bytes = 0;
  // Attach a VFIO passthrough device (IOMMU must be kept in sync).
  bool vfio = false;
  // Per-vCPU frame-cache capacity for LLFree zones (DESIGN.md §4.10);
  // order-0 movable allocations are served from the cache, refilling and
  // draining in GetBatch/PutBatch batches. 0 disables the cache.
  unsigned llfree_cache_frames = 64;
};

struct Zone {
  ZoneKind kind;
  FrameId start;
  uint64_t frames;
  std::unique_ptr<buddy::Buddy> buddy;
  std::unique_ptr<llfree::SharedState> llfree_state;
  std::unique_ptr<llfree::LLFree> llfree;
  // Per-vCPU order-0 cache over `llfree` (null when disabled).
  std::unique_ptr<llfree::FrameCache> llfree_cache;

  FrameId end() const { return start + frames; }
  bool Contains(FrameId frame) const {
    return frame >= start && frame < end();
  }
};

class GuestVm {
 public:
  GuestVm(sim::Simulation* sim, hv::HostMemory* host,
          const GuestConfig& config,
          const hv::CostModel& costs = hv::CostModel::Default());

  GuestVm(const GuestVm&) = delete;
  GuestVm& operator=(const GuestVm&) = delete;

  const GuestConfig& config() const { return config_; }
  sim::Simulation* simulation() { return sim_; }
  const hv::CostModel& costs() const { return costs_; }
  uint64_t total_frames() const { return total_frames_; }

  hv::Ept& ept() { return ept_; }
  hv::Iommu* iommu() { return iommu_.get(); }
  hv::HostMemory* host() { return host_; }

  // Arms deterministic fault injection on this VM's EPT and IOMMU (and
  // remembers the injector so deflators can consult their own sites).
  // Arm *after* boot-time population so start-up cannot fault; the host
  // pool is shared and gets its injector separately. Null disarms.
  void SetFaultInjector(fault::Injector* injector) {
    fault_ = injector;
    ept_.SetFaultInjector(injector);
    if (iommu_ != nullptr) {
      iommu_->SetFaultInjector(injector);
    }
  }
  fault::Injector* fault_injector() { return fault_; }

  void SetInterferenceSink(hv::InterferenceSink* sink) { sink_ = sink; }
  hv::InterferenceSink& sink() { return *sink_; }

  // Last-resort OOM hook (virtio-balloon's deflate-on-oom): called when
  // an allocation is about to fail with nothing left to reclaim. If the
  // handler returns true (it freed memory), the allocation retries once.
  void SetOomNotifier(std::function<bool()> notifier) {
    oom_notifier_ = std::move(notifier);
  }

  // Host overcommit support: called when populating guest memory finds
  // the host pool empty. Returning true means room was made (swap-out);
  // the population retries. Without a handler, exhaustion aborts.
  void SetHostPressureHandler(std::function<bool(uint64_t)> handler) {
    host_pressure_ = std::move(handler);
  }

  // Extra fault latency for ranges that were swapped out (swap-in reads).
  void SetFaultSurcharge(
      std::function<uint64_t(FrameId, uint64_t)> surcharge) {
    fault_surcharge_ = std::move(surcharge);
  }

  // Populates [first, first+count) in the EPT, invoking the pressure
  // handler on host exhaustion. Returns false only if pressure handling
  // is attached and failed; aborts if no handler exists.
  bool PopulateFrames(FrameId first, uint64_t count);

  // §6 "Concept Generalization": attaches the auxiliary hypervisor-shared
  // (A, E) interface for guests whose own allocator cannot be shared
  // (buddy). The guest keeps A in sync with per-huge-frame occupancy and
  // calls `install` (blocking) before first use of an evicted frame.
  void AttachAuxBridge(hv::AuxState* aux,
                       std::function<void(HugeId)> install);

  std::vector<Zone>& zones() { return zones_; }
  Zone& ZoneOf(FrameId frame);

  // ------------------------------------------------------------------
  // Workload-facing allocation API (runs "inside" the guest)
  // ------------------------------------------------------------------

  // Allocates 2^order frames; on failure evicts page cache and retries
  // (the kernel's direct reclaim). Counts an OOM event if that fails too.
  // `allow_oom_notify=false` skips the deflate-on-OOM hook (the balloon's
  // own inflation allocations must not cannibalize the balloon).
  Result<FrameId> Alloc(unsigned order, AllocType type, unsigned core = 0,
                        bool allow_oom_notify = true);

  void Free(FrameId frame, unsigned order, unsigned core = 0);

  // Batched variants (DESIGN.md §4.10). AllocBatch claims up to `count`
  // runs of 2^order frames, appending each head frame to `out`: LLFree
  // zones are filled via GetBatch (word-at-a-time claims, bypassing the
  // per-vCPU cache so a large batch does not churn it); any remainder —
  // buddy zones, direct reclaim, deflate-on-OOM — falls back to single
  // Alloc calls, so batch semantics match `count` singles exactly.
  // Returns the number of runs claimed.
  unsigned AllocBatch(unsigned order, unsigned count, AllocType type,
                      unsigned core = 0, std::vector<FrameId>* out = nullptr,
                      bool allow_oom_notify = true);

  // FreeBatch groups frames by zone and bit-field word (PutBatch) so a
  // deflate-style free train costs one CAS per word instead of one full
  // Put transaction per frame. Per-frame bookkeeping is preserved.
  void FreeBatch(std::span<const FrameId> frames, unsigned order,
                 unsigned core = 0);

  // Writes to [first, first+count) guest frames: unmapped frames fault
  // and populate (THP-style), charging virtual time and bandwidth.
  void Touch(FrameId first, uint64_t count);

  // Simulated DMA by a passthrough device into guest frame(s). Returns
  // false if the transfer would fail (frame not pinned in the IOMMU /
  // not backed) — the DMA-safety oracle.
  bool DmaWrite(FrameId first, uint64_t count);

  // ------------------------------------------------------------------
  // Page cache
  // ------------------------------------------------------------------

  // Reads `bytes` of (new) file data: allocates movable frames, touches
  // them, and tracks them in the page-cache LRU.
  void CacheAdd(uint64_t bytes, unsigned core = 0);
  // Invalidates `bytes` from the cache LRU (e.g. files deleted by
  // `make clean`). Frees the frames back to the allocator.
  void CacheDrop(uint64_t bytes, unsigned core = 0);
  void DropCaches(unsigned core = 0);  // echo 3 > drop_caches
  uint64_t cache_bytes() const { return cache_count_ * kFrameSize; }

  // Kernel cache purge on hypervisor request (§3.3): drains allocator
  // caches (PCPs / reservations). Does not drop the page cache.
  void PurgeAllocatorCaches();

  // ------------------------------------------------------------------
  // Memory compaction / migration (virtio-mem unplug support)
  // ------------------------------------------------------------------

  void AddMigrationListener(MigrationListener* listener) {
    migration_listeners_.push_back(listener);
  }

  // Migrates every allocation in [first, first+count) (a range whose
  // free frames the caller has already isolated — buddy ClaimFreeInRange
  // or LLFree ClaimFreeInArea, §4.14) to frames outside the range, then
  // claims the evacuated frames. Returns false if a destination
  // allocation failed (range stays partially migrated; evacuated frames
  // remain claimed). `migrated` (optional) receives the number of frames
  // moved.
  bool MigrateRange(FrameId first, uint64_t count, unsigned core,
                    uint64_t* migrated = nullptr);

  // The allocation order recorded for a frame that is the head of a live
  // allocation (0xff if none) — used by migration and tests.
  unsigned AllocOrderAt(FrameId frame) const {
    const uint8_t raw = alloc_order_[frame] & 0x7f;
    return raw == 0 ? 0xff : raw - 1u;
  }

  // Whether the allocation headed at `frame` is unmovable (kernel
  // memory): compaction and migration must leave it in place.
  bool AllocUnmovableAt(FrameId frame) const {
    return (alloc_order_[frame] & 0x80) != 0;
  }

  // Releases a range previously isolated (claimed), leaving live
  // allocations alone — the rollback path shared by virtio-mem unplug
  // and memory compaction. Buddy zones coalesce isolated runs into
  // ranged releases; LLFree zones return the isolated frames in one
  // PutBatch (a fully evacuated area re-forms a free huge frame, §4.14).
  void ReleaseIsolatedRange(FrameId first, uint64_t count);

  // ------------------------------------------------------------------
  // Introspection
  // ------------------------------------------------------------------

  uint64_t FreeFrames() const;
  uint64_t AllocatedFrames() const { return total_frames_ - FreeFrames(); }
  // Free frames available at huge granularity (what huge-page-granular
  // reclamation could take right now).
  uint64_t FreeHugeFrames() const;
  // Fraction of free memory NOT recoverable as whole huge frames, over
  // all zones (DESIGN.md §4.14) — the compaction daemon's trigger input.
  double FragmentationScore() const;
  // Guest-used huge areas (LLFree only; Fig. 8 "huge" curve).
  uint64_t UsedHugeBytes() const;

  uint64_t rss_bytes() const { return ept_.rss_bytes(); }

  uint64_t oom_events() const { return oom_events_; }
  uint64_t cache_evictions() const { return cache_evictions_; }
  uint64_t migrated_frames() const { return migrated_frames_; }
  uint64_t ept_faults_4k() const { return ept_faults_4k_; }
  uint64_t ept_faults_2m() const { return ept_faults_2m_; }
  // Virtual CPU time spent in fault handling / population.
  sim::Time fault_time() const { return fault_time_; }

 private:
  friend class GuestVmTestPeer;

  Result<FrameId> AllocFromZones(unsigned order, AllocType type,
                                 unsigned core);
  // Shared post-allocation bookkeeping (alloc_order_, watermark, aux).
  void RecordAlloc(FrameId frame, unsigned order, AllocType type);
  void AuxAfterAlloc(FrameId frame, unsigned order);
  void AuxAfterFree(FrameId frame, unsigned order);
  // kswapd-style background reclaim: keeps free memory above a low
  // watermark by evicting page cache, so allocators are not forced into
  // their type-mixing fallback paths.
  void MaybeReclaimToWatermark(unsigned core);
  Result<FrameId> ZoneAlloc(Zone& zone, unsigned order, AllocType type,
                            unsigned core);
  void ZoneFree(Zone& zone, FrameId frame, unsigned order, unsigned core,
                AllocType type);

  sim::Simulation* sim_;
  hv::HostMemory* host_;
  GuestConfig config_;
  hv::CostModel costs_;
  uint64_t total_frames_;
  hv::Ept ept_;
  std::unique_ptr<hv::Iommu> iommu_;
  hv::InterferenceSink* sink_;
  std::vector<Zone> zones_;

  uint64_t approx_free_frames_ = 0;  // cheap watermark estimate
  uint64_t watermark_resync_countdown_ = 0;
  std::deque<FrameId> cache_frames_;  // page-cache LRU (order-0 frames)
  std::vector<bool> in_cache_;        // membership (deque entries go stale
                                      // when frames migrate)
  uint64_t cache_count_ = 0;
  // order+1 at allocation heads; bit 7 set for unmovable allocations.
  std::vector<uint8_t> alloc_order_;
  std::vector<MigrationListener*> migration_listeners_;
  std::function<bool()> oom_notifier_;
  bool in_oom_notifier_ = false;
  hv::AuxState* aux_ = nullptr;
  fault::Injector* fault_ = nullptr;
  std::function<void(HugeId)> aux_install_;
  std::function<bool(uint64_t)> host_pressure_;
  std::function<uint64_t(FrameId, uint64_t)> fault_surcharge_;
  uint64_t migrated_frames_ = 0;
  uint64_t oom_events_ = 0;
  uint64_t cache_evictions_ = 0;
  uint64_t ept_faults_4k_ = 0;
  uint64_t ept_faults_2m_ = 0;
  sim::Time fault_time_ = 0;
};

}  // namespace hyperalloc::guest
