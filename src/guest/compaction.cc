#include "src/guest/compaction.h"

#include "src/base/check.h"

namespace hyperalloc::guest {

Compactor::Compactor(GuestVm* vm, const CompactionConfig& config)
    : vm_(vm), config_(config), sim_(vm->simulation()) {
  HA_CHECK(vm != nullptr);
}

bool Compactor::TryCompactBlock(Zone& zone, HugeId local_block) {
  const FrameId global_first =
      zone.start + HugeToFrame(local_block);
  // Unmovable content pins the block: check before doing any work.
  for (FrameId f = global_first; f < global_first + kFramesPerHuge;) {
    const unsigned order = vm_->AllocOrderAt(f);
    if (order == 0xff) {
      ++f;
      continue;
    }
    if (vm_->AllocUnmovableAt(f)) {
      return false;
    }
    f += 1ull << order;
  }

  zone.buddy->ClaimFreeInRange(global_first - zone.start, kFramesPerHuge);
  if (!vm_->MigrateRange(global_first, kFramesPerHuge, config_.core)) {
    vm_->ReleaseIsolatedRange(global_first, kFramesPerHuge);
    ++failed_blocks_;
    return false;
  }
  // The whole block is evacuated: release it as one free huge block.
  zone.buddy->ReleaseRange(global_first - zone.start, kFramesPerHuge);
  ++blocks_compacted_;
  return true;
}

uint64_t Compactor::CompactPass(uint64_t max_blocks) {
  uint64_t freed = 0;
  for (Zone& zone : vm_->zones()) {
    if (zone.buddy == nullptr) {
      continue;  // LLFree defragments passively (§4.2)
    }
    const uint64_t blocks = zone.frames / kFramesPerHuge;
    for (HugeId b = 0; b < blocks && freed < max_blocks; ++b) {
      const uint64_t used = zone.buddy->UsedFramesInBlock(b);
      if (used == 0 || used > config_.max_used_frames) {
        continue;
      }
      if (TryCompactBlock(zone, b)) {
        ++freed;
      }
    }
    if (freed >= max_blocks) {
      break;
    }
  }
  return freed;
}

void Compactor::StartBackground() {
  if (running_) {
    return;
  }
  running_ = true;
  sim_->After(config_.period, [this] { Tick(); });
}

void Compactor::Stop() { running_ = false; }

void Compactor::Tick() {
  if (!running_) {
    return;
  }
  if (vm_->FreeHugeFrames() < config_.min_free_huge) {
    CompactPass(config_.blocks_per_wakeup);
  }
  sim_->After(config_.period, [this] { Tick(); });
}

}  // namespace hyperalloc::guest
