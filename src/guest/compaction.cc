#include "src/guest/compaction.h"

#include <algorithm>
#include <vector>

#include "src/base/check.h"

namespace hyperalloc::guest {

Compactor::Compactor(GuestVm* vm, const CompactionConfig& config)
    : vm_(vm), config_(config), sim_(vm->simulation()) {
  HA_CHECK(vm != nullptr);
}

bool Compactor::TryCompactBlock(Zone& zone, HugeId local_block) {
  const FrameId global_first =
      zone.start + HugeToFrame(local_block);
  // Unmovable content pins the block: check before doing any work.
  for (FrameId f = global_first; f < global_first + kFramesPerHuge;) {
    const unsigned order = vm_->AllocOrderAt(f);
    if (order == 0xff) {
      ++f;
      continue;
    }
    if (vm_->AllocUnmovableAt(f)) {
      return false;
    }
    f += 1ull << order;
  }

  // Isolate the block's free frames so the allocator cannot hand them
  // out as migration destinations (or to the guest) mid-evacuation.
  if (zone.buddy != nullptr) {
    zone.buddy->ClaimFreeInRange(global_first - zone.start, kFramesPerHuge);
  } else {
    std::vector<FrameId> claimed;
    zone.llfree->ClaimFreeInArea(local_block, &claimed);
  }
  uint64_t moved = 0;
  const bool ok =
      vm_->MigrateRange(global_first, kFramesPerHuge, config_.core, &moved);
  frames_migrated_ += moved;
  if (!ok) {
    vm_->ReleaseIsolatedRange(global_first, kFramesPerHuge);
    ++failed_blocks_;
    return false;
  }
  // The whole block is evacuated: release it as one free huge block. For
  // LLFree zones ReleaseIsolatedRange covers the full range (everything
  // is isolated now), so the area counter reaches 512 and the huge frame
  // re-forms (§4.14).
  if (zone.buddy != nullptr) {
    zone.buddy->ReleaseRange(global_first - zone.start, kFramesPerHuge);
  } else {
    vm_->ReleaseIsolatedRange(global_first, kFramesPerHuge);
  }
  ++blocks_compacted_;
  return true;
}

uint64_t Compactor::CompactPass(uint64_t max_blocks) {
  uint64_t freed = 0;
  for (Zone& zone : vm_->zones()) {
    if (zone.buddy != nullptr) {
      const uint64_t blocks = zone.frames / kFramesPerHuge;
      for (HugeId b = 0; b < blocks && freed < max_blocks; ++b) {
        const uint64_t used = zone.buddy->UsedFramesInBlock(b);
        if (used == 0 || used > config_.max_used_frames) {
          continue;
        }
        if (TryCompactBlock(zone, b)) {
          ++freed;
        }
      }
    } else {
      // LLFree zone (§4.14). Drain the per-vCPU cache first: cached
      // frames hold allocator bits while looking free to the guest, so
      // compacting around them would double-free on the next drain —
      // returning them up front lets ClaimFreeInArea isolate them
      // properly (and often re-forms huge frames by itself).
      if (zone.llfree_cache != nullptr) {
        zone.llfree_cache->Drain();
      }
      const uint64_t areas = zone.llfree->num_areas();
      for (HugeId a = 0; a < areas && freed < max_blocks; ++a) {
        const llfree::AreaEntry entry = zone.llfree->ReadArea(a);
        if (entry.allocated || entry.evicted) {
          continue;  // huge-allocated or host-unbacked: nothing to form
        }
        const uint64_t used = kFramesPerHuge - entry.free;
        if (used == 0 || used > config_.max_used_frames) {
          continue;  // already whole, or too expensive to evacuate
        }
        if (TryCompactBlock(zone, a)) {
          ++freed;
        }
      }
    }
    if (freed >= max_blocks) {
      break;
    }
  }
  return freed;
}

void Compactor::StartBackground() {
  if (running_) {
    return;
  }
  running_ = true;
  backoff_ = 1;
  sim_->After(config_.period, [this] { Tick(); });
}

void Compactor::Stop() { running_ = false; }

void Compactor::Tick() {
  if (!running_) {
    return;
  }
  const bool below_watermark =
      vm_->FreeHugeFrames() < config_.min_free_huge;
  const bool fragmented =
      vm_->FragmentationScore() > config_.frag_threshold;
  if (below_watermark || fragmented) {
    ++triggered_passes_;
    const uint64_t freed = CompactPass(config_.blocks_per_wakeup);
    if (freed > 0) {
      backoff_ = 1;
    } else if (backoff_ < config_.max_backoff) {
      // No progress: every candidate is pinned or too full. Back off so
      // a hopeless configuration does not burn CPU every period.
      backoff_ = std::min<uint64_t>(backoff_ * 2, config_.max_backoff);
    }
  } else {
    backoff_ = 1;
  }
  sim_->After(config_.period * backoff_, [this] { Tick(); });
}

}  // namespace hyperalloc::guest
