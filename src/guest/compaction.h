// Memory compaction (kcompactd) for buddy-allocator zones.
//
// Linux actively defragments physical memory by migrating movable pages
// out of sparsely used pageblocks, re-forming free huge blocks. The paper
// leans on this in two places: virtio-mem's unplug path depends on it
// ("virtio-mem has to compact and migrate memory, which turned out to be
// too slow", §5.5), and LLFree's per-type reservations are praised for
// making active compaction *less* necessary (§4.2). This model performs
// block-granular compaction over the same migration machinery virtio-mem
// uses, with migration costs charged to virtual time.
#pragma once

#include <cstdint>

#include "src/guest/guest_vm.h"
#include "src/sim/simulation.h"

namespace hyperalloc::guest {

struct CompactionConfig {
  // Only pageblocks with at most this many used frames are evacuation
  // candidates (cheap wins first, as kcompactd does).
  uint64_t max_used_frames = 128;
  // Background daemon: scan period and the free-huge-frame watermark
  // below which it compacts.
  sim::Time period = 2 * sim::kSec;
  uint64_t min_free_huge = 64;
  // Blocks compacted per daemon wakeup.
  uint64_t blocks_per_wakeup = 16;
  unsigned core = 0;
};

class Compactor {
 public:
  Compactor(GuestVm* vm, const CompactionConfig& config);

  // One synchronous compaction pass over all buddy zones: evacuates up
  // to `max_blocks` sparsely used pageblocks. Returns the number of huge
  // blocks freed.
  uint64_t CompactPass(uint64_t max_blocks);

  // kcompactd: periodically compacts while huge-frame availability is
  // below the watermark.
  void StartBackground();
  void Stop();

  uint64_t blocks_compacted() const { return blocks_compacted_; }
  uint64_t failed_blocks() const { return failed_blocks_; }

 private:
  bool TryCompactBlock(Zone& zone, HugeId local_block);
  void Tick();

  GuestVm* vm_;
  CompactionConfig config_;
  sim::Simulation* sim_;
  bool running_ = false;
  uint64_t blocks_compacted_ = 0;
  uint64_t failed_blocks_ = 0;
};

}  // namespace hyperalloc::guest
