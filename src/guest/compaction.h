// Memory compaction (kcompactd) for buddy- and LLFree-allocator zones.
//
// Linux actively defragments physical memory by migrating movable pages
// out of sparsely used pageblocks, re-forming free huge blocks. The paper
// leans on this in two places: virtio-mem's unplug path depends on it
// ("virtio-mem has to compact and migrate memory, which turned out to be
// too slow", §5.5), and LLFree's per-type reservations are praised for
// making active compaction *less* necessary (§4.2). This model performs
// block-granular compaction over the same migration machinery virtio-mem
// uses, with migration costs charged to virtual time.
//
// The huge-frame fast path (DESIGN.md §4.14) extends the daemon to
// LLFree zones: per-type reservations defragment passively, but
// long-lived straggler allocations still splinter areas, and every
// splintered area is a huge frame the order-9 reclaim path cannot take.
// The daemon isolates an area's free frames (LLFree::ClaimFreeInArea),
// migrates the stragglers out with the shared MigrateRange machinery,
// and releases the evacuated area as one re-formed huge frame. It wakes
// on a fragmentation score (the fraction of free memory not recoverable
// as whole huge frames) as well as the free-huge watermark, and backs
// off exponentially when a triggered pass makes no progress.
#pragma once

#include <cstdint>

#include "src/guest/guest_vm.h"
#include "src/sim/simulation.h"

namespace hyperalloc::guest {

struct CompactionConfig {
  // Only pageblocks with at most this many used frames are evacuation
  // candidates (cheap wins first, as kcompactd does).
  uint64_t max_used_frames = 128;
  // Background daemon: scan period and the free-huge-frame watermark
  // below which it compacts.
  sim::Time period = 2 * sim::kSec;
  uint64_t min_free_huge = 64;
  // Fragmentation-score trigger (§4.14): also compact when
  // GuestVm::FragmentationScore() exceeds this, even above the
  // watermark. Values > 1.0 disable the score trigger.
  double frag_threshold = 0.5;
  // Zero-progress backoff (§4.14): a triggered pass that frees nothing
  // doubles the wakeup period, up to period * max_backoff; any progress
  // resets it. Keeps a hopelessly pinned guest from burning CPU.
  uint64_t max_backoff = 8;
  // Blocks compacted per daemon wakeup.
  uint64_t blocks_per_wakeup = 16;
  unsigned core = 0;
};

class Compactor {
 public:
  Compactor(GuestVm* vm, const CompactionConfig& config);

  // One synchronous compaction pass over all zones: evacuates up to
  // `max_blocks` sparsely used pageblocks (buddy) / areas (LLFree).
  // Returns the number of huge blocks freed.
  uint64_t CompactPass(uint64_t max_blocks);

  // kcompactd: periodically compacts while huge-frame availability is
  // below the watermark or the fragmentation score is above threshold.
  void StartBackground();
  void Stop();

  uint64_t blocks_compacted() const { return blocks_compacted_; }
  uint64_t failed_blocks() const { return failed_blocks_; }
  // Base frames migrated out of evacuated blocks (the §4.14 "compaction
  // migrations" bench metric).
  uint64_t frames_migrated() const { return frames_migrated_; }
  // Daemon wakeups that ran a pass (watermark or score trigger).
  uint64_t triggered_passes() const { return triggered_passes_; }
  // Current backoff multiplier (1 = no backoff), for tests.
  uint64_t backoff_multiplier() const { return backoff_; }

 private:
  bool TryCompactBlock(Zone& zone, HugeId local_block);
  void Tick();

  GuestVm* vm_;
  CompactionConfig config_;
  sim::Simulation* sim_;
  bool running_ = false;
  uint64_t blocks_compacted_ = 0;
  uint64_t failed_blocks_ = 0;
  uint64_t frames_migrated_ = 0;
  uint64_t triggered_passes_ = 0;
  uint64_t backoff_ = 1;
};

}  // namespace hyperalloc::guest
