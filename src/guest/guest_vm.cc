#include "src/guest/guest_vm.h"

#include <algorithm>
#include <span>

#include "src/base/check.h"
#include "src/trace/trace.h"

namespace hyperalloc::guest {

namespace {

// How much page cache the kernel evicts per direct-reclaim round.
constexpr uint64_t kReclaimBatchFrames = 4096;  // 16 MiB

}  // namespace

GuestVm::GuestVm(sim::Simulation* sim, hv::HostMemory* host,
                 const GuestConfig& config, const hv::CostModel& costs)
    : sim_(sim),
      host_(host),
      config_(config),
      costs_(costs),
      total_frames_(config.memory_bytes / kFrameSize),
      ept_(total_frames_, host),
      sink_(&hv::NullInterference()) {
  HA_CHECK(sim != nullptr);
  HA_CHECK(config.memory_bytes % (kFrameSize << kMaxBuddyOrder) == 0);
  HA_CHECK(config.vcpus > 0);

  if (config.vfio) {
    iommu_ = std::make_unique<hv::Iommu>(total_frames_);
  }
  alloc_order_.assign(total_frames_, 0);
  in_cache_.assign(total_frames_, false);

  // Zone layout: [DMA32][Normal][Movable] — whichever are configured.
  uint64_t movable_frames = config.movable_bytes / kFrameSize;
  uint64_t dma32_frames = config.dma32_bytes / kFrameSize;
  HA_CHECK(movable_frames + dma32_frames <= total_frames_);
  if (movable_frames + dma32_frames == total_frames_) {
    dma32_frames = 0;  // degenerate config: keep a Normal zone
  }

  auto add_zone = [&](ZoneKind kind, FrameId start, uint64_t frames) {
    if (frames == 0) {
      return;
    }
    Zone zone;
    zone.kind = kind;
    zone.start = start;
    zone.frames = frames;
    if (config.allocator == AllocatorKind::kBuddy) {
      buddy::Buddy::Config bc = config.buddy_config;
      bc.cores = config.vcpus;
      zone.buddy = std::make_unique<buddy::Buddy>(frames, bc);
    } else {
      llfree::Config lc = config.llfree_config;
      lc.cores = config.vcpus;
      zone.llfree_state = std::make_unique<llfree::SharedState>(frames, lc);
      zone.llfree = std::make_unique<llfree::LLFree>(zone.llfree_state.get());
      if (config.llfree_cache_frames > 0) {
        llfree::FrameCache::CacheConfig cc;
        cc.slots = config.vcpus;
        cc.capacity = config.llfree_cache_frames;
        cc.refill = std::max(1u, config.llfree_cache_frames / 2);
        zone.llfree_cache =
            std::make_unique<llfree::FrameCache>(zone.llfree.get(), cc);
      }
    }
    zones_.push_back(std::move(zone));
  };

  approx_free_frames_ = total_frames_;
  const uint64_t normal_frames =
      total_frames_ - movable_frames - dma32_frames;
  add_zone(ZoneKind::kDma32, 0, dma32_frames);
  add_zone(ZoneKind::kNormal, dma32_frames, normal_frames);
  add_zone(ZoneKind::kMovable, dma32_frames + normal_frames, movable_frames);
}

Zone& GuestVm::ZoneOf(FrameId frame) {
  for (Zone& zone : zones_) {
    if (zone.Contains(frame)) {
      return zone;
    }
  }
  HA_CHECK(false && "frame outside every zone");
  __builtin_unreachable();
}

Result<FrameId> GuestVm::ZoneAlloc(Zone& zone, unsigned order,
                                   AllocType type, unsigned core) {
  if (zone.buddy != nullptr) {
    const Result<FrameId> r = zone.buddy->Alloc(core, order, type);
    if (r.ok()) {
      return zone.start + *r;
    }
    return r;
  }
  const Result<FrameId> r =
      zone.llfree_cache != nullptr
          ? zone.llfree_cache->Get(core, order, type)
          : zone.llfree->Get(core, order, type);
  if (r.ok()) {
    return zone.start + *r;
  }
  return r;
}

void GuestVm::ZoneFree(Zone& zone, FrameId frame, unsigned order,
                       unsigned core, AllocType type) {
  const FrameId local = frame - zone.start;
  if (zone.buddy != nullptr) {
    const auto err = zone.buddy->Free(core, local, order);
    HA_CHECK(!err.has_value());
    return;
  }
  // The recorded type keeps non-movable frees out of the per-vCPU cache
  // so they return through LLFree's type-aware slot selection.
  const auto err = zone.llfree_cache != nullptr
                       ? zone.llfree_cache->Put(core, local, order, type)
                       : zone.llfree->Put(local, order);
  HA_CHECK(!err.has_value());
}

Result<FrameId> GuestVm::AllocFromZones(unsigned order, AllocType type,
                                        unsigned core) {
  // Zone preference (Linux-like): movable allocations may use the
  // Movable zone first, then Normal, then DMA32; unmovable kernel
  // allocations never touch Movable.
  const bool movable = type != AllocType::kUnmovable;
  static constexpr ZoneKind kMovableOrder[] = {
      ZoneKind::kMovable, ZoneKind::kNormal, ZoneKind::kDma32};
  static constexpr ZoneKind kUnmovableOrder[] = {ZoneKind::kNormal,
                                                 ZoneKind::kDma32};
  const std::span<const ZoneKind> order_list =
      movable ? std::span<const ZoneKind>(kMovableOrder)
              : std::span<const ZoneKind>(kUnmovableOrder);
  for (const ZoneKind kind : order_list) {
    for (Zone& zone : zones_) {
      if (zone.kind != kind) {
        continue;
      }
      const Result<FrameId> r = ZoneAlloc(zone, order, type, core);
      if (r.ok()) {
        return r;
      }
    }
  }
  return AllocError::kNoMemory;
}

void GuestVm::MaybeReclaimToWatermark(unsigned core) {
  if (watermark_resync_countdown_ == 0) {
    approx_free_frames_ = FreeFrames();  // periodic exact resync
    watermark_resync_countdown_ = 4096;
  }
  --watermark_resync_countdown_;
  const uint64_t low_watermark = std::max<uint64_t>(total_frames_ / 64,
                                                    kReclaimBatchFrames);
  int rounds = 8;
  while (approx_free_frames_ < low_watermark && !cache_frames_.empty() &&
         rounds-- > 0) {
    CacheDrop(kReclaimBatchFrames * kFrameSize, core);
    ++cache_evictions_;
    watermark_resync_countdown_ = 0;  // state changed: resync next time
    approx_free_frames_ = FreeFrames();
  }
}

void GuestVm::RecordAlloc(FrameId frame, unsigned order, AllocType type) {
  alloc_order_[frame] = static_cast<uint8_t>(
      (order + 1) | (type == AllocType::kUnmovable ? 0x80 : 0));
  approx_free_frames_ -= std::min<uint64_t>(approx_free_frames_,
                                            1ull << order);
  if (aux_ != nullptr) {
    AuxAfterAlloc(frame, order);
  }
}

Result<FrameId> GuestVm::Alloc(unsigned order, AllocType type,
                               unsigned core, bool allow_oom_notify) {
  MaybeReclaimToWatermark(core);
  for (int round = 0; round < 64; ++round) {
    const Result<FrameId> r = AllocFromZones(order, type, core);
    if (r.ok()) {
      RecordAlloc(*r, order, type);
      return r;
    }
    // Direct reclaim: evict page cache and retry. Higher orders also
    // purge allocator caches, since reclaim alone rarely forms
    // contiguity.
    if (cache_frames_.empty()) {
      break;
    }
    const uint64_t batch =
        std::max<uint64_t>(kReclaimBatchFrames, 4ull << order);
    CacheDrop(batch * kFrameSize, core);
    ++cache_evictions_;
    if (order > 0 && round >= 1) {
      PurgeAllocatorCaches();
    }
  }
  // One last attempt with drained allocator caches.
  PurgeAllocatorCaches();
  const Result<FrameId> r = AllocFromZones(order, type, core);
  if (r.ok()) {
    RecordAlloc(*r, order, type);
    return r;
  }
  // "Costly" orders (> 3, e.g. THP) fail gracefully — callers fall back
  // to base pages. Only low-order failures are out-of-memory situations.
  if (order <= 3) {
    // Deflate-on-OOM (virtio-balloon feature): give the balloon a chance
    // to release memory before declaring OOM.
    if (allow_oom_notify && oom_notifier_ && !in_oom_notifier_) {
      in_oom_notifier_ = true;
      const bool freed = oom_notifier_();
      in_oom_notifier_ = false;
      if (freed) {
        const Result<FrameId> retry = AllocFromZones(order, type, core);
        if (retry.ok()) {
          RecordAlloc(*retry, order, type);
          return retry;
        }
      }
    }
    ++oom_events_;
  }
  return AllocError::kNoMemory;
}

unsigned GuestVm::AllocBatch(unsigned order, unsigned count, AllocType type,
                             unsigned core, std::vector<FrameId>* out,
                             bool allow_oom_notify) {
  HA_CHECK(out != nullptr);
  if (count == 0) {
    return 0;
  }
  MaybeReclaimToWatermark(core);
  unsigned got = 0;
  if (order <= llfree::kMaxSingleWordOrder) {
    // LLFree zones in the usual preference order, filled word-at-a-time.
    const bool movable = type != AllocType::kUnmovable;
    static constexpr ZoneKind kMovableOrder[] = {
        ZoneKind::kMovable, ZoneKind::kNormal, ZoneKind::kDma32};
    static constexpr ZoneKind kUnmovableOrder[] = {ZoneKind::kNormal,
                                                   ZoneKind::kDma32};
    const std::span<const ZoneKind> order_list =
        movable ? std::span<const ZoneKind>(kMovableOrder)
                : std::span<const ZoneKind>(kUnmovableOrder);
    for (const ZoneKind kind : order_list) {
      for (Zone& zone : zones_) {
        if (zone.kind != kind || zone.llfree == nullptr || got == count) {
          continue;
        }
        const size_t before = out->size();
        got += zone.llfree->GetBatch(core, order, count - got, type, out);
        for (size_t i = before; i < out->size(); ++i) {
          (*out)[i] += zone.start;
          RecordAlloc((*out)[i], order, type);
        }
      }
    }
  }
  // Remainder: buddy zones and the pressure paths (direct reclaim,
  // cache purge, deflate-on-OOM) via single Allocs.
  while (got < count) {
    const Result<FrameId> r = Alloc(order, type, core, allow_oom_notify);
    if (!r.ok()) {
      break;
    }
    out->push_back(*r);
    ++got;
  }
  return got;
}

void GuestVm::FreeBatch(std::span<const FrameId> frames, unsigned order,
                        unsigned core) {
  if (order > llfree::kMaxSingleWordOrder) {
    for (const FrameId f : frames) {
      Free(f, order, core);
    }
    return;
  }
  // Bucket LLFree-zone frames (as zone-local ids) for one PutBatch per
  // zone; everything else takes the single-frame path.
  std::vector<std::vector<FrameId>> buckets(zones_.size());
  for (const FrameId f : frames) {
    HA_CHECK(f < total_frames_);
    size_t zi = 0;
    while (!zones_[zi].Contains(f)) {
      ++zi;
    }
    Zone& zone = zones_[zi];
    if (zone.llfree == nullptr) {
      Free(f, order, core);
      continue;
    }
    HA_CHECK((alloc_order_[f] & 0x7fu) == order + 1);
    alloc_order_[f] = 0;
    approx_free_frames_ += 1ull << order;
    buckets[zi].push_back(f - zone.start);
    if (aux_ != nullptr) {
      AuxAfterFree(f, order);  // no-op for LLFree zones, kept for clarity
    }
  }
  for (size_t zi = 0; zi < buckets.size(); ++zi) {
    if (buckets[zi].empty()) {
      continue;
    }
    const unsigned freed = zones_[zi].llfree->PutBatch(buckets[zi], order);
    HA_CHECK(freed == buckets[zi].size());
  }
}

void GuestVm::AttachAuxBridge(hv::AuxState* aux,
                              std::function<void(HugeId)> install) {
  HA_CHECK(aux != nullptr);
  HA_CHECK(aux->size() == HugesForFrames(total_frames_));
  aux_ = aux;
  aux_install_ = std::move(install);
}

void GuestVm::AuxAfterAlloc(FrameId frame, unsigned order) {
  const HugeId first = FrameToHuge(frame);
  const HugeId last = FrameToHuge(frame + (1ull << order) - 1);
  for (HugeId h = first; h <= last; ++h) {
    aux_->SetAllocated(h);
    if (aux_->Evicted(h)) {
      // DMA safety: block until the hypervisor installed the frame.
      aux_install_(h);
    }
  }
}

void GuestVm::AuxAfterFree(FrameId frame, unsigned order) {
  Zone& zone = ZoneOf(frame);
  if (zone.buddy == nullptr) {
    return;  // LLFree guests carry A in their own area index
  }
  const HugeId first = FrameToHuge(frame);
  const HugeId last = FrameToHuge(frame + (1ull << order) - 1);
  for (HugeId h = first; h <= last; ++h) {
    const HugeId local = h - FrameToHuge(zone.start);
    if (zone.buddy->UsedFramesInBlock(local) == 0) {
      aux_->ClearAllocated(h);
    }
  }
}

void GuestVm::Free(FrameId frame, unsigned order, unsigned core) {
  HA_CHECK(frame < total_frames_);
  HA_CHECK((alloc_order_[frame] & 0x7fu) == order + 1);
  const AllocType type = (alloc_order_[frame] & 0x80) != 0
                             ? AllocType::kUnmovable
                             : AllocType::kMovable;
  alloc_order_[frame] = 0;
  approx_free_frames_ += 1ull << order;
  ZoneFree(ZoneOf(frame), frame, order, core, type);
  if (aux_ != nullptr) {
    AuxAfterFree(frame, order);
  }
}

bool GuestVm::PopulateFrames(FrameId first, uint64_t count) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    const uint64_t missing = count - ept_.CountMapped(first, count);
    if (missing == 0) {
      return true;
    }
    const uint64_t mapped = ept_.Map(first, count);
    if (mapped == hv::Ept::kFaultInjected) {
      // Injected map fault: pressure handling cannot help; the caller's
      // recovery layer (bounded retry with backoff) owns this failure.
      return false;
    }
    if (mapped != hv::Ept::kNoHostMemory) {
      return true;
    }
    if (!host_pressure_ || !host_pressure_(missing)) {
      break;
    }
  }
  if (host_pressure_ == nullptr && fault_ != nullptr && fault_->enabled()) {
    // Injected pool exhaustion with no swap attached: recoverable by the
    // caller's retry path rather than fatal.
    return false;
  }
  HA_CHECK(host_pressure_ != nullptr);  // without swap, exhaustion is fatal
  return false;
}

void GuestVm::Touch(FrameId first, uint64_t count) {
  HA_CHECK(first + count <= total_frames_);
  const sim::Time start = sim_->now();
  sim::Time cost = 0;
  uint64_t populated_bytes = 0;

  FrameId frame = first;
  const FrameId end = first + count;
  while (frame < end) {
    const HugeId huge = FrameToHuge(frame);
    const FrameId huge_base = HugeToFrame(huge);
    const FrameId huge_end = std::min<FrameId>(huge_base + kFramesPerHuge,
                                               total_frames_);
    const FrameId chunk_end = std::min(huge_end, end);
    const uint64_t chunk = chunk_end - frame;

    const uint64_t mapped_in_huge =
        ept_.CountMapped(huge_base, huge_end - huge_base);
    if (mapped_in_huge == 0) {
      // THP-style population: first touch of a fully unmapped huge frame
      // backs the entire 2 MiB region (one EPT fault, one host huge page).
      const uint64_t huge_frames = huge_end - huge_base;
      PopulateFrames(huge_base, huge_frames);
      ++ept_faults_2m_;
      HA_COUNT("guest.ept_fault_2m");
      HA_TRACE_EVENT(trace::Category::kGuest, trace::Op::kFault2m, huge_base,
                     huge_frames);
      cost += costs_.ept_fault_2m_ns + huge_frames * costs_.populate_4k_ns;
      populated_bytes += huge_frames * kFrameSize;
    } else if (mapped_in_huge < huge_end - huge_base) {
      // Partially backed huge frame: missing 4 KiB pages fault
      // individually.
      const uint64_t missing = chunk - ept_.CountMapped(frame, chunk);
      if (missing > 0) {
        PopulateFrames(frame, chunk);
        ept_faults_4k_ += missing;
        HA_COUNT_N("guest.ept_fault_4k", missing);
        HA_TRACE_EVENT(trace::Category::kGuest, trace::Op::kFault4k, frame,
                       missing);
        cost += missing * (costs_.ept_fault_4k_ns + costs_.populate_4k_ns);
        populated_bytes += missing * kFrameSize;
      }
    }
    if (fault_surcharge_) {
      cost += fault_surcharge_(frame, chunk);  // swap-in reads
    }
    cost += chunk * costs_.touch_4k_ns;  // the write itself (17 GiB/s)
    // Expose the access to the hypervisor via the shared hotness hint
    // (6): one relaxed check + rare CAS per 2 MiB of traffic.
    {
      Zone& zone = ZoneOf(frame);
      if (zone.llfree != nullptr) {
        zone.llfree->MarkHot(FrameToHuge(frame - zone.start));
      }
    }
    frame = chunk_end;
  }

  fault_time_ += cost;
  sim_->AdvanceClock(cost);
  if (populated_bytes > 0 && cost > 0) {
    sink_->OnBandwidth(start, start + cost,
                       static_cast<double>(populated_bytes) /
                           static_cast<double>(cost));
  }
}

bool GuestVm::DmaWrite(FrameId first, uint64_t count) {
  HA_CHECK(first + count <= total_frames_);
  if (iommu_ == nullptr) {
    // Emulated device: QEMU writes through its own mapping, faulting the
    // memory in like a CPU access — always succeeds.
    Touch(first, count);
    return true;
  }
  // Passthrough device: no IO page faults possible (§2). Every frame must
  // already be pinned in the IOMMU.
  for (HugeId huge = FrameToHuge(first);
       huge <= FrameToHuge(first + count - 1); ++huge) {
    if (!iommu_->IsPinned(huge)) {
      return false;  // DMA transfer fails
    }
  }
  return true;
}

void GuestVm::CacheAdd(uint64_t bytes, unsigned core) {
  const uint64_t frames = FramesForBytes(bytes);
  for (uint64_t i = 0; i < frames; ++i) {
    const Result<FrameId> r = Alloc(0, AllocType::kMovable, core);
    if (!r.ok()) {
      return;  // cache fills only as far as memory allows
    }
    Touch(*r, 1);
    cache_frames_.push_back(*r);
    in_cache_[*r] = true;
    ++cache_count_;
  }
}

void GuestVm::CacheDrop(uint64_t bytes, unsigned core) {
  uint64_t frames = FramesForBytes(bytes);
  while (frames > 0 && !cache_frames_.empty()) {
    const FrameId front = cache_frames_.front();
    cache_frames_.pop_front();
    if (!in_cache_[front]) {
      continue;  // stale entry: the frame migrated away
    }
    in_cache_[front] = false;
    --cache_count_;
    Free(front, 0, core);
    --frames;
  }
}

void GuestVm::DropCaches(unsigned core) {
  CacheDrop(cache_count_ * kFrameSize, core);
}

bool GuestVm::MigrateRange(FrameId first, uint64_t count, unsigned core,
                           uint64_t* migrated) {
  HA_CHECK(first + count <= total_frames_);
  Zone& zone = ZoneOf(first);
  HA_CHECK(first + count <= zone.end());
  const sim::Time t0 = sim_->now();
  uint64_t moved = 0;

  // Pre-size the order-0 destination train: one AllocBatch claims the base
  // destinations up front (word-at-a-time on LLFree zones) and the loop
  // consumes them; higher orders stay per-allocation. Leftovers — an early
  // abort, or a source freed while the clock advanced — go back in one
  // FreeBatch below.
  uint64_t base_wanted = 0;
  for (FrameId g = first; g < first + count;) {
    if (alloc_order_[g] == 0) {
      ++g;
      continue;
    }
    if (AllocUnmovableAt(g)) {
      break;  // migration aborts there; later destinations are never used
    }
    const unsigned order = AllocOrderAt(g);
    base_wanted += order == 0 ? 1 : 0;
    g += 1ull << order;
  }
  std::vector<FrameId> base_dests;
  size_t next_base = 0;
  if (base_wanted > 0) {
    AllocBatch(0, static_cast<unsigned>(base_wanted), AllocType::kMovable,
               core, &base_dests);
  }

  FrameId f = first;
  bool ok = true;
  while (f < first + count) {
    if (alloc_order_[f] == 0) {
      ++f;
      continue;
    }
    if (AllocUnmovableAt(f)) {
      ok = false;  // pinned kernel memory: the range cannot be evacuated
      break;
    }
    const unsigned order = AllocOrderAt(f);
    const uint64_t size = 1ull << order;
    const Result<FrameId> dest =
        order == 0 && next_base < base_dests.size()
            ? Result<FrameId>(base_dests[next_base++])
            : Alloc(order, AllocType::kMovable, core);
    if (!dest.ok()) {
      ok = false;  // nowhere to migrate: the block stays partially used
      break;
    }
    HA_CHECK(*dest < first || *dest >= first + count);
    // Copy the contents (charging copy time + bus traffic) and fix up all
    // owners of the old frame id.
    sim_->AdvanceClock(size * costs_.migrate_4k_ns);
    Touch(*dest, size);
    if (in_cache_[f]) {
      HA_CHECK(order == 0);
      in_cache_[f] = false;
      in_cache_[*dest] = true;
      cache_frames_.push_back(*dest);
    }
    for (MigrationListener* listener : migration_listeners_) {
      listener->OnFrameMigrated(f, *dest, order);
    }
    // Transfer ownership of the evacuated frames to the isolation: they
    // are already marked allocated in the buddy, which is exactly the
    // claimed state — releasing them to the free lists would let the
    // allocator hand them out again (alloc_contig_range semantics).
    alloc_order_[f] = 0;
    moved += size;
    f += size;
  }

  if (next_base < base_dests.size()) {
    FreeBatch(std::span<const FrameId>(base_dests).subspan(next_base), 0,
              core);
  }

  migrated_frames_ += moved;
  if (migrated != nullptr) {
    *migrated = moved;
  }
  const sim::Time t1 = sim_->now();
  if (moved > 0 && t1 > t0) {
    // Migration reads + writes every byte once.
    sink_->OnBandwidth(t0, t1,
                       2.0 * static_cast<double>(moved * kFrameSize) /
                           static_cast<double>(t1 - t0));
  }
  return ok;
}

void GuestVm::PurgeAllocatorCaches() {
  for (Zone& zone : zones_) {
    if (zone.buddy != nullptr) {
      zone.buddy->DrainPcp();
    } else {
      if (zone.llfree_cache != nullptr) {
        zone.llfree_cache->Drain();
      }
      zone.llfree->DrainReservations();
    }
  }
}

void GuestVm::ReleaseIsolatedRange(FrameId first, uint64_t count) {
  Zone& zone = ZoneOf(first);
  if (zone.buddy != nullptr) {
    FrameId f = first;
    while (f < first + count) {
      const unsigned order = AllocOrderAt(f);
      if (order != 0xff) {
        f += 1ull << order;  // live allocation: leave it alone
        continue;
      }
      // Coalesce the maximal isolated run into one buddy release.
      const FrameId run_start = f;
      while (f < first + count && AllocOrderAt(f) == 0xff) {
        ++f;
      }
      zone.buddy->ReleaseRange(run_start - zone.start, f - run_start);
    }
    return;
  }
  // LLFree zone (§4.14): the isolated frames are the order-0 claims
  // ClaimFreeInArea took plus any evacuated source frames MigrateRange
  // transferred to the isolation. One PutBatch returns them all; when
  // the area is fully evacuated its counter reaches 512 and the free
  // huge frame is re-formed without any dedicated release primitive.
  // A frame freed concurrently by the guest (bit already clear) is
  // skipped by PutBatch's double-free detection.
  std::vector<FrameId> isolated;
  isolated.reserve(count);
  FrameId f = first;
  while (f < first + count) {
    const unsigned order = AllocOrderAt(f);
    if (order != 0xff) {
      f += 1ull << order;  // live allocation: leave it alone
      continue;
    }
    isolated.push_back(f - zone.start);
    ++f;
  }
  zone.llfree->PutBatch(isolated, 0);
}

uint64_t GuestVm::FreeFrames() const {
  uint64_t total = 0;
  for (const Zone& zone : zones_) {
    total += zone.buddy != nullptr ? zone.buddy->FreeFrames()
                                   : zone.llfree->FreeFrames();
    if (zone.llfree_cache != nullptr) {
      // Cached frames look allocated to LLFree but are free to the guest.
      total += zone.llfree_cache->CachedFrames();
    }
  }
  return total;
}

uint64_t GuestVm::FreeHugeFrames() const {
  uint64_t total = 0;
  for (const Zone& zone : zones_) {
    total += zone.buddy != nullptr
                 ? zone.buddy->FreeHugeFrames() / kFramesPerHuge
                 : zone.llfree->FreeHugeFrames();
  }
  return total;
}

double GuestVm::FragmentationScore() const {
  const uint64_t free = FreeFrames();
  if (free == 0) {
    return 0.0;
  }
  const uint64_t huge_free = FreeHugeFrames() * kFramesPerHuge;
  // Cached (per-vCPU) frames count as free but not huge-claimable, so
  // they contribute to the score — draining them is part of what a
  // compaction pass does.
  return huge_free >= free
             ? 0.0
             : 1.0 - static_cast<double>(huge_free) /
                         static_cast<double>(free);
}

uint64_t GuestVm::UsedHugeBytes() const {
  uint64_t blocks = 0;
  for (const Zone& zone : zones_) {
    blocks += zone.buddy != nullptr ? zone.buddy->UsedHugeBlocks()
                                    : zone.llfree->UsedHugeAreas();
  }
  return blocks * kHugeSize;
}

}  // namespace hyperalloc::guest
