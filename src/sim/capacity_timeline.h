// Piecewise-constant capacity model for contended resources.
//
// A CapacityTimeline describes how much of a resource (vCPU compute,
// memory bandwidth) is available to a consumer over virtual time. The base
// capacity is reduced by "loads" — finite intervals during which some other
// activity (balloon-driver inflation, virtio-mem migration, host page
// population) competes for the resource. STREAM iterations and FTQ samples
// integrate over this timeline to compute slowdowns.
#pragma once

#include <map>

#include "src/sim/simulation.h"

namespace hyperalloc::sim {

class CapacityTimeline {
 public:
  // `base_capacity` is in units per nanosecond (e.g. bytes/ns for
  // bandwidth, or 1.0 for a fully available CPU).
  explicit CapacityTimeline(double base_capacity);

  double base_capacity() const { return base_; }

  // Registers a competing load of `units_per_ns` during [start, end).
  // Capacity is clamped to >= 2 % of base so consumers always make
  // progress (mirrors OS fairness: background work cannot fully starve
  // a runnable thread).
  void AddLoad(Time start, Time end, double units_per_ns);

  // Available capacity at time t (>= floor).
  double CapacityAt(Time t) const;

  // Integral of available capacity over [a, b) — total units obtainable.
  double Integrate(Time a, Time b) const;

  // Starting at `start`, how long does it take to obtain `units`?
  // Returns the completion time.
  Time ConsumeFrom(Time start, double units) const;

  // Drops all load segments that end at or before `t` (bounded memory for
  // long-running simulations).
  void TrimBefore(Time t);

 private:
  double FlooredCapacity(double raw) const;

  double base_;
  double floor_;
  // Sum of active loads changes at these times (delta encoding).
  std::map<Time, double> deltas_;
};

}  // namespace hyperalloc::sim
