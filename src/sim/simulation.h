// Deterministic discrete-event simulation engine.
//
// All protocol-level experiments (reclamation speed, STREAM/FTQ impact,
// footprint traces) run in *virtual time* (DESIGN.md §4.3): operations
// charge calibrated
// nanosecond costs (src/hv/cost_model.h) to this clock, which makes results
// reproducible and independent of the build machine. Real data-structure
// work (LLFree/buddy) still executes for real; only its *cost* is virtual.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/base/check.h"

namespace hyperalloc::sim {

// Virtual time in nanoseconds since simulation start.
using Time = uint64_t;

inline constexpr Time kUs = 1000;
inline constexpr Time kMs = 1000 * kUs;
inline constexpr Time kSec = 1000 * kMs;
inline constexpr Time kMin = 60 * kSec;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` to run at absolute virtual time `at` (>= now).
  void At(Time at, std::function<void()> fn) {
    HA_CHECK(at >= now_);
    queue_.push(Event{at, next_seq_++, std::move(fn)});
  }

  // Schedules `fn` to run `delay` nanoseconds from now.
  void After(Time delay, std::function<void()> fn) {
    At(now_ + delay, std::move(fn));
  }

  // Advances the clock without dispatching an event (used by inline code
  // paths that consume virtual time mid-handler, e.g. a blocking hypercall).
  void AdvanceClock(Time delta) { now_ += delta; }

  // Runs the next pending event. Returns false if the queue is empty.
  bool Step() {
    if (queue_.empty()) {
      return false;
    }
    // The heap is a max-heap on `operator<`, which orders later events
    // first; top() is therefore the earliest event.
    Event event = queue_.top();
    queue_.pop();
    // Events scheduled in the past can occur when a handler advanced the
    // clock inline past a pending event; dispatch them at the current time.
    if (event.at > now_) {
      now_ = event.at;
    }
    event.fn();
    return true;
  }

  // Processes all events with timestamp <= deadline; the clock ends at
  // max(now, deadline).
  void RunUntil(Time deadline) {
    while (!queue_.empty() && queue_.top().at <= deadline) {
      Step();
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
  }

  // Processes events until the queue drains.
  void RunUntilIdle() {
    while (Step()) {
    }
  }

  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    Time at;
    uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::function<void()> fn;

    bool operator<(const Event& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return seq > other.seq;
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event> queue_;
};

}  // namespace hyperalloc::sim
