#include "src/sim/vcpu.h"

#include "src/base/check.h"

namespace hyperalloc::sim {

VcpuSet::VcpuSet(unsigned num_cpus) {
  HA_CHECK(num_cpus > 0);
  cpus_.reserve(num_cpus);
  for (unsigned i = 0; i < num_cpus; ++i) {
    cpus_.push_back(std::make_unique<CapacityTimeline>(1.0));
  }
}

CapacityTimeline& VcpuSet::cpu(unsigned i) {
  HA_CHECK(i < cpus_.size());
  return *cpus_[i];
}

const CapacityTimeline& VcpuSet::cpu(unsigned i) const {
  HA_CHECK(i < cpus_.size());
  return *cpus_[i];
}

void VcpuSet::StealCpu(unsigned i, Time start, Time end, double fraction) {
  cpu(i).AddLoad(start, end, fraction);
}

void VcpuSet::BroadcastIpi(Time at, Time duration_ns) {
  ++total_ipis_;
  for (auto& cpu_timeline : cpus_) {
    cpu_timeline->AddLoad(at, at + duration_ns, 1.0);
  }
}

}  // namespace hyperalloc::sim
