#include "src/sim/capacity_timeline.h"

#include <algorithm>
#include <limits>

#include "src/base/check.h"

namespace hyperalloc::sim {

CapacityTimeline::CapacityTimeline(double base_capacity)
    : base_(base_capacity), floor_(base_capacity * 0.02) {
  HA_CHECK(base_capacity > 0.0);
}

void CapacityTimeline::AddLoad(Time start, Time end, double units_per_ns) {
  HA_CHECK(start <= end);
  if (start == end || units_per_ns <= 0.0) {
    return;
  }
  deltas_[start] += units_per_ns;
  deltas_[end] -= units_per_ns;
}

double CapacityTimeline::FlooredCapacity(double raw) const {
  return std::max(raw, floor_);
}

double CapacityTimeline::CapacityAt(Time t) const {
  double load = 0.0;
  for (const auto& [at, delta] : deltas_) {
    if (at > t) {
      break;
    }
    load += delta;
  }
  return FlooredCapacity(base_ - load);
}

double CapacityTimeline::Integrate(Time a, Time b) const {
  HA_CHECK(a <= b);
  if (a == b) {
    return 0.0;
  }
  double total = 0.0;
  double load = 0.0;
  Time cursor = a;
  auto it = deltas_.begin();
  // Accumulate load active before `a`.
  for (; it != deltas_.end() && it->first <= a; ++it) {
    load += it->second;
  }
  for (; it != deltas_.end() && it->first < b; ++it) {
    total += FlooredCapacity(base_ - load) *
             static_cast<double>(it->first - cursor);
    cursor = it->first;
    load += it->second;
  }
  total += FlooredCapacity(base_ - load) * static_cast<double>(b - cursor);
  return total;
}

Time CapacityTimeline::ConsumeFrom(Time start, double units) const {
  HA_CHECK(units >= 0.0);
  if (units == 0.0) {
    return start;
  }
  double load = 0.0;
  Time cursor = start;
  auto it = deltas_.begin();
  for (; it != deltas_.end() && it->first <= start; ++it) {
    load += it->second;
  }
  double remaining = units;
  for (; it != deltas_.end(); ++it) {
    const double cap = FlooredCapacity(base_ - load);
    const double available =
        cap * static_cast<double>(it->first - cursor);
    if (available >= remaining) {
      return cursor + static_cast<Time>(remaining / cap);
    }
    remaining -= available;
    cursor = it->first;
    load += it->second;
  }
  const double cap = FlooredCapacity(base_ - load);
  return cursor + static_cast<Time>(remaining / cap);
}

void CapacityTimeline::TrimBefore(Time t) {
  // Only safe to drop *balanced* prefix segments; fold them into nothing.
  // We conservatively erase entries whose cumulative effect has ended.
  double prefix = 0.0;
  auto it = deltas_.begin();
  while (it != deltas_.end() && it->first <= t) {
    prefix += it->second;
    ++it;
  }
  if (prefix == 0.0) {
    deltas_.erase(deltas_.begin(), it);
  }
}

}  // namespace hyperalloc::sim
