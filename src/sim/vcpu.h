// Guest vCPU model.
//
// Each vCPU owns a CapacityTimeline (1.0 = fully available). Workload
// threads are pinned 1:1 to vCPUs; kernel threads (balloon driver,
// virtio-mem migration, LLFree install paths) "steal" capacity by adding
// loads. TLB shootdown IPIs are modelled as short full-capacity steals on
// every vCPU.
#pragma once

#include <memory>
#include <vector>

#include "src/sim/capacity_timeline.h"
#include "src/sim/simulation.h"

namespace hyperalloc::sim {

class VcpuSet {
 public:
  explicit VcpuSet(unsigned num_cpus);

  unsigned size() const { return static_cast<unsigned>(cpus_.size()); }

  CapacityTimeline& cpu(unsigned i);
  const CapacityTimeline& cpu(unsigned i) const;

  // A kernel thread consuming `fraction` of cpu `i` during [start, end).
  void StealCpu(unsigned i, Time start, Time end, double fraction);

  // An IPI broadcast (e.g. TLB shootdown): every vCPU loses `duration_ns`
  // of full capacity starting at `at`.
  void BroadcastIpi(Time at, Time duration_ns);

  // Aggregate IPI accounting (for reporting).
  uint64_t total_ipis() const { return total_ipis_; }

 private:
  std::vector<std::unique_ptr<CapacityTimeline>> cpus_;
  uint64_t total_ipis_ = 0;
};

}  // namespace hyperalloc::sim
