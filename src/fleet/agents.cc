#include "src/fleet/agents.h"

#include <algorithm>
#include <string>

#include "src/base/check.h"

namespace hyperalloc::fleet {

DemandAgent::DemandAgent(const DemandAgentConfig& config) : config_(config) {
  HA_CHECK(config_.chunk_bytes > 0);
  HA_CHECK(config_.adjust_period > 0);
}

DemandAgent::~DemandAgent() = default;

void DemandAgent::Start(VmContext* context) {
  HA_CHECK(context_ == nullptr);
  context_ = context;
  pool_ = std::make_unique<workloads::MemoryPool>(context->vm);
  pool_->DisableMigrationTracking();
  // Demand transitions apply immediately; the periodic tick reconciles
  // held memory against demand *and* limit (the limit moves between
  // arrivals as the policy layer works). Arrival times are relative to
  // now: the engine's initial-limit shrink already advanced this VM's
  // clock (by the same amount on every VM, so alignment holds).
  const sim::Time start = context->sim->now();
  for (const Arrival& arrival : config_.trace) {
    context->sim->At(start + arrival.at, [this, bytes = arrival.bytes] {
      want_bytes_ = bytes;
      Adjust();
    });
  }
  adjust_tick_ = [this] {
    Adjust();
    const sim::Time next =
        context_->sim->now() + config_.adjust_period;
    if (context_->horizon == 0 || next <= context_->horizon) {
      context_->sim->After(config_.adjust_period, adjust_tick_);
    }
  };
  context->sim->At(context->sim->now(), adjust_tick_);
}

bool DemandAgent::finished() const {
  return context_ != nullptr && context_->horizon > 0 &&
         context_->sim->now() > context_->horizon;
}

uint64_t DemandAgent::demand_bytes() const {
  const uint64_t memory =
      context_ != nullptr ? context_->vm->config().memory_bytes : 0;
  return std::min(want_bytes_ + spike_bytes_, memory);
}

void DemandAgent::OnPressureSpike(uint64_t bytes) {
  spike_bytes_ += bytes;
}

void DemandAgent::Adjust() {
  const uint64_t limit = context_->deflator != nullptr
                             ? context_->deflator->limit_bytes()
                             : context_->vm->config().memory_bytes;
  const uint64_t cap =
      limit > config_.margin_bytes ? limit - config_.margin_bytes : 0;
  const uint64_t target = std::min(demand_bytes(), cap);
  while (held_bytes_ + config_.chunk_bytes <= target) {
    const uint64_t region = pool_->AllocRegion(
        config_.chunk_bytes, config_.thp_fraction, /*core=*/0);
    // The admission ledger keeps sum(limits) under pool capacity and we
    // stay under our limit, so allocation cannot fail (the determinism
    // contract rides on this).
    HA_CHECK(region != 0);
    regions_.push_back(region);
    held_bytes_ += config_.chunk_bytes;
  }
  while (held_bytes_ > target && !regions_.empty()) {
    pool_->FreeRegion(regions_.back(), /*core=*/0);
    regions_.pop_back();
    held_bytes_ -= config_.chunk_bytes;
  }
}

CompileAgent::CompileAgent(const CompileAgentConfig& config)
    : config_(config) {
  HA_CHECK(config_.builds_per_vm > 0);
}

CompileAgent::~CompileAgent() = default;

void CompileAgent::Start(VmContext* context) {
  HA_CHECK(context_ == nullptr);
  context_ = context;
  // Same construction order as the old harness VM world: pool, vcpus,
  // interference hub, then auto-reclaim (or full population for static
  // baselines) — the event schedule, and with it the RSS series, is
  // byte-identical.
  pool_ = std::make_unique<workloads::MemoryPool>(context->vm);
  pool_->DisableMigrationTracking();
  vcpus_ = std::make_unique<sim::VcpuSet>(12);
  hub_ = std::make_unique<workloads::InterferenceHub>(
      vcpus_.get(), std::vector<sim::CapacityTimeline*>{});
  context->vm->SetInterferenceSink(hub_.get());
  if (context->deflator != nullptr) {
    context->deflator->StartAuto();
  } else {
    context->vm->Touch(0, context->vm->total_frames());
  }
  const sim::Time at =
      context->sim->now() +
      (config_.offset
           ? static_cast<sim::Time>(context->index) * config_.offset_step
           : 0);
  context->sim->At(at, [this] { StartBuild(0); });
}

uint64_t CompileAgent::demand_bytes() const {
  return context_ != nullptr ? context_->vm->rss_bytes() : 0;
}

void CompileAgent::StartBuild(int build) {
  workloads::CompileConfig cc = config_.compile;
  cc.seed = config_.compile.seed + static_cast<uint64_t>(build);
  compile_ = std::make_unique<workloads::CompileWorkload>(
      context_->vm, pool_.get(), vcpus_.get(), cc);
  compile_->Start([this] {
    compile_->MakeClean();  // artifacts are rebuilt next time
    if (++builds_done_ >= config_.builds_per_vm) {
      finished_ = true;
      return;
    }
    context_->sim->After(config_.gap, [this] { StartBuild(builds_done_); });
  });
}

}  // namespace hyperalloc::fleet
