// Fleet engine: N simulated VMs de/inflating against one sharded host
// pool under a pluggable resize policy (DESIGN.md §4.12) — the
// orchestration API that replaced the bench-private multi-VM harness.
//
// Execution model (epoch mode): every VM owns a private simulation and
// advances in bulk-synchronous epochs. Worker threads drive the VM
// simulations to the next epoch boundary in parallel; at the barrier
// the control loop runs sequentially on the calling thread, in VM-index
// order — signal collection, policy decision, admission control,
// request issue. Between barriers VMs share nothing but the host pool.
//
// Determinism contract (inherited from the old harness, now enforced at
// fleet scale): a VM's event stream depends only on its own simulation
// plus the *boolean* outcomes of HostMemory::TryReserve. Admission
// control keeps the committed-bytes ledger
//     sum_i max(limit_i, inflight_target_i) <= capacity * (1 - reserve)
// so TryReserve never fails mid-epoch, which makes every per-VM outcome
// byte-identical no matter how many worker threads drive the fleet.
// Each VM's outcome stream is folded into an FNV-1a digest
// (samples, resize records, final limit); equal fleet digests across
// thread counts are the determinism check at 512-1024 VMs.
//
// Two legacy-compatibility modes ride on the same engine:
//   * run_to_completion: no epochs/policy — workers pull VM indices and
//     step each simulation until its agent finishes (the old compile
//     harness semantics, byte-identical event ordering included);
//   * shared_clock: all VMs live on ONE simulation (threads must be 1)
//     for causally coupled scenarios like swap-based overcommit.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/fault/fault.h"
#include "src/fleet/policy.h"
#include "src/guest/guest_vm.h"
#include "src/hv/deflator.h"
#include "src/hv/host_memory.h"
#include "src/metrics/timeseries.h"
#include "src/sim/simulation.h"
#include "src/telemetry/telemetry.h"

namespace hyperalloc::fleet {

// What a VM factory hands the engine: the guest, its de/inflation
// backend (null for static baselines), and an optional armed fault
// injector. The factory runs on the engine's construction thread, one
// VM at a time, in index order.
struct FleetVmParts {
  std::unique_ptr<guest::GuestVm> vm;
  std::unique_ptr<hv::Deflator> deflator;
  std::unique_ptr<fault::Injector> fault;
};

using VmFactory = std::function<FleetVmParts(
    sim::Simulation* sim, hv::HostMemory* host, uint64_t index,
    const std::string& name)>;

// Everything an agent may touch. Agents are single-VM actors: they
// schedule events on `sim` and allocate through `vm`; they never see
// other VMs or the pool, which is what keeps them determinism-safe.
struct VmContext {
  sim::Simulation* sim = nullptr;
  guest::GuestVm* vm = nullptr;
  hv::Deflator* deflator = nullptr;  // null for static baselines
  uint64_t index = 0;
  // Epoch mode: the virtual horizon (agents bound their periodic event
  // chains by it). 0 in run-to-completion mode.
  sim::Time horizon = 0;
};

// The workload inside one VM (src/fleet/agents.h has the stock ones).
class VmAgent {
 public:
  virtual ~VmAgent() = default;
  // Called once, before the first epoch, with the VM quiesced.
  virtual void Start(VmContext* context) = 0;
  // run_to_completion drives the simulation until this flips.
  virtual bool finished() const = 0;
  // The demand the VM declares to the policy layer (may exceed its
  // current limit — that is the grow signal).
  virtual uint64_t demand_bytes() const = 0;
  // Engine-injected pressure spike (the time-to-reclaim SLO probe).
  virtual void OnPressureSpike(uint64_t /*bytes*/) {}
};

using AgentFactory =
    std::function<std::unique_ptr<VmAgent>(uint64_t index)>;

// Engine-injected demand spike at virtual time `at`: the first `vms`
// agents gain `bytes` of demand; the time-to-reclaim SLO measures how
// long the fleet takes to grow all their limits over that demand.
struct PressureSpike {
  sim::Time at = 0;
  uint64_t vms = 0;
  uint64_t bytes = 0;
};

struct FleetConfig {
  uint64_t vms = 8;
  // Worker threads driving the VM simulations; 0 = one per VM (capped).
  unsigned threads = 1;
  uint64_t vm_bytes = 64 * kMiB;
  // Pool capacity; 0 = vms * vm_bytes + host_slack_bytes (the old
  // always-admitting harness sizing).
  uint64_t host_bytes = 0;
  uint64_t host_slack_bytes = 16 * kGiB;
  sim::Time horizon = 4 * sim::kMin;
  sim::Time epoch = 5 * sim::kSec;
  sim::Time sample_period = sim::kSec;
  // Keep per-VM RSS series in the result (the digests are always kept).
  bool record_series = true;
  // All VMs on one simulation; requires threads == 1 and
  // run_to_completion (causally coupled scenarios, e.g. swap).
  bool shared_clock = false;
  // Drive every agent to finished() instead of running epochs; no
  // policy, no admission (the legacy compile-harness mode).
  bool run_to_completion = false;
  // Epoch mode: synchronously shrink every VM to this limit at
  // construction so the committed ledger starts feasible (0 = leave
  // limits at vm_bytes; the ledger then only activates once feasible).
  uint64_t initial_limit_bytes = 0;
  // Fraction of pool capacity the admission ledger withholds.
  double admission_reserve = 0.05;
  // Arm the host pool's kHostReserve site with VM 0's injector.
  bool arm_host_faults = false;
  PressureSpike spike;
  // Fleet telemetry pipeline (epoch mode only; no-op under
  // -DHYPERALLOC_TRACE=0 and in run-to-completion mode, which has no
  // barriers to sample at).
  telemetry::TelemetryOptions telemetry;
};

// One issued resize, on the VM's virtual clock.
struct ResizeRecord {
  uint64_t vm = 0;
  sim::Time issued = 0;
  sim::Time completed = 0;
  uint64_t target_bytes = 0;
  uint64_t achieved_bytes = 0;
  bool complete = false;
  bool timed_out = false;
  // Fault-recovery accounting for this request (from the backend's
  // ResizeOutcome; zero for backends without outcome machinery).
  uint64_t faults = 0;
  uint64_t retries = 0;
  uint64_t rollbacks = 0;
};

// Admission-control accounting (grow requests only; shrinks always
// pass — they can only relieve pressure).
struct AdmissionStats {
  uint64_t granted = 0;
  uint64_t clipped = 0;   // granted, but cut to the ledger headroom
  uint64_t rejected = 0;  // clipped below the hysteresis threshold
};

// Service-level objectives over the run, in *virtual* time (and so
// deterministic and comparable across machines).
struct FleetSlo {
  uint64_t resizes = 0;
  double p50_resize_ms = 0.0;
  double p99_resize_ms = 0.0;
  bool spike_applied = false;
  bool spike_satisfied = false;
  double time_to_reclaim_ms = 0.0;
};

struct FleetResult {
  // FNV-1a per-VM outcome digests (samples + resize records + final
  // limit), and their index-order combination. Byte-identical across
  // worker-thread counts — the determinism check.
  std::vector<uint64_t> vm_digests;
  uint64_t fleet_digest = 0;
  // Per-VM RSS in GiB on each VM's virtual clock (empty unless
  // record_series), plus the virtual-time-aligned fleet sum.
  std::vector<metrics::TimeSeries> per_vm_rss;
  metrics::TimeSeries merged;
  double footprint_gib_min = 0.0;
  double peak_gib = 0.0;
  // Real pool high-water mark — depends on the host-thread
  // interleaving; reported, never digested.
  uint64_t pool_peak_frames = 0;
  double wall_ms = 0.0;
  FleetSlo slo;
  AdmissionStats admission;
  // Fleet-wide huge-frame reclaim split (§4.14), summed across every
  // VM's backend. Deterministic: the counters only move on each VM's
  // own virtual clock. All-zero for backends without a huge path.
  hv::HugeReclaimStats huge_reclaim;
  std::vector<ResizeRecord> resizes;
  std::vector<uint64_t> final_limit_bytes;
  // Barrier-sampled fleet telemetry (empty unless epoch mode with
  // telemetry enabled under HYPERALLOC_TRACE).
  telemetry::TelemetryResult telemetry;
};

// Sums sample index k across all series; series that ended keep
// contributing their last value (an idle VM still holds its memory).
metrics::TimeSeries MergeSum(const std::vector<metrics::TimeSeries>& series,
                             sim::Time period);

// Nearest-rank percentile (q in [0, 1]) over an unsorted millisecond
// sample — the method behind FleetSlo's p50/p99, exported so external
// cross-checks (e.g. span-derived latencies) compare like with like.
double PercentileMs(std::vector<double> values, double q);

bool SeriesEqual(const metrics::TimeSeries& a, const metrics::TimeSeries& b);

class FleetEngine {
 public:
  // `policy` may be null (run_to_completion, or epoch mode with no
  // control loop — resizes then come only from the agents themselves).
  FleetEngine(const FleetConfig& config, VmFactory vm_factory,
              AgentFactory agent_factory,
              std::unique_ptr<ResizePolicy> policy);
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  // Post-construction hook per VM (e.g. registering with a swap
  // manager); `sim` is the VM's simulation (the shared one in
  // shared-clock mode). Must be set before Run().
  void SetOnVmCreated(
      std::function<void(uint64_t index, sim::Simulation* sim,
                         guest::GuestVm* vm, hv::Deflator* deflator)>
          hook);

  // Builds the fleet and runs the scenario to completion. Call once.
  FleetResult Run();

  // Post-run access (bench_faults reads outcomes and fault counters).
  hv::HostMemory* host() { return host_.get(); }
  guest::GuestVm* vm(uint64_t index);
  hv::Deflator* deflator(uint64_t index);
  fault::Injector* injector(uint64_t index);

 private:
  struct VmState;

  void BuildVms();
  void RunEpochs(FleetResult* result);
  void RunToCompletion();
  void ControlStep(sim::Time barrier, FleetResult* result);
  void ParallelPass(const std::function<void(uint64_t)>& task);
  void StartSampling(VmState* state);
  // End-of-barrier telemetry sample: reads gauges with the fleet
  // quiesced and feeds Pipeline::OnEpoch.
  void SampleTelemetry(sim::Time barrier, uint64_t committed_bytes,
                       double pressure);

  FleetConfig config_;
  VmFactory vm_factory_;
  AgentFactory agent_factory_;
  std::unique_ptr<ResizePolicy> policy_;
  std::function<void(uint64_t, sim::Simulation*, guest::GuestVm*,
                     hv::Deflator*)>
      on_vm_created_;

  std::unique_ptr<hv::HostMemory> host_;
  // Shared-clock mode only: the one simulation every VM lives on.
  std::unique_ptr<sim::Simulation> shared_sim_;
  std::vector<std::unique_ptr<VmState>> states_;

  // Epoch-mode telemetry pipeline (null in run-to-completion mode).
  std::unique_ptr<telemetry::Pipeline> telemetry_;

  // Epoch-mode control state.
  bool ledger_active_ = false;
  bool spike_applied_ = false;
  sim::Time spike_applied_at_ = 0;
  AdmissionStats admission_;
  FleetSlo slo_;
};

}  // namespace hyperalloc::fleet
