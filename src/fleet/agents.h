// Stock fleet agents: the workloads that run inside fleet VMs.
//
// DemandAgent drives an arrival-trace demand curve (the 1000-VM policy
// scenarios): it allocates chunked anonymous memory toward the current
// demand level, capped below the VM's hard limit, and frees back when
// demand decays — so the policy layer, not the agent, decides how much
// memory the VM actually holds.
//
// CompileAgent replicates the old multi-VM harness VM world exactly
// (staggered clang builds on auto-reclaim, Fig. 11): same construction
// order, same event schedule, byte-identical RSS series.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/fleet/arrival.h"
#include "src/fleet/fleet.h"
#include "src/sim/vcpu.h"
#include "src/workloads/compile.h"
#include "src/workloads/interference_hub.h"
#include "src/workloads/memory_pool.h"

namespace hyperalloc::fleet {

struct DemandAgentConfig {
  // Demand levels over time (from an ArrivalProcess::Generate call).
  std::vector<Arrival> trace;
  // Keep this far below the hard limit (room the guest kernel needs).
  uint64_t margin_bytes = 2 * kMiB;
  uint64_t chunk_bytes = 2 * kMiB;
  double thp_fraction = 0.6;
  // Reconciliation period: how often held memory chases demand/limit.
  sim::Time adjust_period = sim::kSec;
};

class DemandAgent : public VmAgent {
 public:
  explicit DemandAgent(const DemandAgentConfig& config);
  ~DemandAgent() override;

  void Start(VmContext* context) override;
  bool finished() const override;
  uint64_t demand_bytes() const override;
  void OnPressureSpike(uint64_t bytes) override;

  uint64_t held_bytes() const { return held_bytes_; }

 private:
  void Adjust();

  DemandAgentConfig config_;
  VmContext* context_ = nullptr;
  std::unique_ptr<workloads::MemoryPool> pool_;
  std::function<void()> adjust_tick_;
  uint64_t want_bytes_ = 0;
  uint64_t spike_bytes_ = 0;
  uint64_t held_bytes_ = 0;
  std::vector<uint64_t> regions_;
};

struct CompileAgentConfig {
  // Per-build template; build i runs with seed `compile.seed + i`.
  workloads::CompileConfig compile;
  int builds_per_vm = 3;
  sim::Time gap = 35 * sim::kMin;
  bool offset = false;  // stagger build starts by `offset_step` per VM
  sim::Time offset_step = 12 * sim::kMin;
};

class CompileAgent : public VmAgent {
 public:
  explicit CompileAgent(const CompileAgentConfig& config);
  ~CompileAgent() override;

  void Start(VmContext* context) override;
  bool finished() const override { return finished_; }
  uint64_t demand_bytes() const override;

 private:
  void StartBuild(int build);

  CompileAgentConfig config_;
  VmContext* context_ = nullptr;
  std::unique_ptr<workloads::MemoryPool> pool_;
  std::unique_ptr<sim::VcpuSet> vcpus_;
  std::unique_ptr<workloads::InterferenceHub> hub_;
  std::unique_ptr<workloads::CompileWorkload> compile_;
  int builds_done_ = 0;
  bool finished_ = false;
};

}  // namespace hyperalloc::fleet
