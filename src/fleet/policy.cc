#include "src/fleet/policy.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"

namespace hyperalloc::fleet {
namespace {

// What the VM would like its limit to be, before any global scaling.
uint64_t WantBytes(const PolicyConfig& config, const VmSignal& vm) {
  const uint64_t need = std::max(vm.wss_bytes, vm.demand_bytes);
  const uint64_t want = need + config.headroom_bytes;
  const uint64_t floor = std::min(config.min_limit_bytes, vm.memory_bytes);
  return std::clamp(want, floor, vm.memory_bytes);
}

uint64_t FloorBytes(const PolicyConfig& config, const VmSignal& vm) {
  return std::min(config.min_limit_bytes, vm.memory_bytes);
}

bool WorthMoving(const PolicyConfig& config, const VmSignal& vm,
                 uint64_t target) {
  const uint64_t delta = target > vm.limit_bytes ? target - vm.limit_bytes
                                                 : vm.limit_bytes - target;
  return delta >= config.hysteresis_bytes;
}

class ProportionalShare : public ResizePolicy {
 public:
  explicit ProportionalShare(const PolicyConfig& config) : config_(config) {}
  const char* name() const override { return "proportional-share"; }

  void Decide(const PoolSignal& pool, const std::vector<VmSignal>& vms,
              std::vector<ResizeAction>* actions) override {
    const uint64_t usable = static_cast<uint64_t>(
        static_cast<double>(pool.capacity_bytes) *
        (1.0 - std::clamp(config_.share_reserve, 0.0, 0.5)));
    uint64_t sum_want = 0;
    uint64_t sum_floor = 0;
    for (const VmSignal& vm : vms) {
      sum_want += WantBytes(config_, vm);
      sum_floor += FloorBytes(config_, vm);
    }
    for (size_t i = 0; i < vms.size(); ++i) {
      const VmSignal& vm = vms[i];
      if (vm.busy) {
        continue;
      }
      uint64_t target = WantBytes(config_, vm);
      if (sum_want > usable && sum_want > sum_floor) {
        // Scale back the surplus above each VM's floor so the fleet
        // fits; integer math ordered to avoid overflow at 1024 VMs
        // (surplus and spare both fit comfortably in doubles).
        const uint64_t floor = FloorBytes(config_, vm);
        const uint64_t surplus = target - floor;
        const double spare =
            usable > sum_floor
                ? static_cast<double>(usable - sum_floor)
                : 0.0;
        const double scale =
            spare / static_cast<double>(sum_want - sum_floor);
        target = floor + static_cast<uint64_t>(
                             static_cast<double>(surplus) *
                             std::min(scale, 1.0));
      }
      if (WorthMoving(config_, vm, target)) {
        (*actions)[i] = {target, config_.deadline};
      }
    }
  }

 private:
  PolicyConfig config_;
};

class PressurePid : public ResizePolicy {
 public:
  explicit PressurePid(const PolicyConfig& config) : config_(config) {}
  const char* name() const override { return "pressure-pid"; }

  void Decide(const PoolSignal& pool, const std::vector<VmSignal>& vms,
              std::vector<ResizeAction>* actions) override {
    // error > 0: pool below the setpoint, growth welcome; error < 0:
    // overshoot, clamp growth and let shrinks drain pressure.
    const double error = config_.setpoint - pool.pressure;
    integral_ = std::clamp(integral_ + error, -4.0, 4.0);  // anti-windup
    const double derivative = error - last_error_;
    last_error_ = error;
    const double u = config_.kp * error + config_.ki * integral_ +
                     config_.kd * derivative;

    // The controller output is a per-epoch grow budget in bytes; a
    // non-positive u freezes growth entirely.
    uint64_t grow_budget =
        u > 0.0 ? static_cast<uint64_t>(
                      std::min(u, 1.0) *
                      static_cast<double>(pool.capacity_bytes))
                : 0;

    // Pass 1: shrinks always go through (they only relieve pressure).
    // Pass 2: grows spend the budget in VM-index order — deterministic
    // and simple; proportional fairness is ProportionalShare's job.
    for (size_t i = 0; i < vms.size(); ++i) {
      const VmSignal& vm = vms[i];
      if (vm.busy) {
        continue;
      }
      const uint64_t want = WantBytes(config_, vm);
      if (want <= vm.limit_bytes) {
        if (WorthMoving(config_, vm, want)) {
          (*actions)[i] = {want, config_.deadline};
        }
        continue;
      }
      const uint64_t grow = want - vm.limit_bytes;
      const uint64_t granted = std::min(grow, grow_budget);
      grow_budget -= granted;
      const uint64_t target = vm.limit_bytes + granted;
      if (WorthMoving(config_, vm, target)) {
        (*actions)[i] = {target, config_.deadline};
      }
    }
  }

 private:
  PolicyConfig config_;
  double integral_ = 0.0;
  double last_error_ = 0.0;
};

class MarketPolicy : public ResizePolicy {
 public:
  explicit MarketPolicy(const PolicyConfig& config) : config_(config) {
    // The market defaults (512 MiB floor/headroom) are sized for the
    // paper's 16 GiB VMs; the fleet floor/headroom are authoritative
    // here so small VMs are not pinned at their static size.
    config_.market.min_limit_bytes = config.min_limit_bytes;
    config_.market.headroom_bytes = config.headroom_bytes;
  }
  const char* name() const override { return "market"; }

  void Decide(const PoolSignal& pool, const std::vector<VmSignal>& vms,
              std::vector<ResizeAction>* actions) override {
    const double utilization =
        pool.capacity_bytes > 0
            ? static_cast<double>(pool.used_bytes) /
                  static_cast<double>(pool.capacity_bytes)
            : 0.0;
    const double price = hv::MarketPrice(config_.market, utilization);
    for (size_t i = 0; i < vms.size(); ++i) {
      const VmSignal& vm = vms[i];
      if (vm.busy) {
        continue;
      }
      // "Used" from the fleet's vantage point is the working set the VM
      // would actually touch at its demand level.
      const uint64_t used = std::max(vm.wss_bytes, vm.demand_bytes);
      const uint64_t target =
          hv::MarketTargetLimit(config_.market, price, used,
                                config_.budget_per_s, vm.memory_bytes);
      if (WorthMoving(config_, vm, target)) {
        (*actions)[i] = {target, config_.deadline};
      }
    }
  }

 private:
  PolicyConfig config_;
};

}  // namespace

std::unique_ptr<ResizePolicy> MakeProportionalShare(
    const PolicyConfig& config) {
  return std::make_unique<ProportionalShare>(config);
}

std::unique_ptr<ResizePolicy> MakePressurePid(const PolicyConfig& config) {
  return std::make_unique<PressurePid>(config);
}

std::unique_ptr<ResizePolicy> MakeMarketPolicy(const PolicyConfig& config) {
  HA_CHECK(config.budget_per_s > 0.0);
  return std::make_unique<MarketPolicy>(config);
}

}  // namespace hyperalloc::fleet
