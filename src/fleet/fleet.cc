#include "src/fleet/fleet.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <thread>

#include "src/base/check.h"
#include "src/trace/span.h"

namespace hyperalloc::fleet {
namespace {

// FNV-1a 64-bit, folded byte-wise over 64-bit words. Per-VM outcome
// streams digest into one of these; equality across worker-thread
// counts is the fleet determinism check.
struct Fnv1a {
  uint64_t h = 14695981039346656037ull;
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  void Mix(double v) { Mix(std::bit_cast<uint64_t>(v)); }
};

}  // namespace

// Nearest-rank percentile over an unsorted sample (copied in, sorted
// once). Deterministic; also used by the bench-side span cross-check.
double PercentileMs(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const size_t rank = std::min(
      values.size() - 1,
      static_cast<size_t>(std::ceil(q * static_cast<double>(values.size()))) -
          (q > 0.0 ? 1 : 0));
  return values[rank];
}

metrics::TimeSeries MergeSum(const std::vector<metrics::TimeSeries>& series,
                             sim::Time period) {
  return metrics::MergeSum(series, period);
}

bool SeriesEqual(const metrics::TimeSeries& a, const metrics::TimeSeries& b) {
  if (a.points().size() != b.points().size()) {
    return false;
  }
  for (size_t i = 0; i < a.points().size(); ++i) {
    if (a.points()[i].at != b.points()[i].at ||
        a.points()[i].value != b.points()[i].value) {
      return false;
    }
  }
  return true;
}

// One VM's world. Constructed on the engine thread in index order; the
// simulation is driven by exactly one worker thread at a time (epoch
// slices re-assign VMs to threads freely — the barrier hand-off is the
// synchronization). Everything here is per-VM; the only cross-VM state
// is the host pool.
struct FleetEngine::VmState {
  uint64_t index = 0;
  std::unique_ptr<sim::Simulation> own_sim;  // null in shared-clock mode
  sim::Simulation* sim = nullptr;
  FleetVmParts parts;
  std::unique_ptr<VmAgent> agent;
  VmContext context;

  // Self-referencing sampler chain (stored here so the std::function the
  // event queue copies never dangles).
  std::function<void()> sampler;
  bool record_series = false;
  sim::Time sample_period = 0;
  sim::Time sample_horizon = 0;  // 0 = unbounded (run-to-completion)
  metrics::TimeSeries rss_gib;

  // Control-loop state (engine thread at barriers + done callbacks on
  // this VM's own simulation — never concurrent).
  uint64_t wss_bytes = 0;
  bool wss_primed = false;
  uint64_t inflight_target = 0;
  std::vector<ResizeRecord> records;
  Fnv1a digest;

  // Telemetry accounting (engine thread at barriers only). Records
  // complete in issue order — one in-flight resize per VM, never
  // preempted — so a cursor scan finds this epoch's completions.
  size_t records_scanned = 0;
  uint64_t last_achieved = 0;
  uint64_t faults_total = 0;
  uint64_t retries_total = 0;
  uint64_t rollbacks_total = 0;

  uint64_t limit_bytes() const {
    return parts.deflator != nullptr ? parts.deflator->limit_bytes()
                                     : parts.vm->config().memory_bytes;
  }
};

FleetEngine::FleetEngine(const FleetConfig& config, VmFactory vm_factory,
                         AgentFactory agent_factory,
                         std::unique_ptr<ResizePolicy> policy)
    : config_(config),
      vm_factory_(std::move(vm_factory)),
      agent_factory_(std::move(agent_factory)),
      policy_(std::move(policy)) {
  HA_CHECK(config_.vms > 0);
  HA_CHECK(vm_factory_ != nullptr && agent_factory_ != nullptr);
  if (config_.shared_clock) {
    // Shared-clock scenarios are causally coupled: one event queue, one
    // driving thread, agents finish on their own.
    HA_CHECK(config_.run_to_completion);
    HA_CHECK(config_.threads == 1);
  }
  if (!config_.run_to_completion) {
    HA_CHECK(config_.epoch > 0 && config_.horizon >= config_.epoch);
  }
}

FleetEngine::~FleetEngine() = default;

void FleetEngine::SetOnVmCreated(
    std::function<void(uint64_t, sim::Simulation*, guest::GuestVm*,
                       hv::Deflator*)>
        hook) {
  HA_CHECK(states_.empty());  // must be set before Run()
  on_vm_created_ = std::move(hook);
}

guest::GuestVm* FleetEngine::vm(uint64_t index) {
  HA_CHECK(index < states_.size());
  return states_[index]->parts.vm.get();
}

hv::Deflator* FleetEngine::deflator(uint64_t index) {
  HA_CHECK(index < states_.size());
  return states_[index]->parts.deflator.get();
}

fault::Injector* FleetEngine::injector(uint64_t index) {
  HA_CHECK(index < states_.size());
  return states_[index]->parts.fault.get();
}

void FleetEngine::StartSampling(VmState* state) {
  state->record_series = config_.record_series;
  state->sample_period = config_.sample_period;
  state->sample_horizon = config_.run_to_completion ? 0 : config_.horizon;
  state->sampler = [this, state] {
    if (state->agent->finished()) {
      return;
    }
    const double gib = static_cast<double>(state->parts.vm->rss_bytes()) /
                       static_cast<double>(kGiB);
    state->digest.Mix(state->sim->now());
    state->digest.Mix(gib);
    if (state->record_series) {
      state->rss_gib.Sample(state->sim->now(), gib);
    }
    const sim::Time next = state->sim->now() + state->sample_period;
    if (state->sample_horizon == 0 || next <= state->sample_horizon) {
      state->sim->After(state->sample_period, state->sampler);
    }
  };
  state->sampler();  // synchronous first sample, like the old harness
}

void FleetEngine::BuildVms() {
  const uint64_t capacity_bytes =
      config_.host_bytes != 0
          ? config_.host_bytes
          : config_.vms * config_.vm_bytes + config_.host_slack_bytes;
  host_ = std::make_unique<hv::HostMemory>(FramesForBytes(capacity_bytes));
  if (config_.shared_clock) {
    shared_sim_ = std::make_unique<sim::Simulation>();
  }

  states_.reserve(config_.vms);
  for (uint64_t i = 0; i < config_.vms; ++i) {
    auto state = std::make_unique<VmState>();
    state->index = i;
    if (config_.shared_clock) {
      state->sim = shared_sim_.get();
    } else {
      state->own_sim = std::make_unique<sim::Simulation>();
      state->sim = state->own_sim.get();
    }
    state->parts = vm_factory_(state->sim, host_.get(), i,
                               "vm" + std::to_string(i));
    HA_CHECK(state->parts.vm != nullptr);
    if (config_.arm_host_faults && i == 0 &&
        state->parts.fault != nullptr) {
      host_->SetFaultInjector(state->parts.fault.get());
    }
    if (on_vm_created_) {
      on_vm_created_(i, state->sim, state->parts.vm.get(),
                     state->parts.deflator.get());
    }
    if (!config_.run_to_completion && config_.initial_limit_bytes > 0 &&
        state->parts.deflator != nullptr) {
      // Synchronous shrink to the starting limit so the committed
      // ledger begins feasible (nothing is populated yet — this only
      // pays the protocol cost, identically on every VM).
      bool settled = false;
      state->parts.deflator->Request(
          {.target_bytes = config_.initial_limit_bytes,
           .done = [&settled] { settled = true; }});
      while (!settled) {
        HA_CHECK(state->sim->Step());
      }
    }
    state->context = {state->sim, state->parts.vm.get(),
                      state->parts.deflator.get(), i,
                      config_.run_to_completion ? 0 : config_.horizon};
    state->agent = agent_factory_(i);
    HA_CHECK(state->agent != nullptr);
    state->agent->Start(&state->context);
    StartSampling(state.get());
    states_.push_back(std::move(state));
  }
}

void FleetEngine::ParallelPass(const std::function<void(uint64_t)>& task) {
  const uint64_t n = states_.size();
  unsigned threads =
      config_.threads == 0 ? static_cast<unsigned>(n) : config_.threads;
  threads = std::max(1u, std::min(threads, static_cast<unsigned>(n)));
  std::atomic<uint64_t> next{0};
  auto worker = [&task, &next, n] {
    for (uint64_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      task(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  worker();
  for (std::thread& t : pool) {
    t.join();
  }
}

void FleetEngine::ControlStep(sim::Time barrier, FleetResult* result) {
  (void)result;
  const uint64_t n = states_.size();

  // Pressure-spike injection: bump the first spike.vms agents' demand at
  // the first barrier past `at`; the policy sees it immediately below.
  if (!spike_applied_ && config_.spike.vms > 0 &&
      barrier >= config_.spike.at) {
    for (uint64_t i = 0; i < std::min<uint64_t>(config_.spike.vms, n); ++i) {
      states_[i]->agent->OnPressureSpike(config_.spike.bytes);
    }
    spike_applied_ = true;
    spike_applied_at_ = barrier;
    slo_.spike_applied = true;
  }

  // One consistent signal sweep, VM-index order. All simulations are
  // quiesced at `barrier`, so every reading is deterministic.
  std::vector<VmSignal> signals(n);
  uint64_t committed = 0;
  for (uint64_t i = 0; i < n; ++i) {
    VmState& s = *states_[i];
    VmSignal& sig = signals[i];
    sig.memory_bytes = s.parts.vm->config().memory_bytes;
    sig.limit_bytes = s.limit_bytes();
    sig.demand_bytes = s.agent->demand_bytes();
    sig.busy = s.parts.deflator != nullptr && s.parts.deflator->busy();
    const uint64_t rss = s.parts.vm->rss_bytes();
    s.wss_bytes = s.wss_primed ? (3 * s.wss_bytes + rss) / 4 : rss;
    s.wss_primed = true;
    sig.wss_bytes = s.wss_bytes;
    committed += std::max(sig.limit_bytes, sig.busy ? s.inflight_target : 0);
  }
  const uint64_t capacity = host_->total_frames() * kFrameSize;
  const uint64_t usable = static_cast<uint64_t>(
      static_cast<double>(capacity) *
      (1.0 - std::clamp(config_.admission_reserve, 0.0, 0.5)));
  PoolSignal pool;
  pool.capacity_bytes = capacity;
  pool.used_bytes = host_->used_bytes();
  pool.committed_bytes = committed;
  pool.pressure = std::clamp(static_cast<double>(committed) /
                                 static_cast<double>(capacity),
                             0.0, 1.0);

  // Time-to-reclaim: first barrier at which every spiked VM's limit
  // covers its (clamped) demand.
  if (spike_applied_ && !slo_.spike_satisfied) {
    bool satisfied = true;
    for (uint64_t i = 0; i < std::min<uint64_t>(config_.spike.vms, n); ++i) {
      const uint64_t need =
          std::min(signals[i].demand_bytes, signals[i].memory_bytes);
      satisfied = satisfied && signals[i].limit_bytes >= need;
    }
    if (satisfied) {
      slo_.spike_satisfied = true;
      slo_.time_to_reclaim_ms =
          static_cast<double>(barrier - spike_applied_at_) /
          static_cast<double>(sim::kMs);
    }
  }

  if (policy_ == nullptr) {
    SampleTelemetry(barrier, committed, pool.pressure);
    return;
  }
  std::vector<ResizeAction> actions(n);
  for (uint64_t i = 0; i < n; ++i) {
    actions[i] = {signals[i].limit_bytes, 0};  // default: keep
  }
  policy_->Decide(pool, signals, &actions);

  // The ledger arms once the commitment is feasible (with
  // initial_limit_bytes that is the first barrier); from then on grants
  // preserve  sum_i max(limit_i, inflight_i) <= usable  inductively,
  // which is what keeps TryReserve from ever failing mid-epoch.
  if (!ledger_active_ && committed <= usable) {
    ledger_active_ = true;
  }

  uint64_t ledger = committed;
  for (uint64_t i = 0; i < n; ++i) {
    VmState& s = *states_[i];
    const VmSignal& sig = signals[i];
    if (sig.busy) {
      continue;  // never preempt an in-flight resize
    }
    uint64_t target =
        std::min(actions[i].target_bytes, sig.memory_bytes);
    if (target > sig.limit_bytes) {
      // Backends move limits in whole huge frames and round the achieved
      // limit UP; align grow targets down to the limit's lattice so a
      // grant can never achieve more than the ledger accounted for.
      target -= (target - sig.limit_bytes) % kHugeSize;
    }
    if (target == sig.limit_bytes) {
      continue;
    }
    if (target > sig.limit_bytes && ledger_active_) {
      const uint64_t delta = target - sig.limit_bytes;
      const uint64_t headroom =
          usable > ledger ? (usable - ledger) / kHugeSize * kHugeSize : 0;
      if (delta > headroom) {
        if (headroom < kHugeSize) {  // not worth a huge frame: refuse
          ++admission_.rejected;
          continue;
        }
        target = sig.limit_bytes + headroom;
        ++admission_.clipped;
      } else {
        ++admission_.granted;
      }
      ledger += target - sig.limit_bytes;
    }

    s.inflight_target = target;
    const size_t slot = s.records.size();
    ResizeRecord record;
    record.vm = i;
    record.issued = s.sim->now();
    record.target_bytes = target;
    s.records.push_back(record);

    hv::ResizeRequest request;
    request.target_bytes = target;
    request.deadline_ns = actions[i].deadline;
    request.done = [state = &s, slot] {
      ResizeRecord& r = state->records[slot];
      const hv::ResizeOutcome& o = state->parts.deflator->last_outcome();
      r.completed = state->sim->now();
      // A backend without outcome machinery (the generic monitor) leaves
      // last_outcome() stale; fall back to the observable limit.
      if (o.target_bytes == r.target_bytes) {
        r.achieved_bytes = o.achieved_bytes;
        r.complete = o.complete;
        r.timed_out = o.timed_out;
        r.faults = o.faults;
        r.retries = o.retries;
        r.rollbacks = o.rollbacks;
      } else {
        r.achieved_bytes = state->parts.deflator->limit_bytes();
        r.complete = r.achieved_bytes == r.target_bytes;
      }
      state->inflight_target = 0;
      state->digest.Mix(r.issued);
      state->digest.Mix(r.completed);
      state->digest.Mix(r.target_bytes);
      state->digest.Mix(r.achieved_bytes);
      state->digest.Mix(static_cast<uint64_t>(r.complete) |
                        (static_cast<uint64_t>(r.timed_out) << 1));
      state->digest.Mix(r.faults);
      state->digest.Mix(r.retries);
      state->digest.Mix(r.rollbacks);
    };
    {
#if HYPERALLOC_TRACE
      // The root request span must carry this VM's id and clock even
      // though it is issued from the control thread.
      trace::SpanContext span_context;
      span_context.vm = static_cast<uint32_t>(i);
      span_context.clock = s.sim;
      trace::ScopedContext scoped(span_context);
#endif
      s.parts.deflator->Request(request);
    }
  }

  // Sampled after issue so the gauges see this barrier's in-flight
  // targets and busy bits (the state the next epoch runs under).
  SampleTelemetry(barrier, committed, pool.pressure);
}

void FleetEngine::SampleTelemetry(sim::Time barrier, uint64_t committed_bytes,
                                  double pressure) {
  if (telemetry_ == nullptr || !telemetry_->enabled()) {
    return;
  }
  const uint64_t n = states_.size();
  std::vector<telemetry::VmGauges> gauges(n);
  std::vector<double> completed_ms;
  for (uint64_t i = 0; i < n; ++i) {
    VmState& s = *states_[i];
    if (i + 1 < n) {
      // The fill below chases cold per-VM objects; overlapping the next
      // VM's cache misses with this one's reads keeps the barrier sample
      // inside the telemetry wall budget at fleet scale. Two-deep: the
      // i+1 header was prefetched last iteration, so its guest/fault
      // objects can be requested now.
      VmState& next = *states_[i + 1];
      __builtin_prefetch(next.parts.vm.get());
      if (next.parts.fault != nullptr) {
        __builtin_prefetch(next.parts.fault.get());
      }
      if (i + 2 < n) {
        __builtin_prefetch(states_[i + 2].get());
      }
    }
    while (s.records_scanned < s.records.size() &&
           s.records[s.records_scanned].completed != 0) {
      const ResizeRecord& r = s.records[s.records_scanned++];
      completed_ms.push_back(static_cast<double>(r.completed - r.issued) /
                             static_cast<double>(sim::kMs));
      s.last_achieved = r.achieved_bytes;
      s.faults_total += r.faults;
      s.retries_total += r.retries;
      s.rollbacks_total += r.rollbacks;
    }
    telemetry::VmGauges& g = gauges[i];
    g.vm = i;
    g.limit_bytes = s.limit_bytes();
    g.target_bytes = s.inflight_target;
    g.achieved_bytes = s.last_achieved;
    g.wss_bytes = s.wss_bytes;
    g.rss_bytes = s.parts.vm->rss_bytes();
    g.demand_bytes = s.agent->demand_bytes();
    g.busy = s.parts.deflator != nullptr && s.parts.deflator->busy();
    g.resizes = s.records_scanned;
    g.faults = s.faults_total;
    g.retries = s.retries_total;
    g.rollbacks = s.rollbacks_total;
    if (s.parts.fault != nullptr) {
      g.quarantined = s.parts.fault->quarantined_vm();
      g.quarantined_frames = s.parts.fault->quarantined_frames();
    }
  }
  telemetry_->OnEpoch(barrier, std::move(gauges), committed_bytes, pressure,
                      admission_.granted, admission_.clipped,
                      admission_.rejected, completed_ms);
}

void FleetEngine::RunEpochs(FleetResult* result) {
  for (sim::Time barrier = config_.epoch; barrier <= config_.horizon;
       barrier += config_.epoch) {
    ParallelPass([this, barrier](uint64_t i) {
      VmState& s = *states_[i];
#if HYPERALLOC_TRACE
      trace::SpanContext span_context;
      span_context.vm = static_cast<uint32_t>(i);
      span_context.clock = s.sim;
      trace::ScopedContext scoped(span_context);
#endif
      s.sim->RunUntil(barrier);
    });
    ControlStep(barrier, result);
  }
  // Run-out: drive in-flight resizes (including ones issued at the last
  // barrier) to completion. The sampler and agent chains all end at the
  // horizon, so only resize machinery remains — bounded by design.
  ParallelPass([this](uint64_t i) {
    VmState& s = *states_[i];
#if HYPERALLOC_TRACE
    trace::SpanContext span_context;
    span_context.vm = static_cast<uint32_t>(i);
    span_context.clock = s.sim;
    trace::ScopedContext scoped(span_context);
#endif
    while (s.parts.deflator != nullptr && s.parts.deflator->busy()) {
      HA_CHECK(s.sim->Step());
    }
  });
}

void FleetEngine::RunToCompletion() {
  if (config_.shared_clock) {
    // One queue, one thread: step until every agent is done.
    auto all_finished = [this] {
      for (const auto& s : states_) {
        if (!s->agent->finished()) {
          return false;
        }
      }
      return true;
    };
    while (!all_finished()) {
      HA_CHECK(shared_sim_->Step());
    }
    return;
  }
  // The old harness semantics: workers pull whole VMs and run each
  // simulation dry. Not RunUntilIdle — auto-reclaim schedules periodic
  // events forever; the agent's finished() is the termination signal.
  ParallelPass([this](uint64_t i) {
    VmState& s = *states_[i];
#if HYPERALLOC_TRACE
    trace::SpanContext span_context;
    span_context.vm = static_cast<uint32_t>(i);
    span_context.clock = s.sim;
    trace::ScopedContext scoped(span_context);
#endif
    while (!s.agent->finished()) {
      HA_CHECK(s.sim->Step());
    }
  });
}

FleetResult FleetEngine::Run() {
  HA_CHECK(states_.empty());  // Run() is one-shot
  const auto wall_start = std::chrono::steady_clock::now();
  BuildVms();
  FleetResult result;
  if (config_.run_to_completion) {
    RunToCompletion();
  } else {
    telemetry_ = std::make_unique<telemetry::Pipeline>(
        config_.telemetry, config_.vms, host_->shards(), config_.epoch);
    RunEpochs(&result);
    result.telemetry = telemetry_->Finish();
  }
  const auto wall_end = std::chrono::steady_clock::now();

  std::vector<double> latencies_ms;
  Fnv1a fleet_digest;
  for (auto& state : states_) {
    const uint64_t final_limit = state->limit_bytes();
    state->digest.Mix(final_limit);
    result.final_limit_bytes.push_back(final_limit);
    result.vm_digests.push_back(state->digest.h);
    fleet_digest.Mix(state->digest.h);
    if (config_.record_series) {
      result.per_vm_rss.push_back(std::move(state->rss_gib));
    }
    for (const ResizeRecord& r : state->records) {
      latencies_ms.push_back(static_cast<double>(r.completed - r.issued) /
                             static_cast<double>(sim::kMs));
      result.resizes.push_back(r);
    }
    if (state->parts.deflator != nullptr) {
      const hv::HugeReclaimStats h = state->parts.deflator->huge_reclaim();
      result.huge_reclaim.untouched += h.untouched;
      result.huge_reclaim.via_2m += h.via_2m;
      result.huge_reclaim.via_4k += h.via_4k;
    }
  }
  result.fleet_digest = fleet_digest.h;
  if (!result.per_vm_rss.empty()) {
    result.merged =
        metrics::MergeSum(result.per_vm_rss, config_.sample_period);
    result.footprint_gib_min = result.merged.IntegralPerMinute();
    result.peak_gib = result.merged.Max();
  }
  result.pool_peak_frames = host_->peak_frames();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  slo_.resizes = latencies_ms.size();
  slo_.p50_resize_ms = PercentileMs(latencies_ms, 0.50);
  slo_.p99_resize_ms = PercentileMs(latencies_ms, 0.99);
  result.slo = slo_;
  result.admission = admission_;
  return result;
}

}  // namespace hyperalloc::fleet
