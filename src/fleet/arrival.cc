#include "src/fleet/arrival.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"
#include "src/base/rng.h"

namespace hyperalloc::fleet {
namespace {

// Per-VM stream seed: SplitMix64-style mix so adjacent VM indices get
// decorrelated streams from one fleet seed.
uint64_t MixSeed(uint64_t seed, uint64_t vm_index) {
  uint64_t z = seed + (vm_index + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Exponential variate with the given mean, capped at 8x the mean so a
// single unlucky draw cannot swallow the whole horizon.
sim::Time Exponential(Rng* rng, sim::Time mean) {
  const double u = rng->NextDouble();
  const double draw = -std::log(1.0 - u) * static_cast<double>(mean);
  const double cap = 8.0 * static_cast<double>(mean);
  return static_cast<sim::Time>(std::min(draw, cap));
}

class TraceBuilder {
 public:
  explicit TraceBuilder(const ArrivalConfig& config) : config_(config) {}

  void Add(sim::Time at, uint64_t bytes) {
    if (at >= config_.horizon) {
      return;
    }
    const uint64_t quantum = std::max<uint64_t>(config_.quantum_bytes, 1);
    bytes = std::clamp(bytes, config_.floor_bytes, config_.peak_bytes);
    bytes = bytes / quantum * quantum;
    bytes = std::max(bytes, config_.floor_bytes);
    if (!trace_.empty() && trace_.back().at == at) {
      trace_.back().bytes = bytes;  // later decision at the same instant wins
      return;
    }
    trace_.push_back({at, bytes});
  }

  std::vector<Arrival> Take() {
    // Coalesce consecutive equal demands (they would be no-op events).
    std::vector<Arrival> out;
    for (const Arrival& a : trace_) {
      if (out.empty() || out.back().bytes != a.bytes) {
        out.push_back(a);
      }
    }
    return out;
  }

 private:
  const ArrivalConfig& config_;
  std::vector<Arrival> trace_;
};

class StepResizeProcess : public ArrivalProcess {
 public:
  explicit StepResizeProcess(const ArrivalConfig& config) : config_(config) {}
  const char* name() const override { return "step-resize"; }

  std::vector<Arrival> Generate(uint64_t /*vm_index*/) const override {
    // The two-point §5.4 schedule is exact by construction — no
    // quantum rounding, no horizon clipping (kGrowAt may exceed short
    // fleet horizons and still must fire for the single-VM benches).
    return {{config_.shrink_at, config_.floor_bytes},
            {config_.grow_at, config_.peak_bytes}};
  }

 private:
  ArrivalConfig config_;
};

class BurstyProcess : public ArrivalProcess {
 public:
  explicit BurstyProcess(const ArrivalConfig& config) : config_(config) {}
  const char* name() const override { return "bursty"; }

  std::vector<Arrival> Generate(uint64_t vm_index) const override {
    Rng rng(MixSeed(config_.seed, vm_index));
    TraceBuilder trace(config_);
    trace.Add(0, config_.floor_bytes);
    sim::Time t = Exponential(&rng, config_.mean_gap);
    while (t < config_.horizon) {
      const uint64_t level =
          config_.floor_bytes +
          rng.Range(1, std::max<uint64_t>(
                           config_.peak_bytes - config_.floor_bytes, 1));
      trace.Add(t, level);
      t += std::max<sim::Time>(Exponential(&rng, config_.mean_hold), 1);
      trace.Add(t, config_.floor_bytes);
      t += std::max<sim::Time>(Exponential(&rng, config_.mean_gap), 1);
    }
    return trace.Take();
  }

 private:
  ArrivalConfig config_;
};

class DiurnalProcess : public ArrivalProcess {
 public:
  explicit DiurnalProcess(const ArrivalConfig& config) : config_(config) {}
  const char* name() const override { return "diurnal"; }

  std::vector<Arrival> Generate(uint64_t vm_index) const override {
    Rng rng(MixSeed(config_.seed, vm_index));
    TraceBuilder trace(config_);
    const sim::Time period = std::max<sim::Time>(config_.period, 2);
    const sim::Time phase = rng.Below(period);
    const sim::Time on = static_cast<sim::Time>(
        std::clamp(config_.duty, 0.05, 0.95) * static_cast<double>(period));
    trace.Add(0, config_.floor_bytes);
    for (sim::Time rise = phase; rise < config_.horizon; rise += period) {
      trace.Add(rise, config_.peak_bytes);
      trace.Add(rise + on, config_.floor_bytes);
    }
    return trace.Take();
  }

 private:
  ArrivalConfig config_;
};

class HeavyTailedProcess : public ArrivalProcess {
 public:
  explicit HeavyTailedProcess(const ArrivalConfig& config)
      : config_(config) {}
  const char* name() const override { return "heavy-tailed"; }

  std::vector<Arrival> Generate(uint64_t vm_index) const override {
    Rng rng(MixSeed(config_.seed, vm_index));
    TraceBuilder trace(config_);
    trace.Add(0, config_.floor_bytes);
    const double alpha = std::max(config_.pareto_alpha, 1.01);
    sim::Time t = Exponential(&rng, config_.mean_gap);
    while (t < config_.horizon) {
      // Pareto(alpha) burst magnitude in [1, inf), mapped onto the
      // (floor, peak] band: x=1 is a minimal burst, the tail saturates.
      const double x =
          std::pow(1.0 - rng.NextDouble(), -1.0 / alpha);
      const double fraction = std::min((x - 1.0) / 4.0 + 0.1, 1.0);
      const uint64_t level =
          config_.floor_bytes +
          static_cast<uint64_t>(
              fraction * static_cast<double>(config_.peak_bytes -
                                             config_.floor_bytes));
      trace.Add(t, level);
      // Big bursts also hold longer (size-duration correlation).
      const sim::Time hold = static_cast<sim::Time>(
          static_cast<double>(config_.mean_hold) * (0.5 + fraction));
      t += std::max<sim::Time>(hold, 1);
      trace.Add(t, config_.floor_bytes);
      t += std::max<sim::Time>(Exponential(&rng, config_.mean_gap), 1);
    }
    return trace.Take();
  }

 private:
  ArrivalConfig config_;
};

}  // namespace

std::unique_ptr<ArrivalProcess> MakeArrivalProcess(
    const ArrivalConfig& config) {
  HA_CHECK(config.floor_bytes <= config.peak_bytes);
  switch (config.kind) {
    case ArrivalKind::kStepResize:
      return std::make_unique<StepResizeProcess>(config);
    case ArrivalKind::kBursty:
      return std::make_unique<BurstyProcess>(config);
    case ArrivalKind::kDiurnal:
      return std::make_unique<DiurnalProcess>(config);
    case ArrivalKind::kHeavyTailed:
      return std::make_unique<HeavyTailedProcess>(config);
  }
  HA_CHECK(false);
  return nullptr;
}

void ApplyResizeSchedule(sim::Simulation* sim, hv::Deflator* deflator,
                         const std::vector<Arrival>& arrivals,
                         sim::Time start) {
  HA_CHECK(sim != nullptr);
  if (deflator == nullptr) {
    return;  // static baseline: nothing to resize
  }
  for (const Arrival& arrival : arrivals) {
    sim->At(start + arrival.at, [deflator, bytes = arrival.bytes] {
      if (!deflator->busy()) {
        deflator->Request({.target_bytes = bytes, .done = {}});
      }
    });
  }
}

std::vector<Arrival> StepResizeTrace(uint64_t memory_bytes) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kStepResize;
  config.floor_bytes = kResizeTarget;
  config.peak_bytes = memory_bytes;
  return MakeArrivalProcess(config)->Generate(0);
}

}  // namespace hyperalloc::fleet
