// Arrival processes: deterministic per-VM demand/resize schedules for
// the fleet engine and the single-VM benches (one shared abstraction —
// the promotion of bench/resize_schedule.h's free-function schedule).
//
// A process generates, for each VM index, a sorted trace of `Arrival`
// events over a fixed horizon. The trace is a pure function of
// (config, vm_index): the same seed reproduces the same fleet traffic
// no matter how many host threads later drive the simulations, which is
// what the engine's cross-thread determinism contract rides on.
//
// Two consumers with two readings of `Arrival::bytes`:
//   * the fleet `DemandAgent` treats it as the VM's anonymous demand —
//     the policy layer then decides the limit (src/fleet/policy.h);
//   * single-VM benches (bench_ftq, bench_stream) apply it directly as
//     a deflator limit target via `ApplyResizeSchedule` — the classic
//     §5.4 shrink-at-20s / grow-at-90s experiment shape.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/types.h"
#include "src/hv/deflator.h"
#include "src/sim/simulation.h"

namespace hyperalloc::fleet {

// The §5.4 guest-impact schedule (formerly bench/resize_schedule.h):
// shrink the hard limit at t=20 s, restore it at t=90 s.
inline constexpr sim::Time kShrinkAt = 20 * sim::kSec;
inline constexpr sim::Time kGrowAt = 90 * sim::kSec;
inline constexpr uint64_t kResizeTarget = 2 * kGiB;

// One demand-change event: at virtual time `at` (relative to the
// schedule's start) the VM's demand — or limit target — becomes `bytes`.
struct Arrival {
  sim::Time at = 0;
  uint64_t bytes = 0;
};

enum class ArrivalKind {
  // Two events: floor_bytes at shrink_at, peak_bytes at grow_at.
  kStepResize,
  // Poisson bursts: exponential inter-burst gaps, uniform burst sizes
  // in (floor, peak], exponential hold times, decay back to the floor.
  kBursty,
  // Square-ish day/night wave with a per-VM phase offset: peak for
  // `duty` of each period, floor otherwise.
  kDiurnal,
  // Bursty arrivals with Pareto-distributed burst sizes: most bursts
  // are small, a heavy tail pins the VM near its peak.
  kHeavyTailed,
};

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kBursty;
  sim::Time horizon = 5 * sim::kMin;
  uint64_t seed = 1;
  // Demand bounds; traces are clamped to [floor_bytes, peak_bytes] and
  // rounded to `quantum_bytes`.
  uint64_t floor_bytes = 16 * kMiB;
  uint64_t peak_bytes = 48 * kMiB;
  uint64_t quantum_bytes = 2 * kMiB;
  // kStepResize event times.
  sim::Time shrink_at = kShrinkAt;
  sim::Time grow_at = kGrowAt;
  // kBursty / kHeavyTailed: mean exponential inter-burst gap and mean
  // hold time at the burst level before decaying to the floor.
  sim::Time mean_gap = 45 * sim::kSec;
  sim::Time mean_hold = 20 * sim::kSec;
  // kDiurnal.
  sim::Time period = 2 * sim::kMin;
  double duty = 0.5;
  // kHeavyTailed: Pareto shape (smaller = heavier tail).
  double pareto_alpha = 1.3;
};

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual const char* name() const = 0;
  // The full trace for one VM over [0, horizon), sorted by time, with
  // consecutive equal-demand events coalesced. Deterministic in
  // (config, vm_index).
  virtual std::vector<Arrival> Generate(uint64_t vm_index) const = 0;
};

std::unique_ptr<ArrivalProcess> MakeArrivalProcess(
    const ArrivalConfig& config);

// Applies a trace as direct deflator limit requests relative to `start`
// — the single-VM bench path. A no-op for baselines (null deflator);
// an arrival that lands while a previous request is still in flight is
// skipped (the next one re-targets).
void ApplyResizeSchedule(sim::Simulation* sim, hv::Deflator* deflator,
                         const std::vector<Arrival>& arrivals,
                         sim::Time start);

// The legacy §5.4 two-point schedule for a VM of `memory_bytes`:
// StepResize with floor=kResizeTarget, peak=memory_bytes.
std::vector<Arrival> StepResizeTrace(uint64_t memory_bytes);

}  // namespace hyperalloc::fleet
