// Pluggable fleet resize policies: the control loop that decides, once
// per epoch, which VMs de/inflate and by how much (DESIGN.md §4.12).
//
// Inputs per VM: a working-set estimate (EWMA over RSS samples kept by
// the engine), the VM's own declared demand, and its current limit.
// Global inputs: pool capacity/committed state and a pressure signal in
// [0, 1]. Output: per-VM limit targets with virtual-time deadlines —
// the engine's admission control then clips grows that would overcommit
// the pool (src/fleet/fleet.h).
//
// Policies are deterministic pure functions of their inputs: Decide()
// is called on the engine's control thread with all VMs quiesced at an
// epoch barrier, in VM-index order, so byte-identical fleet outcomes
// across worker-thread counts hold whatever policy runs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/types.h"
#include "src/hv/market.h"
#include "src/sim/simulation.h"

namespace hyperalloc::fleet {

// Per-VM policy input, one consistent epoch reading.
struct VmSignal {
  // Static VM size (the upper bound for any limit).
  uint64_t memory_bytes = 0;
  // Current hard limit (deflator reading, or memory_bytes for baselines).
  uint64_t limit_bytes = 0;
  // Engine-maintained working-set estimate (EWMA of populated RSS).
  uint64_t wss_bytes = 0;
  // The VM's declared demand (arrival trace level) — may exceed
  // limit_bytes when the VM is being held back.
  uint64_t demand_bytes = 0;
  // A resize issued in an earlier epoch is still in flight.
  bool busy = false;
};

// Global policy input.
struct PoolSignal {
  uint64_t capacity_bytes = 0;
  // Frames actually taken from the host pool.
  uint64_t used_bytes = 0;
  // Sum of current limits (the commitment the fleet could grow into).
  uint64_t committed_bytes = 0;
  // committed / capacity, clamped to [0, 1] by the engine.
  double pressure = 0.0;
};

// One policy decision for one VM. `target_bytes == limit_bytes` (or a
// busy VM) means "leave it alone"; the engine skips no-op requests.
struct ResizeAction {
  uint64_t target_bytes = 0;
  // Relative virtual-time budget forwarded as ResizeRequest::deadline_ns
  // (0 = backend default).
  sim::Time deadline = 0;
};

struct PolicyConfig {
  // Floor below which no policy shrinks a VM.
  uint64_t min_limit_bytes = 16 * kMiB;
  // Growth room granted above the working set / demand.
  uint64_t headroom_bytes = 4 * kMiB;
  // Ignore limit deltas smaller than this (anti-oscillation — the
  // Moniruzzaman ballooning pathology).
  uint64_t hysteresis_bytes = 4 * kMiB;
  // Deadline stamped on every issued request.
  sim::Time deadline = 2 * sim::kSec;
  // Proportional-share: fraction of capacity withheld from the share
  // computation (kept as slack; admission control enforces it too).
  double share_reserve = 0.05;
  // Pressure-PID gains: error = setpoint - pressure drives a per-epoch
  // grow budget of |u| * capacity bytes (shrinks are always allowed).
  double setpoint = 0.85;
  double kp = 0.8;
  double ki = 0.2;
  double kd = 0.1;
  // Market adapter: pricing config + per-VM budget (credits/s).
  hv::MarketConfig market;
  double budget_per_s = 1.0;
};

class ResizePolicy {
 public:
  virtual ~ResizePolicy() = default;
  virtual const char* name() const = 0;
  // Fills `actions` (resized to vms.size() by the caller, pre-set to
  // "keep current limit") in VM-index order. Stateful policies (PID)
  // may keep history; they are still deterministic because Decide runs
  // once per epoch on one thread.
  virtual void Decide(const PoolSignal& pool,
                      const std::vector<VmSignal>& vms,
                      std::vector<ResizeAction>* actions) = 0;
};

// want_i = max(wss, demand) + headroom, clamped to the VM; when the sum
// exceeds usable capacity, everyone above the floor scales back
// proportionally (weighted fair share of the surplus).
std::unique_ptr<ResizePolicy> MakeProportionalShare(
    const PolicyConfig& config);

// PI(D) loop on pool pressure: below the setpoint grows flow freely up
// to the epoch budget; above it the budget collapses and only shrinks
// pass.
std::unique_ptr<ResizePolicy> MakePressurePid(const PolicyConfig& config);

// Adapter over src/hv/market.h pricing: spot price from utilization,
// each VM gets min(demand, affordable-at-price) — Ginseng-style
// market allocation driven by the fleet's own signals.
std::unique_ptr<ResizePolicy> MakeMarketPolicy(const PolicyConfig& config);

}  // namespace hyperalloc::fleet
