#include "src/core/hyperalloc.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/trace/trace.h"

namespace hyperalloc::core {

HyperAllocMonitor::HyperAllocMonitor(guest::GuestVm* vm,
                                     const HyperAllocConfig& config)
    : vm_(vm), config_(config), sim_(vm->simulation()),
      total_huge_(HugesForFrames(vm->total_frames())) {
  HA_CHECK(vm != nullptr);
  HA_CHECK(vm->config().allocator == guest::AllocatorKind::kLLFree);

  for (guest::Zone& zone : vm_->zones()) {
    HA_CHECK(zone.llfree_state != nullptr);
    auto view = std::make_unique<ZoneView>(&zone, zone.frames /
                                                      kFramesPerHuge);
    // The monitor's clone of the guest allocator over the shared state.
    view->monitor_view =
        std::make_unique<llfree::LLFree>(zone.llfree_state.get());
    // A fresh VM has no populated guest-physical memory: every huge frame
    // starts soft-reclaimed (M=0 => E=1), so first allocations install.
    for (HugeId h = 0; h < view->states.size(); ++h) {
      view->monitor_view->SetEvicted(h);
      view->states.Set(h, ReclaimState::kSoft);
    }
    ZoneView* raw = view.get();
    zone.llfree->SetInstallHandler(
        [this, raw](HugeId huge) { Install(*raw, huge); });
    zones_.push_back(std::move(view));
  }

  if (config.initial_limit_bytes > 0 &&
      config.initial_limit_bytes < vm->config().memory_bytes) {
    // Boot with a reduced hard limit: hard-reclaim the excess up front
    // (pure state work — nothing is populated yet).
    const uint64_t target =
        (vm->config().memory_bytes - config.initial_limit_bytes) /
        kHugeSize;
    for (ZoneView* view : ReclaimOrder()) {
      for (HugeId h = 0;
           h < view->states.size() && hard_reclaimed_huge_ < target; ++h) {
        if (view->monitor_view->TryHardReclaim(h)) {
          view->states.Set(h, ReclaimState::kHard);
          ++hard_reclaimed_huge_;
        }
      }
    }
    HA_CHECK(hard_reclaimed_huge_ == target);
  }
}

AllocType HyperAllocMonitor::TreeTypeOf(HugeId global_huge) const {
  for (const auto& view : zones_) {
    const HugeId first = FrameToHuge(view->zone->start);
    if (global_huge >= first && global_huge < first + view->states.size()) {
      const uint64_t tree =
          (global_huge - first) / view->zone->llfree->config().areas_per_tree;
      return view->zone->llfree->ReadTree(tree).type;
    }
  }
  HA_CHECK(false && "huge frame outside every zone");
  __builtin_unreachable();
}

std::vector<HyperAllocMonitor::ZoneView*> HyperAllocMonitor::ReclaimOrder() {
  // Normal zones before DMA32 (§4.2); the tiny DMA zone does not exist in
  // this model.
  std::vector<ZoneView*> order;
  for (const auto& view : zones_) {
    if (view->zone->kind == guest::ZoneKind::kNormal) {
      order.push_back(view.get());
    }
  }
  for (const auto& view : zones_) {
    if (view->zone->kind != guest::ZoneKind::kNormal) {
      order.push_back(view.get());
    }
  }
  return order;
}

uint64_t HyperAllocMonitor::limit_bytes() const {
  return vm_->config().memory_bytes - hard_reclaimed_bytes();
}

ReclaimState HyperAllocMonitor::StateOf(HugeId global_huge) const {
  for (const auto& view : zones_) {
    const HugeId first = FrameToHuge(view->zone->start);
    if (global_huge >= first && global_huge < first + view->states.size()) {
      return view->states.Get(global_huge - first);
    }
  }
  HA_CHECK(false && "huge frame outside every zone");
  __builtin_unreachable();
}

void HyperAllocMonitor::Install(ZoneView& view, HugeId local_huge) {
  // Blocking install hypercall (§3.2 "Return and Install"): the guest's
  // allocation waits until the memory is populated, mapped, and — with a
  // passthrough device — pinned. Only then may it be handed out (DMA
  // safety).
  HA_DCHECK(view.states.Get(local_huge) == ReclaimState::kSoft);
  const sim::Time t0 = sim_->now();
  // Installs are their own causal roots: they are triggered by guest
  // allocations, not by a resize request.
  trace::ScopedRoot root;
  trace::Span span(trace::Layer::kMonitor, "monitor.install");
  span.AddFrames(kFramesPerHuge);
  // In-kernel integration (§5.3 ablation): no KVM->QEMU context switch —
  // the install costs no more than the EPT fault it replaces.
  const uint64_t entry_ns = config_.in_kernel
                                ? vm_->costs().ept_fault_2m_ns
                                : vm_->costs().install_hypercall_2m_ns;
  cpu_.host_user_ns +=
      hv::ChargeTraced(sim_, "monitor.install_entry_ns", entry_ns);
  if (!config_.in_kernel) {
    HA_COUNT("monitor.hypercall");
  }

  const FrameId global_first = view.zone->start + HugeToFrame(local_huge);
  {
    trace::Span populate(trace::Layer::kEpt, "ept.populate");
    populate.AddFrames(kFramesPerHuge);
    HA_CHECK(vm_->PopulateFrames(global_first, kFramesPerHuge));
    cpu_.host_sys_ns += hv::ChargeTraced(
        sim_, "monitor.install_ns",
        kFramesPerHuge * vm_->costs().populate_4k_ns);
  }
  if (vm_->config().vfio) {
    trace::Span pin(trace::Layer::kIommu, "iommu.pin");
    pin.AddFrames(kFramesPerHuge);
    vm_->iommu()->Pin(FrameToHuge(global_first));
    cpu_.host_sys_ns += hv::ChargeTraced(sim_, "monitor.install_pin_ns",
                                         vm_->costs().iommu_map_2m_ns);
  }
  HA_COUNT("monitor.install");
  HA_TRACE_EVENT(trace::Category::kMonitor, trace::Op::kInstall,
                 FrameToHuge(global_first), 0);
  vm_->sink().OnBandwidth(t0, sim_->now(),
                          static_cast<double>(kHugeSize) /
                              static_cast<double>(sim_->now() - t0));

  view.states.Set(local_huge, ReclaimState::kInstalled);
  view.monitor_view->ClearEvicted(local_huge);
  ++installs_;
}

void HyperAllocMonitor::UnmapBatch(const std::vector<HugeId>& global_huge) {
  if (global_huge.empty()) {
    return;
  }
  std::vector<HugeId> sorted = global_huge;
  std::sort(sorted.begin(), sorted.end());

  const sim::Time t0 = sim_->now();
  uint64_t shootdown_allcpu_ns = 0;

  // Contiguous runs are unmapped with a single madvise syscall — the
  // aggregation that LLFree's compact allocation behaviour makes
  // effective (§4.2 "KVM/QEMU Integration"). Each run's madvise/TLB cost
  // is charged inside an EPT-layer span and each run's coalesced unpin
  // inside an IOMMU-layer span, so request traces attribute the flush
  // work to the layer that incurs it (total charge is unchanged).
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i + 1;
    while (j < sorted.size() && sorted[j] == sorted[j - 1] + 1) {
      ++j;
    }
    uint64_t mapped_huge = 0;
    uint64_t run_sys_ns = 0;
    for (size_t k = i; k < j; ++k) {
      const FrameId first = HugeToFrame(sorted[k]);
      if (vm_->ept().CountMapped(first, kFramesPerHuge) > 0) {
        ++mapped_huge;
        run_sys_ns += vm_->costs().madvise_per_2m_ns;
        shootdown_allcpu_ns += vm_->costs().shootdown_allcpu_2m_ns;
        vm_->ept().Unmap(first, kFramesPerHuge);
      }
    }
    if (mapped_huge > 0) {
      // In-kernel: direct EPT zap, no madvise syscall per run.
      run_sys_ns += (config_.in_kernel ? 0
                                       : vm_->costs().madvise_syscall_ns) +
                    vm_->costs().tlb_shootdown_ns;
      if (!config_.in_kernel) {
        HA_COUNT("monitor.madvise");
        HA_TRACE_EVENT(trace::Category::kMonitor, trace::Op::kMadvise,
                       sorted[i], mapped_huge);
      }
      trace::Span unmap(trace::Layer::kEpt, "ept.unmap_run");
      unmap.AddFrames(mapped_huge * kFramesPerHuge);
      cpu_.host_sys_ns +=
          hv::ChargeTraced(sim_, "monitor.unmap_ns", run_sys_ns);
    }
    if (vm_->config().vfio) {
      // Coalesced IOTLB invalidation: unpin the whole contiguous run and
      // pay ONE ranged flush for it, not one flush per huge frame —
      // the same batching the madvise path above gets from contiguity.
      const uint64_t unpinned =
          vm_->iommu()->UnpinRange(sorted[i], j - i);
      if (unpinned > 0) {
        trace::Span unpin(trace::Layer::kIommu, "iommu.unpin_range");
        unpin.AddFrames(unpinned * kFramesPerHuge);
        cpu_.host_sys_ns += hv::ChargeTraced(
            sim_, "monitor.unmap_iommu_ns",
            unpinned * vm_->costs().iommu_unmap_2m_ns +
                vm_->costs().iotlb_flush_ns);
      }
    }
    i = j;
  }

  HA_HIST("monitor.unmap_batch_huge", sorted.size());
  const sim::Time t1 = sim_->now();
  if (shootdown_allcpu_ns > 0 && t1 > t0) {
    vm_->sink().OnAllCpusSteal(
        t0, t1,
        static_cast<double>(shootdown_allcpu_ns) /
            static_cast<double>(t1 - t0));
  }
}

void HyperAllocMonitor::Request(const hv::ResizeRequest& request) {
  HA_CHECK(!busy_);
  busy_ = true;
  HA_CHECK(request.target_bytes <= vm_->config().memory_bytes);
  const uint64_t target_hard =
      (vm_->config().memory_bytes - request.target_bytes) / kHugeSize;
  const bool shrink = target_hard > hard_reclaimed_huge_;
  request_span_.Start(shrink ? "request.inflate" : "request.deflate");
  request_span_.AddFrames(
      (shrink ? target_hard - hard_reclaimed_huge_
              : hard_reclaimed_huge_ - target_hard) *
      kFramesPerHuge);
  auto finish = [this, done = request.done] {
    request_span_.Finish();
    busy_ = false;
    if (done) {
      done();
    }
  };
  if (shrink) {
    ShrinkSlice(target_hard, /*escalation=*/0, std::move(finish));
  } else {
    GrowSlice(target_hard, std::move(finish));
  }
}

void HyperAllocMonitor::ShrinkSlice(uint64_t target_huge, int escalation,
                                    std::function<void()> done) {
  // Re-enter the request's trace (slices run as separate event-loop
  // callbacks, so the thread context must be restored each time).
  trace::ScopedContext request_context(request_span_.context());
  trace::Span slice(trace::Layer::kMonitor, "monitor.shrink_slice");
  std::vector<HugeId> batch;
  const std::vector<ZoneView*> order = ReclaimOrder();

  // Linear scan with a persistent per-zone hint, Normal zones before
  // DMA32 (§4.2). The hint makes repeated shrink/grow cycles naturally
  // re-take the previously reclaimed (still evicted) region first — the
  // "reclaim untouched" fast path of §5.3, which needs no unmapping.
  {
    trace::Span reclaim(trace::Layer::kLLFree, "llfree.reclaim_huge");
    for (ZoneView* view : order) {
      while (hard_reclaimed_huge_ < target_huge &&
             batch.size() < config_.hugepages_per_slice) {
        const std::optional<HugeId> huge = view->monitor_view->ReclaimHuge(
            view->hint, /*hard=*/true, /*allow_reserved=*/escalation >= 1);
        if (!huge.has_value()) {
          break;  // zone exhausted; try the next one
        }
        view->hint = (*huge + 1) % view->states.size();
        cpu_.host_user_ns += hv::ChargeTraced(
            sim_, "monitor.reclaim_ns", vm_->costs().ha_reclaim_state_2m_ns);
        view->states.Set(*huge, ReclaimState::kHard);
        batch.push_back(FrameToHuge(view->zone->start) + *huge);
        HA_COUNT("monitor.reclaim_hard");
        HA_TRACE_EVENT(trace::Category::kMonitor, trace::Op::kReclaimHard,
                       batch.back(), escalation);
        ++hard_reclaimed_huge_;
      }
    }
    reclaim.AddFrames(batch.size() * kFramesPerHuge);
  }
  UnmapBatch(batch);

  if (hard_reclaimed_huge_ >= target_huge) {
    done();
    return;
  }
  if (batch.empty()) {
    // No fully free huge frame found: escalate the memory pressure
    // (§3.3: "we instruct the guest to free the remaining memory from
    // its caches and retry").
    if (escalation == 0) {
      vm_->PurgeAllocatorCaches();
      escalation = 1;
    } else if (vm_->cache_bytes() > 0) {
      vm_->CacheDrop(64 * kMiB);
    } else {
      done();  // nothing left to reclaim at huge granularity
      return;
    }
  }
  sim_->After(0, [this, target_huge, escalation,
                  done = std::move(done)]() mutable {
    ShrinkSlice(target_huge, escalation, std::move(done));
  });
}

void HyperAllocMonitor::GrowSlice(uint64_t target_huge,
                                  std::function<void()> done) {
  trace::ScopedContext request_context(request_span_.context());
  trace::Span slice(trace::Layer::kMonitor, "monitor.grow_slice");
  unsigned returned = 0;
  {
    trace::Span mark(trace::Layer::kLLFree, "llfree.mark_returned");
    for (const auto& view : zones_) {
      for (HugeId h = 0; h < view->states.size() &&
                         hard_reclaimed_huge_ > target_huge &&
                         returned < config_.hugepages_per_slice;
           ++h) {
        if (view->states.Get(h) != ReclaimState::kHard) {
          continue;
        }
        HA_CHECK(view->monitor_view->MarkReturned(h));
        view->states.Set(h, ReclaimState::kSoft);
        cpu_.host_user_ns += hv::ChargeTraced(
            sim_, "monitor.return_ns", vm_->costs().ha_return_state_2m_ns);
        HA_COUNT("monitor.return");
        HA_TRACE_EVENT(trace::Category::kMonitor, trace::Op::kReturn,
                       FrameToHuge(view->zone->start) + h, 0);
        --hard_reclaimed_huge_;
        ++returned;
      }
    }
    mark.AddFrames(static_cast<uint64_t>(returned) * kFramesPerHuge);
  }
  if (hard_reclaimed_huge_ <= target_huge || returned == 0) {
    done();
    return;
  }
  sim_->After(0, [this, target_huge, done = std::move(done)]() mutable {
    GrowSlice(target_huge, std::move(done));
  });
}

bool HyperAllocMonitor::IsHot(HugeId global_huge) const {
  for (const auto& view : zones_) {
    const HugeId first = FrameToHuge(view->zone->start);
    if (global_huge >= first && global_huge < first + view->states.size()) {
      return view->zone->llfree->HotnessOf(global_huge - first) > 0;
    }
  }
  HA_CHECK(false && "huge frame outside every zone");
  __builtin_unreachable();
}

uint64_t HyperAllocMonitor::AutoReclaimPass() {
  // Auto-reclamation is its own causal root (a periodic scan, not part
  // of any resize request).
  trace::ScopedRoot root;
  trace::Span pass(trace::Layer::kMonitor, "monitor.auto_reclaim_pass");
  std::vector<HugeId> batch;
  for (ZoneView* view : ReclaimOrder()) {
    // Linear scan over the R array (2 bit/huge) and the shared area index
    // (16 bit/huge): 18 consecutive cache lines per GiB (§3.3).
    const uint64_t lines =
        (view->states.size() * 2 + 511) / 512 +       // area index (16 bit)
        (view->states.ByteSize() + 63) / 64;          // R array (2 bit)
    scan_cache_lines_ += lines;
    HA_COUNT_N("monitor.scan_cache_lines", lines);
    HA_TRACE_EVENT(trace::Category::kMonitor, trace::Op::kScan,
                   view->states.size(), lines);
    cpu_.host_user_ns += hv::ChargeTraced(
        sim_, "monitor.scan_ns", lines * vm_->costs().scan_cache_line_ns);

    for (HugeId h = 0; h < view->states.size(); ++h) {
      // Age the guest's access hints as part of the scan (the host-side
      // half of the §6 hotness protocol).
      view->monitor_view->AgeHotness(h);
      if (view->states.Get(h) != ReclaimState::kInstalled) {
        continue;
      }
      const llfree::AreaEntry entry = view->monitor_view->ReadArea(h);
      if (!entry.IsFreeHuge() || entry.evicted) {
        continue;
      }
      if (!view->monitor_view->TrySoftReclaim(h)) {
        continue;  // guest raced us: it just allocated the frame
      }
      cpu_.host_user_ns += hv::ChargeTraced(
          sim_, "monitor.reclaim_ns", vm_->costs().ha_reclaim_state_2m_ns);
      view->states.Set(h, ReclaimState::kSoft);
      batch.push_back(FrameToHuge(view->zone->start) + h);
      HA_COUNT("monitor.reclaim_soft");
      HA_TRACE_EVENT(trace::Category::kMonitor, trace::Op::kReclaimSoft,
                     batch.back(), 0);
    }
  }
  UnmapBatch(batch);
  pass.AddFrames(batch.size() * kFramesPerHuge);
  soft_reclaims_ += batch.size();
  return batch.size();
}

void HyperAllocMonitor::StartAuto() {
  if (auto_running_) {
    return;
  }
  auto_running_ = true;
  sim_->After(config_.auto_period, [this] { AutoTick(); });
}

void HyperAllocMonitor::StopAuto() { auto_running_ = false; }

void HyperAllocMonitor::AutoTick() {
  if (!auto_running_) {
    return;
  }
  AutoReclaimPass();
  sim_->After(config_.auto_period, [this] { AutoTick(); });
}

}  // namespace hyperalloc::core
