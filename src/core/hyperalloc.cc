#include "src/core/hyperalloc.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/trace/trace.h"

namespace hyperalloc::core {

HyperAllocMonitor::HyperAllocMonitor(guest::GuestVm* vm,
                                     const HyperAllocConfig& config)
    : vm_(vm), config_(config), sim_(vm->simulation()),
      total_huge_(HugesForFrames(vm->total_frames())) {
  HA_CHECK(vm != nullptr);
  HA_CHECK(vm->config().allocator == guest::AllocatorKind::kLLFree);

  for (guest::Zone& zone : vm_->zones()) {
    HA_CHECK(zone.llfree_state != nullptr);
    auto view = std::make_unique<ZoneView>(&zone, zone.frames /
                                                      kFramesPerHuge);
    // The monitor's clone of the guest allocator over the shared state.
    view->monitor_view =
        std::make_unique<llfree::LLFree>(zone.llfree_state.get());
    // A fresh VM has no populated guest-physical memory: every huge frame
    // starts soft-reclaimed (M=0 => E=1), so first allocations install.
    for (HugeId h = 0; h < view->states.size(); ++h) {
      view->monitor_view->SetEvicted(h);
      view->states.Set(h, ReclaimState::kSoft);
    }
    ZoneView* raw = view.get();
    zone.llfree->SetInstallHandler(
        [this, raw](HugeId huge) { Install(*raw, huge); });
    zones_.push_back(std::move(view));
  }

  if (config.initial_limit_bytes > 0 &&
      config.initial_limit_bytes < vm->config().memory_bytes) {
    // Boot with a reduced hard limit: hard-reclaim the excess up front
    // (pure state work — nothing is populated yet).
    const uint64_t target =
        (vm->config().memory_bytes - config.initial_limit_bytes) /
        kHugeSize;
    for (ZoneView* view : ReclaimOrder()) {
      for (HugeId h = 0;
           h < view->states.size() && hard_reclaimed_huge_ < target; ++h) {
        if (view->monitor_view->TryHardReclaim(h)) {
          view->states.Set(h, ReclaimState::kHard);
          ++hard_reclaimed_huge_;
        }
      }
    }
    HA_CHECK(hard_reclaimed_huge_ == target);
  }
}

AllocType HyperAllocMonitor::TreeTypeOf(HugeId global_huge) const {
  for (const auto& view : zones_) {
    const HugeId first = FrameToHuge(view->zone->start);
    if (global_huge >= first && global_huge < first + view->states.size()) {
      const uint64_t tree =
          (global_huge - first) / view->zone->llfree->config().areas_per_tree;
      return view->zone->llfree->ReadTree(tree).type;
    }
  }
  HA_CHECK(false && "huge frame outside every zone");
  __builtin_unreachable();
}

std::vector<HyperAllocMonitor::ZoneView*> HyperAllocMonitor::ReclaimOrder() {
  // Normal zones before DMA32 (§4.2); the tiny DMA zone does not exist in
  // this model.
  std::vector<ZoneView*> order;
  for (const auto& view : zones_) {
    if (view->zone->kind == guest::ZoneKind::kNormal) {
      order.push_back(view.get());
    }
  }
  for (const auto& view : zones_) {
    if (view->zone->kind != guest::ZoneKind::kNormal) {
      order.push_back(view.get());
    }
  }
  return order;
}

uint64_t HyperAllocMonitor::limit_bytes() const {
  // Quarantined frames are lost to the guest just like hard-reclaimed
  // ones: the monitor claimed them in the shared allocator so the guest
  // can never allocate (and thus install) a poisoned frame.
  return vm_->config().memory_bytes -
         (hard_reclaimed_huge_ + quarantined_huge_) * kHugeSize;
}

HyperAllocMonitor::ZoneView* HyperAllocMonitor::FindView(HugeId global_huge,
                                                         HugeId* local_huge) {
  for (const auto& view : zones_) {
    const HugeId first = FrameToHuge(view->zone->start);
    if (global_huge >= first && global_huge < first + view->states.size()) {
      *local_huge = global_huge - first;
      return view.get();
    }
  }
  HA_CHECK(false && "huge frame outside every zone");
  __builtin_unreachable();
}

void HyperAllocMonitor::ChargeBackoff(unsigned retry) {
  const uint64_t ns = config_.retry.BackoffNs(retry);
  ++fault_retries_;
  if (trace::Span* span = trace::Span::Current()) {
    span->AddRetry();
  }
  if (busy_) {
    ++outcome_.retries;
    request_span_.AddRetry();
  }
  HA_COUNT("monitor.fault_retry");
  HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kRetry, retry, ns);
  cpu_.host_user_ns +=
      hv::ChargeTraced(sim_, "monitor.fault_backoff_ns", ns);
}

void HyperAllocMonitor::NoteFault() {
  ++faults_seen_;
  if (trace::Span* span = trace::Span::Current()) {
    span->AddFault();
  }
  if (busy_) {
    ++outcome_.faults;
    request_span_.AddFault();
  }
  HA_COUNT("monitor.fault");
}

void HyperAllocMonitor::RollbackFrame(ZoneView& view, HugeId local_huge,
                                      HugeId global_huge) {
  ++fault_rollbacks_;
  if (busy_) {
    ++outcome_.rollbacks;
  }
  const ReclaimState prior = view.states.Get(local_huge);
  if (prior == ReclaimState::kHard) {
    // Hard reclaim could not unmap: return the frame (A<-0, R<-S) as if
    // it had never been hard-reclaimed. A later slice may retry it.
    HA_CHECK(view.monitor_view->MarkReturned(local_huge));
    view.states.Set(local_huge, ReclaimState::kSoft);
    HA_CHECK(hard_reclaimed_huge_ > 0);
    --hard_reclaimed_huge_;
  } else if (prior == ReclaimState::kSoft) {
    // Soft reclaim could not unmap: clear E again; the frame stays
    // installed and host-backed.
    view.monitor_view->ClearEvicted(local_huge);
    view.states.Set(local_huge, ReclaimState::kInstalled);
  }
  HA_COUNT("monitor.fault_rollback");
  HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kRollback, global_huge,
                 static_cast<uint64_t>(prior));
}

void HyperAllocMonitor::QuarantineFrame(ZoneView& view, HugeId local_huge,
                                        HugeId global_huge) {
  const ReclaimState prior = view.states.Get(local_huge);
  if (prior == ReclaimState::kHard) {
    HA_CHECK(hard_reclaimed_huge_ > 0);
    --hard_reclaimed_huge_;
  } else if (prior == ReclaimState::kSoft) {
    // Claim the frame in the shared allocator (A<-1) so the guest can
    // never allocate — and thus never install — the poisoned frame. The
    // frame is free (soft-reclaimed), so this cannot fail.
    HA_CHECK(view.monitor_view->TryHardReclaim(local_huge,
                                               /*allow_reserved=*/true));
  }
  view.states.Set(local_huge, ReclaimState::kQuarantined);
  ++quarantined_huge_;
  HA_COUNT("monitor.quarantine_frame");
  HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kQuarantine, global_huge,
                 static_cast<uint64_t>(prior));
  if (fault::Injector* injector = vm_->fault_injector()) {
    injector->NotifyQuarantineFrame();
  }
  if (quarantined_huge_ >= config_.quarantine_frame_limit) {
    QuarantineVm();
  }
}

void HyperAllocMonitor::QuarantineVm() {
  if (vm_quarantined_) {
    return;
  }
  vm_quarantined_ = true;
  StopAuto();
  if (busy_) {
    outcome_.quarantined = true;
  }
  HA_COUNT("monitor.quarantine_vm");
  HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kQuarantine, ~0ull, 1);
  if (fault::Injector* injector = vm_->fault_injector()) {
    injector->NotifyQuarantineVm();
  }
}

bool HyperAllocMonitor::RequestTimedOut() const {
  return request_deadline_ != 0 && sim_->now() >= request_deadline_;
}

ReclaimState HyperAllocMonitor::StateOf(HugeId global_huge) const {
  for (const auto& view : zones_) {
    const HugeId first = FrameToHuge(view->zone->start);
    if (global_huge >= first && global_huge < first + view->states.size()) {
      return view->states.Get(global_huge - first);
    }
  }
  HA_CHECK(false && "huge frame outside every zone");
  __builtin_unreachable();
}

void HyperAllocMonitor::Install(ZoneView& view, HugeId local_huge) {
  // Blocking install hypercall (§3.2 "Return and Install"): the guest's
  // allocation waits until the memory is populated, mapped, and — with a
  // passthrough device — pinned. Only then may it be handed out (DMA
  // safety).
  HA_DCHECK(view.states.Get(local_huge) == ReclaimState::kSoft);
  const sim::Time t0 = sim_->now();
  // Installs are their own causal roots: they are triggered by guest
  // allocations, not by a resize request.
  trace::ScopedRoot root;
  trace::Span span(trace::Layer::kMonitor, "monitor.install");
  span.AddFrames(kFramesPerHuge);
  span.AddHugeFrames(kFramesPerHuge);
  // In-kernel integration (§5.3 ablation): no KVM->QEMU context switch —
  // the install costs no more than the EPT fault it replaces.
  const uint64_t entry_ns = config_.in_kernel
                                ? vm_->costs().ept_fault_2m_ns
                                : vm_->costs().install_hypercall_2m_ns;
  const FrameId global_first = view.zone->start + HugeToFrame(local_huge);
  fault::Injector* injector = vm_->fault_injector();
  const unsigned max_attempts = std::max(1u, config_.retry.max_attempts);

  bool ok = false;
  for (unsigned attempt = 0; attempt < max_attempts && !ok; ++attempt) {
    if (attempt > 0) {
      ChargeBackoff(attempt - 1);
    }
    if (const auto kind =
            fault::Poll(injector, fault::Site::kInstallHypercall)) {
      NoteFault();
      HA_COUNT("fault.install_hypercall");
      HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kInject,
                     global_first, 0);
      if (*kind == fault::Kind::kPermanent) {
        break;
      }
      continue;
    }
    cpu_.host_user_ns +=
        hv::ChargeTraced(sim_, "monitor.install_entry_ns", entry_ns);
    if (!config_.in_kernel) {
      HA_COUNT("monitor.hypercall");
    }
    {
      trace::Span populate(trace::Layer::kEpt, "ept.populate");
      populate.AddFrames(kFramesPerHuge);
      populate.AddHugeFrames(kFramesPerHuge);
      const uint64_t ept_faults = vm_->ept().injected_faults();
      if (!vm_->PopulateFrames(global_first, kFramesPerHuge)) {
        NoteFault();
        if (vm_->ept().injected_faults() > ept_faults &&
            vm_->ept().last_injected_kind() == fault::Kind::kPermanent) {
          break;
        }
        continue;  // injected map failure or host exhaustion: retry
      }
      cpu_.host_sys_ns += hv::ChargeTraced(
          sim_, "monitor.install_ns",
          kFramesPerHuge * vm_->costs().populate_4k_ns);
    }
    if (vm_->config().vfio) {
      trace::Span pin(trace::Layer::kIommu, "iommu.pin");
      pin.AddFrames(kFramesPerHuge);
      pin.AddHugeFrames(kFramesPerHuge);
      vm_->iommu()->Pin(FrameToHuge(global_first));
      if (!vm_->iommu()->IsPinned(FrameToHuge(global_first))) {
        NoteFault();
        if (vm_->iommu()->last_injected_kind() == fault::Kind::kPermanent) {
          break;
        }
        continue;
      }
      cpu_.host_sys_ns += hv::ChargeTraced(sim_, "monitor.install_pin_ns",
                                           vm_->costs().iommu_map_2m_ns);
    }
    ok = true;
  }
  if (!ok) {
    // Retries exhausted (or a permanent fault): the guest allocation has
    // already claimed the frame, so hand it over anyway — it populates
    // lazily on first touch — and poison the VM, because the install's
    // DMA-safety guarantee ("populated and pinned before the allocation
    // returns") no longer holds.
    QuarantineVm();
  }
  HA_COUNT("monitor.install");
  HA_TRACE_EVENT(trace::Category::kMonitor, trace::Op::kInstall,
                 FrameToHuge(global_first), 0);
  if (sim_->now() > t0) {
    vm_->sink().OnBandwidth(t0, sim_->now(),
                            static_cast<double>(kHugeSize) /
                                static_cast<double>(sim_->now() - t0));
  }

  view.states.Set(local_huge, ReclaimState::kInstalled);
  view.monitor_view->ClearEvicted(local_huge);
  ++installs_;
}

uint64_t HyperAllocMonitor::UnmapBatch(
    const std::vector<HugeId>& global_huge) {
  if (global_huge.empty()) {
    return 0;
  }
  std::vector<HugeId> sorted = global_huge;
  std::sort(sorted.begin(), sorted.end());

  const sim::Time t0 = sim_->now();
  uint64_t shootdown_allcpu_ns = 0;
  uint64_t completed = 0;
  const unsigned max_attempts = std::max(1u, config_.retry.max_attempts);

  // Contiguous runs are unmapped with a single madvise syscall — the
  // aggregation that LLFree's compact allocation behaviour makes
  // effective (§4.2 "KVM/QEMU Integration"). Each run's madvise/TLB cost
  // is charged inside an EPT-layer span and each run's coalesced unpin
  // inside an IOMMU-layer span, so request traces attribute the flush
  // work to the layer that incurs it (total charge is unchanged).
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i + 1;
    while (j < sorted.size() && sorted[j] == sorted[j - 1] + 1) {
      ++j;
    }
    uint64_t mapped_huge = 0;
    uint64_t mapped_huge_2m = 0;  // of those, unmapped via a 2M EPT entry
    uint64_t run_sys_ns = 0;
    // Frames whose unmap completed (or that had nothing mapped) move on
    // to the unpin phase; failed frames are rolled back or quarantined
    // and must keep their pin (a rolled-back frame stays mapped).
    std::vector<bool> unmapped(j - i, false);
    uint64_t run_ok = 0;
    for (size_t k = i; k < j; ++k) {
      const FrameId first = HugeToFrame(sorted[k]);
      if (vm_->ept().CountMapped(first, kFramesPerHuge) == 0) {
        unmapped[k - i] = true;  // §5.3 "reclaim untouched" fast path
        ++run_ok;
        ++reclaim_untouched_;
        continue;
      }
      // §4.14 reclaim-share split: read the 2M-entry bit before Unmap
      // invalidates it.
      const bool entry_2m = vm_->ept().HasHugeEntry(sorted[k]);
      bool ok = false;
      bool permanent = false;
      for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
          ChargeBackoff(attempt - 1);
        }
        if (vm_->ept().Unmap(first, kFramesPerHuge) !=
            hv::Ept::kFaultInjected) {
          ok = true;
          break;
        }
        NoteFault();
        if (vm_->ept().last_injected_kind() == fault::Kind::kPermanent) {
          permanent = true;
          break;
        }
      }
      if (ok) {
        unmapped[k - i] = true;
        ++run_ok;
        ++mapped_huge;
        if (entry_2m) {
          ++mapped_huge_2m;
          ++reclaim_unmapped_2m_;
        } else {
          ++reclaim_unmapped_4k_;
        }
        run_sys_ns += vm_->costs().madvise_per_2m_ns;
        shootdown_allcpu_ns += vm_->costs().shootdown_allcpu_2m_ns;
        continue;
      }
      HugeId local = 0;
      ZoneView* view = FindView(sorted[k], &local);
      if (permanent) {
        QuarantineFrame(*view, local, sorted[k]);
      } else {
        RollbackFrame(*view, local, sorted[k]);
      }
    }
    if (mapped_huge > 0) {
      // In-kernel: direct EPT zap, no madvise syscall per run.
      run_sys_ns += (config_.in_kernel ? 0
                                       : vm_->costs().madvise_syscall_ns) +
                    vm_->costs().tlb_shootdown_ns;
      if (!config_.in_kernel) {
        HA_COUNT("monitor.madvise");
        HA_TRACE_EVENT(trace::Category::kMonitor, trace::Op::kMadvise,
                       sorted[i], mapped_huge);
      }
      trace::Span unmap(trace::Layer::kEpt, "ept.unmap_run");
      unmap.AddFrames(mapped_huge * kFramesPerHuge);
      unmap.AddHugeFrames(mapped_huge_2m * kFramesPerHuge);
      cpu_.host_sys_ns +=
          hv::ChargeTraced(sim_, "monitor.unmap_ns", run_sys_ns);
    }
    if (!vm_->config().vfio) {
      completed += run_ok;
    } else if (run_ok == j - i) {
      // Clean run (the only path with injection off): coalesced IOTLB
      // invalidation — unpin the whole contiguous run and pay ONE ranged
      // flush for it, not one flush per huge frame — the same batching
      // the madvise path above gets from contiguity.
      uint64_t unpinned = 0;
      bool pin_ok = false;
      for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
          ChargeBackoff(attempt - 1);
        }
        const uint64_t faults = vm_->iommu()->injected_faults();
        unpinned = vm_->iommu()->UnpinRange(sorted[i], j - i);
        if (vm_->iommu()->injected_faults() == faults) {
          pin_ok = true;
          break;
        }
        NoteFault();
        if (vm_->iommu()->last_injected_kind() == fault::Kind::kPermanent) {
          break;
        }
      }
      if (pin_ok) {
        if (unpinned > 0) {
          trace::Span unpin(trace::Layer::kIommu, "iommu.unpin_range");
          unpin.AddFrames(unpinned * kFramesPerHuge);
          unpin.AddHugeFrames(unpinned * kFramesPerHuge);
          cpu_.host_sys_ns += hv::ChargeTraced(
              sim_, "monitor.unmap_iommu_ns",
              unpinned * vm_->costs().iommu_unmap_2m_ns +
                  vm_->costs().iotlb_flush_ns);
        }
        completed += run_ok;
      } else {
        // Unpin retries exhausted: the run is already unmapped but may
        // still be pinned — poison every still-pinned frame.
        for (size_t k = i; k < j; ++k) {
          if (!vm_->iommu()->IsPinned(sorted[k])) {
            ++completed;
            continue;
          }
          HugeId local = 0;
          ZoneView* view = FindView(sorted[k], &local);
          QuarantineFrame(*view, local, sorted[k]);
        }
      }
    } else {
      // Degraded run: unpin only the frames that actually unmapped, one
      // flush each (rolled-back frames stay mapped and keep their pin).
      for (size_t k = i; k < j; ++k) {
        if (!unmapped[k - i]) {
          continue;
        }
        if (!vm_->iommu()->IsPinned(sorted[k])) {
          ++completed;
          continue;
        }
        bool pin_ok = false;
        for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
          if (attempt > 0) {
            ChargeBackoff(attempt - 1);
          }
          const uint64_t faults = vm_->iommu()->injected_faults();
          if (vm_->iommu()->UnpinRange(sorted[k], 1) == 1) {
            pin_ok = true;
            break;
          }
          if (vm_->iommu()->injected_faults() > faults) {
            NoteFault();
            if (vm_->iommu()->last_injected_kind() ==
                fault::Kind::kPermanent) {
              break;
            }
          }
        }
        if (pin_ok) {
          trace::Span unpin(trace::Layer::kIommu, "iommu.unpin_range");
          unpin.AddFrames(kFramesPerHuge);
          unpin.AddHugeFrames(kFramesPerHuge);
          cpu_.host_sys_ns += hv::ChargeTraced(
              sim_, "monitor.unmap_iommu_ns",
              vm_->costs().iommu_unmap_2m_ns + vm_->costs().iotlb_flush_ns);
          ++completed;
        } else {
          HugeId local = 0;
          ZoneView* view = FindView(sorted[k], &local);
          QuarantineFrame(*view, local, sorted[k]);
        }
      }
    }
    i = j;
  }

  HA_HIST("monitor.unmap_batch_huge", sorted.size());
  const sim::Time t1 = sim_->now();
  if (shootdown_allcpu_ns > 0 && t1 > t0) {
    vm_->sink().OnAllCpusSteal(
        t0, t1,
        static_cast<double>(shootdown_allcpu_ns) /
            static_cast<double>(t1 - t0));
  }
  return completed;
}

void HyperAllocMonitor::Request(const hv::ResizeRequest& request) {
  HA_CHECK(!busy_);
  busy_ = true;
  HA_CHECK(request.target_bytes <= vm_->config().memory_bytes);
  outcome_ = hv::ResizeOutcome{};
  outcome_.target_bytes = request.target_bytes;
  stalled_slices_ = 0;
  request_deadline_ =
      request.deadline_ns > 0 ? sim_->now() + request.deadline_ns
      : config_.retry.request_timeout_ns > 0
          ? sim_->now() + config_.retry.request_timeout_ns
          : 0;
  const uint64_t target_hard =
      (vm_->config().memory_bytes - request.target_bytes) / kHugeSize;
  // Quarantined frames already count against the limit, so the request
  // only has to move the remainder.
  const uint64_t held = hard_reclaimed_huge_ + quarantined_huge_;
  const bool shrink = target_hard > held;
  request_span_.Start(shrink ? "request.inflate" : "request.deflate");
  request_span_.AddFrames(
      (shrink ? target_hard - held : held - target_hard) * kFramesPerHuge);
  auto finish = [this, done = request.done, on_outcome = request.on_outcome,
                 shrink, target = request.target_bytes] {
    outcome_.achieved_bytes = limit_bytes();
    outcome_.quarantined = vm_quarantined_;
    // A quarantined VM may still hit its numeric target (quarantined
    // frames count against the limit) but the host memory behind them
    // was never actually freed — that is degradation, not completion.
    outcome_.complete = !outcome_.quarantined &&
                        (shrink ? outcome_.achieved_bytes <= target
                                : outcome_.achieved_bytes >= target);
    request_span_.Finish();
    busy_ = false;
    request_deadline_ = 0;
    if (on_outcome) {
      on_outcome(outcome_);
    }
    if (done) {
      done();
    }
  };
  if (vm_quarantined_) {
    finish();  // a poisoned VM refuses resizes: report and complete
    return;
  }
  if (shrink) {
    ShrinkSlice(target_hard, /*escalation=*/0, std::move(finish));
  } else {
    GrowSlice(target_hard, std::move(finish));
  }
}

void HyperAllocMonitor::ShrinkSlice(uint64_t target_huge, int escalation,
                                    std::function<void()> done) {
  // Re-enter the request's trace (slices run as separate event-loop
  // callbacks, so the thread context must be restored each time).
  trace::ScopedContext request_context(request_span_.context());
  trace::Span slice(trace::Layer::kMonitor, "monitor.shrink_slice");
  if (vm_quarantined_) {
    done();  // poisoned mid-request: stop with a partial reclaim
    return;
  }
  if (RequestTimedOut()) {
    ++fault_timeouts_;
    outcome_.timed_out = true;
    HA_COUNT("monitor.request_timeout");
    HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kTimeout, target_huge,
                   hard_reclaimed_huge_);
    done();  // partial reclaim: every frame is in a legal state as-is
    return;
  }
  std::vector<HugeId> batch;
  const std::vector<ZoneView*> order = ReclaimOrder();

  // Linear scan with a persistent per-zone hint, Normal zones before
  // DMA32 (§4.2). The hint makes repeated shrink/grow cycles naturally
  // re-take the previously reclaimed (still evicted) region first — the
  // "reclaim untouched" fast path of §5.3, which needs no unmapping.
  {
    trace::Span reclaim(trace::Layer::kLLFree, "llfree.reclaim_huge");
    for (ZoneView* view : order) {
      while (hard_reclaimed_huge_ + quarantined_huge_ < target_huge &&
             batch.size() < config_.hugepages_per_slice) {
        const std::optional<HugeId> huge = view->monitor_view->ReclaimHuge(
            view->hint, /*hard=*/true, /*allow_reserved=*/escalation >= 1);
        if (!huge.has_value()) {
          break;  // zone exhausted; try the next one
        }
        view->hint = (*huge + 1) % view->states.size();
        cpu_.host_user_ns += hv::ChargeTraced(
            sim_, "monitor.reclaim_ns", vm_->costs().ha_reclaim_state_2m_ns);
        view->states.Set(*huge, ReclaimState::kHard);
        batch.push_back(FrameToHuge(view->zone->start) + *huge);
        HA_COUNT("monitor.reclaim_hard");
        HA_TRACE_EVENT(trace::Category::kMonitor, trace::Op::kReclaimHard,
                       batch.back(), escalation);
        ++hard_reclaimed_huge_;
      }
    }
    reclaim.AddFrames(batch.size() * kFramesPerHuge);
    reclaim.AddHugeFrames(batch.size() * kFramesPerHuge);
  }
  const uint64_t quarantined_before = quarantined_huge_;
  const uint64_t completed = UnmapBatch(batch);

  if (hard_reclaimed_huge_ + quarantined_huge_ >= target_huge) {
    done();
    return;
  }
  if (vm_quarantined_) {
    done();  // quarantine tripped mid-batch: stop with a partial reclaim
    return;
  }
  if (batch.empty()) {
    // No fully free huge frame found: escalate the memory pressure
    // (§3.3: "we instruct the guest to free the remaining memory from
    // its caches and retry").
    if (escalation == 0) {
      vm_->PurgeAllocatorCaches();
      escalation = 1;
    } else if (vm_->cache_bytes() > 0) {
      vm_->CacheDrop(64 * kMiB);
    } else {
      done();  // nothing left to reclaim at huge granularity
      return;
    }
  } else if (completed == 0 && quarantined_huge_ == quarantined_before) {
    // Every reclaimed frame was rolled back by transient faults: no net
    // progress. A few stalled slices in a row mean the fault rate is too
    // high to ever finish — give up with a partial reclaim instead of
    // spinning (the hint would re-find the same frames forever).
    if (++stalled_slices_ >= 3) {
      done();
      return;
    }
  } else {
    stalled_slices_ = 0;
  }
  sim_->After(0, [this, target_huge, escalation,
                  done = std::move(done)]() mutable {
    ShrinkSlice(target_huge, escalation, std::move(done));
  });
}

void HyperAllocMonitor::GrowSlice(uint64_t target_huge,
                                  std::function<void()> done) {
  trace::ScopedContext request_context(request_span_.context());
  trace::Span slice(trace::Layer::kMonitor, "monitor.grow_slice");
  unsigned returned = 0;
  {
    trace::Span mark(trace::Layer::kLLFree, "llfree.mark_returned");
    for (const auto& view : zones_) {
      for (HugeId h = 0;
           h < view->states.size() &&
           hard_reclaimed_huge_ + quarantined_huge_ > target_huge &&
           returned < config_.hugepages_per_slice;
           ++h) {
        if (view->states.Get(h) != ReclaimState::kHard) {
          continue;
        }
        HA_CHECK(view->monitor_view->MarkReturned(h));
        view->states.Set(h, ReclaimState::kSoft);
        cpu_.host_user_ns += hv::ChargeTraced(
            sim_, "monitor.return_ns", vm_->costs().ha_return_state_2m_ns);
        HA_COUNT("monitor.return");
        HA_TRACE_EVENT(trace::Category::kMonitor, trace::Op::kReturn,
                       FrameToHuge(view->zone->start) + h, 0);
        --hard_reclaimed_huge_;
        ++returned;
      }
    }
    mark.AddFrames(static_cast<uint64_t>(returned) * kFramesPerHuge);
    mark.AddHugeFrames(static_cast<uint64_t>(returned) * kFramesPerHuge);
  }
  // Quarantined frames cannot be returned: a grow request against a VM
  // with quarantined memory finishes partial (returned == 0 once only
  // quarantined frames remain above the target).
  if (hard_reclaimed_huge_ + quarantined_huge_ <= target_huge ||
      returned == 0) {
    done();
    return;
  }
  sim_->After(0, [this, target_huge, done = std::move(done)]() mutable {
    GrowSlice(target_huge, std::move(done));
  });
}

bool HyperAllocMonitor::IsHot(HugeId global_huge) const {
  for (const auto& view : zones_) {
    const HugeId first = FrameToHuge(view->zone->start);
    if (global_huge >= first && global_huge < first + view->states.size()) {
      return view->zone->llfree->HotnessOf(global_huge - first) > 0;
    }
  }
  HA_CHECK(false && "huge frame outside every zone");
  __builtin_unreachable();
}

uint64_t HyperAllocMonitor::AutoReclaimPass() {
  if (vm_quarantined_) {
    return 0;  // a poisoned VM stops background reclamation
  }
  // Auto-reclamation is its own causal root (a periodic scan, not part
  // of any resize request).
  trace::ScopedRoot root;
  trace::Span pass(trace::Layer::kMonitor, "monitor.auto_reclaim_pass");
  std::vector<HugeId> batch;
  for (ZoneView* view : ReclaimOrder()) {
    // Linear scan over the R array (2 bit/huge) and the shared area index
    // (16 bit/huge): 18 consecutive cache lines per GiB (§3.3).
    const uint64_t lines =
        (view->states.size() * 2 + 511) / 512 +       // area index (16 bit)
        (view->states.ByteSize() + 63) / 64;          // R array (2 bit)
    scan_cache_lines_ += lines;
    HA_COUNT_N("monitor.scan_cache_lines", lines);
    HA_TRACE_EVENT(trace::Category::kMonitor, trace::Op::kScan,
                   view->states.size(), lines);
    cpu_.host_user_ns += hv::ChargeTraced(
        sim_, "monitor.scan_ns", lines * vm_->costs().scan_cache_line_ns);

    for (HugeId h = 0; h < view->states.size(); ++h) {
      // Age the guest's access hints as part of the scan (the host-side
      // half of the §6 hotness protocol).
      view->monitor_view->AgeHotness(h);
      if (view->states.Get(h) != ReclaimState::kInstalled) {
        continue;
      }
      const llfree::AreaEntry entry = view->monitor_view->ReadArea(h);
      if (!entry.IsFreeHuge() || entry.evicted) {
        continue;
      }
      if (!view->monitor_view->TrySoftReclaim(h)) {
        continue;  // guest raced us: it just allocated the frame
      }
      cpu_.host_user_ns += hv::ChargeTraced(
          sim_, "monitor.reclaim_ns", vm_->costs().ha_reclaim_state_2m_ns);
      view->states.Set(h, ReclaimState::kSoft);
      batch.push_back(FrameToHuge(view->zone->start) + h);
      HA_COUNT("monitor.reclaim_soft");
      HA_TRACE_EVENT(trace::Category::kMonitor, trace::Op::kReclaimSoft,
                     batch.back(), 0);
    }
  }
  // Rolled-back frames do not count: only frames that actually unmapped
  // (or were already unmapped) are net soft reclaims.
  const uint64_t completed = UnmapBatch(batch);
  pass.AddFrames(batch.size() * kFramesPerHuge);
  pass.AddHugeFrames(batch.size() * kFramesPerHuge);
  soft_reclaims_ += completed;
  return completed;
}

void HyperAllocMonitor::StartAuto() {
  if (auto_running_) {
    return;
  }
  auto_running_ = true;
  sim_->After(config_.auto_period, [this] { AutoTick(); });
}

void HyperAllocMonitor::StopAuto() { auto_running_ = false; }

void HyperAllocMonitor::AutoTick() {
  if (!auto_running_) {
    return;
  }
  AutoReclaimPass();
  sim_->After(config_.auto_period, [this] { AutoTick(); });
}

}  // namespace hyperalloc::core
