// HyperAlloc — the paper's contribution: VM memory de/inflation via a
// hypervisor-shared page-frame allocator (§3–4).
//
// The monitor holds a clone of each guest zone's LLFree allocator over the
// *same* shared state and manipulates guest-visible per-frame state (the
// A/E bits in the area index) with single CAS transactions — no guest
// transition is needed to find or claim reclaimable memory. The monitor's
// own authoritative state is the per-huge-frame R array (I/S/H).
//
// Mechanisms (paper §3.2/§3.3):
//  * Hard reclamation  — lowers the VM's hard memory limit: A<-1, E<-1,
//    unmap (batched madvise over contiguous runs), R<-H.
//  * Return            — raises the limit: A<-0 (E stays 1), R<-S. No
//    host memory moves; 229 ns of state work per huge frame.
//  * Install           — the guest's allocation of an evicted frame
//    triggers one blocking hypercall; the monitor populates + maps (EPT
//    and, under VFIO, IOMMU with pinning) before the allocation returns —
//    DMA safety by construction.
//  * Automatic (soft) reclamation — every 5 s the monitor scans R and the
//    shared area index (18 cache lines per GiB) and soft-reclaims free,
//    installed, host-backed huge frames.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/reclaim_states.h"
#include "src/fault/fault.h"
#include "src/guest/guest_vm.h"
#include "src/hv/deflator.h"
#include "src/sim/simulation.h"
#include "src/trace/span.h"

namespace hyperalloc::core {

struct HyperAllocConfig {
  // Auto-reclamation scan period (paper: every 5 seconds).
  sim::Time auto_period = 5 * sim::kSec;
  // Huge frames processed per event-loop slice.
  unsigned hugepages_per_slice = 512;
  // §6 "Beyond Memory Reclamation": start with a hard limit below the
  // guest-physical memory size ("starting with a large guest-physical
  // memory but low hard limit"), so the VM can later grow beyond its
  // boot-time allotment. 0 = full memory.
  uint64_t initial_limit_bytes = 0;
  // §5.3 ablation: integrate the monitor into KVM instead of QEMU. The
  // install hypercall loses its extra kernel->user context switch (cost
  // drops to a plain EPT fault) and unmapping manipulates the EPT
  // directly instead of going through madvise syscalls.
  bool in_kernel = false;
  // Fault recovery (DESIGN.md §4.9): bounded retry with virtual-time
  // exponential backoff for every fallible monitor operation, plus the
  // optional per-request deadline.
  fault::RetryPolicy retry;
  // The VM is poisoned (quarantined) once this many huge frames had to
  // be quarantined by unrecoverable faults.
  unsigned quarantine_frame_limit = 16;
};

class HyperAllocMonitor : public hv::Deflator {
 public:
  // The guest must use the LLFree allocator. The monitor maps each zone's
  // allocator state (paper §4.2 "Locating the Allocator State"), installs
  // the install-hypercall handler, and marks all memory soft-reclaimed:
  // a freshly booted VM has no populated memory, so every first
  // allocation installs its huge frame.
  HyperAllocMonitor(guest::GuestVm* vm, const HyperAllocConfig& config);

  hv::DeflatorCaps caps() const override {
    return {.name = "HyperAlloc",
            .dma_safe = true,
            .supports_auto = true,
            .granularity_bytes = kHugeSize};
  }

  void Request(const hv::ResizeRequest& request) override;
  uint64_t limit_bytes() const override;
  bool busy() const override { return busy_; }

  void StartAuto() override;
  void StopAuto() override;

  const hv::CpuAccounting& cpu() const override { return cpu_; }

  // Introspection / statistics.
  uint64_t hard_reclaimed_bytes() const {
    return hard_reclaimed_huge_ * kHugeSize;
  }
  uint64_t installs() const { return installs_; }
  uint64_t soft_reclaims() const { return soft_reclaims_; }

  // Huge-frame reclaim share (DESIGN.md §4.14): of the huge frames this
  // monitor reclaimed and handed to UnmapBatch, how many avoided per-4K
  // EPT work — untouched (nothing mapped, the §5.3 fast path) or
  // invalidated via a single 2 MiB EPT entry — vs. the ones that needed
  // 512 separate 4K invalidations (a demoted or piecewise-faulted frame).
  uint64_t reclaim_untouched() const { return reclaim_untouched_; }
  uint64_t reclaim_unmapped_2m() const { return reclaim_unmapped_2m_; }
  uint64_t reclaim_unmapped_4k() const { return reclaim_unmapped_4k_; }
  // (untouched + 2m) / total, 1.0 when nothing was reclaimed yet.
  double HugeReclaimShare() const { return huge_reclaim().Share(); }

  // Fleet-visible form of the same split (hv::Deflator hook), so the
  // fleet engine can aggregate the share across VMs without knowing the
  // backend type.
  hv::HugeReclaimStats huge_reclaim() const override {
    return {.untouched = reclaim_untouched_,
            .via_2m = reclaim_unmapped_2m_,
            .via_4k = reclaim_unmapped_4k_};
  }

  // Fault-recovery statistics (DESIGN.md §4.9).
  uint64_t faults_seen() const { return faults_seen_; }
  uint64_t fault_retries() const { return fault_retries_; }
  uint64_t fault_rollbacks() const { return fault_rollbacks_; }
  uint64_t fault_timeouts() const { return fault_timeouts_; }
  uint64_t quarantined_huge() const { return quarantined_huge_; }
  bool vm_quarantined() const { return vm_quarantined_; }

  // §6 swap-strategy hook: the shared tree index carries each tree's
  // allocation type, so the host can prefer (e.g.) swapping movable user
  // memory over unmovable kernel memory. Read-only shared-state access.
  AllocType TreeTypeOf(HugeId global_huge) const;
  // §6 hotness hints: whether the guest accessed the huge frame since
  // the last few auto-reclamation scans (which age the counters).
  bool IsHot(HugeId global_huge) const;
  uint64_t scan_cache_lines_total() const { return scan_cache_lines_; }
  ReclaimState StateOf(HugeId global_huge) const;

  // One full auto-reclamation pass, callable directly (tests, benches).
  // Returns the number of huge frames soft-reclaimed.
  uint64_t AutoReclaimPass();

 private:
  struct ZoneView {
    guest::Zone* zone;
    std::unique_ptr<llfree::LLFree> monitor_view;  // clone on shared state
    ReclaimStateArray states;
    HugeId hint = 0;

    ZoneView(guest::Zone* z, uint64_t num_huge)
        : zone(z), states(num_huge) {}
  };

  // Zones in reclamation order: Normal zones first, then DMA32 (§4.2).
  std::vector<ZoneView*> ReclaimOrder();

  void Install(ZoneView& view, HugeId local_huge);

  // One shrink slice; escalation: 0 = free memory only, 1 = purge
  // allocator caches + raid reserved trees, 2 = evict page cache.
  void ShrinkSlice(uint64_t target_huge, int escalation,
                   std::function<void()> done);
  void GrowSlice(uint64_t target_huge, std::function<void()> done);

  // Unmaps a batch of (globally addressed) reclaimed huge frames,
  // batching contiguous runs into single madvise calls. Under fault
  // injection an unmap or unpin may fail: transient failures retry with
  // backoff, then roll the frame back to its pre-reclaim state; permanent
  // failures (or unpin-retry exhaustion after the frame was unmapped)
  // quarantine the frame. Returns the number of frames that completed.
  uint64_t UnmapBatch(const std::vector<HugeId>& global_huge);

  void AutoTick();

  // --- Fault recovery (DESIGN.md §4.9) -------------------------------
  // Maps a global huge id back to its zone view + local id.
  ZoneView* FindView(HugeId global_huge, HugeId* local_huge);
  // Charges the exponential backoff before retry number `retry` (0-based)
  // and bumps the retry accounting (innermost span + request span).
  void ChargeBackoff(unsigned retry);
  // Records an observed injected fault (innermost span + request span).
  void NoteFault();
  // Reverts a huge frame whose unmap failed transiently to its
  // pre-reclaim state (H -> S via return, S -> I via E-bit clear).
  void RollbackFrame(ZoneView& view, HugeId local_huge, HugeId global_huge);
  // Poisons a single huge frame (absorbing Q state); trips VM quarantine
  // at config_.quarantine_frame_limit.
  void QuarantineFrame(ZoneView& view, HugeId local_huge,
                       HugeId global_huge);
  void QuarantineVm();
  // True once the current request's deadline has passed.
  bool RequestTimedOut() const;

  guest::GuestVm* vm_;
  HyperAllocConfig config_;
  sim::Simulation* sim_;
  std::vector<std::unique_ptr<ZoneView>> zones_;

  uint64_t total_huge_;
  uint64_t hard_reclaimed_huge_ = 0;
  bool busy_ = false;
  bool auto_running_ = false;

  // Fault recovery (DESIGN.md §4.9).
  uint64_t quarantined_huge_ = 0;
  bool vm_quarantined_ = false;
  sim::Time request_deadline_ = 0;  // 0 = no deadline
  unsigned stalled_slices_ = 0;     // consecutive zero-progress slices
  uint64_t faults_seen_ = 0;
  uint64_t fault_retries_ = 0;
  uint64_t fault_rollbacks_ = 0;
  uint64_t fault_timeouts_ = 0;

  hv::CpuAccounting cpu_;
  trace::RequestSpan request_span_;
  uint64_t installs_ = 0;
  uint64_t soft_reclaims_ = 0;
  uint64_t scan_cache_lines_ = 0;

  // Huge-frame reclaim share split (DESIGN.md §4.14).
  uint64_t reclaim_untouched_ = 0;
  uint64_t reclaim_unmapped_2m_ = 0;
  uint64_t reclaim_unmapped_4k_ = 0;
};

}  // namespace hyperalloc::core
