// Generalized HyperAlloc for guests whose page-frame allocator cannot be
// shared directly (paper §6 "Concept Generalization"): the guest's buddy
// allocator stays private; guest and host exchange the per-huge-frame
// (A, E) state through an auxiliary memory-mapped array (hv::AuxState).
//
// What generalizes: DMA-safe *automatic* (soft) reclamation. The monitor
// scans (R, A) — same 18-cache-lines-per-GiB footprint — and claims free
// huge frames with one CAS that atomically checks A and sets E, so a
// concurrent guest allocation either sees E (and installs) or beats the
// CAS. Installs work exactly as with LLFree.
//
// What does not: lock-free *hard* reclamation. Without write access to
// the allocator's internals the monitor cannot mark frames allocated for
// the guest, so hard limit changes fall back to a guest-mediated
// balloon-style path (allocate the frames through the guest allocator) —
// slower, but still DMA-safe and batched. This asymmetry is the measured
// cost of not co-designing the allocator (see bench_inflate's
// "HyperAlloc-generic" rows and the ablation discussion).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/reclaim_states.h"
#include "src/guest/guest_vm.h"
#include "src/hv/aux_state.h"
#include "src/hv/deflator.h"
#include "src/sim/simulation.h"

namespace hyperalloc::core {

struct GenericHyperAllocConfig {
  sim::Time auto_period = 5 * sim::kSec;
  unsigned hugepages_per_slice = 512;
};

class GenericHyperAllocMonitor : public hv::Deflator {
 public:
  // The guest must use the buddy allocator; the monitor attaches the
  // auxiliary (A, E) bridge and starts with all memory soft-reclaimed.
  GenericHyperAllocMonitor(guest::GuestVm* vm,
                           const GenericHyperAllocConfig& config);

  hv::DeflatorCaps caps() const override {
    return {.name = "HyperAlloc-generic",
            .dma_safe = true,
            .supports_auto = true,
            .granularity_bytes = kHugeSize};
  }

  void Request(const hv::ResizeRequest& request) override;
  uint64_t limit_bytes() const override;
  bool busy() const override { return busy_; }

  void StartAuto() override;
  void StopAuto() override;

  const hv::CpuAccounting& cpu() const override { return cpu_; }

  uint64_t installs() const { return installs_; }
  uint64_t soft_reclaims() const { return soft_reclaims_; }
  hv::AuxState& aux() { return aux_; }
  ReclaimState StateOf(HugeId huge) const { return states_.Get(huge); }

  // One full soft-reclamation scan; returns reclaimed huge frames.
  uint64_t AutoReclaimPass();

 private:
  struct HardHeld {
    FrameId frame;  // guest allocation backing the hard reclaim
  };

  void Install(HugeId huge);
  void ShrinkSlice(uint64_t target_huge, std::function<void()> done);
  void GrowSlice(uint64_t target_huge, std::function<void()> done);
  void UnmapBatch(const std::vector<HugeId>& huge_frames);

  void AutoTick();

  guest::GuestVm* vm_;
  GenericHyperAllocConfig config_;
  sim::Simulation* sim_;
  hv::AuxState aux_;
  ReclaimStateArray states_;
  std::vector<HardHeld> hard_held_;
  bool suppress_install_ = false;  // shrink path: frames leave the guest
  bool busy_ = false;
  bool auto_running_ = false;

  hv::CpuAccounting cpu_;
  uint64_t installs_ = 0;
  uint64_t soft_reclaims_ = 0;
};

}  // namespace hyperalloc::core
