#include "src/core/hyperalloc_generic.h"

#include <algorithm>

#include "src/base/check.h"

namespace hyperalloc::core {

GenericHyperAllocMonitor::GenericHyperAllocMonitor(
    guest::GuestVm* vm, const GenericHyperAllocConfig& config)
    : vm_(vm), config_(config), sim_(vm->simulation()),
      aux_(HugesForFrames(vm->total_frames())),
      states_(HugesForFrames(vm->total_frames())) {
  HA_CHECK(vm != nullptr);
  HA_CHECK(vm->config().allocator == guest::AllocatorKind::kBuddy);
  // Boot: nothing is populated, so every frame is soft-reclaimed.
  for (HugeId h = 0; h < aux_.size(); ++h) {
    aux_.SetEvicted(h);
    states_.Set(h, ReclaimState::kSoft);
  }
  vm->AttachAuxBridge(&aux_, [this](HugeId huge) { Install(huge); });
}

uint64_t GenericHyperAllocMonitor::limit_bytes() const {
  return vm_->config().memory_bytes - hard_held_.size() * kHugeSize;
}

void GenericHyperAllocMonitor::Install(HugeId huge) {
  if (suppress_install_) {
    // The monitor itself is allocating the frame out of the guest
    // (balloon-style hard reclaim): no backing memory is needed.
    aux_.ClearEvicted(huge);
    return;
  }
  if (states_.Get(huge) == ReclaimState::kInstalled) {
    aux_.ClearEvicted(huge);  // stale hint (already installed)
    return;
  }
  const sim::Time t0 = sim_->now();
  sim_->AdvanceClock(vm_->costs().install_hypercall_2m_ns);
  cpu_.host_user_ns += vm_->costs().install_hypercall_2m_ns;
  HA_CHECK(vm_->PopulateFrames(HugeToFrame(huge), kFramesPerHuge));
  uint64_t sys_ns = kFramesPerHuge * vm_->costs().populate_4k_ns;
  if (vm_->config().vfio) {
    vm_->iommu()->Pin(huge);
    sys_ns += vm_->costs().iommu_map_2m_ns;
  }
  sim_->AdvanceClock(sys_ns);
  cpu_.host_sys_ns += sys_ns;
  vm_->sink().OnBandwidth(t0, sim_->now(),
                          static_cast<double>(kHugeSize) /
                              static_cast<double>(sim_->now() - t0));
  states_.Set(huge, ReclaimState::kInstalled);
  aux_.ClearEvicted(huge);
  ++installs_;
}

void GenericHyperAllocMonitor::UnmapBatch(
    const std::vector<HugeId>& huge_frames) {
  if (huge_frames.empty()) {
    return;
  }
  std::vector<HugeId> sorted = huge_frames;
  std::sort(sorted.begin(), sorted.end());
  const sim::Time t0 = sim_->now();
  uint64_t sys_ns = 0;
  uint64_t shootdown_ns = 0;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i + 1;
    while (j < sorted.size() && sorted[j] == sorted[j - 1] + 1) {
      ++j;
    }
    uint64_t mapped = 0;
    for (size_t k = i; k < j; ++k) {
      if (vm_->ept().CountMapped(HugeToFrame(sorted[k]), kFramesPerHuge) >
          0) {
        ++mapped;
        sys_ns += vm_->costs().madvise_per_2m_ns;
        shootdown_ns += vm_->costs().shootdown_allcpu_2m_ns;
        vm_->ept().Unmap(HugeToFrame(sorted[k]), kFramesPerHuge);
      }
    }
    if (mapped > 0) {
      sys_ns +=
          vm_->costs().madvise_syscall_ns + vm_->costs().tlb_shootdown_ns;
    }
    if (vm_->config().vfio) {
      // One ranged IOTLB invalidation per contiguous run (see
      // HyperAllocMonitor::UnmapBatch).
      const uint64_t unpinned =
          vm_->iommu()->UnpinRange(sorted[i], j - i);
      if (unpinned > 0) {
        sys_ns += unpinned * vm_->costs().iommu_unmap_2m_ns +
                  vm_->costs().iotlb_flush_ns;
      }
    }
    i = j;
  }
  sim_->AdvanceClock(sys_ns);
  cpu_.host_sys_ns += sys_ns;
  const sim::Time t1 = sim_->now();
  if (shootdown_ns > 0 && t1 > t0) {
    vm_->sink().OnAllCpusSteal(t0, t1,
                               static_cast<double>(shootdown_ns) /
                                   static_cast<double>(t1 - t0));
  }
}

uint64_t GenericHyperAllocMonitor::AutoReclaimPass() {
  // Scan R plus the auxiliary A bits: 2 + 2 bits per huge frame.
  const uint64_t lines = (states_.ByteSize() + aux_.ByteSize() + 63) / 64;
  sim_->AdvanceClock(lines * vm_->costs().scan_cache_line_ns);
  cpu_.host_user_ns += lines * vm_->costs().scan_cache_line_ns;

  std::vector<HugeId> batch;
  for (HugeId h = 0; h < aux_.size(); ++h) {
    if (states_.Get(h) != ReclaimState::kInstalled) {
      continue;
    }
    // One CAS checks A and sets E atomically: a racing guest allocation
    // either loses (and installs) or wins (and we skip the frame).
    if (!aux_.TryReclaim(h, /*hard=*/false)) {
      continue;
    }
    sim_->AdvanceClock(vm_->costs().ha_reclaim_state_2m_ns);
    cpu_.host_user_ns += vm_->costs().ha_reclaim_state_2m_ns;
    states_.Set(h, ReclaimState::kSoft);
    batch.push_back(h);
  }
  UnmapBatch(batch);
  soft_reclaims_ += batch.size();
  return batch.size();
}

void GenericHyperAllocMonitor::Request(const hv::ResizeRequest& request) {
  HA_CHECK(!busy_);
  busy_ = true;
  HA_CHECK(request.target_bytes <= vm_->config().memory_bytes);
  const uint64_t target_hard =
      (vm_->config().memory_bytes - request.target_bytes) / kHugeSize;
  auto finish = [this, done = request.done] {
    busy_ = false;
    if (done) {
      done();
    }
  };
  if (target_hard > hard_held_.size()) {
    ShrinkSlice(target_hard, std::move(finish));
  } else {
    GrowSlice(target_hard, std::move(finish));
  }
}

void GenericHyperAllocMonitor::ShrinkSlice(uint64_t target_huge,
                                           std::function<void()> done) {
  // Guest-mediated hard reclamation (the generalization's weak spot):
  // the monitor cannot mark frames allocated in the private buddy state,
  // so it allocates them *through* the guest, balloon-style, then unmaps
  // with aggregated madvise calls.
  std::vector<HugeId> batch;
  suppress_install_ = true;
  while (hard_held_.size() < target_huge &&
         batch.size() < config_.hugepages_per_slice) {
    const Result<FrameId> r = vm_->Alloc(kHugeOrder, AllocType::kMovable,
                                         0, /*allow_oom_notify=*/false);
    if (!r.ok()) {
      break;  // nothing left to take at huge granularity
    }
    sim_->AdvanceClock(vm_->costs().guest_alloc_2m_ns +
                       vm_->costs().virtqueue_element_ns);
    cpu_.guest_ns +=
        vm_->costs().guest_alloc_2m_ns + vm_->costs().virtqueue_element_ns;
    hard_held_.push_back({*r});
    batch.push_back(FrameToHuge(*r));
    states_.Set(FrameToHuge(*r), ReclaimState::kHard);
    aux_.SetEvicted(FrameToHuge(*r));  // E mirrors !M (Fig. 2)
  }
  suppress_install_ = false;
  if (!batch.empty()) {
    sim_->AdvanceClock(vm_->costs().hypercall_ns);
    cpu_.host_user_ns += vm_->costs().hypercall_ns;
    UnmapBatch(batch);
  }
  if (hard_held_.size() >= target_huge || batch.empty()) {
    done();
    return;
  }
  sim_->After(0, [this, target_huge, done = std::move(done)]() mutable {
    ShrinkSlice(target_huge, std::move(done));
  });
}

void GenericHyperAllocMonitor::GrowSlice(uint64_t target_huge,
                                         std::function<void()> done) {
  unsigned returned = 0;
  while (hard_held_.size() > target_huge &&
         returned < config_.hugepages_per_slice) {
    const HardHeld held = hard_held_.back();
    hard_held_.pop_back();
    const HugeId huge = FrameToHuge(held.frame);
    // Returning keeps the frame evicted: the guest's next use installs.
    states_.Set(huge, ReclaimState::kSoft);
    aux_.SetEvicted(huge);
    sim_->AdvanceClock(vm_->costs().ha_return_state_2m_ns +
                       vm_->costs().guest_free_2m_ns);
    cpu_.host_user_ns += vm_->costs().ha_return_state_2m_ns;
    cpu_.guest_ns += vm_->costs().guest_free_2m_ns;
    vm_->Free(held.frame, kHugeOrder, 0);
    ++returned;
  }
  if (hard_held_.size() <= target_huge || returned == 0) {
    done();
    return;
  }
  sim_->After(0, [this, target_huge, done = std::move(done)]() mutable {
    GrowSlice(target_huge, std::move(done));
  });
}

void GenericHyperAllocMonitor::StartAuto() {
  if (auto_running_) {
    return;
  }
  auto_running_ = true;
  sim_->After(config_.auto_period, [this] { AutoTick(); });
}

void GenericHyperAllocMonitor::StopAuto() { auto_running_ = false; }

void GenericHyperAllocMonitor::AutoTick() {
  if (!auto_running_) {
    return;
  }
  AutoReclaimPass();
  sim_->After(config_.auto_period, [this] { AutoTick(); });
}

}  // namespace hyperalloc::core
