// The monitor's authoritative per-huge-frame reclamation state R (paper
// §3.2): Installed / Soft-reclaimed / Hard-reclaimed. Host-private (the
// guest never sees it; the evicted hint E is its one-way shadow).
//
// Packed 2 bits per frame into 64-bit words, exactly as assumed by the
// paper's scan-cost analysis (§3.3): together with the 16-bit guest area
// entries, scanning 1 GiB of guest memory touches
// 2*512/(8*64) + 16*512/(8*64) = 18 consecutive cache lines.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"
#include "src/trace/trace.h"

namespace hyperalloc::core {

enum class ReclaimState : uint8_t {
  kInstalled = 0,    // I: backed by host memory (M=1)
  kSoft = 1,         // S: reclaimed, repopulated on guest install
  kHard = 2,         // H: reclaimed, not available to the guest
  kQuarantined = 3,  // Q: poisoned by an unrecoverable fault (absorbing)
};

// Legal edges of the paper's Fig. 2 state machine (self-loops are no-op
// re-stores and always fine): I->S (soft/auto reclaim), I->H (direct hard
// reclaim), S->I (install), S->H (reclaim untouched), H->S (return).
// H->I is not an edge: hard-reclaimed memory is outside the guest's hard
// limit and must be returned (H->S) before it can be installed.
//
// Fault extension (DESIGN.md §4.9): any state may transition to Q when a
// permanent fault (or retry exhaustion on an unpin) leaves the frame's
// host-side mapping in doubt; Q is absorbing — a quarantined frame is
// withheld from the guest and from every future reclaim pass, so no
// Q->{I,S,H} edge exists. The model-checking oracle
// (src/check/invariants.h) and a debug check in Set() enforce all of
// this.
constexpr bool IsLegalTransition(ReclaimState from, ReclaimState to) {
  if (from == to) {
    return true;
  }
  if (from == ReclaimState::kQuarantined) {
    return false;  // absorbing
  }
  if (to == ReclaimState::kQuarantined) {
    return true;  // any state may be poisoned
  }
  return !(from == ReclaimState::kHard && to == ReclaimState::kInstalled);
}

class ReclaimStateArray {
 public:
  explicit ReclaimStateArray(uint64_t num_huge)
      : num_huge_(num_huge), words_((num_huge * 2 + 63) / 64, 0) {}

  uint64_t size() const { return num_huge_; }

  ReclaimState Get(HugeId huge) const {
    HA_DCHECK(huge < num_huge_);
    const uint64_t word = words_[huge / 32];
    return static_cast<ReclaimState>((word >> ((huge % 32) * 2)) & 0x3);
  }

  void Set(HugeId huge, ReclaimState state) {
    HA_DCHECK(huge < num_huge_);
    HA_DCHECK(IsLegalTransition(Get(huge), state));
#if HYPERALLOC_TRACE
    const ReclaimState old = Get(huge);
    if (old != state) {
      CountTransition(old, state, huge);
    }
#endif
    uint64_t& word = words_[huge / 32];
    const unsigned shift = (huge % 32) * 2;
    word = (word & ~(0x3ull << shift)) |
           (static_cast<uint64_t>(state) << shift);
  }

  uint64_t CountState(ReclaimState state) const {
    uint64_t count = 0;
    for (HugeId h = 0; h < num_huge_; ++h) {
      if (Get(h) == state) {
        ++count;
      }
    }
    return count;
  }

  // Bytes of state scanned by one pass (for the §3.3 cache-load claim).
  uint64_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

  const std::vector<uint64_t>& words() const { return words_; }

 private:
#if HYPERALLOC_TRACE
  // Counts the R-array transition (the paper's I/S/H state machine edges,
  // Fig. 2) and emits a trace event. Counter lookups are cached once per
  // process; arg1 packs (from << 4) | to for the exporters.
  static void CountTransition(ReclaimState from, ReclaimState to,
                              HugeId huge) {
    static const std::array<trace::Counter*, 16> counters = [] {
      constexpr const char* kNames[16] = {
          nullptr,                           // I -> I
          "state.installed_to_soft",         // I -> S (auto/soft reclaim)
          "state.installed_to_hard",         // I -> H (direct hard reclaim)
          "state.installed_to_quarantined",  // I -> Q (poisoned)
          "state.soft_to_installed",         // S -> I (install)
          nullptr,                           // S -> S
          "state.soft_to_hard",              // S -> H (reclaim untouched)
          "state.soft_to_quarantined",       // S -> Q (poisoned)
          "state.hard_to_installed",         // H -> I
          "state.hard_to_soft",              // H -> S (return)
          nullptr,                           // H -> H
          "state.hard_to_quarantined",       // H -> Q (poisoned)
          nullptr,                           // Q -> I (illegal)
          nullptr,                           // Q -> S (illegal)
          nullptr,                           // Q -> H (illegal)
          nullptr,                           // Q -> Q
      };
      std::array<trace::Counter*, 16> out{};
      for (unsigned i = 0; i < 16; ++i) {
        out[i] = kNames[i] == nullptr
                     ? nullptr
                     : &trace::CounterRegistry::Global().FindOrCreate(
                           kNames[i]);
      }
      return out;
    }();
    trace::Counter* counter =
        counters[static_cast<unsigned>(from) * 4 + static_cast<unsigned>(to)];
    if (counter != nullptr) {
      counter->Add(1);
    }
    HA_TRACE_EVENT(trace::Category::kState, trace::Op::kTransition, huge,
                   (static_cast<uint64_t>(from) << 4) |
                       static_cast<uint64_t>(to));
  }
#endif

  uint64_t num_huge_;
  std::vector<uint64_t> words_;
};

}  // namespace hyperalloc::core
