#include "src/metrics/timeseries.h"

#include <algorithm>
#include <cstdio>

#include "src/base/check.h"

namespace hyperalloc::metrics {

double TimeSeries::Max() const {
  if (points_.empty()) {
    return 0.0;
  }
  double max = points_[0].value;
  for (const Point& p : points_) {
    max = std::max(max, p.value);
  }
  return max;
}

double TimeSeries::Min() const {
  if (points_.empty()) {
    return 0.0;
  }
  double min = points_[0].value;
  for (const Point& p : points_) {
    min = std::min(min, p.value);
  }
  return min;
}

double TimeSeries::Last() const {
  return points_.empty() ? 0.0 : points_.back().value;
}

double TimeSeries::IntegralPerMinute() const {
  if (points_.size() < 2) {
    return 0.0;
  }
  double integral_ns = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    const double dt = static_cast<double>(points_[i].at - points_[i - 1].at);
    integral_ns += 0.5 * (points_[i].value + points_[i - 1].value) * dt;
  }
  return integral_ns / static_cast<double>(sim::kMin);
}

double TimeSeries::Mean() const {
  if (points_.empty()) {
    return 0.0;
  }
  const double span =
      static_cast<double>(points_.back().at - points_.front().at);
  if (points_.size() < 2 || span <= 0.0) {
    // A single sample (or samples at one instant) has no time extent; the
    // last value is the best estimate of the series' average.
    return points_.back().value;
  }
  return IntegralPerMinute() * static_cast<double>(sim::kMin) / span;
}

void TimeSeries::WriteCsv(const std::string& path,
                          const std::string& value_name) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  HA_CHECK(file != nullptr);
  std::fprintf(file, "time_s,%s\n", value_name.c_str());
  for (const Point& p : points_) {
    std::fprintf(file, "%.3f,%.6f\n",
                 static_cast<double>(p.at) / static_cast<double>(sim::kSec),
                 p.value);
  }
  std::fclose(file);
}

TimeSeries MergeSum(const std::vector<TimeSeries>& series, sim::Time period) {
  TimeSeries merged;
  size_t longest = 0;
  for (const TimeSeries& s : series) {
    longest = std::max(longest, s.points().size());
  }
  for (size_t k = 0; k < longest; ++k) {
    double sum = 0.0;
    for (const TimeSeries& s : series) {
      if (s.empty()) {
        continue;
      }
      sum += k < s.points().size() ? s.points()[k].value
                                   : s.points().back().value;
    }
    merged.Sample(static_cast<sim::Time>(k) * period, sum);
  }
  return merged;
}

Sampler::Sampler(sim::Simulation* sim, sim::Time interval, TimeSeries* series,
                 std::function<double()> probe)
    : sim_(sim), interval_(interval), series_(series),
      probe_(std::move(probe)) {
  HA_CHECK(sim != nullptr && series != nullptr && interval > 0);
}

void Sampler::Start() {
  running_ = true;
  ++epoch_;
  series_->Sample(sim_->now(), probe_());
  sim_->After(interval_, [this, e = epoch_] { Tick(e); });
}

void Sampler::Tick(uint64_t epoch) {
  if (!running_ || epoch != epoch_) {
    return;  // stopped, or superseded by a newer Start
  }
  series_->Sample(sim_->now(), probe_());
  sim_->After(interval_, [this, epoch] { Tick(epoch); });
}

}  // namespace hyperalloc::metrics
