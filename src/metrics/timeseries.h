// Time-series collection and footprint metrics.
//
// The paper's elasticity experiments (Figs. 7–11) sample the QEMU
// process's resident-set size at 1 Hz and integrate it into a GiB·min
// footprint ("similar metrics are also used by cloud providers (e.g., AWS
// Lambda) to price memory usage").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulation.h"

namespace hyperalloc::metrics {

class TimeSeries {
 public:
  struct Point {
    sim::Time at;
    double value;
  };

  void Sample(sim::Time at, double value) { points_.push_back({at, value}); }

  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  double Max() const;
  double Min() const;
  double Last() const;

  // Trapezoidal integral of value over time, in value·minutes.
  double IntegralPerMinute() const;

  // Average value over the sampled span.
  double Mean() const;

  // Writes "time_s,value" lines (plus header) to `path`.
  void WriteCsv(const std::string& path, const std::string& value_name) const;

 private:
  std::vector<Point> points_;
};

// Hierarchical sum-merge: sums sample index k across all series, stamping
// the merged point at k * period. Series that ended keep contributing
// their last value (an idle VM still holds its memory). Grouping is
// associative for the byte-derived GiB values the fleet samples (n·2⁻³⁰
// with n < 2⁵³ is exact), so merging per-shard rollups equals merging the
// raw per-VM series directly — tests/telemetry_test.cc asserts this.
TimeSeries MergeSum(const std::vector<TimeSeries>& series, sim::Time period);

// Periodically samples `probe` into `series` until Stop() (or forever).
class Sampler {
 public:
  Sampler(sim::Simulation* sim, sim::Time interval, TimeSeries* series,
          std::function<double()> probe);

  void Start();
  void Stop() {
    running_ = false;
    ++epoch_;  // invalidates any Tick already scheduled on the sim queue
  }

 private:
  void Tick(uint64_t epoch);

  sim::Simulation* sim_;
  sim::Time interval_;
  TimeSeries* series_;
  std::function<double()> probe_;
  bool running_ = false;
  // Bumped by every Start/Stop. A scheduled Tick carries the epoch it was
  // created under and ignores itself if the epoch moved on — otherwise a
  // Start after a Stop would revive the old pending Tick chain and sample
  // at a doubled rate.
  uint64_t epoch_ = 0;
};

}  // namespace hyperalloc::metrics
