// virtio-mem: paravirtualized memory hot(un)plug (Hildenbrand & Schulz
// [23]).
//
// The hotpluggable memory lives in the guest's Movable zone, managed as
// 2 MiB blocks. Plugging onlines a block (hypercall per block — "virtio-
// mem makes hypercalls for every plugged 2 MiB block", §5.3); unplugging
// offlines blocks in decreasing address order, migrating any used
// subblocks first ("requiring the guest OS to migrate used subblocks to
// other memory locations", §5.4).
//
// DMA safety comes from pre-population: with a VFIO device attached,
// every plugged block is fully populated and pinned up front, and every
// unplug must also unmap the IOMMU and flush the IOTLB — even for memory
// that was never touched (§5.3).
//
// virtio-mem itself has no automatic reclamation; the paper *simulates*
// one by tracking the guest's free huge pages and (un)plugging at 1 GiB
// granularity every second (§5.5) — implemented here the same way.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/fault/fault.h"
#include "src/guest/guest_vm.h"
#include "src/hv/deflator.h"
#include "src/sim/simulation.h"
#include "src/trace/span.h"

namespace hyperalloc::vmem {

struct VmemConfig {
  unsigned driver_cpu = 0;
  // Blocks processed per event-loop slice.
  unsigned blocks_per_slice = 16;
  // Simulated auto mode (hand-tuned like the paper's, §5.5).
  sim::Time auto_period = 1 * sim::kSec;
  uint64_t auto_granularity = 1 * kGiB;
  // Plug when total free memory falls below this ...
  uint64_t auto_low_bytes = 768 * kMiB;
  // ... unplug (1 GiB) when huge-page-backed free memory exceeds this.
  uint64_t auto_high_bytes = 1792 * kMiB;
  // Fault recovery (DESIGN.md §4.9): bounded retry with virtual-time
  // exponential backoff for the per-block hypercalls, IOMMU ops and
  // unmaps, plus the optional per-request deadline.
  fault::RetryPolicy retry;
};

class VirtioMem : public hv::Deflator {
 public:
  // The guest must have a Movable zone (config().movable_bytes > 0) using
  // the buddy allocator. All hotpluggable memory starts plugged.
  VirtioMem(guest::GuestVm* vm, const VmemConfig& config);

  hv::DeflatorCaps caps() const override {
    return {.name = "virtio-mem",
            .dma_safe = true,
            .supports_auto = false,  // simulated only
            .granularity_bytes = kHugeSize};
  }

  void Request(const hv::ResizeRequest& request) override;
  uint64_t limit_bytes() const override;
  bool busy() const override { return busy_; }

  // The paper's simulated auto-resizer (not part of upstream virtio-mem).
  void StartAuto() override;
  void StopAuto() override;

  const hv::CpuAccounting& cpu() const override { return cpu_; }

  uint64_t plugged_blocks() const { return plugged_blocks_; }
  uint64_t unpluggable_failures() const { return unpluggable_failures_; }

  // Fault-recovery statistics (DESIGN.md §4.9).
  uint64_t faults_seen() const { return faults_; }
  uint64_t fault_retries() const { return fault_retries_; }
  // Blocks unplugged whose EPT unmap never succeeded: the guest gave the
  // block up, but its host backing stays allocated until it is replugged.
  uint64_t leaked_backing_blocks() const { return leaked_backing_blocks_; }

 private:
  guest::Zone& movable_zone();

  void PlugSlice(uint64_t target_blocks, std::function<void()> done);
  void UnplugSlice(uint64_t target_blocks, std::function<void()> done);
  bool UnplugOneBlock();
  // Returns false when the plug aborted on an unrecoverable fault — the
  // block stays unplugged and the slice finishes partial.
  bool PlugOneBlock(uint64_t block);
  void AutoTick();

  // Polls a hypercall fault site with bounded retries; returns false on
  // retry exhaustion or a permanent fault.
  bool PollSite(fault::Site site, uint64_t arg);
  void ChargeBackoff(unsigned retry);
  void NoteFault();
  bool RequestTimedOut() const;

  FrameId BlockFirstFrame(uint64_t block) const;

  guest::GuestVm* vm_;
  VmemConfig config_;
  sim::Simulation* sim_;
  uint64_t num_blocks_;
  std::vector<bool> plugged_;
  uint64_t plugged_blocks_ = 0;
  bool busy_ = false;
  bool auto_running_ = false;

  hv::CpuAccounting cpu_;
  trace::RequestSpan request_span_;
  uint64_t unpluggable_failures_ = 0;
  sim::Time request_deadline_ = 0;  // 0 = no deadline
  uint64_t faults_ = 0;
  uint64_t fault_retries_ = 0;
  uint64_t leaked_backing_blocks_ = 0;
};

}  // namespace hyperalloc::vmem
