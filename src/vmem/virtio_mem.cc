#include "src/vmem/virtio_mem.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/hv/cost_model.h"
#include "src/trace/span.h"

namespace hyperalloc::vmem {

VirtioMem::VirtioMem(guest::GuestVm* vm, const VmemConfig& config)
    : vm_(vm), config_(config), sim_(vm->simulation()) {
  HA_CHECK(vm != nullptr);
  guest::Zone& zone = movable_zone();
  HA_CHECK(zone.buddy != nullptr);
  num_blocks_ = zone.frames / kFramesPerHuge;
  plugged_.assign(num_blocks_, true);  // boot with everything plugged
  plugged_blocks_ = num_blocks_;

  if (vm_->config().vfio) {
    // DMA safety by pre-population: all guest memory (static zones and
    // plugged blocks) is populated and pinned at boot. No time is charged
    // — this is part of VM start-up, outside every benchmark window.
    // Fault injectors must be armed AFTER construction: boot-time
    // pre-population is not a recoverable boundary.
    const uint64_t mapped = vm_->ept().Map(0, vm_->total_frames());
    HA_CHECK(mapped != hv::Ept::kNoHostMemory &&
             mapped != hv::Ept::kFaultInjected);
    vm_->iommu()->PinRange(0, HugesForFrames(vm_->total_frames()));
  }
}

void VirtioMem::ChargeBackoff(unsigned retry) {
  const uint64_t ns = config_.retry.BackoffNs(retry);
  ++fault_retries_;
  if (trace::Span* span = trace::Span::Current()) {
    span->AddRetry();
  }
  if (busy_) {
    ++outcome_.retries;
    request_span_.AddRetry();
  }
  HA_COUNT("vmem.fault_retry");
  HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kRetry, retry, ns);
  cpu_.host_user_ns += hv::ChargeTraced(sim_, "vmem.fault_backoff_ns", ns);
}

void VirtioMem::NoteFault() {
  ++faults_;
  if (trace::Span* span = trace::Span::Current()) {
    span->AddFault();
  }
  if (busy_) {
    ++outcome_.faults;
    request_span_.AddFault();
  }
  HA_COUNT("vmem.fault");
}

bool VirtioMem::RequestTimedOut() const {
  return request_deadline_ != 0 && sim_->now() >= request_deadline_;
}

bool VirtioMem::PollSite(fault::Site site, uint64_t arg) {
  fault::Injector* injector = vm_->fault_injector();
  const unsigned max_attempts = std::max(1u, config_.retry.max_attempts);
  for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ChargeBackoff(attempt - 1);
    }
    const auto kind = fault::Poll(injector, site);
    if (!kind.has_value()) {
      return true;
    }
    NoteFault();
    HA_COUNT("fault.vmem_hypercall");
    HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kInject, arg,
                   static_cast<uint64_t>(site));
    if (*kind == fault::Kind::kPermanent) {
      return false;
    }
  }
  return false;
}

guest::Zone& VirtioMem::movable_zone() {
  for (guest::Zone& zone : vm_->zones()) {
    if (zone.kind == guest::ZoneKind::kMovable) {
      return zone;
    }
  }
  HA_CHECK(false && "virtio-mem requires a Movable zone");
  __builtin_unreachable();
}

FrameId VirtioMem::BlockFirstFrame(uint64_t block) const {
  return const_cast<VirtioMem*>(this)->movable_zone().start +
         block * kFramesPerHuge;
}

uint64_t VirtioMem::limit_bytes() const {
  const uint64_t unplugged = num_blocks_ - plugged_blocks_;
  return vm_->config().memory_bytes - unplugged * kHugeSize;
}

void VirtioMem::Request(const hv::ResizeRequest& request) {
  HA_CHECK(!busy_);
  busy_ = true;
  const uint64_t static_bytes =
      vm_->config().memory_bytes - num_blocks_ * kHugeSize;
  const uint64_t want_plugged_bytes =
      request.target_bytes > static_bytes
          ? request.target_bytes - static_bytes
          : 0;
  const uint64_t target_blocks =
      std::min<uint64_t>(num_blocks_, want_plugged_bytes / kHugeSize);
  // Host-side naming: unplugging guest memory inflates the host's pool.
  const bool inflate = target_blocks < plugged_blocks_;
  outcome_ = hv::ResizeOutcome{};
  outcome_.target_bytes = request.target_bytes;
  request_deadline_ =
      request.deadline_ns > 0 ? sim_->now() + request.deadline_ns
      : config_.retry.request_timeout_ns > 0
          ? sim_->now() + config_.retry.request_timeout_ns
          : 0;
  request_span_.Start(inflate ? "request.inflate" : "request.deflate");
  request_span_.AddFrames((inflate ? plugged_blocks_ - target_blocks
                                   : target_blocks - plugged_blocks_) *
                          kFramesPerHuge);
  auto finish = [this, done = request.done, on_outcome = request.on_outcome,
                 inflate, target = request.target_bytes] {
    outcome_.achieved_bytes = limit_bytes();
    outcome_.complete = inflate ? outcome_.achieved_bytes <= target
                                : outcome_.achieved_bytes >= target;
    request_span_.Finish();
    busy_ = false;
    request_deadline_ = 0;
    if (on_outcome) {
      on_outcome(outcome_);
    }
    if (done) {
      done();
    }
  };
  if (target_blocks < plugged_blocks_) {
    UnplugSlice(target_blocks, std::move(finish));
  } else {
    PlugSlice(target_blocks, std::move(finish));
  }
}

bool VirtioMem::UnplugOneBlock() {
  // Decreasing address order (§5.4).
  uint64_t block = num_blocks_;
  for (uint64_t b = num_blocks_; b-- > 0;) {
    if (plugged_[b]) {
      block = b;
      break;
    }
  }
  HA_CHECK(block != num_blocks_);

  guest::Zone& zone = movable_zone();
  const FrameId global_first = BlockFirstFrame(block);
  const FrameId local_first = global_first - zone.start;

  // Offline the block: isolate its free frames, migrate the used ones.
  // Migration and purging advance the clock internally, so the guest span
  // is charged the measured elapsed time rather than via hv::Charge.
  const sim::Time guest_start = sim_->now();
  {
    trace::Span offline(trace::Layer::kGuest, "vmem.offline_block");
    vm_->PurgeAllocatorCaches();  // PCP pages cannot be isolated
    zone.buddy->ClaimFreeInRange(local_first, kFramesPerHuge);
    if (!vm_->MigrateRange(global_first, kFramesPerHuge,
                           config_.driver_cpu)) {
      // Migration failed (no free destination or pinned kernel memory):
      // the block stays online; release everything we isolated.
      vm_->ReleaseIsolatedRange(global_first, kFramesPerHuge);
      ++unpluggable_failures_;
      cpu_.guest_ns += sim_->now() - guest_start;
      offline.AddCharge(sim_->now() - guest_start);
      return false;
    }
    // Hot-unplug bookkeeping (memmap, notifier chains, resource tree).
    sim_->AdvanceClock(vm_->costs().vmem_unplug_block_ns);
    cpu_.guest_ns += sim_->now() - guest_start;
    offline.AddCharge(sim_->now() - guest_start);
    offline.AddFrames(kFramesPerHuge);
    offline.AddHugeFrames(kFramesPerHuge);
  }

  // Notify the device (one request per block) and discard host memory.
  // An unrecoverable hypercall fault rolls the offline back (the block
  // simply stays plugged) and stops the slice.
  if (!PollSite(fault::Site::kVmemUnplug, block)) {
    vm_->ReleaseIsolatedRange(global_first, kFramesPerHuge);
    HA_COUNT("vmem.fault_rollback");
    HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kRollback, block, 0);
    if (busy_) {
      ++outcome_.rollbacks;
    }
    return false;
  }
  {
    trace::Span hypercall(trace::Layer::kBackend, "vmem.unplug_hypercall");
    cpu_.host_user_ns += hv::Charge(sim_, vm_->costs().hypercall_ns);
  }
  if (vm_->config().vfio) {
    // VFIO: unpin + IOTLB flush, even for untouched memory (§5.3). The
    // unpin comes BEFORE the unmap so a failed unpin can still roll the
    // whole block back intact (pinned, mapped, online) — the reverse
    // order would strand an unmapped-but-pinned block, which is exactly
    // the DMA-unsafe state the install protocol exists to prevent.
    bool unpinned = false;
    const unsigned max_attempts = std::max(1u, config_.retry.max_attempts);
    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
      if (attempt > 0) {
        ChargeBackoff(attempt - 1);
      }
      const uint64_t injected = vm_->iommu()->injected_faults();
      if (vm_->iommu()->Unpin(FrameToHuge(global_first))) {
        unpinned = true;
        break;
      }
      if (vm_->iommu()->injected_faults() == injected) {
        unpinned = true;  // was not pinned — nothing to undo
        break;
      }
      NoteFault();
      if (vm_->iommu()->last_injected_kind() == fault::Kind::kPermanent) {
        break;
      }
    }
    if (!unpinned) {
      vm_->ReleaseIsolatedRange(global_first, kFramesPerHuge);
      HA_COUNT("vmem.fault_rollback");
      HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kRollback, block,
                     1);
      if (busy_) {
        ++outcome_.rollbacks;
      }
      return false;
    }
    trace::Span unpin(trace::Layer::kIommu, "iommu.unpin_range");
    unpin.AddFrames(kFramesPerHuge);
    unpin.AddHugeFrames(kFramesPerHuge);
    cpu_.host_sys_ns += hv::Charge(
        sim_, vm_->costs().iommu_unmap_2m_ns + vm_->costs().iotlb_flush_ns);
  }
  const uint64_t mapped = vm_->ept().CountMapped(global_first,
                                                 kFramesPerHuge);
  if (mapped > 0) {
    const uint64_t ept_ns = vm_->costs().madvise_syscall_ns +
                            vm_->costs().tlb_shootdown_ns +
                            vm_->costs().madvise_per_2m_ns;
    bool unmapped = false;
    const unsigned max_attempts = std::max(1u, config_.retry.max_attempts);
    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
      if (attempt > 0) {
        ChargeBackoff(attempt - 1);
      }
      if (vm_->ept().Unmap(global_first, kFramesPerHuge) !=
          hv::Ept::kFaultInjected) {
        unmapped = true;
        break;
      }
      NoteFault();
      if (vm_->ept().last_injected_kind() == fault::Kind::kPermanent) {
        break;
      }
    }
    if (unmapped) {
      const sim::Time t = sim_->now();
      vm_->sink().OnAllCpusSteal(
          t, t + ept_ns,
          static_cast<double>(vm_->costs().shootdown_allcpu_2m_ns) /
              static_cast<double>(ept_ns));
      trace::Span unmap(trace::Layer::kEpt, "ept.unmap_run");
      unmap.AddFrames(kFramesPerHuge);
      unmap.AddHugeFrames(kFramesPerHuge);
      cpu_.host_sys_ns += hv::Charge(sim_, ept_ns);
    } else {
      // The guest already gave the block up and (under VFIO) the pin is
      // gone, so finishing the unplug stays legal — but the host backing
      // could not be discarded. It stays allocated ("leaked") until the
      // block is replugged, which re-uses the mapping as-is.
      ++leaked_backing_blocks_;
      HA_COUNT("vmem.leaked_backing");
      HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kRollback, block,
                     2);
    }
  }

  plugged_[block] = false;
  --plugged_blocks_;
  return true;
}

void VirtioMem::UnplugSlice(uint64_t target_blocks,
                            std::function<void()> done) {
  trace::ScopedContext request_context(request_span_.context());
  trace::Span slice(trace::Layer::kBackend, "vmem.unplug_slice");
  if (RequestTimedOut()) {
    outcome_.timed_out = true;
    HA_COUNT("vmem.request_timeout");
    HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kTimeout,
                   target_blocks, plugged_blocks_);
    done();  // partial unplug: already-unplugged blocks stay unplugged
    return;
  }
  const sim::Time t0 = sim_->now();
  for (unsigned i = 0;
       i < config_.blocks_per_slice && plugged_blocks_ > target_blocks;
       ++i) {
    if (!UnplugOneBlock()) {
      // Cannot evacuate further blocks right now: stop (partial success,
      // like the real driver's "requested size not reached").
      vm_->sink().OnCpuSteal(config_.driver_cpu, t0, sim_->now(), 1.0);
      done();
      return;
    }
  }
  vm_->sink().OnCpuSteal(config_.driver_cpu, t0, sim_->now(), 1.0);
  if (plugged_blocks_ <= target_blocks) {
    done();
    return;
  }
  sim_->After(0, [this, target_blocks, done = std::move(done)]() mutable {
    UnplugSlice(target_blocks, std::move(done));
  });
}

bool VirtioMem::PlugOneBlock(uint64_t block) {
  guest::Zone& zone = movable_zone();
  const FrameId global_first = BlockFirstFrame(block);
  const FrameId local_first = global_first - zone.start;

  // One request per plugged block. A failed hypercall aborts cleanly:
  // nothing was onlined yet, the block just stays unplugged.
  if (!PollSite(fault::Site::kVmemPlug, block)) {
    return false;
  }
  {
    trace::Span hypercall(trace::Layer::kBackend, "vmem.plug_hypercall");
    cpu_.host_user_ns += hv::Charge(sim_, vm_->costs().hypercall_ns);
  }
  if (vm_->config().vfio) {
    // Pre-populate and pin for DMA safety — the expensive part (§5.3:
    // "virtio-mem with VFIO is 21x slower ... because it has to
    // pre-populate the memory"). This runs BEFORE the block is onlined:
    // if populate or pin fails, the guest never sees the memory and the
    // plug aborts with no state to undo.
    const sim::Time t0 = sim_->now();
    const unsigned max_attempts = std::max(1u, config_.retry.max_attempts);
    bool populated = false;
    {
      trace::Span populate(trace::Layer::kEpt, "ept.populate");
      populate.AddFrames(kFramesPerHuge);
      populate.AddHugeFrames(kFramesPerHuge);
      for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
          ChargeBackoff(attempt - 1);
        }
        const uint64_t injected = vm_->ept().injected_faults();
        if (vm_->PopulateFrames(global_first, kFramesPerHuge)) {
          populated = true;
          break;
        }
        NoteFault();
        if (vm_->ept().injected_faults() > injected &&
            vm_->ept().last_injected_kind() == fault::Kind::kPermanent) {
          break;
        }
      }
      if (populated) {
        cpu_.host_sys_ns +=
            hv::Charge(sim_, kFramesPerHuge * vm_->costs().populate_4k_ns);
      }
    }
    if (!populated) {
      return false;
    }
    bool pinned = false;
    {
      trace::Span pin(trace::Layer::kIommu, "iommu.pin");
      pin.AddFrames(kFramesPerHuge);
      pin.AddHugeFrames(kFramesPerHuge);
      for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
          ChargeBackoff(attempt - 1);
        }
        vm_->iommu()->Pin(FrameToHuge(global_first));
        if (vm_->iommu()->IsPinned(FrameToHuge(global_first))) {
          pinned = true;
          break;
        }
        NoteFault();
        if (vm_->iommu()->last_injected_kind() == fault::Kind::kPermanent) {
          break;
        }
      }
      if (pinned) {
        cpu_.host_sys_ns += hv::Charge(sim_, vm_->costs().iommu_map_2m_ns);
      }
    }
    if (!pinned) {
      // Mapped but unpinned and never onlined: legal (the backing is
      // reused when the plug is retried), just not DMA-safe to expose —
      // so it is not exposed.
      return false;
    }
    if (sim_->now() > t0) {
      vm_->sink().OnBandwidth(t0, sim_->now(),
                              static_cast<double>(kHugeSize) /
                                  static_cast<double>(sim_->now() - t0));
    }
  }
  // Guest onlining (memmap init, buddy release) — only after the block
  // is fully DMA-safe.
  {
    trace::Span online(trace::Layer::kGuest, "vmem.online_block");
    online.AddFrames(kFramesPerHuge);
    online.AddHugeFrames(kFramesPerHuge);
    cpu_.guest_ns += hv::Charge(sim_, vm_->costs().vmem_plug_block_ns);
  }
  zone.buddy->ReleaseRange(local_first, kFramesPerHuge);

  plugged_[block] = true;
  ++plugged_blocks_;
  return true;
}

void VirtioMem::PlugSlice(uint64_t target_blocks,
                          std::function<void()> done) {
  trace::ScopedContext request_context(request_span_.context());
  trace::Span slice(trace::Layer::kBackend, "vmem.plug_slice");
  if (RequestTimedOut()) {
    outcome_.timed_out = true;
    HA_COUNT("vmem.request_timeout");
    HA_TRACE_EVENT(trace::Category::kFault, trace::Op::kTimeout,
                   target_blocks, plugged_blocks_);
    done();
    return;
  }
  const sim::Time t0 = sim_->now();
  unsigned plugged_now = 0;
  for (uint64_t b = 0; b < num_blocks_ && plugged_blocks_ < target_blocks &&
                       plugged_now < config_.blocks_per_slice;
       ++b) {
    if (!plugged_[b]) {
      if (!PlugOneBlock(b)) {
        // Unrecoverable fault: stop with a partial plug (the real
        // driver's "requested size not reached").
        vm_->sink().OnCpuSteal(config_.driver_cpu, t0, sim_->now(), 1.0);
        done();
        return;
      }
      ++plugged_now;
    }
  }
  vm_->sink().OnCpuSteal(config_.driver_cpu, t0, sim_->now(), 1.0);
  if (plugged_blocks_ >= target_blocks || plugged_now == 0) {
    done();
    return;
  }
  sim_->After(0, [this, target_blocks, done = std::move(done)]() mutable {
    PlugSlice(target_blocks, std::move(done));
  });
}

void VirtioMem::StartAuto() {
  if (auto_running_) {
    return;
  }
  auto_running_ = true;
  sim_->After(config_.auto_period, [this] { AutoTick(); });
}

void VirtioMem::StopAuto() { auto_running_ = false; }

void VirtioMem::AutoTick() {
  if (!auto_running_) {
    return;
  }
  if (!busy_) {
    const uint64_t free_bytes = vm_->FreeFrames() * kFrameSize;
    const uint64_t free_huge_bytes = vm_->FreeHugeFrames() * kHugeSize;
    if (free_bytes < config_.auto_low_bytes &&
        plugged_blocks_ < num_blocks_) {
      Request({.target_bytes =
                   std::min(limit_bytes() + config_.auto_granularity,
                            vm_->config().memory_bytes),
               .done = {}});
    } else if (free_huge_bytes >
               config_.auto_high_bytes + config_.auto_granularity) {
      Request({.target_bytes = limit_bytes() - config_.auto_granularity,
               .done = {}});
    }
  }
  sim_->After(config_.auto_period, [this] { AutoTick(); });
}

}  // namespace hyperalloc::vmem
