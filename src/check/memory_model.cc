#include "src/check/memory_model.h"

#include <sstream>

namespace hyperalloc::check::mm {

namespace {

const char* BaseName(const char* path) {
  if (path == nullptr) {
    return "<unknown>";
  }
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/' || *p == '\\') {
      base = p + 1;
    }
  }
  return base;
}

void Describe(std::ostringstream& out, const AccessSite& site) {
  out << (site.write ? "write" : "read") << " at " << BaseName(site.file)
      << ":" << site.line << " (thread " << site.thread << ", step "
      << site.step << ")";
}

}  // namespace

std::string VectorClock::ToString() const {
  std::ostringstream out;
  out << "[";
  unsigned last = 0;
  for (unsigned i = 0; i < kMaxThreads; ++i) {
    if (c[i] != 0) {
      last = i;
    }
  }
  for (unsigned i = 0; i <= last; ++i) {
    if (i != 0) {
      out << ",";
    }
    out << c[i];
  }
  out << "]";
  return out.str();
}

void ReportRace(const AccessSite& prior, const AccessSite& current) {
  std::ostringstream out;
  out << "data race: ";
  Describe(out, prior);
  out << " and ";
  Describe(out, current);
  out << " are unordered by happens-before — no release/acquire (or "
         "stronger) edge connects thread "
      << prior.thread << "'s access to thread " << current.thread
      << "'s. Missing edge: a release (or acq_rel/seq_cst) publisher "
         "after the first access that the second thread consumes with "
         "acquire before its access — or the field must become "
         "Atomic<T>. Replay: feed RunResult::failing_seed to ReplaySeed "
         "(random mode) or RunResult::trace to ReplayTrace (exhaustive).";
  throw CheckFailure(out.str());
}

}  // namespace hyperalloc::check::mm
