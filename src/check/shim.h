// Drop-in replacement for std::atomic used by model-check builds.
//
// Production code declares its shared state as `hyperalloc::Atomic<T>`
// (src/base/atomic.h), which aliases std::atomic<T> normally and this
// class when compiled with -DHYPERALLOC_MODEL_CHECK=1. Every operation
// first calls check::SchedulePoint(), so the model-check engine
// (src/check/scheduler.h) can transfer control between model threads at
// exactly the instruction granularity that matters for lock-free code:
// the shared-memory accesses.
//
// Because the engine runs exactly one model thread at a time, the
// underlying std::atomic operations are never concurrent — the shim
// explores *interleavings*, not hardware memory-model reorderings. That
// matches the code under test, which is lock-free via CAS loops rather
// than via fence subtleties; the TSan preset (scripts/check.sh) covers
// the ordering dimension on real hardware.
//
// Every operation takes mandatory explicit std::memory_order arguments —
// there are deliberately no defaulted-order overloads and no implicit
// conversion or operator=. Code that compiles against std::atomic with
// implicit seq_cst fails to compile here (and is also rejected by
// scripts/lint.sh).
//
// compare_exchange_weak is allowed to fail spuriously: the engine's
// random strategy occasionally forces a failure (drawn from the same
// seeded stream as the scheduling decisions, so replays stay exact).
// This catches code that wrongly assumes weak CAS only fails on value
// change.
#pragma once

#include <atomic>

#include "src/check/scheduler.h"

namespace hyperalloc::check {

template <typename T>
class Atomic {
 public:
  using value_type = T;

  Atomic() noexcept : v_{} {}
  constexpr Atomic(T desired) noexcept : v_(desired) {}  // NOLINT(google-explicit-constructor): mirrors std::atomic
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order order) const {
    SchedulePoint();
    return v_.load(order);
  }

  void store(T desired, std::memory_order order) {
    SchedulePoint();
    v_.store(desired, order);
  }

  T exchange(T desired, std::memory_order order) {
    SchedulePoint();
    return v_.exchange(desired, order);
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
    SchedulePoint();
    return v_.compare_exchange_strong(expected, desired, success, failure);
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order success,
                             std::memory_order failure) {
    SchedulePoint();
    if (SpuriousCasFailure()) {
      expected = v_.load(failure);
      return false;
    }
    return v_.compare_exchange_strong(expected, desired, success, failure);
  }

  T fetch_add(T arg, std::memory_order order) {
    SchedulePoint();
    return v_.fetch_add(arg, order);
  }

  T fetch_sub(T arg, std::memory_order order) {
    SchedulePoint();
    return v_.fetch_sub(arg, order);
  }

  T fetch_or(T arg, std::memory_order order) {
    SchedulePoint();
    return v_.fetch_or(arg, order);
  }

  T fetch_and(T arg, std::memory_order order) {
    SchedulePoint();
    return v_.fetch_and(arg, order);
  }

 private:
  std::atomic<T> v_;
};

// Lowercase alias for call sites that spell it like the standard library.
template <typename T>
using atomic = Atomic<T>;  // NOLINT(readability-identifier-naming)

}  // namespace hyperalloc::check
