// Drop-in replacement for std::atomic used by model-check builds.
//
// Production code declares its shared state as `hyperalloc::Atomic<T>`
// (src/base/atomic.h), which aliases std::atomic<T> normally and this
// class when compiled with -DHYPERALLOC_MODEL_CHECK=1. Every operation
// first calls check::SchedulePoint(), so the model-check engine
// (src/check/scheduler.h) can transfer control between model threads at
// exactly the instruction granularity that matters for lock-free code:
// the shared-memory accesses.
//
// The engine runs exactly one model thread at a time, so the shim
// explores *interleavings*; the memory-model layer
// (src/check/memory_model.h, DESIGN.md §4.11) adds the *reordering*
// dimension on top. Each operation drives a per-location
// happens-before record: release (and stronger) writes publish the
// writer's vector clock, acquire (and stronger) reads join the clock of
// the entry they observe, and relaxed operations move data only. The
// shim keeps a bounded modification-order history of values in lockstep
// with that record, so relaxed/acquire loads can return
// stale-but-HB-permitted values — a seeded, replayable exploration
// decision like a preemption. Failed CASes always read the newest value
// (stale failed-CAS reads would let exhaustive mode spin retry loops
// forever); seq_cst loads never go stale. With Options::memory_model
// off, every load reads newest and the shim degenerates to the
// historical SC-only behavior.
//
// Every operation takes mandatory explicit std::memory_order arguments —
// there are deliberately no defaulted-order overloads and no implicit
// conversion or operator=. Code that compiles against std::atomic with
// implicit seq_cst fails to compile here (and is also rejected by
// scripts/lint.sh).
//
// compare_exchange_weak is allowed to fail spuriously: the engine's
// random strategy occasionally forces a failure (drawn from the same
// seeded stream as the scheduling decisions, so replays stay exact).
// This catches code that wrongly assumes weak CAS only fails on value
// change.
#pragma once

#include <atomic>
#include <vector>

#include "src/check/memory_model.h"
#include "src/check/scheduler.h"

namespace hyperalloc::check {

// Memory-order decomposition for the happens-before record. consume is
// treated as acquire (like every mainstream compiler).
constexpr bool IsAcquireOrder(std::memory_order order) {
  return order == std::memory_order_acquire ||
         order == std::memory_order_consume ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst;
}

constexpr bool IsReleaseOrder(std::memory_order order) {
  return order == std::memory_order_release ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst;
}

template <typename T>
class Atomic {
 public:
  using value_type = T;

  Atomic() noexcept : v_{} { values_.push_back(T{}); }
  Atomic(T desired) noexcept : v_(desired) {  // NOLINT(google-explicit-constructor): mirrors std::atomic
    values_.push_back(desired);
  }
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order order) const {
    SchedulePoint();
    const uint32_t back =
        meta_.OnLoad(IsAcquireOrder(order),
                     /*seq_cst=*/order == std::memory_order_seq_cst);
    return values_[values_.size() - 1 - back];
  }

  void store(T desired, std::memory_order order) {
    SchedulePoint();
    meta_.OnStore(IsReleaseOrder(order));
    v_.store(desired, order);
    PushValue(desired);
  }

  T exchange(T desired, std::memory_order order) {
    SchedulePoint();
    meta_.OnRmw(IsAcquireOrder(order), IsReleaseOrder(order));
    const T old = v_.exchange(desired, order);
    PushValue(desired);
    return old;
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
    SchedulePoint();
    return CasNoSchedule(expected, desired, success, failure);
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order success,
                             std::memory_order failure) {
    SchedulePoint();
    if (SpuriousCasFailure()) {
      meta_.OnFailedCas(IsAcquireOrder(failure));
      expected = v_.load(failure);
      return false;
    }
    return CasNoSchedule(expected, desired, success, failure);
  }

  T fetch_add(T arg, std::memory_order order) {
    SchedulePoint();
    meta_.OnRmw(IsAcquireOrder(order), IsReleaseOrder(order));
    const T old = v_.fetch_add(arg, order);
    PushValue(v_.load(std::memory_order_relaxed));
    return old;
  }

  T fetch_sub(T arg, std::memory_order order) {
    SchedulePoint();
    meta_.OnRmw(IsAcquireOrder(order), IsReleaseOrder(order));
    const T old = v_.fetch_sub(arg, order);
    PushValue(v_.load(std::memory_order_relaxed));
    return old;
  }

  T fetch_or(T arg, std::memory_order order) {
    SchedulePoint();
    meta_.OnRmw(IsAcquireOrder(order), IsReleaseOrder(order));
    const T old = v_.fetch_or(arg, order);
    PushValue(v_.load(std::memory_order_relaxed));
    return old;
  }

  T fetch_and(T arg, std::memory_order order) {
    SchedulePoint();
    meta_.OnRmw(IsAcquireOrder(order), IsReleaseOrder(order));
    const T old = v_.fetch_and(arg, order);
    PushValue(v_.load(std::memory_order_relaxed));
    return old;
  }

  T fetch_xor(T arg, std::memory_order order) {
    SchedulePoint();
    meta_.OnRmw(IsAcquireOrder(order), IsReleaseOrder(order));
    const T old = v_.fetch_xor(arg, order);
    PushValue(v_.load(std::memory_order_relaxed));
    return old;
  }

 private:
  // A CAS after its schedule point. RMWs always read the *newest* value,
  // so the comparison goes against v_ directly.
  bool CasNoSchedule(T& expected, T desired, std::memory_order success,
                     std::memory_order failure) {
    const bool ok =
        v_.compare_exchange_strong(expected, desired, success, failure);
    if (ok) {
      meta_.OnRmw(IsAcquireOrder(success), IsReleaseOrder(success));
      PushValue(desired);
    } else {
      meta_.OnFailedCas(IsAcquireOrder(failure));
    }
    return ok;
  }

  // Mirrors the bounded-history eviction of LocationMeta so that
  // values_[i] always pairs with the i-th surviving entry.
  void PushValue(T value) {
    values_.push_back(value);
    while (values_.size() > meta_.entries()) {
      values_.erase(values_.begin());
    }
  }

  std::atomic<T> v_;                 // newest value (authoritative)
  std::vector<T> values_;            // modification-order history
  mutable mm::LocationMeta meta_;    // clocks + visibility (loads mutate)
};

// Lowercase alias for call sites that spell it like the standard library.
template <typename T>
using atomic = Atomic<T>;  // NOLINT(readability-identifier-naming)

}  // namespace hyperalloc::check
