#include "src/check/scheduler.h"

#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/base/check.h"
#include "src/base/rng.h"

namespace hyperalloc::check {

namespace {

// Internal unwind signal: the execution was aborted (failure recorded or
// drain after another thread failed). Never escapes the engine.
struct Aborted {};

// Picks the next thread to run at each scheduling decision. `runnable`
// is the sorted list of unfinished thread ids; `current` is the thread
// that reached the decision point, or -1 if it just finished (a switch is
// forced). Implementations must be deterministic functions of their own
// state so that executions replay.
class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual uint32_t Choose(const std::vector<uint32_t>& runnable,
                          int current) = 0;
  virtual bool SpuriousCas() { return false; }
};

class RandomStrategy : public Strategy {
 public:
  RandomStrategy(uint64_t seed, unsigned preemption_bound,
                 double preempt_probability)
      : rng_(seed),
        preemptions_left_(preemption_bound),
        preempt_probability_(preempt_probability) {}

  uint32_t Choose(const std::vector<uint32_t>& runnable,
                  int current) override {
    size_t current_pos = runnable.size();
    for (size_t i = 0; i < runnable.size(); ++i) {
      if (static_cast<int>(runnable[i]) == current) {
        current_pos = i;
        break;
      }
    }
    if (current_pos == runnable.size()) {
      // Forced switch (current finished): uniform over the runnable set.
      return runnable[rng_.Below(runnable.size())];
    }
    if (runnable.size() == 1 || preemptions_left_ == 0 ||
        !rng_.Chance(preempt_probability_)) {
      return static_cast<uint32_t>(current);
    }
    if (preemptions_left_ != kUnboundedPreemptions) {
      --preemptions_left_;
    }
    size_t pick = rng_.Below(runnable.size() - 1);
    if (pick >= current_pos) {
      ++pick;  // uniform over runnable \ {current}
    }
    return runnable[pick];
  }

  bool SpuriousCas() override { return rng_.Chance(1.0 / 64); }

 private:
  Rng rng_;
  unsigned preemptions_left_;
  double preempt_probability_;
};

// Depth-first enumeration of the schedule tree. The stack of decision
// nodes persists across executions; each execution replays the forced
// prefix and extends the first unexplored branch.
class ExhaustiveStrategy : public Strategy {
 public:
  uint32_t Choose(const std::vector<uint32_t>& runnable,
                  int current) override {
    (void)current;
    if (runnable.size() == 1) {
      return runnable[0];  // no branching: not a decision node
    }
    if (depth_ < stack_.size()) {
      Node& node = stack_[depth_++];
      Require(node.options == runnable.size(),
              "exhaustive exploration: scenario is nondeterministic "
              "(decision point changed option count between executions)");
      return runnable[node.chosen];
    }
    stack_.push_back(Node{0, static_cast<uint32_t>(runnable.size())});
    ++depth_;
    return runnable[0];
  }

  void BeginExecution() { depth_ = 0; }

  // Advances to the next unexplored branch; false when fully explored.
  bool Advance() {
    while (!stack_.empty() &&
           stack_.back().chosen + 1 == stack_.back().options) {
      stack_.pop_back();
    }
    if (stack_.empty()) {
      return false;
    }
    ++stack_.back().chosen;
    return true;
  }

 private:
  struct Node {
    uint32_t chosen;
    uint32_t options;
  };
  std::vector<Node> stack_;
  size_t depth_ = 0;
};

class TraceStrategy : public Strategy {
 public:
  explicit TraceStrategy(const std::vector<uint32_t>& trace)
      : trace_(trace) {}

  uint32_t Choose(const std::vector<uint32_t>& runnable,
                  int current) override {
    (void)current;
    Require(position_ < trace_.size(),
            "trace replay: execution has more schedule points than the "
            "recorded trace");
    const uint32_t forced = trace_[position_++];
    for (const uint32_t tid : runnable) {
      if (tid == forced) {
        return forced;
      }
    }
    throw CheckFailure(
        "trace replay: recorded thread is not runnable (diverged)");
  }

 private:
  const std::vector<uint32_t>& trace_;
  size_t position_ = 0;
};

class Engine;

thread_local Engine* tls_engine = nullptr;
thread_local int tls_thread = -1;

// Runs one execution: sequentialized model threads, handing control off
// only at schedule points, with the strategy deciding every transfer.
class Engine {
 public:
  Engine(const Execution& exec, Strategy* strategy, uint64_t max_steps)
      : exec_(exec), strategy_(strategy), max_steps_(max_steps) {}

  void Run() {
    const size_t n = exec_.threads().size();
    states_.assign(n, State::kReady);
    std::vector<std::thread> os_threads;
    os_threads.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      os_threads.emplace_back([this, i] { Worker(static_cast<int>(i)); });
    }
    if (n > 0) {
      std::unique_lock<std::mutex> lk(mu_);
      try {
        HandOffLocked(kNone, /*finishing=*/true, lk);
      } catch (const CheckFailure& failure) {
        // Strategy refused the very first decision (e.g. trace replay
        // divergence). Record and drain the never-started workers.
        lk.unlock();
        RecordFailure(failure.what());
        lk.lock();
        active_ = static_cast<int>(RunnableLocked()[0]);
        cv_.notify_all();
      }
      cv_.wait(lk, [this] { return active_ == kDone; });
    }
    for (std::thread& t : os_threads) {
      t.join();
    }
    if (!failed_) {
      try {
        for (const auto& fn : exec_.end_checks()) {
          fn();
        }
      } catch (const CheckFailure& failure) {
        failed_ = true;
        message_ = failure.what();
      }
    }
  }

  bool failed() const { return failed_; }
  const std::string& message() const { return message_; }
  const std::vector<uint32_t>& trace() const { return trace_; }

  // Schedule point, called from a model thread via the shim.
  void Point() {
    if (in_oracle_) {
      return;
    }
    if (aborted_) {
      throw Aborted{};
    }
    if (++steps_ > max_steps_) {
      RecordFailure(
          "livelock suspected: execution exceeded the schedule-point "
          "budget (Options::max_steps)");
      throw Aborted{};
    }
    if (!exec_.step_oracles().empty()) {
      in_oracle_ = true;
      struct Reset {
        bool* flag;
        ~Reset() { *flag = false; }
      } reset{&in_oracle_};
      for (const auto& oracle : exec_.step_oracles()) {
        oracle();  // CheckFailure propagates to Worker after Reset
      }
    }
    std::unique_lock<std::mutex> lk(mu_);
    HandOffLocked(tls_thread, /*finishing=*/false, lk);
  }

  bool SpuriousCas() {
    if (in_oracle_ || aborted_) {
      return false;
    }
    return strategy_->SpuriousCas();
  }

 private:
  enum class State { kReady, kFinished };
  static constexpr int kNone = -1;
  static constexpr int kDone = -2;

  void Worker(int index) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this, index] { return active_ == index; });
    }
    tls_engine = this;
    tls_thread = index;
    try {
      if (!aborted_) {
        exec_.threads()[index]();
      }
    } catch (const CheckFailure& failure) {
      RecordFailure(failure.what());
    } catch (const Aborted&) {
      // Drained after a failure elsewhere.
    }
    tls_engine = nullptr;
    tls_thread = -1;
    std::unique_lock<std::mutex> lk(mu_);
    states_[index] = State::kFinished;
    HandOffLocked(index, /*finishing=*/true, lk);
  }

  std::vector<uint32_t> RunnableLocked() const {
    std::vector<uint32_t> runnable;
    for (size_t i = 0; i < states_.size(); ++i) {
      if (states_[i] != State::kFinished) {
        runnable.push_back(static_cast<uint32_t>(i));
      }
    }
    return runnable;
  }

  // Picks and activates the next thread. When `finishing`, the caller
  // does not wait to be re-activated (it is exiting or the coordinator).
  void HandOffLocked(int from, bool finishing,
                     std::unique_lock<std::mutex>& lk) {
    const std::vector<uint32_t> runnable = RunnableLocked();
    if (runnable.empty()) {
      active_ = kDone;
      cv_.notify_all();
      return;
    }
    int next;
    if (aborted_) {
      next = static_cast<int>(runnable[0]);  // drain deterministically
    } else {
      next = static_cast<int>(
          strategy_->Choose(runnable, finishing ? kNone : from));
      trace_.push_back(static_cast<uint32_t>(next));
    }
    if (next == from && !finishing) {
      return;  // keep running; the decision is still part of the trace
    }
    active_ = next;
    cv_.notify_all();
    if (!finishing) {
      cv_.wait(lk, [this, from] { return active_ == from; });
      if (aborted_) {
        throw Aborted{};
      }
    }
  }

  void RecordFailure(const std::string& message) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!failed_) {
      failed_ = true;
      message_ = message;
    }
    aborted_ = true;
  }

  const Execution& exec_;
  Strategy* strategy_;
  uint64_t max_steps_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<State> states_;
  int active_ = kNone;
  uint64_t steps_ = 0;
  bool aborted_ = false;
  bool failed_ = false;
  bool in_oracle_ = false;
  std::string message_;
  std::vector<uint32_t> trace_;
};

// Runs one execution with the given strategy; returns the engine outcome
// merged into `result` (which accumulates the execution count).
bool RunOnce(const Options& options, Strategy* strategy,
             const Scenario& scenario, uint64_t seed_for_result,
             RunResult* result) {
  Execution exec;
  scenario(exec);
  Engine engine(exec, strategy, options.max_steps);
  engine.Run();
  ++result->executions;
  result->trace = engine.trace();
  if (engine.failed()) {
    result->failed = true;
    result->message = engine.message();
    result->failing_seed = seed_for_result;
    return false;
  }
  return true;
}

}  // namespace

RunResult Explore(const Options& options, const Scenario& scenario) {
  RunResult result;
  if (options.mode == Options::Mode::kRandom) {
    for (uint64_t i = 0; i < options.iterations; ++i) {
      const uint64_t seed = options.seed + i;
      RandomStrategy strategy(seed, options.preemption_bound,
                              options.preempt_probability);
      if (!RunOnce(options, &strategy, scenario, seed, &result)) {
        return result;
      }
    }
    return result;
  }
  ExhaustiveStrategy strategy;
  for (uint64_t i = 0; i < options.max_executions; ++i) {
    strategy.BeginExecution();
    if (!RunOnce(options, &strategy, scenario, /*seed_for_result=*/i,
                 &result)) {
      return result;
    }
    if (!strategy.Advance()) {
      result.complete = true;
      return result;
    }
  }
  return result;  // time-boxed: complete stays false
}

RunResult ReplaySeed(const Options& options, uint64_t seed,
                     const Scenario& scenario) {
  RunResult result;
  RandomStrategy strategy(seed, options.preemption_bound,
                          options.preempt_probability);
  RunOnce(options, &strategy, scenario, seed, &result);
  return result;
}

RunResult ReplayTrace(const Options& options,
                      const std::vector<uint32_t>& trace,
                      const Scenario& scenario) {
  RunResult result;
  TraceStrategy strategy(trace);
  RunOnce(options, &strategy, scenario, /*seed_for_result=*/0, &result);
  return result;
}

void SchedulePoint() {
  if (tls_engine != nullptr && tls_thread >= 0) {
    tls_engine->Point();
  }
}

bool SpuriousCasFailure() {
  return tls_engine != nullptr && tls_thread >= 0 &&
         tls_engine->SpuriousCas();
}

}  // namespace hyperalloc::check
