#include "src/check/scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/base/check.h"
#include "src/base/rng.h"
#include "src/check/memory_model.h"

namespace hyperalloc::check {

bool DefaultMemoryModel() {
  static const bool enabled = [] {
    const char* env = std::getenv("HYPERALLOC_MC_MM");
    return env == nullptr ||
           (std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0);
  }();
  return enabled;
}

namespace {

// Internal unwind signal: the execution was aborted (failure recorded or
// drain after another thread failed). Never escapes the engine.
struct Aborted {};

// Picks the next thread to run at each scheduling decision. `runnable`
// is the sorted list of unfinished thread ids; `current` is the thread
// that reached the decision point, or -1 if it just finished (a switch is
// forced). Implementations must be deterministic functions of their own
// state so that executions replay.
class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual uint32_t Choose(const std::vector<uint32_t>& runnable,
                          int current) = 0;
  // A *value* decision (memory-model layer): which of `options`
  // happens-before-permitted values a load observes. Same determinism
  // contract as Choose.
  virtual uint32_t ChooseIndex(uint32_t options) = 0;
  virtual bool SpuriousCas() { return false; }
};

class RandomStrategy : public Strategy {
 public:
  RandomStrategy(uint64_t seed, unsigned preemption_bound,
                 double preempt_probability)
      : rng_(seed),
        preemptions_left_(preemption_bound),
        preempt_probability_(preempt_probability) {}

  uint32_t Choose(const std::vector<uint32_t>& runnable,
                  int current) override {
    size_t current_pos = runnable.size();
    for (size_t i = 0; i < runnable.size(); ++i) {
      if (static_cast<int>(runnable[i]) == current) {
        current_pos = i;
        break;
      }
    }
    if (current_pos == runnable.size()) {
      // Forced switch (current finished): uniform over the runnable set.
      return runnable[rng_.Below(runnable.size())];
    }
    if (runnable.size() == 1 || preemptions_left_ == 0 ||
        !rng_.Chance(preempt_probability_)) {
      return static_cast<uint32_t>(current);
    }
    if (preemptions_left_ != kUnboundedPreemptions) {
      --preemptions_left_;
    }
    size_t pick = rng_.Below(runnable.size() - 1);
    if (pick >= current_pos) {
      ++pick;  // uniform over runnable \ {current}
    }
    return runnable[pick];
  }

  uint32_t ChooseIndex(uint32_t options) override {
    return static_cast<uint32_t>(rng_.Below(options));
  }

  bool SpuriousCas() override { return rng_.Chance(1.0 / 64); }

 private:
  Rng rng_;
  unsigned preemptions_left_;
  double preempt_probability_;
};

// Depth-first enumeration of the schedule tree. The stack of decision
// nodes persists across executions; each execution replays the forced
// prefix and extends the first unexplored branch.
class ExhaustiveStrategy : public Strategy {
 public:
  uint32_t Choose(const std::vector<uint32_t>& runnable,
                  int current) override {
    (void)current;
    if (runnable.size() == 1) {
      return runnable[0];  // no branching: not a decision node
    }
    return runnable[Branch(Node::kThread,
                           static_cast<uint32_t>(runnable.size()))];
  }

  uint32_t ChooseIndex(uint32_t options) override {
    if (options <= 1) {
      return 0;
    }
    return Branch(Node::kValue, options);
  }

  void BeginExecution() { depth_ = 0; }

  // Advances to the next unexplored branch; false when fully explored.
  bool Advance() {
    while (!stack_.empty() &&
           stack_.back().chosen + 1 == stack_.back().options) {
      stack_.pop_back();
    }
    if (stack_.empty()) {
      return false;
    }
    ++stack_.back().chosen;
    return true;
  }

 private:
  struct Node {
    enum Kind : uint8_t { kThread, kValue };
    uint32_t chosen;
    uint32_t options;
    Kind kind;
  };

  // Replays the forced prefix of the DFS stack, extending it with a
  // fresh node (first branch) past the prefix.
  uint32_t Branch(Node::Kind kind, uint32_t options) {
    if (depth_ < stack_.size()) {
      Node& node = stack_[depth_++];
      Require(node.options == options && node.kind == kind,
              "exhaustive exploration: scenario is nondeterministic "
              "(decision point changed kind or option count between "
              "executions)");
      return node.chosen;
    }
    stack_.push_back(Node{0, options, kind});
    ++depth_;
    return 0;
  }

  std::vector<Node> stack_;
  size_t depth_ = 0;
};

class TraceStrategy : public Strategy {
 public:
  explicit TraceStrategy(const std::vector<uint32_t>& trace)
      : trace_(trace) {}

  uint32_t Choose(const std::vector<uint32_t>& runnable,
                  int current) override {
    (void)current;
    const uint32_t forced = Next(/*value_decision=*/false);
    for (const uint32_t tid : runnable) {
      if (tid == forced) {
        return forced;
      }
    }
    throw CheckFailure(
        "stale trace: recorded thread " + std::to_string(forced) +
        " is not runnable at decision " + std::to_string(position_ - 1) +
        " — the scenario changed since the trace was recorded, so this "
        "replay says nothing about the original failure");
  }

  uint32_t ChooseIndex(uint32_t options) override {
    const uint32_t forced = Next(/*value_decision=*/true);
    if (forced >= options) {
      throw CheckFailure(
          "stale trace: recorded value decision " + std::to_string(forced) +
          " at decision " + std::to_string(position_ - 1) +
          " exceeds the " + std::to_string(options) +
          " happens-before-permitted values — the scenario changed since "
          "the trace was recorded");
    }
    return forced;
  }

 private:
  // Pops the next decision, diagnosing exhaustion and thread-vs-value
  // kind mismatches as a stale trace instead of a confusing downstream
  // invariant message.
  uint32_t Next(bool value_decision) {
    if (position_ >= trace_.size()) {
      throw CheckFailure(
          "stale trace: the execution has more decision points than the "
          "recorded trace (exhausted after " +
          std::to_string(trace_.size()) +
          " decisions) — the scenario changed since the trace was "
          "recorded");
    }
    const uint32_t entry = trace_[position_++];
    const bool tagged = (entry & mm::kValueDecisionTag) != 0;
    if (tagged != value_decision) {
      throw CheckFailure(
          "stale trace: decision " + std::to_string(position_ - 1) +
          " is a " + (tagged ? "value" : "thread") +
          " decision in the recorded trace but the scenario asked for a " +
          (value_decision ? "value" : "thread") +
          " choice — the scenario changed since the trace was recorded");
    }
    return entry & ~mm::kValueDecisionTag;
  }

 public:
  // Entries never consumed: nonzero after a clean replay means the
  // scenario now has fewer decision points than the recording.
  size_t remaining() const { return trace_.size() - position_; }

 private:
  const std::vector<uint32_t>& trace_;
  size_t position_ = 0;
};

class Engine;

thread_local Engine* tls_engine = nullptr;
thread_local int tls_thread = -1;

// Runs one execution: sequentialized model threads, handing control off
// only at schedule points, with the strategy deciding every transfer.
class Engine {
 public:
  Engine(const Execution& exec, Strategy* strategy, const Options& options)
      : exec_(exec),
        strategy_(strategy),
        max_steps_(options.max_steps),
        mm_enabled_(options.memory_model),
        stale_budget_(options.stale_read_budget),
        history_depth_(options.history_depth) {}

  void Run() {
    const size_t n = exec_.threads().size();
    if (mm_enabled_ && n > mm::kMaxThreads) {
      failed_ = true;
      message_ = "memory model supports at most " +
                 std::to_string(mm::kMaxThreads) +
                 " model threads per execution (scenario spawned " +
                 std::to_string(n) + ")";
      return;
    }
    states_.assign(n, State::kReady);
    std::vector<std::thread> os_threads;
    os_threads.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      os_threads.emplace_back([this, i] { Worker(static_cast<int>(i)); });
    }
    if (n > 0) {
      std::unique_lock<std::mutex> lk(mu_);
      try {
        HandOffLocked(kNone, /*finishing=*/true, lk);
      } catch (const CheckFailure& failure) {
        // Strategy refused the very first decision (e.g. trace replay
        // divergence). Record and drain the never-started workers.
        lk.unlock();
        RecordFailure(failure.what());
        lk.lock();
        active_ = static_cast<int>(RunnableLocked()[0]);
        cv_.notify_all();
      }
      cv_.wait(lk, [this] { return active_ == kDone; });
    }
    for (std::thread& t : os_threads) {
      t.join();
    }
    if (!failed_) {
      try {
        for (const auto& fn : exec_.end_checks()) {
          fn();
        }
      } catch (const CheckFailure& failure) {
        failed_ = true;
        message_ = failure.what();
      }
    }
  }

  bool failed() const { return failed_; }
  const std::string& message() const { return message_; }
  const std::vector<uint32_t>& trace() const { return trace_; }

  // Schedule point, called from a model thread via the shim.
  void Point() {
    if (in_oracle_) {
      return;
    }
    if (aborted_) {
      throw Aborted{};
    }
    if (++steps_ > max_steps_) {
      RecordFailure(
          "livelock suspected: execution exceeded the schedule-point "
          "budget (Options::max_steps)");
      throw Aborted{};
    }
    if (!exec_.step_oracles().empty()) {
      in_oracle_ = true;
      struct Reset {
        bool* flag;
        ~Reset() { *flag = false; }
      } reset{&in_oracle_};
      for (const auto& oracle : exec_.step_oracles()) {
        oracle();  // CheckFailure propagates to Worker after Reset
      }
    }
    std::unique_lock<std::mutex> lk(mu_);
    HandOffLocked(tls_thread, /*finishing=*/false, lk);
  }

  bool SpuriousCas() {
    if (in_oracle_ || aborted_) {
      return false;
    }
    return strategy_->SpuriousCas();
  }

  // --- memory-model hooks (src/check/memory_model.h) -----------------
  // Called from the running model thread between schedule points, so no
  // other thread touches the clocks or the trace concurrently.

  bool MmActive() const { return mm_enabled_ && !in_oracle_; }

  mm::VectorClock& MmClock(int thread) { return clocks_[thread]; }

  uint32_t MmChooseIndex(uint32_t options) {
    const uint32_t choice = strategy_->ChooseIndex(options);
    if (!aborted_) {
      trace_.push_back(mm::kValueDecisionTag | choice);
    }
    return choice;
  }

  bool MmTakeStaleBudget() {
    if (stale_budget_ == 0) {
      return false;
    }
    --stale_budget_;
    return true;
  }

  uint32_t MmHistoryDepth() const { return history_depth_; }
  uint64_t MmStep() const { return steps_; }

 private:
  enum class State { kReady, kFinished };
  static constexpr int kNone = -1;
  static constexpr int kDone = -2;

  void Worker(int index) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this, index] { return active_ == index; });
    }
    tls_engine = this;
    tls_thread = index;
    try {
      if (!aborted_) {
        exec_.threads()[index]();
      }
    } catch (const CheckFailure& failure) {
      RecordFailure(failure.what());
    } catch (const Aborted&) {
      // Drained after a failure elsewhere.
    }
    tls_engine = nullptr;
    tls_thread = -1;
    std::unique_lock<std::mutex> lk(mu_);
    states_[index] = State::kFinished;
    HandOffLocked(index, /*finishing=*/true, lk);
  }

  std::vector<uint32_t> RunnableLocked() const {
    std::vector<uint32_t> runnable;
    for (size_t i = 0; i < states_.size(); ++i) {
      if (states_[i] != State::kFinished) {
        runnable.push_back(static_cast<uint32_t>(i));
      }
    }
    return runnable;
  }

  // Picks and activates the next thread. When `finishing`, the caller
  // does not wait to be re-activated (it is exiting or the coordinator).
  void HandOffLocked(int from, bool finishing,
                     std::unique_lock<std::mutex>& lk) {
    const std::vector<uint32_t> runnable = RunnableLocked();
    if (runnable.empty()) {
      active_ = kDone;
      cv_.notify_all();
      return;
    }
    int next;
    if (aborted_) {
      next = static_cast<int>(runnable[0]);  // drain deterministically
    } else {
      next = static_cast<int>(
          strategy_->Choose(runnable, finishing ? kNone : from));
      trace_.push_back(static_cast<uint32_t>(next));
    }
    if (next == from && !finishing) {
      return;  // keep running; the decision is still part of the trace
    }
    active_ = next;
    cv_.notify_all();
    if (!finishing) {
      cv_.wait(lk, [this, from] { return active_ == from; });
      if (aborted_) {
        throw Aborted{};
      }
    }
  }

  void RecordFailure(const std::string& message) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!failed_) {
      failed_ = true;
      message_ = message;
    }
    aborted_ = true;
  }

  const Execution& exec_;
  Strategy* strategy_;
  uint64_t max_steps_;
  const bool mm_enabled_;
  uint32_t stale_budget_;
  const uint32_t history_depth_;
  mm::VectorClock clocks_[mm::kMaxThreads];

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<State> states_;
  int active_ = kNone;
  uint64_t steps_ = 0;
  bool aborted_ = false;
  bool failed_ = false;
  bool in_oracle_ = false;
  std::string message_;
  std::vector<uint32_t> trace_;
};

// Runs one execution with the given strategy; returns the engine outcome
// merged into `result` (which accumulates the execution count).
bool RunOnce(const Options& options, Strategy* strategy,
             const Scenario& scenario, uint64_t seed_for_result,
             RunResult* result) {
  Execution exec;
  scenario(exec);
  Engine engine(exec, strategy, options);
  engine.Run();
  ++result->executions;
  result->trace = engine.trace();
  if (engine.failed()) {
    result->failed = true;
    result->message = engine.message();
    result->failing_seed = seed_for_result;
    result->stale_trace =
        result->message.rfind("stale trace", 0) == 0;
    return false;
  }
  return true;
}

}  // namespace

RunResult Explore(const Options& options, const Scenario& scenario) {
  RunResult result;
  if (options.mode == Options::Mode::kRandom) {
    for (uint64_t i = 0; i < options.iterations; ++i) {
      const uint64_t seed = options.seed + i;
      RandomStrategy strategy(seed, options.preemption_bound,
                              options.preempt_probability);
      if (!RunOnce(options, &strategy, scenario, seed, &result)) {
        return result;
      }
    }
    return result;
  }
  ExhaustiveStrategy strategy;
  for (uint64_t i = 0; i < options.max_executions; ++i) {
    strategy.BeginExecution();
    if (!RunOnce(options, &strategy, scenario, /*seed_for_result=*/i,
                 &result)) {
      return result;
    }
    if (!strategy.Advance()) {
      result.complete = true;
      return result;
    }
  }
  return result;  // time-boxed: complete stays false
}

RunResult ReplaySeed(const Options& options, uint64_t seed,
                     const Scenario& scenario) {
  RunResult result;
  RandomStrategy strategy(seed, options.preemption_bound,
                          options.preempt_probability);
  RunOnce(options, &strategy, scenario, seed, &result);
  return result;
}

RunResult ReplaySeed(const Options& options, uint64_t seed,
                     const Scenario& scenario,
                     const std::vector<uint32_t>& expected_trace) {
  RunResult result = ReplaySeed(options, seed, scenario);
  const size_t n =
      std::min(result.trace.size(), expected_trace.size());
  size_t diverged = n;
  for (size_t i = 0; i < n; ++i) {
    if (result.trace[i] != expected_trace[i]) {
      diverged = i;
      break;
    }
  }
  if (diverged < n || result.trace.size() != expected_trace.size()) {
    result.failed = true;
    result.stale_trace = true;
    result.message =
        "stale trace: the replayed schedule diverged from the recorded "
        "trace at decision " +
        std::to_string(diverged) +
        " — the scenario changed since the seed was recorded, so this "
        "replay says nothing about the original failure";
  }
  return result;
}

RunResult ReplayTrace(const Options& options,
                      const std::vector<uint32_t>& trace,
                      const Scenario& scenario) {
  RunResult result;
  TraceStrategy strategy(trace);
  RunOnce(options, &strategy, scenario, /*seed_for_result=*/0, &result);
  if (!result.failed && strategy.remaining() > 0) {
    result.failed = true;
    result.stale_trace = true;
    result.message =
        "stale trace: the execution finished with " +
        std::to_string(strategy.remaining()) +
        " recorded decisions unconsumed — the scenario changed since "
        "the trace was recorded, so this replay says nothing about the "
        "original failure";
  }
  return result;
}

void SchedulePoint() {
  if (tls_engine != nullptr && tls_thread >= 0) {
    tls_engine->Point();
  }
}

bool SpuriousCasFailure() {
  return tls_engine != nullptr && tls_thread >= 0 &&
         tls_engine->SpuriousCas();
}

// ---------------------------------------------------------------------
// Memory-model engine hooks (declared in src/check/memory_model.h).
// All run on the single active model thread, so the engine's clocks and
// trace need no extra synchronization.
// ---------------------------------------------------------------------
namespace mm {

bool Active() {
  return tls_engine != nullptr && tls_thread >= 0 &&
         tls_engine->MmActive();
}

int ThreadId() { return tls_thread; }

VectorClock& Clock() { return tls_engine->MmClock(tls_thread); }

const VectorClock& Tick() {
  VectorClock& clock = tls_engine->MmClock(tls_thread);
  ++clock.c[tls_thread];
  return clock;
}

uint32_t ChooseReadIndex(uint32_t options) {
  return tls_engine->MmChooseIndex(options);
}

bool TakeStaleBudget() { return tls_engine->MmTakeStaleBudget(); }

uint32_t HistoryDepth() {
  if (tls_engine == nullptr) {
    return Options{}.history_depth;
  }
  return tls_engine->MmHistoryDepth();
}

uint64_t Step() {
  return tls_engine != nullptr ? tls_engine->MmStep() : 0;
}

}  // namespace mm

}  // namespace hyperalloc::check
